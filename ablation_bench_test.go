package ace

import (
	"fmt"
	"testing"

	"ace/internal/drc"
	"ace/internal/extract"
	"ace/internal/gen"
	"ace/internal/hext"
)

// Ablation benchmarks for the design choices DESIGN.md calls out.

// BenchmarkAblationInsertSort compares the paper's original per-box
// insertion sort (step 2.a) with the batched merge this implementation
// uses by default — the bin-sort refinement of ACE §4. The workload is
// a single very wide cell row, which maximises the active-list length
// the insertion cost is proportional to. The measured crossover
// reproduces the paper's remark verbatim: "the term containing N^{3/2}
// can be made linear by using bin-sort, but c₁ is so small that it has
// not been necessary to do so" — insertion even wins on narrow rows
// (less copying), and only loses ~1.4× at 4096 columns.
func BenchmarkAblationInsertSort(b *testing.B) {
	for _, cols := range []int{256, 1024, 4096} {
		w := gen.Memory(1, cols)
		name := fmt.Sprintf("cols=%d", cols)
		b.Run("merge/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := extract.File(w.File, extract.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("insertion/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := extract.File(w.File, extract.Options{InsertionSort: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationMemo quantifies the window memo table: HEXT's
// defining idea ("redundant windows are recognized and are extracted
// only once"). On a regular array, disabling it forfeits the entire
// hierarchical advantage.
func BenchmarkAblationMemo(b *testing.B) {
	w := gen.Memory(16, 16)
	b.Run("memo=on", func(b *testing.B) {
		var res *hext.Result
		for i := 0; i < b.N; i++ {
			var err error
			if res, err = hext.Extract(w.File, hext.Options{}); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(res.Counters.FlatCalls), "flatCalls")
	})
	b.Run("memo=off", func(b *testing.B) {
		var res *hext.Result
		for i := 0; i < b.N; i++ {
			var err error
			if res, err = hext.Extract(w.File, hext.Options{DisableMemo: true}); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(res.Counters.FlatCalls), "flatCalls")
	})
}

// BenchmarkAblationLeafSize sweeps HEXT's leaf-window cap: tiny leaves
// mean many composes (and partial transistors); huge leaves degenerate
// toward flat extraction — the front-end/back-end trade-off the HEXT
// paper discusses ("it is worthwhile (and still an open issue) to
// determine the point of match").
func BenchmarkAblationLeafSize(b *testing.B) {
	w := gen.MustBenchChip("dchip")
	for _, leaf := range []int{50, 500, 5000} {
		leaf := leaf
		b.Run(fmt.Sprintf("maxLeaf=%d", leaf), func(b *testing.B) {
			var res *hext.Result
			for i := 0; i < b.N; i++ {
				var err error
				if res, err = hext.Extract(w.File, hext.Options{MaxLeafItems: leaf}); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(res.Counters.ComposeCalls), "composeCalls")
			b.ReportMetric(float64(res.Counters.FlatCalls), "flatCalls")
		})
	}
}

// BenchmarkAblationFracture compares the two guillotine strategies on
// an irregular chip under an aggressive leaf cap, where geometry-level
// cuts dominate: balanced cuts (logarithmic recursion) vs min-cut
// (fewest split boxes — HEXT §6's proposed smarter fracturing). The
// seamMatches metric shows what min-cut buys the compose routine.
func BenchmarkAblationFracture(b *testing.B) {
	w := gen.MustBenchChip("schip2")
	for _, f := range []struct {
		name string
		mode hext.Fracture
	}{{"balanced", hext.FractureBalanced}, {"mincut", hext.FractureMinCut}} {
		b.Run(f.name, func(b *testing.B) {
			var res *hext.Result
			for i := 0; i < b.N; i++ {
				var err error
				if res, err = hext.Extract(w.File, hext.Options{
					Fracture: f.mode, MaxLeafItems: 20,
				}); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(res.Counters.SeamMatches), "seamMatches")
			b.ReportMetric(float64(res.Timing.Compose.Microseconds()), "compose_us")
		})
	}
}

// BenchmarkIncrementalSession measures re-extraction inside a session
// (the incremental-extractor direction of ACE §6): the second run of
// an unchanged design answers entirely from the memo.
func BenchmarkIncrementalSession(b *testing.B) {
	w := gen.Memory(16, 16)
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := hext.NewSession(hext.Options{}).Extract(w.File); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		s := hext.NewSession(hext.Options{})
		if _, err := s.Extract(w.File); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Extract(w.File); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkHierDRC compares flat design-rule checking with the
// tile-memoised hierarchical checker on a regular array (tile size
// aligned to the row pitch).
func BenchmarkHierDRC(b *testing.B) {
	w := gen.Memory(24, 24)
	boxes, _ := benchDrain(b, w.File)
	b.Run("flat", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if vs := drc.CheckBoxes(boxes, drc.Options{}); len(vs) != 0 {
				b.Fatal("violations in library array")
			}
		}
	})
	b.Run("tiled", func(b *testing.B) {
		var res drc.HierResult
		for i := 0; i < b.N; i++ {
			res = drc.CheckHierarchical(boxes, drc.HierOptions{TileSize: 36})
			if len(res.Violations) != 0 {
				b.Fatal("violations in library array")
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(res.Counters.UniqueTiles), "uniqueTiles")
		b.ReportMetric(float64(res.Counters.Tiles), "tiles")
	})
}
