// Package ace is a reproduction of "ACE: A Circuit Extractor" (Anoop
// Gupta, CMU / DAC 1983) and its companion "HEXT: A Hierarchical
// Circuit Extractor" (Gupta & Hon, 1982): circuit extractors for NMOS
// layouts in CIF.
//
// The flat extractor reads a CIF design and produces a wirelist — the
// transistors and nets the artwork denotes — using an edge-based
// scanline algorithm whose observed running time is linear in the
// number of boxes. The hierarchical extractor partitions the design
// into non-overlapping windows, extracts each unique window once, and
// composes adjacent windows by matching their boundary interfaces.
//
// Quick start:
//
//	f, _ := os.Open("chip.cif")
//	res, err := ace.Extract(f, ace.Options{})
//	if err != nil { ... }
//	fmt.Println(res.Netlist.Stats())
//	ace.WriteWirelist(os.Stdout, res.Netlist, ace.WirelistOptions{})
//
// The subsystems live in internal packages: internal/cif (parser),
// internal/frontend (lazy instantiation), internal/scan (the scanline
// back end), internal/hext (the hierarchical extractor), plus the
// baselines internal/raster (Partlist) and internal/cifplot, and the
// downstream tools internal/sim, internal/check and internal/rcx.
package ace

import (
	"io"

	"ace/internal/cif"
	"ace/internal/diag"
	"ace/internal/extract"
	"ace/internal/hext"
	"ace/internal/netlist"
	"ace/internal/wirelist"
)

// Options configures flat extraction; see extract.Options.
type Options = extract.Options

// Result is a flat extraction result; see extract.Result.
type Result = extract.Result

// Netlist is the extractor output: devices and nets.
type Netlist = netlist.Netlist

// Extract runs the flat extractor (ACE) over CIF text from r.
func Extract(r io.Reader, opt Options) (*Result, error) {
	return extract.Reader(r, opt)
}

// ExtractString runs the flat extractor over CIF source text.
func ExtractString(src string, opt Options) (*Result, error) {
	return extract.String(src, opt)
}

// ExtractFile runs the flat extractor over an already-parsed design.
func ExtractFile(f *cif.File, opt Options) (*Result, error) {
	return extract.File(f, opt)
}

// ParseCIF parses CIF text without extracting, for callers that want
// to inspect or transform the design first.
func ParseCIF(r io.Reader) (*cif.File, error) { return cif.Parse(r) }

// HierOptions configures hierarchical extraction; see hext.Options.
type HierOptions = hext.Options

// HierResult is a hierarchical extraction result; see hext.Result.
type HierResult = hext.Result

// ExtractHierarchical runs HEXT over CIF text from r. It honours
// opt.Lenient: parse damage becomes located diagnostics in
// HierResult.Diagnostics instead of an error.
func ExtractHierarchical(r io.Reader, opt HierOptions) (*HierResult, error) {
	return hext.Reader(r, opt)
}

// ExtractHierarchicalFile runs HEXT over a parsed design.
func ExtractHierarchicalFile(f *cif.File, opt HierOptions) (*HierResult, error) {
	return hext.Extract(f, opt)
}

// WirelistOptions configures wirelist output.
type WirelistOptions = wirelist.Options

// WriteWirelist emits a netlist in the CMU wirelist format of
// Figure 3-4.
func WriteWirelist(w io.Writer, nl *Netlist, opt WirelistOptions) error {
	return wirelist.Write(w, nl, opt)
}

// ParseWirelist reads a flat wirelist back into a netlist.
func ParseWirelist(r io.Reader) (*Netlist, error) { return wirelist.Parse(r) }

// FlattenHierarchicalWirelist reads a hierarchical wirelist (as
// written by HierResult.WriteHierarchical) and returns the flattened
// netlist.
func FlattenHierarchicalWirelist(r io.Reader) (*Netlist, error) {
	return hext.ParseHierarchical(r)
}

// IncrementalSession returns a hierarchical extraction session whose
// window memo persists across Extract calls: re-extracting an edited
// design only analyses the windows that changed. Set
// HierOptions.CacheDir to also persist results on disk, so the memo
// survives across processes.
func IncrementalSession(opt HierOptions) *hext.Session { return hext.NewSession(opt) }

// Edit is one symbol-granularity change for Session.Apply: replace,
// add or delete a symbol definition (or the top-level instance list)
// and re-extract, reusing every window whose content is unchanged.
type Edit = hext.Edit

// Equivalent reports whether two netlists describe the same circuit up
// to renumbering — the wirelist comparator of the paper's introduction.
func Equivalent(a, b *Netlist) (bool, string) { return netlist.Equivalent(a, b) }

// Diagnostic is one located finding from the fail-soft front end or
// the checker; see Options.Lenient and Result.Diagnostics.
type Diagnostic = diag.Diagnostic

// Diagnostics is an ordered, capped set of diagnostics.
type Diagnostics = diag.Set

// Severity ranks diagnostics; see the Info/Warning/Error constants.
type Severity = diag.Severity

// Diagnostic severities, mildest first.
const (
	Info    = diag.Info
	Warning = diag.Warning
	Error   = diag.Error
)

// WriteDiagnostics renders a diagnostics set as file:line:col text
// lines with a closing summary.
func WriteDiagnostics(w io.Writer, file string, s *Diagnostics) error {
	return diag.WriteText(w, file, s)
}

// WriteDiagnosticsJSON renders a diagnostics set as an indented,
// deterministic JSON report (the CLIs' -diag-json document).
func WriteDiagnosticsJSON(w io.Writer, file string, s *Diagnostics) error {
	return diag.WriteJSON(w, file, s)
}
