package ace

import (
	"strings"
	"testing"

	"ace/internal/cif"
	"ace/internal/gen"
)

func TestPublicAPIRoundTrip(t *testing.T) {
	src := cif.String(gen.Inverter())
	res, err := ExtractString(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Netlist.Stats().Devices != 2 {
		t.Fatalf("stats %v", res.Netlist.Stats())
	}
	var sb strings.Builder
	if err := WriteWirelist(&sb, res.Netlist, WirelistOptions{}); err != nil {
		t.Fatal(err)
	}
	back, err := ParseWirelist(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if eq, why := Equivalent(res.Netlist, back); !eq {
		t.Fatalf("round trip: %s", why)
	}
}

func TestPublicHierarchical(t *testing.T) {
	src := cif.String(gen.FourInverters())
	hres, err := ExtractHierarchical(strings.NewReader(src), HierOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ares, err := ExtractString(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if eq, why := Equivalent(hres.Netlist, ares.Netlist); !eq {
		t.Fatalf("hext vs ace: %s", why)
	}
	if !strings.Contains(hres.HierarchicalString(), "DefPart Window") {
		t.Fatal("hierarchical wirelist missing")
	}
}

func TestFlattenHierarchicalWirelist(t *testing.T) {
	hres, err := ExtractHierarchicalFile(gen.FourInverters(), HierOptions{})
	if err != nil {
		t.Fatal(err)
	}
	nl, err := FlattenHierarchicalWirelist(strings.NewReader(hres.HierarchicalString()))
	if err != nil {
		t.Fatal(err)
	}
	if eq, why := Equivalent(hres.Netlist, nl); !eq {
		t.Fatalf("flattened text differs: %s", why)
	}
}

func TestIncrementalSessionAPI(t *testing.T) {
	s := IncrementalSession(HierOptions{})
	if _, err := s.Extract(gen.FourInverters()); err != nil {
		t.Fatal(err)
	}
	res, err := s.Extract(gen.FourInverters())
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.FlatCalls != 0 {
		t.Fatalf("warm re-extract did flat work: %+v", res.Counters)
	}
}

func TestParseCIF(t *testing.T) {
	f, err := ParseCIF(strings.NewReader("L ND; B 10 10 0 0;\nE\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Top) != 1 {
		t.Fatalf("items %d", len(f.Top))
	}
	if _, err := ExtractFile(f, Options{}); err != nil {
		t.Fatal(err)
	}
}
