// Benchmarks regenerating every table and figure of the two papers'
// evaluations. Each benchmark corresponds to an experiment in
// DESIGN.md §3 (E1–E10); EXPERIMENTS.md records the measured series
// next to the published ones. The full-size runs live behind
// cmd/ace -table51/-table52 and cmd/hext -table41/-table51/-table52;
// the benchmarks here use scaled chips so `go test -bench=.` finishes
// in minutes. Set -benchtime=1x for a quick pass.
package ace

import (
	"fmt"
	"testing"

	"ace/internal/cif"
	"ace/internal/cifplot"
	"ace/internal/extract"
	"ace/internal/frontend"
	"ace/internal/gen"
	"ace/internal/hext"
	"ace/internal/raster"
)

// E1 — Figure 3-3/3-4: the inverter, end to end.
func BenchmarkFig3InverterExtract(b *testing.B) {
	f := gen.Inverter()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := extract.File(f, extract.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Netlist.Devices) != 2 {
			b.Fatal("wrong extraction")
		}
	}
}

// E2 — ACE Table 5-1: per-chip extraction rate. The paper's claim is
// that devices/sec and boxes/sec stay roughly flat as chips grow
// (linear time). The metrics devs/s and boxes/s are reported per
// benchmark for comparison across chips.
func BenchmarkTable51_ACE(b *testing.B) {
	for _, w := range gen.BenchChips() {
		w := w
		b.Run(w.Name, func(b *testing.B) {
			var devices, boxes int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := extract.File(w.File, extract.Options{})
				if err != nil {
					b.Fatal(err)
				}
				devices = len(res.Netlist.Devices)
				boxes = res.Counters.BoxesIn
			}
			b.StopTimer()
			sec := b.Elapsed().Seconds() / float64(b.N)
			b.ReportMetric(float64(devices)/sec, "devs/s")
			b.ReportMetric(float64(boxes)/sec, "boxes/s")
		})
	}
}

// E3 — ACE Table 5-2: ACE vs Partlist (raster) vs Cifplot (region
// pairwise) on the same chips. The paper's ordering is
// ACE < Partlist < Cifplot.
func BenchmarkTable52(b *testing.B) {
	chips := []string{"cherry", "dchip", "schip2", "testram", "riscb"}
	for _, name := range chips {
		w := gen.MustBenchChip(name)
		boxes, labels := benchDrain(b, w.File)

		b.Run("ACE/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := extract.File(w.File, extract.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("Partlist/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := raster.ExtractBoxes(boxes, raster.Options{
					Grid: gen.Lambda, Labels: labels,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("Cifplot/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := cifplot.ExtractBoxes(boxes, cifplot.Options{Labels: labels}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E4 — ACE §5 time distribution. Reported as percentage metrics; the
// paper's split is 40/15/20/10/15 (frontend/insert/devices/alloc/misc).
func BenchmarkPhaseBreakdown(b *testing.B) {
	w := gen.MustBenchChip("dchip")
	src := cif.String(w.File)
	var p extract.Phases
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := extract.String(src, extract.Options{Profile: true})
		if err != nil {
			b.Fatal(err)
		}
		p = res.Phases
	}
	b.StopTimer()
	total := p.Total.Seconds()
	if total > 0 {
		b.ReportMetric(100*(p.Parse+p.FrontEnd).Seconds()/total, "%frontend")
		b.ReportMetric(100*p.Insert.Seconds()/total, "%insert")
		b.ReportMetric(100*p.Devices.Seconds()/total, "%devices")
		b.ReportMetric(100*p.Output.Seconds()/total, "%output")
		b.ReportMetric(100*p.Misc().Seconds()/total, "%misc")
	}
}

// E5 — ACE §4 worst case: the n×n mesh where 2n boxes denote n²
// transistors. Time per run must grow ~quadratically in n.
func BenchmarkWorstCaseMesh(b *testing.B) {
	for _, n := range []int{8, 16, 32, 64} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			w := gen.Mesh(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := extract.File(w.File, extract.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Netlist.Devices) != n*n {
					b.Fatal("wrong device count")
				}
			}
		})
	}
}

// E6 — ACE §4 expected-case model: under the Bentley–Haken–Hon box
// distribution, scanline stops and the active-list length grow as
// O(√N). Reported as metrics: quadrupling N should double both.
func BenchmarkExpectedModel(b *testing.B) {
	for _, n := range []int{4096, 16384, 65536} {
		n := n
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			w := gen.Statistical(n, 42)
			var stops, maxActive int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := extract.File(w.File, extract.Options{})
				if err != nil {
					b.Fatal(err)
				}
				stops = res.Counters.Stops
				maxActive = res.Counters.MaxActive
			}
			b.StopTimer()
			b.ReportMetric(float64(stops), "stops")
			b.ReportMetric(float64(maxActive), "maxActive")
		})
	}
}

// E7 — HEXT Figure 2-1/2-2: the four-inverter example, hierarchically.
func BenchmarkFig2FourInverters_HEXT(b *testing.B) {
	f := gen.FourInverters()
	for i := 0; i < b.N; i++ {
		res, err := hext.Extract(f, hext.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Netlist.Devices) != 8 {
			b.Fatal("wrong extraction")
		}
	}
}

// E8 — HEXT Table 4-1: the ideal square array. The hierarchical
// extraction time excluding flattening (metric "extract_us") should
// roughly double per 4× cells (O(√N)); the flat extractor's time
// quadruples. uniqWindows shows the memoisation at work.
func BenchmarkTable41_HEXT(b *testing.B) {
	for _, n := range []int{1024, 4096, 16384} {
		n := n
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			w := gen.SquareArray(n)
			var res *hext.Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				res, err = hext.Extract(w.File, hext.Options{})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			ex := res.Timing.FrontEnd + res.Timing.BackEnd()
			b.ReportMetric(float64(ex.Microseconds()), "extract_us")
			b.ReportMetric(float64(res.Counters.UniqueWindows), "uniqWindows")
		})
	}
}

// BenchmarkTable41_Flat is the flat column of Table 4-1.
func BenchmarkTable41_Flat(b *testing.B) {
	for _, n := range []int{1024, 4096, 16384} {
		n := n
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			w := gen.SquareArray(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := extract.File(w.File, extract.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E9 — HEXT Table 5-1: HEXT vs flat on the synthetic chips. HEXT wins
// big on testram (regular), loses on schip2 (irregular).
func BenchmarkTable51_HEXT(b *testing.B) {
	for _, name := range []string{"cherry", "dchip", "schip2", "testram", "psc", "riscb"} {
		w := gen.MustBenchChip(name)
		b.Run(name, func(b *testing.B) {
			var res *hext.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = hext.Extract(w.File, hext.Options{})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			ex := res.Timing.FrontEnd + res.Timing.BackEnd()
			b.ReportMetric(float64(ex.Microseconds()), "extract_us")
			b.ReportMetric(float64(res.Timing.FrontEnd.Microseconds()), "frontend_us")
			b.ReportMetric(float64(res.Timing.BackEnd().Microseconds()), "backend_us")
		})
	}
}

// E10 — HEXT Table 5-2: the share of back-end time spent composing
// windows (the paper averages 72%), plus the call counts.
func BenchmarkTable52_HEXT_Compose(b *testing.B) {
	for _, name := range []string{"cherry", "dchip", "schip2", "testram", "psc", "riscb"} {
		w := gen.MustBenchChip(name)
		b.Run(name, func(b *testing.B) {
			var res *hext.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = hext.Extract(w.File, hext.Options{})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			be := res.Timing.BackEnd().Seconds()
			if be > 0 {
				b.ReportMetric(100*res.Timing.Compose.Seconds()/be, "%compose")
			}
			b.ReportMetric(float64(res.Counters.FlatCalls), "flatCalls")
			b.ReportMetric(float64(res.Counters.ComposeCalls), "composeCalls")
		})
	}
}

func benchDrain(b *testing.B, f *cif.File) ([]frontend.Box, []frontend.Label) {
	b.Helper()
	stream, err := frontend.New(f, frontend.Options{})
	if err != nil {
		b.Fatal(err)
	}
	return stream.Drain(), stream.Labels()
}
