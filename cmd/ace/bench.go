package main

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"ace/internal/extract"
	"ace/internal/gen"
	"ace/internal/prof"
)

// benchEnv is the shared machine snapshot plus this benchmark's scale
// knob; baselines are only comparable against the same environment.
type benchEnv struct {
	prof.Env
	Scale float64 `json:"scale"`
}

type benchResult struct {
	Chip        string  `json:"chip"`
	Workers     int     `json:"workers"`
	Boxes       int     `json:"boxes"`
	Devices     int     `json:"devices"`
	Nets        int     `json:"nets"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	BoxesPerSec float64 `json:"boxes_per_sec"`
	DevsPerSec  float64 `json:"devs_per_sec"`
}

type benchReport struct {
	Env benchEnv `json:"env"`
	// PeakRSSBytes is the process high-water mark sampled after the
	// whole sweep — an upper bound on any single scenario's footprint.
	PeakRSSBytes int64         `json:"peak_rss_bytes"`
	Results      []benchResult `json:"results"`
}

// runBenchJSON benchmarks serial and banded extraction over the
// synthetic chips and writes a machine-readable baseline. Worker
// counts above NumCPU cannot speed anything up, but they still
// exercise the band-stitch overhead, so the sweep includes them and
// the env block says how many cores the numbers were taken on.
func runBenchJSON(path string, scale float64) {
	report := benchReport{Env: benchEnv{Env: prof.CaptureEnv(), Scale: scale}}

	workerSweep := []int{1, 2, 4, 8}
	for _, c := range gen.Chips {
		w := c.Build(scale)
		for _, workers := range workerSweep {
			opt := extract.Options{Workers: workers}
			// One untimed run for the design-dependent counts.
			probe, err := extract.File(w.File, opt)
			if err != nil {
				fatal(err)
			}
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := extract.File(w.File, opt); err != nil {
						b.Fatal(err)
					}
				}
			})
			sec := float64(r.NsPerOp()) / 1e9
			report.Results = append(report.Results, benchResult{
				Chip:        c.Name,
				Workers:     workers,
				Boxes:       probe.Counters.BoxesIn,
				Devices:     len(probe.Netlist.Devices),
				Nets:        len(probe.Netlist.Nets),
				NsPerOp:     r.NsPerOp(),
				AllocsPerOp: r.AllocsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
				BoxesPerSec: float64(probe.Counters.BoxesIn) / sec,
				DevsPerSec:  float64(len(probe.Netlist.Devices)) / sec,
			})
			fmt.Fprintf(os.Stderr, "%-10s workers=%d  %12v/op  %8d allocs/op  %10.0f boxes/sec\n",
				c.Name, workers, time.Duration(r.NsPerOp()), r.AllocsPerOp(),
				float64(probe.Counters.BoxesIn)*1e9/float64(r.NsPerOp()))
		}
	}

	report.PeakRSSBytes = prof.PeakRSSBytes()
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}
