package main

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"ace/internal/cif"
	"ace/internal/extract"
	"ace/internal/frontend"
	"ace/internal/gen"
	"ace/internal/prof"
)

// ingestResult is one measurement of the ingest pipeline: either the
// parse phase alone, or parse plus full instantiation ("heap" is the
// lazy heap front end, "flat" the pre-flattened streamed one).
type ingestResult struct {
	Workload       string `json:"workload"`
	Phase          string `json:"phase"` // "parse" or "ingest"
	Mode           string `json:"mode,omitempty"`
	FlattenWorkers int    `json:"flatten_workers,omitempty"`
	InputBytes     int    `json:"input_bytes"`
	Boxes          int    `json:"boxes,omitempty"`
	NsPerOp        int64  `json:"ns_per_op"`
	AllocsPerOp    int64  `json:"allocs_per_op"`
	BytesPerOp     int64  `json:"bytes_per_op"`
}

// prePRBaseline pins the numbers this PR is measured against. They
// were recorded on this same host (Intel Xeon @ 2.10GHz, 1 CPU,
// go1.22) from a work tree at commit 0a2f617 — the tree as it stood
// before the zero-alloc parser and the pre-flattened ingest landed —
// using the identical workloads and loop bodies ("parse" =
// cif.ParseBytes; "ingest" = cif.ParseBytes + frontend.New + Drain).
// Only allocs_per_op is load-independent enough to compare across
// hosts; ns_per_op is for same-host reference only.
var prePRBaseline = struct {
	Commit  string         `json:"commit"`
	Method  string         `json:"method"`
	Results []ingestResult `json:"results"`
}{
	Commit: "0a2f617",
	Method: "same host, benchtime 2s; parse = cif.ParseBytes, ingest = cif.ParseBytes + frontend.New + Stream.Drain",
	Results: []ingestResult{
		{Workload: "cherry", Phase: "parse", NsPerOp: 41735, AllocsPerOp: 165, BytesPerOp: 80688},
		{Workload: "dchip", Phase: "parse", NsPerOp: 56149, AllocsPerOp: 200, BytesPerOp: 108640},
		{Workload: "riscb", Phase: "parse", NsPerOp: 101575, AllocsPerOp: 267, BytesPerOp: 224416},
		{Workload: "statistical", Phase: "parse", NsPerOp: 7611748, AllocsPerOp: 13408, BytesPerOp: 17762119},
		{Workload: "cherry", Phase: "ingest", Mode: "heap", NsPerOp: 79976, AllocsPerOp: 187, BytesPerOp: 119240},
		{Workload: "dchip", Phase: "ingest", Mode: "heap", NsPerOp: 277643, AllocsPerOp: 228, BytesPerOp: 293272},
		{Workload: "riscb", Phase: "ingest", Mode: "heap", NsPerOp: 2715263, AllocsPerOp: 306, BytesPerOp: 2457048},
		{Workload: "statistical", Phase: "ingest", Mode: "heap", NsPerOp: 15493520, AllocsPerOp: 13455, BytesPerOp: 31895552},
	},
}

type ingestReport struct {
	Env           benchEnv       `json:"env"`
	PrePRBaseline any            `json:"pre_pr_baseline"`
	Results       []ingestResult `json:"results"`
}

// ingestWorkloads matches the baseline set: the three synthetic chips
// at bench scale plus a flat statistical design that stresses the
// parser rather than the hierarchy.
func ingestWorkloads() []gen.Workload {
	out := gen.BenchChips()
	return append(out, gen.Statistical(20000, 42))
}

// runBenchIngestJSON measures the ingest pipeline — parse alone, then
// parse plus instantiation through each front end — and writes the
// BENCH_3 baseline. Flatten workers above NumCPU add no speed on this
// host (the env block records the core count); they are included to
// show the streamed path's overhead stays flat with grain.
func runBenchIngestJSON(path string, scale float64) {
	report := ingestReport{
		Env:           benchEnv{Env: prof.CaptureEnv(), Scale: scale},
		PrePRBaseline: prePRBaseline,
	}

	add := func(r ingestResult, br testing.BenchmarkResult) {
		r.NsPerOp = br.NsPerOp()
		r.AllocsPerOp = br.AllocsPerOp()
		r.BytesPerOp = br.AllocedBytesPerOp()
		report.Results = append(report.Results, r)
		fmt.Fprintf(os.Stderr, "%-12s %-6s %-5s fw=%d  %12v/op  %8d allocs/op\n",
			r.Workload, r.Phase, r.Mode, r.FlattenWorkers,
			time.Duration(r.NsPerOp), r.AllocsPerOp)
	}

	for _, w := range ingestWorkloads() {
		if err := extractProbe(w); err != nil {
			fatal(err)
		}
		src := []byte(cif.String(w.File))

		add(ingestResult{Workload: w.Name, Phase: "parse", InputBytes: len(src)},
			testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := cif.ParseBytes(src); err != nil {
						b.Fatal(err)
					}
				}
			}))

		boxes := 0
		add(ingestResult{Workload: w.Name, Phase: "ingest", Mode: "heap", InputBytes: len(src)},
			testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					f, err := cif.ParseBytes(src)
					if err != nil {
						b.Fatal(err)
					}
					s, err := frontend.New(f, frontend.Options{})
					if err != nil {
						b.Fatal(err)
					}
					boxes = len(s.Drain())
				}
			}))
		report.Results[len(report.Results)-1].Boxes = boxes

		for _, fw := range []int{1, 2, 8} {
			add(ingestResult{Workload: w.Name, Phase: "ingest", Mode: "flat",
				FlattenWorkers: fw, InputBytes: len(src), Boxes: boxes},
				testing.Benchmark(func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						f, err := cif.ParseBytes(src)
						if err != nil {
							b.Fatal(err)
						}
						fl, err := frontend.Flatten(nil, f, frontend.Options{})
						if err != nil {
							b.Fatal(err)
						}
						fl.Stream(fw).Drain()
					}
				}))
		}
	}

	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}

// extractProbe keeps the ingest harness honest: the streamed path must
// still produce the same extraction the heap path does on this host
// before its numbers are worth recording.
func extractProbe(w gen.Workload) error {
	a, err := extract.File(w.File, extract.Options{})
	if err != nil {
		return err
	}
	b, err := extract.File(w.File, extract.Options{FlattenWorkers: 2})
	if err != nil {
		return err
	}
	if len(a.Netlist.Devices) != len(b.Netlist.Devices) || len(a.Netlist.Nets) != len(b.Netlist.Nets) {
		return fmt.Errorf("%s: flat path diverges (%d/%d devices, %d/%d nets)",
			w.Name, len(a.Netlist.Devices), len(b.Netlist.Devices),
			len(a.Netlist.Nets), len(b.Netlist.Nets))
	}
	return nil
}
