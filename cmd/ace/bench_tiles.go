package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"time"

	"ace/internal/cif"
	"ace/internal/frontend"
	"ace/internal/gen"
	"ace/internal/geom"
	"ace/internal/prof"
	"ace/internal/tile"
)

// The BENCH_5 scenario: a chip several times larger than a hard
// GOMEMLIMIT, extracted out-of-core from a packed tile file. The
// orchestrator generates the chip, packs it, and re-execs this binary
// as child processes — the memory limit and the peak-RSS measurement
// must belong to the process doing the extraction, not to the harness.
const (
	benchTilesTargetBoxes = 8_000_000
	benchTilesLimit       = "64MiB"
	benchTilesLimitBytes  = 64 << 20

	// GOMEMLIMIT is a soft limit on runtime-managed memory: the GC
	// deliberately lets the heap grow to the target before collecting,
	// and VmHWM additionally counts program text, stacks and pages the
	// OS has not reclaimed yet. A run that respects the limit therefore
	// peaks at (not under) it; the claim allows this much slack on top,
	// and a breach beyond it means the limit was genuinely violated.
	benchTilesRSSSlack = benchTilesLimitBytes / 8
)

// inRAMBoxBytes is the in-memory footprint of one flattened box
// (frontend.Box: layer + 4 int64 coordinates, padded), used to state
// the chip's in-RAM size honestly without relying on GC accounting.
const inRAMBoxBytes = int64(40)

type tileBenchChip struct {
	TargetBoxes int64  `json:"target_boxes"`
	Boxes       int64  `json:"boxes"`
	Instances   int64  `json:"instances"`
	CIFBytes    int64  `json:"cif_bytes"`
	TileBytes   int64  `json:"tile_bytes"`
	InRAMBytes  int64  `json:"in_ram_bytes"` // boxes x sizeof(frontend.Box)
	Grid        string `json:"grid"`
}

type tileBenchScenario struct {
	Name string `json:"name"`
	// Source and Workers echo the child's configuration; GOMEMLIMIT is
	// the limit the child ran under ("" = unlimited).
	GOMEMLIMIT    string   `json:"gomemlimit,omitempty"`
	Stats         runStats `json:"stats"`
	WirelistBytes int64    `json:"wirelist_bytes"`
	// ByteIdentical compares this child's wirelist against the cif-w1
	// reference; absent on the reference itself.
	ByteIdentical *bool `json:"byte_identical,omitempty"`
}

type tileBenchWindow struct {
	Name string `json:"name"`
	Rect string `json:"rect"`
	// AreaFraction is window area over chip area; the O(window) claim
	// is that DecodeFraction and ReadFraction track it, not 1.0.
	AreaFraction   float64  `json:"area_fraction"`
	DecodeFraction float64  `json:"decode_fraction"` // tiles decoded / non-empty tiles
	ReadFraction   float64  `json:"read_fraction"`   // bytes read / file bytes
	Stats          runStats `json:"stats"`
}

// tileBenchClaims states the acceptance conditions as recorded facts:
// the chip exceeds the limit several times over, every tiled run
// stayed under it, and windowed queries touched O(window) tiles.
type tileBenchClaims struct {
	LimitBytes          int64   `json:"limit_bytes"`
	RSSSlackBytes       int64   `json:"rss_slack_bytes"` // see benchTilesRSSSlack
	ChipOverLimit       float64 `json:"chip_over_limit"` // in_ram_bytes / limit_bytes
	ChipAtLeast4xLimit  bool    `json:"chip_at_least_4x_limit"`
	TiledPeakUnderLimit bool    `json:"tiled_peak_under_limit"` // peak <= limit + slack
	AllByteIdentical    bool    `json:"all_byte_identical"`
	WindowsReadOWindow  bool    `json:"windows_read_o_window"`
}

type tileBenchReport struct {
	Env       benchEnv            `json:"env"`
	Chip      tileBenchChip       `json:"chip"`
	Scenarios []tileBenchScenario `json:"scenarios"`
	Windows   []tileBenchWindow   `json:"windows"`
	Claims    tileBenchClaims     `json:"claims"`
}

// runBenchTilesJSON writes the BENCH_5 baseline. Scale shrinks the
// chip for smoke runs (the claims are only meaningful at scale 1,
// where the chip is ~4-5x the 64MiB limit; they are recorded either
// way, never fudged).
func runBenchTilesJSON(path string, scale float64) {
	target := int64(float64(benchTilesTargetBoxes) * scale)
	if target < 10_000 {
		target = 10_000
	}
	exe, err := os.Executable()
	if err != nil {
		fatal(err)
	}
	dir, err := os.MkdirTemp("", "ace-bench5-")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(dir)

	report := tileBenchReport{Env: benchEnv{Env: prof.CaptureEnv(), Scale: scale}}

	// Generate the chip as streamed CIF, then pack it. The orchestrator
	// is not the process under test, so packing in-process is fine.
	cifPath := filepath.Join(dir, "chip.cif")
	info := streamChipFile(cifPath, gen.StreamSpec{TargetBoxes: target})
	tilePath := filepath.Join(dir, "chip.actb")
	packed := packTileFile(cifPath, tilePath)
	report.Chip = tileBenchChip{
		TargetBoxes: target,
		Boxes:       info.Boxes,
		Instances:   info.Instances,
		CIFBytes:    fileSize(cifPath),
		TileBytes:   fileSize(tilePath),
		InRAMBytes:  info.Boxes * inRAMBoxBytes,
		Grid:        packed,
	}
	fmt.Fprintf(os.Stderr, "chip: %d boxes, cif %d bytes, tiles %d bytes (in-RAM ~%d MiB, limit %s)\n",
		info.Boxes, report.Chip.CIFBytes, report.Chip.TileBytes,
		report.Chip.InRAMBytes>>20, benchTilesLimit)

	// Full-chip extractions: in-RAM references (no limit), then tiled
	// runs under the hard GOMEMLIMIT. cif-w1 is the byte-identity
	// reference.
	var refWL []byte
	allIdentical := true
	tiledUnderLimit := true
	for _, sc := range []struct {
		name    string
		workers int
		tiled   bool
	}{
		{"cif-w1", 1, false},
		{"cif-w4", 4, false},
		{"tiles-w1", 1, true},
		{"tiles-w4", 4, true},
	} {
		wlPath := filepath.Join(dir, sc.name+".wl")
		stPath := filepath.Join(dir, sc.name+".json")
		// -name pins the wirelist part name: the sources are different
		// files, and byte-identity must compare the netlists, not paths.
		args := []string{"-workers", strconv.Itoa(sc.workers), "-name", "chip",
			"-o", wlPath, "-stats-json", stPath}
		limit := ""
		if sc.tiled {
			args = append(args, "-tiles", tilePath)
			limit = benchTilesLimit
		} else {
			args = append(args, cifPath)
		}
		st := runBenchChild(exe, sc.name, args, limit, stPath)
		wl, err := os.ReadFile(wlPath)
		if err != nil {
			fatal(err)
		}
		entry := tileBenchScenario{Name: sc.name, GOMEMLIMIT: limit, Stats: st, WirelistBytes: int64(len(wl))}
		if refWL == nil {
			refWL = wl
		} else {
			same := bytes.Equal(wl, refWL)
			entry.ByteIdentical = &same
			if !same {
				allIdentical = false
			}
		}
		if sc.tiled && st.PeakRSSBytes > benchTilesLimitBytes+benchTilesRSSSlack {
			tiledUnderLimit = false
		}
		report.Scenarios = append(report.Scenarios, entry)
	}

	// Windowed queries: a one-tile window and a quarter-chip window.
	// The counters in the child's stats are deltas for just that query.
	r, err := tile.Open(tilePath)
	if err != nil {
		fatal(err)
	}
	g := r.Grid()
	chipArea := float64(g.BBox.W()) * float64(g.BBox.H())
	c := g.BBox.Center()
	windows := []struct {
		name string
		rect geom.Rect
	}{
		{"tile", geom.Rect{XMin: c.X, YMin: c.Y, XMax: c.X + g.TileW, YMax: c.Y + g.TileH}},
		{"quarter", geom.Rect{
			XMin: c.X - g.BBox.W()/4, YMin: c.Y - g.BBox.H()/4,
			XMax: c.X + g.BBox.W()/4, YMax: c.Y + g.BBox.H()/4,
		}},
	}
	r.Close()
	windowsOK := true
	for _, w := range windows {
		wlPath := filepath.Join(dir, "win-"+w.name+".wl")
		stPath := filepath.Join(dir, "win-"+w.name+".json")
		rect := fmt.Sprintf("%d,%d,%d,%d", w.rect.XMin, w.rect.YMin, w.rect.XMax, w.rect.YMax)
		st := runBenchChild(exe, "window-"+w.name,
			[]string{"-tiles", tilePath, "-window", rect, "-o", wlPath, "-stats-json", stPath},
			benchTilesLimit, stPath)
		entry := tileBenchWindow{
			Name:         "window-" + w.name,
			Rect:         rect,
			AreaFraction: float64(w.rect.W()) * float64(w.rect.H()) / chipArea,
			Stats:        st,
		}
		if st.TilesTotal > 0 {
			entry.DecodeFraction = float64(st.TilesDecoded) / float64(st.TilesTotal)
		}
		if st.FileBytes > 0 {
			entry.ReadFraction = float64(st.BytesRead) / float64(st.FileBytes)
		}
		// O(window): allow slack for partial tile overlap at the window
		// boundary and the index read, but nothing near O(chip).
		if entry.DecodeFraction > 4*entry.AreaFraction+0.02 || entry.ReadFraction > 4*entry.AreaFraction+0.02 {
			windowsOK = false
		}
		report.Windows = append(report.Windows, entry)
	}

	report.Claims = tileBenchClaims{
		LimitBytes:          benchTilesLimitBytes,
		RSSSlackBytes:       benchTilesRSSSlack,
		ChipOverLimit:       float64(report.Chip.InRAMBytes) / float64(benchTilesLimitBytes),
		ChipAtLeast4xLimit:  report.Chip.InRAMBytes >= 4*benchTilesLimitBytes,
		TiledPeakUnderLimit: tiledUnderLimit,
		AllByteIdentical:    allIdentical,
		WindowsReadOWindow:  windowsOK,
	}
	if !allIdentical {
		fatal(fmt.Errorf("tiled wirelist differs from the in-RAM reference"))
	}
	if !tiledUnderLimit {
		fmt.Fprintf(os.Stderr, "ace: warning: a tiled run's peak RSS exceeded %s plus slack\n", benchTilesLimit)
	}

	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}

// runBenchChild re-execs this binary with args, optionally under a
// GOMEMLIMIT, and reads back the -stats-json file the child wrote.
func runBenchChild(exe, name string, args []string, gomemlimit, statsPath string) runStats {
	t0 := time.Now()
	cmd := exec.Command(exe, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	cmd.Env = os.Environ()
	if gomemlimit != "" {
		cmd.Env = append(cmd.Env, "GOMEMLIMIT="+gomemlimit)
	}
	if err := cmd.Run(); err != nil {
		fatal(fmt.Errorf("child %s: %w", name, err))
	}
	data, err := os.ReadFile(statsPath)
	if err != nil {
		fatal(fmt.Errorf("child %s stats: %w", name, err))
	}
	var st runStats
	if err := json.Unmarshal(data, &st); err != nil {
		fatal(fmt.Errorf("child %s stats: %w", name, err))
	}
	fmt.Fprintf(os.Stderr, "%-14s %8v  peakRSS %5d MiB  tiles %d/%d  read %d/%d bytes\n",
		name, time.Since(t0).Round(time.Millisecond), st.PeakRSSBytes>>20,
		st.TilesDecoded, st.TilesTotal, st.BytesRead, st.FileBytes)
	return st
}

// streamChipFile writes the streamed benchmark chip to path.
func streamChipFile(path string, spec gen.StreamSpec) gen.StreamInfo {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	info, err := gen.StreamChip(bw, spec)
	if err == nil {
		err = bw.Flush()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fatal(err)
	}
	return info
}

// packTileFile converts the CIF chip to the tiled format, the same way
// cmd/cifpack does: hierarchy-only parse, lazy front end, tile writer
// buffering one tile row at a time. Returns the grid as "cols x rows".
func packTileFile(in, out string) string {
	src, err := os.Open(in)
	if err != nil {
		fatal(err)
	}
	defer src.Close()
	f, err := cif.ParseReaderOpts(bufio.NewReader(src), cif.ParseOptions{})
	if err != nil {
		fatal(err)
	}
	stream, err := frontend.New(f, frontend.Options{})
	if err != nil {
		fatal(err)
	}
	grid := tile.NewGrid(stream.BBox(), tile.DefaultGrid, tile.DefaultGrid)
	dst, err := os.Create(out)
	if err != nil {
		fatal(err)
	}
	bw := bufio.NewWriterSize(dst, 1<<20)
	tw, err := tile.NewWriter(bw, grid)
	if err != nil {
		fatal(err)
	}
	for _, l := range stream.Labels() {
		tw.AddLabel(l)
	}
	for {
		b, ok := stream.Next()
		if !ok {
			break
		}
		if err := tw.Add(b); err != nil {
			fatal(err)
		}
	}
	if err := tw.Close(); err != nil {
		fatal(err)
	}
	if err := bw.Flush(); err != nil {
		fatal(err)
	}
	if err := dst.Close(); err != nil {
		fatal(err)
	}
	return fmt.Sprintf("%dx%d", grid.Cols, grid.Rows)
}

func fileSize(path string) int64 {
	fi, err := os.Stat(path)
	if err != nil {
		fatal(err)
	}
	return fi.Size()
}
