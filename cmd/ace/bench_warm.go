package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ace/internal/extract"
	"ace/internal/gen"
	"ace/internal/hext"
	"ace/internal/prof"
	"ace/internal/wirelist"
)

// warmLoopN is the explicit warm-loop length the GC deltas are taken
// over: long enough for the pools to reach steady state and for
// collector activity (or its absence) to be visible, short enough to
// keep the whole sweep tractable on a laptop.
const warmLoopN = 100

// benchCost is one measured configuration: the triple that matters for
// an amortization claim.
type benchCost struct {
	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
}

func toCost(r testing.BenchmarkResult) benchCost {
	return benchCost{
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

func reductionPct(cold, warm int64) float64 {
	if cold <= 0 {
		return 0
	}
	return 100 * float64(cold-warm) / float64(cold)
}

// warmCaseResult compares one input's package-level (cold) extraction
// against extraction through a reused Engine (warm). GCDelta covers an
// explicit warmLoopN-iteration warm loop; ByteIdentical reports whether
// every reuse × FlattenWorkers × Workers combination reproduced the
// cold serial wirelist bit for bit.
type warmCaseResult struct {
	Case              string       `json:"case"`
	Source            string       `json:"source"` // "corpus" or "gen"
	Boxes             int          `json:"boxes"`
	Devices           int          `json:"devices"`
	Nets              int          `json:"nets"`
	Cold              benchCost    `json:"cold"`
	Warm              benchCost    `json:"warm"`
	AllocReductionPct float64      `json:"alloc_reduction_pct"`
	GCDelta           prof.GCStats `json:"gc_delta_warm_loop"`
	ByteIdentical     bool         `json:"byte_identical"`
}

// warmHextResult is the hierarchical engine's half: a fresh Session per
// extraction (cold) against one Session re-extracting the same design
// (warm, where the memo and pooled sweep scratch live).
type warmHextResult struct {
	Case              string       `json:"case"`
	Cold              benchCost    `json:"cold"`
	Warm              benchCost    `json:"warm"`
	AllocReductionPct float64      `json:"alloc_reduction_pct"`
	GCDelta           prof.GCStats `json:"gc_delta_warm_loop"`
	ByteIdentical     bool         `json:"byte_identical"`
}

type warmBenchReport struct {
	Env   benchEnv `json:"env"`
	LoopN int      `json:"loop_n"`
	// ByteIdentical is the AND over every case and setting — the whole
	// report's correctness gate, hoisted so a harness can check one key.
	ByteIdentical bool             `json:"byte_identical"`
	Results       []warmCaseResult `json:"results"`
	Hext          []warmHextResult `json:"hext"`
	PeakRSSBytes  int64            `json:"peak_rss_bytes"`
}

// warmCase is one benchmark input with both entry forms: run executes
// an extraction (package-level when eng is nil, through eng otherwise).
type warmCase struct {
	name   string
	source string
	run    func(eng *extract.Engine, opt extract.Options) (*extract.Result, error)
}

// corpusCases loads the checked-in CIF corpus. The paths are relative
// to the repo root; a run from elsewhere just gets the gen chips.
func corpusCases() []warmCase {
	paths, _ := filepath.Glob(filepath.Join("internal", "extract", "testdata", "*.cif"))
	var cases []warmCase
	for _, p := range paths {
		src, err := os.ReadFile(p)
		if err != nil {
			continue
		}
		text := string(src)
		name := filepath.Base(p)
		cases = append(cases, warmCase{
			name:   name,
			source: "corpus",
			run: func(eng *extract.Engine, opt extract.Options) (*extract.Result, error) {
				if eng == nil {
					return extract.String(text, opt)
				}
				return eng.String(text, opt)
			},
		})
	}
	return cases
}

func genCases(scale float64) []warmCase {
	var cases []warmCase
	for _, c := range gen.Chips {
		w := c.Build(scale)
		f := w.File
		cases = append(cases, warmCase{
			name:   c.Name,
			source: "gen",
			run: func(eng *extract.Engine, opt extract.Options) (*extract.Result, error) {
				if eng == nil {
					return extract.File(f, opt)
				}
				return eng.File(f, opt)
			},
		})
	}
	return cases
}

// checkByteIdentity renders the warm outputs of every reuse count ×
// FlattenWorkers × Workers setting and compares them against the cold
// serial baseline. Each setting gets a fresh Engine reused reuses
// times, rendering through the Engine's pooled output buffer so the
// render path itself exercises reuse too.
func checkByteIdentity(c warmCase, baseline []byte) (bool, error) {
	const reuses = 3
	for _, fw := range []int{1, 8} {
		for _, sw := range []int{1, 4} {
			opt := extract.Options{Workers: sw, FlattenWorkers: fw}
			eng := extract.NewEngine()
			for i := 0; i < reuses; i++ {
				res, err := c.run(eng, opt)
				if err != nil {
					return false, fmt.Errorf("%s fw=%d sw=%d reuse=%d: %v", c.name, fw, sw, i, err)
				}
				out, err := wirelist.AppendTo(eng.GetOutBuf(), res.Netlist, wirelist.Options{})
				if err != nil {
					return false, err
				}
				same := bytes.Equal(out, baseline)
				eng.PutOutBuf(out)
				if !same {
					fmt.Fprintf(os.Stderr, "ace: %s fw=%d sw=%d reuse=%d: output DIVERGED from cold serial baseline\n",
						c.name, fw, sw, i)
					return false, nil
				}
			}
		}
	}
	return true, nil
}

// runBenchWarmJSON measures cold-vs-warm extraction cost over the CIF
// corpus and the synthetic chips, verifies byte-identity of every warm
// combination, and writes the machine-readable report the amortization
// claim rests on. Everything runs serially (Workers=1) for the cost
// rows — allocation is the metric under comparison and the byte-identity
// sweep covers the parallel settings.
func runBenchWarmJSON(path string, scale float64) {
	report := warmBenchReport{
		Env:           benchEnv{Env: prof.CaptureEnv(), Scale: scale},
		LoopN:         warmLoopN,
		ByteIdentical: true,
	}

	opt := extract.Options{Workers: 1}
	cases := append(corpusCases(), genCases(scale)...)
	for _, c := range cases {
		// Untimed probe: design-dependent counts plus the byte-identity
		// baseline (cold, serial, package-level).
		probe, err := c.run(nil, opt)
		if err != nil {
			fatal(fmt.Errorf("%s: %v", c.name, err))
		}
		baseline, err := wirelist.AppendTo(nil, probe.Netlist, wirelist.Options{})
		if err != nil {
			fatal(err)
		}

		cold := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := c.run(nil, opt); err != nil {
					b.Fatal(err)
				}
			}
		})

		eng := extract.NewEngine()
		// Two warmup runs fill the pools before anything is measured.
		for i := 0; i < 2; i++ {
			if _, err := c.run(eng, opt); err != nil {
				fatal(err)
			}
		}
		warm := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := c.run(eng, opt); err != nil {
					b.Fatal(err)
				}
			}
		})

		// Collector activity over an explicit steady-state loop.
		gc0 := prof.CaptureGC()
		for i := 0; i < warmLoopN; i++ {
			if _, err := c.run(eng, opt); err != nil {
				fatal(err)
			}
		}
		gcd := prof.CaptureGC().Delta(gc0)

		ident, err := checkByteIdentity(c, baseline)
		if err != nil {
			fatal(err)
		}
		report.ByteIdentical = report.ByteIdentical && ident

		r := warmCaseResult{
			Case:              c.name,
			Source:            c.source,
			Boxes:             probe.Counters.BoxesIn,
			Devices:           len(probe.Netlist.Devices),
			Nets:              len(probe.Netlist.Nets),
			Cold:              toCost(cold),
			Warm:              toCost(warm),
			AllocReductionPct: reductionPct(cold.AllocsPerOp(), warm.AllocsPerOp()),
			GCDelta:           gcd,
			ByteIdentical:     ident,
		}
		report.Results = append(report.Results, r)
		fmt.Fprintf(os.Stderr, "%-14s cold %8d allocs/op  warm %6d allocs/op  (-%.1f%%)  %12v/op warm  gc=%d ident=%v\n",
			c.name, r.Cold.AllocsPerOp, r.Warm.AllocsPerOp, r.AllocReductionPct,
			time.Duration(r.Warm.NsPerOp), gcd.NumGC, ident)
	}

	report.Hext = append(report.Hext, benchWarmHext(scale))
	for _, h := range report.Hext {
		report.ByteIdentical = report.ByteIdentical && h.ByteIdentical
	}

	report.PeakRSSBytes = prof.PeakRSSBytes()
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (byteIdentical=%v)\n", path, report.ByteIdentical)
}

// benchWarmHext measures the hierarchical engine's warm loop on the
// first synthetic chip: a fresh Session per extraction (cold — the
// memo, content cache and sweep pools are rebuilt every time) against
// one Session re-extracting the same design (warm — everything hits).
func benchWarmHext(scale float64) warmHextResult {
	c := gen.Chips[0]
	w := c.Build(scale)
	hopt := hext.Options{}

	probe, err := hext.Extract(w.File, hopt)
	if err != nil {
		fatal(err)
	}
	baseline := wirelist.Format(probe.Netlist, wirelist.Options{})

	cold := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := hext.Extract(w.File, hopt); err != nil {
				b.Fatal(err)
			}
		}
	})

	s := hext.NewSession(hopt)
	ident := true
	for i := 0; i < 2; i++ {
		res, err := s.Extract(w.File)
		if err != nil {
			fatal(err)
		}
		if wirelist.Format(res.Netlist, wirelist.Options{}) != baseline {
			ident = false
		}
	}
	warm := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := s.Extract(w.File); err != nil {
				b.Fatal(err)
			}
		}
	})

	gc0 := prof.CaptureGC()
	for i := 0; i < warmLoopN; i++ {
		if _, err := s.Extract(w.File); err != nil {
			fatal(err)
		}
	}
	gcd := prof.CaptureGC().Delta(gc0)

	res := warmHextResult{
		Case:              "hext/" + c.Name,
		Cold:              toCost(cold),
		Warm:              toCost(warm),
		AllocReductionPct: reductionPct(cold.AllocsPerOp(), warm.AllocsPerOp()),
		GCDelta:           gcd,
		ByteIdentical:     ident,
	}
	fmt.Fprintf(os.Stderr, "%-14s cold %8d allocs/op  warm %6d allocs/op  (-%.1f%%)  %12v/op warm  gc=%d ident=%v\n",
		res.Case, res.Cold.AllocsPerOp, res.Warm.AllocsPerOp, res.AllocReductionPct,
		time.Duration(res.Warm.NsPerOp), gcd.NumGC, ident)
	return res
}
