// Command ace is the flat circuit extractor: CIF in, wirelist out.
//
// Usage:
//
//	ace [flags] [input.cif]         extract a design (stdin if no file)
//	ace -table51 [-scale 0.1]       reproduce ACE Table 5-1
//	ace -table52 [-scale 0.1]       reproduce ACE Table 5-2
//	ace -phases  [-scale 0.1]       reproduce the §5 time distribution
//	ace -mesh n                     run the §4 worst-case mesh
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"ace/internal/check"
	"ace/internal/cif"
	"ace/internal/cifplot"
	"ace/internal/cli"
	"ace/internal/extract"
	"ace/internal/frontend"
	"ace/internal/gen"
	"ace/internal/guard"
	"ace/internal/hext"
	"ace/internal/prof"
	"ace/internal/raster"
	"ace/internal/wirelist"
)

func main() {
	var (
		out      = flag.String("o", "", "write the wirelist to this file (default stdout)")
		geometry = flag.Bool("g", false, "include net and device geometry in the wirelist")
		stats    = flag.Bool("stats", false, "print summary statistics instead of the wirelist")
		profile  = flag.Bool("phases-only", false, "with an input file: print the phase breakdown")
		table51  = flag.Bool("table51", false, "reproduce ACE Table 5-1 on the synthetic chips")
		table52  = flag.Bool("table52", false, "reproduce ACE Table 5-2 (ACE vs Partlist vs Cifplot)")
		phases   = flag.Bool("phases", false, "reproduce the §5 time-distribution list")
		mesh     = flag.Int("mesh", 0, "extract the n×n worst-case mesh and print timing")
		model    = flag.Bool("model", false, "reproduce the §4 expected-case model counters (E6)")
		scale    = flag.Float64("scale", 1.0, "chip scale factor for the table harnesses")
		bench    = flag.String("bench-json", "", "benchmark the synthetic chips and write a JSON baseline to this file")
		benchIn  = flag.String("bench-ingest-json", "", "benchmark the ingest pipeline (parse + instantiate) and write a JSON baseline to this file")
		benchTil = flag.String("bench-tiles-json", "", "benchmark out-of-core tiled extraction under GOMEMLIMIT and write a JSON baseline to this file")
		benchWrm = flag.String("bench-warm-json", "", "benchmark cold vs warm-engine extraction (allocs/op, GC deltas, byte-identity) and write a JSON baseline to this file")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.BoolVar(&flagHier, "hier", false, "extract with the hierarchical engine (hext) instead of the flat sweep")
	flag.StringVar(&flagCacheDir, "cache-dir", "", "persistent extraction cache directory (implies -hier; empty: disabled)")
	flag.IntVar(&flagWorkers, "workers", 0, "split the sweep into this many concurrent bands (0 or 1: serial)")
	flag.IntVar(&flagFlattenWorkers, "flatten-workers", 0, "pre-flatten the design and stamp instances with this many workers, streaming boxes into the sweep (0: lazy heap front end)")
	flag.DurationVar(&flagTimeout, "timeout", 0, "abort the extraction after this wall-clock duration (e.g. 30s; 0: no limit)")
	flag.BoolVar(&flagLenient, "lenient", false, "recover from malformed CIF: record located diagnostics, resynchronise, extract the salvageable geometry")
	flag.BoolVar(&flagCheck, "check", false, "run the static electrical-rule checker on the extracted netlist")
	flag.BoolVar(&flagDiagJSON, "diag-json", false, "emit diagnostics as a JSON report on stdout (the wirelist then requires -o)")
	flag.Int64Var(&flagMaxBoxes, "max-boxes", 0, "fail the extraction after this many geometry items (0: unlimited)")
	flag.StringVar(&flagName, "name", "", "override the wirelist part name (default: the input path)")
	flag.StringVar(&flagTiles, "tiles", "", "extract from a packed tile file (see cmd/cifpack) instead of CIF")
	flag.StringVar(&flagWindow, "window", "", "with -tiles: extract only the window x0,y0,x1,y1 (centimicrons), reading O(window) tiles")
	flag.StringVar(&flagStatsJSON, "stats-json", "", "write a machine-readable run summary (timing, peak RSS, tile I/O) to this file")
	flag.IntVar(&flagRepeat, "repeat", 1, "re-extract the design this many times in one process through a warm engine, reporting per-iteration timings")
	flag.Parse()

	gcStart = prof.CaptureGC()

	stop, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fatal(err)
	}
	defer stop()

	switch {
	case *benchIn != "":
		runBenchIngestJSON(*benchIn, *scale)
	case *bench != "":
		runBenchJSON(*bench, *scale)
	case *benchTil != "":
		runBenchTilesJSON(*benchTil, *scale)
	case *benchWrm != "":
		runBenchWarmJSON(*benchWrm, *scale)
	case flagTiles != "":
		runExtractTiles(*out, *geometry, *stats, *profile)
	case *table51:
		runTable51(*scale)
	case *table52:
		runTable52(*scale)
	case *phases:
		runPhases(*scale)
	case *mesh > 0:
		runMesh(*mesh)
	case *model:
		runModel()
	default:
		runExtract(flag.Arg(0), *out, *geometry, *stats, *profile)
	}
}

func fatal(err error) {
	cli.Fatal("ace", err)
}

func runExtract(in, out string, geometry, stats, profile bool) {
	if flagWindow != "" {
		fatal(fmt.Errorf("-window requires -tiles: windowed queries read a packed tile file"))
	}
	r := os.Stdin
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	ctx, cancel := extractCtx()
	defer cancel()
	if flagHier || flagCacheDir != "" {
		runExtractHier(ctx, r, in, out, geometry, stats)
		return
	}
	opt := extract.Options{
		KeepGeometry:   geometry,
		Profile:        profile || stats,
		Workers:        flagWorkers,
		FlattenWorkers: flagFlattenWorkers,
		Lenient:        flagLenient,
		Limits:         guard.Limits{MaxBoxes: flagMaxBoxes},
	}
	t0 := time.Now()
	var res *extract.Result
	var err error
	if flagRepeat > 1 {
		// A warm loop: one engine, the same bytes, N extractions. The
		// input is buffered so every iteration re-reads identical text;
		// the last result is the one reported and written out.
		src, rerr := io.ReadAll(r)
		if rerr != nil {
			fatal(rerr)
		}
		eng := extract.NewEngine()
		for i := 0; i < flagRepeat; i++ {
			it0 := time.Now()
			res, err = eng.ReaderContext(ctx, bytes.NewReader(src), opt)
			if err != nil {
				fatal(err)
			}
			recordIter(time.Since(it0))
		}
	} else {
		res, err = extract.ReaderContext(ctx, r, opt)
		if err != nil {
			fatal(err)
		}
	}
	elapsed := time.Since(t0)
	if flagCheck {
		res.Diagnostics.AddAll(check.Run(res.Netlist, check.Options{}))
		res.Diagnostics.Sort()
	}
	diagMode := flagLenient || flagCheck || flagDiagJSON
	if diagMode {
		// The unified renderer covers warnings too; the legacy per-line
		// warning echo would duplicate them.
		if err := cli.RenderDiagnostics(in, &res.Diagnostics, flagDiagJSON, os.Stdout, os.Stderr); err != nil {
			fatal(err)
		}
	} else {
		for _, w := range res.Warnings {
			fmt.Fprintln(os.Stderr, "ace: warning:", w)
		}
	}
	if in != "" {
		res.Netlist.Name = in
	}
	if flagName != "" {
		res.Netlist.Name = flagName
	}

	if stats || profile {
		fmt.Printf("%s\n", res.Netlist.Stats())
		fmt.Printf("boxes=%d stops=%d maxActive=%d cellsExpanded=%d\n",
			res.Counters.BoxesIn, res.Counters.Stops, res.Counters.MaxActive,
			res.Frontend.CellsExpanded)
		p := res.Phases
		if flagFlattenWorkers > 0 {
			// Streamed ingest: flatten wall-clock overlaps the sweep,
			// and the run-sort CPU is contained inside it.
			fmt.Printf("phases: parse=%v flatten=%v sort=%v insert=%v devices=%v output=%v misc=%v total=%v\n",
				p.Parse, p.Flatten, p.Sort, p.Insert, p.Devices, p.Output, p.Misc(), p.Total)
		} else {
			fmt.Printf("phases: parse=%v frontend=%v insert=%v devices=%v output=%v misc=%v total=%v\n",
				p.Parse, p.FrontEnd, p.Insert, p.Devices, p.Output, p.Misc(), p.Total)
		}
		printResourceStats(res.Tile)
		if profile {
			writeRunStats("cif", res, elapsed)
			os.Exit(cli.Exit(&res.Diagnostics))
		}
	}

	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if !stats && !(flagDiagJSON && out == "") {
		// With -diag-json the JSON report owns stdout; the wirelist is
		// written only when -o directs it elsewhere.
		if err := wirelist.Write(w, res.Netlist, wirelist.Options{Geometry: geometry}); err != nil {
			fatal(err)
		}
	}
	writeRunStats("cif", res, elapsed)
	if code := cli.Exit(&res.Diagnostics); code != cli.ExitOK {
		os.Exit(code)
	}
}

// runExtractHier is runExtract delegated to the hierarchical engine:
// same flat wirelist, same diagnostics rendering and exit-code
// taxonomy, but windows are memoised — and, with -cache-dir, persisted
// across processes.
func runExtractHier(ctx context.Context, r io.Reader, in, out string, geometry, stats bool) {
	if geometry {
		fmt.Fprintln(os.Stderr, "ace: warning: -g is not supported with -hier; geometry omitted")
	}
	hopt := hext.Options{
		Workers:  flagWorkers,
		CacheDir: flagCacheDir,
		Lenient:  flagLenient,
		Limits:   guard.Limits{MaxBoxes: flagMaxBoxes},
	}
	var res *hext.Result
	var err error
	if flagRepeat > 1 {
		// A warm session loop: parse once, then re-extract through one
		// Session so the memo, pools and caches stay hot.
		f, perr := cif.ParseReaderOpts(r, cif.ParseOptions{
			Limits: hopt.Limits, Lenient: hopt.Lenient, Diag: hopt.Diag,
		})
		if perr != nil {
			fatal(perr)
		}
		s := hext.NewSession(hopt)
		for i := 0; i < flagRepeat; i++ {
			it0 := time.Now()
			res, err = s.ExtractContext(ctx, f)
			if err != nil {
				fatal(err)
			}
			recordIter(time.Since(it0))
		}
	} else {
		res, err = hext.ReaderContext(ctx, r, hopt)
		if err != nil {
			fatal(err)
		}
	}
	if flagCheck {
		res.Diagnostics.AddAll(check.Run(res.Netlist, check.Options{}))
		res.Diagnostics.Sort()
	}
	if flagLenient || flagCheck || flagDiagJSON {
		if err := cli.RenderDiagnostics(in, &res.Diagnostics, flagDiagJSON, os.Stdout, os.Stderr); err != nil {
			fatal(err)
		}
	} else {
		for _, w := range res.Warnings {
			fmt.Fprintln(os.Stderr, "ace: warning:", w)
		}
	}
	if in != "" {
		res.Netlist.Name = in
	}
	if flagName != "" {
		res.Netlist.Name = flagName
	}
	if stats {
		c := res.Counters
		fmt.Printf("%s\n", res.Netlist.Stats())
		fmt.Printf("uniqueWindows=%d memoHits=%d diskHits=%d diskMisses=%d diskErrors=%d diskPutErrors=%d\n",
			c.UniqueWindows, c.MemoHits, c.DiskHits, c.DiskMisses, c.DiskErrors, c.DiskPutErrors)
		printResourceStats(nil)
	}
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if !stats && !(flagDiagJSON && out == "") {
		if err := wirelist.Write(w, res.Netlist, wirelist.Options{}); err != nil {
			fatal(err)
		}
	}
	if code := cli.Exit(&res.Diagnostics); code != cli.ExitOK {
		os.Exit(code)
	}
}

// runTable51 reproduces ACE Table 5-1: per chip, devices, boxes,
// extraction time, devices/sec and boxes/sec — demonstrating that the
// run time is linear in the number of boxes.
func runTable51(scale float64) {
	fmt.Printf("ACE Table 5-1 (synthetic stand-in chips, scale %.2f, %s)\n\n", scale, hostLine())
	fmt.Printf("%-10s %9s %12s %12s %12s %12s\n",
		"Name", "Devices", "Boxes", "Time", "Devs/sec", "Boxes/sec")
	for _, c := range gen.Chips {
		w := c.Build(scale)
		res, dur := timedExtract(w.File)
		sec := dur.Seconds()
		fmt.Printf("%-10s %9d %12d %12s %12.0f %12.0f\n",
			c.Name, len(res.Netlist.Devices), res.Counters.BoxesIn,
			round(dur), float64(len(res.Netlist.Devices))/sec,
			float64(res.Counters.BoxesIn)/sec)
	}
	fmt.Printf("\nPaper (VAX-11/780): 7–14 devs/sec, 83–123 boxes/sec, flat across sizes.\n")
}

// runTable52 reproduces ACE Table 5-2: ACE vs the run-encoded raster
// baseline (Partlist) vs the region-based baseline (Cifplot).
func runTable52(scale float64) {
	fmt.Printf("ACE Table 5-2 (synthetic stand-in chips, scale %.2f, %s)\n\n", scale, hostLine())
	fmt.Printf("%-10s %9s %12s %12s %12s\n", "chip", "devices", "ACE", "Partlist", "Cifplot")
	chips := []string{"cherry", "dchip", "schip2", "testram", "riscb"}
	for _, name := range chips {
		c, _ := gen.ChipByName(name)
		w := c.Build(scale)

		aceRes, aceT := timedExtract(w.File)

		boxes, labels := drainBoxes(w.File)
		t0 := time.Now()
		rres, err := raster.ExtractBoxes(boxes, raster.Options{Grid: gen.Lambda, Labels: labels})
		if err != nil {
			fatal(err)
		}
		rasterT := time.Since(t0)

		t0 = time.Now()
		cres, err := cifplot.ExtractBoxes(boxes, cifplot.Options{Labels: labels})
		if err != nil {
			fatal(err)
		}
		cifplotT := time.Since(t0)

		if len(rres.Netlist.Devices) != len(aceRes.Netlist.Devices) ||
			len(cres.Netlist.Devices) != len(aceRes.Netlist.Devices) {
			fmt.Fprintf(os.Stderr, "ace: warning: %s: device counts differ (%d/%d/%d)\n",
				name, len(aceRes.Netlist.Devices), len(rres.Netlist.Devices), len(cres.Netlist.Devices))
		}
		fmt.Printf("%-10s %9d %12s %12s %12s\n",
			name, len(aceRes.Netlist.Devices), round(aceT), round(rasterT), round(cifplotT))
	}
	fmt.Printf("\nPaper (VAX-11/780): ACE ≈ 2x faster than Partlist, ≈ 4-5x faster than Cifplot.\n")
}

// runPhases reproduces the §5 coarse time distribution. The design is
// rendered to CIF text first so the parse phase is measured, as in the
// paper's "parsing, interpreting and sorting the CIF file".
func runPhases(scale float64) {
	c, _ := gen.ChipByName("dchip")
	w := c.Build(scale)
	src := cif.String(w.File)
	res, err := extract.String(src, extract.Options{Profile: true})
	if err != nil {
		fatal(err)
	}
	p := res.Phases
	total := p.Total.Seconds()
	pct := func(d time.Duration) float64 { return 100 * d.Seconds() / total }
	fmt.Printf("ACE §5 time distribution (%s at scale %.2f, %s)\n\n", c.Name, scale, hostLine())
	fmt.Printf("  %5.1f%%  parsing, interpreting and sorting the CIF file (paper: 40%%)\n",
		pct(p.Parse+p.FrontEnd))
	fmt.Printf("  %5.1f%%  entering new geometry into lists (paper: 15%%)\n", pct(p.Insert))
	fmt.Printf("  %5.1f%%  computing devices, nets, etc. (paper: 20%%)\n", pct(p.Devices))
	fmt.Printf("  %5.1f%%  storage allocation, I/O, initialization (paper: 10%%)\n", pct(p.Output))
	fmt.Printf("  %5.1f%%  miscellaneous (paper: 15%%)\n", pct(p.Misc()))
}

// runModel reproduces the §4 expected-case analysis: under the
// Bentley–Haken–Hon box model, both the number of scanline stops and
// the active-list length grow as O(√N).
func runModel() {
	fmt.Printf("ACE §4 expected-case model (Bentley–Haken–Hon; %s)\n\n", hostLine())
	fmt.Printf("%10s %10s %12s %12s\n", "N boxes", "stops", "maxActive", "time")
	for n := 4096; n <= 262144; n *= 4 {
		w := gen.Statistical(n, 42)
		res, dur := timedExtract(w.File)
		fmt.Printf("%10d %10d %12d %12s\n",
			n, res.Counters.Stops, res.Counters.MaxActive, round(dur))
	}
	fmt.Printf("\nBoth counters should double per 4x N (O(sqrt N)).\n")
}

func runMesh(n int) {
	w := gen.Mesh(n)
	res, dur := timedExtract(w.File)
	fmt.Printf("mesh %dx%d: boxes=%d devices=%d time=%v\n",
		n, n, res.Counters.BoxesIn, len(res.Netlist.Devices), dur)
}

// flagWorkers and flagFlattenWorkers are the -workers and
// -flatten-workers flags, threaded into every extraction the command
// runs; flagTimeout is the -timeout wall-clock budget for a plain
// extraction run.
var (
	flagName           string
	flagHier           bool
	flagCacheDir       string
	flagWorkers        int
	flagFlattenWorkers int
	flagTimeout        time.Duration
	flagLenient        bool
	flagCheck          bool
	flagDiagJSON       bool
	flagMaxBoxes       int64
	flagRepeat         int
)

// gcStart is the collector snapshot taken at process start; -stats and
// -stats-json report the delta against it. iterNs collects the
// per-iteration wall clocks of a -repeat run.
var (
	gcStart prof.GCStats
	iterNs  []int64
)

// recordIter logs one -repeat iteration: echoed immediately so a slow
// warm-up is visible, and collected for -stats-json.
func recordIter(d time.Duration) {
	fmt.Fprintf(os.Stderr, "ace: iter %d: %v\n", len(iterNs), d)
	iterNs = append(iterNs, d.Nanoseconds())
}

// extractCtx returns the context for a -timeout-bounded extraction and
// its cancel function (a no-op context when no timeout is set).
func extractCtx() (context.Context, context.CancelFunc) {
	if flagTimeout > 0 {
		return context.WithTimeout(context.Background(), flagTimeout)
	}
	return nil, func() {}
}

func timedExtract(f *cif.File) (*extract.Result, time.Duration) {
	t0 := time.Now()
	res, err := extract.File(f, extract.Options{Workers: flagWorkers, FlattenWorkers: flagFlattenWorkers})
	if err != nil {
		fatal(err)
	}
	return res, time.Since(t0)
}

func drainBoxes(f *cif.File) ([]frontend.Box, []frontend.Label) {
	stream, err := frontend.New(f, frontend.Options{})
	if err != nil {
		fatal(err)
	}
	boxes := stream.Drain()
	return boxes, stream.Labels()
}

func round(d time.Duration) string { return d.Round(time.Millisecond).String() }

func hostLine() string {
	return fmt.Sprintf("go %s on %s/%s", runtime.Version(), runtime.GOOS, runtime.GOARCH)
}
