package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"ace/internal/check"
	"ace/internal/cli"
	"ace/internal/extract"
	"ace/internal/geom"
	"ace/internal/guard"
	"ace/internal/prof"
	"ace/internal/tile"
	"ace/internal/wirelist"
)

// flagTiles selects the out-of-core source: a packed tile file (see
// internal/tile and cmd/cifpack) replaces the CIF input. flagWindow
// restricts a tiled extraction to one rectangle; flagStatsJSON writes
// a machine-readable run summary for harnesses like -bench-tiles-json.
var (
	flagTiles     string
	flagWindow    string
	flagStatsJSON string
)

// runStats is the -stats-json payload: everything a parent harness
// needs to judge one extraction run — wall clock, peak RSS, and (for
// tiled sources) how much of the file was actually touched.
type runStats struct {
	Source       string `json:"source"` // "cif" or "tiles"
	Workers      int    `json:"workers"`
	GOMEMLIMIT   string `json:"gomemlimit,omitempty"`
	ElapsedNs    int64  `json:"elapsed_ns"`
	PeakRSSBytes int64  `json:"peak_rss_bytes"`
	Boxes        int    `json:"boxes"`
	Devices      int    `json:"devices"`
	Nets         int    `json:"nets"`
	BytesRead    int64  `json:"bytes_read,omitempty"`
	TilesDecoded int64  `json:"tiles_decoded,omitempty"`
	TilesTotal   int64  `json:"tiles_total,omitempty"`
	FileBytes    int64  `json:"file_bytes,omitempty"`

	// Collector activity over the whole run (delta since process
	// start), plus the per-iteration wall clocks of a -repeat loop.
	GC     prof.GCStats `json:"gc"`
	Repeat int          `json:"repeat,omitempty"`
	IterNs []int64      `json:"iter_ns,omitempty"`
}

// writeRunStats emits the -stats-json file. Peak RSS is sampled here,
// after the wirelist has been written, so the number covers the whole
// run including output.
func writeRunStats(source string, res *extract.Result, elapsed time.Duration) {
	if flagStatsJSON == "" {
		return
	}
	s := runStats{
		Source:       source,
		Workers:      flagWorkers,
		GOMEMLIMIT:   os.Getenv("GOMEMLIMIT"),
		ElapsedNs:    elapsed.Nanoseconds(),
		PeakRSSBytes: prof.PeakRSSBytes(),
		Boxes:        res.Counters.BoxesIn,
		Devices:      len(res.Netlist.Devices),
		Nets:         len(res.Netlist.Nets),
		GC:           prof.CaptureGC().Delta(gcStart),
	}
	if flagRepeat > 1 {
		s.Repeat = flagRepeat
		s.IterNs = iterNs
	}
	if t := res.Tile; t != nil {
		s.BytesRead = t.BytesRead
		s.TilesDecoded = t.TilesDecoded
		s.TilesTotal = t.TilesTotal
		s.FileBytes = t.FileBytes
	}
	f, err := os.Create(flagStatsJSON)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		fatal(err)
	}
}

// printResourceStats appends the resource lines to a -stats dump: tile
// I/O (when the source was a tile file) and peak RSS.
func printResourceStats(t *extract.TileIO) {
	if t != nil {
		fmt.Printf("tiles: decoded=%d/%d bytesRead=%d fileBytes=%d\n",
			t.TilesDecoded, t.TilesTotal, t.BytesRead, t.FileBytes)
	}
	if rss := prof.PeakRSSBytes(); rss > 0 {
		fmt.Printf("peakRSS=%d bytes (%.1f MiB)\n", rss, float64(rss)/(1<<20))
	}
	gc := prof.CaptureGC().Delta(gcStart)
	fmt.Printf("gc: cycles=%d pauseTotal=%v alloc=%d bytes heapInuse=%d bytes\n",
		gc.NumGC, time.Duration(gc.PauseTotalNs), gc.TotalAlloc, gc.HeapInuse)
}

// parseWindow parses the -window rectangle, "x0,y0,x1,y1" in
// centimicrons.
func parseWindow(s string) (geom.Rect, error) {
	var r geom.Rect
	if _, err := fmt.Sscanf(s, "%d,%d,%d,%d", &r.XMin, &r.YMin, &r.XMax, &r.YMax); err != nil {
		return r, fmt.Errorf("-window %q: want x0,y0,x1,y1 (%v)", s, err)
	}
	if r.XMin >= r.XMax || r.YMin >= r.YMax {
		return r, fmt.Errorf("-window %q: empty rectangle", s)
	}
	return r, nil
}

// runExtractTiles is runExtract for a packed tile source: same
// wirelist, same diagnostics and exit taxonomy, but boxes stream off
// the tile file's band (or window) iterators, so peak memory is the
// tile working set rather than the chip.
func runExtractTiles(out string, geometry, stats, profile bool) {
	if flagHier || flagCacheDir != "" {
		fatal(fmt.Errorf("-tiles is a flat-sweep source and does not combine with -hier or -cache-dir; use -window for windowed queries"))
	}
	if flagLenient {
		fatal(fmt.Errorf("-lenient applies to CIF parsing; a tile file is either intact or corrupt"))
	}
	if flag.NArg() > 0 {
		fatal(fmt.Errorf("-tiles %s replaces the CIF input; unexpected argument %q", flagTiles, flag.Arg(0)))
	}
	r, err := tile.Open(flagTiles)
	if err != nil {
		fatal(err)
	}
	defer r.Close()

	ctx, cancel := extractCtx()
	defer cancel()
	opt := extract.Options{
		KeepGeometry: geometry,
		Profile:      profile || stats,
		Workers:      flagWorkers,
		Limits:       guard.Limits{MaxBoxes: flagMaxBoxes},
	}
	t0 := time.Now()
	var res *extract.Result
	eng := extract.NewEngine()
	once := func() {
		if flagWindow != "" {
			rect, werr := parseWindow(flagWindow)
			if werr != nil {
				fatal(werr)
			}
			res, err = eng.TileWindow(ctx, r, rect, opt)
		} else {
			res, err = eng.TilesContext(ctx, r, opt)
		}
		if err != nil {
			fatal(err)
		}
	}
	if flagRepeat > 1 {
		for i := 0; i < flagRepeat; i++ {
			it0 := time.Now()
			once()
			recordIter(time.Since(it0))
		}
	} else {
		once()
	}
	elapsed := time.Since(t0)

	if flagCheck {
		res.Diagnostics.AddAll(check.Run(res.Netlist, check.Options{}))
		res.Diagnostics.Sort()
	}
	if flagCheck || flagDiagJSON {
		if err := cli.RenderDiagnostics(flagTiles, &res.Diagnostics, flagDiagJSON, os.Stdout, os.Stderr); err != nil {
			fatal(err)
		}
	} else {
		for _, w := range res.Warnings {
			fmt.Fprintln(os.Stderr, "ace: warning:", w)
		}
	}
	res.Netlist.Name = flagTiles
	if flagName != "" {
		res.Netlist.Name = flagName
	}

	if stats || profile {
		fmt.Printf("%s\n", res.Netlist.Stats())
		fmt.Printf("boxes=%d stops=%d maxActive=%d\n",
			res.Counters.BoxesIn, res.Counters.Stops, res.Counters.MaxActive)
		printResourceStats(res.Tile)
		if profile {
			p := res.Phases
			fmt.Printf("phases: frontend=%v insert=%v devices=%v output=%v total=%v\n",
				p.FrontEnd, p.Insert, p.Devices, p.Output, p.Total)
			writeRunStats("tiles", res, elapsed)
			os.Exit(cli.Exit(&res.Diagnostics))
		}
	}

	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if !stats && !(flagDiagJSON && out == "") {
		if err := wirelist.Write(w, res.Netlist, wirelist.Options{Geometry: geometry}); err != nil {
			fatal(err)
		}
	}
	writeRunStats("tiles", res, elapsed)
	if code := cli.Exit(&res.Diagnostics); code != cli.ExitOK {
		os.Exit(code)
	}
}
