// Crash mode: instead of HTTP load, acebomb -crash runs the
// kill-9 crash-consistency loop against the persistent result cache.
// Each cycle spawns a child process (this same binary with
// -crash-child) that loops store-backed extractions, kills it with
// SIGKILL at a varying offset, and then asserts the crash contract:
//
//   - the store reopens cleanly and recovery leaves no temp files;
//   - every surviving entry passes full verification (VerifyAll);
//   - an extraction through the surviving cache produces wirelist
//     bytes identical to a cold, cache-free extraction.
//
// The kill offset walks across the write path cycle by cycle, and
// each child gets a fresh seed so every cycle performs fresh Puts —
// kills land mid-write, not on a warm cache doing nothing.
package main

import (
	"bufio"
	"bytes"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"ace/internal/gen"
	"ace/internal/hext"
	"ace/internal/store"
	"ace/internal/vfs"
	"ace/internal/wirelist"
)

var (
	flagCrash       = flag.Bool("crash", false, "run the kill-9 crash-consistency loop instead of the HTTP attack")
	flagCrashDir    = flag.String("crash-dir", "", "persistent cache directory for -crash (empty: a private temp dir)")
	flagCrashCycles = flag.Int("crash-cycles", 50, "kill-9 cycles to run with -crash")
	flagCrashChild  = flag.Bool("crash-child", false, "internal: loop store-backed extractions until killed")
	flagCrashSeed   = flag.Int("crash-seed", 0, "internal: work seed for -crash-child")
)

// runCrashChild loops store-backed extractions forever; the parent
// SIGKILLs it mid-loop. The seed varies the designs per cycle so every
// child run performs fresh Puts instead of warm hits.
func runCrashChild(dir string, seed int) {
	if dir == "" {
		fatal(errors.New("-crash-child requires -crash-dir"))
	}
	// The ready line tells the parent extraction work is about to
	// start, so the kill timer arms against work, not process boot.
	fmt.Println("crash-child: ready")
	for i := 0; ; i++ {
		var w gen.Workload
		if i%2 == 0 {
			w = gen.SquareArray(3 + (seed*7+i)%29)
		} else {
			w = gen.Statistical(40+(seed*11+i)%200, int64(seed)*1000+int64(i))
		}
		// Disk faults must never surface here: the cache fails open, so
		// any error below is a real correctness bug, not a full disk.
		if _, err := hext.Extract(w.File, hext.Options{CacheDir: dir}); err != nil {
			fatal(fmt.Errorf("crash-child: extract %s: %w", w.Name, err))
		}
	}
}

// runCrashParent is the -crash driver. Returns the process exit code.
func runCrashParent() int {
	dir := *flagCrashDir
	var cleanup func()
	if dir == "" {
		d, err := os.MkdirTemp("", "ace-crash-*")
		if err != nil {
			fatal(err)
		}
		dir = d
		cleanup = func() { os.RemoveAll(d) }
	}
	exe, err := os.Executable()
	if err != nil {
		fatal(err)
	}

	// The byte-identity oracle: a cold extraction with every cache
	// tier disabled. Anything the surviving cache serves must match
	// these bytes exactly.
	chip := gen.MustBenchChip("cherry")
	ref, err := hext.Extract(chip.File, hext.Options{DisableMemo: true})
	if err != nil {
		fatal(err)
	}
	ref.Netlist.Name = "crashref"
	want, err := wirelist.AppendTo(nil, ref.Netlist, wirelist.Options{})
	if err != nil {
		fatal(err)
	}

	cycles := *flagCrashCycles
	bad := 0
	for cycle := 0; cycle < cycles; cycle++ {
		if err := crashOneCycle(exe, dir, cycle); err != nil {
			fmt.Fprintf(os.Stderr, "acebomb: crash cycle %d: %v\n", cycle, err)
			bad++
			continue
		}
		bad += assertCrashRecovered(dir, cycle, chip, want)
	}

	st, err := store.Open(dir, store.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "acebomb: FAIL: final reopen:", err)
		bad++
	} else {
		entries, size := st.Stats()
		io := st.IOCounters()
		fmt.Printf("acebomb: crash: %d cycles, store %d entries (%d bytes), quarantined=%d orphans_swept=%d\n",
			cycles, entries, size, io.Quarantined, io.OrphansSwept)
		if entries == 0 {
			// The per-cycle identity check itself writes entries, so an
			// empty store means the loop never exercised the cache.
			fmt.Fprintln(os.Stderr, "acebomb: FAIL: store empty after crash loop; nothing was tested")
			bad++
		}
	}
	if cleanup != nil {
		cleanup()
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "acebomb: crash: FAIL (%d invariants violated)\n", bad)
		return 1
	}
	fmt.Println("acebomb: crash: PASS")
	return 0
}

// crashOneCycle spawns one child, waits until it reports ready, lets
// it run for a cycle-dependent window, and kills it with SIGKILL.
func crashOneCycle(exe, dir string, cycle int) error {
	cmd := exec.Command(exe, "-crash-child", "-crash-dir", dir, "-crash-seed", strconv.Itoa(cycle))
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return err
	}
	ready := make(chan error, 1)
	go func() {
		br := bufio.NewReader(out)
		_, rerr := br.ReadString('\n')
		ready <- rerr
		// Keep draining so the child never blocks on a full pipe.
		io.Copy(io.Discard, br)
	}()
	select {
	case rerr := <-ready:
		if rerr != nil {
			cmd.Process.Kill()
			cmd.Wait()
			return fmt.Errorf("child exited before ready: %v", rerr)
		}
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		return errors.New("child ready timeout")
	}
	// Walk the kill point across the write path: 0ms kills land inside
	// the first extraction, longer offsets land in later Puts and GC.
	time.Sleep(time.Duration(cycle%23) * 2 * time.Millisecond)
	if err := cmd.Process.Kill(); err != nil {
		cmd.Wait()
		return fmt.Errorf("kill: %v", err)
	}
	cmd.Wait() // expected to report the kill signal
	return nil
}

// assertCrashRecovered reopens the store after a kill and asserts the
// crash-consistency contract. Returns the number of failed invariants.
func assertCrashRecovered(dir string, cycle int, chip gen.Workload, want []byte) int {
	bad := 0
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "acebomb: FAIL: cycle %d: reopen after kill: %v\n", cycle, err)
		return 1
	}
	// Open's recovery sweep must have reclaimed the dead child's
	// temporaries; with no live writers left, none may remain.
	if names := leftoverTemps(dir); len(names) > 0 {
		fmt.Fprintf(os.Stderr, "acebomb: FAIL: cycle %d: temps survived recovery: %s\n",
			cycle, strings.Join(names, " "))
		bad++
	}
	// Every entry recovery kept must verify end to end: a kill-9 may
	// lose the entry being written, never corrupt a published one.
	if errs := st.VerifyAll(); len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintf(os.Stderr, "acebomb: FAIL: cycle %d: surviving entry corrupt: %v\n", cycle, e)
		}
		bad++
	}
	// Byte identity through the survivors: whether this hits a cached
	// entry or recomputes, the wirelist must match the cold oracle.
	res, err := hext.Extract(chip.File, hext.Options{CacheDir: dir})
	if err != nil {
		fmt.Fprintf(os.Stderr, "acebomb: FAIL: cycle %d: post-crash extract: %v\n", cycle, err)
		return bad + 1
	}
	res.Netlist.Name = "crashref"
	got, err := wirelist.AppendTo(nil, res.Netlist, wirelist.Options{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "acebomb: FAIL: cycle %d: wirelist: %v\n", cycle, err)
		return bad + 1
	}
	if !bytes.Equal(got, want) {
		fmt.Fprintf(os.Stderr, "acebomb: FAIL: cycle %d: post-crash wirelist differs from cold extraction\n", cycle)
		bad++
	}
	return bad
}

// leftoverTemps lists vfs temp files still present in dir.
func leftoverTemps(dir string) []string {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return []string{fmt.Sprintf("(readdir: %v)", err)}
	}
	var names []string
	for _, de := range ents {
		if strings.HasPrefix(de.Name(), vfs.TmpPrefix) {
			names = append(names, filepath.Join(dir, de.Name()))
		}
	}
	return names
}
