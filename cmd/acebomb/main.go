// Command acebomb is the adversarial load harness for aced: it fires
// a mixed stream of well-formed designs, malformed text, hierarchy
// bombs, oversized bodies and bad queries at a daemon, and asserts the
// robustness contract instead of just measuring:
//
//   - every response carries a status the service is allowed to emit
//     for that traffic kind, and every error is problem JSON;
//   - good requests that complete answer the exact wirelist bytes the
//     extraction library produces;
//   - the daemon's goroutine count returns to its pre-load baseline
//     (no per-request leaks);
//   - peak RSS stays under -max-rss;
//   - the warm engine sustained real throughput (-min-rps).
//
// With no -url it boots an in-process server on a loopback listener —
// budgets pre-armed so bombs are shed — which is the CI mode; with
// -url it attacks an already-running aced, whose operator must have
// armed -max-boxes (or bombs will burn the request timeout instead of
// the box budget).
//
// With -crash it instead runs the kill-9 crash-consistency loop
// against the persistent result cache (see crash.go): spawn a child
// doing store-backed extractions, SIGKILL it mid-write, assert the
// store recovers clean and serves byte-identical results.
//
// Exit: 0 when every invariant held, 1 otherwise, 2 on usage errors.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ace/internal/cif"
	"ace/internal/extract"
	"ace/internal/gen"
	"ace/internal/guard"
	"ace/internal/serve"
	"ace/internal/wirelist"
)

var (
	flagURL      = flag.String("url", "", "daemon base URL (empty: boot an in-process server)")
	flagDuration = flag.Duration("duration", 5*time.Second, "attack duration")
	flagClients  = flag.Int("clients", 8, "concurrent attacking clients")
	flagMaxRSS   = flag.Int64("max-rss", 4<<30, "peak-RSS bound asserted after the run (bytes)")
	flagMinRPS   = flag.Float64("min-rps", 1, "minimum sustained completed requests per second")
	flagBodyCap  = flag.Int64("body-cap", 1<<20, "the daemon's -max-body-bytes; oversized traffic is sized just past it")
)

// kind is one traffic class with its set of legitimate responses.
// Shed statuses (429, 503) are legitimate for every kind that reaches
// admission — load shedding is the contract, not a failure.
type kind struct {
	name string
	ok   map[int]bool
	make func(i int) *http.Request
}

// stats counts one kind's outcomes.
type stats struct {
	sent       atomic.Int64
	byStatus   sync.Map // int → *atomic.Int64
	violations atomic.Int64
}

func (s *stats) count(status int) {
	v, _ := s.byStatus.LoadOrStore(status, new(atomic.Int64))
	v.(*atomic.Int64).Add(1)
}

func main() {
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "acebomb: unexpected arguments")
		os.Exit(2)
	}
	switch {
	case *flagCrashChild:
		runCrashChild(*flagCrashDir, *flagCrashSeed)
		return
	case *flagCrash:
		os.Exit(runCrashParent())
	}

	base := *flagURL
	var inproc *serve.Server
	var ln net.Listener
	if base == "" {
		// CI mode: in-process daemon with budgets armed, so bombs are
		// refused by limits instead of timing out.
		s, err := serve.New(serve.Options{
			Limits:         guard.Limits{MaxBoxes: 200_000, MaxExpandedBoxes: 200_000, MaxDepth: 64},
			MaxBodyBytes:   *flagBodyCap,
			RequestTimeout: 10 * time.Second,
			QueueWait:      250 * time.Millisecond,
		})
		if err != nil {
			fatal(err)
		}
		inproc = s
		ln, err = net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatal(err)
		}
		hs := &http.Server{Handler: s.Handler()}
		go hs.Serve(ln)
		defer hs.Close()
		base = "http://" + ln.Addr().String()
		fmt.Printf("acebomb: in-process daemon at %s\n", base)
	}
	base = strings.TrimSuffix(base, "/")

	goodSrc, goodWant := goodPayload()
	kinds := buildKinds(base, goodSrc)

	// Baseline before load: the daemon must return here afterwards.
	st0, err := fetchStats(base)
	if err != nil {
		fatal(fmt.Errorf("daemon not answering /statz: %w", err))
	}

	perKind := make([]*stats, len(kinds))
	for i := range perKind {
		perKind[i] = &stats{}
	}
	var goodBodyMismatch atomic.Int64

	stop := time.Now().Add(*flagDuration)
	var wg sync.WaitGroup
	client := &http.Client{Timeout: 30 * time.Second}
	for c := 0; c < *flagClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; time.Now().Before(stop); i += *flagClients {
				// Deterministic rotation through the mix: every client
				// covers every kind, good traffic dominates 3:1 so the
				// warm path is actually exercised under the attack.
				k := kinds[mixPick(i)]
				st := perKind[mixPick(i)]
				req := k.make(i)
				resp, err := client.Do(req)
				if err != nil {
					st.violations.Add(1)
					continue
				}
				body, _ := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
				resp.Body.Close()
				st.sent.Add(1)
				st.count(resp.StatusCode)
				if !k.ok[resp.StatusCode] {
					st.violations.Add(1)
					fmt.Fprintf(os.Stderr, "acebomb: %s: unexpected status %d: %.120s\n", k.name, resp.StatusCode, body)
					continue
				}
				if resp.StatusCode >= 400 && !isProblemJSON(resp, body) {
					st.violations.Add(1)
					fmt.Fprintf(os.Stderr, "acebomb: %s: %d without problem JSON: %.120s\n", k.name, resp.StatusCode, body)
				}
				if k.name == "good" && resp.StatusCode == 200 && !bytes.Equal(body, goodWant) {
					goodBodyMismatch.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()

	// Post-load: the daemon must come back to rest.
	bad := 0
	st1, err := fetchStats(base)
	if err != nil {
		fmt.Fprintln(os.Stderr, "acebomb: FAIL: daemon unreachable after load:", err)
		bad++
	} else {
		bad += assertRest(base, st0, st1)
	}
	if inproc != nil {
		// In-process we can also assert our own process directly.
		if n, ok := guard.WaitGoroutines(st0.Goroutines+*flagClients+8, 5*time.Second); !ok {
			fmt.Fprintf(os.Stderr, "acebomb: FAIL: %d goroutines alive, want near baseline %d\n", n, st0.Goroutines)
			bad++
		}
		_ = ln
	}

	var total int64
	for i, k := range kinds {
		st := perKind[i]
		total += st.sent.Load()
		var line []string
		st.byStatus.Range(func(code, n any) bool {
			line = append(line, fmt.Sprintf("%d:%d", code, n.(*atomic.Int64).Load()))
			return true
		})
		v := st.violations.Load()
		fmt.Printf("acebomb: %-9s sent=%-6d %s violations=%d\n", k.name, st.sent.Load(), strings.Join(line, " "), v)
		if v > 0 {
			bad++
		}
	}
	if n := goodBodyMismatch.Load(); n > 0 {
		fmt.Fprintf(os.Stderr, "acebomb: FAIL: %d good responses differed from the library wirelist\n", n)
		bad++
	}
	rps := float64(total) / flagDuration.Seconds()
	fmt.Printf("acebomb: %d requests in %v (%.1f req/s), extractions=%d cache_hits=%d panics=%d\n",
		total, *flagDuration, rps, st1.Extractions-st0.Extractions, st1.CacheHits-st0.CacheHits, st1.Panics-st0.Panics)
	if rps < *flagMinRPS {
		fmt.Fprintf(os.Stderr, "acebomb: FAIL: %.2f req/s below -min-rps %.2f\n", rps, *flagMinRPS)
		bad++
	}
	if st1.Extractions == st0.Extractions {
		fmt.Fprintln(os.Stderr, "acebomb: FAIL: no real extractions ran; the mix never reached the engine")
		bad++
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "acebomb: FAIL (%d invariants violated)\n", bad)
		os.Exit(1)
	}
	fmt.Println("acebomb: PASS")
}

// mixPick maps a request index onto the kind list: indices 0-2 good,
// 3 malformed, 4 bomb, 5 oversized, 6 bad query (good dominates, so
// throughput is measured under attack, not instead of it).
func mixPick(i int) int {
	switch i % 7 {
	case 0, 1, 2:
		return 0
	case 3:
		return 1
	case 4:
		return 2
	case 5:
		return 3
	default:
		return 4
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "acebomb:", err)
	os.Exit(1)
}

// goodPayload renders the cherry benchmark chip and its reference
// wirelist (the byte-identity oracle).
func goodPayload() (src, want []byte) {
	var buf bytes.Buffer
	if err := cif.Write(&buf, gen.MustBenchChip("cherry").File); err != nil {
		fatal(err)
	}
	src = buf.Bytes()
	res, err := extract.Reader(bytes.NewReader(src), extract.Options{})
	if err != nil {
		fatal(err)
	}
	res.Netlist.Name = "good"
	want, err = wirelist.AppendTo(nil, res.Netlist, wirelist.Options{})
	if err != nil {
		fatal(err)
	}
	return src, want
}

// bombCIF is a depth-level fanOut-way hierarchy bomb; offsets in both
// axes spread the copies across scanlines so budget checkpoints fire.
func bombCIF(depth, fanOut int) []byte {
	var b strings.Builder
	b.WriteString("DS 1; L ND; B 4 4 0 0; DF;\n")
	for d := 2; d <= depth; d++ {
		fmt.Fprintf(&b, "DS %d;", d)
		for i := 0; i < fanOut; i++ {
			fmt.Fprintf(&b, " C %d T %d %d;", d-1, i*10, i*7)
		}
		b.WriteString(" DF;\n")
	}
	fmt.Fprintf(&b, "C %d;\nE\n", depth)
	return []byte(b.String())
}

func buildKinds(base string, goodSrc []byte) []kind {
	shed := []int{http.StatusTooManyRequests, http.StatusServiceUnavailable, http.StatusGatewayTimeout}
	allow := func(codes ...int) map[int]bool {
		m := map[int]bool{}
		for _, c := range append(codes, shed...) {
			m[c] = true
		}
		return m
	}
	post := func(path string, body []byte) *http.Request {
		req, err := http.NewRequest(http.MethodPost, base+path, bytes.NewReader(body))
		if err != nil {
			fatal(err)
		}
		return req
	}
	bomb := bombCIF(10, 8)
	// One comment line past the daemon's body cap: rejected by size,
	// never parsed.
	unit := []byte("(oversize filler)\n")
	big := bytes.Repeat(unit, int(*flagBodyCap/int64(len(unit)))+2)
	malformed := [][]byte{
		[]byte("this is not CIF ;;;"),
		[]byte("DS 1; C 1; DF; C 1; E\n"),
		[]byte("L ND; B -5 10 0 0;\nE\n"),
		{0x00, 0xff, 0xfe, 'E', '\n'},
	}
	return []kind{
		{
			// A fixed name, so the mix also exercises the result cache
			// and single-flight under concurrency.
			name: "good",
			ok:   allow(http.StatusOK),
			make: func(i int) *http.Request { return post("/extract?name=good", goodSrc) },
		},
		{
			name: "malformed",
			ok:   allow(http.StatusUnprocessableEntity),
			make: func(i int) *http.Request { return post("/extract", malformed[i%len(malformed)]) },
		},
		{
			name: "bomb",
			ok:   allow(http.StatusRequestEntityTooLarge),
			make: func(i int) *http.Request { return post("/extract", bomb) },
		},
		{
			name: "oversized",
			ok:   allow(http.StatusRequestEntityTooLarge),
			make: func(i int) *http.Request { return post("/extract", big) },
		},
		{
			// Rejected before admission: shedding never applies.
			name: "badquery",
			ok:   map[int]bool{http.StatusBadRequest: true},
			make: func(i int) *http.Request { return post("/extract?lenient=maybe", goodSrc) },
		},
	}
}

func isProblemJSON(resp *http.Response, body []byte) bool {
	if resp.Header.Get("Content-Type") != "application/problem+json" {
		return false
	}
	var p serve.Problem
	if err := json.Unmarshal(body, &p); err != nil {
		return false
	}
	return p.Status == resp.StatusCode && p.Code != ""
}

// fetchStats pulls the daemon's /statz document.
func fetchStats(base string) (serve.Stats, error) {
	var st serve.Stats
	resp, err := http.Get(base + "/statz")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return st, err
	}
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("/statz: %d", resp.StatusCode)
	}
	return st, json.Unmarshal(body, &st)
}

// assertRest checks the daemon settled after load: goroutines back to
// (near) baseline and peak RSS bounded. Returns the number of failed
// invariants.
func assertRest(base string, st0, st1 serve.Stats) int {
	bad := 0
	// Leaked-goroutine check via /statz, so it works against a remote
	// daemon too: poll until the count returns to baseline + slack
	// (the HTTP layer itself keeps a few idle-connection goroutines).
	slack := 16
	deadline := time.Now().Add(5 * time.Second)
	st := st1
	for {
		if st.Goroutines <= st0.Goroutines+slack {
			break
		}
		if time.Now().After(deadline) {
			fmt.Fprintf(os.Stderr, "acebomb: FAIL: daemon goroutines %d, baseline %d (+%d slack): leak\n",
				st.Goroutines, st0.Goroutines, slack)
			bad++
			break
		}
		time.Sleep(50 * time.Millisecond)
		if s2, err := fetchStats(base); err == nil {
			st = s2
		}
	}
	if st.PeakRSSBytes > *flagMaxRSS {
		fmt.Fprintf(os.Stderr, "acebomb: FAIL: peak RSS %d bytes exceeds -max-rss %d\n", st.PeakRSSBytes, *flagMaxRSS)
		bad++
	}
	fmt.Printf("acebomb: daemon at rest: goroutines=%d (baseline %d), peak_rss=%d bytes\n",
		st.Goroutines, st0.Goroutines, st.PeakRSSBytes)
	return bad
}
