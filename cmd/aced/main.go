// Command aced is the extraction daemon: internal/serve behind a
// plain net/http listener, with signal-driven graceful shutdown.
//
// Usage:
//
//	aced [flags]
//
// Endpoints:
//
//	POST /extract   one CIF upload (raw body or multipart "file" part)
//	                → wirelist, or ?diag=json → report + wirelist
//	POST /batch     multipart form of CIF files → JSON results array
//	GET  /healthz   liveness (503 while draining)
//	GET  /statz     load, shed and cache counters as JSON
//
// Every error response is an RFC 7807 problem document carrying the
// CLI exit taxonomy. SIGINT/SIGTERM begins a graceful drain: the
// listener stops accepting, queued requests are shed with 503, and
// in-flight extractions get -drain-timeout to finish before the
// process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ace/internal/guard"
	"ace/internal/serve"
)

var (
	flagAddr           = flag.String("addr", "127.0.0.1:7823", "listen address")
	flagMaxInFlight    = flag.Int("max-in-flight", 0, "max concurrent extractions (0: GOMAXPROCS)")
	flagQueueDepth     = flag.Int("queue-depth", 0, "max queued requests (0: 4x max-in-flight)")
	flagQueueWait      = flag.Duration("queue-wait", serve.DefaultQueueWait, "max time a request may queue for a slot")
	flagRequestTimeout = flag.Duration("request-timeout", serve.DefaultRequestTimeout, "per-request deadline (<0: none)")
	flagDrainTimeout   = flag.Duration("drain-timeout", 15*time.Second, "graceful-shutdown budget for in-flight work")
	flagMaxBody        = flag.Int64("max-body-bytes", serve.DefaultMaxBodyBytes, "largest accepted upload")
	flagMaxBoxes       = flag.Int64("max-boxes", 0, "per-request box budget (0: unlimited)")
	flagMaxExpanded    = flag.Int64("max-expanded-boxes", 0, "per-request expanded-box budget (0: unlimited)")
	flagMaxDepth       = flag.Int("max-depth", 0, "per-request hierarchy-depth budget (0: default)")
	flagMaxMem         = flag.Int64("max-mem-bytes", 0, "per-request memory budget (0: unlimited)")
	flagTenantHeader   = flag.String("tenant-header", "", "header naming the tenant (default X-Ace-Tenant)")
	flagTenantInFlight = flag.Int("tenant-in-flight", 0, "per-tenant concurrency cap (0: off)")
	flagWorkers        = flag.Int("workers", 0, "sweep workers per extraction (0: serial)")
	flagFlattenWorkers = flag.Int("flatten-workers", 0, "streamed-ingest workers per extraction (0: off)")
	flagCacheDir       = flag.String("cache-dir", "", "persistent result-cache directory (empty: memory only)")
	flagCacheMaxBytes  = flag.Int64("cache-max-bytes", 0, "result-cache size cap (0: store default)")
)

func main() {
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "aced: unexpected arguments; aced takes only flags")
		os.Exit(2)
	}

	srv, err := serve.New(serve.Options{
		MaxInFlight:    *flagMaxInFlight,
		QueueDepth:     *flagQueueDepth,
		QueueWait:      *flagQueueWait,
		RequestTimeout: *flagRequestTimeout,
		MaxBodyBytes:   *flagMaxBody,
		Limits: guard.Limits{
			MaxBoxes:         *flagMaxBoxes,
			MaxExpandedBoxes: *flagMaxExpanded,
			MaxDepth:         *flagMaxDepth,
			MaxMemBytes:      *flagMaxMem,
		},
		TenantHeader:   *flagTenantHeader,
		TenantInFlight: *flagTenantInFlight,
		Workers:        *flagWorkers,
		FlattenWorkers: *flagFlattenWorkers,
		CacheDir:       *flagCacheDir,
		CacheMaxBytes:  *flagCacheMaxBytes,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "aced:", err)
		os.Exit(1)
	}
	if w := srv.CacheWarning(); w != "" {
		// Degraded, not fatal: the daemon serves correct bytes without
		// its disk tier; /statz reports cache_degraded until restart.
		fmt.Fprintln(os.Stderr, "aced: warning:", w)
	}

	ln, err := net.Listen("tcp", *flagAddr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aced:", err)
		os.Exit(1)
	}
	// The resolved address on stdout lets harnesses use -addr :0.
	fmt.Printf("aced: listening on %s\n", ln.Addr())

	hs := &http.Server{Handler: srv.Handler()}
	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "aced: %v: draining (budget %v)\n", s, *flagDrainTimeout)
	case err := <-done:
		fmt.Fprintln(os.Stderr, "aced:", err)
		os.Exit(1)
	}

	// Drain order: stop admitting first (queued work sheds with 503),
	// then close the listener, then wait — bounded — for in-flight
	// extractions, then shut the HTTP layer down.
	srv.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), *flagDrainTimeout)
	defer cancel()
	drainErr := srv.Drain(ctx)
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "aced: shutdown:", err)
	}
	if drainErr != nil {
		fmt.Fprintln(os.Stderr, "aced: drain timeout: in-flight work abandoned")
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "aced: drained cleanly")
}
