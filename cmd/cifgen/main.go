// Command cifgen emits the repository's synthetic workloads as CIF
// text, so the extractors (and any external CIF tool) can consume
// them.
//
// Usage:
//
//	cifgen -w inverter                   the paper's Figure 3-3 inverter
//	cifgen -w four                       HEXT's Figure 2-1 four inverters
//	cifgen -w chain -n 8                 a functional 8-stage inverter chain
//	cifgen -w memory -rows 16 -cols 16   a testram-style array
//	cifgen -w array -n 1024              HEXT Table 4-1 ideal square array
//	cifgen -w mesh -n 32                 ACE §4 worst-case mesh
//	cifgen -w stat -n 10000 -seed 7      Bentley–Haken–Hon statistical model
//	cifgen -w chip:testram -scale 0.1    a Table 5-1 stand-in chip
//	cifgen -target-boxes 8000000         size-targeted streamed chip
//
// -target-boxes selects the streaming generator: the chip is emitted
// as CIF text while it is generated, so multi-GB benchmark chips cost
// O(1) memory. Add -flat to write every box at top level instead of
// symbol calls (same flattened design, much bigger text).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"ace/internal/cif"
	"ace/internal/gen"
)

func main() {
	var (
		workload = flag.String("w", "inverter", "workload: inverter|four|chain|memory|array|mesh|stat|chip:<name>")
		n        = flag.Int("n", 16, "size parameter (chain stages, array cells, mesh lines, stat boxes)")
		rows     = flag.Int("rows", 8, "memory rows")
		cols     = flag.Int("cols", 8, "memory columns")
		seed     = flag.Int64("seed", 1, "random seed for stochastic workloads")
		scale    = flag.Float64("scale", 1.0, "chip scale factor")
		out      = flag.String("o", "", "output file (default stdout)")
		target   = flag.Int64("target-boxes", 0, "emit a streamed chip with ~N flattened boxes (overrides -w)")
		cellBox  = flag.Int("cell-boxes", 0, "streamed mode: boxes per row cell (0 = default)")
		flat     = flag.Bool("flat", false, "streamed mode: flatten to top-level boxes")
	)
	flag.Parse()

	if *target > 0 {
		w := os.Stdout
		if *out != "" {
			fo, err := os.Create(*out)
			if err != nil {
				fatal(err)
			}
			defer fo.Close()
			w = fo
		}
		bw := bufio.NewWriterSize(w, 1<<20)
		info, err := gen.StreamChip(bw, gen.StreamSpec{
			TargetBoxes: *target, CellBoxes: *cellBox, Flat: *flat,
		})
		if err == nil {
			err = bw.Flush()
		}
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "cifgen: %d boxes (%d row cells in %dx%d grid, %d gates)\n",
			info.Boxes, info.Instances, info.Cols, info.Rows, info.Gates)
		return
	}

	var f *cif.File
	switch {
	case *workload == "inverter":
		f = gen.Inverter()
	case *workload == "four":
		f = gen.FourInverters()
	case *workload == "chain":
		f = gen.InverterChain(*n).File
	case *workload == "memory":
		f = gen.Memory(*rows, *cols).File
	case *workload == "array":
		f = gen.SquareArray(*n).File
	case *workload == "mesh":
		f = gen.Mesh(*n).File
	case *workload == "stat":
		f = gen.Statistical(*n, *seed).File
	case strings.HasPrefix(*workload, "chip:"):
		name := strings.TrimPrefix(*workload, "chip:")
		c, ok := gen.ChipByName(name)
		if !ok {
			fatal(fmt.Errorf("unknown chip %q (have: %s)", name, chipNames()))
		}
		f = c.Build(*scale).File
	default:
		fatal(fmt.Errorf("unknown workload %q", *workload))
	}

	w := os.Stdout
	if *out != "" {
		fo, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer fo.Close()
		w = fo
	}
	if err := cif.Write(w, f); err != nil {
		fatal(err)
	}
}

func chipNames() string {
	names := make([]string, len(gen.Chips))
	for i, c := range gen.Chips {
		names[i] = c.Name
	}
	return strings.Join(names, ", ")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cifgen:", err)
	os.Exit(1)
}
