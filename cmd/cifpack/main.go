// Command cifpack converts a CIF design into ACE's tiled binary
// format (see internal/tile): a spatially indexed, checksummed file
// that the extractor reads out-of-core, band by band or window by
// window, with memory bounded by the tile working set instead of the
// chip.
//
// The packer itself streams: the CIF parse holds only the hierarchy
// (symbol definitions, not the flattened chip), the lazy front end
// expands geometry in descending-top order, and the tile writer
// buffers a single tile row at a time. Packing a deep hierarchy
// therefore needs far less memory than the flattened box count
// suggests.
//
// Usage:
//
//	cifpack [-o design.actb] [-grid 64] design.cif
//	cifpack -info design.actb
//	cifpack -verify design.actb
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"ace/internal/cif"
	"ace/internal/cli"
	"ace/internal/frontend"
	"ace/internal/guard"
	"ace/internal/tile"
	"ace/internal/vfs"
)

const prog = "cifpack"

func main() {
	var (
		out     = flag.String("o", "", "output tile file (default: input with .actb extension)")
		grid    = flag.Int("grid", tile.DefaultGrid, "tile grid resolution (grid×grid tiles)")
		gridW   = flag.Int("grid-cols", 0, "tile columns (overrides -grid)")
		gridH   = flag.Int("grid-rows", 0, "tile rows (overrides -grid)")
		mgrid   = flag.Int64("mgrid", 0, "manhattanisation grid in centimicrons (0 = default)")
		lenient = flag.Bool("lenient", false, "recover from malformed CIF, packing what parses")
		info    = flag.Bool("info", false, "print a tile file's index summary instead of packing")
		verify  = flag.Bool("verify", false, "decode and checksum every tile of a tile file")
		stats   = flag.Bool("stats", false, "print packing statistics")
		maxDep  = flag.Int("max-depth", 0, "hierarchy depth limit (0 = default)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintf(os.Stderr, "usage: %s [flags] design.cif | %s -info|-verify design.actb\n", prog, prog)
		os.Exit(cli.ExitUsage)
	}
	in := flag.Arg(0)

	switch {
	case *info:
		if err := runInfo(in); err != nil {
			cli.Fatal(prog, err)
		}
	case *verify:
		if err := runVerify(in); err != nil {
			cli.Fatal(prog, err)
		}
	default:
		cols, rows := *grid, *grid
		if *gridW > 0 {
			cols = *gridW
		}
		if *gridH > 0 {
			rows = *gridH
		}
		dst := *out
		if dst == "" {
			dst = in + ".actb"
		}
		if err := runPack(in, dst, cols, rows, *mgrid, *lenient, *stats, *maxDep); err != nil {
			cli.Fatal(prog, err)
		}
	}
}

func runPack(in, out string, cols, rows int, mgrid int64, lenient, stats bool, maxDepth int) error {
	t0 := time.Now()
	// A pack killed mid-write leaves a pid-stamped temporary, never a
	// truncated .actb at the destination path; reclaim any such temps
	// from crashed packs before adding our own.
	vfs.SweepOrphans(vfs.OS, filepath.Dir(out))
	src, err := os.Open(in)
	if err != nil {
		return err
	}
	defer src.Close()
	limits := guard.Limits{MaxDepth: maxDepth}
	f, err := cif.ParseReaderOpts(bufio.NewReader(src), cif.ParseOptions{Lenient: lenient, Limits: limits})
	if err != nil {
		return err
	}
	stream, err := frontend.New(f, frontend.Options{Grid: mgrid, Lenient: lenient, Limits: limits})
	if err != nil {
		return err
	}
	// BBox walks the hierarchy without expanding it; Labels expands only
	// label-bearing subtrees. Both leave the box stream untouched.
	bbox := stream.BBox()
	labels := stream.Labels()

	// Pack into a temp in the destination directory and publish with
	// fsync + rename + directory fsync: readers (and a re-run after a
	// crash) see either the complete previous file or the complete new
	// one, never a partial pack.
	dst, err := vfs.NewAtomicFile(vfs.OS, out)
	if err != nil {
		return err
	}
	defer dst.Abort() // no-op once committed
	bw := bufio.NewWriterSize(dst, 1<<20)
	tw, err := tile.NewWriter(bw, tile.NewGrid(bbox, cols, rows))
	if err != nil {
		return err
	}
	for _, l := range labels {
		tw.AddLabel(l)
	}
	var nBoxes int64
	for {
		b, ok := stream.Next()
		if !ok {
			break
		}
		if err := tw.Add(b); err != nil {
			return err
		}
		nBoxes++
	}
	if err := tw.Close(); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if err := dst.Commit(); err != nil {
		return err
	}
	if stats {
		fi, _ := os.Stat(out)
		var size int64
		if fi != nil {
			size = fi.Size()
		}
		fmt.Printf("packed     %s -> %s\n", in, out)
		fmt.Printf("boxes      %d\n", nBoxes)
		fmt.Printf("labels     %d\n", len(labels))
		fmt.Printf("grid       %dx%d tiles over %v\n", cols, rows, bbox)
		fmt.Printf("bytes      %d\n", size)
		fmt.Printf("elapsed    %v\n", time.Since(t0).Round(time.Millisecond))
	}
	return nil
}

func runInfo(path string) error {
	r, err := tile.Open(path)
	if err != nil {
		return err
	}
	defer r.Close()
	g := r.Grid()
	fmt.Printf("file       %s (%d bytes)\n", path, r.Size())
	fmt.Printf("bbox       %v\n", g.BBox)
	fmt.Printf("grid       %dx%d tiles of %dx%d\n", g.Cols, g.Rows, g.TileW, g.TileH)
	fmt.Printf("boxes      %d\n", r.NumBoxes())
	fmt.Printf("labels     %d\n", len(r.Labels()))
	fmt.Printf("tiles      %d non-empty of %d\n", r.NonEmptyTiles(), g.Cols*g.Rows)
	return nil
}

func runVerify(path string) error {
	r, err := tile.Open(path)
	if err != nil {
		return err
	}
	defer r.Close()
	it := r.ReadBand(tile.WholeChip())
	var n int64
	var lastTop int64
	first := true
	for {
		b, ok := it.Next()
		if !ok {
			break
		}
		if !first && b.Rect.YMax > lastTop {
			return fmt.Errorf("%s: box %d out of descending-top order", path, n)
		}
		first, lastTop = false, b.Rect.YMax
		n++
	}
	if err := it.Err(); err != nil {
		return err
	}
	if n != r.NumBoxes() {
		return fmt.Errorf("%s: decoded %d boxes, index records %d", path, n, r.NumBoxes())
	}
	io := r.Counters()
	fmt.Printf("ok         %d boxes, %d tiles decoded, %d bytes read\n", n, io.TilesDecoded, io.BytesRead)
	return nil
}
