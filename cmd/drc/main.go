// Command drc checks a CIF design against the Mead–Conway NMOS design
// rules (widths, spacings, contact surrounds, transistor extensions,
// implant enclosure).
//
// Usage:
//
//	drc chip.cif                 list violations (exit 1 if any)
//	drc -summary chip.cif        counts per rule only
//	drc -hier -tile 36 chip.cif  tile-memoised hierarchical checking
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"ace/internal/cif"
	"ace/internal/drc"
	"ace/internal/frontend"
)

func main() {
	summary := flag.Bool("summary", false, "print per-rule counts only")
	hier := flag.Bool("hier", false, "use the tile-memoised hierarchical checker")
	tile := flag.Int64("tile", 64, "tile size in λ for -hier (match the design's cell pitch)")
	flag.Parse()

	r := os.Stdin
	if flag.Arg(0) != "" {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	f, err := cif.Parse(r)
	if err != nil {
		fatal(err)
	}
	stream, err := frontend.New(f, frontend.Options{})
	if err != nil {
		fatal(err)
	}
	var vs []drc.Violation
	if *hier {
		res := drc.CheckHierarchical(stream.Drain(), drc.HierOptions{TileSize: *tile})
		vs = res.Violations
		fmt.Fprintf(os.Stderr, "drc: %d tiles, %d unique, %d memo hits\n",
			res.Counters.Tiles, res.Counters.UniqueTiles, res.Counters.MemoHits)
	} else {
		vs = drc.CheckBoxes(stream.Drain(), drc.Options{})
	}
	if len(vs) == 0 {
		fmt.Println("clean: no design-rule violations")
		return
	}
	if *summary {
		m := drc.Summary(vs)
		rules := make([]string, 0, len(m))
		for rule := range m {
			rules = append(rules, rule)
		}
		sort.Strings(rules)
		for _, rule := range rules {
			fmt.Printf("%-24s %d\n", rule, m[rule])
		}
	} else {
		for _, v := range vs {
			fmt.Println(v)
		}
	}
	fmt.Printf("%d violations\n", len(vs))
	os.Exit(1)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "drc:", err)
	os.Exit(1)
}
