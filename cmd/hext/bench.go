package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"ace/internal/gen"
	"ace/internal/hext"
)

// benchEnv records the machine the numbers came from; baselines are
// only comparable against the same environment. GOMAXPROCS sits next
// to num_cpu because the worker sweep's speedups are meaningless
// without it.
type benchEnv struct {
	Date       string `json:"date"`
	GoVersion  string `json:"go"`
	OS         string `json:"os"`
	Arch       string `json:"arch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

type benchResult struct {
	Workload    string `json:"workload"`
	Reps        int    `json:"reps"`
	Workers     int    `json:"workers"`
	CacheSize   int    `json:"cache_size"`
	Devices     int    `json:"devices"`
	Nets        int    `json:"nets"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`

	// The memoisation evidence: flat calls grow with the replication
	// factor, leaf sweeps stay bounded by the number of distinct window
	// contents.
	UniqueWindows int   `json:"unique_windows"`
	FlatCalls     int   `json:"flat_calls"`
	LeafSweeps    int   `json:"leaf_sweeps"`
	CacheHits     int   `json:"cache_hits"`
	CacheMisses   int   `json:"cache_misses"`
	CacheBytes    int64 `json:"cache_bytes"`
}

type benchReport struct {
	Env     benchEnv      `json:"env"`
	Results []benchResult `json:"results"`
}

// runBenchJSON runs the replication reuse sweep — the same gate cell
// instantiated 1x, 8x and 64x with varying margins — across worker
// counts and a cache-off ablation, and writes a machine-readable
// baseline. The interesting ratio is ns_per_op at 64x over 1x: with
// the content cache it grows far slower than the instance count,
// because leaf_sweeps stays at the number of distinct contents.
func runBenchJSON(path string) {
	report := benchReport{Env: benchEnv{
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}}
	if runtime.NumCPU() < 2 {
		fmt.Fprintf(os.Stderr,
			"hext: single-core host (NumCPU=%d): worker sweeps measure scheduling overhead, not speedup\n",
			runtime.NumCPU())
	}

	type config struct {
		workers int
		cache   int
	}
	configs := []config{
		{1, 0},  // serial, default cache
		{4, 0},  // parallel, default cache
		{8, 0},  // oversubscribed, default cache
		{1, -1}, // cache-off ablation
	}
	for _, reps := range []int{1, 8, 64} {
		w := gen.Replicated(reps)
		for _, cfg := range configs {
			opt := hext.Options{Workers: cfg.workers, CacheSize: cfg.cache}
			// One untimed run for the design-dependent counters.
			probe, err := hext.Extract(w.File, opt)
			if err != nil {
				fatal(err)
			}
			if len(probe.Netlist.Devices) != w.WantDevices {
				fmt.Fprintf(os.Stderr, "hext: warning: reps=%d: devices %d, want %d\n",
					reps, len(probe.Netlist.Devices), w.WantDevices)
			}
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := hext.Extract(w.File, opt); err != nil {
						b.Fatal(err)
					}
				}
			})
			c := probe.Counters
			report.Results = append(report.Results, benchResult{
				Workload:      w.Name,
				Reps:          reps,
				Workers:       cfg.workers,
				CacheSize:     cfg.cache,
				Devices:       len(probe.Netlist.Devices),
				Nets:          len(probe.Netlist.Nets),
				NsPerOp:       r.NsPerOp(),
				AllocsPerOp:   r.AllocsPerOp(),
				BytesPerOp:    r.AllocedBytesPerOp(),
				UniqueWindows: c.UniqueWindows,
				FlatCalls:     c.FlatCalls,
				LeafSweeps:    c.LeafSweeps,
				CacheHits:     c.CacheHits,
				CacheMisses:   c.CacheMisses,
				CacheBytes:    c.CacheBytes,
			})
			fmt.Fprintf(os.Stderr,
				"%-10s reps=%-3d workers=%d cache=%-2d  %12v/op  sweeps=%-3d hits=%-4d flat=%d\n",
				w.Name, reps, cfg.workers, cfg.cache,
				time.Duration(r.NsPerOp()), c.LeafSweeps, c.CacheHits, c.FlatCalls)
		}
	}

	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}
