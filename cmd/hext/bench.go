package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"ace/internal/cif"
	"ace/internal/extract"
	"ace/internal/gen"
	"ace/internal/geom"
	"ace/internal/hext"
	"ace/internal/netlist"
	"ace/internal/prof"
	"ace/internal/tech"
	"ace/internal/wirelist"
)

// benchEnv is the shared machine snapshot (see prof.CaptureEnv);
// baselines are only comparable against the same environment.
// GOMAXPROCS sits next to num_cpu because the worker sweep's speedups
// are meaningless without it.
type benchEnv = prof.Env

type benchResult struct {
	Workload    string `json:"workload"`
	Scenario    string `json:"scenario,omitempty"`
	Reps        int    `json:"reps,omitempty"`
	Workers     int    `json:"workers"`
	CacheSize   int    `json:"cache_size"`
	Devices     int    `json:"devices"`
	Nets        int    `json:"nets"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`

	// The memoisation evidence: flat calls grow with the replication
	// factor, leaf sweeps stay bounded by the number of distinct window
	// contents.
	UniqueWindows int   `json:"unique_windows"`
	FlatCalls     int   `json:"flat_calls"`
	LeafSweeps    int   `json:"leaf_sweeps"`
	CacheHits     int   `json:"cache_hits"`
	CacheMisses   int   `json:"cache_misses"`
	CacheBytes    int64 `json:"cache_bytes"`

	// Disk-tier and session evidence for the persist scenarios.
	SessionHits int   `json:"session_hits,omitempty"`
	DiskHits    int   `json:"disk_hits,omitempty"`
	DiskMisses  int   `json:"disk_misses,omitempty"`
	DiskBytes   int64 `json:"disk_bytes,omitempty"`

	// Disk-error evidence: nonzero means the run degraded (recomputed
	// instead of reading, or failed to persist) — never wrong bytes.
	DiskErrors    int `json:"disk_errors,omitempty"`
	DiskPutErrors int `json:"disk_put_errors,omitempty"`
}

// persistSummary states the PR's headline ratios, measured at
// workers=1: a warm process (new Session, populated cache directory)
// versus a cold hext run, and a one-cell Session.Apply re-extract
// versus a cold flat-ACE run. ByteIdentical reports that every
// scenario produced the reference wirelist bytes.
type persistSummary struct {
	WarmProcessSpeedupVsColdHext float64 `json:"warm_process_speedup_vs_cold_hext"`
	EditSpeedupVsColdFlatAce     float64 `json:"edit_speedup_vs_cold_flat_ace"`
	ByteIdentical                bool    `json:"byte_identical"`
}

type benchReport struct {
	Env benchEnv `json:"env"`
	// PeakRSSBytes is the process high-water mark sampled after the
	// whole sweep — an upper bound on any single scenario's footprint.
	PeakRSSBytes int64          `json:"peak_rss_bytes"`
	Results      []benchResult  `json:"results"`
	Persist      persistSummary `json:"persist"`
}

// runBenchJSON runs the replication reuse sweep — the same gate cell
// instantiated 1x, 8x and 64x with varying margins — across worker
// counts and a cache-off ablation, and writes a machine-readable
// baseline. The interesting ratio is ns_per_op at 64x over 1x: with
// the content cache it grows far slower than the instance count,
// because leaf_sweeps stays at the number of distinct contents.
func runBenchJSON(path string) {
	report := benchReport{Env: prof.CaptureEnv()}
	if runtime.NumCPU() < 2 {
		fmt.Fprintf(os.Stderr,
			"hext: single-core host (NumCPU=%d): worker sweeps measure scheduling overhead, not speedup\n",
			runtime.NumCPU())
	}

	type config struct {
		workers int
		cache   int
	}
	configs := []config{
		{1, 0},  // serial, default cache
		{4, 0},  // parallel, default cache
		{8, 0},  // oversubscribed, default cache
		{1, -1}, // cache-off ablation
	}
	for _, reps := range []int{1, 8, 64} {
		w := gen.Replicated(reps)
		for _, cfg := range configs {
			opt := hext.Options{Workers: cfg.workers, CacheSize: cfg.cache}
			// One untimed run for the design-dependent counters.
			probe, err := hext.Extract(w.File, opt)
			if err != nil {
				fatal(err)
			}
			if len(probe.Netlist.Devices) != w.WantDevices {
				fmt.Fprintf(os.Stderr, "hext: warning: reps=%d: devices %d, want %d\n",
					reps, len(probe.Netlist.Devices), w.WantDevices)
			}
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := hext.Extract(w.File, opt); err != nil {
						b.Fatal(err)
					}
				}
			})
			c := probe.Counters
			report.Results = append(report.Results, benchResult{
				Workload:      w.Name,
				Reps:          reps,
				Workers:       cfg.workers,
				CacheSize:     cfg.cache,
				Devices:       len(probe.Netlist.Devices),
				Nets:          len(probe.Netlist.Nets),
				NsPerOp:       r.NsPerOp(),
				AllocsPerOp:   r.AllocsPerOp(),
				BytesPerOp:    r.AllocedBytesPerOp(),
				UniqueWindows: c.UniqueWindows,
				FlatCalls:     c.FlatCalls,
				LeafSweeps:    c.LeafSweeps,
				CacheHits:     c.CacheHits,
				CacheMisses:   c.CacheMisses,
				CacheBytes:    c.CacheBytes,
			})
			fmt.Fprintf(os.Stderr,
				"%-10s reps=%-3d workers=%d cache=%-2d  %12v/op  sweeps=%-3d hits=%-4d flat=%d\n",
				w.Name, reps, cfg.workers, cfg.cache,
				time.Duration(r.NsPerOp()), c.LeafSweeps, c.CacheHits, c.FlatCalls)
		}
	}

	runPersistBench(&report)
	report.PeakRSSBytes = prof.PeakRSSBytes()

	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}

// benchStrips sizes the routing serpentine inside each macro. At 800
// strips a macro carries ~1200 boxes for 3 devices — the box-heavy
// regime of the paper's chips (Table 5-1: ~10-13 boxes per device,
// here exaggerated so the flat scanline's cost is unmistakable).
const benchStrips = 800

// benchMacro is one cell of the persistence workload: a library gate
// plus a serpentine metal routing run above it. The serpentine's boxes
// all merge into one net, so it inflates the geometry the flat
// scanline must sweep without inflating the netlist the hierarchical
// paths carry around. With cut set, the serpentine's middle link is
// dropped, splitting its net in two — an edit that changes the circuit
// without moving a single cell.
func benchMacro(d *gen.Design, name string, k int, cut bool) *gen.Cell {
	g := gen.GateCell(d, name+"_gate", k)
	m := d.Cell(name)
	m.Call(g, geom.Identity)
	y := gen.GateCellHeight(k) + 2
	for s := 0; s < benchStrips; s++ {
		m.LBox(tech.Metal, 0, y, gen.GateCellWidth, y+1)
		if cut && s == benchStrips/2 {
			y += 2
			continue
		}
		if s%2 == 0 {
			m.LBox(tech.Metal, gen.GateCellWidth-1, y+1, gen.GateCellWidth, y+2)
		} else {
			m.LBox(tech.Metal, 0, y+1, 1, y+2)
		}
		y += 2
	}
	return m
}

// benchChip is the persistence workload: the 64x replicated chip in
// editable form. Like gen.Replicated, the gaps between cells vary, so
// windows differ while cell contents memoise; unlike gen.Replicated
// the row lives in its own symbol, so one cell can be swapped through
// the Session edit API.
func benchChip(edit bool) *cif.File {
	d := gen.NewDesign()
	cell := benchMacro(d, "repCell", 1, false)
	odd := benchMacro(d, "repOdd", 1, true)
	chip := d.Cell("chip")
	x := int64(0)
	for i := 0; i < 64; i++ {
		use := cell
		if edit && i == 3 {
			use = odd
		}
		chip.CallAt(use, x*gen.Lambda, 0)
		x += gen.GateCellWidth + 4 + int64(i)%7
	}
	d.CallTop(chip, geom.Identity)
	return d.File()
}

// benchEdit is benchChip(true)'s change expressed as a Session edit:
// redefine the chip symbol with cell 3 swapped.
func benchEdit() hext.Edit {
	edited := benchChip(true)
	for id, sym := range edited.Symbols {
		if len(sym.Items) == 64 {
			return hext.Edit{SymbolID: id, Items: sym.Items, Name: sym.Name}
		}
	}
	panic("chip symbol not found")
}

func wirelistBytes(nl *netlist.Netlist) string {
	var buf bytes.Buffer
	if err := wirelist.Write(&buf, nl, wirelist.Options{}); err != nil {
		fatal(err)
	}
	return buf.String()
}

// runPersistBench appends the persistent-cache scenarios — cold flat
// ACE, cold hext, cold hext writing through to disk, a warm process on
// a populated directory, and a one-cell edit in a live session — and
// computes the summary speedups the PR targets.
func runPersistBench(report *benchReport) {
	base := benchChip(false)
	edited := benchChip(true)
	editOp := benchEdit()

	refBase, err := hext.Extract(base, hext.Options{})
	if err != nil {
		fatal(err)
	}
	refEdit, err := hext.Extract(edited, hext.Options{})
	if err != nil {
		fatal(err)
	}
	wantBase := wirelistBytes(refBase.Netlist)
	wantEdit := wirelistBytes(refEdit.Netlist)
	byteIdentical := true
	checkBytes := func(scenario string, nl *netlist.Netlist, want string) {
		if wirelistBytes(nl) != want {
			byteIdentical = false
			fmt.Fprintf(os.Stderr, "hext: warning: %s bytes differ from reference\n", scenario)
		}
	}

	var coldHextNs, warmNs, aceNs, editNs int64
	for _, workers := range []int{1, 4} {
		opt := hext.Options{Workers: workers}
		add := func(scenario string, c hext.Counters, nl *netlist.Netlist, r testing.BenchmarkResult) {
			report.Results = append(report.Results, benchResult{
				Workload:      "replicated/64-edit",
				Scenario:      scenario,
				Workers:       workers,
				Devices:       len(nl.Devices),
				Nets:          len(nl.Nets),
				NsPerOp:       r.NsPerOp(),
				AllocsPerOp:   r.AllocsPerOp(),
				BytesPerOp:    r.AllocedBytesPerOp(),
				UniqueWindows: c.UniqueWindows,
				FlatCalls:     c.FlatCalls,
				LeafSweeps:    c.LeafSweeps,
				CacheHits:     c.CacheHits,
				CacheMisses:   c.CacheMisses,
				CacheBytes:    c.CacheBytes,
				SessionHits:   c.SessionHits,
				DiskHits:      c.DiskHits,
				DiskMisses:    c.DiskMisses,
				DiskBytes:     c.DiskBytes,
				DiskErrors:    c.DiskErrors,
				DiskPutErrors: c.DiskPutErrors,
			})
			fmt.Fprintf(os.Stderr, "%-18s workers=%d  %12v/op  sweeps=%-3d diskHits=%-3d sessionHits=%d\n",
				scenario, workers, time.Duration(r.NsPerOp()), c.LeafSweeps, c.DiskHits, c.SessionHits)
		}

		// Cold flat ACE: the whole-chip re-extract an editor pays today.
		aceProbe, err := extract.File(base, extract.Options{Workers: workers})
		if err != nil {
			fatal(err)
		}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := extract.File(base, extract.Options{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
		add("cold_flat_ace", hext.Counters{}, aceProbe.Netlist, r)
		if workers == 1 {
			aceNs = r.NsPerOp()
		}

		// Cold hext, in-memory caches only.
		probe, err := hext.Extract(base, opt)
		if err != nil {
			fatal(err)
		}
		checkBytes("cold_hext", probe.Netlist, wantBase)
		r = testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := hext.Extract(base, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
		add("cold_hext", probe.Counters, probe.Netlist, r)
		if workers == 1 {
			coldHextNs = r.NsPerOp()
		}

		// Cold hext writing through to a fresh cache directory: the
		// first run's overhead for populating the disk tier.
		r = testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				dir, err := os.MkdirTemp("", "hext-bench-*")
				if err != nil {
					b.Fatal(err)
				}
				dopt := opt
				dopt.CacheDir = dir
				b.StartTimer()
				_, err = hext.NewSession(dopt).Extract(base)
				b.StopTimer()
				os.RemoveAll(dir)
				b.StartTimer()
				if err != nil {
					b.Fatal(err)
				}
			}
		})
		dir, err := os.MkdirTemp("", "hext-bench-*")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(dir)
		dopt := opt
		dopt.CacheDir = dir
		diskProbe, err := hext.NewSession(dopt).Extract(base)
		if err != nil {
			fatal(err)
		}
		checkBytes("cold_hext_disk", diskProbe.Netlist, wantBase)
		add("cold_hext_disk", diskProbe.Counters, diskProbe.Netlist, r)

		// Warm process: a brand-new Session (no in-memory state) on the
		// directory the probe above populated.
		warmProbe, err := hext.NewSession(dopt).Extract(base)
		if err != nil {
			fatal(err)
		}
		checkBytes("warm_process", warmProbe.Netlist, wantBase)
		r = testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := hext.NewSession(dopt).Extract(base); err != nil {
					b.Fatal(err)
				}
			}
		})
		add("warm_process", warmProbe.Counters, warmProbe.Netlist, r)
		if workers == 1 {
			warmNs = r.NsPerOp()
		}

		// One-cell edit in a live session: the incremental re-extract.
		s := hext.NewSession(opt)
		if _, err := s.Extract(base); err != nil {
			fatal(err)
		}
		editProbe, err := s.Apply(editOp)
		if err != nil {
			fatal(err)
		}
		checkBytes("edit_incremental", editProbe.Netlist, wantEdit)
		r = testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s := hext.NewSession(opt)
				if _, err := s.Extract(base); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, err := s.Apply(editOp); err != nil {
					b.Fatal(err)
				}
			}
		})
		add("edit_incremental", editProbe.Counters, editProbe.Netlist, r)
		if workers == 1 {
			editNs = r.NsPerOp()
		}
	}

	report.Persist = persistSummary{
		WarmProcessSpeedupVsColdHext: float64(coldHextNs) / float64(warmNs),
		EditSpeedupVsColdFlatAce:     float64(aceNs) / float64(editNs),
		ByteIdentical:                byteIdentical,
	}
	fmt.Fprintf(os.Stderr,
		"persist: warm-process %.1fx vs cold hext, edit %.1fx vs cold flat ace, byteIdentical=%v\n",
		report.Persist.WarmProcessSpeedupVsColdHext,
		report.Persist.EditSpeedupVsColdFlatAce,
		byteIdentical)
}
