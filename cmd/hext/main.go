// Command hext is the hierarchical circuit extractor.
//
// Usage:
//
//	hext [flags] [input.cif]        extract a design (stdin if no file)
//	hext -table41                   reproduce HEXT Table 4-1 (ideal arrays)
//	hext -table51 [-scale 0.1]      reproduce HEXT Table 5-1 (HEXT vs ACE)
//	hext -table52 [-scale 0.1]      reproduce HEXT Table 5-2 (compose analysis)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"ace/internal/check"
	"ace/internal/cif"
	"ace/internal/cli"
	"ace/internal/extract"
	"ace/internal/gen"
	"ace/internal/guard"
	"ace/internal/hext"
	"ace/internal/prof"
	"ace/internal/store"
	"ace/internal/wirelist"
)

// flagWorkers and flagCacheSize are threaded into every extraction the
// command runs; flagFlattenWorkers selects the flat extractor's
// streamed ingest in the HEXT-vs-ACE comparison columns; flagTimeout
// is the -timeout wall-clock budget for a plain extraction run.
var (
	flagWorkers        int
	flagCacheSize      int
	flagCacheDir       string
	flagCacheMaxBytes  int64
	flagFlattenWorkers int
	flagTimeout        time.Duration
	flagLenient        bool
	flagCheck          bool
	flagDiagJSON       bool
	flagMaxBoxes       int64
	flagRepeat         int
)

// gcStart is the collector snapshot at process start; -stats prints the
// delta so a -repeat loop's allocation behaviour is visible. iterNs
// collects the per-iteration wall clocks of a -repeat run.
var (
	gcStart prof.GCStats
	iterNs  []int64
)

func recordIter(d time.Duration) {
	fmt.Fprintf(os.Stderr, "hext: iter %d: %v\n", len(iterNs), d)
	iterNs = append(iterNs, d.Nanoseconds())
}

func hextOpts() hext.Options {
	return hext.Options{
		Workers:       flagWorkers,
		CacheSize:     flagCacheSize,
		CacheDir:      flagCacheDir,
		CacheMaxBytes: flagCacheMaxBytes,
		Lenient:       flagLenient,
		Limits:        guard.Limits{MaxBoxes: flagMaxBoxes},
	}
}

// flatOpts configures the flat-ACE runs the tables compare against.
func flatOpts() extract.Options {
	return extract.Options{FlattenWorkers: flagFlattenWorkers}
}

func main() {
	var (
		out     = flag.String("o", "", "write output to this file (default stdout)")
		hier    = flag.Bool("hier", false, "emit the hierarchical wirelist instead of the flat one")
		stats   = flag.Bool("stats", false, "print summary statistics instead of a wirelist")
		table41 = flag.Bool("table41", false, "reproduce HEXT Table 4-1 on ideal square arrays")
		table51 = flag.Bool("table51", false, "reproduce HEXT Table 5-1 on the synthetic chips")
		table52 = flag.Bool("table52", false, "reproduce HEXT Table 5-2 (compose-time analysis)")
		scale   = flag.Float64("scale", 1.0, "chip scale factor for the table harnesses")
		maxN    = flag.Int("maxcells", 65536, "largest array size for -table41")
		bench   = flag.String("bench-json", "", "benchmark the replication sweep and write a JSON baseline to this file")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.IntVar(&flagWorkers, "workers", 0, "schedule leaf sweeps and composes over this many goroutines (0 or 1: serial)")
	flag.IntVar(&flagCacheSize, "cache-size", 0, "content-cache capacity in cached window sweeps (0: default 4096, negative: disabled)")
	flag.StringVar(&flagCacheDir, "cache-dir", "", "persistent extraction cache directory (shared across runs and processes; empty: disabled)")
	flag.Int64Var(&flagCacheMaxBytes, "cache-max-bytes", 0, "size cap for -cache-dir with LRU eviction (0: default 256 MiB, negative: uncapped)")
	flag.IntVar(&flagFlattenWorkers, "flatten-workers", 0, "use the flat extractor's streamed pre-flatten ingest (with this many stamp workers) in the ACE comparison columns")
	flag.DurationVar(&flagTimeout, "timeout", 0, "abort the extraction after this wall-clock duration (e.g. 30s; 0: no limit)")
	flag.BoolVar(&flagLenient, "lenient", false, "recover from malformed CIF: record located diagnostics, resynchronise, extract the salvageable geometry")
	flag.BoolVar(&flagCheck, "check", false, "run the static electrical-rule checker on the extracted netlist")
	flag.BoolVar(&flagDiagJSON, "diag-json", false, "emit diagnostics as a JSON report on stdout (the wirelist then requires -o)")
	flag.Int64Var(&flagMaxBoxes, "max-boxes", 0, "fail the extraction after this many geometry items (0: unlimited)")
	flag.IntVar(&flagRepeat, "repeat", 1, "extract the design this many times through one warm Session, printing per-iteration timings to stderr")
	cacheVerify := flag.Bool("cache-verify", false, "verify every entry in the -cache-dir store (quarantining damage) and exit 5 if any is corrupt")
	flag.Parse()
	gcStart = prof.CaptureGC()

	stop, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fatal(err)
	}
	defer stop()

	switch {
	case *cacheVerify:
		runCacheVerify(flagCacheDir)
	case *bench != "":
		runBenchJSON(*bench)
	case *table41:
		runTable41(*maxN)
	case *table51:
		runTable51(*scale)
	case *table52:
		runTable52(*scale)
	default:
		runExtract(flag.Arg(0), *out, *hier, *stats)
	}
}

func fatal(err error) {
	cli.Fatal("hext", err)
}

// runCacheVerify scans a persistent cache directory: every entry is
// read and verified (header, embedded key, checksum, file-name
// binding), damage is quarantined, and the process exits with the
// corruption code when any entry failed — the ops-side integrity
// check for a shared daemon cache.
func runCacheVerify(dir string) {
	if dir == "" {
		fatal(fmt.Errorf("-cache-verify requires -cache-dir"))
	}
	s, err := store.Open(dir, store.Options{MaxBytes: flagCacheMaxBytes})
	if err != nil {
		fatal(err)
	}
	errs := s.VerifyAll()
	for _, e := range errs {
		fmt.Fprintln(os.Stderr, "hext:", e)
	}
	entries, bytes := s.Stats()
	fmt.Printf("cache %s: %d entries ok, %d corrupt (quarantined), %d bytes\n",
		dir, entries, len(errs), bytes)
	if len(errs) > 0 {
		// Every failure from VerifyAll is corruption or unreadable I/O;
		// classify through the shared taxonomy off the first error.
		os.Exit(cli.ExitCodeFor(errs[0]))
	}
}

func runExtract(in, out string, hier, stats bool) {
	r := os.Stdin
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	var ctx context.Context
	if flagTimeout > 0 {
		tctx, cancel := context.WithTimeout(context.Background(), flagTimeout)
		defer cancel()
		ctx = tctx
	}
	hopt := hextOpts()
	var res *hext.Result
	var err error
	if flagRepeat > 1 {
		// Parse once, then re-extract through one warm Session: the memo,
		// content cache and pooled sweep scratch persist, so every
		// iteration after the first measures the warm re-extraction path.
		t0 := time.Now()
		f, perr := cif.ParseReaderOpts(r, cif.ParseOptions{Limits: hopt.Limits, Lenient: hopt.Lenient, Diag: hopt.Diag})
		if perr != nil {
			fatal(perr)
		}
		parse := time.Since(t0)
		s := hext.NewSession(hopt)
		for i := 0; i < flagRepeat; i++ {
			it0 := time.Now()
			res, err = s.ExtractContext(ctx, f)
			if err != nil {
				fatal(err)
			}
			recordIter(time.Since(it0))
		}
		res.Timing.Parse = parse
	} else if res, err = hext.ReaderContext(ctx, r, hopt); err != nil {
		fatal(err)
	}
	if flagCheck {
		res.Diagnostics.AddAll(check.Run(res.Netlist, check.Options{}))
		res.Diagnostics.Sort()
	}
	diagMode := flagLenient || flagCheck || flagDiagJSON
	if diagMode {
		// The unified renderer covers warnings too; the legacy per-line
		// warning echo would duplicate them.
		if err := cli.RenderDiagnostics(in, &res.Diagnostics, flagDiagJSON, os.Stdout, os.Stderr); err != nil {
			fatal(err)
		}
	} else {
		for _, w := range res.Warnings {
			fmt.Fprintln(os.Stderr, "hext: warning:", w)
		}
	}
	if stats {
		c := res.Counters
		fmt.Printf("%s\n", res.Netlist.Stats())
		fmt.Printf("uniqueWindows=%d memoHits=%d flatCalls=%d composeCalls=%d\n",
			c.UniqueWindows, c.MemoHits, c.FlatCalls, c.ComposeCalls)
		fmt.Printf("leafSweeps=%d cacheHits=%d cacheMisses=%d cacheBytes=%d\n",
			c.LeafSweeps, c.CacheHits, c.CacheMisses, c.CacheBytes)
		fmt.Printf("sessionHits=%d diskHits=%d diskMisses=%d diskBytes=%d diskErrors=%d diskPutErrors=%d\n",
			c.SessionHits, c.DiskHits, c.DiskMisses, c.DiskBytes, c.DiskErrors, c.DiskPutErrors)
		fmt.Printf("phases: parse=%v frontend=%v flat=%v compose=%v flatten=%v total=%v\n",
			res.Timing.Parse, res.Timing.FrontEnd, res.Timing.Flat, res.Timing.Compose,
			res.Timing.Flatten, res.Timing.Total())
		if rss := prof.PeakRSSBytes(); rss > 0 {
			fmt.Printf("peakRSS=%d bytes (%.1f MiB)\n", rss, float64(rss)/(1<<20))
		}
		gc := prof.CaptureGC().Delta(gcStart)
		fmt.Printf("gc: cycles=%d pauseTotal=%v alloc=%d bytes heapInuse=%d bytes\n",
			gc.NumGC, time.Duration(gc.PauseTotalNs), gc.TotalAlloc, gc.HeapInuse)
		os.Exit(cli.Exit(&res.Diagnostics))
	}
	w := os.Stdout
	if out != "" {
		fo, err := os.Create(out)
		if err != nil {
			fatal(err)
		}
		defer fo.Close()
		w = fo
	}
	if !(flagDiagJSON && out == "") {
		// With -diag-json the JSON report owns stdout; the wirelist is
		// written only when -o directs it elsewhere.
		if hier {
			if err := res.WriteHierarchical(w); err != nil {
				fatal(err)
			}
		} else if err := wirelist.Write(w, res.Netlist, wirelist.Options{}); err != nil {
			fatal(err)
		}
	}
	if code := cli.Exit(&res.Diagnostics); code != cli.ExitOK {
		os.Exit(code)
	}
}

// runTable41 reproduces HEXT Table 4-1: the ideal N-cell square array.
// The paper's columns: HEXT total, HEXT−k (k = the cost of extracting
// one cell), and the flat extractor. HEXT extraction time here
// excludes flattening (the paper's wirelist is hierarchical; the
// flatten column is shown separately).
func runTable41(maxN int) {
	fmt.Printf("HEXT Table 4-1: ideal square arrays (%s)\n\n", hostLine())

	// k: the cost of extracting a single cell.
	single := gen.SquareArray(1)
	k := hextExtractTime(single.File)

	fmt.Printf("%10s %14s %14s %14s %14s %8s\n",
		"N cells", "HEXT", "HEXT-k", "flat (ACE)", "flatten", "uniqWin")
	for n := 1024; n <= maxN; n *= 4 {
		w := gen.SquareArray(n)

		res, err := hext.Extract(w.File, hext.Options{})
		if err != nil {
			fatal(err)
		}
		hextT := res.Timing.FrontEnd + res.Timing.BackEnd()
		flattenT := res.Timing.Flatten
		uniq := res.Counters.UniqueWindows
		devs := len(res.Netlist.Devices)

		// Drop the window DAG before timing the flat extractor, so the
		// measurement is not distorted by collector work over HEXT's
		// retained memory.
		res = nil
		runtime.GC()

		t0 := time.Now()
		fres, err := extract.File(w.File, flatOpts())
		if err != nil {
			fatal(err)
		}
		flatT := time.Since(t0)
		if len(fres.Netlist.Devices) != devs {
			fmt.Fprintf(os.Stderr, "hext: warning: extractors disagree at n=%d\n", n)
		}
		fres = nil
		runtime.GC()

		hk := hextT - k
		if hk < 0 {
			hk = 0
		}
		fmt.Printf("%10d %14s %14s %14s %14s %8d\n",
			n, roundU(hextT), roundU(hk), roundU(flatT), roundU(flattenT), uniq)
	}
	fmt.Printf("\nk (one cell) = %s.\n", roundU(k))
	fmt.Printf("Paper: HEXT-k doubles per 4x cells (O(sqrt N)); flat grows 4x (O(N)).\n")
}

// runTable51 reproduces HEXT Table 5-1: per chip, HEXT front-end,
// back-end and total versus flat ACE.
func runTable51(scale float64) {
	fmt.Printf("HEXT Table 5-1 (synthetic stand-in chips, scale %.2f, %s)\n\n", scale, hostLine())
	fmt.Printf("%-10s %9s %12s %12s %12s %12s\n",
		"chip", "devices", "front-end", "back-end", "HEXT total", "ACE flat")
	for _, name := range []string{"cherry", "dchip", "schip2", "testram", "psc", "riscb"} {
		c, _ := gen.ChipByName(name)
		w := c.Build(scale)

		res, err := hext.Extract(w.File, hext.Options{})
		if err != nil {
			fatal(err)
		}
		t0 := time.Now()
		if _, err := extract.File(w.File, flatOpts()); err != nil {
			fatal(err)
		}
		flatT := time.Since(t0)

		fe := res.Timing.FrontEnd
		be := res.Timing.BackEnd()
		fmt.Printf("%-10s %9d %12s %12s %12s %12s\n",
			name, len(res.Netlist.Devices), roundU(fe), roundU(be), roundU(fe+be), roundU(flatT))
	}
	fmt.Printf("\nPaper: testram 16x faster than flat; schip2/psc slower than flat (compose-bound).\n")
}

// runTable52 reproduces HEXT Table 5-2: calls to the flat extractor,
// calls to compose, and the percentage of back-end time spent
// composing.
func runTable52(scale float64) {
	fmt.Printf("HEXT Table 5-2 (synthetic stand-in chips, scale %.2f, %s)\n\n", scale, hostLine())
	fmt.Printf("%-10s %9s %10s %10s %12s %12s %9s\n",
		"chip", "devices", "flatCalls", "composes", "back-end", "compose", "compose%")
	for _, name := range []string{"cherry", "dchip", "schip2", "testram", "psc", "riscb"} {
		c, _ := gen.ChipByName(name)
		w := c.Build(scale)
		res, err := hext.Extract(w.File, hext.Options{})
		if err != nil {
			fatal(err)
		}
		be := res.Timing.BackEnd()
		pct := 0.0
		if be > 0 {
			pct = 100 * res.Timing.Compose.Seconds() / be.Seconds()
		}
		fmt.Printf("%-10s %9d %10d %10d %12s %12s %8.0f%%\n",
			name, len(res.Netlist.Devices),
			res.Counters.FlatCalls, res.Counters.ComposeCalls,
			roundU(be), roundU(res.Timing.Compose), pct)
	}
	fmt.Printf("\nPaper: 47-94%% of back-end time in compose (average 72%%).\n")
}

func hextExtractTime(f *cif.File) time.Duration {
	res, err := hext.Extract(f, hext.Options{})
	if err != nil {
		fatal(err)
	}
	return res.Timing.FrontEnd + res.Timing.BackEnd()
}

func roundU(d time.Duration) string { return d.Round(10 * time.Microsecond).String() }

func hostLine() string {
	return fmt.Sprintf("go %s on %s/%s", runtime.Version(), runtime.GOOS, runtime.GOARCH)
}
