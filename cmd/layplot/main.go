// Command layplot renders a CIF layout to PNG in the classic
// Mead–Conway colours (the plotting role of the historical cifplot).
//
// Usage:
//
//	layplot -o chip.png chip.cif
//	layplot -net OUT -o out.png chip.cif   highlight one extracted net
package main

import (
	"flag"
	"fmt"
	"os"

	"ace/internal/cif"
	"ace/internal/extract"
	"ace/internal/frontend"
	"ace/internal/render"
)

func main() {
	var (
		out    = flag.String("o", "layout.png", "output PNG file")
		maxDim = flag.Int("size", 1024, "longest image dimension in pixels")
		net    = flag.String("net", "", "extract the design and highlight this net's geometry")
	)
	flag.Parse()

	r := os.Stdin
	if flag.Arg(0) != "" {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	f, err := cif.Parse(r)
	if err != nil {
		fatal(err)
	}
	stream, err := frontend.New(f, frontend.Options{KeepGlass: true})
	if err != nil {
		fatal(err)
	}
	opt := render.Options{MaxDim: *maxDim}
	if *net != "" {
		res, err := extract.File(f, extract.Options{KeepGeometry: true})
		if err != nil {
			fatal(err)
		}
		idx, ok := res.Netlist.NetByName(*net)
		if !ok {
			fatal(fmt.Errorf("no net named %q in the extracted design", *net))
		}
		for _, g := range res.Netlist.Nets[idx].Geometry {
			opt.Highlight = append(opt.Highlight, g.Rect)
		}
	}
	w, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer w.Close()
	if err := render.WritePNG(w, stream.Drain(), opt); err != nil {
		fatal(err)
	}
	fmt.Println("wrote", *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "layplot:", err)
	os.Exit(1)
}
