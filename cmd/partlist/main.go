// Command partlist is the run-encoded raster-scan extractor that
// preceded ACE at CMU — kept as a working baseline. CIF in, wirelist
// out. All geometry must be aligned to the raster grid.
package main

import (
	"flag"
	"fmt"
	"os"

	"ace/internal/cif"
	"ace/internal/frontend"
	"ace/internal/raster"
	"ace/internal/wirelist"
)

func main() {
	var (
		out   = flag.String("o", "", "write the wirelist to this file (default stdout)")
		grid  = flag.Int64("grid", 200, "raster grid in centimicrons")
		stats = flag.Bool("stats", false, "print summary statistics instead of the wirelist")
	)
	flag.Parse()

	r := os.Stdin
	if flag.Arg(0) != "" {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	f, err := cif.Parse(r)
	if err != nil {
		fatal(err)
	}
	stream, err := frontend.New(f, frontend.Options{})
	if err != nil {
		fatal(err)
	}
	boxes := stream.Drain()
	res, err := raster.ExtractBoxes(boxes, raster.Options{Grid: *grid, Labels: stream.Labels()})
	if err != nil {
		fatal(err)
	}
	for _, w := range res.Warnings {
		fmt.Fprintln(os.Stderr, "partlist: warning:", w)
	}
	if *stats {
		fmt.Printf("%s\n", res.Netlist.Stats())
		fmt.Printf("grid=%d rows=%d cols=%d squares=%d\n",
			*grid, res.Counters.Rows, res.Counters.Cols, res.Counters.Squares)
		return
	}
	w := os.Stdout
	if *out != "" {
		fo, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer fo.Close()
		w = fo
	}
	if err := wirelist.Write(w, res.Netlist, wirelist.Options{}); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "partlist:", err)
	os.Exit(1)
}
