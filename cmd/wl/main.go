// Command wl works with wirelists: statistics, comparison (the
// wirelist comparator of the paper's introduction), static checking,
// and switch-level simulation.
//
// Usage:
//
//	wl stats a.wl                print device/net statistics
//	wl compare a.wl b.wl         report whether two wirelists are the same circuit
//	wl check a.wl                run the static checker
//	wl sim a.wl IN=1 [IN2=0]     evaluate the circuit with inputs, print labelled nets
//	wl flatten hier.wl           flatten a hierarchical wirelist (from hext -hier)
//	wl rc a.wl                   estimate per-net parasitics (needs ace -g output)
//
// compare/check/sim accept both flat and hierarchical wirelists.
package main

import (
	"fmt"
	"os"
	"strings"

	"ace/internal/check"
	"ace/internal/hext"
	"ace/internal/netlist"
	"ace/internal/rcx"
	"ace/internal/sim"
	"ace/internal/wirelist"
)

func main() {
	if len(os.Args) < 3 {
		usage()
	}
	switch os.Args[1] {
	case "stats":
		nl := load(os.Args[2])
		fmt.Println(nl.Stats())
	case "flatten":
		nl := load(os.Args[2])
		if err := wirelist.Write(os.Stdout, nl, wirelist.Options{}); err != nil {
			fatal(err)
		}
	case "compare":
		if len(os.Args) < 4 {
			usage()
		}
		a, b := load(os.Args[2]), load(os.Args[3])
		eq, why := netlist.Equivalent(a, b)
		if eq {
			fmt.Println("equivalent")
			return
		}
		fmt.Println("NOT equivalent:", why)
		os.Exit(1)
	case "rc":
		nl := load(os.Args[2])
		rcs, err := rcx.Annotate(nl, nil)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-12s %12s %12s %12s\n", "net", "C (aF)", "R (mΩ)", "elmore (ns)")
		for _, rc := range rcx.Worst(rcs, len(rcs)) {
			if rc.CapAF == 0 {
				continue
			}
			fmt.Printf("%-12s %12.0f %12.0f %12.4f\n",
				nl.Nets[rc.Net].Name(rc.Net), rc.CapAF, rc.ResMOhm, rc.ElmoreNS())
		}
	case "check":
		nl := load(os.Args[2])
		findings := check.Run(nl, check.Options{})
		for _, f := range findings {
			fmt.Println(f)
		}
		errs, warns := check.Count(findings)
		fmt.Printf("%d errors, %d warnings\n", errs, warns)
		if errs > 0 {
			os.Exit(1)
		}
	case "sim":
		nl := load(os.Args[2])
		s, err := sim.New(nl)
		if err != nil {
			fatal(err)
		}
		for _, arg := range os.Args[3:] {
			name, val, ok := strings.Cut(arg, "=")
			if !ok {
				fatal(fmt.Errorf("input %q is not name=value", arg))
			}
			v := sim.X
			switch val {
			case "0":
				v = sim.L
			case "1":
				v = sim.H
			}
			if err := s.Set(name, v); err != nil {
				fatal(err)
			}
		}
		if err := s.Eval(); err != nil {
			fatal(err)
		}
		for i := range nl.Nets {
			if len(nl.Nets[i].Names) == 0 {
				continue
			}
			fmt.Printf("%s = %v\n", nl.Nets[i].Name(i), s.Value(i))
		}
	default:
		usage()
	}
}

// load reads a wirelist, flat or hierarchical (the latter is
// recognised by its Window DefParts and flattened on the fly).
func load(path string) *netlist.Netlist {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	src := string(data)
	if strings.Contains(src, "(DefPart Window") {
		nl, err := hext.ParseHierarchicalString(src)
		if err != nil {
			fatal(err)
		}
		return nl
	}
	nl, err := wirelist.ParseString(src)
	if err != nil {
		fatal(err)
	}
	return nl
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: wl stats|compare|check|sim|flatten <files...>")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wl:", err)
	os.Exit(1)
}
