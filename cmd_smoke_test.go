package ace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestCommandSmoke builds every CLI and drives the full shell design
// loop: generate → plot → drc → extract (flat, raster, hierarchical) →
// compare → check → simulate → flatten.
func TestCommandSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool unavailable")
	}
	dir := t.TempDir()
	bins := map[string]string{}
	for _, name := range []string{"ace", "hext", "partlist", "cifgen", "wl", "drc", "layplot"} {
		out := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, b)
		}
		bins[name] = out
	}
	run := func(name string, args ...string) string {
		t.Helper()
		cmd := exec.Command(bins[name], args...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", name, args, err, out)
		}
		return string(out)
	}

	cif := filepath.Join(dir, "chain.cif")
	run("cifgen", "-w", "chain", "-n", "3", "-o", cif)

	// Plot and rule-check.
	png := filepath.Join(dir, "chain.png")
	run("layplot", "-o", png, cif)
	if st, err := os.Stat(png); err != nil || st.Size() == 0 {
		t.Fatalf("no png produced: %v", err)
	}
	if out := run("drc", cif); !strings.Contains(out, "clean") {
		t.Fatalf("drc: %s", out)
	}
	if out := run("drc", "-hier", "-tile", "36", cif); !strings.Contains(out, "clean") {
		t.Fatalf("drc -hier: %s", out)
	}

	// Extract three ways and compare.
	flat := filepath.Join(dir, "flat.wl")
	run("ace", "-o", flat, cif)
	rast := filepath.Join(dir, "rast.wl")
	run("partlist", "-o", rast, cif)
	hier := filepath.Join(dir, "hier.hwl")
	run("hext", "-hier", "-o", hier, cif)
	if out := run("wl", "compare", flat, rast); !strings.Contains(out, "equivalent") {
		t.Fatalf("compare flat/raster: %s", out)
	}
	if out := run("wl", "compare", flat, hier); !strings.Contains(out, "equivalent") {
		t.Fatalf("compare flat/hier: %s", out)
	}

	// Flatten the hierarchical wirelist and check/simulate it.
	if out := run("wl", "flatten", hier); !strings.Contains(out, "DefPart") {
		t.Fatalf("flatten: %s", out)
	}
	if out := run("wl", "check", flat); !strings.Contains(out, "0 errors") {
		t.Fatalf("check: %s", out)
	}
	if out := run("wl", "sim", flat, "IN=1"); !strings.Contains(out, "OUT = 0") {
		t.Fatalf("sim: %s", out)
	}

	// Stats and table harnesses at tiny scale.
	if out := run("ace", "-stats", cif); !strings.Contains(out, "devices=6") {
		t.Fatalf("stats: %s", out)
	}
	if out := run("hext", "-stats", cif); !strings.Contains(out, "devices=6") {
		t.Fatalf("hext stats: %s", out)
	}
	if out := run("ace", "-table51", "-scale", "0.002"); !strings.Contains(out, "riscb") {
		t.Fatalf("table51: %s", out)
	}
	if out := run("hext", "-table52", "-scale", "0.002"); !strings.Contains(out, "compose") {
		t.Fatalf("hext table52: %s", out)
	}
}

// TestPersistentCacheSmoke drives the -cache-dir flag across real
// processes: a cold run populates the directory, a second process
// reads it back (identical wirelist, diskHits > 0 in -stats), two
// concurrent processes share it safely, and ace -cache-dir delegates
// to the hierarchical engine with the same bytes.
func TestPersistentCacheSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool unavailable")
	}
	dir := t.TempDir()
	bins := map[string]string{}
	for _, name := range []string{"ace", "hext", "cifgen"} {
		out := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, b)
		}
		bins[name] = out
	}
	run := func(name string, args ...string) string {
		t.Helper()
		cmd := exec.Command(bins[name], args...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", name, args, err, out)
		}
		return string(out)
	}

	cif := filepath.Join(dir, "chain.cif")
	run("cifgen", "-w", "chain", "-n", "3", "-o", cif)
	cache := filepath.Join(dir, "cache")

	// Cold process populates; warm process answers from disk with the
	// same bytes.
	cold := run("hext", "-cache-dir", cache, cif)
	warm := run("hext", "-cache-dir", cache, cif)
	if cold != warm {
		t.Fatalf("warm process output differs from cold:\ncold:\n%s\nwarm:\n%s", cold, warm)
	}
	if ents, err := os.ReadDir(cache); err != nil || len(ents) == 0 {
		t.Fatalf("cache directory not populated: %v", err)
	}
	stats := run("hext", "-cache-dir", cache, "-stats", cif)
	if !strings.Contains(stats, "diskHits=") || strings.Contains(stats, "diskHits=0 ") {
		t.Fatalf("warm -stats reports no disk hits:\n%s", stats)
	}

	// The plain run (no cache) agrees byte-for-byte.
	if plain := run("hext", cif); plain != cold {
		t.Fatalf("cached output differs from uncached:\n%s\nvs\n%s", plain, cold)
	}

	// ace -cache-dir delegates to the hierarchical engine: same bytes
	// as ace -hier, warm or cold. (ace names the netlist after the
	// input path where hext uses the design's name, so the comparison
	// baseline is ace's own hierarchical mode.)
	viaHier := run("ace", "-hier", cif)
	if viaAce := run("ace", "-cache-dir", cache, cif); viaAce != viaHier {
		t.Fatalf("ace -cache-dir differs from ace -hier:\n%s\nvs\n%s", viaAce, viaHier)
	}

	// Two processes sharing one directory concurrently: both succeed
	// and agree.
	fresh := filepath.Join(dir, "shared-cache")
	type res struct {
		out string
		err error
	}
	ch := make(chan res, 2)
	for i := 0; i < 2; i++ {
		go func() {
			out, err := exec.Command(bins["hext"], "-cache-dir", fresh, cif).CombinedOutput()
			ch <- res{string(out), err}
		}()
	}
	a, b := <-ch, <-ch
	if a.err != nil || b.err != nil {
		t.Fatalf("concurrent cache-dir runs failed: %v / %v\n%s\n%s", a.err, b.err, a.out, b.out)
	}
	if a.out != b.out || a.out != cold {
		t.Fatalf("concurrent runs disagree:\n%s\nvs\n%s", a.out, b.out)
	}
}

// TestExitCodeTaxonomy pins the shared exit-code contract of ace and
// hext: 0 clean, 1 Error-severity diagnostics (or plain failure), 2
// usage, 3 timeout, 4 resource budget.
func TestExitCodeTaxonomy(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool unavailable")
	}
	dir := t.TempDir()
	bins := map[string]string{}
	for _, name := range []string{"ace", "hext", "cifgen", "cifpack"} {
		out := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, b)
		}
		bins[name] = out
	}
	// runCode returns the exit code plus captured stdout and stderr.
	runCode := func(name string, args ...string) (int, string, string) {
		t.Helper()
		cmd := exec.Command(bins[name], args...)
		var stdout, stderr bytes.Buffer
		cmd.Stdout, cmd.Stderr = &stdout, &stderr
		err := cmd.Run()
		code := 0
		if ee, ok := err.(*exec.ExitError); ok {
			code = ee.ExitCode()
		} else if err != nil {
			t.Fatalf("%s %v: %v", name, args, err)
		}
		return code, stdout.String(), stderr.String()
	}

	clean := filepath.Join(dir, "chain.cif")
	if code, _, errOut := runCode("cifgen", "-w", "chain", "-n", "3", "-o", clean); code != 0 {
		t.Fatalf("cifgen: %d\n%s", code, errOut)
	}
	bad := filepath.Join(dir, "bad.cif")
	if err := os.WriteFile(bad,
		[]byte("DS 1 1 1;\nL ND;\nB 10 10 5 5\nB bogus;\nB 20 20 100 100;\nDF;\nC 1;\nE\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	for _, prog := range []string{"ace", "hext"} {
		// 0: clean extraction, also with the checker attached.
		if code, out, errOut := runCode(prog, clean); code != 0 || out == "" {
			t.Fatalf("%s clean: code %d\n%s", prog, code, errOut)
		}
		if code, _, errOut := runCode(prog, "-check", clean); code != 0 {
			t.Fatalf("%s -check clean: code %d\n%s", prog, code, errOut)
		}

		// 1: strict parse failure, with today's located message.
		if code, _, errOut := runCode(prog, bad); code != 1 ||
			!strings.Contains(errOut, "cif: line 4:") {
			t.Fatalf("%s strict bad: code %d stderr %q", prog, code, errOut)
		}

		// 1: lenient still signals the damage, but renders diagnostics
		// and a salvaged wirelist.
		code, out, errOut := runCode(prog, "-lenient", bad)
		if code != 1 {
			t.Fatalf("%s -lenient bad: code %d", prog, code)
		}
		if !strings.Contains(errOut, "missing-semicolon") || !strings.Contains(errOut, "bad.cif:4:1:") {
			t.Fatalf("%s -lenient bad: stderr %q", prog, errOut)
		}
		if !strings.Contains(out, "DefPart") {
			t.Fatalf("%s -lenient bad: no salvaged wirelist:\n%s", prog, out)
		}

		// 1 + machine-readable report on stdout.
		code, out, _ = runCode(prog, "-lenient", "-diag-json", bad)
		if code != 1 {
			t.Fatalf("%s -diag-json: code %d", prog, code)
		}
		var report struct {
			Errors      int               `json:"errors"`
			Diagnostics []json.RawMessage `json:"diagnostics"`
		}
		if err := json.Unmarshal([]byte(out), &report); err != nil {
			t.Fatalf("%s -diag-json output is not JSON: %v\n%s", prog, err, out)
		}
		if report.Errors == 0 || len(report.Diagnostics) == 0 {
			t.Fatalf("%s -diag-json: empty report:\n%s", prog, out)
		}

		// 2: usage error (flag package convention).
		if code, _, _ := runCode(prog, "-no-such-flag"); code != 2 {
			t.Fatalf("%s usage: code %d", prog, code)
		}

		// 3: wall-clock budget expired.
		if code, _, errOut := runCode(prog, "-timeout", "1ns", clean); code != 3 {
			t.Fatalf("%s timeout: code %d\n%s", prog, code, errOut)
		}

		// 4: resource budget exceeded.
		if code, _, errOut := runCode(prog, "-max-boxes", "1", clean); code != 4 {
			t.Fatalf("%s max-boxes: code %d\n%s", prog, code, errOut)
		}
	}

	// 5: corrupt on-disk artifacts. A damaged packed tile file and a
	// damaged persistent-cache entry are data corruption, not input
	// findings, and get their own code.
	actb := filepath.Join(dir, "chain.actb")
	if code, _, errOut := runCode("cifpack", "-o", actb, clean); code != 0 {
		t.Fatalf("cifpack: code %d\n%s", code, errOut)
	}
	packed, err := os.ReadFile(actb)
	if err != nil {
		t.Fatal(err)
	}
	packed[len(packed)/2] ^= 0x20
	badTiles := filepath.Join(dir, "bad.actb")
	if err := os.WriteFile(badTiles, packed, 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, errOut := runCode("ace", "-tiles", badTiles); code != 5 {
		t.Fatalf("ace -tiles corrupt: code %d, want 5\n%s", code, errOut)
	}

	cache := filepath.Join(dir, "cache")
	if code, _, errOut := runCode("hext", "-cache-dir", cache, clean); code != 0 {
		t.Fatalf("hext -cache-dir: code %d\n%s", code, errOut)
	}
	if code, out, errOut := runCode("hext", "-cache-verify", "-cache-dir", cache); code != 0 ||
		!strings.Contains(out, "0 corrupt") {
		t.Fatalf("hext -cache-verify clean: code %d\n%s%s", code, out, errOut)
	}
	ents, err := os.ReadDir(cache)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := false
	for _, de := range ents {
		if !strings.HasSuffix(de.Name(), ".e") {
			continue
		}
		p := filepath.Join(cache, de.Name())
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		b[len(b)/2] ^= 0x20
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		corrupted = true
		break
	}
	if !corrupted {
		t.Fatal("cache directory holds no entries to corrupt")
	}
	if code, _, errOut := runCode("hext", "-cache-verify", "-cache-dir", cache); code != 5 ||
		!strings.Contains(errOut, "store:") {
		t.Fatalf("hext -cache-verify corrupt: code %d, want 5\n%s", code, errOut)
	}
	// The sweep quarantined the damage, so a second verify is clean.
	if code, _, errOut := runCode("hext", "-cache-verify", "-cache-dir", cache); code != 0 {
		t.Fatalf("hext -cache-verify after quarantine: code %d\n%s", code, errOut)
	}
}

// TestTiledCLISmoke drives the out-of-core loop across real
// processes: stream a size-targeted chip, pack it to the tiled format,
// extract it from tiles under a hard GOMEMLIMIT, and confirm the
// wirelist matches the in-RAM pipeline byte for byte. Windowed queries
// must report touching a small fraction of the file, and a corrupted
// file must fail with a diagnostic, not a panic.
func TestTiledCLISmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool unavailable")
	}
	dir := t.TempDir()
	bins := map[string]string{}
	for _, name := range []string{"ace", "cifgen", "cifpack"} {
		out := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, b)
		}
		bins[name] = out
	}
	run := func(name string, args ...string) string {
		t.Helper()
		cmd := exec.Command(bins[name], args...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", name, args, err, out)
		}
		return string(out)
	}

	cif := filepath.Join(dir, "chip.cif")
	run("cifgen", "-target-boxes", "50000", "-o", cif)
	actb := filepath.Join(dir, "chip.actb")
	// A crashed pack's leftover temp (dead pid): cifpack must sweep it
	// on startup, and its own atomic publish must leave no temps.
	orphan := filepath.Join(dir, ".tmp-999999999-crashed")
	if err := os.WriteFile(orphan, []byte("partial pack"), 0o644); err != nil {
		t.Fatal(err)
	}
	run("cifpack", "-o", actb, cif)
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("cifpack left the orphaned temp in place: %v", err)
	}
	if ents, err := os.ReadDir(dir); err == nil {
		for _, de := range ents {
			if strings.HasPrefix(de.Name(), ".tmp-") {
				t.Fatalf("cifpack left its own temp behind: %s", de.Name())
			}
		}
	}
	if out := run("cifpack", "-info", actb); !strings.Contains(out, "boxes") {
		t.Fatalf("cifpack -info: %s", out)
	}
	if out := run("cifpack", "-verify", actb); !strings.Contains(out, "ok") {
		t.Fatalf("cifpack -verify: %s", out)
	}

	// Byte-identity across sources and worker counts, with the tiled
	// runs under a memory limit far below the flattened chip.
	ref := run("ace", "-name", "chip", "-workers", "1", cif)
	for _, workers := range []string{"1", "4"} {
		stats := filepath.Join(dir, "stats"+workers+".json")
		cmd := exec.Command(bins["ace"], "-name", "chip", "-workers", workers,
			"-tiles", actb, "-stats-json", stats)
		cmd.Env = append(os.Environ(), "GOMEMLIMIT=16MiB")
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("ace -tiles -workers %s: %v\n%s", workers, err, out)
		}
		if string(out) != ref {
			t.Fatalf("tiled wirelist differs from in-RAM at workers=%s", workers)
		}
		var st struct {
			PeakRSSBytes int64 `json:"peak_rss_bytes"`
			TilesDecoded int64 `json:"tiles_decoded"`
			TilesTotal   int64 `json:"tiles_total"`
		}
		b, err := os.ReadFile(stats)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(b, &st); err != nil {
			t.Fatalf("stats-json: %v\n%s", err, b)
		}
		if st.PeakRSSBytes <= 0 || st.TilesDecoded <= 0 || st.TilesTotal <= 0 {
			t.Fatalf("stats-json missing counters: %+v", st)
		}
	}

	// A windowed query touches O(window) tiles and says so.
	out := run("ace", "-tiles", actb, "-window", "0,0,100000,100000", "-stats")
	if !strings.Contains(out, "tiles: decoded=") || !strings.Contains(out, "peakRSS=") {
		t.Fatalf("window -stats missing tile counters:\n%s", out)
	}

	// Corruption fails soft: diagnostic and nonzero exit, no panic.
	data, err := os.ReadFile(actb)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	bad := filepath.Join(dir, "bad.actb")
	if err := os.WriteFile(bad, data, 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bins["ace"], "-tiles", bad)
	b, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("corrupt tile file extracted without error:\n%s", b)
	}
	if strings.Contains(string(b), "panic") {
		t.Fatalf("corrupt tile file panicked:\n%s", b)
	}
}

// TestServeCLISmoke boots the real aced binary, attacks it with the
// real acebomb binary, and then shuts it down gracefully: the
// cross-process half of the service-mode contract (the in-process half
// lives in internal/serve's tests).
func TestServeCLISmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool unavailable")
	}
	dir := t.TempDir()
	bins := map[string]string{}
	for _, name := range []string{"aced", "acebomb"} {
		out := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, b)
		}
		bins[name] = out
	}

	// Boot the daemon on an ephemeral port, budgets armed so acebomb's
	// hierarchy bombs die on limits rather than the request timeout.
	daemon := exec.Command(bins["aced"],
		"-addr", "127.0.0.1:0",
		"-max-boxes", "200000", "-max-expanded-boxes", "200000",
		"-max-body-bytes", "1048576", // matches acebomb's default -body-cap
		"-queue-wait", "250ms",
		"-cache-dir", filepath.Join(dir, "cache"),
		"-drain-timeout", "30s",
	)
	stdout, err := daemon.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var daemonErr bytes.Buffer
	daemon.Stderr = &daemonErr
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	defer daemon.Process.Kill()

	// The first stdout line announces the resolved address.
	line, err := bufio.NewReader(stdout).ReadString('\n')
	if err != nil {
		t.Fatalf("no listen line from aced: %v (stderr: %s)", err, daemonErr.String())
	}
	addr := strings.TrimSpace(strings.TrimPrefix(line, "aced: listening on "))
	if addr == line || addr == "" {
		t.Fatalf("unexpected aced banner: %q", line)
	}
	go io.Copy(io.Discard, stdout) // keep the pipe drained

	// The adversarial mix must pass every invariant, cross-process.
	bomb := exec.Command(bins["acebomb"], "-url", "http://"+addr, "-duration", "3s", "-clients", "6")
	out, err := bomb.CombinedOutput()
	if err != nil {
		t.Fatalf("acebomb failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "acebomb: PASS") {
		t.Fatalf("acebomb did not report PASS:\n%s", out)
	}

	// Graceful shutdown: SIGTERM drains and exits cleanly.
	if err := daemon.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- daemon.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("aced exited dirty after SIGINT: %v (stderr: %s)", err, daemonErr.String())
		}
	case <-time.After(45 * time.Second):
		t.Fatal("aced did not exit after SIGINT")
	}
	if !strings.Contains(daemonErr.String(), "drained cleanly") {
		t.Fatalf("no clean-drain confirmation; stderr:\n%s", daemonErr.String())
	}
}
