package ace

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCommandSmoke builds every CLI and drives the full shell design
// loop: generate → plot → drc → extract (flat, raster, hierarchical) →
// compare → check → simulate → flatten.
func TestCommandSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool unavailable")
	}
	dir := t.TempDir()
	bins := map[string]string{}
	for _, name := range []string{"ace", "hext", "partlist", "cifgen", "wl", "drc", "layplot"} {
		out := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, b)
		}
		bins[name] = out
	}
	run := func(name string, args ...string) string {
		t.Helper()
		cmd := exec.Command(bins[name], args...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", name, args, err, out)
		}
		return string(out)
	}

	cif := filepath.Join(dir, "chain.cif")
	run("cifgen", "-w", "chain", "-n", "3", "-o", cif)

	// Plot and rule-check.
	png := filepath.Join(dir, "chain.png")
	run("layplot", "-o", png, cif)
	if st, err := os.Stat(png); err != nil || st.Size() == 0 {
		t.Fatalf("no png produced: %v", err)
	}
	if out := run("drc", cif); !strings.Contains(out, "clean") {
		t.Fatalf("drc: %s", out)
	}
	if out := run("drc", "-hier", "-tile", "36", cif); !strings.Contains(out, "clean") {
		t.Fatalf("drc -hier: %s", out)
	}

	// Extract three ways and compare.
	flat := filepath.Join(dir, "flat.wl")
	run("ace", "-o", flat, cif)
	rast := filepath.Join(dir, "rast.wl")
	run("partlist", "-o", rast, cif)
	hier := filepath.Join(dir, "hier.hwl")
	run("hext", "-hier", "-o", hier, cif)
	if out := run("wl", "compare", flat, rast); !strings.Contains(out, "equivalent") {
		t.Fatalf("compare flat/raster: %s", out)
	}
	if out := run("wl", "compare", flat, hier); !strings.Contains(out, "equivalent") {
		t.Fatalf("compare flat/hier: %s", out)
	}

	// Flatten the hierarchical wirelist and check/simulate it.
	if out := run("wl", "flatten", hier); !strings.Contains(out, "DefPart") {
		t.Fatalf("flatten: %s", out)
	}
	if out := run("wl", "check", flat); !strings.Contains(out, "0 errors") {
		t.Fatalf("check: %s", out)
	}
	if out := run("wl", "sim", flat, "IN=1"); !strings.Contains(out, "OUT = 0") {
		t.Fatalf("sim: %s", out)
	}

	// Stats and table harnesses at tiny scale.
	if out := run("ace", "-stats", cif); !strings.Contains(out, "devices=6") {
		t.Fatalf("stats: %s", out)
	}
	if out := run("hext", "-stats", cif); !strings.Contains(out, "devices=6") {
		t.Fatalf("hext stats: %s", out)
	}
	if out := run("ace", "-table51", "-scale", "0.002"); !strings.Contains(out, "riscb") {
		t.Fatalf("table51: %s", out)
	}
	if out := run("hext", "-table52", "-scale", "0.002"); !strings.Contains(out, "compose") {
		t.Fatalf("hext table52: %s", out)
	}
}
