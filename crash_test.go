package ace

import (
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"testing"
)

// TestCrashLoop drives acebomb's kill-9 crash-consistency loop as a
// real multi-process test: a child process doing store-backed
// extractions is SIGKILLed mid-write over and over, and after every
// kill the store must reopen clean (no leftover temps), every
// surviving entry must verify, and extraction through the survivors
// must be byte-identical to a cold, cache-free run.
//
// ACE_CRASH_CYCLES overrides the cycle count (default 50); CI's race
// job runs a bounded smoke via that knob.
func TestCrashLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("crash loop skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "acebomb")
	out, err := exec.Command("go", "build", "-o", bin, "./cmd/acebomb").CombinedOutput()
	if err != nil {
		t.Fatalf("build acebomb: %v\n%s", err, out)
	}

	cycles := 50
	if s := os.Getenv("ACE_CRASH_CYCLES"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("bad ACE_CRASH_CYCLES=%q", s)
		}
		cycles = n
	}

	dir := t.TempDir()
	cmd := exec.Command(bin, "-crash", "-crash-dir", dir, "-crash-cycles", strconv.Itoa(cycles))
	out, err = cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("crash loop failed after %d cycles: %v\n%s", cycles, err, out)
	}
	t.Logf("%s", out)
}
