package ace_test

import (
	"fmt"
	"strings"

	"ace"
)

// A minimal NMOS inverter fragment: one enhancement transistor whose
// gate is the IN poly wire, with OUT and GND diffusion terminals.
const exampleCIF = `
L ND; B 200 1400 0 0;
L NP; B 1000 200 0 0;
94 IN -500 0 NP;
94 OUT 0 600 ND;
94 GND 0 -600 ND;
E
`

// Extract a design and inspect the netlist.
func ExampleExtractString() {
	res, err := ace.ExtractString(exampleCIF, ace.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Netlist.Stats())
	d := res.Netlist.Devices[0]
	fmt.Printf("L=%d W=%d\n", d.Length, d.Width)
	// Output:
	// devices=1 (enh=1 dep=0 cap=0) nets=3 named=3
	// L=200 W=200
}

// Write the extraction result as a wirelist in the paper's format.
func ExampleWriteWirelist() {
	res, err := ace.ExtractString(exampleCIF, ace.Options{})
	if err != nil {
		panic(err)
	}
	res.Netlist.Name = "fragment"
	var sb strings.Builder
	if err := ace.WriteWirelist(&sb, res.Netlist, ace.WirelistOptions{}); err != nil {
		panic(err)
	}
	fmt.Println(strings.Split(sb.String(), "\n")[0])
	// Output:
	// (DefPart "fragment"
}

// Compare two wirelists for circuit equivalence — the wirelist
// comparator role from the paper's introduction.
func ExampleEquivalent() {
	a, _ := ace.ExtractString(exampleCIF, ace.Options{})
	b, _ := ace.ExtractString(exampleCIF, ace.Options{})
	same, _ := ace.Equivalent(a.Netlist, b.Netlist)
	fmt.Println(same)
	// Output:
	// true
}

// Hierarchical extraction produces the same circuit as flat
// extraction, plus window statistics.
func ExampleExtractHierarchical() {
	hres, err := ace.ExtractHierarchical(strings.NewReader(exampleCIF), ace.HierOptions{})
	if err != nil {
		panic(err)
	}
	ares, _ := ace.ExtractString(exampleCIF, ace.Options{})
	same, _ := ace.Equivalent(hres.Netlist, ares.Netlist)
	fmt.Println(same, len(hres.Netlist.Devices))
	// Output:
	// true 1
}
