// Designflow demonstrates the full CAD loop the paper's introduction
// describes: extract the layout, then hand the wirelist to the
// downstream tools — the static checker, the switch-level logic
// simulator, and the R/C post-processor.
//
// Run with:
//
//	go run ./examples/designflow
package main

import (
	"fmt"
	"os"

	"ace"
	"ace/internal/check"
	"ace/internal/drc"
	"ace/internal/frontend"
	"ace/internal/gen"
	"ace/internal/rcx"
	"ace/internal/sim"
)

func main() {
	// A functional 5-stage inverter chain from the workload library.
	w := gen.InverterChain(5)

	// 0. Design rules first — extraction of a broken layout lies.
	stream, err := frontend.New(w.File, frontend.Options{})
	if err != nil {
		fail(err)
	}
	violations := drc.CheckBoxes(stream.Drain(), drc.Options{})
	fmt.Printf("design rules: %d violations\n", len(violations))

	res, err := ace.ExtractFile(w.File, ace.Options{KeepGeometry: true})
	if err != nil {
		fail(err)
	}
	fmt.Println("extracted:", res.Netlist.Stats())

	// 1. Static checking (ratio rules, malformed devices, floating
	// nets). A clean library yields no findings.
	findings := check.Run(res.Netlist, check.Options{})
	errs, warns := check.Count(findings)
	fmt.Printf("static check: %d errors, %d warnings\n", errs, warns)
	for _, f := range findings {
		fmt.Println("  ", f)
	}

	// 2. Switch-level simulation: drive IN both ways; five inversions
	// make the chain an inverter overall.
	s, err := sim.New(res.Netlist)
	if err != nil {
		fail(err)
	}
	for _, in := range []sim.Value{sim.L, sim.H} {
		if err := s.Set("IN", in); err != nil {
			fail(err)
		}
		if err := s.Eval(); err != nil {
			fail(err)
		}
		out, _ := s.Get("OUT")
		fmt.Printf("simulate: IN=%v -> OUT=%v\n", in, out)
	}

	// 3. Parasitics from the kept geometry: the paper leaves R/C to a
	// post-processor; rank the heaviest nets.
	rcs, err := rcx.Annotate(res.Netlist, nil)
	if err != nil {
		fail(err)
	}
	fmt.Println("heaviest nets by capacitance:")
	for _, rc := range rcx.Worst(rcs, 3) {
		fmt.Printf("  %-6s C=%8.0f aF  R=%8.0f mΩ  elmore=%.3f ns\n",
			res.Netlist.Nets[rc.Net].Name(rc.Net), rc.CapAF, rc.ResMOhm, rc.ElmoreNS())
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
