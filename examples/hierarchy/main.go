// Hierarchy reproduces the HEXT paper's Figure 2-1/2-2 example: four
// abutting inverters extracted hierarchically. The hierarchical
// wirelist defines each unique window once; the memo table recognises
// the repeated inverter and pair windows.
//
// Run with:
//
//	go run ./examples/hierarchy
package main

import (
	"fmt"
	"os"

	"ace"
	"ace/internal/gen"
)

func main() {
	f := gen.FourInverters()

	hres, err := ace.ExtractHierarchicalFile(f, ace.HierOptions{})
	if err != nil {
		fail(err)
	}
	ares, err := ace.ExtractFile(f, ace.Options{})
	if err != nil {
		fail(err)
	}

	fmt.Println("flat ACE:  ", ares.Netlist.Stats())
	fmt.Println("HEXT:      ", hres.Netlist.Stats())
	if eq, why := ace.Equivalent(ares.Netlist, hres.Netlist); !eq {
		fail(fmt.Errorf("extractors disagree: %s", why))
	}
	fmt.Println("the two extractors produced the same circuit")

	c := hres.Counters
	fmt.Printf("windows: %d unique, %d memo hits, %d flat extractions, %d composes\n\n",
		c.UniqueWindows, c.MemoHits, c.FlatCalls, c.ComposeCalls)

	fmt.Println("hierarchical wirelist (compare the paper's Figure 2-2):")
	if err := hres.WriteHierarchical(os.Stdout); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
