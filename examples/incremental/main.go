// Incremental demonstrates the session API — the "incremental
// extractor" direction ACE §6 closes on. A designer's loop is
// extract → simulate → fix → extract again; with a persistent window
// memo, the second extraction only analyses what changed.
//
// Run with:
//
//	go run ./examples/incremental
package main

import (
	"fmt"
	"os"
	"time"

	"ace"
	"ace/internal/gen"
	"ace/internal/geom"
)

// buildChip assembles a small array chip. The tweak flag swaps one
// gate in the row template — the kind of edit a designer makes between
// extraction runs. (Because the row symbol is shared, the edit touches
// every row; the memo still answers for all the unchanged cell
// windows inside them.)
func buildChip(tweak bool) *gen.Design {
	d := gen.NewDesign()
	ram := gen.GateCell(d, "ram", 1)
	alt := gen.GateCell(d, "alt", 3)

	row := d.Cell("row")
	for c := 0; c < 16; c++ {
		cell := ram
		if tweak && c == 7 {
			cell = alt
		}
		row.CallAt(cell, int64(c)*gen.GateCellWidth*gen.Lambda, 0)
	}
	arr := d.Cell("arr")
	pitch := (gen.GateCellHeight(3) + 4) * gen.Lambda
	for r := 0; r < 16; r++ {
		arr.CallAt(row, 0, int64(r)*pitch)
	}
	d.CallTop(arr, geom.Identity)
	return d
}

// rowEdit expresses the tweak as a symbol-granularity ace.Edit:
// redefine the "row" symbol with the edited item list, leaving every
// other symbol untouched.
func rowEdit() ace.Edit {
	f := buildChip(true).File()
	for id, sym := range f.Symbols {
		if sym.Name == "row" {
			return ace.Edit{SymbolID: id, Items: sym.Items, Name: sym.Name}
		}
	}
	panic("row symbol not found")
}

func main() {
	// A cache directory makes the session's memo persistent: a later
	// process pointed at the same directory starts warm.
	dir, err := os.MkdirTemp("", "ace-cache-*")
	if err != nil {
		fail(err)
	}
	defer os.RemoveAll(dir)

	session := ace.IncrementalSession(ace.HierOptions{CacheDir: dir})

	t0 := time.Now()
	first, err := session.Extract(buildChip(false).File())
	if err != nil {
		fail(err)
	}
	cold := time.Since(t0)
	fmt.Printf("cold extract:  %-10v %s\n", cold.Round(time.Microsecond), first.Netlist.Stats())
	fmt.Printf("               %d unique windows analysed, %d bytes cached on disk\n\n",
		first.Counters.UniqueWindows, first.Counters.DiskBytes)

	// The designer edits one cell; Session.Apply re-extracts, reusing
	// every window whose content is unchanged.
	t0 = time.Now()
	second, err := session.Apply(rowEdit())
	if err != nil {
		fail(err)
	}
	warm := time.Since(t0)
	fmt.Printf("after edit:    %-10v %s\n", warm.Round(time.Microsecond), second.Netlist.Stats())
	fmt.Printf("               %d new windows analysed, %d reused from the session\n\n",
		second.Counters.UniqueWindows, second.Counters.SessionHits)

	// A brand-new process (fresh session, same cache directory)
	// answers from disk instead of re-sweeping.
	t0 = time.Now()
	reopened, err := ace.IncrementalSession(ace.HierOptions{CacheDir: dir}).
		Extract(buildChip(true).File())
	if err != nil {
		fail(err)
	}
	fmt.Printf("warm process:  %-10v %d disk hits, %d leaf sweeps\n\n",
		time.Since(t0).Round(time.Microsecond),
		reopened.Counters.DiskHits, reopened.Counters.LeafSweeps)

	// Sanity: the incremental result matches a from-scratch run.
	fresh, err := ace.ExtractHierarchicalFile(buildChip(true).File(), ace.HierOptions{})
	if err != nil {
		fail(err)
	}
	if eq, why := ace.Equivalent(second.Netlist, fresh.Netlist); !eq {
		fail(fmt.Errorf("incremental result differs from fresh: %s", why))
	}
	fmt.Printf("incremental result verified against a fresh extraction\n")
	fmt.Printf("(fresh run analyses %d windows; the session re-analysed %d)\n",
		fresh.Counters.UniqueWindows, second.Counters.UniqueWindows)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
