// Memoryarray contrasts the flat and hierarchical extractors on a
// regular memory array — the testram scenario where HEXT shines
// (HEXT Table 5-1: 1:36 vs 26:36 on the real chip). The flat
// extractor must analyse all rows·cols cells; HEXT extracts a handful
// of unique windows and composes.
//
// Run with:
//
//	go run ./examples/memoryarray [-rows N] [-cols N]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ace"
	"ace/internal/gen"
)

func main() {
	rows := flag.Int("rows", 32, "array rows")
	cols := flag.Int("cols", 32, "array columns")
	flag.Parse()

	w := gen.Memory(*rows, *cols)
	fmt.Printf("memory array %dx%d (%d devices expected)\n\n", *rows, *cols, w.WantDevices)

	t0 := time.Now()
	ares, err := ace.ExtractFile(w.File, ace.Options{})
	if err != nil {
		fail(err)
	}
	flatT := time.Since(t0)

	t0 = time.Now()
	hres, err := ace.ExtractHierarchicalFile(w.File, ace.HierOptions{})
	if err != nil {
		fail(err)
	}
	hextT := time.Since(t0)

	if eq, why := ace.Equivalent(ares.Netlist, hres.Netlist); !eq {
		fail(fmt.Errorf("extractors disagree: %s", why))
	}

	fmt.Printf("flat ACE: %-10v  %s\n", flatT.Round(time.Microsecond), ares.Netlist.Stats())
	fmt.Printf("HEXT:     %-10v  (extract %v + flatten %v)\n",
		hextT.Round(time.Microsecond),
		(hres.Timing.FrontEnd + hres.Timing.BackEnd()).Round(time.Microsecond),
		hres.Timing.Flatten.Round(time.Microsecond))
	c := hres.Counters
	fmt.Printf("\nHEXT analysed %d unique windows (%d flat extractions, %d composes)\n",
		c.UniqueWindows, c.FlatCalls, c.ComposeCalls)
	fmt.Printf("and skipped %d repeated windows via the memo table.\n", c.MemoHits)
	fmt.Printf("\nWithout flattening (the paper reports hierarchical output), HEXT spent %v\nagainst the flat extractor's %v.\n",
		(hres.Timing.FrontEnd + hres.Timing.BackEnd()).Round(time.Microsecond),
		flatT.Round(time.Microsecond))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
