// Pla programs a NOR plane as a 2-bit one-hot decoder, extracts it,
// and simulates every input combination — the classic PLA flow:
// truth table → programmable layout → extraction → verification.
//
// The plane computes PROD_r = NOR(programmed inputs). With true and
// complement literals on the columns (IN0=A, IN1=Ā, IN2=B, IN3=B̄), the row
// programmed with the *wrong* literals of a combination goes high
// exactly for that combination.
//
// Run with:
//
//	go run ./examples/pla
package main

import (
	"fmt"
	"os"

	"ace"
	"ace/internal/gen"
	"ace/internal/sim"
)

func main() {
	// Columns: IN0=A, IN1=Ā, IN2=B, IN3=B̄. Row r decodes
	// r = b·2 + a by NORing the literals that must be low.
	program := [][]bool{
		{true, false, true, false}, // row 0: NOR(A, B)   = ¬A·¬B
		{false, true, true, false}, // row 1: NOR(Ā, B)   = A·¬B
		{true, false, false, true}, // row 2: NOR(A, B̄)   = ¬A·B
		{false, true, false, true}, // row 3: NOR(Ā, B̄)   = A·B
	}
	w := gen.NORPlane(program)
	res, err := ace.ExtractFile(w.File, ace.Options{})
	if err != nil {
		fail(err)
	}
	fmt.Println("decoder plane:", res.Netlist.Stats())

	s, err := sim.New(res.Netlist)
	if err != nil {
		fail(err)
	}
	fmt.Println("\n A B | D0 D1 D2 D3")
	fmt.Println(" ----+------------")
	for code := 0; code < 4; code++ {
		a := bit(code & 1)
		b := bit(code >> 1)
		s.Set("IN0", a)
		s.Set("IN1", not(a))
		s.Set("IN2", b)
		s.Set("IN3", not(b))
		if err := s.Eval(); err != nil {
			fail(err)
		}
		fmt.Printf(" %v %v |", a, b)
		for r := 0; r < 4; r++ {
			v, _ := s.Get(fmt.Sprintf("PROD%d", r))
			fmt.Printf("  %v", v)
			if (v == sim.H) != (r == code) {
				fail(fmt.Errorf("decoder wrong: code %d row %d = %v", code, r, v))
			}
		}
		fmt.Println()
	}
	fmt.Println("\none-hot decode verified from extracted layout")
}

func bit(v int) sim.Value {
	if v != 0 {
		return sim.H
	}
	return sim.L
}

func not(v sim.Value) sim.Value {
	if v == sim.H {
		return sim.L
	}
	return sim.H
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
