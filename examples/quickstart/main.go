// Quickstart: extract the inverter of the paper's Figure 3-3 from CIF
// text and print its wirelist — reproducing Figure 3-4.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"ace"
)

// inverterCIF is the layout of ACE Figure 3-3, transcribed from the
// net and channel geometry published in the Figure 3-4 wirelist.
const inverterCIF = `
DS 1 1 1;
9 inverter;
L ND;
B 400 1200 -600 -1400;   (enhancement channel, vertical part)
B 1600 400 0 -600;       (enhancement channel, horizontal part)
B 400 1400 -200 2100;    (depletion channel)
B 400 1600 -1000 -1200;  (OUT: source arm)
B 2000 400 -200 -200;    (OUT: bar above the gate)
B 3400 600 500 300;      (OUT: output bar)
B 2000 200 -200 700;
B 400 600 -200 1100;     (OUT: into the buried contact)
B 1200 1200 200 -1400;   (GND drain block)
B 400 200 -200 2900;     (VDD neck)
B 800 800 -200 3400;     (VDD contact pad)
L NP;
B 800 800 -600 -2800;    (input contact pad)
B 400 1600 -600 -1600;   (vertical gate arm)
B 2600 400 500 -600;     (horizontal gate arm)
B 1200 2000 -200 1800;   (depletion gate, tied to OUT)
L NM;
B 4800 800 -200 3400;    (VDD rail)
B 4800 800 -200 -1600;   (GND rail)
B 4800 800 -200 -2800;   (input rail)
L NC;
B 400 400 -200 3400;
B 400 400 400 -1600;
B 400 400 -600 -2800;
L NB;
B 400 600 -200 1100;     (buried contact: depletion gate to OUT)
L NI;
B 800 1800 -200 2100;    (depletion implant)
DF;
C 1;
94 VDD -2600 3800 NM;
94 GND -2600 -1600 NM;
94 INP -2600 -2800 NM;
94 OUT 2200 300 ND;
E
`

func main() {
	res, err := ace.ExtractString(inverterCIF, ace.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	res.Netlist.Name = "inverter.cif"

	fmt.Println("extracted:", res.Netlist.Stats())
	fmt.Printf("scanline stops: %d, peak active list: %d\n\n",
		res.Counters.Stops, res.Counters.MaxActive)

	// The wirelist below matches the paper's Figure 3-4: the
	// enhancement transistor is 400/2800, the depletion load 1400/400.
	if err := ace.WriteWirelist(os.Stdout, res.Netlist, ace.WirelistOptions{}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
