// Worstcase demonstrates ACE §4's worst case: n poly lines crossing n
// diffusion lines form a mesh where 2n boxes denote n² transistors, so
// no extractor can beat quadratic time here. Watch the device count
// and run time grow quadratically while the box count grows linearly.
//
// Run with:
//
//	go run ./examples/worstcase [-workers n]
//
// The -workers flag runs the band-sharded sweep; the mesh is a stress
// test for it, since every band boundary cuts all n poly lines at once.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ace"
	"ace/internal/gen"
)

func main() {
	workers := flag.Int("workers", 0, "split the sweep into this many concurrent bands (0 or 1: serial)")
	flag.Parse()
	fmt.Printf("%6s %8s %10s %12s\n", "n", "boxes", "devices", "time")
	for _, n := range []int{8, 16, 32, 64, 128} {
		w := gen.Mesh(n)
		t0 := time.Now()
		res, err := ace.ExtractFile(w.File, ace.Options{Workers: *workers})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%6d %8d %10d %12v\n",
			n, res.Counters.BoxesIn, len(res.Netlist.Devices),
			time.Since(t0).Round(10*time.Microsecond))
	}
	fmt.Println("\nboxes grow linearly in n; devices (and time) quadratically —")
	fmt.Println("the O(N²) lower bound of ACE §4, since every transistor must be found.")
}
