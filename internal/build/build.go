// Package build is the allocation-conscious heart of the extractor:
// it accumulates the facts every engine discovers while walking a
// layout — net identity, device channels, gate and terminal contacts,
// labels, geometry — and finalises them into a netlist.
//
// All four engines (the scanline sweep, the hierarchical composer, the
// raster baseline and the region baseline) speak the same small API:
// allocate net/device elements, union them as connectivity emerges,
// attach facts keyed by element id. Element ids are int32 throughout
// and every fact lives in a flat contiguous arena — plain slices of
// small structs, appended in discovery order — so the hot path does no
// map operations and no per-fact allocations beyond slice growth.
// Identity is a path-compressed, union-by-size union-find in flat
// int32 slices (uf.Forest32). Facts are resolved against the forest
// once, in Finish, after all unions are known.
//
// Builders compose: Absorb splices one builder's elements and arenas
// into another with an id offset, which is how the parallel band sweep
// stitches independently built bands into one netlist.
//
// The zero value (optionally with KeepGeometry set) is ready for use.
package build

import (
	"fmt"
	"math"
	"sort"

	"ace/internal/geom"
	"ace/internal/netlist"
	"ace/internal/tech"
	"ace/internal/uf"
)

// Builder accumulates extraction facts; see the package comment.
type Builder struct {
	// KeepGeometry records the constituent rectangles of nets (via
	// AddNetGeometry) and device channels (via AddChannel) in the
	// output netlist.
	KeepGeometry bool

	nets uf.Forest32
	devs uf.Forest32

	// Per-net-element representative point; authoritative only at the
	// class root ("better" point: maximum Y, then minimum X — the
	// top-left-most entry of the net, matching ACE's reporting style).
	netLoc []geom.Point

	// Per-device-element accumulators; authoritative only at the root.
	// Unions fold the loser's values into the winner eagerly, so
	// Finish reads each root once.
	devArea []int64
	devImpl []int64
	devBBox []geom.Rect // sentinel emptyBBox until first channel/fact

	// Index into devGeom of the last channel rectangle recorded for
	// each device class (authoritative at the root, -1 when none):
	// lets AddChannel coalesce a top-down run of same-width strips
	// into the single box Figure 3-4 prints.
	devLastGeom []int32

	// Fact arenas, appended in discovery order and resolved in Finish.
	terms    []termRec
	gates    []gateRec
	names    []nameRec
	netGeom  []netGeomRec
	devGeom  []devGeomRec
	warnings []string

	// fin holds Finish's resolution scratch. It lives on the builder so
	// a pooled, Reset builder finalises repeatedly without growing the
	// heap; nothing in it survives into the returned netlist.
	fin finishScratch
}

// finishScratch is the per-Finish working memory: class→index tables,
// the terminal counting sort, and the name claim map.
type finishScratch struct {
	netOf, devOf []int32
	roots        []int32
	counts, pos  []int32
	flat         []flatTerm
	anomalous    []bool
	claimed      map[string]int32
}

type flatTerm struct {
	net  int32
	edge int64
}

// Reset clears the builder for reuse, keeping the capacity of every
// arena (and of Finish's scratch) so a steady-state workload of the
// same shape allocates nothing. The warnings slice is dropped rather
// than truncated: callers may hold the slice Warnings returned.
func (b *Builder) Reset() {
	b.KeepGeometry = false
	b.nets.Reset()
	b.devs.Reset()
	b.netLoc = b.netLoc[:0]
	b.devArea = b.devArea[:0]
	b.devImpl = b.devImpl[:0]
	b.devBBox = b.devBBox[:0]
	b.devLastGeom = b.devLastGeom[:0]
	b.terms = b.terms[:0]
	b.gates = b.gates[:0]
	b.names = b.names[:0]
	b.netGeom = b.netGeom[:0]
	b.devGeom = b.devGeom[:0]
	b.warnings = nil
}

// grow32 returns a length-n int32 slice, reusing s's backing array
// when it is large enough. Contents are unspecified; callers must
// write before they read.
func grow32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

type termRec struct {
	dev, net int32
	edge     int64
}

type gateRec struct {
	dev, net int32
}

type nameRec struct {
	net  int32
	name string
}

type netGeomRec struct {
	net   int32
	layer tech.Layer
	rect  geom.Rect
}

type devGeomRec struct {
	dev  int32
	rect geom.Rect
}

// emptyBBox is the identity element for bounding-box union.
var emptyBBox = geom.Rect{
	XMin: math.MaxInt64, YMin: math.MaxInt64,
	XMax: math.MinInt64, YMax: math.MinInt64,
}

// FinishStats reports facts about finalisation.
type FinishStats struct {
	// GateAnomalies counts devices whose channel saw more than one
	// distinct gate net — malformed layouts the checker flags.
	GateAnomalies int
}

// betterLoc reports whether p is a better representative point than q:
// higher, then (at equal height) further left.
func betterLoc(p, q geom.Point) bool {
	return p.Y > q.Y || (p.Y == q.Y && p.X < q.X)
}

// ---- nets ----

// NewNet allocates a fresh net element whose representative point is
// at.
func (b *Builder) NewNet(at geom.Point) int32 {
	id := b.nets.Make()
	b.netLoc = append(b.netLoc, at)
	return id
}

// FindNet returns the canonical element of x's net.
func (b *Builder) FindNet(x int32) int32 { return b.nets.Find(x) }

// UnionNets merges the nets of x and y and returns the surviving
// canonical element. The merged net keeps the better representative
// point of the two.
func (b *Builder) UnionNets(x, y int32) int32 {
	rx, ry := b.nets.Find(x), b.nets.Find(y)
	if rx == ry {
		return rx
	}
	r := b.nets.Union(rx, ry)
	loser := rx
	if r == rx {
		loser = ry
	}
	if betterLoc(b.netLoc[loser], b.netLoc[r]) {
		b.netLoc[r] = b.netLoc[loser]
	}
	return r
}

// BetterLoc offers a candidate representative point for x's net; the
// net keeps it if it beats the current one. Engines that discover a
// net bottom-up (the region baseline) use this to converge on the same
// point the top-down sweep reports.
func (b *Builder) BetterLoc(x int32, p geom.Point) {
	r := b.nets.Find(x)
	if betterLoc(p, b.netLoc[r]) {
		b.netLoc[r] = p
	}
}

// NameNet attaches a user label to x's net. Duplicates are resolved in
// Finish: repeated names on one net collapse, and a name claimed by two
// different nets stays with the net that claimed it first (with a
// warning).
func (b *Builder) NameNet(x int32, name string) {
	b.names = append(b.names, nameRec{net: x, name: name})
}

// AddNetGeometry records one constituent rectangle of x's net. Callers
// gate this on KeepGeometry; the builder stores whatever it is given.
func (b *Builder) AddNetGeometry(x int32, layer tech.Layer, r geom.Rect) {
	b.netGeom = append(b.netGeom, netGeomRec{net: x, layer: layer, rect: r})
}

// NetElems returns the number of net elements allocated.
func (b *Builder) NetElems() int { return b.nets.Len() }

// ReserveNets pre-grows the net arenas so the next n NewNet calls
// allocate no memory. The hierarchical flattener calls it with each
// leaf window's net count before replaying the window.
func (b *Builder) ReserveNets(n int) {
	b.nets.Reserve(n)
	if need := len(b.netLoc) + n; cap(b.netLoc) < need {
		loc := make([]geom.Point, len(b.netLoc), need)
		copy(loc, b.netLoc)
		b.netLoc = loc
	}
}

// ---- devices ----

// NewDev allocates a fresh device element.
func (b *Builder) NewDev() int32 {
	id := b.devs.Make()
	b.devArea = append(b.devArea, 0)
	b.devImpl = append(b.devImpl, 0)
	b.devBBox = append(b.devBBox, emptyBBox)
	b.devLastGeom = append(b.devLastGeom, -1)
	return id
}

// FindDev returns the canonical element of x's device.
func (b *Builder) FindDev(x int32) int32 { return b.devs.Find(x) }

// UnionDevs merges the devices of x and y — two channel regions found
// to be one transistor — and returns the surviving canonical element.
// Channel area, implant area and the bounding box accumulate onto the
// survivor.
func (b *Builder) UnionDevs(x, y int32) int32 {
	rx, ry := b.devs.Find(x), b.devs.Find(y)
	if rx == ry {
		return rx
	}
	r := b.devs.Union(rx, ry)
	loser := rx
	if r == rx {
		loser = ry
	}
	b.devArea[r] += b.devArea[loser]
	b.devImpl[r] += b.devImpl[loser]
	b.devBBox[r] = unionBBox(b.devBBox[r], b.devBBox[loser])
	if b.devLastGeom[loser] > b.devLastGeom[r] {
		b.devLastGeom[r] = b.devLastGeom[loser]
	}
	return r
}

// AddChannel accumulates one channel rectangle into x's device: its
// area counts toward the channel area, its extent toward the bounding
// box, and (under KeepGeometry) the rectangle itself is recorded.
func (b *Builder) AddChannel(x int32, r geom.Rect) {
	root := b.devs.Find(x)
	b.devArea[root] += (r.XMax - r.XMin) * (r.YMax - r.YMin)
	b.devBBox[root] = unionBBox(b.devBBox[root], r)
	if b.KeepGeometry {
		// A run of same-width strips walking down one channel column
		// coalesces into the single box the wirelist prints.
		if li := b.devLastGeom[root]; li >= 0 {
			last := &b.devGeom[li].rect
			if last.XMin == r.XMin && last.XMax == r.XMax && last.YMin == r.YMax {
				last.YMin = r.YMin
				return
			}
		}
		b.devLastGeom[root] = int32(len(b.devGeom))
		b.devGeom = append(b.devGeom, devGeomRec{dev: x, rect: r})
	}
}

// AddImplant accumulates implanted channel area onto x's device; the
// majority rule in Finish decides depletion vs enhancement.
func (b *Builder) AddImplant(x int32, area int64) {
	b.devImpl[b.devs.Find(x)] += area
}

// AddGate records that x's device saw gate as its gate net (in this
// strip, window or scanline). The first distinct gate net wins; any
// further distinct net counts as a gate anomaly in Finish — after all
// unions, so gates that merge later are not anomalies.
func (b *Builder) AddGate(x, gate int32) {
	b.gates = append(b.gates, gateRec{dev: x, net: gate})
}

// AddTerm records a source/drain contact: net touches x's device
// channel along edge length units of perimeter. Contacts with the
// same net accumulate in Finish.
func (b *Builder) AddTerm(x, net int32, edge int64) {
	b.terms = append(b.terms, termRec{dev: x, net: net, edge: edge})
}

// AddDeviceFacts feeds pre-aggregated device facts — channel area,
// implanted area and channel bounding box — directly into x's device.
// The hierarchical extractor uses this when flattening already
// extracted windows.
func (b *Builder) AddDeviceFacts(x int32, area, implArea int64, bbox geom.Rect) {
	root := b.devs.Find(x)
	b.devArea[root] += area
	b.devImpl[root] += implArea
	b.devBBox[root] = unionBBox(b.devBBox[root], bbox)
}

// DevElems returns the number of device elements allocated.
func (b *Builder) DevElems() int { return b.devs.Len() }

// ReserveDevs pre-grows the device arenas so the next n NewDev calls
// allocate no memory.
func (b *Builder) ReserveDevs(n int) {
	b.devs.Reserve(n)
	if need := len(b.devArea) + n; cap(b.devArea) < need {
		area := make([]int64, len(b.devArea), need)
		copy(area, b.devArea)
		b.devArea = area
		impl := make([]int64, len(b.devImpl), need)
		copy(impl, b.devImpl)
		b.devImpl = impl
		bbox := make([]geom.Rect, len(b.devBBox), need)
		copy(bbox, b.devBBox)
		b.devBBox = bbox
		last := make([]int32, len(b.devLastGeom), need)
		copy(last, b.devLastGeom)
		b.devLastGeom = last
	}
}

// Warnings returns the warnings accumulated so far (including those
// produced by Finish, once it has run).
func (b *Builder) Warnings() []string { return b.warnings }

func (b *Builder) warnf(format string, args ...any) {
	b.warnings = append(b.warnings, fmt.Sprintf(format, args...))
}

func unionBBox(a, r geom.Rect) geom.Rect {
	if r.XMin < a.XMin {
		a.XMin = r.XMin
	}
	if r.YMin < a.YMin {
		a.YMin = r.YMin
	}
	if r.XMax > a.XMax {
		a.XMax = r.XMax
	}
	if r.YMax > a.YMax {
		a.YMax = r.YMax
	}
	return a
}

// ---- composition ----

// Absorb splices o's elements, accumulators, fact arenas and warnings
// into b and returns the offsets added to o's net and device element
// ids (net element i of o is net element netOff+i of b, and likewise
// for devices). o is left untouched; the parallel sweep uses Absorb to
// merge per-band builders before stitching their seams.
func (b *Builder) Absorb(o *Builder) (netOff, devOff int32) {
	netOff = b.nets.Absorb(&o.nets)
	devOff = b.devs.Absorb(&o.devs)
	b.netLoc = append(b.netLoc, o.netLoc...)
	b.devArea = append(b.devArea, o.devArea...)
	b.devImpl = append(b.devImpl, o.devImpl...)
	b.devBBox = append(b.devBBox, o.devBBox...)
	geomOff := int32(len(b.devGeom))
	for _, lg := range o.devLastGeom {
		if lg >= 0 {
			lg += geomOff
		}
		b.devLastGeom = append(b.devLastGeom, lg)
	}
	for _, t := range o.terms {
		b.terms = append(b.terms, termRec{dev: t.dev + devOff, net: t.net + netOff, edge: t.edge})
	}
	for _, g := range o.gates {
		b.gates = append(b.gates, gateRec{dev: g.dev + devOff, net: g.net + netOff})
	}
	for _, n := range o.names {
		b.names = append(b.names, nameRec{net: n.net + netOff, name: n.name})
	}
	for _, g := range o.netGeom {
		b.netGeom = append(b.netGeom, netGeomRec{net: g.net + netOff, layer: g.layer, rect: g.rect})
	}
	for _, g := range o.devGeom {
		b.devGeom = append(b.devGeom, devGeomRec{dev: g.dev + devOff, rect: g.rect})
	}
	b.warnings = append(b.warnings, o.warnings...)
	return netOff, devOff
}

// ---- finalisation ----

// Finish resolves every fact against the final union-find state and
// builds the output netlist. Ordering is deterministic: nets and
// devices appear in order of their class's first-allocated element, so
// two identical runs produce byte-identical netlists.
func (b *Builder) Finish() (*netlist.Netlist, FinishStats) {
	var fs FinishStats
	nl := &netlist.Netlist{}

	// Net classes → output indices, in first-element order. The table
	// is reused scratch: roots are marked -1 up front and every entry
	// is written before it is read, so stale contents are harmless.
	netOf := grow32(b.fin.netOf, b.nets.Len())
	b.fin.netOf = netOf
	for e := int32(0); e < int32(len(netOf)); e++ {
		netOf[e] = 0
		if b.nets.Find(e) == e {
			netOf[e] = -1 // filled below
		}
	}
	nl.Nets = make([]netlist.Net, 0, b.nets.Sets())
	for e := int32(0); e < int32(len(netOf)); e++ {
		root := b.nets.Find(e)
		if netOf[root] < 0 {
			netOf[root] = int32(len(nl.Nets))
			nl.Nets = append(nl.Nets, netlist.Net{Location: b.netLoc[root]})
		}
		netOf[e] = netOf[root]
	}

	b.resolveNames(nl, netOf)

	for _, g := range b.netGeom {
		n := &nl.Nets[netOf[g.net]]
		n.Geometry = append(n.Geometry, netlist.LayerRect{Layer: g.layer, Rect: g.rect})
	}

	// Device classes → output indices, in first-element order.
	devOf := grow32(b.fin.devOf, b.devs.Len())
	b.fin.devOf = devOf
	roots := b.fin.roots[:0]
	for e := int32(0); e < int32(len(devOf)); e++ {
		devOf[e] = -1
	}
	for e := int32(0); e < int32(len(devOf)); e++ {
		root := b.devs.Find(e)
		if devOf[root] < 0 {
			devOf[root] = int32(len(roots))
			roots = append(roots, root)
		}
		devOf[e] = devOf[root]
	}
	b.fin.roots = roots

	nl.Devices = make([]netlist.Device, len(roots))
	for i, root := range roots {
		d := &nl.Devices[i]
		d.Gate = -1
		d.Area = b.devArea[root]
		d.ImplArea = b.devImpl[root]
		if bb := b.devBBox[root]; bb.XMin <= bb.XMax {
			d.Location = geom.Pt(bb.XMin, bb.YMax)
		}
	}

	// Gates: first distinct net wins; any further distinct net is an
	// anomaly. Resolved after all unions, so late merges are benign.
	if cap(b.fin.anomalous) < len(roots) {
		b.fin.anomalous = make([]bool, len(roots))
	}
	anomalous := b.fin.anomalous[:len(roots)]
	for i := range anomalous {
		anomalous[i] = false
	}
	for _, g := range b.gates {
		di := devOf[g.dev]
		net := int(netOf[g.net])
		d := &nl.Devices[di]
		switch {
		case d.Gate < 0:
			d.Gate = net
		case d.Gate != net && !anomalous[di]:
			anomalous[di] = true
			fs.GateAnomalies++
		}
	}

	b.resolveTerminals(nl, netOf, devOf)

	for _, g := range b.devGeom {
		d := &nl.Devices[devOf[g.dev]]
		d.Geometry = append(d.Geometry, g.rect)
	}

	for i := range nl.Devices {
		b.finishDevice(&nl.Devices[i])
	}
	return nl, fs
}

// resolveNames applies the label arena: per-net duplicates collapse, a
// name claimed by two different nets stays with the first claimant.
func (b *Builder) resolveNames(nl *netlist.Netlist, netOf []int32) {
	if len(b.names) == 0 {
		return
	}
	if b.fin.claimed == nil {
		b.fin.claimed = make(map[string]int32, len(b.names))
	} else {
		clear(b.fin.claimed)
	}
	claimed := b.fin.claimed
	for _, nr := range b.names {
		ni := netOf[nr.net]
		if prev, ok := claimed[nr.name]; ok {
			if prev != ni {
				b.warnf("label %q already names net %d; ignoring the binding to net %d (first label wins)",
					nr.name, prev, ni)
			}
			continue
		}
		claimed[nr.name] = ni
		nl.Nets[ni].Names = append(nl.Nets[ni].Names, nr.name)
	}
	for i := range nl.Nets {
		if len(nl.Nets[i].Names) > 1 {
			sort.Strings(nl.Nets[i].Names)
		}
	}
}

// resolveTerminals merges the contact arena per (device, net) and
// attaches the merged terminals sorted by descending contact edge
// (ties broken by ascending net index).
func (b *Builder) resolveTerminals(nl *netlist.Netlist, netOf, devOf []int32) {
	if len(b.terms) == 0 {
		return
	}
	// Bucket terms by output device with a counting sort: the arena is
	// in discovery order, which interleaves devices.
	counts := grow32(b.fin.counts, len(nl.Devices)+1)
	b.fin.counts = counts
	for i := range counts {
		counts[i] = 0
	}
	for _, t := range b.terms {
		counts[devOf[t.dev]+1]++
	}
	for i := 1; i < len(counts); i++ {
		counts[i] += counts[i-1]
	}
	if cap(b.fin.flat) < len(b.terms) {
		b.fin.flat = make([]flatTerm, len(b.terms))
	}
	flat := b.fin.flat[:len(b.terms)]
	next := counts[:len(nl.Devices)]
	pos := grow32(b.fin.pos, len(next))
	b.fin.pos = pos
	copy(pos, next)
	for _, t := range b.terms {
		di := devOf[t.dev]
		flat[pos[di]] = flatTerm{net: netOf[t.net], edge: t.edge}
		pos[di]++
	}
	// All devices' terminals come out of one backing array (merging
	// only shrinks buckets, so len(flat) bounds the total): one output
	// allocation instead of one per device.
	backing := make([]netlist.Terminal, 0, len(flat))
	for i := range nl.Devices {
		lo, hi := counts[i], counts[i+1]
		if lo == hi {
			continue
		}
		bucket := flat[lo:hi]
		// Merge same-net contacts in place; device fan-in is tiny, so
		// the quadratic scan beats any map.
		w := 0
		for _, t := range bucket {
			merged := false
			for k := 0; k < w; k++ {
				if bucket[k].net == t.net {
					bucket[k].edge += t.edge
					merged = true
					break
				}
			}
			if !merged {
				bucket[w] = t
				w++
			}
		}
		bucket = bucket[:w]
		sortFlatTerms(bucket)
		start := len(backing)
		for _, t := range bucket {
			backing = append(backing, netlist.Terminal{Net: int(t.net), Edge: t.edge})
		}
		nl.Devices[i].Terminals = backing[start:len(backing):len(backing)]
	}
}

// sortFlatTerms orders one device's terminals by descending contact
// edge, ties broken by ascending net index — the same total order the
// stdlib stable sort produced, without its per-call reflection
// allocations (reflectlite.Swapper was the steady-state loop's single
// hottest allocation site). Buckets hold a handful of terminals, so
// insertion sort is also the fastest choice; it is stable, keeping
// duplicate (edge, net) pairs in discovery order.
func sortFlatTerms(bucket []flatTerm) {
	for i := 1; i < len(bucket); i++ {
		t := bucket[i]
		j := i - 1
		for j >= 0 && (bucket[j].edge < t.edge || (bucket[j].edge == t.edge && bucket[j].net > t.net)) {
			bucket[j+1] = bucket[j]
			j--
		}
		bucket[j+1] = t
	}
}

// finishDevice derives a device's electrical identity from its merged
// facts: source/drain selection, the paper's width/length formula, and
// the type rules (implant majority → depletion; every terminal on the
// gate net → capacitor).
func (b *Builder) finishDevice(d *netlist.Device) {
	gateOnly := true
	for _, t := range d.Terminals {
		if t.Net != d.Gate {
			gateOnly = false
			break
		}
	}
	switch {
	case len(d.Terminals) >= 2:
		d.Source = d.Terminals[0].Net
		d.Drain = d.Terminals[1].Net
		d.Width = (d.Terminals[0].Edge + d.Terminals[1].Edge) / 2
	case len(d.Terminals) == 1:
		d.Source = d.Terminals[0].Net
		d.Drain = d.Terminals[0].Net
		d.Width = d.Terminals[0].Edge
	default:
		// A channel no conducting diffusion ever touched: a floating
		// capacitor plate. Report it gate-to-gate; the width fallback
		// below keeps the size positive.
		d.Source = d.Gate
		d.Drain = d.Gate
	}
	if gateOnly {
		d.Type = tech.Capacitor
		d.Source = d.Gate
		d.Drain = d.Gate
	} else if 2*d.ImplArea > d.Area {
		d.Type = tech.Depletion
	} else {
		d.Type = tech.Enhancement
	}
	if d.Width <= 0 {
		// Degenerate contact data; fall back to the drawn extent so
		// the netlist stays valid.
		d.Width = max64(1, isqrt(d.Area))
	}
	d.Length = d.Area / d.Width
	if d.Length <= 0 {
		d.Length = 1
	}
}

func isqrt(a int64) int64 {
	if a <= 0 {
		return 0
	}
	r := int64(math.Sqrt(float64(a)))
	for r*r > a {
		r--
	}
	for (r+1)*(r+1) <= a {
		r++
	}
	return r
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
