package build

import (
	"reflect"
	"strings"
	"testing"

	"ace/internal/geom"
	"ace/internal/tech"
)

// TestNamingPrecedence: repeated names on one net collapse; a name
// claimed by two different nets stays with the first claimant and
// produces a warning.
func TestNamingPrecedence(t *testing.T) {
	b := &Builder{}
	a := b.NewNet(geom.Pt(0, 100))
	c := b.NewNet(geom.Pt(0, 50))
	b.NameNet(a, "VDD")
	b.NameNet(a, "VDD") // duplicate on the same net: collapses silently
	b.NameNet(c, "VDD") // same name on a different net: first wins
	b.NameNet(c, "GND")

	nl, _ := b.Finish()
	if got := nl.Nets[0].Names; !reflect.DeepEqual(got, []string{"VDD"}) {
		t.Errorf("net 0 names = %v, want [VDD]", got)
	}
	if got := nl.Nets[1].Names; !reflect.DeepEqual(got, []string{"GND"}) {
		t.Errorf("net 1 names = %v, want [GND]", got)
	}
	warns := b.Warnings()
	if len(warns) != 1 || !strings.Contains(warns[0], "VDD") {
		t.Errorf("warnings = %v, want one duplicate-name warning about VDD", warns)
	}
	if probs := nl.Validate(); len(probs) != 0 {
		t.Errorf("netlist invalid: %v", probs)
	}
}

// TestNamingAcrossUnion: a name bound twice through elements that later
// union is one binding, not a conflict.
func TestNamingAcrossUnion(t *testing.T) {
	b := &Builder{}
	a := b.NewNet(geom.Pt(0, 100))
	c := b.NewNet(geom.Pt(50, 100))
	b.NameNet(a, "X")
	b.NameNet(c, "X")
	b.NameNet(c, "Y")
	b.UnionNets(a, c)
	nl, _ := b.Finish()
	if len(nl.Nets) != 1 {
		t.Fatalf("nets = %d, want 1", len(nl.Nets))
	}
	if got := nl.Nets[0].Names; !reflect.DeepEqual(got, []string{"X", "Y"}) {
		t.Errorf("names = %v, want [X Y]", got)
	}
	if len(b.Warnings()) != 0 {
		t.Errorf("unexpected warnings: %v", b.Warnings())
	}
}

// transistor wires up a minimal two-terminal device.
func transistor(b *Builder, gate, src, drn int32) int32 {
	d := b.NewDev()
	b.AddChannel(d, geom.R(0, 0, 100, 100))
	b.AddGate(d, gate)
	b.AddTerm(d, src, 100)
	b.AddTerm(d, drn, 100)
	return d
}

// TestGateAnomalies: a device that sees two gate nets that never merge
// counts as one anomaly; gates that union later are benign.
func TestGateAnomalies(t *testing.T) {
	b := &Builder{}
	g1 := b.NewNet(geom.Pt(0, 0))
	g2 := b.NewNet(geom.Pt(10, 0))
	g3 := b.NewNet(geom.Pt(20, 0))
	s := b.NewNet(geom.Pt(30, 0))
	d := b.NewNet(geom.Pt(40, 0))

	bad := transistor(b, g1, s, d)
	b.AddGate(bad, g2) // distinct forever: anomaly
	b.AddGate(bad, g1) // repeat of the first: not another anomaly

	ok := transistor(b, g1, s, d)
	b.AddGate(ok, g3)
	b.UnionNets(g1, g3) // merges later: no anomaly

	nl, fs := b.Finish()
	if fs.GateAnomalies != 1 {
		t.Errorf("GateAnomalies = %d, want 1", fs.GateAnomalies)
	}
	// The first gate seen wins.
	if got := nl.Devices[0].Gate; got != 0 {
		t.Errorf("anomalous device gate = %d, want 0", got)
	}
}

// TestFinishDeterminism: two identical fact sequences produce
// deeply-equal netlists — the property that makes the parallel sweep
// diff-testable against the serial one.
func TestFinishDeterminism(t *testing.T) {
	run := func() ([]byte, interface{}) {
		b := &Builder{KeepGeometry: true}
		var nets []int32
		for i := 0; i < 20; i++ {
			nets = append(nets, b.NewNet(geom.Pt(int64(i), int64(100-i))))
		}
		// A web of unions plus named nets and two devices.
		for i := 0; i+5 < 20; i += 3 {
			b.UnionNets(nets[i], nets[i+5])
		}
		b.NameNet(nets[2], "A")
		b.NameNet(nets[7], "B")
		b.AddNetGeometry(nets[3], tech.Metal, geom.R(0, 0, 10, 10))
		transistor(b, nets[1], nets[4], nets[9])
		d2 := transistor(b, nets[0], nets[6], nets[11])
		b.AddImplant(d2, 9000)
		nl, _ := b.Finish()
		return []byte(nl.String()), nl
	}
	t1, nl1 := run()
	t2, nl2 := run()
	if string(t1) != string(t2) {
		t.Fatalf("non-deterministic Finish:\n%s\nvs\n%s", t1, t2)
	}
	if !reflect.DeepEqual(nl1, nl2) {
		t.Fatal("netlists not deeply equal across runs")
	}
}

// TestDeviceDerivation covers the classification rules end to end.
func TestDeviceDerivation(t *testing.T) {
	b := &Builder{}
	g := b.NewNet(geom.Pt(0, 0))
	s := b.NewNet(geom.Pt(10, 0))

	// Depletion by implant majority.
	dep := b.NewDev()
	b.AddChannel(dep, geom.R(0, 0, 100, 100))
	b.AddGate(dep, g)
	b.AddTerm(dep, s, 120)
	b.AddTerm(dep, s, 40) // same net: edges accumulate
	b.AddImplant(dep, 6000)

	// Capacitor: the only terminal net is the gate net.
	cap := b.NewDev()
	b.AddChannel(cap, geom.R(0, 0, 50, 200))
	b.AddGate(cap, g)
	b.AddTerm(cap, g, 50)

	nl, fs := b.Finish()
	if fs.GateAnomalies != 0 {
		t.Errorf("anomalies = %d", fs.GateAnomalies)
	}
	d := nl.Devices[0]
	if d.Type != tech.Depletion {
		t.Errorf("device 0 type = %v, want depletion", d.Type)
	}
	// One merged terminal of edge 160: source == drain, W=160, L=area/W.
	if len(d.Terminals) != 1 || d.Terminals[0].Edge != 160 {
		t.Errorf("terminals = %+v, want one with edge 160", d.Terminals)
	}
	if d.Width != 160 || d.Length != 10000/160 {
		t.Errorf("W=%d L=%d", d.Width, d.Length)
	}
	c := nl.Devices[1]
	if c.Type != tech.Capacitor || c.Source != c.Gate || c.Drain != c.Gate {
		t.Errorf("capacitor wrong: %+v", c)
	}
	if c.Location != geom.Pt(0, 200) {
		t.Errorf("capacitor location = %v", c.Location)
	}
}

// TestAbsorbEquivalence: building facts in one builder or split across
// two absorbed builders yields identical netlists.
func TestAbsorbEquivalence(t *testing.T) {
	direct := &Builder{}
	g := direct.NewNet(geom.Pt(0, 100))
	s := direct.NewNet(geom.Pt(10, 100))
	d := direct.NewNet(geom.Pt(20, 100))
	direct.NameNet(g, "G")
	transistor(direct, g, s, d)
	want, _ := direct.Finish()

	host := &Builder{}
	part := &Builder{}
	g2 := part.NewNet(geom.Pt(0, 100))
	s2 := part.NewNet(geom.Pt(10, 100))
	d2 := part.NewNet(geom.Pt(20, 100))
	part.NameNet(g2, "G")
	transistor(part, g2, s2, d2)
	host.Absorb(part)
	got, _ := host.Finish()

	if !reflect.DeepEqual(want, got) {
		t.Fatalf("absorb changed the result:\n%v\nvs\n%v", want, got)
	}
}

// TestBetterLoc: the net keeps the highest, then left-most point.
func TestBetterLoc(t *testing.T) {
	b := &Builder{}
	n := b.NewNet(geom.Pt(50, 10))
	b.BetterLoc(n, geom.Pt(90, 20)) // higher: wins
	b.BetterLoc(n, geom.Pt(10, 20)) // same height, lefter: wins
	b.BetterLoc(n, geom.Pt(0, 5))   // lower: loses
	m := b.NewNet(geom.Pt(-5, 20))  // union keeps the better of the two
	b.UnionNets(n, m)
	nl, _ := b.Finish()
	if nl.Nets[0].Location != geom.Pt(-5, 20) {
		t.Errorf("location = %v, want (-5,20)", nl.Nets[0].Location)
	}
}
