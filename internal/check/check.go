// Package check is a static checker for extracted NMOS wirelists —
// the paper's third downstream consumer ("A static checker performs
// ratio checks, detects malformed transistors, and checks for signals
// that are stuck at logical 0 or 1").
//
// Findings are reported as diag.Diagnostics (stage "check"), so the
// parse, hierarchy and electrical-rule passes share one severity
// scale, one ordering contract and one renderer.
package check

import (
	"fmt"
	"sort"

	"ace/internal/diag"
	"ace/internal/guard"
	"ace/internal/netlist"
	"ace/internal/tech"
)

// Finding is one reported problem — an alias into the unified
// diagnostics vocabulary. Device and Net index into the netlist
// (-1 when not applicable); Span is always unlocated (the checker
// examines the circuit, not the source text).
type Finding = diag.Diagnostic

// Severity levels re-exported for callers of this package.
const (
	Warning = diag.Warning
	Error   = diag.Error
)

// Options tunes the checker.
type Options struct {
	// MinRatio is the minimum pull-up to pull-down (L/W) ratio for
	// restoring logic; zero selects the technology default.
	MinRatio float64

	// MinSize is the minimum legal channel dimension in centimicrons;
	// zero selects 2λ.
	MinSize int64

	// Tech supplies process parameters; nil selects tech.Default().
	Tech *tech.Tech
}

// Run checks a netlist and returns findings sorted by severity.
func Run(nl *netlist.Netlist, opt Options) []Finding {
	tc := opt.Tech
	if tc == nil {
		tc = tech.Default()
	}
	minRatio := opt.MinRatio
	if minRatio <= 0 {
		minRatio = tc.MinRatio
	}
	minSize := opt.MinSize
	if minSize <= 0 {
		minSize = 2 * tc.Lambda
	}

	var out []Finding
	add := func(sev diag.Severity, code, msg string, device, net int) {
		d := diag.New(sev, guard.StageCheck, code, msg)
		d.Device, d.Net = device, net
		out = append(out, d)
	}

	vdd, hasVDD := nl.NetByName("VDD")
	gnd, hasGND := nl.NetByName("GND")
	if !hasVDD {
		add(Warning, "no-vdd", "no net named VDD", -1, -1)
		vdd = -1
	}
	if !hasGND {
		add(Warning, "no-gnd", "no net named GND", -1, -1)
		gnd = -1
	}
	if hasVDD && hasGND && vdd == gnd {
		add(Error, "power-short", "VDD and GND are the same net", -1, vdd)
	}

	// Per-device structure checks.
	gateDriven := map[int]bool{} // nets that drive some gate
	sdTouched := map[int]bool{}  // nets touched by some source/drain
	for i := range nl.Devices {
		d := &nl.Devices[i]
		gateDriven[d.Gate] = true
		sdTouched[d.Source] = true
		sdTouched[d.Drain] = true

		if d.Type != tech.Capacitor {
			switch {
			case len(d.Terminals) < 2:
				add(Error, "malformed-transistor",
					fmt.Sprintf("device %d at %v has %d diffusion terminals (want 2)",
						i, d.Location, len(d.Terminals)), i, -1)
			case len(d.Terminals) > 2:
				add(Error, "malformed-transistor",
					fmt.Sprintf("device %d at %v has %d diffusion terminals (want 2)",
						i, d.Location, len(d.Terminals)), i, -1)
			case d.Source == d.Drain:
				add(Warning, "shorted-transistor",
					fmt.Sprintf("device %d at %v has source shorted to drain", i, d.Location), i, -1)
			}
		}
		if d.Length < minSize || d.Width < minSize {
			add(Error, "undersized-channel",
				fmt.Sprintf("device %d at %v is %d×%d (min %d)",
					i, d.Location, d.Length, d.Width, minSize), i, -1)
		}
		if d.Type == tech.Enhancement && d.Gate == d.Source && d.Gate == d.Drain {
			add(Warning, "self-gated",
				fmt.Sprintf("device %d at %v gates itself", i, d.Location), i, -1)
		}
		if d.Type == tech.Enhancement && (d.Source == vdd && d.Drain == gnd ||
			d.Source == gnd && d.Drain == vdd) {
			add(Warning, "rail-crowbar",
				fmt.Sprintf("device %d at %v connects VDD directly to GND", i, d.Location), i, -1)
		}
	}

	// Ratio checks: for each node pulled up by a depletion load and
	// pulled down by an enhancement device, the Mead–Conway inverter
	// ratio (Lpu/Wpu)/(Lpd/Wpd) must be at least minRatio.
	pullupOf := map[int]*netlist.Device{}
	for i := range nl.Devices {
		d := &nl.Devices[i]
		if d.Type == tech.Depletion && (d.Source == vdd || d.Drain == vdd) {
			node := d.Source
			if node == vdd {
				node = d.Drain
			}
			pullupOf[node] = d
		}
	}
	for i := range nl.Devices {
		d := &nl.Devices[i]
		if d.Type != tech.Enhancement {
			continue
		}
		for _, node := range []int{d.Source, d.Drain} {
			pu, ok := pullupOf[node]
			if !ok {
				continue
			}
			other := d.Source + d.Drain - node
			if other != gnd {
				continue // only direct pull-downs; chains need the full path
			}
			rpu := float64(pu.Length) / float64(pu.Width)
			rpd := float64(d.Length) / float64(d.Width)
			if rpd == 0 {
				continue
			}
			if rpu/rpd < minRatio {
				add(Warning, "ratio",
					fmt.Sprintf("node %s: pull-up/pull-down ratio %.2f below %.2f (pu %d/%d, pd %d/%d)",
						nl.Nets[node].Name(node), rpu/rpd, minRatio,
						pu.Length, pu.Width, d.Length, d.Width), i, node)
			}
		}
	}

	// Net-level checks.
	for i := range nl.Nets {
		isRail := i == vdd || i == gnd
		switch {
		case gateDriven[i] && !sdTouched[i] && !isRail && len(nl.Nets[i].Names) == 0:
			add(Warning, "floating-gate",
				fmt.Sprintf("net N%d at %v drives gates but is not driven and has no label",
					i, nl.Nets[i].Location), -1, i)
		case !gateDriven[i] && !sdTouched[i] && !isRail && len(nl.Nets[i].Names) == 0:
			add(Warning, "dangling-net",
				fmt.Sprintf("net N%d at %v connects to nothing", i, nl.Nets[i].Location), -1, i)
		}
	}

	sort.SliceStable(out, func(a, b int) bool { return out[a].Severity > out[b].Severity })
	return out
}

// Count tallies findings by severity.
func Count(fs []Finding) (errors, warnings int) {
	return diag.Count(fs)
}
