package check

import (
	"strings"
	"testing"

	"ace/internal/extract"
	"ace/internal/gen"
	"ace/internal/netlist"
	"ace/internal/tech"
)

func TestCleanInverter(t *testing.T) {
	res, err := extract.File(gen.Inverter(), extract.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Rename INP so the checker sees a driven input... the inverter's
	// input is a labelled net, so no floating-gate warning applies.
	findings := Run(res.Netlist, Options{})
	errs, _ := Count(findings)
	if errs != 0 {
		t.Fatalf("clean inverter has errors: %v", findings)
	}
	// The paper's inverter is properly ratioed (pu 1400/400 = 3.5 sq,
	// pd 400/2800 = 0.14 sq, ratio ≈ 24): no ratio warnings.
	for _, f := range findings {
		if f.Code == "ratio" {
			t.Fatalf("unexpected ratio finding: %v", f)
		}
	}
}

func TestRatioViolation(t *testing.T) {
	// A weak pull-down: equal squares pull-up and pull-down.
	nl := &netlist.Netlist{
		Nets: []netlist.Net{
			{Names: []string{"VDD"}}, {Names: []string{"GND"}},
			{Names: []string{"OUT"}}, {Names: []string{"IN"}},
		},
		Devices: []netlist.Device{
			{Type: tech.Depletion, Gate: 2, Source: 0, Drain: 2, Length: 400, Width: 400,
				Terminals: []netlist.Terminal{{Net: 0}, {Net: 2}}},
			{Type: tech.Enhancement, Gate: 3, Source: 2, Drain: 1, Length: 400, Width: 400,
				Terminals: []netlist.Terminal{{Net: 2}, {Net: 1}}},
		},
	}
	findings := Run(nl, Options{})
	found := false
	for _, f := range findings {
		if f.Code == "ratio" {
			found = true
		}
	}
	if !found {
		t.Fatalf("ratio violation not reported: %v", findings)
	}
}

func TestMalformedTransistor(t *testing.T) {
	nl := &netlist.Netlist{
		Nets: []netlist.Net{
			{Names: []string{"VDD"}}, {Names: []string{"GND"}}, {},
		},
		Devices: []netlist.Device{
			{Type: tech.Enhancement, Gate: 2, Source: 2, Drain: 2, Length: 400, Width: 400,
				Terminals: []netlist.Terminal{{Net: 2}}},
		},
	}
	findings := Run(nl, Options{})
	if !hasCode(findings, "malformed-transistor") {
		t.Fatalf("missing malformed-transistor: %v", findings)
	}
}

func TestPowerShortAndCrowbar(t *testing.T) {
	nl := &netlist.Netlist{
		Nets: []netlist.Net{
			{Names: []string{"VDD", "GND"}},
		},
	}
	findings := Run(nl, Options{})
	if !hasCode(findings, "power-short") {
		t.Fatalf("missing power-short: %v", findings)
	}

	nl2 := &netlist.Netlist{
		Nets: []netlist.Net{
			{Names: []string{"VDD"}}, {Names: []string{"GND"}}, {Names: []string{"IN"}},
		},
		Devices: []netlist.Device{
			{Type: tech.Enhancement, Gate: 2, Source: 0, Drain: 1, Length: 400, Width: 400,
				Terminals: []netlist.Terminal{{Net: 0}, {Net: 1}}},
		},
	}
	if !hasCode(Run(nl2, Options{}), "rail-crowbar") {
		t.Fatal("missing rail-crowbar")
	}
}

func TestUndersized(t *testing.T) {
	nl := &netlist.Netlist{
		Nets: []netlist.Net{
			{Names: []string{"VDD"}}, {Names: []string{"GND"}}, {}, {},
		},
		Devices: []netlist.Device{
			{Type: tech.Enhancement, Gate: 2, Source: 3, Drain: 1, Length: 100, Width: 400,
				Terminals: []netlist.Terminal{{Net: 3}, {Net: 1}}},
		},
	}
	if !hasCode(Run(nl, Options{}), "undersized-channel") {
		t.Fatal("missing undersized-channel")
	}
}

func TestDanglingNet(t *testing.T) {
	nl := &netlist.Netlist{
		Nets: []netlist.Net{
			{Names: []string{"VDD"}}, {Names: []string{"GND"}}, {}, // N2 dangles
		},
	}
	if !hasCode(Run(nl, Options{}), "dangling-net") {
		t.Fatal("missing dangling-net")
	}
}

func TestMissingRails(t *testing.T) {
	nl := &netlist.Netlist{Nets: []netlist.Net{{Names: []string{"A"}}}}
	fs := Run(nl, Options{})
	if !hasCode(fs, "no-vdd") || !hasCode(fs, "no-gnd") {
		t.Fatalf("missing rail warnings: %v", fs)
	}
}

func TestGateCellLibraryIsClean(t *testing.T) {
	// Every library gate must extract without checker errors.
	w := gen.Memory(2, 2)
	res, err := extract.File(w.File, extract.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fs := Run(res.Netlist, Options{})
	for _, f := range fs {
		if f.Severity == Error {
			t.Fatalf("library cell produces checker error: %v", f)
		}
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{Code: "x", Severity: Error, Message: "boom", Device: -1, Net: -1}
	if !strings.Contains(f.String(), "error") || !strings.Contains(f.String(), "boom") {
		t.Fatalf("format: %s", f)
	}
}

func hasCode(fs []Finding, code string) bool {
	for _, f := range fs {
		if f.Code == code {
			return true
		}
	}
	return false
}
