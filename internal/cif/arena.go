package cif

import "ace/internal/geom"

// Arena owns the parser's reusable allocation state: the item and
// vertex arenas, the Symbol blocks, the symbol table and the intern
// table. A long-lived caller (extract.Engine) hands the same Arena to
// parse after parse via ParseOptions.Arena; once the workload shape
// stabilises, parsing allocates nothing.
//
// The contract is strict: starting a new parse with an Arena reuses
// the memory backing every *File a previous parse with that Arena
// returned, invalidating those Files wholesale. Callers must be done
// with the previous File (extraction Results copy everything they
// keep, so a Result outlives its File safely). An Arena is not safe
// for concurrent use; pool whole Arenas instead.
type Arena struct {
	items     []Item
	pts       []geom.Point
	top       []Item
	blocks    [][]Symbol
	nextBlock int
	interned  map[string]string
	syms      map[int]*Symbol
}

// NewArena returns an empty Arena ready for ParseOptions.Arena.
func NewArena() *Arena { return &Arena{} }

// begin points a fresh parser's arenas at the reusable state.
func (a *Arena) begin(p *parser) {
	p.arena = a
	p.itemArena = a.items[:0]
	p.ptArena = a.pts[:0]
	a.nextBlock = 0
	p.symBlock = a.block()
	if a.syms == nil {
		a.syms = make(map[int]*Symbol)
	} else {
		clear(a.syms)
	}
	if a.interned == nil {
		a.interned = make(map[string]string, 16)
	}
	p.interned = a.interned
	p.file.Symbols = a.syms
	p.file.Top = a.top[:0]
}

// block hands out the next reusable Symbol block, allocating (and
// registering) a new one when the arena has no spare. Entries are
// fully overwritten by newSymbol before use, so stale contents from a
// previous parse are harmless.
func (a *Arena) block() []Symbol {
	if a.nextBlock < len(a.blocks) {
		b := a.blocks[a.nextBlock][:0]
		a.nextBlock++
		return b
	}
	b := make([]Symbol, 0, symBlockSize)
	a.blocks = append(a.blocks, b)
	a.nextBlock = len(a.blocks)
	return b
}

// end harvests the (possibly grown) arenas back from the parser and
// caps File.Top so a caller appending to the returned File cannot
// write into the arena's next parse.
func (a *Arena) end(p *parser) {
	a.items = p.itemArena
	a.pts = p.ptArena
	a.top = p.file.Top
	p.file.Top = p.file.Top[:len(p.file.Top):len(p.file.Top)]
}
