// Package cif parses and writes CIF 2.0 (Caltech Intermediate Form),
// the layout interchange format of Mead & Conway that ACE consumes.
//
// Supported commands: DS/DF symbol definitions with scale factors,
// C symbol calls with T/M/R transformation lists, L layer selection,
// B boxes (including rotated boxes via the optional direction vector),
// P polygons, W wires, R round flashes, the 9 (symbol name) and
// 94 (point label) user extensions, parenthesised comments, and E.
//
// Per the CIF definition the current layer is "sticky" global state;
// this parser records the sticky layer in textual order, which matches
// the behaviour of the historical Berkeley and CMU tools.
package cif

import (
	"ace/internal/diag"
	"ace/internal/geom"
	"ace/internal/tech"
)

// File is a parsed CIF file.
type File struct {
	// Symbols maps symbol number to definition.
	Symbols map[int]*Symbol

	// Top holds the items that appear outside any symbol definition;
	// they form the implicit top-level cell.
	Top []Item

	// Warnings collects non-fatal issues found during parsing
	// (snapped rotations, unknown layers, ignored commands).
	Warnings []string

	// Diagnostics carries every finding in the unified form: the same
	// warnings as above with stable codes and source spans, plus — in
	// lenient mode — the Error-severity diagnostics recorded where the
	// parser recovered instead of aborting.
	Diagnostics diag.Set
}

// Symbol is one DS…DF definition.
type Symbol struct {
	ID    int
	Name  string // from the "9" user extension, if present
	Items []Item
}

// ItemKind discriminates Item.
type ItemKind int8

const (
	ItemBox ItemKind = iota
	ItemPolygon
	ItemWire
	ItemCall
	ItemLabel
)

// Item is a single geometric or structural element. A sum type
// implemented as a struct-with-kind keeps instantiation allocation
// cheap, which matters because the front end creates millions of
// these for large chips.
type Item struct {
	Kind  ItemKind
	Layer tech.Layer // for Box/Polygon/Wire, and optionally Label

	Box  geom.Rect    // ItemBox
	Poly geom.Polygon // ItemPolygon
	Wire geom.Wire    // ItemWire

	// ItemCall fields.
	SymbolID int
	Trans    geom.Transform

	// ItemLabel fields (CIF "94 name x y [layer]").
	Name     string
	At       geom.Point
	HasLayer bool
}

// BBoxItems returns the bounding box of a set of items, resolving
// calls through the symbol table. Results per symbol are memoised in
// cache (keyed by symbol id); pass a shared map when calling
// repeatedly.
func BBoxItems(items []Item, syms map[int]*Symbol, cache map[int]geom.Rect) (geom.Rect, bool) {
	var bb geom.Rect
	have := false
	add := func(r geom.Rect) {
		if !have {
			bb = r
			have = true
		} else {
			bb = bb.Union(r)
		}
	}
	for _, it := range items {
		switch it.Kind {
		case ItemBox:
			add(it.Box)
		case ItemPolygon:
			add(it.Poly.BBox())
		case ItemWire:
			add(wireBBox(it.Wire))
		case ItemCall:
			sub, ok := SymbolBBox(it.SymbolID, syms, cache)
			if ok {
				add(it.Trans.ApplyRect(sub))
			}
		case ItemLabel:
			// Labels are points; they do not extend the artwork.
		}
	}
	return bb, have
}

// SymbolBBox returns the bounding box of a symbol's full expansion.
func SymbolBBox(id int, syms map[int]*Symbol, cache map[int]geom.Rect) (geom.Rect, bool) {
	if r, ok := cache[id]; ok {
		return r, !r.Empty() || r != (geom.Rect{})
	}
	sym, ok := syms[id]
	if !ok {
		return geom.Rect{}, false
	}
	// Guard against recursive definitions: mark in-progress with the
	// zero rect so a cycle resolves to an empty box instead of hanging.
	cache[id] = geom.Rect{}
	bb, have := BBoxItems(sym.Items, syms, cache)
	if !have {
		return geom.Rect{}, false
	}
	cache[id] = bb
	return bb, true
}

func wireBBox(w geom.Wire) geom.Rect {
	if len(w.Path) == 0 {
		return geom.Rect{}
	}
	// Accumulate min/max directly: path points are zero-area rects,
	// which Rect.Union would treat as absent when they sit at the
	// origin.
	h := w.Width/2 + (w.Width & 1)
	bb := geom.Rect{XMin: w.Path[0].X, YMin: w.Path[0].Y, XMax: w.Path[0].X, YMax: w.Path[0].Y}
	for _, p := range w.Path[1:] {
		if p.X < bb.XMin {
			bb.XMin = p.X
		}
		if p.X > bb.XMax {
			bb.XMax = p.X
		}
		if p.Y < bb.YMin {
			bb.YMin = p.Y
		}
		if p.Y > bb.YMax {
			bb.YMax = p.Y
		}
	}
	return geom.Rect{XMin: bb.XMin - h, YMin: bb.YMin - h, XMax: bb.XMax + h, YMax: bb.YMax + h}
}
