package cif

import (
	"strings"
	"testing"

	"ace/internal/geom"
	"ace/internal/tech"
)

func mustParse(t *testing.T, src string) *File {
	t.Helper()
	f, err := ParseString(src)
	if err != nil {
		t.Fatalf("parse: %v\nsource:\n%s", err, src)
	}
	return f
}

func TestParseBox(t *testing.T) {
	f := mustParse(t, "L ND; B 400 1200 -600 -1400;\nE\n")
	if len(f.Top) != 1 {
		t.Fatalf("items: %d", len(f.Top))
	}
	it := f.Top[0]
	if it.Kind != ItemBox || it.Layer != tech.Diff {
		t.Fatalf("item %+v", it)
	}
	want := geom.R(-800, -2000, -400, -800)
	if it.Box != want {
		t.Fatalf("box %v, want %v", it.Box, want)
	}
}

func TestParseSeparatorsAndComments(t *testing.T) {
	// CIF is free-form: commas count as blanks, comments nest.
	f := mustParse(t, "(outer (inner) comment) L NM;B 10,20,0 0;(x)E")
	if len(f.Top) != 1 || f.Top[0].Layer != tech.Metal {
		t.Fatalf("items %+v", f.Top)
	}
}

func TestParseSymbolAndCall(t *testing.T) {
	src := `
DS 1 1 1;
9 inv;
L ND; B 100 100 0 0;
DF;
C 1 T 500 600;
C 1 M X T 100 0;
E
`
	f := mustParse(t, src)
	s := f.Symbols[1]
	if s == nil || s.Name != "inv" || len(s.Items) != 1 {
		t.Fatalf("symbol %+v", s)
	}
	if len(f.Top) != 2 {
		t.Fatalf("calls %d", len(f.Top))
	}
	// First call: translate only.
	p := f.Top[0].Trans.Apply(geom.Pt(10, 10))
	if p != geom.Pt(510, 610) {
		t.Fatalf("call 1 transform: %v", p)
	}
	// Second: mirror x then translate.
	p = f.Top[1].Trans.Apply(geom.Pt(10, 10))
	if p != geom.Pt(90, 10) {
		t.Fatalf("call 2 transform: %v", p)
	}
}

func TestParseScaleFactor(t *testing.T) {
	src := "DS 1 25 2;\nL ND; B 8 4 0 2;\nDF;\nC 1;\nE\n"
	f := mustParse(t, src)
	it := f.Symbols[1].Items[0]
	// 8*25/2 = 100 long, 4*25/2 = 50 wide, centred at (0, 25).
	want := geom.R(-50, 0, 50, 50)
	if it.Box != want {
		t.Fatalf("scaled box %v, want %v", it.Box, want)
	}
}

func TestParseRotatedBox(t *testing.T) {
	f := mustParse(t, "L ND; B 100 20 0 0 0 1;\nE\n") // direction +y: rotate 90°
	it := f.Top[0]
	if it.Box.W() != 20 || it.Box.H() != 100 {
		t.Fatalf("rotated box %v", it.Box)
	}
}

func TestParsePolygonWireFlash(t *testing.T) {
	src := `
L NP;
P 0 0 100 0 0 100;
W 20 0 0 200 0;
R 60 300 300;
E
`
	f := mustParse(t, src)
	if len(f.Top) != 3 {
		t.Fatalf("items %d", len(f.Top))
	}
	if f.Top[0].Kind != ItemPolygon || len(f.Top[0].Poly) != 3 {
		t.Fatalf("polygon %+v", f.Top[0])
	}
	if f.Top[1].Kind != ItemWire || f.Top[1].Wire.Width != 20 {
		t.Fatalf("wire %+v", f.Top[1])
	}
	if f.Top[2].Kind != ItemPolygon || len(f.Top[2].Poly) != 8 {
		t.Fatalf("flash should become octagon: %+v", f.Top[2])
	}
}

func TestParseLabels(t *testing.T) {
	f := mustParse(t, "94 VDD -2600 3800;\n94 OUT 0 0 NM;\nE\n")
	if len(f.Top) != 2 {
		t.Fatalf("labels %d", len(f.Top))
	}
	l := f.Top[0]
	if l.Kind != ItemLabel || l.Name != "VDD" || l.At != geom.Pt(-2600, 3800) || l.HasLayer {
		t.Fatalf("label %+v", l)
	}
	l = f.Top[1]
	if !l.HasLayer || l.Layer != tech.Metal {
		t.Fatalf("layered label %+v", l)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"unterminated DS":   "DS 1;\nL ND; B 1 1 0 0;\n",
		"nested DS":         "DS 1;\nDS 2;\nDF;\nDF;\nE\n",
		"DF without DS":     "DF;\nE\n",
		"undefined call":    "C 7;\nE\n",
		"duplicate symbol":  "DS 1;DF;DS 1;DF;E\n",
		"recursive symbols": "DS 1; C 2;DF; DS 2; C 1;DF; C 1; E\n",
		"self-recursive":    "DS 1; C 1;DF; C 1;E\n",
		"bad box":           "L ND; B 10;\nE\n",
		"negative box":      "L ND; B -5 10 0 0;\nE\n",
		"tiny polygon":      "L ND; P 0 0 1 1;\nE\n",
		"missing semicolon": "L ND; B 1 1 0 0 E\n",
	}
	for name, src := range cases {
		if _, err := ParseString(src); err == nil {
			t.Errorf("%s: expected error, got none", name)
		}
	}
}

func TestGeometryBeforeLayerWarns(t *testing.T) {
	f := mustParse(t, "B 10 10 0 0;\nE\n")
	if len(f.Top) != 0 {
		t.Fatalf("unlayered geometry should be dropped: %+v", f.Top)
	}
	if len(f.Warnings) == 0 {
		t.Fatal("expected a warning")
	}
}

func TestUnknownLayerWarns(t *testing.T) {
	f := mustParse(t, "L QQ; B 10 10 0 0;\nE\n")
	if len(f.Top) != 0 || len(f.Warnings) == 0 {
		t.Fatalf("geometry on unknown layer should warn and drop: %+v / %v", f.Top, f.Warnings)
	}
}

func TestStickyLayerAcrossSymbols(t *testing.T) {
	// The layer set before DS carries into the definition (CIF's
	// sticky-layer rule as implemented by the historical tools).
	src := "L NP;\nDS 1;\nB 10 10 0 0;\nDF;\nC 1;\nE\n"
	f := mustParse(t, src)
	if f.Symbols[1].Items[0].Layer != tech.Poly {
		t.Fatalf("sticky layer lost: %+v", f.Symbols[1].Items[0])
	}
}

func TestTextAfterEIgnored(t *testing.T) {
	f := mustParse(t, "L ND; B 10 10 0 0;\nE\nthis is junk @#$%\n")
	if len(f.Top) != 1 {
		t.Fatalf("items %d", len(f.Top))
	}
}

func TestSnappedRotationWarns(t *testing.T) {
	src := "DS 1; L ND; B 10 10 0 0; DF;\nC 1 R 3 1;\nE\n"
	f := mustParse(t, src)
	found := false
	for _, w := range f.Warnings {
		if strings.Contains(w, "snapped") {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected snap warning, got %v", f.Warnings)
	}
}

func TestRoundTrip(t *testing.T) {
	src := `
DS 1 1 1;
9 cell;
L ND;
B 400 1200 -600 -1400;
L NP;
P 0 0 100 0 100 100 0 100;
W 40 0 0 300 0 300 300;
DF;
DS 2 1 1;
C 1 T 1000 0;
C 1 M X T 2000 0;
C 1 R 0 1 T 0 2000;
DF;
C 2;
94 VDD 50 50 NM;
E
`
	f1 := mustParse(t, src)
	text := String(f1)
	f2, err := ParseString(text)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
	if len(f2.Symbols) != len(f1.Symbols) {
		t.Fatalf("symbol count changed: %d vs %d", len(f2.Symbols), len(f1.Symbols))
	}
	// Instantiated bounding boxes must agree.
	bb1, ok1 := BBoxItems(f1.Top, f1.Symbols, map[int]geom.Rect{})
	bb2, ok2 := BBoxItems(f2.Top, f2.Symbols, map[int]geom.Rect{})
	if ok1 != ok2 || bb1 != bb2 {
		t.Fatalf("bbox changed: %v/%v vs %v/%v\n%s", bb1, ok1, bb2, ok2, text)
	}
	// Transform semantics must survive exactly.
	for i := range f1.Symbols[2].Items {
		t1 := f1.Symbols[2].Items[i].Trans
		t2 := f2.Symbols[2].Items[i].Trans
		for _, p := range []geom.Point{geom.Pt(0, 0), geom.Pt(17, 33), geom.Pt(-5, 9)} {
			if t1.Apply(p) != t2.Apply(p) {
				t.Fatalf("call %d transform changed: %v vs %v", i, t1, t2)
			}
		}
	}
}

func TestSymbolBBox(t *testing.T) {
	src := `
DS 1; L ND; B 100 100 50 50; DF;
DS 2; C 1; C 1 T 200 0; DF;
C 2;
E
`
	f := mustParse(t, src)
	cache := map[int]geom.Rect{}
	bb, ok := SymbolBBox(2, f.Symbols, cache)
	if !ok || bb != geom.R(0, 0, 300, 100) {
		t.Fatalf("bbox %v ok=%v", bb, ok)
	}
	// Cache must now serve symbol 1 directly.
	if cached, ok := cache[1]; !ok || cached != geom.R(0, 0, 100, 100) {
		t.Fatalf("cache %v", cache)
	}
}

func TestTopSymbolDetection(t *testing.T) {
	src := "DS 1; L ND; B 10 10 0 0; DF;\nDS 2; C 1; DF;\nE\n"
	f := mustParse(t, src)
	top, warn := f.TopSymbol()
	if warn != "" {
		t.Fatalf("unexpected warning %q", warn)
	}
	if len(top) != 1 || top[0].SymbolID != 2 {
		t.Fatalf("top %+v", top)
	}
}

func TestFileStats(t *testing.T) {
	src := `
DS 1; L ND; B 10 10 0 0; P 0 0 5 0 5 5; W 2 0 0 9 0; DF;
C 1;
94 X 0 0;
E
`
	f := mustParse(t, src)
	s := FileStats(f)
	if s.Symbols != 1 || s.Boxes != 1 || s.Polygons != 1 || s.Wires != 1 ||
		s.Calls != 1 || s.Labels != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestDDIgnoredWithWarning(t *testing.T) {
	f := mustParse(t, "DD 5;\nL ND; B 1 1 0 0;\nE\n")
	if len(f.Warnings) == 0 || len(f.Top) != 1 {
		t.Fatalf("DD handling: warnings=%v items=%d", f.Warnings, len(f.Top))
	}
}
