package cif

import (
	"os"
	"path/filepath"
	"testing"

	"ace/internal/geom"
)

// FuzzParse feeds arbitrary bytes to the CIF parser: it must never
// panic, anything it accepts must survive a write/re-parse round
// trip with the same instantiated bounding box, and the recovering
// lenient mode must always return a File — agreeing with strict
// exactly when it finds nothing to diagnose.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"L ND; B 400 1200 -600 -1400;\nE\n",
		"DS 1 2 1;\n9 inv;\nL NP; P 0 0 10 0 10 10; W 4 0 0 9 9; DF;\nC 1 M X R 0 1 T 5 5;\nE\n",
		"94 VDD -2600 3800 NM;\nE\n",
		"(comment (nested)) L NM;B 10,20,0 0;R 60 5 5;E",
		"DS 1; C 2; DF; DS 2; L ND; B 4 4 0 0; DF; C 1; E",
		"DD 3;\nL NG; B 2 2 1 1;\nE",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	malformed, _ := filepath.Glob(filepath.Join("testdata", "malformed", "*.cif"))
	for _, n := range malformed {
		if data, err := os.ReadFile(n); err == nil {
			f.Add(data)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return
		}
		lparsed, lerr := ParseBytesOpts(data, ParseOptions{Lenient: true})
		if lerr != nil {
			t.Fatalf("lenient parse aborted: %v", lerr)
		}
		parsed, err := ParseBytes(data)
		if err != nil {
			if lparsed.Diagnostics.Errors() == 0 && lparsed.Diagnostics.Len() == 0 {
				t.Fatalf("strict rejects (%v) but lenient reports nothing", err)
			}
			return
		}
		if lparsed.Diagnostics.Errors() > 0 {
			t.Fatalf("strict accepts but lenient reports errors: %v", lparsed.Diagnostics.All())
		}
		if got, want := String(lparsed), String(parsed); got != want {
			t.Fatalf("lenient file differs from strict on accepted input:\n%s\nvs\n%s", got, want)
		}
		// Round trip must stay parseable with the same extent.
		text := String(parsed)
		back, err := ParseString(text)
		if err != nil {
			t.Fatalf("rewrite unparseable: %v\noriginal: %q\nrewritten: %q", err, data, text)
		}
		bb1, ok1 := BBoxItems(parsed.Top, parsed.Symbols, map[int]geom.Rect{})
		bb2, ok2 := BBoxItems(back.Top, back.Symbols, map[int]geom.Rect{})
		if ok1 != ok2 {
			t.Fatalf("bbox presence changed: %v vs %v", ok1, ok2)
		}
		if ok1 && bb1 != bb2 {
			t.Fatalf("bbox changed: %v vs %v\noriginal: %q", bb1, bb2, data)
		}
	})
}
