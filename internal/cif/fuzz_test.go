package cif

import (
	"testing"

	"ace/internal/geom"
)

// FuzzParse feeds arbitrary bytes to the CIF parser: it must never
// panic, and anything it accepts must survive a write/re-parse round
// trip with the same instantiated bounding box.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"L ND; B 400 1200 -600 -1400;\nE\n",
		"DS 1 2 1;\n9 inv;\nL NP; P 0 0 10 0 10 10; W 4 0 0 9 9; DF;\nC 1 M X R 0 1 T 5 5;\nE\n",
		"94 VDD -2600 3800 NM;\nE\n",
		"(comment (nested)) L NM;B 10,20,0 0;R 60 5 5;E",
		"DS 1; C 2; DF; DS 2; L ND; B 4 4 0 0; DF; C 1; E",
		"DD 3;\nL NG; B 2 2 1 1;\nE",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return
		}
		parsed, err := ParseBytes(data)
		if err != nil {
			return
		}
		// Round trip must stay parseable with the same extent.
		text := String(parsed)
		back, err := ParseString(text)
		if err != nil {
			t.Fatalf("rewrite unparseable: %v\noriginal: %q\nrewritten: %q", err, data, text)
		}
		bb1, ok1 := BBoxItems(parsed.Top, parsed.Symbols, map[int]geom.Rect{})
		bb2, ok2 := BBoxItems(back.Top, back.Symbols, map[int]geom.Rect{})
		if ok1 != ok2 {
			t.Fatalf("bbox presence changed: %v vs %v", ok1, ok2)
		}
		if ok1 && bb1 != bb2 {
			t.Fatalf("bbox changed: %v vs %v\noriginal: %q", bb1, bb2, data)
		}
	})
}
