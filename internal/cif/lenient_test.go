package cif

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"ace/internal/diag"
)

// -update regenerates the golden diagnostic renderings next to each
// malformed corpus file:
//
//	go test ./internal/cif/ -run TestMalformedCorpus -update
var update = flag.Bool("update", false, "rewrite golden files")

// corpusFiles returns the malformed CIF corpus, sorted by name.
func corpusFiles(t *testing.T) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join("testdata", "malformed", "*.cif"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("empty malformed corpus")
	}
	return files
}

// countGeom counts geometry items (boxes, polygons, wires) across the
// top level and every symbol body.
func countGeom(f *File) int {
	n := 0
	count := func(items []Item) {
		for _, it := range items {
			switch it.Kind {
			case ItemBox, ItemPolygon, ItemWire:
				n++
			}
		}
	}
	count(f.Top)
	for _, s := range f.Symbols {
		if s != nil {
			count(s.Items)
		}
	}
	return n
}

// TestMalformedCorpusGolden locks the lenient diagnostics for every
// corpus file, in both renderings, and checks the strict/lenient
// contract: strict fails on the first Error-severity diagnostic with
// the same located message lenient records for it, and on files whose
// damage is warning-only strict still succeeds.
func TestMalformedCorpusGolden(t *testing.T) {
	for _, path := range corpusFiles(t) {
		name := filepath.Base(path)
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			f, err := ParseBytesOpts(src, ParseOptions{Lenient: true})
			if err != nil {
				t.Fatalf("lenient parse aborted: %v", err)
			}
			if f.Diagnostics.Len() == 0 {
				t.Fatal("no diagnostics on malformed input")
			}
			f.Diagnostics.Sort()

			// Deterministic: a second run renders identically.
			var text, json bytes.Buffer
			if err := diag.WriteText(&text, name, &f.Diagnostics); err != nil {
				t.Fatal(err)
			}
			if err := diag.WriteJSON(&json, name, &f.Diagnostics); err != nil {
				t.Fatal(err)
			}
			f2, err := ParseBytesOpts(src, ParseOptions{Lenient: true})
			if err != nil {
				t.Fatal(err)
			}
			f2.Diagnostics.Sort()
			var text2 bytes.Buffer
			if err := diag.WriteText(&text2, name, &f2.Diagnostics); err != nil {
				t.Fatal(err)
			}
			if text.String() != text2.String() {
				t.Fatalf("nondeterministic diagnostics:\n%s\nvs\n%s", text.String(), text2.String())
			}

			compareGolden(t, path+".diag.txt", text.Bytes())
			compareGolden(t, path+".diag.json", json.Bytes())

			// Strict/lenient agreement.
			strictF, strictErr := ParseBytes(src)
			firstErr := firstErrorDiag(&f.Diagnostics)
			if firstErr == nil {
				// Warning-only damage: strict must succeed and salvage
				// exactly what lenient does.
				if strictErr != nil {
					t.Fatalf("warning-only file fails strict parse: %v", strictErr)
				}
				if got, want := countGeom(strictF), countGeom(f); got != want {
					t.Fatalf("strict salvages %d items, lenient %d", got, want)
				}
				return
			}
			if strictErr == nil {
				t.Fatalf("strict parse succeeded despite error diagnostic %v", firstErr)
			}
			if firstErr.Span.Located() {
				want := fmt.Sprintf("cif: line %d: %s", firstErr.Span.Line, firstErr.Message)
				if strictErr.Error() != want {
					t.Fatalf("strict error %q, lenient's first error renders %q", strictErr, want)
				}
			}
		})
	}
}

// firstErrorDiag returns the first Error-severity diagnostic in sorted
// order, or nil.
func firstErrorDiag(s *diag.Set) *diag.Diagnostic {
	for _, d := range s.All() {
		if d.Severity == diag.Error {
			d := d
			return &d
		}
	}
	return nil
}

func compareGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("golden mismatch for %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestLenientSalvagesPrefix is the corpus property test: lenient never
// reports fewer geometry items than the longest well-formed prefix of
// the input, so recovery only ever adds salvaged geometry.
func TestLenientSalvagesPrefix(t *testing.T) {
	for _, path := range corpusFiles(t) {
		name := filepath.Base(path)
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			f, err := ParseBytesOpts(src, ParseOptions{Lenient: true})
			if err != nil {
				t.Fatalf("lenient parse aborted: %v", err)
			}
			got := countGeom(f)
			want := wellFormedPrefixGeom(src)
			if got < want {
				t.Fatalf("lenient salvaged %d geometry items, well-formed prefix holds %d", got, want)
			}
		})
	}
}

// wellFormedPrefixGeom finds the longest prefix of src, cut at command
// terminators, that strict-parses cleanly once an E terminator is
// appended, and returns its geometry count.
func wellFormedPrefixGeom(src []byte) int {
	best := 0
	for i := 0; i <= len(src); i++ {
		if i < len(src) && src[i] != ';' {
			continue
		}
		prefix := append(append([]byte{}, src[:i]...), []byte("\nE\n")...)
		f, err := ParseBytes(prefix)
		if err != nil {
			continue
		}
		if n := countGeom(f); n > best {
			best = n
		}
	}
	return best
}

// TestLenientNeverPanics hammers the recovering parser with byte-level
// mutations of the corpus: truncations at every boundary and single
// byte corruptions. Lenient must return a File (or a typed error) and
// never panic; this runs the same shapes the fuzzer explores, but
// deterministically in CI.
func TestLenientNeverPanics(t *testing.T) {
	for _, path := range corpusFiles(t) {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i <= len(src); i++ {
			if _, err := ParseBytesOpts(src[:i], ParseOptions{Lenient: true}); err != nil {
				t.Fatalf("%s[:%d]: lenient aborted: %v", path, i, err)
			}
		}
		for i := 0; i < len(src); i++ {
			for _, b := range []byte{0, ';', '(', 'D', '-', 0xff} {
				mut := append([]byte{}, src...)
				mut[i] = b
				if _, err := ParseBytesOpts(mut, ParseOptions{Lenient: true}); err != nil {
					t.Fatalf("%s mutated at %d to %q: lenient aborted: %v", path, i, b, err)
				}
			}
		}
	}
}

// TestStrictLenientAgreeOnClean locks the equivalence contract at the
// parser level: on inputs that produce zero diagnostics, lenient and
// strict build identical Files.
func TestStrictLenientAgreeOnClean(t *testing.T) {
	srcs := []string{
		"L ND; B 400 1200 -600 -1400;\nE\n",
		"DS 1 1 1;\n9 inv;\nL ND; B 100 100 0 0;\nDF;\nC 1 T 500 600;\nC 1 M X T 100 0;\nE\n",
		"DS 1 25 2;\nL ND; B 8 4 0 2;\nDF;\nC 1;\nE\n",
	}
	for i, src := range srcs {
		strict, err := ParseString(src)
		if err != nil {
			t.Fatalf("case %d strict: %v", i, err)
		}
		lenient, err := ParseBytesOpts([]byte(src), ParseOptions{Lenient: true})
		if err != nil {
			t.Fatalf("case %d lenient: %v", i, err)
		}
		if lenient.Diagnostics.Len() != 0 {
			t.Fatalf("case %d: clean input produced diagnostics: %v", i, lenient.Diagnostics.All())
		}
		if gs, ls := String(strict), String(lenient); gs != ls {
			t.Fatalf("case %d: strict and lenient disagree:\n%s\nvs\n%s", i, gs, ls)
		}
		if countGeom(strict) != countGeom(lenient) {
			t.Fatalf("case %d geometry count mismatch", i)
		}
	}
}
