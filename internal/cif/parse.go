package cif

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"ace/internal/diag"
	"ace/internal/geom"
	"ace/internal/guard"
	"ace/internal/tech"
)

// ParseOptions harden a parse against hostile input. The zero value
// imposes no budgets (beyond the overflow checks, which are always
// on) and selects the strict, fail-fast error contract.
type ParseOptions struct {
	// Limits.MaxBoxes caps the number of geometry items (boxes,
	// polygons, wires, calls, labels) the parser will accept; excess
	// input fails with a line-located *guard.LimitError. Budgets bind
	// in lenient mode too: they are resource protection, not input
	// validation, so a budget violation always aborts.
	Limits guard.Limits

	// Lenient selects the fail-soft error contract: a parse error is
	// recorded as a located diagnostic in File.Diagnostics and the
	// parser resynchronises at the next ';' command terminator (or, for
	// damage to a DS definition header, at the next DF command or E),
	// salvaging every well-formed command instead of aborting. Strict
	// mode (the default) fails on the first error with the same located
	// message it always has.
	Lenient bool

	// Diag caps the diagnostics recorded per parse; the zero value
	// applies diag.DefaultMaxDiagnostics.
	Diag diag.Limits

	// Arena, when non-nil, supplies the parser's reusable allocation
	// state. Starting a parse with an Arena invalidates every File a
	// previous parse with the same Arena returned; see Arena.
	Arena *Arena
}

// Error is a located parse error with a stable diagnostic code. Its
// rendered text is byte-for-byte the historical "cif: line N: message"
// form, so strict-mode callers see exactly the errors they always
// have; lenient mode records the same information as a diagnostic and
// keeps going.
type Error struct {
	Code string    // stable diagnostic code, e.g. "missing-semicolon"
	Span diag.Span // where parsing stalled
	Msg  string    // the located message body
	Err  error     // wrapped cause (geom.ErrOverflow, …), may be nil
}

func (e *Error) Error() string {
	return fmt.Sprintf("cif: line %d: %s", e.Span.Line, e.Msg)
}

func (e *Error) Unwrap() error { return e.Err }

// StructError is a whole-file structural defect — a call to an
// undefined symbol, or a recursive symbol definition. It has no single
// source line to point at, but like *Error it is a property of the
// input rather than of the extractor, and callers that sort failures
// into "bad input" versus "broken pipeline" (the HTTP service's
// 422-versus-500 split) should treat both types as bad input. The
// rendered text is exactly the historical fmt.Errorf form.
type StructError struct{ Msg string }

func (e *StructError) Error() string { return e.Msg }

// Diagnostic converts the error to its diagnostic form.
func (e *Error) Diagnostic() diag.Diagnostic {
	d := diag.New(diag.Error, guard.StageParse, e.Code, e.Msg)
	d.Span = e.Span
	return d
}

// Parse reads a complete CIF file from r.
func Parse(r io.Reader) (*File, error) {
	return ParseReaderOpts(r, ParseOptions{})
}

// ParseReaderOpts reads a complete CIF file from r under budgets.
func ParseReaderOpts(r io.Reader, opt ParseOptions) (*File, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return ParseBytesOpts(data, opt)
}

// ParseString parses CIF from a string.
func ParseString(s string) (*File, error) { return ParseBytes([]byte(s)) }

// ParseBytes parses CIF from a byte slice.
func ParseBytes(data []byte) (*File, error) {
	return ParseBytesOpts(data, ParseOptions{})
}

// ParseBytesOpts parses CIF from a byte slice under budgets. A parser
// panic (an internal bug tripped by malformed input) surfaces as a
// *guard.PanicError instead of crashing the caller.
func ParseBytesOpts(data []byte, opt ParseOptions) (f *File, err error) {
	defer guard.Recover(guard.StageParse, &err)
	if err := guard.Inject(guard.StageParse); err != nil {
		return nil, err
	}
	p := &parser{
		src:     data,
		limits:  opt.Limits,
		lenient: opt.Lenient,
		file:    &File{},
	}
	if a := opt.Arena; a != nil {
		a.begin(p)
		defer a.end(p)
	} else {
		p.file.Symbols = map[int]*Symbol{}
	}
	p.file.Diagnostics.SetLimits(opt.Diag)
	if err := p.run(); err != nil {
		return nil, err
	}
	if opt.Lenient {
		lenientSemantics(p.file)
	} else if err := checkSemantics(p.file); err != nil {
		return nil, err
	}
	return p.file, nil
}

type parser struct {
	src       []byte
	pos       int
	line      int
	lineStart int // byte offset where the current line begins

	file *File

	cur      *Symbol // nil when at top level
	curMark  int     // itemArena start of the open symbol's items
	layer    tech.Layer
	hasLayer bool
	scaleA   int64 // DS scale numerator (1 at top level)
	scaleB   int64 // DS scale denominator
	ended    bool

	limits  guard.Limits
	lenient bool
	items   int64 // geometry items emitted, against Limits.MaxBoxes
	ovf     bool  // a scale or literal overflowed; fail at command end

	semiConsumed bool // the current command consumed its ';' terminator

	// Allocation arenas (see "allocation discipline" below): items of
	// the open symbol accumulate in itemArena and are sliced out at DF;
	// polygon/wire vertices accumulate in ptArena; Symbol structs come
	// from fixed-size blocks; words that must outlive the parse are
	// interned so repeated names cost one allocation total.
	itemArena []Item
	ptArena   []geom.Point
	symBlock  []Symbol
	interned  map[string]string
	arena     *Arena // reusable arena source (nil: allocate fresh)
}

// Allocation discipline. The parser is the first stage of the ingest
// pipeline and runs over multi-megabyte files, so the hot loop must
// not allocate per command:
//
//   - the lexer hands out sub-slices of src (tryWordBytes); the only
//     words converted to strings are names that outlive the parse,
//     and those are interned;
//   - a symbol's items are appended to a shared arena and sliced out
//     (three-index, so the view cannot be appended into) when DF
//     closes the symbol — one growth chain for the whole file instead
//     of one per symbol;
//   - polygon and wire vertices use the same trick on ptArena;
//   - Symbol structs are carved from 64-entry blocks to keep pointer
//     stability without a per-symbol allocation.
//
// BenchmarkParseBytes tracks allocs/op for regressions.

const symBlockSize = 64

func (p *parser) newSymbol(id int) *Symbol {
	if len(p.symBlock) == cap(p.symBlock) {
		if p.arena != nil {
			p.symBlock = p.arena.block()
		} else {
			p.symBlock = make([]Symbol, 0, symBlockSize)
		}
	}
	p.symBlock = append(p.symBlock, Symbol{ID: id})
	return &p.symBlock[len(p.symBlock)-1]
}

// intern returns w as a string, allocating only the first time a given
// word is seen.
func (p *parser) intern(w []byte) string {
	if s, ok := p.interned[string(w)]; ok {
		return s
	}
	if p.interned == nil {
		p.interned = make(map[string]string, 16)
	}
	s := string(w)
	p.interned[s] = s
	return s
}

// span is the current source position: where parsing stalled for
// errors, where the command sits for warnings.
func (p *parser) span() diag.Span {
	pos := p.pos
	if pos > len(p.src) {
		pos = len(p.src)
	}
	col := pos - p.lineStart + 1
	if col < 1 {
		col = 1
	}
	return diag.Span{Offset: pos, Line: p.line + 1, Col: col}
}

// errc builds a located *Error carrying a stable diagnostic code. The
// rendered text is the historical "cif: line N: message" form.
func (p *parser) errc(code, format string, args ...any) error {
	return &Error{Code: code, Span: p.span(), Msg: fmt.Sprintf(format, args...)}
}

// errWrap is errc for messages whose cause must stay unwrappable
// (errors.Is must still reach geom.ErrOverflow through it).
func (p *parser) errWrap(code string, cause error, format string, args ...any) error {
	return &Error{
		Code: code, Span: p.span(),
		Msg: fmt.Sprintf(format, args...) + ": " + cause.Error(),
		Err: cause,
	}
}

// warnc records a non-fatal issue both as a legacy warning string and
// as a Warning-severity diagnostic with a stable code.
func (p *parser) warnc(code, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	p.file.Warnings = append(p.file.Warnings,
		fmt.Sprintf("line %d: %s", p.line+1, msg))
	d := diag.New(diag.Warning, guard.StageParse, code, msg)
	d.Span = p.span()
	p.file.Diagnostics.Add(d)
}

func (p *parser) run() error {
	p.scaleA, p.scaleB = 1, 1
	for {
		p.skipBlanks()
		if p.pos >= len(p.src) {
			if p.cur != nil {
				err := p.errc("unterminated-symbol",
					"unterminated symbol definition DS %d", p.cur.ID)
				if !p.lenient {
					return err
				}
				// Salvage the open definition: close it as DF would so
				// its well-formed items survive.
				p.report(err)
				p.closeSymbol()
			}
			return nil
		}
		if p.ended {
			// Everything after E is ignored per the spec.
			return nil
		}
		c := p.src[p.pos]
		p.semiConsumed = false
		var err error
		switch {
		case c == ';':
			p.pos++ // empty command
		case c == '(':
			err = p.skipComment()
		case c >= '0' && c <= '9':
			err = p.userExtension()
		case c >= 'A' && c <= 'Z' || c >= 'a' && c <= 'z':
			err = p.command()
		default:
			err = p.errc("unexpected-char", "unexpected character %q", c)
		}
		if err == nil && p.ovf {
			err = p.errWrap("overflow", geom.ErrOverflow,
				"coordinate arithmetic under DS scale %d/%d", p.scaleA, p.scaleB)
		}
		if err != nil {
			if !p.lenient {
				return err
			}
			if aerr := p.recoverFrom(err); aerr != nil {
				return aerr
			}
		}
	}
}

// recoverFrom is the lenient-mode error path: the failure is recorded
// as a diagnostic and the input is resynchronised — at the next ';'
// for command-level damage, at the next DF command (or E) when a DS
// definition header itself was damaged, and in place when only the
// terminator was missing. Resource-budget violations are not input
// faults and abort the parse even here.
func (p *parser) recoverFrom(err error) error {
	p.ovf = false
	var le *guard.LimitError
	if errors.As(err, &le) {
		return err
	}
	var pe *Error
	if !errors.As(err, &pe) {
		e := &Error{Code: "parse", Span: p.span(), Msg: err.Error(), Err: err}
		pe = e
	}
	p.report(pe)
	switch pe.Code {
	case "nested-definition", "bad-definition", "bad-scale", "duplicate-symbol":
		// The definition header is unusable, so its body cannot be
		// attributed to a symbol: skip it wholesale.
		p.resyncDefinition()
	case "end-in-definition":
		// E closed the file with a definition still open; salvage it.
		p.closeSymbol()
	case "missing-semicolon":
		if !p.semiConsumed {
			// The command was complete apart from its terminator; the
			// next character starts a fresh command, so resume in
			// place instead of discarding it.
			return nil
		}
		p.resyncCommand()
	default:
		if p.semiConsumed {
			// The command's text was fully consumed (the fault is
			// semantic: negative box, degenerate polygon); the input
			// is already at a command boundary.
			return nil
		}
		p.resyncCommand()
	}
	return nil
}

// report records a recovered parse error as a diagnostic.
func (p *parser) report(err error) {
	var pe *Error
	if errors.As(err, &pe) {
		p.file.Diagnostics.Add(pe.Diagnostic())
		return
	}
	p.file.Diagnostics.Add(diag.New(diag.Error, guard.StageParse, "parse", err.Error()))
}

// resyncCommand advances past the next ';' — the command-level
// resynchronisation point.
func (p *parser) resyncCommand() {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		p.pos++
		if c == ';' {
			return
		}
		if c == '\n' {
			p.line++
			p.lineStart = p.pos
		}
	}
}

// resyncDefinition discards input up to and including the next DF
// command (or up to E / end of input) — the definition-level
// resynchronisation point used when a DS header itself is damaged and
// the body that follows cannot be attributed to any symbol.
func (p *parser) resyncDefinition() {
	for {
		p.skipBlanks()
		if p.pos >= len(p.src) {
			return
		}
		c := p.src[p.pos]
		switch {
		case c == ';':
			p.pos++
		case c == '(':
			if p.skipComment() != nil {
				return // unterminated comment: nothing left to scan
			}
		case upper(c) == 'E':
			return // not consumed: the main loop handles E
		case upper(c) == 'D':
			save, saveLine, saveStart := p.pos, p.line, p.lineStart
			p.pos++
			p.skipBlanks()
			if p.pos < len(p.src) && upper(p.src[p.pos]) == 'F' {
				p.pos++
				p.resyncCommand() // consume through the DF's ';'
				return
			}
			p.pos, p.line, p.lineStart = save, saveLine, saveStart
			p.resyncCommand()
		default:
			p.resyncCommand()
		}
	}
}

// closeSymbol slices the open symbol's items out of the arena exactly
// as DF does and returns the parser to top level.
func (p *parser) closeSymbol() {
	if p.cur == nil {
		return
	}
	if n := len(p.itemArena); n > p.curMark {
		p.cur.Items = p.itemArena[p.curMark:n:n]
	}
	p.cur = nil
	p.scaleA, p.scaleB = 1, 1
}

func (p *parser) command() error {
	c := upper(p.src[p.pos])
	p.pos++
	switch c {
	case 'D':
		p.skipBlanks()
		if p.pos >= len(p.src) {
			return p.errc("truncated-command", "truncated D command")
		}
		switch upper(p.src[p.pos]) {
		case 'S':
			p.pos++
			return p.defineStart()
		case 'F':
			p.pos++
			return p.defineFinish()
		case 'D':
			p.pos++
			_, _ = p.number() // symbol number
			p.warnc("ignored-command", "DD (delete definition) ignored")
			return p.endCommand()
		}
		return p.errc("unknown-command", "unknown D command")
	case 'C':
		return p.call()
	case 'L':
		return p.layerCmd()
	case 'B':
		return p.box()
	case 'P':
		return p.polygon()
	case 'W':
		return p.wire()
	case 'R':
		return p.roundFlash()
	case 'E':
		p.ended = true
		if p.cur != nil {
			return p.errc("end-in-definition", "E inside symbol definition")
		}
		return nil
	}
	return p.errc("unknown-command", "unknown command %q", c)
}

func (p *parser) defineStart() error {
	if p.cur != nil {
		return p.errc("nested-definition", "nested DS (symbol %d still open)", p.cur.ID)
	}
	id, err := p.number()
	if err != nil {
		return p.errc("bad-definition", "DS needs a symbol number: %v", err)
	}
	a, b := int64(1), int64(1)
	if n, ok := p.tryNumber(); ok {
		a = n
		m, ok2 := p.tryNumber()
		if !ok2 {
			return p.errc("bad-scale", "DS scale needs both a and b")
		}
		b = m
		if a <= 0 || b <= 0 {
			return p.errc("bad-scale", "DS scale must be positive, got %d/%d", a, b)
		}
	}
	if _, dup := p.file.Symbols[int(id)]; dup {
		return p.errc("duplicate-symbol", "symbol %d defined twice", id)
	}
	p.cur = p.newSymbol(int(id))
	p.curMark = len(p.itemArena)
	p.file.Symbols[int(id)] = p.cur
	p.scaleA, p.scaleB = a, b
	return p.endCommand()
}

func (p *parser) defineFinish() error {
	if p.cur == nil {
		return p.errc("misplaced-command", "DF without DS")
	}
	// Slice the symbol's items out of the arena. The three-index form
	// caps the view so appending to sym.Items can never scribble over a
	// later symbol's items.
	p.closeSymbol()
	return p.endCommand()
}

func (p *parser) call() error {
	id, err := p.number()
	if err != nil {
		return p.errc("bad-operand", "C needs a symbol number: %v", err)
	}
	tr := geom.Identity
	for {
		p.skipBlanks()
		if p.pos >= len(p.src) {
			return p.errc("unterminated-call", "unterminated call")
		}
		switch upper(p.src[p.pos]) {
		case ';':
			p.pos++
			p.semiConsumed = true
			return p.emit(Item{Kind: ItemCall, SymbolID: int(id), Trans: tr})
		case 'T':
			p.pos++
			x, err := p.number()
			if err != nil {
				return p.errc("bad-operand", "T needs x: %v", err)
			}
			y, err := p.number()
			if err != nil {
				return p.errc("bad-operand", "T needs y: %v", err)
			}
			if tr, err = tr.ThenChecked(geom.Translate(p.scale(x), p.scale(y))); err != nil {
				return p.errWrap("overflow", err, "call translation")
			}
		case 'M':
			p.pos++
			p.skipBlanks()
			if p.pos >= len(p.src) {
				return p.errc("bad-transform", "M needs an axis")
			}
			switch upper(p.src[p.pos]) {
			case 'X':
				p.pos++
				tr = tr.Then(geom.MirrorX())
			case 'Y':
				p.pos++
				tr = tr.Then(geom.MirrorY())
			default:
				return p.errc("bad-transform", "M needs X or Y")
			}
		case 'R':
			p.pos++
			a, err := p.number()
			if err != nil {
				return p.errc("bad-operand", "R needs a: %v", err)
			}
			b, err := p.number()
			if err != nil {
				return p.errc("bad-operand", "R needs b: %v", err)
			}
			rot, snapped := geom.ApproxRotation(a, b)
			if snapped {
				p.warnc("snapped-rotation", "rotation (%d,%d) snapped to nearest axis", a, b)
			}
			tr = tr.Then(rot)
		default:
			return p.errc("bad-transform", "unexpected %q in call transformation list", p.src[p.pos])
		}
	}
}

func (p *parser) layerCmd() error {
	name, err := p.wordBytes()
	if err != nil {
		return p.errc("bad-operand", "L needs a layer name: %v", err)
	}
	l, ok := tech.LayerByCIFNameBytes(name)
	if !ok {
		p.warnc("unknown-layer", "unknown layer %q; geometry on it will be ignored", name)
		p.hasLayer = false
		return p.endCommand()
	}
	p.layer = l
	p.hasLayer = true
	return p.endCommand()
}

func (p *parser) box() error {
	length, err := p.number()
	if err != nil {
		return p.errc("bad-operand", "B needs length: %v", err)
	}
	width, err := p.number()
	if err != nil {
		return p.errc("bad-operand", "B needs width: %v", err)
	}
	cx, err := p.number()
	if err != nil {
		return p.errc("bad-operand", "B needs cx: %v", err)
	}
	cy, err := p.number()
	if err != nil {
		return p.errc("bad-operand", "B needs cy: %v", err)
	}
	var dx, dy int64
	hasDir := false
	if n, ok := p.tryNumber(); ok {
		dx = n
		dy, err = p.number()
		if err != nil {
			return p.errc("bad-operand", "B direction needs dy: %v", err)
		}
		hasDir = true
	}
	if err := p.endCommand(); err != nil {
		return err
	}
	if length < 0 || width < 0 {
		return p.errc("bad-geometry", "negative box dimensions %d x %d", length, width)
	}
	if !p.requireLayer("box") {
		return nil
	}
	sl, sw, scx, scy := p.scale(length), p.scale(width), p.scale(cx), p.scale(cy)
	// The corner arithmetic is centre ± extent; reject it up front when
	// it would wrap rather than emit a folded rectangle.
	if _, ok1 := geom.AddOK(scx, sl); !ok1 {
		p.ovf = true
	} else if _, ok2 := geom.AddOK(scx, -sl); !ok2 {
		p.ovf = true
	} else if _, ok3 := geom.AddOK(scy, sw); !ok3 {
		p.ovf = true
	} else if _, ok4 := geom.AddOK(scy, -sw); !ok4 {
		p.ovf = true
	}
	if p.ovf {
		return p.errWrap("overflow", geom.ErrOverflow, "box corners")
	}
	r := geom.RectCWH(sl, sw, geom.Pt(scx, scy))
	if hasDir && !(dy == 0 && dx > 0) {
		// Rotated box: rotate the corners about the centre.
		rot, snapped := geom.ApproxRotation(dx, dy)
		if snapped {
			p.warnc("snapped-rotation", "box direction (%d,%d) snapped to nearest axis", dx, dy)
		}
		c := r.Center()
		tr := geom.Translate(-c.X, -c.Y).Then(rot).Then(geom.Translate(c.X, c.Y))
		r = tr.ApplyRect(r)
	}
	return p.emit(Item{Kind: ItemBox, Layer: p.layer, Box: r})
}

func (p *parser) polygon() error {
	pts, err := p.points()
	if err != nil {
		return err
	}
	if err := p.endCommand(); err != nil {
		return err
	}
	if len(pts) < 3 {
		return p.errc("bad-geometry", "polygon needs at least 3 points, got %d", len(pts))
	}
	if !p.requireLayer("polygon") {
		return nil
	}
	return p.emit(Item{Kind: ItemPolygon, Layer: p.layer, Poly: geom.Polygon(pts)})
}

func (p *parser) wire() error {
	width, err := p.number()
	if err != nil {
		return p.errc("bad-operand", "W needs width: %v", err)
	}
	pts, err := p.points()
	if err != nil {
		return err
	}
	if err := p.endCommand(); err != nil {
		return err
	}
	if len(pts) == 0 {
		return p.errc("bad-geometry", "wire needs at least 1 point")
	}
	if !p.requireLayer("wire") {
		return nil
	}
	return p.emit(Item{Kind: ItemWire, Layer: p.layer,
		Wire: geom.Wire{Width: p.scale(width), Path: pts}})
}

func (p *parser) roundFlash() error {
	diam, err := p.number()
	if err != nil {
		return p.errc("bad-operand", "R needs diameter: %v", err)
	}
	cx, err := p.number()
	if err != nil {
		return p.errc("bad-operand", "R needs cx: %v", err)
	}
	cy, err := p.number()
	if err != nil {
		return p.errc("bad-operand", "R needs cy: %v", err)
	}
	if err := p.endCommand(); err != nil {
		return err
	}
	if !p.requireLayer("roundflash") {
		return nil
	}
	// Approximate the flash by its inscribed octagon (DESIGN.md §6).
	oct := geom.Octagon(p.scale(diam), geom.Pt(p.scale(cx), p.scale(cy)))
	return p.emit(Item{Kind: ItemPolygon, Layer: p.layer, Poly: oct})
}

func (p *parser) userExtension() error {
	// The digit has not been consumed yet.
	digit := p.src[p.pos]
	p.pos++
	switch digit {
	case '9':
		if p.pos < len(p.src) && p.src[p.pos] == '4' {
			p.pos++
			return p.label()
		}
		// "9 name;" — symbol name.
		name, err := p.wordBytes()
		if err != nil {
			return p.errc("bad-operand", "9 needs a name: %v", err)
		}
		if p.cur != nil {
			p.cur.Name = p.intern(name)
		} else {
			p.warnc("ignored-command", "symbol name %q outside symbol definition ignored", name)
		}
		return p.endCommand()
	default:
		p.warnc("ignored-command", "user extension %q skipped", digit)
		return p.skipToSemicolon()
	}
}

// label parses "94 name x y [layer];" which attaches a user name to
// the electrical node at (x, y) — Sproull's "Names in CIF" convention
// that ACE uses for net naming.
func (p *parser) label() error {
	name, err := p.wordBytes()
	if err != nil {
		return p.errc("bad-operand", "94 needs a name: %v", err)
	}
	x, err := p.number()
	if err != nil {
		return p.errc("bad-operand", "94 needs x: %v", err)
	}
	y, err := p.number()
	if err != nil {
		return p.errc("bad-operand", "94 needs y: %v", err)
	}
	it := Item{Kind: ItemLabel, Name: p.intern(name), At: geom.Pt(p.scale(x), p.scale(y))}
	if w, ok := p.tryWordBytes(); ok {
		if l, lok := tech.LayerByCIFNameBytes(w); lok {
			it.Layer = l
			it.HasLayer = true
		} else {
			p.warnc("unknown-layer", "label %q names unknown layer %q", it.Name, w)
		}
	}
	if err := p.endCommand(); err != nil {
		return err
	}
	return p.emit(it)
}

func (p *parser) emit(it Item) error {
	if p.ovf {
		// The command's scale arithmetic overflowed: its coordinates
		// are garbage, so nothing is emitted. run() raises (strict) or
		// records (lenient) the located overflow error.
		return nil
	}
	p.items++
	if err := p.limits.CheckBoxes(guard.StageParse, p.items); err != nil {
		return fmt.Errorf("cif: line %d: %w", p.line+1, err)
	}
	if p.cur != nil {
		p.itemArena = append(p.itemArena, it)
	} else {
		p.file.Top = append(p.file.Top, it)
	}
	return nil
}

func (p *parser) requireLayer(what string) bool {
	if !p.hasLayer {
		p.warnc("no-layer", "%s before any L command ignored", what)
		return false
	}
	return true
}

func (p *parser) scale(v int64) int64 {
	if p.scaleA == 1 && p.scaleB == 1 {
		return v
	}
	prod, ok := geom.MulOK(v, p.scaleA)
	if !ok {
		// Absurd DS scales must become parse errors, not wrapped
		// coordinates; run() turns the flag into a located error.
		p.ovf = true
		return 0
	}
	return prod / p.scaleB
}

// ---- low-level scanning ----

func upper(c byte) byte {
	if c >= 'a' && c <= 'z' {
		return c - 'a' + 'A'
	}
	return c
}

func isDigit(c byte) bool  { return c >= '0' && c <= '9' }
func isLetter(c byte) bool { return c >= 'A' && c <= 'Z' || c >= 'a' && c <= 'z' }

// skipBlanks advances over separator characters (whitespace, commas —
// anything that cannot start a command or operand).
func (p *parser) skipBlanks() {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == '\n' {
			p.line++
			p.pos++
			p.lineStart = p.pos
			continue
		}
		if c == ' ' || c == '\t' || c == '\r' || c == ',' {
			p.pos++
			continue
		}
		return
	}
}

func (p *parser) skipComment() error {
	depth := 0
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case '(':
			depth++
		case ')':
			depth--
			if depth == 0 {
				p.pos++
				return nil
			}
		case '\n':
			p.line++
			p.lineStart = p.pos + 1
		}
		p.pos++
	}
	return p.errc("unterminated-comment", "unterminated comment")
}

func (p *parser) skipToSemicolon() error {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == ';' {
			p.pos++
			return nil
		}
		if c == '\n' {
			p.line++
			p.lineStart = p.pos + 1
		}
		p.pos++
	}
	return p.errc("unterminated-command", "unterminated command")
}

// endCommand consumes separators up to and including the terminating
// semicolon.
func (p *parser) endCommand() error {
	p.skipBlanks()
	if p.pos >= len(p.src) || p.src[p.pos] != ';' {
		if p.pos < len(p.src) {
			return p.errc("missing-semicolon", "expected ';', found %q", p.src[p.pos])
		}
		return p.errc("missing-semicolon", "expected ';', found end of input")
	}
	p.pos++
	p.semiConsumed = true
	return nil
}

func (p *parser) number() (int64, error) {
	n, ok := p.tryNumber()
	if !ok {
		if p.pos < len(p.src) {
			return 0, fmt.Errorf("expected number, found %q", p.src[p.pos])
		}
		return 0, fmt.Errorf("expected number, found end of input")
	}
	return n, nil
}

func (p *parser) tryNumber() (int64, bool) {
	p.skipBlanks()
	i := p.pos
	neg := false
	if i < len(p.src) && p.src[i] == '-' {
		neg = true
		i++
	}
	if i >= len(p.src) || !isDigit(p.src[i]) {
		return 0, false
	}
	var v int64
	for i < len(p.src) && isDigit(p.src[i]) {
		if v > (math.MaxInt64-9)/10 {
			// A literal too large for int64: flag it rather than
			// silently wrapping; run() raises a located error.
			p.ovf = true
			v = math.MaxInt64 / 2
		} else {
			v = v*10 + int64(p.src[i]-'0')
		}
		i++
	}
	p.pos = i
	if neg {
		v = -v
	}
	return v, true
}

func (p *parser) wordBytes() ([]byte, error) {
	w, ok := p.tryWordBytes()
	if !ok {
		return nil, fmt.Errorf("expected word")
	}
	return w, nil
}

// points reads pairs of numbers until the terminating semicolon is in
// sight. The vertices are carved out of the shared point arena; the
// returned slice is capacity-capped so the caller owns it.
func (p *parser) points() ([]geom.Point, error) {
	mark := len(p.ptArena)
	for {
		x, ok := p.tryNumber()
		if !ok {
			n := len(p.ptArena)
			if n == mark {
				return nil, nil
			}
			return p.ptArena[mark:n:n], nil
		}
		y, err := p.number()
		if err != nil {
			p.ptArena = p.ptArena[:mark]
			return nil, p.errc("bad-operand", "point needs both coordinates: %v", err)
		}
		p.ptArena = append(p.ptArena, geom.Pt(p.scale(x), p.scale(y)))
	}
}

// tryWordBytes scans a word and returns it as a sub-slice of the
// source — no allocation. Callers that retain the word must intern it.
func (p *parser) tryWordBytes() ([]byte, bool) {
	p.skipBlanks()
	i := p.pos
	for i < len(p.src) {
		c := p.src[i]
		if c == ';' || c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == ',' || c == '(' {
			break
		}
		i++
	}
	if i == p.pos {
		return nil, false
	}
	w := p.src[p.pos:i]
	p.pos = i
	return w, true
}

// checkSemantics validates calls and detects definition cycles —
// strict mode's whole-file validation, unchanged: its messages are the
// historical ones, byte for byte.
func checkSemantics(f *File) error {
	var undefined []int
	check := func(items []Item) {
		for _, it := range items {
			if it.Kind == ItemCall {
				if _, ok := f.Symbols[it.SymbolID]; !ok {
					undefined = append(undefined, it.SymbolID)
				}
			}
		}
	}
	check(f.Top)
	for _, s := range f.Symbols {
		check(s.Items)
	}
	if len(undefined) > 0 {
		return &StructError{Msg: fmt.Sprintf("cif: call to undefined symbol(s) %v", undefined)}
	}

	// Cycle detection over the call graph.
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := map[int]int{}
	var cycle []int
	var visit func(id int) bool
	visit = func(id int) bool {
		switch color[id] {
		case grey:
			cycle = append(cycle, id)
			return false
		case black:
			return true
		}
		color[id] = grey
		for _, it := range f.Symbols[id].Items {
			if it.Kind == ItemCall && !visit(it.SymbolID) {
				return false
			}
		}
		color[id] = black
		return true
	}
	for id := range f.Symbols {
		if !visit(id) {
			return &StructError{Msg: fmt.Sprintf("cif: recursive symbol definition involving DS %d", cycle[0])}
		}
	}
	return nil
}

// lenientSemantics is checkSemantics' fail-soft counterpart: calls to
// undefined symbols become Error diagnostics (the front ends drop such
// calls, so the file stays extractable), and recursive definitions are
// broken by dropping the back-edge call, again with a diagnostic.
// Traversal is in sorted-id order so the diagnostics — and the choice
// of dropped call in a multi-symbol cycle — are deterministic.
func lenientSemantics(f *File) {
	ids := make([]int, 0, len(f.Symbols))
	for id := range f.Symbols {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	undef := map[int]bool{}
	noteUndef := func(items []Item) {
		for _, it := range items {
			if it.Kind == ItemCall {
				if _, ok := f.Symbols[it.SymbolID]; !ok {
					undef[it.SymbolID] = true
				}
			}
		}
	}
	noteUndef(f.Top)
	for _, id := range ids {
		noteUndef(f.Symbols[id].Items)
	}
	undefIDs := make([]int, 0, len(undef))
	for id := range undef {
		undefIDs = append(undefIDs, id)
	}
	sort.Ints(undefIDs)
	for _, id := range undefIDs {
		f.Diagnostics.Add(diag.New(diag.Error, guard.StageParse, "undefined-symbol",
			fmt.Sprintf("call to undefined symbol %d dropped", id)))
	}
	if len(undef) > 0 {
		dropUndefined := func(items []Item) []Item {
			var kept []Item
			dropped := false
			for i, it := range items {
				if it.Kind == ItemCall && undef[it.SymbolID] {
					if !dropped {
						kept = append(kept, items[:i]...)
						dropped = true
					}
					continue
				}
				if dropped {
					kept = append(kept, it)
				}
			}
			if dropped {
				return kept
			}
			return items
		}
		f.Top = dropUndefined(f.Top)
		for _, id := range ids {
			f.Symbols[id].Items = dropUndefined(f.Symbols[id].Items)
		}
	}

	// Cycle breaking: depth-first over the call graph; a call whose
	// target is on the current DFS path is a back edge and is removed
	// from its containing symbol.
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := map[int]int{}
	var visit func(id int)
	visit = func(id int) {
		color[id] = grey
		sym := f.Symbols[id]
		var kept []Item
		dropped := false
		for i, it := range sym.Items {
			backEdge := false
			if it.Kind == ItemCall {
				if tgt, ok := f.Symbols[it.SymbolID]; ok {
					switch color[tgt.ID] {
					case grey:
						f.Diagnostics.Add(diag.New(diag.Error, guard.StageParse, "recursive-symbol",
							fmt.Sprintf("recursive symbol definition involving DS %d; call from DS %d dropped",
								it.SymbolID, id)))
						backEdge = true
					case white:
						visit(it.SymbolID)
					}
				}
			}
			if backEdge {
				if !dropped {
					// Copy-on-first-drop: acyclic files never pay for
					// the filtered slice.
					kept = append(kept, sym.Items[:i]...)
					dropped = true
				}
				continue
			}
			if dropped {
				kept = append(kept, it)
			}
		}
		if dropped {
			sym.Items = kept
		}
		color[id] = black
	}
	for _, id := range ids {
		if color[id] == white {
			visit(id)
		}
	}
}

// TopSymbol returns the effective top of the design. If the file has
// top-level items they are the top; otherwise, the unique symbol that
// is never called is the top. When several symbols are uncalled the
// highest-numbered one wins (matching common practice), with a warning
// via the second return.
func (f *File) TopSymbol() ([]Item, string) {
	if len(f.Top) > 0 {
		return f.Top, ""
	}
	called := map[int]bool{}
	for _, s := range f.Symbols {
		for _, it := range s.Items {
			if it.Kind == ItemCall {
				called[it.SymbolID] = true
			}
		}
	}
	var roots []int
	for id := range f.Symbols {
		if !called[id] {
			roots = append(roots, id)
		}
	}
	if len(roots) == 0 {
		return nil, "no top-level geometry and no uncalled symbol"
	}
	best := roots[0]
	for _, id := range roots[1:] {
		if id > best {
			best = id
		}
	}
	warn := ""
	if len(roots) > 1 {
		warn = fmt.Sprintf("multiple uncalled symbols %v; using DS %d", roots, best)
	}
	return []Item{{Kind: ItemCall, SymbolID: best, Trans: geom.Identity}}, warn
}

// Stats summarises a file for reporting.
type Stats struct {
	Symbols  int
	Calls    int
	Boxes    int
	Polygons int
	Wires    int
	Labels   int
}

// FileStats counts the file's definition-level contents (without
// instantiation).
func FileStats(f *File) Stats {
	var s Stats
	count := func(items []Item) {
		for _, it := range items {
			switch it.Kind {
			case ItemBox:
				s.Boxes++
			case ItemPolygon:
				s.Polygons++
			case ItemWire:
				s.Wires++
			case ItemCall:
				s.Calls++
			case ItemLabel:
				s.Labels++
			}
		}
	}
	s.Symbols = len(f.Symbols)
	count(f.Top)
	for _, sym := range f.Symbols {
		count(sym.Items)
	}
	return s
}

// String renders stats compactly.
func (s Stats) String() string {
	return strings.TrimSpace(fmt.Sprintf(
		"symbols=%d calls=%d boxes=%d polygons=%d wires=%d labels=%d",
		s.Symbols, s.Calls, s.Boxes, s.Polygons, s.Wires, s.Labels))
}
