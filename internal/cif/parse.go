package cif

import (
	"fmt"
	"io"
	"math"
	"strings"

	"ace/internal/geom"
	"ace/internal/guard"
	"ace/internal/tech"
)

// ParseOptions harden a parse against hostile input. The zero value
// imposes no budgets (beyond the overflow checks, which are always
// on).
type ParseOptions struct {
	// Limits.MaxBoxes caps the number of geometry items (boxes,
	// polygons, wires, calls, labels) the parser will accept; excess
	// input fails with a line-located *guard.LimitError.
	Limits guard.Limits
}

// Parse reads a complete CIF file from r.
func Parse(r io.Reader) (*File, error) {
	return ParseReaderOpts(r, ParseOptions{})
}

// ParseReaderOpts reads a complete CIF file from r under budgets.
func ParseReaderOpts(r io.Reader, opt ParseOptions) (*File, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return ParseBytesOpts(data, opt)
}

// ParseString parses CIF from a string.
func ParseString(s string) (*File, error) { return ParseBytes([]byte(s)) }

// ParseBytes parses CIF from a byte slice.
func ParseBytes(data []byte) (*File, error) {
	return ParseBytesOpts(data, ParseOptions{})
}

// ParseBytesOpts parses CIF from a byte slice under budgets. A parser
// panic (an internal bug tripped by malformed input) surfaces as a
// *guard.PanicError instead of crashing the caller.
func ParseBytesOpts(data []byte, opt ParseOptions) (f *File, err error) {
	defer guard.Recover(guard.StageParse, &err)
	if err := guard.Inject(guard.StageParse); err != nil {
		return nil, err
	}
	p := &parser{
		src:    data,
		limits: opt.Limits,
		file:   &File{Symbols: map[int]*Symbol{}},
	}
	if err := p.run(); err != nil {
		return nil, err
	}
	if err := checkSemantics(p.file); err != nil {
		return nil, err
	}
	return p.file, nil
}

type parser struct {
	src  []byte
	pos  int
	line int

	file *File

	cur      *Symbol // nil when at top level
	curMark  int     // itemArena start of the open symbol's items
	layer    tech.Layer
	hasLayer bool
	scaleA   int64 // DS scale numerator (1 at top level)
	scaleB   int64 // DS scale denominator
	ended    bool

	limits guard.Limits
	items  int64 // geometry items emitted, against Limits.MaxBoxes
	ovf    bool  // a scale or literal overflowed; fail at command end

	// Allocation arenas (see "allocation discipline" below): items of
	// the open symbol accumulate in itemArena and are sliced out at DF;
	// polygon/wire vertices accumulate in ptArena; Symbol structs come
	// from fixed-size blocks; words that must outlive the parse are
	// interned so repeated names cost one allocation total.
	itemArena []Item
	ptArena   []geom.Point
	symBlock  []Symbol
	interned  map[string]string
}

// Allocation discipline. The parser is the first stage of the ingest
// pipeline and runs over multi-megabyte files, so the hot loop must
// not allocate per command:
//
//   - the lexer hands out sub-slices of src (tryWordBytes); the only
//     words converted to strings are names that outlive the parse,
//     and those are interned;
//   - a symbol's items are appended to a shared arena and sliced out
//     (three-index, so the view cannot be appended into) when DF
//     closes the symbol — one growth chain for the whole file instead
//     of one per symbol;
//   - polygon and wire vertices use the same trick on ptArena;
//   - Symbol structs are carved from 64-entry blocks to keep pointer
//     stability without a per-symbol allocation.
//
// BenchmarkParseBytes tracks allocs/op for regressions.

const symBlockSize = 64

func (p *parser) newSymbol(id int) *Symbol {
	if len(p.symBlock) == cap(p.symBlock) {
		p.symBlock = make([]Symbol, 0, symBlockSize)
	}
	p.symBlock = append(p.symBlock, Symbol{ID: id})
	return &p.symBlock[len(p.symBlock)-1]
}

// intern returns w as a string, allocating only the first time a given
// word is seen.
func (p *parser) intern(w []byte) string {
	if s, ok := p.interned[string(w)]; ok {
		return s
	}
	if p.interned == nil {
		p.interned = make(map[string]string, 16)
	}
	s := string(w)
	p.interned[s] = s
	return s
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("cif: line %d: %s", p.line+1, fmt.Sprintf(format, args...))
}

func (p *parser) warnf(format string, args ...any) {
	p.file.Warnings = append(p.file.Warnings,
		fmt.Sprintf("line %d: %s", p.line+1, fmt.Sprintf(format, args...)))
}

func (p *parser) run() error {
	p.scaleA, p.scaleB = 1, 1
	for {
		p.skipBlanks()
		if p.pos >= len(p.src) {
			if p.cur != nil {
				return p.errf("unterminated symbol definition DS %d", p.cur.ID)
			}
			return nil
		}
		if p.ended {
			// Everything after E is ignored per the spec.
			return nil
		}
		c := p.src[p.pos]
		switch {
		case c == ';':
			p.pos++ // empty command
		case c == '(':
			if err := p.skipComment(); err != nil {
				return err
			}
		case c >= '0' && c <= '9':
			if err := p.userExtension(); err != nil {
				return err
			}
		case c >= 'A' && c <= 'Z' || c >= 'a' && c <= 'z':
			if err := p.command(); err != nil {
				return err
			}
		default:
			return p.errf("unexpected character %q", c)
		}
		if p.ovf {
			return fmt.Errorf("cif: line %d: coordinate arithmetic under DS scale %d/%d: %w",
				p.line+1, p.scaleA, p.scaleB, geom.ErrOverflow)
		}
	}
}

func (p *parser) command() error {
	c := upper(p.src[p.pos])
	p.pos++
	switch c {
	case 'D':
		p.skipBlanks()
		if p.pos >= len(p.src) {
			return p.errf("truncated D command")
		}
		switch upper(p.src[p.pos]) {
		case 'S':
			p.pos++
			return p.defineStart()
		case 'F':
			p.pos++
			return p.defineFinish()
		case 'D':
			p.pos++
			_, _ = p.number() // symbol number
			p.warnf("DD (delete definition) ignored")
			return p.endCommand()
		}
		return p.errf("unknown D command")
	case 'C':
		return p.call()
	case 'L':
		return p.layerCmd()
	case 'B':
		return p.box()
	case 'P':
		return p.polygon()
	case 'W':
		return p.wire()
	case 'R':
		return p.roundFlash()
	case 'E':
		p.ended = true
		if p.cur != nil {
			return p.errf("E inside symbol definition")
		}
		return nil
	}
	return p.errf("unknown command %q", c)
}

func (p *parser) defineStart() error {
	if p.cur != nil {
		return p.errf("nested DS (symbol %d still open)", p.cur.ID)
	}
	id, err := p.number()
	if err != nil {
		return p.errf("DS needs a symbol number: %v", err)
	}
	a, b := int64(1), int64(1)
	if n, ok := p.tryNumber(); ok {
		a = n
		m, ok2 := p.tryNumber()
		if !ok2 {
			return p.errf("DS scale needs both a and b")
		}
		b = m
		if a <= 0 || b <= 0 {
			return p.errf("DS scale must be positive, got %d/%d", a, b)
		}
	}
	if _, dup := p.file.Symbols[int(id)]; dup {
		return p.errf("symbol %d defined twice", id)
	}
	p.cur = p.newSymbol(int(id))
	p.curMark = len(p.itemArena)
	p.file.Symbols[int(id)] = p.cur
	p.scaleA, p.scaleB = a, b
	return p.endCommand()
}

func (p *parser) defineFinish() error {
	if p.cur == nil {
		return p.errf("DF without DS")
	}
	// Slice the symbol's items out of the arena. The three-index form
	// caps the view so appending to sym.Items can never scribble over a
	// later symbol's items.
	if n := len(p.itemArena); n > p.curMark {
		p.cur.Items = p.itemArena[p.curMark:n:n]
	}
	p.cur = nil
	p.scaleA, p.scaleB = 1, 1
	return p.endCommand()
}

func (p *parser) call() error {
	id, err := p.number()
	if err != nil {
		return p.errf("C needs a symbol number: %v", err)
	}
	tr := geom.Identity
	for {
		p.skipBlanks()
		if p.pos >= len(p.src) {
			return p.errf("unterminated call")
		}
		switch upper(p.src[p.pos]) {
		case ';':
			p.pos++
			return p.emit(Item{Kind: ItemCall, SymbolID: int(id), Trans: tr})
		case 'T':
			p.pos++
			x, err := p.number()
			if err != nil {
				return p.errf("T needs x: %v", err)
			}
			y, err := p.number()
			if err != nil {
				return p.errf("T needs y: %v", err)
			}
			if tr, err = tr.ThenChecked(geom.Translate(p.scale(x), p.scale(y))); err != nil {
				return fmt.Errorf("cif: line %d: call translation: %w", p.line+1, err)
			}
		case 'M':
			p.pos++
			p.skipBlanks()
			if p.pos >= len(p.src) {
				return p.errf("M needs an axis")
			}
			switch upper(p.src[p.pos]) {
			case 'X':
				p.pos++
				tr = tr.Then(geom.MirrorX())
			case 'Y':
				p.pos++
				tr = tr.Then(geom.MirrorY())
			default:
				return p.errf("M needs X or Y")
			}
		case 'R':
			p.pos++
			a, err := p.number()
			if err != nil {
				return p.errf("R needs a: %v", err)
			}
			b, err := p.number()
			if err != nil {
				return p.errf("R needs b: %v", err)
			}
			rot, snapped := geom.ApproxRotation(a, b)
			if snapped {
				p.warnf("rotation (%d,%d) snapped to nearest axis", a, b)
			}
			tr = tr.Then(rot)
		default:
			return p.errf("unexpected %q in call transformation list", p.src[p.pos])
		}
	}
}

func (p *parser) layerCmd() error {
	name, err := p.wordBytes()
	if err != nil {
		return p.errf("L needs a layer name: %v", err)
	}
	l, ok := tech.LayerByCIFNameBytes(name)
	if !ok {
		p.warnf("unknown layer %q; geometry on it will be ignored", name)
		p.hasLayer = false
		return p.endCommand()
	}
	p.layer = l
	p.hasLayer = true
	return p.endCommand()
}

func (p *parser) box() error {
	length, err := p.number()
	if err != nil {
		return p.errf("B needs length: %v", err)
	}
	width, err := p.number()
	if err != nil {
		return p.errf("B needs width: %v", err)
	}
	cx, err := p.number()
	if err != nil {
		return p.errf("B needs cx: %v", err)
	}
	cy, err := p.number()
	if err != nil {
		return p.errf("B needs cy: %v", err)
	}
	var dx, dy int64
	hasDir := false
	if n, ok := p.tryNumber(); ok {
		dx = n
		dy, err = p.number()
		if err != nil {
			return p.errf("B direction needs dy: %v", err)
		}
		hasDir = true
	}
	if err := p.endCommand(); err != nil {
		return err
	}
	if length < 0 || width < 0 {
		return p.errf("negative box dimensions %d x %d", length, width)
	}
	if !p.requireLayer("box") {
		return nil
	}
	sl, sw, scx, scy := p.scale(length), p.scale(width), p.scale(cx), p.scale(cy)
	// The corner arithmetic is centre ± extent; reject it up front when
	// it would wrap rather than emit a folded rectangle.
	if _, ok1 := geom.AddOK(scx, sl); !ok1 {
		p.ovf = true
	} else if _, ok2 := geom.AddOK(scx, -sl); !ok2 {
		p.ovf = true
	} else if _, ok3 := geom.AddOK(scy, sw); !ok3 {
		p.ovf = true
	} else if _, ok4 := geom.AddOK(scy, -sw); !ok4 {
		p.ovf = true
	}
	if p.ovf {
		return fmt.Errorf("cif: line %d: box corners: %w", p.line+1, geom.ErrOverflow)
	}
	r := geom.RectCWH(sl, sw, geom.Pt(scx, scy))
	if hasDir && !(dy == 0 && dx > 0) {
		// Rotated box: rotate the corners about the centre.
		rot, snapped := geom.ApproxRotation(dx, dy)
		if snapped {
			p.warnf("box direction (%d,%d) snapped to nearest axis", dx, dy)
		}
		c := r.Center()
		tr := geom.Translate(-c.X, -c.Y).Then(rot).Then(geom.Translate(c.X, c.Y))
		r = tr.ApplyRect(r)
	}
	return p.emit(Item{Kind: ItemBox, Layer: p.layer, Box: r})
}

func (p *parser) polygon() error {
	pts, err := p.points()
	if err != nil {
		return err
	}
	if err := p.endCommand(); err != nil {
		return err
	}
	if len(pts) < 3 {
		return p.errf("polygon needs at least 3 points, got %d", len(pts))
	}
	if !p.requireLayer("polygon") {
		return nil
	}
	return p.emit(Item{Kind: ItemPolygon, Layer: p.layer, Poly: geom.Polygon(pts)})
}

func (p *parser) wire() error {
	width, err := p.number()
	if err != nil {
		return p.errf("W needs width: %v", err)
	}
	pts, err := p.points()
	if err != nil {
		return err
	}
	if err := p.endCommand(); err != nil {
		return err
	}
	if len(pts) == 0 {
		return p.errf("wire needs at least 1 point")
	}
	if !p.requireLayer("wire") {
		return nil
	}
	return p.emit(Item{Kind: ItemWire, Layer: p.layer,
		Wire: geom.Wire{Width: p.scale(width), Path: pts}})
}

func (p *parser) roundFlash() error {
	diam, err := p.number()
	if err != nil {
		return p.errf("R needs diameter: %v", err)
	}
	cx, err := p.number()
	if err != nil {
		return p.errf("R needs cx: %v", err)
	}
	cy, err := p.number()
	if err != nil {
		return p.errf("R needs cy: %v", err)
	}
	if err := p.endCommand(); err != nil {
		return err
	}
	if !p.requireLayer("roundflash") {
		return nil
	}
	// Approximate the flash by its inscribed octagon (DESIGN.md §6).
	oct := geom.Octagon(p.scale(diam), geom.Pt(p.scale(cx), p.scale(cy)))
	return p.emit(Item{Kind: ItemPolygon, Layer: p.layer, Poly: oct})
}

func (p *parser) userExtension() error {
	// The digit has not been consumed yet.
	digit := p.src[p.pos]
	p.pos++
	switch digit {
	case '9':
		if p.pos < len(p.src) && p.src[p.pos] == '4' {
			p.pos++
			return p.label()
		}
		// "9 name;" — symbol name.
		name, err := p.wordBytes()
		if err != nil {
			return p.errf("9 needs a name: %v", err)
		}
		if p.cur != nil {
			p.cur.Name = p.intern(name)
		} else {
			p.warnf("symbol name %q outside symbol definition ignored", name)
		}
		return p.endCommand()
	default:
		p.warnf("user extension %q skipped", digit)
		return p.skipToSemicolon()
	}
}

// label parses "94 name x y [layer];" which attaches a user name to
// the electrical node at (x, y) — Sproull's "Names in CIF" convention
// that ACE uses for net naming.
func (p *parser) label() error {
	name, err := p.wordBytes()
	if err != nil {
		return p.errf("94 needs a name: %v", err)
	}
	x, err := p.number()
	if err != nil {
		return p.errf("94 needs x: %v", err)
	}
	y, err := p.number()
	if err != nil {
		return p.errf("94 needs y: %v", err)
	}
	it := Item{Kind: ItemLabel, Name: p.intern(name), At: geom.Pt(p.scale(x), p.scale(y))}
	if w, ok := p.tryWordBytes(); ok {
		if l, lok := tech.LayerByCIFNameBytes(w); lok {
			it.Layer = l
			it.HasLayer = true
		} else {
			p.warnf("label %q names unknown layer %q", it.Name, w)
		}
	}
	if err := p.endCommand(); err != nil {
		return err
	}
	return p.emit(it)
}

func (p *parser) emit(it Item) error {
	p.items++
	if err := p.limits.CheckBoxes(guard.StageParse, p.items); err != nil {
		return fmt.Errorf("cif: line %d: %w", p.line+1, err)
	}
	if p.cur != nil {
		p.itemArena = append(p.itemArena, it)
	} else {
		p.file.Top = append(p.file.Top, it)
	}
	return nil
}

func (p *parser) requireLayer(what string) bool {
	if !p.hasLayer {
		p.warnf("%s before any L command ignored", what)
		return false
	}
	return true
}

func (p *parser) scale(v int64) int64 {
	if p.scaleA == 1 && p.scaleB == 1 {
		return v
	}
	prod, ok := geom.MulOK(v, p.scaleA)
	if !ok {
		// Absurd DS scales must become parse errors, not wrapped
		// coordinates; run() turns the flag into a located error.
		p.ovf = true
		return 0
	}
	return prod / p.scaleB
}

// ---- low-level scanning ----

func upper(c byte) byte {
	if c >= 'a' && c <= 'z' {
		return c - 'a' + 'A'
	}
	return c
}

func isDigit(c byte) bool  { return c >= '0' && c <= '9' }
func isLetter(c byte) bool { return c >= 'A' && c <= 'Z' || c >= 'a' && c <= 'z' }

// skipBlanks advances over separator characters (whitespace, commas —
// anything that cannot start a command or operand).
func (p *parser) skipBlanks() {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == '\n' {
			p.line++
			p.pos++
			continue
		}
		if c == ' ' || c == '\t' || c == '\r' || c == ',' {
			p.pos++
			continue
		}
		return
	}
}

func (p *parser) skipComment() error {
	depth := 0
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case '(':
			depth++
		case ')':
			depth--
			if depth == 0 {
				p.pos++
				return nil
			}
		case '\n':
			p.line++
		}
		p.pos++
	}
	return p.errf("unterminated comment")
}

func (p *parser) skipToSemicolon() error {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == ';' {
			p.pos++
			return nil
		}
		if c == '\n' {
			p.line++
		}
		p.pos++
	}
	return p.errf("unterminated command")
}

// endCommand consumes separators up to and including the terminating
// semicolon.
func (p *parser) endCommand() error {
	p.skipBlanks()
	if p.pos >= len(p.src) || p.src[p.pos] != ';' {
		if p.pos < len(p.src) {
			return p.errf("expected ';', found %q", p.src[p.pos])
		}
		return p.errf("expected ';', found end of input")
	}
	p.pos++
	return nil
}

func (p *parser) number() (int64, error) {
	n, ok := p.tryNumber()
	if !ok {
		if p.pos < len(p.src) {
			return 0, fmt.Errorf("expected number, found %q", p.src[p.pos])
		}
		return 0, fmt.Errorf("expected number, found end of input")
	}
	return n, nil
}

func (p *parser) tryNumber() (int64, bool) {
	p.skipBlanks()
	i := p.pos
	neg := false
	if i < len(p.src) && p.src[i] == '-' {
		neg = true
		i++
	}
	if i >= len(p.src) || !isDigit(p.src[i]) {
		return 0, false
	}
	var v int64
	for i < len(p.src) && isDigit(p.src[i]) {
		if v > (math.MaxInt64-9)/10 {
			// A literal too large for int64: flag it rather than
			// silently wrapping; run() raises a located error.
			p.ovf = true
			v = math.MaxInt64 / 2
		} else {
			v = v*10 + int64(p.src[i]-'0')
		}
		i++
	}
	p.pos = i
	if neg {
		v = -v
	}
	return v, true
}

func (p *parser) wordBytes() ([]byte, error) {
	w, ok := p.tryWordBytes()
	if !ok {
		return nil, fmt.Errorf("expected word")
	}
	return w, nil
}

// points reads pairs of numbers until the terminating semicolon is in
// sight. The vertices are carved out of the shared point arena; the
// returned slice is capacity-capped so the caller owns it.
func (p *parser) points() ([]geom.Point, error) {
	mark := len(p.ptArena)
	for {
		x, ok := p.tryNumber()
		if !ok {
			n := len(p.ptArena)
			if n == mark {
				return nil, nil
			}
			return p.ptArena[mark:n:n], nil
		}
		y, err := p.number()
		if err != nil {
			p.ptArena = p.ptArena[:mark]
			return nil, p.errf("point needs both coordinates: %v", err)
		}
		p.ptArena = append(p.ptArena, geom.Pt(p.scale(x), p.scale(y)))
	}
}

// tryWordBytes scans a word and returns it as a sub-slice of the
// source — no allocation. Callers that retain the word must intern it.
func (p *parser) tryWordBytes() ([]byte, bool) {
	p.skipBlanks()
	i := p.pos
	for i < len(p.src) {
		c := p.src[i]
		if c == ';' || c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == ',' || c == '(' {
			break
		}
		i++
	}
	if i == p.pos {
		return nil, false
	}
	w := p.src[p.pos:i]
	p.pos = i
	return w, true
}

// checkSemantics validates calls and detects definition cycles.
func checkSemantics(f *File) error {
	var undefined []int
	check := func(items []Item) {
		for _, it := range items {
			if it.Kind == ItemCall {
				if _, ok := f.Symbols[it.SymbolID]; !ok {
					undefined = append(undefined, it.SymbolID)
				}
			}
		}
	}
	check(f.Top)
	for _, s := range f.Symbols {
		check(s.Items)
	}
	if len(undefined) > 0 {
		return fmt.Errorf("cif: call to undefined symbol(s) %v", undefined)
	}

	// Cycle detection over the call graph.
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := map[int]int{}
	var cycle []int
	var visit func(id int) bool
	visit = func(id int) bool {
		switch color[id] {
		case grey:
			cycle = append(cycle, id)
			return false
		case black:
			return true
		}
		color[id] = grey
		for _, it := range f.Symbols[id].Items {
			if it.Kind == ItemCall && !visit(it.SymbolID) {
				return false
			}
		}
		color[id] = black
		return true
	}
	for id := range f.Symbols {
		if !visit(id) {
			return fmt.Errorf("cif: recursive symbol definition involving DS %d", cycle[0])
		}
	}
	return nil
}

// TopSymbol returns the effective top of the design. If the file has
// top-level items they are the top; otherwise, the unique symbol that
// is never called is the top. When several symbols are uncalled the
// highest-numbered one wins (matching common practice), with a warning
// via the second return.
func (f *File) TopSymbol() ([]Item, string) {
	if len(f.Top) > 0 {
		return f.Top, ""
	}
	called := map[int]bool{}
	for _, s := range f.Symbols {
		for _, it := range s.Items {
			if it.Kind == ItemCall {
				called[it.SymbolID] = true
			}
		}
	}
	var roots []int
	for id := range f.Symbols {
		if !called[id] {
			roots = append(roots, id)
		}
	}
	if len(roots) == 0 {
		return nil, "no top-level geometry and no uncalled symbol"
	}
	best := roots[0]
	for _, id := range roots[1:] {
		if id > best {
			best = id
		}
	}
	warn := ""
	if len(roots) > 1 {
		warn = fmt.Sprintf("multiple uncalled symbols %v; using DS %d", roots, best)
	}
	return []Item{{Kind: ItemCall, SymbolID: best, Trans: geom.Identity}}, warn
}

// Stats summarises a file for reporting.
type Stats struct {
	Symbols  int
	Calls    int
	Boxes    int
	Polygons int
	Wires    int
	Labels   int
}

// FileStats counts the file's definition-level contents (without
// instantiation).
func FileStats(f *File) Stats {
	var s Stats
	count := func(items []Item) {
		for _, it := range items {
			switch it.Kind {
			case ItemBox:
				s.Boxes++
			case ItemPolygon:
				s.Polygons++
			case ItemWire:
				s.Wires++
			case ItemCall:
				s.Calls++
			case ItemLabel:
				s.Labels++
			}
		}
	}
	s.Symbols = len(f.Symbols)
	count(f.Top)
	for _, sym := range f.Symbols {
		count(sym.Items)
	}
	return s
}

// String renders stats compactly.
func (s Stats) String() string {
	return strings.TrimSpace(fmt.Sprintf(
		"symbols=%d calls=%d boxes=%d polygons=%d wires=%d labels=%d",
		s.Symbols, s.Calls, s.Boxes, s.Polygons, s.Wires, s.Labels))
}
