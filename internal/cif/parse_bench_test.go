package cif_test

import (
	"fmt"
	"testing"

	"ace/internal/cif"
	"ace/internal/gen"
)

// BenchmarkParseBytes measures the CIF parser on the rendered text of
// the shared benchmark chips. The parser is on the ingest hot path, so
// allocs/op is the headline number (BENCH_3.json records it): the
// byte-slice lexer must not allocate per word, and item/point arenas
// keep slice growth amortised.
func BenchmarkParseBytes(b *testing.B) {
	workloads := []gen.Workload{
		gen.MustBenchChip("cherry"),
		gen.MustBenchChip("dchip"),
		gen.MustBenchChip("riscb"),
		// The flat workload is where parse time dominates the pipeline
		// (ISSUE motivation): tens of thousands of B commands, no reuse.
		gen.Statistical(20000, 42),
	}
	for _, w := range workloads {
		data := []byte(cif.String(w.File))
		b.Run(fmt.Sprintf("%s/bytes=%d", w.Name, len(data)), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				if _, err := cif.ParseBytes(data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParseUserCommands isolates the word-heavy paths: layer
// switches, symbol names and point labels — the commands that used to
// allocate a string per word (parse.go's tryWord).
func BenchmarkParseUserCommands(b *testing.B) {
	var src []byte
	src = append(src, "DS 1; 9 cellname; L ND; B 10 10 0 0; DF;\n"...)
	for i := 0; i < 2000; i++ {
		src = append(src, fmt.Sprintf("L NP; B 4 4 %d 0; L NM; B 4 4 %d 8; 94 net%d %d 0 NM;\n", i*10, i*10, i%7, i*10)...)
	}
	src = append(src, "C 1;\nE\n"...)
	b.ReportAllocs()
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		if _, err := cif.ParseBytes(src); err != nil {
			b.Fatal(err)
		}
	}
}
