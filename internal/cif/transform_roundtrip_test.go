package cif

import (
	"testing"

	"ace/internal/geom"
)

// TestAllOrthogonalTransformsRoundTrip pushes every one of the eight
// orthogonal orientations (plus translation) through CIF text and
// back: the writer must find a T/M/R decomposition the parser maps to
// the same transformation.
func TestAllOrthogonalTransformsRoundTrip(t *testing.T) {
	r90, _ := geom.Rotate(0, 1)
	r180, _ := geom.Rotate(-1, 0)
	r270, _ := geom.Rotate(0, -1)
	rots := []geom.Transform{geom.Identity, r90, r180, r270}
	var all []geom.Transform
	for _, r := range rots {
		all = append(all, r, geom.MirrorX().Then(r))
	}

	probe := []geom.Point{geom.Pt(0, 0), geom.Pt(13, 5), geom.Pt(-7, 29)}
	for i, lin := range all {
		tr := lin.Then(geom.Translate(int64(100+i), int64(-50*i)))
		f := &File{Symbols: map[int]*Symbol{
			1: {ID: 1, Items: []Item{{Kind: ItemBox, Layer: 0, Box: geom.R(0, 0, 10, 10)}}},
		}}
		f.Top = append(f.Top, Item{Kind: ItemCall, SymbolID: 1, Trans: tr})
		text := String(f)
		back, err := ParseString(text)
		if err != nil {
			t.Fatalf("transform %d: reparse: %v\n%s", i, err, text)
		}
		got := back.Top[0].Trans
		for _, p := range probe {
			if got.Apply(p) != tr.Apply(p) {
				t.Fatalf("transform %d changed: %v vs %v at %v\n%s",
					i, got, tr, p, text)
			}
		}
	}
}

// TestWriterOddBoxes: odd-dimension boxes survive the centre-based
// CIF box encoding.
func TestWriterOddBoxes(t *testing.T) {
	f := &File{Symbols: map[int]*Symbol{}}
	boxes := []geom.Rect{
		geom.R(0, 0, 5, 3),
		geom.R(-7, -3, 2, 8),
		geom.R(1, 1, 2, 2),
	}
	for _, b := range boxes {
		f.Top = append(f.Top, Item{Kind: ItemBox, Layer: 0, Box: b})
	}
	back, err := ParseString(String(f))
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range boxes {
		if back.Top[i].Box != b {
			t.Fatalf("box %d: %v -> %v", i, b, back.Top[i].Box)
		}
	}
}
