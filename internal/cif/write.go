package cif

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"ace/internal/geom"
)

// Write emits the file as CIF text. Symbols are written in ascending
// id order followed by the top-level items and the E command. The
// output round-trips through Parse.
func Write(w io.Writer, f *File) error {
	bw := &errWriter{w: w}
	ids := make([]int, 0, len(f.Symbols))
	for id := range f.Symbols {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		s := f.Symbols[id]
		bw.printf("DS %d 1 1;\n", id)
		if s.Name != "" {
			bw.printf("9 %s;\n", s.Name)
		}
		writeItems(bw, s.Items)
		bw.printf("DF;\n")
	}
	writeItems(bw, f.Top)
	bw.printf("E\n")
	return bw.err
}

// String renders the file as CIF text.
func String(f *File) string {
	var sb strings.Builder
	_ = Write(&sb, f)
	return sb.String()
}

func writeItems(bw *errWriter, items []Item) {
	curLayer := -1
	setLayer := func(l int) {
		if l != curLayer {
			bw.printf("L %s;\n", itemLayerName(l))
			curLayer = l
		}
	}
	for _, it := range items {
		switch it.Kind {
		case ItemBox:
			setLayer(int(it.Layer))
			writeBox(bw, it.Box)
		case ItemPolygon:
			setLayer(int(it.Layer))
			bw.printf("P")
			for _, p := range it.Poly {
				bw.printf(" %d %d", p.X, p.Y)
			}
			bw.printf(";\n")
		case ItemWire:
			setLayer(int(it.Layer))
			bw.printf("W %d", it.Wire.Width)
			for _, p := range it.Wire.Path {
				bw.printf(" %d %d", p.X, p.Y)
			}
			bw.printf(";\n")
		case ItemCall:
			bw.printf("C %d%s;\n", it.SymbolID, transformText(it.Trans))
		case ItemLabel:
			if it.HasLayer {
				bw.printf("94 %s %d %d %s;\n", it.Name, it.At.X, it.At.Y, it.Layer.CIFName())
			} else {
				bw.printf("94 %s %d %d;\n", it.Name, it.At.X, it.At.Y)
			}
		}
	}
}

func writeBox(bw *errWriter, r geom.Rect) {
	l, wd := r.W(), r.H()
	c := r.Center()
	// RectCWH places the centre at floor for odd extents; emitting the
	// floored centre round-trips exactly for even extents (the normal
	// case for λ-aligned layout). Odd extents are written via corners
	// using a degenerate polygon-free form: adjust centre so that
	// RectCWH(l, w, c) == r.
	cx := r.XMin + l/2
	cy := r.YMin + wd/2
	_ = c
	bw.printf("B %d %d %d %d;\n", l, wd, cx, cy)
}

func transformText(t geom.Transform) string {
	if t.IsIdentity() {
		return ""
	}
	var sb strings.Builder
	// Decompose the orthogonal transform into (rotation/mirror) then
	// translation: linear part first, then T C F.
	lin := geom.Transform{A: t.A, B: t.B, D: t.D, E: t.E}
	switch {
	case lin == geom.Identity:
		// nothing
	case lin == geom.MirrorX():
		sb.WriteString(" M X")
	case lin == geom.MirrorY():
		sb.WriteString(" M Y")
	default:
		if r, ok := rotationVector(lin); ok {
			sb.WriteString(fmt.Sprintf(" R %d %d", r.X, r.Y))
		} else {
			// Mirror followed by rotation covers the remaining cases.
			mx := geom.MirrorX()
			rest := geom.Transform{
				A: lin.A*mx.A + lin.B*mx.D, B: lin.A*mx.B + lin.B*mx.E,
				D: lin.D*mx.A + lin.E*mx.D, E: lin.D*mx.B + lin.E*mx.E,
			}
			if r, ok := rotationVector(rest); ok {
				sb.WriteString(fmt.Sprintf(" M X R %d %d", r.X, r.Y))
			}
		}
	}
	if t.C != 0 || t.F != 0 {
		sb.WriteString(fmt.Sprintf(" T %d %d", t.C, t.F))
	}
	return sb.String()
}

func rotationVector(lin geom.Transform) (geom.Point, bool) {
	// A rotation maps (1,0) to (A, D) and (0,1) to (B, E) with the
	// proper orientation A*E - B*D = 1.
	if lin.A*lin.E-lin.B*lin.D != 1 {
		return geom.Point{}, false
	}
	return geom.Pt(lin.A, lin.D), true
}

func itemLayerName(l int) string {
	names := []string{"ND", "NP", "NM", "NC", "NB", "NI", "NG"}
	if l >= 0 && l < len(names) {
		return names[l]
	}
	return "NX"
}

type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
