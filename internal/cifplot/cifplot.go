// Package cifplot implements a flat, region-based circuit extractor in
// the style of Berkeley's cifplot circuit-analysis mode (Fitzpatrick,
// 1981) — ACE's second baseline in Table 5-2. The original program is
// lost; this stand-in reproduces its algorithmic profile: a correct
// flat extractor built on whole-region boolean operations and pairwise
// adjacency tests rather than a single incremental sweep. Its
// asymptotics are comparable to ACE's but its constants are several
// times larger (full-region intermediate results, repeated passes over
// the geometry), matching the paper's measured ordering
// ACE < Partlist < Cifplot.
package cifplot

import (
	"fmt"
	"sort"

	"ace/internal/build"
	"ace/internal/frontend"
	"ace/internal/geom"
	"ace/internal/netlist"
	"ace/internal/tech"
)

// Options configures extraction.
type Options struct {
	KeepGeometry bool
	Labels       []frontend.Label
}

// Counters reports work done.
type Counters struct {
	BoxesIn      int
	PairsChecked int64 // pairwise adjacency tests performed
	RegionRects  int   // rectangles in the derived material regions
}

// Result of an extraction.
type Result struct {
	Netlist  *netlist.Netlist
	Counters Counters
	Warnings []string
}

// ExtractBoxes runs the region-based extractor over a flat box list.
func ExtractBoxes(boxes []frontend.Box, opt Options) (*Result, error) {
	e := &engine{
		b: &build.Builder{KeepGeometry: opt.KeepGeometry},
	}
	e.counters.BoxesIn = len(boxes)

	// Phase 1: gather per-layer geometry.
	var perLayer [tech.NumLayers][]geom.Rect
	for _, bx := range boxes {
		perLayer[bx.Layer] = append(perLayer[bx.Layer], bx.Rect)
	}

	// Phase 2: whole-chip region algebra. Everything is canonicalised
	// up front — the "build the full region, then look at it" style
	// that gives this extractor its large constants.
	diff := geom.Canonicalize(perLayer[tech.Diff])
	poly := geom.Canonicalize(perLayer[tech.Poly])
	metal := geom.Canonicalize(perLayer[tech.Metal])
	buried := geom.Canonicalize(perLayer[tech.Buried])
	implant := geom.Canonicalize(perLayer[tech.Implant])
	cuts := geom.Canonicalize(perLayer[tech.Cut])

	overlap := geom.IntersectRegions(diff, poly)
	channel := geom.SubtractRegions(overlap, buried)
	burCon := geom.IntersectRegions(overlap, buried)
	diffCond := geom.SubtractRegions(diff, channel)
	e.counters.RegionRects = len(diff) + len(poly) + len(metal) +
		len(channel) + len(diffCond)

	// Phase 3: connected components per conducting material.
	metalNets := e.components(metal, tech.Metal)
	polyNets := e.components(poly, tech.Poly)
	diffNets := e.components(diffCond, tech.Diff)

	// Phase 4: inter-layer connections.
	for _, c := range cuts {
		hit := false
		for i, r := range metal {
			if !r.Overlaps(c) {
				continue
			}
			for j, p := range poly {
				e.counters.PairsChecked++
				if p.Overlaps(c) && p.Overlaps(r.Intersect(c)) {
					e.b.UnionNets(metalNets[i], polyNets[j])
					hit = true
				}
			}
			for j, d := range diffCond {
				e.counters.PairsChecked++
				if d.Overlaps(c) && d.Overlaps(r.Intersect(c)) {
					e.b.UnionNets(metalNets[i], diffNets[j])
					hit = true
				}
			}
		}
		_ = hit
	}
	for _, bc := range burCon {
		for j, p := range poly {
			e.counters.PairsChecked++
			if !p.Overlaps(bc) {
				continue
			}
			for k, d := range diffCond {
				e.counters.PairsChecked++
				if d.Overlaps(bc.Intersect(p)) || geom.ContactLen(d, bc.Intersect(p)) > 0 {
					e.b.UnionNets(polyNets[j], diffNets[k])
				}
			}
		}
	}

	// Phase 5: devices from channel components.
	devOf := e.deviceComponents(channel)
	for i, ch := range channel {
		dv := devOf[i]
		e.b.AddChannel(dv, ch)
		for _, im := range implant {
			e.counters.PairsChecked++
			ov := ch.Intersect(im)
			if !ov.Empty() {
				e.b.AddImplant(dv, ov.Area())
			}
		}
		for j, p := range poly {
			e.counters.PairsChecked++
			if p.Overlaps(ch) {
				e.b.AddGate(dv, polyNets[j])
			}
		}
		for j, d := range diffCond {
			e.counters.PairsChecked++
			if l := geom.ContactLen(d, ch); l > 0 && !d.Overlaps(ch) {
				e.b.AddTerm(dv, diffNets[j], l)
			}
		}
	}

	// Phase 6: labels.
	e.labels(opt.Labels, metal, metalNets, poly, polyNets, diffCond, diffNets)

	nl, _ := e.b.Finish()
	return &Result{
		Netlist:  nl,
		Counters: e.counters,
		Warnings: append(e.warnings, e.b.Warnings()...),
	}, nil
}

// Extract drains a front-end stream and extracts it.
func Extract(src interface {
	Next() (frontend.Box, bool)
}, opt Options) (*Result, error) {
	var boxes []frontend.Box
	for {
		b, ok := src.Next()
		if !ok {
			break
		}
		boxes = append(boxes, b)
	}
	return ExtractBoxes(boxes, opt)
}

type engine struct {
	b        *build.Builder
	counters Counters
	warnings []string
}

// components assigns one net element per rectangle and unions
// rectangles that share positive boundary. Rectangles come from
// Canonicalize, so they are disjoint and sorted by (YMin, XMin); a
// bucket index over y-bands limits the pairing.
func (e *engine) components(rects []geom.Rect, layer tech.Layer) []int32 {
	ids := make([]int32, len(rects))
	order := make([]int, len(rects))
	for i := range order {
		order[i] = i
	}
	// Sort by YMin for a sweep over candidate pairs.
	sort.Slice(order, func(a, b int) bool {
		ra, rb := rects[order[a]], rects[order[b]]
		if ra.YMin != rb.YMin {
			return ra.YMin < rb.YMin
		}
		return ra.XMin < rb.XMin
	})
	for _, i := range order {
		ids[i] = e.b.NewNet(geom.Pt(rects[i].XMin, rects[i].YMax))
		e.b.BetterLoc(ids[i], geom.Pt(rects[i].XMin, rects[i].YMax))
		if e.b.KeepGeometry {
			e.b.AddNetGeometry(ids[i], layer, rects[i])
		}
	}
	for ai := 0; ai < len(order); ai++ {
		i := order[ai]
		for bi := ai + 1; bi < len(order); bi++ {
			j := order[bi]
			if rects[j].YMin > rects[i].YMax {
				break // sorted by YMin: nothing later can touch i
			}
			e.counters.PairsChecked++
			if geom.Connected(rects[i], rects[j]) {
				e.b.UnionNets(ids[i], ids[j])
			}
		}
	}
	return ids
}

// deviceComponents groups channel rectangles into devices.
func (e *engine) deviceComponents(rects []geom.Rect) []int32 {
	ids := make([]int32, len(rects))
	for i := range rects {
		ids[i] = e.b.NewDev()
	}
	for i := 0; i < len(rects); i++ {
		for j := i + 1; j < len(rects); j++ {
			if rects[j].YMin > rects[i].YMax {
				break
			}
			e.counters.PairsChecked++
			if geom.Connected(rects[i], rects[j]) {
				e.b.UnionDevs(ids[i], ids[j])
			}
		}
	}
	return ids
}

func (e *engine) labels(labels []frontend.Label,
	metal []geom.Rect, metalNets []int32,
	poly []geom.Rect, polyNets []int32,
	diffC []geom.Rect, diffNets []int32) {
	find := func(rects []geom.Rect, ids []int32, p geom.Point) (int32, bool) {
		for i, r := range rects {
			if r.Contains(p) {
				return ids[i], true
			}
		}
		return 0, false
	}
	for _, lb := range labels {
		var id int32
		ok := false
		if lb.HasLayer {
			switch lb.Layer {
			case tech.Metal:
				id, ok = find(metal, metalNets, lb.At)
			case tech.Poly:
				id, ok = find(poly, polyNets, lb.At)
			case tech.Diff:
				id, ok = find(diffC, diffNets, lb.At)
			}
		} else {
			if id, ok = find(metal, metalNets, lb.At); !ok {
				if id, ok = find(poly, polyNets, lb.At); !ok {
					id, ok = find(diffC, diffNets, lb.At)
				}
			}
		}
		if !ok {
			e.warnings = append(e.warnings,
				fmt.Sprintf("label %q at %v matches no conducting geometry", lb.Name, lb.At))
			continue
		}
		e.b.NameNet(id, lb.Name)
	}
}
