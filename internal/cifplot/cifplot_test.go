package cifplot

import (
	"math/rand"
	"testing"

	"ace/internal/extract"
	"ace/internal/frontend"
	"ace/internal/gen"
	"ace/internal/geom"
	"ace/internal/netlist"
	"ace/internal/scan"
	"ace/internal/tech"
)

func box(l tech.Layer, x0, y0, x1, y1 int64) frontend.Box {
	return frontend.Box{Layer: l, Rect: geom.R(x0, y0, x1, y1)}
}

func TestTransistor(t *testing.T) {
	res, err := ExtractBoxes([]frontend.Box{
		box(tech.Diff, 0, 0, 100, 300),
		box(tech.Poly, -50, 100, 150, 200),
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	nl := res.Netlist
	if len(nl.Devices) != 1 || len(nl.Nets) != 3 {
		t.Fatalf("devices %d nets %d", len(nl.Devices), len(nl.Nets))
	}
	d := nl.Devices[0]
	if d.Length != 100 || d.Width != 100 || d.Type != tech.Enhancement {
		t.Fatalf("device %+v", d)
	}
}

func TestInverterMatchesACE(t *testing.T) {
	f := gen.Inverter()
	aceRes, err := extract.File(f, extract.Options{})
	if err != nil {
		t.Fatal(err)
	}
	stream, err := frontend.New(f, frontend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	boxes := stream.Drain()
	res, err := ExtractBoxes(boxes, Options{Labels: stream.Labels()})
	if err != nil {
		t.Fatal(err)
	}
	eq, reason := netlist.Equivalent(aceRes.Netlist, res.Netlist)
	if !eq {
		t.Fatalf("cifplot disagrees with ACE: %s\nACE:\n%s\ncifplot:\n%s",
			reason, aceRes.Netlist, res.Netlist)
	}
	for _, nm := range []string{"VDD", "GND", "INP", "OUT"} {
		if _, ok := res.Netlist.NetByName(nm); !ok {
			t.Fatalf("net %s missing", nm)
		}
	}
	// The L/W rule is shared, so sizes must agree exactly.
	for _, want := range [][2]int64{{400, 2800}, {1400, 400}} {
		found := false
		for _, d := range res.Netlist.Devices {
			if d.Length == want[0] && d.Width == want[1] {
				found = true
			}
		}
		if !found {
			t.Fatalf("no device with L=%d W=%d\n%s", want[0], want[1], res.Netlist)
		}
	}
}

// TestRandomDifferential cross-validates against the scanline
// extractor on random layouts — unlike the raster baseline, this one
// accepts unaligned geometry, so coordinates are arbitrary.
func TestRandomDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	layers := []tech.Layer{tech.Diff, tech.Poly, tech.Metal, tech.Cut, tech.Buried, tech.Implant}
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(22)
		boxes := make([]frontend.Box, n)
		for i := range boxes {
			l := layers[rng.Intn(len(layers))]
			x := int64(rng.Intn(900))
			y := int64(rng.Intn(900))
			boxes[i] = box(l, x, y, x+int64(20+rng.Intn(300)), y+int64(20+rng.Intn(300)))
		}
		cres, err := ExtractBoxes(boxes, Options{})
		if err != nil {
			t.Fatal(err)
		}
		sres, err := scan.Sweep(newSliceSource(boxes), scan.Options{})
		if err != nil {
			t.Fatal(err)
		}
		eq, reason := netlist.Equivalent(sres.Netlist, cres.Netlist)
		if !eq {
			t.Fatalf("trial %d: scan and cifplot disagree: %s\nboxes: %v\nscan:\n%s\ncifplot:\n%s",
				trial, reason, boxes, sres.Netlist, cres.Netlist)
		}
	}
}

type sliceSource struct {
	boxes []frontend.Box
	pos   int
}

func newSliceSource(boxes []frontend.Box) *sliceSource {
	s := &sliceSource{boxes: append([]frontend.Box(nil), boxes...)}
	for i := 1; i < len(s.boxes); i++ {
		for j := i; j > 0 && s.boxes[j].Rect.YMax > s.boxes[j-1].Rect.YMax; j-- {
			s.boxes[j], s.boxes[j-1] = s.boxes[j-1], s.boxes[j]
		}
	}
	return s
}

func (s *sliceSource) NextTop() (int64, bool) {
	if s.pos >= len(s.boxes) {
		return 0, false
	}
	return s.boxes[s.pos].Rect.YMax, true
}

func (s *sliceSource) Next() (frontend.Box, bool) {
	if s.pos >= len(s.boxes) {
		return frontend.Box{}, false
	}
	b := s.boxes[s.pos]
	s.pos++
	return b, true
}

func TestEmpty(t *testing.T) {
	res, err := ExtractBoxes(nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Netlist.Nets) != 0 {
		t.Fatal("expected empty netlist")
	}
}

func TestCountersProgress(t *testing.T) {
	res, err := ExtractBoxes([]frontend.Box{
		box(tech.Metal, 0, 0, 100, 100),
		box(tech.Metal, 100, 0, 200, 100),
		box(tech.Metal, 400, 0, 500, 100),
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.BoxesIn != 3 || res.Counters.PairsChecked == 0 {
		t.Fatalf("counters %+v", res.Counters)
	}
	if len(res.Netlist.Nets) != 2 {
		t.Fatalf("nets %d", len(res.Netlist.Nets))
	}
}
