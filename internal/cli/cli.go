// Package cli holds the glue shared by the ace and hext commands: the
// exit-code taxonomy and the diagnostics rendering conventions, so both
// binaries classify failures and print findings identically.
package cli

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"

	"ace/internal/diag"
	"ace/internal/guard"
	"ace/internal/store"
	"ace/internal/tile"
)

// Exit codes. Package flag already exits with 2 on a bad flag
// (flag.ExitOnError), which this taxonomy deliberately adopts as the
// usage code.
const (
	// ExitOK: extraction succeeded and no Error-severity diagnostics
	// were reported.
	ExitOK = 0

	// ExitFindings: the run produced Error-severity diagnostics (parse
	// damage in lenient mode, checker errors), or failed outright for a
	// reason with no more specific code.
	ExitFindings = 1

	// ExitUsage: bad command line (flag package convention).
	ExitUsage = 2

	// ExitTimeout: the -timeout budget expired (context deadline).
	ExitTimeout = 3

	// ExitLimit: a guard.Limits resource budget was exceeded.
	ExitLimit = 4

	// ExitCorrupt: stored data failed integrity verification — a
	// packed tile file (*tile.CorruptError) or a persistent-cache
	// entry (*store.CorruptError). Distinct from ExitFindings because
	// the input design may be fine; it is the on-disk artifact that
	// needs re-packing or re-populating.
	//
	// Only primary inputs (a -tiles file) and explicit verification
	// commands (hext -cache-verify, cifpack -verify) can exit with
	// this code. The persistent cache itself fails open: a damaged or
	// unreadable entry on the read path is quarantined and recomputed
	// (surfacing only in diskErrors counters), so cache disk faults
	// never classify a run as corrupt.
	ExitCorrupt = 5
)

// ExitCodeFor classifies a pipeline error: context cancellation or
// deadline → ExitTimeout, *guard.LimitError → ExitLimit, tile or
// store corruption → ExitCorrupt, anything else → ExitFindings.
// (Stage wrappers are unwrapped, so a LimitError inside a
// *guard.StageError still classifies as ExitLimit.)
func ExitCodeFor(err error) int {
	if err == nil {
		return ExitOK
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return ExitTimeout
	}
	var le *guard.LimitError
	if errors.As(err, &le) {
		return ExitLimit
	}
	var tc *tile.CorruptError
	var sc *store.CorruptError
	if errors.As(err, &tc) || errors.As(err, &sc) {
		return ExitCorrupt
	}
	return ExitFindings
}

// Fatal prints "prog: err" to stderr and exits with the taxonomy code
// for err.
func Fatal(prog string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", prog, err)
	os.Exit(ExitCodeFor(err))
}

// RenderDiagnostics writes the diagnostics set in the shared format:
// the JSON report to jsonW when jsonOut is set (machine consumption,
// conventionally stdout), the text rendering to textW otherwise
// (conventionally stderr, so the wirelist on stdout stays clean).
func RenderDiagnostics(file string, s *diag.Set, jsonOut bool, jsonW, textW io.Writer) error {
	if jsonOut {
		return diag.WriteJSON(jsonW, file, s)
	}
	return diag.WriteText(textW, file, s)
}

// Exit returns the taxonomy code for a finished run: ExitFindings when
// the set holds Error-severity diagnostics, ExitOK otherwise.
func Exit(s *diag.Set) int {
	if s.Errors() > 0 {
		return ExitFindings
	}
	return ExitOK
}
