package cli

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"syscall"
	"testing"

	"ace/internal/diag"
	"ace/internal/guard"
	"ace/internal/store"
	"ace/internal/tile"
)

func TestExitCodeFor(t *testing.T) {
	le := &guard.LimitError{Stage: guard.StageParse, What: "boxes", Value: 2, Limit: 1}
	cases := []struct {
		err  error
		want int
	}{
		{nil, ExitOK},
		{errors.New("plain failure"), ExitFindings},
		{context.DeadlineExceeded, ExitTimeout},
		{context.Canceled, ExitTimeout},
		{&guard.StageError{Stage: guard.StageSweep, Err: context.DeadlineExceeded}, ExitTimeout},
		{le, ExitLimit},
		{&guard.StageError{Stage: guard.StageParse, Err: le}, ExitLimit},
		{&guard.LimitError{Stage: guard.StageAdmit, What: guard.WhatConcurrent, Value: 9, Limit: 8}, ExitLimit},
		{&tile.CorruptError{Region: "footer", Msg: "checksum mismatch"}, ExitCorrupt},
		{&store.CorruptError{Path: "x.e", Reason: "bad magic"}, ExitCorrupt},
		{&guard.StageError{Stage: guard.StageExtract, Err: &tile.CorruptError{Region: "tile[0,0]", Msg: "truncated"}}, ExitCorrupt},
		// A raw disk fault is not corruption: the cache's read path
		// fails open (quarantine + recompute), so an I/O error that
		// does escape classifies as a plain failure, never ExitCorrupt.
		{fmt.Errorf("read cache entry: %w", syscall.EIO), ExitFindings},
		{fmt.Errorf("write cache entry: %w", syscall.ENOSPC), ExitFindings},
	}
	for _, c := range cases {
		if got := ExitCodeFor(c.err); got != c.want {
			t.Errorf("ExitCodeFor(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

func TestExit(t *testing.T) {
	var s diag.Set
	if Exit(&s) != ExitOK {
		t.Fatal("empty set should exit 0")
	}
	s.Add(diag.New(diag.Warning, "check", "ratio", "weak"))
	if Exit(&s) != ExitOK {
		t.Fatal("warnings alone should exit 0")
	}
	s.Add(diag.New(diag.Error, "cif/parse", "bad-operand", "boom"))
	if Exit(&s) != ExitFindings {
		t.Fatal("errors should exit 1")
	}
}

func TestRenderDiagnostics(t *testing.T) {
	var s diag.Set
	s.Add(diag.New(diag.Error, "cif/parse", "bad-operand", "boom"))
	var jsonW, textW bytes.Buffer
	if err := RenderDiagnostics("chip.cif", &s, false, &jsonW, &textW); err != nil {
		t.Fatal(err)
	}
	if jsonW.Len() != 0 || !strings.Contains(textW.String(), "bad-operand") {
		t.Fatalf("text mode wrote to wrong stream: json %q text %q", jsonW.String(), textW.String())
	}
	jsonW.Reset()
	textW.Reset()
	if err := RenderDiagnostics("chip.cif", &s, true, &jsonW, &textW); err != nil {
		t.Fatal(err)
	}
	if textW.Len() != 0 || !strings.Contains(jsonW.String(), "\"diagnostics\"") {
		t.Fatalf("json mode wrote to wrong stream: json %q text %q", jsonW.String(), textW.String())
	}
}
