// Package diag is the unified diagnostics subsystem: every front-end
// fault the pipeline can *survive* — malformed CIF commands, unresolved
// or recursive symbol calls, over-deep hierarchies, electrical-rule
// findings from the static checker — is reported as a Diagnostic with a
// stable code, a severity, and (when the fault has a textual source) a
// byte-offset/line/column span.
//
// The package exists so that parse errors, hierarchy findings and
// check findings share one ordering contract and one renderer (text and
// JSON; see render.go) instead of three ad-hoc string formats. It is
// stdlib-only, like internal/guard, so every layer can depend on it
// without cycles.
//
// Ordering contract: a sorted Set lists located diagnostics first in
// source order (byte offset, then line/column), then unlocated ones by
// severity (errors first), stage, code, device, net and finally
// message. Producers that emit in deterministic order stay sorted; Sort
// is a stable re-establishment of the contract after merges.
package diag

import (
	"fmt"
	"sort"
)

// Severity grades diagnostics.
type Severity int8

const (
	// Info is advisory: nothing was lost or altered.
	Info Severity = iota

	// Warning marks input that was understood but looks wrong, or
	// geometry that was deliberately dropped (unknown layers, snapped
	// rotations). Extraction output is still complete with respect to
	// the understood input.

	Warning

	// Error marks input the front end could not understand; in lenient
	// mode the damaged region was skipped and the rest salvaged, in
	// strict mode the run fails on the first one.
	Error
)

func (s Severity) String() string {
	switch s {
	case Error:
		return "error"
	case Warning:
		return "warning"
	}
	return "info"
}

// Span locates a diagnostic in source text. The zero Span (Line == 0)
// means "no source location" — findings about the extracted circuit
// rather than the input text.
type Span struct {
	Offset int // byte offset into the source, 0-based
	Line   int // 1-based; 0 means unlocated
	Col    int // 1-based byte column within the line
}

// Located reports whether the span carries a real source position.
func (sp Span) Located() bool { return sp.Line > 0 }

func (sp Span) String() string {
	if !sp.Located() {
		return ""
	}
	return fmt.Sprintf("%d:%d", sp.Line, sp.Col)
}

// Diagnostic is one reported problem.
type Diagnostic struct {
	// Code is the stable machine-readable identifier, e.g.
	// "missing-semicolon" or "malformed-transistor". Codes never carry
	// positional or quantitative detail; that lives in Message.
	Code string

	// Severity grades the finding.
	Severity Severity

	// Stage names the pipeline stage that produced the finding, using
	// the guard stage vocabulary ("cif/parse", "frontend/stream",
	// "check", …).
	Stage string

	// Message is the human-readable description.
	Message string

	// Span locates the finding in the source text, when it has one.
	Span Span

	// Device and Net index into the extracted netlist for findings
	// about the circuit rather than the text; -1 when not applicable.
	// (The zero Diagnostic has 0 here; producers of circuit-level
	// findings must set both explicitly, and New sets them to -1.)
	Device int
	Net    int
}

// New returns a Diagnostic with Device and Net initialised to "none".
func New(sev Severity, stage, code, message string) Diagnostic {
	return Diagnostic{
		Code: code, Severity: sev, Stage: stage, Message: message,
		Device: -1, Net: -1,
	}
}

// String renders one diagnostic in the text form the renderer emits:
// "line:col: severity: code: message" when located,
// "severity: code: message" otherwise.
func (d Diagnostic) String() string {
	if d.Span.Located() {
		return fmt.Sprintf("%s: %s: %s: %s", d.Span, d.Severity, d.Code, d.Message)
	}
	return fmt.Sprintf("%s: %s: %s", d.Severity, d.Code, d.Message)
}

// DefaultMaxDiagnostics caps a Set when no explicit limit is given: a
// hostile input must not be able to turn one diagnostic per byte into
// an unbounded allocation (guard.Limits-style budgeting — the cap binds
// where the memory would be committed).
const DefaultMaxDiagnostics = 1000

// Limits caps a diagnostics set, in the style of guard.Limits. The
// zero value applies DefaultMaxDiagnostics; a negative MaxDiagnostics
// means unlimited.
type Limits struct {
	MaxDiagnostics int
}

// Max returns the effective cap (0 means unlimited).
func (l Limits) Max() int {
	switch {
	case l.MaxDiagnostics > 0:
		return l.MaxDiagnostics
	case l.MaxDiagnostics < 0:
		return 0
	}
	return DefaultMaxDiagnostics
}

// Set accumulates diagnostics under a cap. The zero value is a valid,
// empty set capped at DefaultMaxDiagnostics. Sets are not synchronised;
// each pipeline stage collects into its own and the driver merges.
type Set struct {
	list    []Diagnostic
	dropped int
	limits  Limits
}

// NewSet returns an empty set with the given cap.
func NewSet(l Limits) *Set { return &Set{limits: l} }

// SetLimits replaces the cap (affects subsequent Adds only).
func (s *Set) SetLimits(l Limits) { s.limits = l }

// Add records one diagnostic, dropping (and counting) it when the set
// is at capacity. Errors are never dropped in favour of retained
// warnings: at capacity, an incoming Error evicts the last non-Error
// entry if there is one.
func (s *Set) Add(d Diagnostic) {
	if max := s.limits.Max(); max > 0 && len(s.list) >= max {
		if d.Severity == Error {
			for i := len(s.list) - 1; i >= 0; i-- {
				if s.list[i].Severity != Error {
					copy(s.list[i:], s.list[i+1:])
					s.list[len(s.list)-1] = d
					s.dropped++
					return
				}
			}
		}
		s.dropped++
		return
	}
	s.list = append(s.list, d)
}

// AddAll records each diagnostic in ds.
func (s *Set) AddAll(ds []Diagnostic) {
	for _, d := range ds {
		s.Add(d)
	}
}

// Merge folds another set into this one, including its dropped count.
func (s *Set) Merge(o *Set) {
	if o == nil {
		return
	}
	s.AddAll(o.list)
	s.dropped += o.dropped
}

// All returns the recorded diagnostics (the set's own slice: callers
// must not mutate it).
func (s *Set) All() []Diagnostic {
	if s == nil {
		return nil
	}
	return s.list
}

// Len reports the number of retained diagnostics.
func (s *Set) Len() int {
	if s == nil {
		return 0
	}
	return len(s.list)
}

// Dropped reports how many diagnostics the cap discarded.
func (s *Set) Dropped() int {
	if s == nil {
		return 0
	}
	return s.dropped
}

// Count tallies retained diagnostics by severity.
func (s *Set) Count() (errors, warnings int) {
	if s == nil {
		return 0, 0
	}
	return Count(s.list)
}

// Errors reports the number of Error-severity diagnostics retained.
func (s *Set) Errors() int {
	e, _ := s.Count()
	return e
}

// Sort establishes the package ordering contract (stable, so producers
// that emit several diagnostics at one position keep their emission
// order).
func (s *Set) Sort() {
	if s == nil {
		return
	}
	sort.SliceStable(s.list, func(i, j int) bool {
		return Less(s.list[i], s.list[j])
	})
}

// Count tallies diagnostics by severity.
func Count(ds []Diagnostic) (errors, warnings int) {
	for _, d := range ds {
		switch d.Severity {
		case Error:
			errors++
		case Warning:
			warnings++
		}
	}
	return
}

// Less is the package ordering: located before unlocated; located by
// source position; unlocated by severity (errors first), then stage,
// code, device, net, message.
func Less(a, b Diagnostic) bool {
	al, bl := a.Span.Located(), b.Span.Located()
	if al != bl {
		return al
	}
	if al {
		if a.Span.Offset != b.Span.Offset {
			return a.Span.Offset < b.Span.Offset
		}
		if a.Span.Line != b.Span.Line {
			return a.Span.Line < b.Span.Line
		}
		if a.Span.Col != b.Span.Col {
			return a.Span.Col < b.Span.Col
		}
	}
	if a.Severity != b.Severity {
		return a.Severity > b.Severity // Error sorts first
	}
	if a.Stage != b.Stage {
		return a.Stage < b.Stage
	}
	if a.Code != b.Code {
		return a.Code < b.Code
	}
	if a.Device != b.Device {
		return a.Device < b.Device
	}
	if a.Net != b.Net {
		return a.Net < b.Net
	}
	return a.Message < b.Message
}
