package diag

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

func located(sev Severity, code string, offset, line, col int) Diagnostic {
	d := New(sev, "cif/parse", code, "msg "+code)
	d.Span = Span{Offset: offset, Line: line, Col: col}
	return d
}

func TestSeverityString(t *testing.T) {
	for sev, want := range map[Severity]string{Info: "info", Warning: "warning", Error: "error"} {
		if got := sev.String(); got != want {
			t.Errorf("%d: %q, want %q", sev, got, want)
		}
	}
}

func TestDiagnosticString(t *testing.T) {
	d := located(Error, "bad-operand", 10, 3, 7)
	if got := d.String(); got != "3:7: error: bad-operand: msg bad-operand" {
		t.Fatalf("located: %q", got)
	}
	u := New(Warning, "check", "ratio", "weak pull-down")
	if got := u.String(); got != "warning: ratio: weak pull-down" {
		t.Fatalf("unlocated: %q", got)
	}
}

func TestZeroSetIsValid(t *testing.T) {
	var s Set
	if s.Len() != 0 || s.Errors() != 0 || s.Dropped() != 0 {
		t.Fatal("zero set not empty")
	}
	s.Add(New(Error, "check", "x", "boom"))
	if s.Len() != 1 || s.Errors() != 1 {
		t.Fatalf("add into zero set: len %d errors %d", s.Len(), s.Errors())
	}
	var nilSet *Set
	if nilSet.Len() != 0 || nilSet.Dropped() != 0 || nilSet.All() != nil {
		t.Fatal("nil set accessors not safe")
	}
	nilSet.Sort() // must not panic
}

func TestCapDropsAndCounts(t *testing.T) {
	s := NewSet(Limits{MaxDiagnostics: 3})
	for i := 0; i < 5; i++ {
		s.Add(New(Warning, "cif/parse", "w", fmt.Sprintf("warn %d", i)))
	}
	if s.Len() != 3 || s.Dropped() != 2 {
		t.Fatalf("len %d dropped %d", s.Len(), s.Dropped())
	}
}

func TestCapErrorEvictsWarning(t *testing.T) {
	s := NewSet(Limits{MaxDiagnostics: 2})
	s.Add(New(Warning, "cif/parse", "w1", "first"))
	s.Add(New(Warning, "cif/parse", "w2", "second"))
	s.Add(New(Error, "cif/parse", "e1", "the error"))
	if s.Errors() != 1 {
		t.Fatalf("error dropped at capacity: %v", s.All())
	}
	if s.Dropped() != 1 {
		t.Fatalf("dropped %d, want 1", s.Dropped())
	}
	// A full-of-errors set drops further errors instead of evicting.
	s.Add(New(Error, "cif/parse", "e2", "another"))
	s.Add(New(Error, "cif/parse", "e3", "third"))
	if s.Len() != 2 || s.Errors() != 2 || s.Dropped() != 3 {
		t.Fatalf("len %d errors %d dropped %d", s.Len(), s.Errors(), s.Dropped())
	}
}

func TestMergeCarriesDropped(t *testing.T) {
	a := NewSet(Limits{MaxDiagnostics: 1})
	a.Add(New(Warning, "s", "w", "kept"))
	a.Add(New(Warning, "s", "w", "dropped"))
	var b Set
	b.Merge(a)
	b.Merge(nil)
	if b.Len() != 1 || b.Dropped() != 1 {
		t.Fatalf("merge: len %d dropped %d", b.Len(), b.Dropped())
	}
}

func TestOrderingContract(t *testing.T) {
	var s Set
	s.Add(New(Warning, "check", "ratio", "unlocated warning"))
	s.Add(located(Error, "late", 50, 5, 1))
	s.Add(New(Error, "check", "power-short", "unlocated error"))
	s.Add(located(Warning, "early", 10, 2, 3))
	s.Sort()
	ds := s.All()
	// Located first in offset order, then unlocated errors before
	// warnings.
	if ds[0].Code != "early" || ds[1].Code != "late" {
		t.Fatalf("located order: %v", ds)
	}
	if ds[2].Code != "power-short" || ds[3].Code != "ratio" {
		t.Fatalf("unlocated order: %v", ds)
	}
	for i := 1; i < len(ds); i++ {
		if Less(ds[i], ds[i-1]) {
			t.Fatalf("not sorted at %d", i)
		}
	}
}

func TestSortIsStable(t *testing.T) {
	var s Set
	for i := 0; i < 3; i++ {
		d := located(Error, "same", 7, 1, 7)
		d.Message = fmt.Sprintf("emission %d", i)
		s.Add(d)
	}
	s.Sort()
	for i, d := range s.All() {
		if want := fmt.Sprintf("emission %d", i); d.Message != want {
			t.Fatalf("emission order not preserved: %v", s.All())
		}
	}
}

func TestWriteText(t *testing.T) {
	var s Set
	s.Add(located(Error, "bad-operand", 10, 3, 7))
	s.Add(New(Warning, "check", "ratio", "weak pull-down"))
	var buf bytes.Buffer
	if err := WriteText(&buf, "chip.cif", &s); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"chip.cif:3:7: error: bad-operand:",
		"chip.cif: warning: ratio: weak pull-down",
		"1 errors, 1 warnings",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}

	capped := NewSet(Limits{MaxDiagnostics: 1})
	capped.Add(New(Warning, "s", "w", "kept"))
	capped.Add(New(Warning, "s", "w", "gone"))
	buf.Reset()
	if err := WriteText(&buf, "", capped); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "(+1 beyond the diagnostic cap)") {
		t.Fatalf("missing cap note:\n%s", buf.String())
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	var s Set
	s.Add(located(Error, "bad-operand", 10, 3, 7))
	circuit := New(Warning, "check", "ratio", "weak pull-down")
	circuit.Device = 2
	circuit.Net = 5
	s.Add(circuit)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, "chip.cif", &s); err != nil {
		t.Fatal(err)
	}
	var r struct {
		File        string `json:"file"`
		Errors      int    `json:"errors"`
		Warnings    int    `json:"warnings"`
		Diagnostics []struct {
			Code     string `json:"code"`
			Severity string `json:"severity"`
			Span     *struct {
				Offset, Line, Col int
			} `json:"span"`
			Device *int `json:"device"`
			Net    *int `json:"net"`
		} `json:"diagnostics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &r); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, buf.String())
	}
	if r.File != "chip.cif" || r.Errors != 1 || r.Warnings != 1 || len(r.Diagnostics) != 2 {
		t.Fatalf("report header: %+v", r)
	}
	if d := r.Diagnostics[0]; d.Severity != "error" || d.Span == nil || d.Span.Line != 3 || d.Device != nil {
		t.Fatalf("located entry: %+v", d)
	}
	if d := r.Diagnostics[1]; d.Span != nil || d.Device == nil || *d.Device != 2 || *d.Net != 5 {
		t.Fatalf("circuit entry: %+v", d)
	}
	// Deterministic byte-for-byte.
	var buf2 bytes.Buffer
	if err := WriteJSON(&buf2, "chip.cif", &s); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("JSON rendering not deterministic")
	}
}

func TestLimitsMax(t *testing.T) {
	if (Limits{}).Max() != DefaultMaxDiagnostics {
		t.Fatal("zero Limits should apply the default cap")
	}
	if (Limits{MaxDiagnostics: 7}).Max() != 7 {
		t.Fatal("explicit cap ignored")
	}
	if (Limits{MaxDiagnostics: -1}).Max() != 0 {
		t.Fatal("negative cap should mean unlimited")
	}
}
