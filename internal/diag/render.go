package diag

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// WriteText renders a set one diagnostic per line:
//
//	file:line:col: severity: code: message
//
// (the file prefix is omitted when file is empty, the line:col prefix
// when the diagnostic is unlocated). A final summary line reports the
// totals, including diagnostics the cap discarded.
func WriteText(w io.Writer, file string, s *Set) error {
	for _, d := range s.All() {
		prefix := ""
		if file != "" {
			// "file:line:col: ..." for located diagnostics; unlocated
			// ones read "file: severity: ..." like a plain tool message.
			prefix = file + ":"
			if !d.Span.Located() {
				prefix += " "
			}
		}
		if _, err := fmt.Fprintf(w, "%s%s\n", prefix, d); err != nil {
			return err
		}
	}
	errs, warns := s.Count()
	line := fmt.Sprintf("%d errors, %d warnings", errs, warns)
	if n := s.Dropped(); n > 0 {
		line += fmt.Sprintf(" (+%d beyond the diagnostic cap)", n)
	}
	_, err := fmt.Fprintf(w, "%s\n", line)
	return err
}

// jsonSpan mirrors Span for JSON output.
type jsonSpan struct {
	Offset int `json:"offset"`
	Line   int `json:"line"`
	Col    int `json:"col"`
}

// jsonDiagnostic is the wire form of one diagnostic. Span, device and
// net are omitted when absent so clean findings stay compact.
type jsonDiagnostic struct {
	Code     string    `json:"code"`
	Severity string    `json:"severity"`
	Stage    string    `json:"stage,omitempty"`
	Message  string    `json:"message"`
	Span     *jsonSpan `json:"span,omitempty"`
	Device   *int      `json:"device,omitempty"`
	Net      *int      `json:"net,omitempty"`
}

// Report is the JSON diagnostics document (-diag-json).
type Report struct {
	File        string           `json:"file,omitempty"`
	Errors      int              `json:"errors"`
	Warnings    int              `json:"warnings"`
	Dropped     int              `json:"dropped,omitempty"`
	Diagnostics []jsonDiagnostic `json:"diagnostics"`
}

// NewReport builds the JSON document for a set.
func NewReport(file string, s *Set) Report {
	errs, warns := s.Count()
	r := Report{
		File:        file,
		Errors:      errs,
		Warnings:    warns,
		Dropped:     s.Dropped(),
		Diagnostics: make([]jsonDiagnostic, 0, s.Len()),
	}
	for _, d := range s.All() {
		jd := jsonDiagnostic{
			Code:     d.Code,
			Severity: d.Severity.String(),
			Stage:    d.Stage,
			Message:  d.Message,
		}
		if d.Span.Located() {
			jd.Span = &jsonSpan{Offset: d.Span.Offset, Line: d.Span.Line, Col: d.Span.Col}
		}
		if d.Device >= 0 {
			dev := d.Device
			jd.Device = &dev
		}
		if d.Net >= 0 {
			net := d.Net
			jd.Net = &net
		}
		r.Diagnostics = append(r.Diagnostics, jd)
	}
	return r
}

// WriteJSON renders the set as an indented JSON document followed by a
// newline. The encoding is deterministic: field order is fixed by the
// struct definitions and diagnostics appear in set order.
func WriteJSON(w io.Writer, file string, s *Set) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(NewReport(file, s)); err != nil {
		return err
	}
	_, err := w.Write(buf.Bytes())
	return err
}
