// Package drc is a Mead–Conway NMOS design-rule checker built on the
// same front end as the extractors — the HEXT paper notes the window
// machinery "can be used for plotting, design-rule checking, or other
// tasks", and DRC is the CMU report's constant companion topic (Hon's
// hierarchical DRC, Whitney's checker, Seiler's DRC engine).
//
// Rules are checked morphologically on whole-layer regions:
// minimum width by opening (a feature that disappears under a w×w
// opening is thinner than w), minimum spacing by closing (a gap that a
// s×s closing fills is narrower than s), contact surround by erosion,
// and transistor gate/source-drain extension by axis-aligned dilation
// of the channel region.
package drc

import (
	"fmt"
	"sort"

	"ace/internal/frontend"
	"ace/internal/geom"
	"ace/internal/tech"
)

// Rules is the rule deck in λ units.
type Rules struct {
	// Per-layer minimum feature width.
	WidthDiff, WidthPoly, WidthMetal, WidthCut, WidthBuried int64

	// Per-layer minimum spacing (same layer).
	SpaceDiff, SpacePoly, SpaceMetal, SpaceCut int64

	// CutSurround is the overlap a cut needs from metal and from the
	// poly/diffusion beneath.
	CutSurround int64

	// GateExtension is how far poly must extend beyond the channel and
	// diffusion beyond the gate (source/drain).
	GateExtension int64

	// ImplantSurround is the margin by which implant must enclose any
	// channel it touches.
	ImplantSurround int64
}

// MeadConway returns the classic NMOS rule deck. Metal spacing is 2λ
// rather than Mead & Conway's 3λ: the inverter published in ACE
// Figure 3-4 places its metal rails 2λ apart, so the original CMU
// flow evidently used the relaxed value.
func MeadConway() Rules {
	return Rules{
		WidthDiff: 2, WidthPoly: 2, WidthMetal: 3, WidthCut: 2, WidthBuried: 2,
		SpaceDiff: 3, SpacePoly: 2, SpaceMetal: 2, SpaceCut: 2,
		CutSurround:     1,
		GateExtension:   2,
		ImplantSurround: 1,
	}
}

// Violation is one design-rule finding.
type Violation struct {
	Rule  string // stable identifier, e.g. "width-metal"
	Layer tech.Layer
	Where geom.Rect // marker covering the offending area
}

func (v Violation) String() string {
	return fmt.Sprintf("%s at %v", v.Rule, v.Where)
}

// Options configures a check.
type Options struct {
	Rules *Rules     // nil selects MeadConway
	Tech  *tech.Tech // nil selects tech.Default (for λ)
}

// CheckBoxes runs the rule deck over flat geometry.
func CheckBoxes(boxes []frontend.Box, opt Options) []Violation {
	rules := MeadConway()
	if opt.Rules != nil {
		rules = *opt.Rules
	}
	tc := opt.Tech
	if tc == nil {
		tc = tech.Default()
	}
	lam := tc.Lambda

	var perLayer [tech.NumLayers][]geom.Rect
	for _, b := range boxes {
		perLayer[b.Layer] = append(perLayer[b.Layer], b.Rect)
	}
	for l := range perLayer {
		perLayer[l] = geom.Canonicalize(perLayer[l])
	}

	var out []Violation
	add := func(rule string, layer tech.Layer, where []geom.Rect) {
		for _, r := range where {
			out = append(out, Violation{Rule: rule, Layer: layer, Where: r})
		}
	}

	// Width rules.
	widths := []struct {
		layer tech.Layer
		min   int64
	}{
		{tech.Diff, rules.WidthDiff},
		{tech.Poly, rules.WidthPoly},
		{tech.Metal, rules.WidthMetal},
		{tech.Cut, rules.WidthCut},
		{tech.Buried, rules.WidthBuried},
	}
	for _, w := range widths {
		if w.min <= 0 {
			continue
		}
		add("width-"+w.layer.CIFName(), w.layer,
			geom.ThinnerThan(perLayer[w.layer], w.min*lam))
	}

	// Spacing rules.
	spacings := []struct {
		layer tech.Layer
		min   int64
	}{
		{tech.Diff, rules.SpaceDiff},
		{tech.Poly, rules.SpacePoly},
		{tech.Metal, rules.SpaceMetal},
		{tech.Cut, rules.SpaceCut},
	}
	for _, s := range spacings {
		if s.min <= 0 {
			continue
		}
		add("space-"+s.layer.CIFName(), s.layer,
			geom.GapsNarrowerThan(perLayer[s.layer], s.min*lam))
	}

	// Contact surround: every cut must sit inside metal eroded by the
	// surround, and inside (poly ∪ diff) eroded likewise.
	if rules.CutSurround > 0 && len(perLayer[tech.Cut]) > 0 {
		d := rules.CutSurround * lam
		add("cut-metal-surround", tech.Cut,
			geom.SubtractRegions(perLayer[tech.Cut], geom.Erode(perLayer[tech.Metal], d)))
		under := geom.UnionRegions(perLayer[tech.Poly], perLayer[tech.Diff])
		add("cut-under-surround", tech.Cut,
			geom.SubtractRegions(perLayer[tech.Cut], geom.Erode(under, d)))
	}

	// Transistor extension rules on the channel region.
	overlap := geom.IntersectRegions(perLayer[tech.Diff], perLayer[tech.Poly])
	channel := geom.SubtractRegions(overlap, perLayer[tech.Buried])
	if rules.GateExtension > 0 && len(channel) > 0 {
		d := rules.GateExtension * lam
		grown := geom.UnionRegions(dilateX(channel, d), dilateY(channel, d))
		add("gate-extension", tech.Poly,
			geom.SubtractRegions(
				geom.SubtractRegions(grown, perLayer[tech.Diff]),
				perLayer[tech.Poly]))
		add("sd-extension", tech.Diff,
			geom.SubtractRegions(
				geom.SubtractRegions(grown, perLayer[tech.Poly]),
				perLayer[tech.Diff]))
	}

	// Implant enclosure: a channel the implant touches must lie fully
	// inside the implant eroded by the surround.
	if rules.ImplantSurround > 0 && len(perLayer[tech.Implant]) > 0 && len(channel) > 0 {
		d := rules.ImplantSurround * lam
		touched := geom.IntersectRegions(channel, perLayer[tech.Implant])
		ok := geom.IntersectRegions(channel, geom.Erode(perLayer[tech.Implant], d))
		add("implant-surround", tech.Implant, geom.SubtractRegions(touched, ok))
	}

	sort.Slice(out, func(i, j int) bool {
		if out[i].Rule != out[j].Rule {
			return out[i].Rule < out[j].Rule
		}
		a, b := out[i].Where, out[j].Where
		if a.YMin != b.YMin {
			return a.YMin < b.YMin
		}
		return a.XMin < b.XMin
	})
	return out
}

// dilateX grows the region in x only (Minkowski sum with a horizontal
// segment of half-length d).
func dilateX(region []geom.Rect, d int64) []geom.Rect {
	out := make([]geom.Rect, len(region))
	for i, r := range region {
		out[i] = geom.Rect{XMin: r.XMin - d, YMin: r.YMin, XMax: r.XMax + d, YMax: r.YMax}
	}
	return geom.Canonicalize(out)
}

// dilateY grows the region in y only.
func dilateY(region []geom.Rect, d int64) []geom.Rect {
	out := make([]geom.Rect, len(region))
	for i, r := range region {
		out[i] = geom.Rect{XMin: r.XMin, YMin: r.YMin - d, XMax: r.XMax, YMax: r.YMax + d}
	}
	return geom.Canonicalize(out)
}

// Summary tallies violations by rule.
func Summary(vs []Violation) map[string]int {
	m := map[string]int{}
	for _, v := range vs {
		m[v.Rule]++
	}
	return m
}
