package drc

import (
	"testing"

	"ace/internal/frontend"
	"ace/internal/gen"
	"ace/internal/geom"
	"ace/internal/tech"
)

const lam = gen.Lambda

func box(l tech.Layer, x0, y0, x1, y1 int64) frontend.Box {
	return frontend.Box{Layer: l, Rect: geom.R(x0*lam, y0*lam, x1*lam, y1*lam)}
}

func check(t *testing.T, boxes ...frontend.Box) []Violation {
	t.Helper()
	return CheckBoxes(boxes, Options{})
}

func want(t *testing.T, vs []Violation, rule string) {
	t.Helper()
	for _, v := range vs {
		if v.Rule == rule {
			return
		}
	}
	t.Fatalf("missing %q in %v", rule, vs)
}

func wantClean(t *testing.T, vs []Violation) {
	t.Helper()
	if len(vs) != 0 {
		t.Fatalf("unexpected violations: %v", vs)
	}
}

func TestWidthRules(t *testing.T) {
	// A 1λ metal wire (min 3λ).
	want(t, check(t, box(tech.Metal, 0, 0, 20, 1)), "width-NM")
	// 3λ metal is fine.
	wantClean(t, check(t, box(tech.Metal, 0, 0, 20, 3)))
	// 1λ poly sliver.
	want(t, check(t, box(tech.Poly, 0, 0, 1, 10)), "width-NP")
	wantClean(t, check(t, box(tech.Poly, 0, 0, 2, 10)))
	// 1λ diffusion.
	want(t, check(t, box(tech.Diff, 0, 0, 10, 1)), "width-ND")
}

func TestWidthNeck(t *testing.T) {
	// Two fat pads joined by a 1λ neck: only the neck is flagged.
	vs := check(t,
		box(tech.Metal, 0, 0, 10, 10),
		box(tech.Metal, 10, 4, 20, 5),
		box(tech.Metal, 20, 0, 30, 10))
	want(t, vs, "width-NM")
	for _, v := range vs {
		if v.Where.XMin < 10*lam-lam || v.Where.XMax > 20*lam+lam {
			t.Fatalf("violation marker outside the neck: %v", v)
		}
	}
}

func TestSpacingRules(t *testing.T) {
	// Metal bars 1λ apart (min 2λ).
	want(t, check(t,
		box(tech.Metal, 0, 0, 10, 4),
		box(tech.Metal, 0, 5, 10, 9)), "space-NM")
	// 2λ apart is fine.
	wantClean(t, check(t,
		box(tech.Metal, 0, 0, 10, 4),
		box(tech.Metal, 0, 6, 10, 10)))
	// Diffusion needs 3λ.
	want(t, check(t,
		box(tech.Diff, 0, 0, 10, 2),
		box(tech.Diff, 0, 4, 10, 6)), "space-ND")
	wantClean(t, check(t,
		box(tech.Diff, 0, 0, 10, 2),
		box(tech.Diff, 0, 5, 10, 7)))
}

func TestCutSurround(t *testing.T) {
	// Cut flush with the metal edge: no 1λ surround.
	vs := check(t,
		box(tech.Metal, 0, 0, 4, 4),
		box(tech.Diff, -1, -1, 5, 5),
		box(tech.Cut, 0, 1, 2, 3))
	want(t, vs, "cut-metal-surround")
	// Properly surrounded by both layers.
	wantClean(t, check(t,
		box(tech.Metal, 0, 0, 4, 4),
		box(tech.Diff, 0, 0, 4, 4),
		box(tech.Cut, 1, 1, 3, 3)))
	// Cut with no poly/diff beneath at all.
	vs = check(t,
		box(tech.Metal, 0, 0, 4, 4),
		box(tech.Cut, 1, 1, 3, 3))
	want(t, vs, "cut-under-surround")
}

func TestGateExtension(t *testing.T) {
	// Poly ends flush with the channel edge: the gate must overhang 2λ.
	vs := check(t,
		box(tech.Diff, 0, 0, 2, 10),
		box(tech.Poly, 0, 4, 2, 6)) // poly exactly as wide as diff
	want(t, vs, "gate-extension")
	// Proper overhang both sides.
	wantClean(t, check(t,
		box(tech.Diff, 0, 0, 2, 10),
		box(tech.Poly, -2, 4, 4, 6)))
}

func TestSDExtension(t *testing.T) {
	// Diffusion ends at the channel edge: no source.
	vs := check(t,
		box(tech.Diff, 0, 4, 2, 10),
		box(tech.Poly, -2, 4, 4, 6)) // channel at the diffusion's bottom edge
	want(t, vs, "sd-extension")
	wantClean(t, check(t,
		box(tech.Diff, 0, 2, 2, 10),
		box(tech.Poly, -2, 4, 4, 6)))
}

func TestImplantSurround(t *testing.T) {
	// Implant partially covering a channel.
	vs := check(t,
		box(tech.Diff, 0, 0, 2, 10),
		box(tech.Poly, -2, 4, 4, 6),
		box(tech.Implant, -1, 3, 1, 7)) // covers only half the channel
	want(t, vs, "implant-surround")
	// Full 1λ enclosure is clean.
	wantClean(t, check(t,
		box(tech.Diff, 0, 2, 2, 10),
		box(tech.Poly, -2, 4, 4, 6),
		box(tech.Implant, -1, 3, 3, 7)))
}

func TestLibraryCellsAreClean(t *testing.T) {
	// Every generator workload must be DRC-clean — the library is the
	// reference implementation of the rule deck.
	workloads := []gen.Workload{
		{Name: "inverter", File: gen.Inverter()},
		{Name: "four", File: gen.FourInverters()},
		gen.InverterChain(3),
		gen.Memory(2, 3),
		gen.Datapath(2, 2),
	}
	for _, w := range workloads {
		stream, err := frontend.New(w.File, frontend.Options{})
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		vs := CheckBoxes(stream.Drain(), Options{})
		if len(vs) != 0 {
			t.Errorf("%s: %d violations: %v", w.Name, len(vs), Summary(vs))
			for i, v := range vs {
				if i > 5 {
					break
				}
				t.Logf("  %v", v)
			}
		}
	}
}

func TestSummary(t *testing.T) {
	vs := []Violation{{Rule: "a"}, {Rule: "a"}, {Rule: "b"}}
	m := Summary(vs)
	if m["a"] != 2 || m["b"] != 1 {
		t.Fatalf("summary %v", m)
	}
}
