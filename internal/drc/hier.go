package drc

import (
	"encoding/binary"
	"sort"

	"ace/internal/frontend"
	"ace/internal/geom"
	"ace/internal/tech"
)

// Hierarchical (tile-memoised) checking: the CMU report's constant
// companion topic — Hon's hierarchical analysis and Whitney's
// hierarchical design-rule checker. Design rules are local, so the
// chip is cut into tiles, each checked with a halo of context wide
// enough to see every rule; identical tile contents (a memory array
// is thousands of identical tiles) are checked once and answered from
// a memo table thereafter, exactly like HEXT's window table.

// HierOptions configures hierarchical checking.
type HierOptions struct {
	Options

	// TileSize is the tile edge in λ; zero selects 64. Reuse is best
	// when the tile size matches the design's repetition pitch: a tile
	// grid that beats against the cell pitch sees phase-shifted copies
	// and misses the memo.
	TileSize int64

	// Halo is the context margin in λ seen around each tile. It must
	// be at least twice the longest-range rule; zero selects 8.
	Halo int64
}

// HierCounters reports the tiling work.
type HierCounters struct {
	Tiles       int
	UniqueTiles int
	MemoHits    int
}

// HierResult is a hierarchical check outcome.
type HierResult struct {
	Violations []Violation
	Counters   HierCounters
}

// CheckHierarchical runs the rule deck tile by tile with memoisation.
// Its violations cover exactly the same area as CheckBoxes' (markers
// may be fragmented differently along tile boundaries).
func CheckHierarchical(boxes []frontend.Box, opt HierOptions) HierResult {
	tc := opt.Tech
	if tc == nil {
		tc = tech.Default()
	}
	tile := opt.TileSize
	if tile <= 0 {
		tile = 64
	}
	halo := opt.Halo
	if halo <= 0 {
		halo = 8
	}
	tilePx := tile * tc.Lambda
	haloPx := halo * tc.Lambda

	var res HierResult
	if len(boxes) == 0 {
		return res
	}
	bb := boxes[0].Rect
	for _, b := range boxes[1:] {
		bb = bb.Union(b.Rect)
	}

	// Bucket boxes by the tiles their halo-expanded extent touches.
	tix := func(v, min int64) int64 { return floorDiv(v-min, tilePx) }
	type key struct{ tx, ty int64 }
	buckets := map[key][]frontend.Box{}
	for _, b := range boxes {
		r := b.Rect
		x0 := tix(r.XMin-haloPx, bb.XMin)
		x1 := tix(r.XMax+haloPx-1, bb.XMin)
		y0 := tix(r.YMin-haloPx, bb.YMin)
		y1 := tix(r.YMax+haloPx-1, bb.YMin)
		for ty := y0; ty <= y1; ty++ {
			for tx := x0; tx <= x1; tx++ {
				k := key{tx, ty}
				buckets[k] = append(buckets[k], b)
			}
		}
	}

	memo := map[string][]Violation{} // violations relative to the tile origin

	keys := make([]key, 0, len(buckets))
	for k := range buckets {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].ty != keys[j].ty {
			return keys[i].ty < keys[j].ty
		}
		return keys[i].tx < keys[j].tx
	})

	perRule := map[string]map[tech.Layer][]geom.Rect{}
	for _, k := range keys {
		res.Counters.Tiles++
		core := geom.Rect{
			XMin: bb.XMin + k.tx*tilePx,
			YMin: bb.YMin + k.ty*tilePx,
		}
		core.XMax = core.XMin + tilePx
		core.YMax = core.YMin + tilePx
		ctx := geom.Rect{
			XMin: core.XMin - haloPx, YMin: core.YMin - haloPx,
			XMax: core.XMax + haloPx, YMax: core.YMax + haloPx,
		}
		origin := geom.Pt(core.XMin, core.YMin)

		// Clip the bucket's geometry to the context window and rebase.
		var clipped []frontend.Box
		for _, b := range buckets[k] {
			r := b.Rect.Intersect(ctx)
			if r.Empty() {
				continue
			}
			clipped = append(clipped, frontend.Box{
				Layer: b.Layer,
				Rect:  r.Translate(geom.Pt(-origin.X, -origin.Y)),
			})
		}
		if len(clipped) == 0 {
			continue
		}

		h := tileKey(clipped)
		vs, ok := memo[h]
		if ok {
			res.Counters.MemoHits++
		} else {
			res.Counters.UniqueTiles++
			// Check the context window; keep only markers touching the
			// core tile (relative coords: [0, tilePx)²). Artifacts from
			// clipping live within rule reach of the halo boundary and
			// never reach the core.
			coreRel := geom.Rect{XMin: 0, YMin: 0, XMax: tilePx, YMax: tilePx}
			for _, v := range CheckBoxes(clipped, opt.Options) {
				cl := v.Where.Intersect(coreRel)
				if !cl.Empty() {
					v.Where = cl
					vs = append(vs, v)
				}
			}
			memo[h] = vs
		}
		for _, v := range vs {
			key := v.Rule
			if perRule[key] == nil {
				perRule[key] = map[tech.Layer][]geom.Rect{}
			}
			perRule[key][v.Layer] = append(perRule[key][v.Layer],
				v.Where.Translate(origin))
		}
	}

	// Merge the per-tile fragments back into clean markers.
	rules := make([]string, 0, len(perRule))
	for rule := range perRule {
		rules = append(rules, rule)
	}
	sort.Strings(rules)
	for _, rule := range rules {
		for layer, rects := range perRule[rule] {
			for _, r := range geom.Canonicalize(rects) {
				res.Violations = append(res.Violations,
					Violation{Rule: rule, Layer: layer, Where: r})
			}
		}
	}
	sort.Slice(res.Violations, func(i, j int) bool {
		a, b := res.Violations[i], res.Violations[j]
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		if a.Where.YMin != b.Where.YMin {
			return a.Where.YMin < b.Where.YMin
		}
		return a.Where.XMin < b.Where.XMin
	})
	return res
}

func tileKey(boxes []frontend.Box) string {
	recs := make([][]byte, len(boxes))
	for i, b := range boxes {
		var buf [33]byte
		buf[0] = byte(b.Layer)
		binary.LittleEndian.PutUint64(buf[1:], uint64(b.Rect.XMin))
		binary.LittleEndian.PutUint64(buf[9:], uint64(b.Rect.YMin))
		binary.LittleEndian.PutUint64(buf[17:], uint64(b.Rect.XMax))
		binary.LittleEndian.PutUint64(buf[25:], uint64(b.Rect.YMax))
		recs[i] = buf[:]
	}
	sort.Slice(recs, func(i, j int) bool { return string(recs[i]) < string(recs[j]) })
	out := make([]byte, 0, len(recs)*33)
	for _, r := range recs {
		out = append(out, r...)
	}
	return string(out)
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}
