package drc

import (
	"math/rand"
	"testing"

	"ace/internal/frontend"
	"ace/internal/gen"
	"ace/internal/geom"
	"ace/internal/tech"
)

// regionsByRule groups violation markers into per-(rule, layer)
// regions so fragment boundaries don't matter in comparisons.
func regionsByRule(vs []Violation) map[string][]geom.Rect {
	m := map[string][]geom.Rect{}
	for _, v := range vs {
		k := v.Rule + "/" + v.Layer.CIFName()
		m[k] = append(m[k], v.Where)
	}
	for k := range m {
		m[k] = geom.Canonicalize(m[k])
	}
	return m
}

func sameViolations(t *testing.T, flat, hier []Violation, ctx string) {
	t.Helper()
	fm, hm := regionsByRule(flat), regionsByRule(hier)
	for k, fr := range fm {
		if !geom.SameRegion(fr, hm[k]) {
			t.Fatalf("%s: rule %s differs\nflat: %v\nhier: %v", ctx, k, fr, hm[k])
		}
	}
	for k := range hm {
		if _, ok := fm[k]; !ok {
			t.Fatalf("%s: hierarchical invented rule %s: %v", ctx, k, hm[k])
		}
	}
}

func TestHierMatchesFlatOnWorkloads(t *testing.T) {
	workloads := []gen.Workload{
		{Name: "inverter", File: gen.Inverter()},
		gen.Memory(4, 6),
		gen.Mesh(6),
		gen.NORPlane([][]bool{{true, false, true}, {true, true, false}}),
	}
	for _, w := range workloads {
		stream, err := frontend.New(w.File, frontend.Options{})
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		boxes := stream.Drain()
		flat := CheckBoxes(boxes, Options{})
		hier := CheckHierarchical(boxes, HierOptions{TileSize: 24})
		sameViolations(t, flat, hier.Violations, w.Name)
	}
}

func TestHierMatchesFlatOnRandomDirty(t *testing.T) {
	// Random layouts full of genuine violations: the tiled checker
	// must find exactly the same regions.
	rng := rand.New(rand.NewSource(61))
	layers := []tech.Layer{tech.Diff, tech.Poly, tech.Metal, tech.Cut, tech.Implant}
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(25)
		boxes := make([]frontend.Box, n)
		for i := range boxes {
			l := layers[rng.Intn(len(layers))]
			x := int64(rng.Intn(40)) * lam
			y := int64(rng.Intn(40)) * lam
			boxes[i] = frontend.Box{Layer: l, Rect: geom.R(
				x, y, x+int64(1+rng.Intn(8))*lam, y+int64(1+rng.Intn(8))*lam)}
		}
		flat := CheckBoxes(boxes, Options{})
		for _, tileSize := range []int64{16, 40} {
			hier := CheckHierarchical(boxes, HierOptions{TileSize: tileSize})
			sameViolations(t, flat, hier.Violations, "random")
		}
	}
}

func TestHierMemoisation(t *testing.T) {
	// A big regular array: almost every tile repeats.
	w := gen.Memory(16, 16)
	stream, err := frontend.New(w.File, frontend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	boxes := stream.Drain()
	// Tile 36λ matches the array's row pitch; when the tile grid beats
	// against the cell pitch (e.g. 32λ) most tiles are phase-shifted
	// copies and the memo misses — alignment is what makes
	// hierarchical DRC pay, exactly as with HEXT's windows.
	res := CheckHierarchical(boxes, HierOptions{TileSize: 36})
	if len(res.Violations) != 0 {
		t.Fatalf("library array not clean: %v", res.Violations[:min(8, len(res.Violations))])
	}
	c := res.Counters
	if c.MemoHits == 0 || c.UniqueTiles*3 > c.Tiles {
		t.Fatalf("memoisation ineffective: %+v", c)
	}
}

func TestHierEmpty(t *testing.T) {
	res := CheckHierarchical(nil, HierOptions{})
	if len(res.Violations) != 0 || res.Counters.Tiles != 0 {
		t.Fatalf("empty: %+v", res)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
