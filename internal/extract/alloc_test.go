//go:build !race

// Excluded under -race: the race runtime adds its own allocations,
// which would make the pinned budgets meaningless.

package extract

import (
	"os"
	"path/filepath"
	"testing"

	"ace/internal/gen"
)

// warmCorpusSource loads one small corpus design for the parse-included
// budget.
func warmCorpusSource() (string, error) {
	b, err := os.ReadFile(filepath.Join("testdata", "polygons.cif"))
	return string(b), err
}

// Steady-state allocation budgets for a warm Engine. The floor is not
// zero: Finish must allocate the output netlist itself (the Nets and
// Devices slices, one shared terminal backing array, the Result) —
// those allocations hand ownership to the caller and cannot be pooled
// without breaking the isolation contract. Everything else — parse
// arenas, front-end streams, sweeper interval lists, builder arenas,
// sort scratch — is pooled, which is the difference between the cold
// path's hundreds of allocations per run and these numbers.
//
// Measured on the pinned toolchain: 11 allocs/op warm vs 244 cold for
// warmAllocChip (a 95% reduction). The budgets below carry ~3x slack
// so routine toolchain/runtime drift does not trip them; a regression
// that re-introduces per-run scratch (a forgotten pool, a closure in a
// hot sort) overshoots them by an order of magnitude.
const (
	warmAllocBudget     = 32
	warmAllocChip       = "cherry"
	warmAllocChipScale  = 0.05
	warmAllocWarmupRuns = 3
)

// TestWarmEngineAllocs pins the steady-state allocs/op of warm Engine
// extraction — the regression test for the amortized hot path.
func TestWarmEngineAllocs(t *testing.T) {
	c, ok := gen.ChipByName(warmAllocChip)
	if !ok {
		t.Fatalf("no %s chip", warmAllocChip)
	}
	w := c.Build(warmAllocChipScale)
	eng := NewEngine()
	for i := 0; i < warmAllocWarmupRuns; i++ {
		if _, err := eng.File(w.File, Options{}); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(10, func() {
		if _, err := eng.File(w.File, Options{}); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("warm Engine: %.1f allocs/op (budget %d)", avg, warmAllocBudget)
	if avg > warmAllocBudget {
		t.Errorf("warm Engine extraction allocates %.1f allocs/op, budget %d — a pool stopped being used on the hot path",
			avg, warmAllocBudget)
	}
}

// TestWarmEngineAllocsParse covers the full warm path including the
// pooled-arena CIF parse (Engine.String rather than Engine.File). The
// parse adds the File skeleton and reader state on top of the sweep.
func TestWarmEngineAllocsParse(t *testing.T) {
	src, err := warmCorpusSource()
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine()
	for i := 0; i < warmAllocWarmupRuns; i++ {
		if _, err := eng.String(src, Options{}); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(10, func() {
		if _, err := eng.String(src, Options{}); err != nil {
			t.Fatal(err)
		}
	})
	// Measured 10 allocs/op on the pinned toolchain (the fixture has
	// polygons, so pooled manhattanisation scratch is in play); ~3x
	// slack.
	const budget = 32
	t.Logf("warm Engine (with parse): %.1f allocs/op (budget %d)", avg, budget)
	if avg > budget {
		t.Errorf("warm parse+extract allocates %.1f allocs/op, budget %d", avg, budget)
	}
}
