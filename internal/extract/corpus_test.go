package extract

import (
	"os"
	"path/filepath"
	"testing"

	"ace/internal/cif"
	"ace/internal/cifplot"
	"ace/internal/frontend"
	"ace/internal/hext"
	"ace/internal/netlist"
)

// corpus lists the testdata CIF files with their expected extraction
// results; the counts were verified by hand against the drawings in
// each file's header comment.
var corpus = []struct {
	file     string
	devices  int
	nets     int
	minWarns int // expected warning count (labels that must miss, …)
}{
	{"polygons.cif", 1, 3, 0},
	// wires.cif: the diagonal poly gate splits the diffusion bar (2
	// nets); poly wire, metal wire and the contacted pad make 5.
	{"wires.cif", 1, 5, 0},
	{"rotated.cif", 4, 12, 0},
	{"flash.cif", 0, 2, 0},
	{"scaled.cif", 2, 6, 0},
	{"freeform.cif", 1, 3, 0},
	{"labels.cif", 0, 3, 1}, // GHOST matches nothing
}

func readCorpus(t *testing.T, name string) *cif.File {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	f, err := cif.ParseBytes(data)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return f
}

func TestCorpusCounts(t *testing.T) {
	for _, c := range corpus {
		f := readCorpus(t, c.file)
		res, err := File(f, Options{})
		if err != nil {
			t.Fatalf("%s: %v", c.file, err)
		}
		if probs := res.Netlist.Validate(); len(probs) > 0 {
			t.Errorf("%s: invalid netlist: %v", c.file, probs)
		}
		if len(res.Netlist.Devices) != c.devices {
			t.Errorf("%s: devices %d, want %d\n%s",
				c.file, len(res.Netlist.Devices), c.devices, res.Netlist)
		}
		if len(res.Netlist.Nets) != c.nets {
			t.Errorf("%s: nets %d, want %d\n%s",
				c.file, len(res.Netlist.Nets), c.nets, res.Netlist)
		}
		if len(res.Warnings) < c.minWarns {
			t.Errorf("%s: warnings %v, want at least %d", c.file, res.Warnings, c.minWarns)
		}
	}
}

// TestCorpusEnginesAgree cross-checks the scanline extractor against
// the region-based baseline and HEXT on every corpus file. (The raster
// baseline is exercised elsewhere: corpus geometry is deliberately not
// grid-aligned.)
func TestCorpusEnginesAgree(t *testing.T) {
	for _, c := range corpus {
		f := readCorpus(t, c.file)
		ares, err := File(f, Options{})
		if err != nil {
			t.Fatalf("%s: %v", c.file, err)
		}

		stream, err := frontend.New(f, frontend.Options{})
		if err != nil {
			t.Fatalf("%s: %v", c.file, err)
		}
		boxes := stream.Drain()
		cres, err := cifplot.ExtractBoxes(boxes, cifplot.Options{Labels: stream.Labels()})
		if err != nil {
			t.Fatalf("%s: %v", c.file, err)
		}
		if eq, why := netlist.Equivalent(ares.Netlist, cres.Netlist); !eq {
			t.Errorf("%s: cifplot disagrees: %s", c.file, why)
		}

		hres, err := hext.Extract(f, hext.Options{MaxLeafItems: 8})
		if err != nil {
			t.Fatalf("%s: hext: %v", c.file, err)
		}
		if eq, why := netlist.Equivalent(ares.Netlist, hres.Netlist); !eq {
			t.Errorf("%s: hext disagrees: %s", c.file, why)
		}
	}
}

func TestCorpusLabelNames(t *testing.T) {
	f := readCorpus(t, "labels.cif")
	res, err := File(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, nm := range []string{"DIFFY", "POLLY", "METTY", "ANON"} {
		if _, ok := res.Netlist.NetByName(nm); !ok {
			t.Errorf("label %s not attached\n%s", nm, res.Netlist)
		}
	}
	// METTY and ANON are on the same metal bar.
	a, _ := res.Netlist.NetByName("METTY")
	b, _ := res.Netlist.NetByName("ANON")
	if a != b {
		t.Error("METTY and ANON should share a net")
	}
}
