package extract

import (
	"context"
	"io"
	"sync"
	"time"

	"ace/internal/cif"
	"ace/internal/frontend"
	"ace/internal/geom"
	"ace/internal/scan"
	"ace/internal/tile"
)

// Engine is a long-lived extractor that owns every reusable piece of
// pipeline state: CIF parse arenas, front-end streams and stamp-run
// buffers, sweep scratch (sweepers, builders, interval lists, sort
// scratch) and output buffers. The package-level entry points build
// this state per call and drop it for the GC; an Engine keeps it
// across calls, so steady-state repeated extraction of a same-shaped
// workload approaches zero allocations per run — the regime a
// high-traffic service loop lives in.
//
// An Engine is safe for concurrent use: all pooled state sits behind
// per-Engine mutex-guarded free lists (never a process-global
// sync.Pool), so concurrent extractions draw disjoint scratch and two
// Engines never share memory. Output is byte-identical to the
// package-level entry points at every Workers × FlattenWorkers
// setting. A nil *Engine is valid and simply never pools.
type Engine struct {
	fe *frontend.Arena
	sp *scan.Pool
	tl *tile.Arena

	mu        sync.Mutex
	cifArenas []*cif.Arena
	outBufs   [][]byte
}

// NewEngine returns an empty Engine; pools fill as extractions run.
func NewEngine() *Engine {
	return &Engine{fe: frontend.NewArena(), sp: scan.NewPool(), tl: tile.NewArena()}
}

func (e *Engine) feArena() *frontend.Arena {
	if e == nil {
		return nil
	}
	return e.fe
}

func (e *Engine) scanPool() *scan.Pool {
	if e == nil {
		return nil
	}
	return e.sp
}

// getCIFArena returns a pooled parse arena (nil on a nil Engine, which
// cif treats as plain allocation).
func (e *Engine) getCIFArena() *cif.Arena {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if n := len(e.cifArenas); n > 0 {
		a := e.cifArenas[n-1]
		e.cifArenas[n-1] = nil
		e.cifArenas = e.cifArenas[:n-1]
		return a
	}
	return cif.NewArena()
}

// putCIFArena returns a parse arena once the File it backs is dead —
// the extraction Result copies everything it keeps, so this is safe
// immediately after the extraction returns.
func (e *Engine) putCIFArena(a *cif.Arena) {
	if e == nil || a == nil {
		return
	}
	e.mu.Lock()
	e.cifArenas = append(e.cifArenas, a)
	e.mu.Unlock()
}

// GetOutBuf returns an empty pooled byte buffer for rendering output
// (wirelist.AppendTo); hand it back with PutOutBuf when the rendered
// bytes are consumed.
func (e *Engine) GetOutBuf() []byte {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if n := len(e.outBufs); n > 0 {
		b := e.outBufs[n-1]
		e.outBufs[n-1] = nil
		e.outBufs = e.outBufs[:n-1]
		return b[:0]
	}
	return nil
}

// PutOutBuf returns an output buffer's capacity to the Engine.
func (e *Engine) PutOutBuf(b []byte) {
	if e == nil || cap(b) == 0 {
		return
	}
	e.mu.Lock()
	e.outBufs = append(e.outBufs, b[:0])
	e.mu.Unlock()
}

// Reader extracts a CIF design from r, reusing the Engine's arenas.
func (e *Engine) Reader(r io.Reader, opt Options) (*Result, error) {
	return e.ReaderContext(nil, r, opt)
}

// ReaderContext is Reader with cooperative cancellation.
func (e *Engine) ReaderContext(ctx context.Context, r io.Reader, opt Options) (*Result, error) {
	t0 := time.Now()
	a := e.getCIFArena()
	f, err := cif.ParseReaderOpts(r, cif.ParseOptions{
		Limits: opt.Limits, Lenient: opt.Lenient, Diag: opt.Diag, Arena: a,
	})
	if err != nil {
		e.putCIFArena(a)
		return nil, err
	}
	parse := time.Since(t0)
	res, err := e.FileContext(ctx, f, opt)
	// The Result copies everything it keeps out of the parsed File, so
	// the arena backing f can host the next parse.
	e.putCIFArena(a)
	if err != nil {
		return nil, err
	}
	res.Phases.Parse = parse
	res.Phases.Total += parse
	return res, nil
}

// String extracts a CIF design from source text, reusing the Engine's
// arenas.
func (e *Engine) String(src string, opt Options) (*Result, error) {
	return e.StringContext(nil, src, opt)
}

// StringContext is String with cooperative cancellation.
func (e *Engine) StringContext(ctx context.Context, src string, opt Options) (*Result, error) {
	t0 := time.Now()
	a := e.getCIFArena()
	f, err := cif.ParseBytesOpts([]byte(src), cif.ParseOptions{
		Limits: opt.Limits, Lenient: opt.Lenient, Diag: opt.Diag, Arena: a,
	})
	if err != nil {
		e.putCIFArena(a)
		return nil, err
	}
	parse := time.Since(t0)
	res, err := e.FileContext(ctx, f, opt)
	e.putCIFArena(a)
	if err != nil {
		return nil, err
	}
	res.Phases.Parse = parse
	res.Phases.Total += parse
	return res, nil
}

// File extracts an already-parsed design, reusing the Engine's pools
// for everything downstream of the parse.
func (e *Engine) File(f *cif.File, opt Options) (*Result, error) {
	return e.FileContext(nil, f, opt)
}

// FileContext is File with cooperative cancellation; see the
// package-level FileContext for the isolation contract.
func (e *Engine) FileContext(ctx context.Context, f *cif.File, opt Options) (*Result, error) {
	return fileContext(e, ctx, f, opt)
}

// Tiles extracts from a packed tile file, lifting the per-iterator
// decode arenas to Engine lifetime (the Reader is attached to the
// Engine's tile scratch pool; give each Reader one Engine).
func (e *Engine) Tiles(r *tile.Reader, opt Options) (*Result, error) {
	return e.TilesContext(nil, r, opt)
}

// TilesContext is Tiles with cooperative cancellation.
func (e *Engine) TilesContext(ctx context.Context, r *tile.Reader, opt Options) (*Result, error) {
	if e != nil {
		r.SetArena(e.tl)
	}
	return tilesContext(e, ctx, r, opt)
}

// TileWindow extracts only the geometry overlapping rect from a packed
// tile file; see the package-level TileWindow.
func (e *Engine) TileWindow(ctx context.Context, r *tile.Reader, rect geom.Rect, opt Options) (*Result, error) {
	if e != nil {
		r.SetArena(e.tl)
	}
	return tileWindow(e, ctx, r, rect, opt)
}
