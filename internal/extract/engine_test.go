package extract

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"ace/internal/gen"
	"ace/internal/wirelist"
)

// TestEngineByteIdentical reuses one Engine across the corpus and the
// worker settings and demands the warm wirelist equal the cold one bit
// for bit at every reuse count — the contract that makes pooling safe
// to deploy: a daemon's thousandth extraction is indistinguishable from
// a fresh process's first.
func TestEngineByteIdentical(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "*.cif"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("corpus glob: %v (%d files)", err, len(paths))
	}
	for _, p := range paths {
		src, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		text := string(src)
		cold, err := String(text, Options{})
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		baseline := wirelist.Format(cold.Netlist, wirelist.Options{})

		for _, fw := range []int{0, 1, 8} {
			for _, sw := range []int{0, 4} {
				t.Run(fmt.Sprintf("%s/fw=%d/sw=%d", filepath.Base(p), fw, sw), func(t *testing.T) {
					eng := NewEngine()
					for reuse := 0; reuse < 3; reuse++ {
						res, err := eng.String(text, Options{Workers: sw, FlattenWorkers: fw})
						if err != nil {
							t.Fatalf("reuse %d: %v", reuse, err)
						}
						out, err := wirelist.AppendTo(eng.GetOutBuf(), res.Netlist, wirelist.Options{})
						if err != nil {
							t.Fatal(err)
						}
						if string(out) != baseline {
							t.Fatalf("reuse %d: warm output diverged from cold baseline", reuse)
						}
						eng.PutOutBuf(out)
					}
				})
			}
		}
	}
}

// TestEngineByteIdenticalGeometry covers the KeepGeometry path, where
// builder geometry arenas see the heaviest reuse.
func TestEngineByteIdenticalGeometry(t *testing.T) {
	c, ok := gen.ChipByName("cherry")
	if !ok {
		t.Fatal("no cherry chip")
	}
	w := c.Build(0.05)
	opt := Options{KeepGeometry: true}
	cold, err := File(w.File, opt)
	if err != nil {
		t.Fatal(err)
	}
	baseline := wirelist.Format(cold.Netlist, wirelist.Options{Geometry: true})

	eng := NewEngine()
	for reuse := 0; reuse < 3; reuse++ {
		res, err := eng.File(w.File, opt)
		if err != nil {
			t.Fatalf("reuse %d: %v", reuse, err)
		}
		if got := wirelist.Format(res.Netlist, wirelist.Options{Geometry: true}); got != baseline {
			t.Fatalf("reuse %d: warm geometry output diverged", reuse)
		}
	}
}

// TestEngineConcurrent hammers one Engine from several goroutines;
// run under -race this is the proof that the pools are mutex-clean and
// concurrent extractions draw disjoint scratch.
func TestEngineConcurrent(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "polygons.cif"))
	if err != nil {
		t.Fatal(err)
	}
	text := string(src)
	cold, err := String(text, Options{})
	if err != nil {
		t.Fatal(err)
	}
	baseline := wirelist.Format(cold.Netlist, wirelist.Options{})

	eng := NewEngine()
	var wg sync.WaitGroup
	errs := make(chan error, 4*5)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				res, err := eng.String(text, Options{Workers: 2})
				if err != nil {
					errs <- err
					return
				}
				out, err := wirelist.AppendTo(eng.GetOutBuf(), res.Netlist, wirelist.Options{})
				if err != nil {
					errs <- err
					return
				}
				if string(out) != baseline {
					errs <- fmt.Errorf("goroutine %d iter %d: output diverged", g, i)
				}
				eng.PutOutBuf(out)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// BenchmarkWarmEngine is the CI bench-smoke target: steady-state
// extraction of a small synthetic chip through a warm Engine. Compare
// against BenchmarkColdExtract to see what the pools buy.
func BenchmarkWarmEngine(b *testing.B) {
	c, ok := gen.ChipByName("cherry")
	if !ok {
		b.Fatal("no cherry chip")
	}
	w := c.Build(0.05)
	eng := NewEngine()
	for i := 0; i < 2; i++ {
		if _, err := eng.File(w.File, Options{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.File(w.File, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkColdExtract is the package-level comparison row for
// BenchmarkWarmEngine.
func BenchmarkColdExtract(b *testing.B) {
	c, ok := gen.ChipByName("cherry")
	if !ok {
		b.Fatal("no cherry chip")
	}
	w := c.Build(0.05)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := File(w.File, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
