// Package extract ties ACE together: CIF in, wirelist out. It runs
// the front end (parse + lazy instantiate + sort) and the back end
// (scanline sweep) and reports the per-phase time distribution the
// paper measures in §5.
package extract

import (
	"context"
	"io"
	"time"

	"ace/internal/cif"
	"ace/internal/diag"
	"ace/internal/frontend"
	"ace/internal/guard"
	"ace/internal/netlist"
	"ace/internal/scan"
)

// Options configures an extraction.
type Options struct {
	// KeepGeometry records net and device geometry in the output
	// (ACE's user option; off by default exactly as in the paper:
	// "Under normal operation this is suppressed").
	KeepGeometry bool

	// Grid is the manhattanisation grid for non-manhattan geometry;
	// zero selects the front-end default.
	Grid int64

	// Profile enables per-phase timing. It adds two clock reads per
	// front-end call, so leave it off for pure benchmarking runs.
	Profile bool

	// InsertionSort selects the paper's original per-box insertion
	// sort in the back end (see scan.Options.InsertionSort); used by
	// the ablation benchmark.
	InsertionSort bool

	// Workers selects the parallel sweep: the design is split into up
	// to Workers horizontal bands at scanline stop boundaries, each
	// band is swept concurrently, and the bands are stitched by
	// matching their boundary cross-sections (see scan.ParallelSweep).
	// Zero or one runs the classic serial sweep. The parallel path
	// materialises the instantiated design up front, so serial wins on
	// small designs and when memory is tighter than time.
	Workers int

	// FlattenWorkers switches the front end from the lazy heap stream
	// to the pre-flattened ingest (frontend.Flatten): symbol bodies
	// flatten once into sorted arenas, instances are stamped by that
	// many workers, and boxes stream into the sweep as they are
	// produced, so instantiation overlaps the sweep. Zero keeps the
	// heap front end. The wirelist is byte-identical either way, at
	// every FlattenWorkers × Workers combination.
	FlattenWorkers int

	// Limits are the extraction's resource budgets, enforced in the
	// parser (items), the front end (hierarchy depth, materialised
	// boxes, retained bytes) and the sweep (boxes in, active-list
	// footprint). Zero fields are unlimited except depth, which
	// defaults to guard.DefaultMaxDepth; violations surface as
	// *guard.LimitError with stage attribution.
	Limits guard.Limits

	// Lenient selects the fail-soft front end: parse errors, unresolved
	// symbol calls, recursive definitions and over-deep hierarchies are
	// recorded as located diagnostics in Result.Diagnostics and the
	// damaged input is skipped at the nearest resynchronisation point,
	// so every well-formed command still extracts. On a clean design
	// the wirelist is byte-identical to strict mode at every worker
	// setting. Resource budgets (Limits), cancellation and internal
	// panics abort exactly as in strict mode.
	Lenient bool

	// Diag caps the diagnostics a lenient extraction retains; the zero
	// value applies diag.DefaultMaxDiagnostics.
	Diag diag.Limits
}

// Phases is the paper's §5 time breakdown, extended with the streamed
// ingest pipeline's flatten and sort phases.
type Phases struct {
	Parse    time.Duration // parsing the CIF text
	FrontEnd time.Duration // heap path: instantiating and sorting geometry
	Flatten  time.Duration // flat path: arena build + instance stamping (wall-clock; overlaps the sweep)
	Sort     time.Duration // flat path: CPU time re-sorting stamped runs (inside Flatten)
	Insert   time.Duration // entering geometry into the active lists
	Devices  time.Duration // computing devices and nets
	Output   time.Duration // building the output netlist
	Total    time.Duration
}

// Misc returns the time not attributed to a specific phase. Flatten
// wall-clock overlaps the sweep phases, and Sort is contained in
// Flatten, so neither subtracts from the total.
func (p Phases) Misc() time.Duration {
	m := p.Total - p.Parse - p.FrontEnd - p.Insert - p.Devices - p.Output
	if m < 0 {
		return 0
	}
	return m
}

// Result is a completed extraction.
type Result struct {
	Netlist  *netlist.Netlist
	Counters scan.Counters
	Frontend frontend.Stats
	Phases   Phases
	Warnings []string

	// Diagnostics carries the unified findings of the run, sorted by
	// the diag ordering contract: parser warnings always, plus — in
	// lenient mode — every recovered fault. Error-severity entries mean
	// parts of the input were skipped; the wirelist covers the rest.
	Diagnostics diag.Set

	// Tile reports disk I/O when the design came from a packed tile
	// file (Tiles / TileWindow); nil for the CIF pipelines.
	Tile *TileIO
}

// Reader extracts a CIF design from r.
func Reader(r io.Reader, opt Options) (*Result, error) {
	return ReaderContext(nil, r, opt)
}

// ReaderContext is Reader with cooperative cancellation: when ctx is
// cancelled or times out, the pipeline unwinds within one unit of
// work per stage (a scanline stop, a stamped instance) and returns a
// stage-attributed error wrapping ctx.Err(). A nil ctx never cancels.
func ReaderContext(ctx context.Context, r io.Reader, opt Options) (*Result, error) {
	var e *Engine
	return e.ReaderContext(ctx, r, opt)
}

// String extracts a CIF design from source text.
func String(src string, opt Options) (*Result, error) {
	return StringContext(nil, src, opt)
}

// StringContext is String with cooperative cancellation (see
// ReaderContext).
func StringContext(ctx context.Context, src string, opt Options) (*Result, error) {
	var e *Engine
	return e.StringContext(ctx, src, opt)
}

// File extracts an already-parsed design.
func File(f *cif.File, opt Options) (*Result, error) {
	return FileContext(nil, f, opt)
}

// FileContext is File with cooperative cancellation (see
// ReaderContext). It is panic-isolated end to end: a panic in any
// pipeline stage — including worker goroutines — surfaces as a
// *guard.PanicError naming the stage, never as a process crash.
func FileContext(ctx context.Context, f *cif.File, opt Options) (*Result, error) {
	return fileContext(nil, ctx, f, opt)
}

// fileContext is the shared body of FileContext and Engine.FileContext;
// a nil engine means no pooling.
func fileContext(e *Engine, ctx context.Context, f *cif.File, opt Options) (res *Result, err error) {
	defer guard.Recover(guard.StageExtract, &err)
	if err := guard.Inject(guard.StageExtract); err != nil {
		return nil, err
	}
	var ds diag.Set
	ds.SetLimits(opt.Diag)
	res, err = fileCtx(e, ctx, f, opt, &ds)
	if err != nil {
		return nil, err
	}
	// One merged, contract-ordered set: the parser's located findings
	// first, then the front end's unlocated ones.
	res.Diagnostics.SetLimits(opt.Diag)
	res.Diagnostics.Merge(&f.Diagnostics)
	res.Diagnostics.Merge(&ds)
	res.Diagnostics.Sort()
	return res, nil
}

func fileCtx(e *Engine, ctx context.Context, f *cif.File, opt Options, ds *diag.Set) (*Result, error) {
	t0 := time.Now()
	stream, err := frontend.New(f, frontend.Options{
		Grid: opt.Grid, Limits: opt.Limits, Lenient: opt.Lenient, Diags: ds,
		Arena: e.feArena(),
	})
	if err != nil {
		return nil, err
	}

	if opt.FlattenWorkers > 0 {
		return flattenFile(e, ctx, f, stream, opt, t0)
	}
	if opt.Workers > 1 {
		return parallelFile(e, ctx, f, stream, opt, t0)
	}

	var src scan.Source = stream
	var timed *timedSource
	if opt.Profile {
		timed = &timedSource{inner: stream}
		src = timed
	}

	// The sweep needs the labels up front; forcing them early costs
	// one walk of the call heap and keeps the sweep single-pass.
	labels := stream.Labels()

	sres, err := scan.Sweep(src, scan.Options{
		KeepGeometry:  opt.KeepGeometry,
		Labels:        labels,
		InsertionSort: opt.InsertionSort,
		Ctx:           ctx,
		Limits:        opt.Limits,
		Pool:          e.scanPool(),
	})
	if err != nil {
		return nil, err
	}

	out := &Result{
		Netlist:  sres.Netlist,
		Counters: sres.Counters,
		Frontend: stream.Stats(),
		Warnings: append(f.Warnings, sres.Warnings...),
	}
	// The stream is fully drained and everything kept is copied; its
	// heap and label capacity can serve the next extraction.
	e.feArena().PutStream(stream)
	out.Phases.Total = time.Since(t0)
	if opt.Profile {
		fe := timed.spent
		out.Phases.FrontEnd = fe
		// Front-end calls happen inside the sweep's insert phase;
		// attribute them to the front end, not to insertion.
		out.Phases.Insert = sres.Timing.Insert - fe
		if out.Phases.Insert < 0 {
			out.Phases.Insert = 0
		}
		out.Phases.Devices = sres.Timing.Devices
		out.Phases.Output = sres.Timing.Output
	}
	return out, nil
}

// parallelFile is the Workers > 1 path of File: it materialises the
// instantiated design (the band partitioner needs the full box list)
// and runs the band-sharded sweep.
func parallelFile(e *Engine, ctx context.Context, f *cif.File, stream *frontend.Stream, opt Options, t0 time.Time) (*Result, error) {
	tFE := time.Now()
	// Labels are forced before the drain so their order matches the
	// serial path (and the streamed flatten path, which reuses the
	// fresh stream's label order): Labels() on an undrained stream
	// expands only label-bearing subtrees in a fixed order, whereas
	// labels collected during a full drain surface in heap-pop order.
	labels := stream.Labels()
	pool := e.scanPool()
	boxes, err := drainLimited(ctx, stream, opt.Limits, pool.GetBoxBuf())
	if err != nil {
		return nil, err
	}
	fe := time.Since(tFE)

	res, err := scan.ParallelSweep(boxes, scan.Options{
		KeepGeometry:  opt.KeepGeometry,
		Labels:        labels,
		InsertionSort: opt.InsertionSort,
		Ctx:           ctx,
		Limits:        opt.Limits,
		Pool:          pool,
	}, opt.Workers)
	if err != nil {
		return nil, err
	}

	out := &Result{
		Netlist:  res.Netlist,
		Counters: res.Counters,
		Frontend: stream.Stats(),
		Warnings: append(f.Warnings, res.Warnings...),
	}
	// The materialised box list and the drained stream are dead once
	// the sweep has finished (the Result copies what it keeps).
	pool.PutBoxBuf(boxes)
	e.feArena().PutStream(stream)
	out.Phases.Total = time.Since(t0)
	if opt.Profile {
		out.Phases.FrontEnd = fe
		// Band times overlap in wall-clock; report their sum, which is
		// the CPU the sweep consumed.
		out.Phases.Insert = res.Timing.Insert
		out.Phases.Devices = res.Timing.Devices
		out.Phases.Output = res.Timing.Output
	}
	return out, nil
}

// flattenFile is the FlattenWorkers > 0 path of File: the streamed
// ingest pipeline. The design pre-flattens into per-symbol arenas,
// instances stamp in parallel, and the sweep — serial or band-parallel
// — consumes boxes while stamping is still in flight. Labels come from
// the legacy stream (cheap: only label-bearing subtrees expand) so
// their order is bit-for-bit the heap path's.
func flattenFile(e *Engine, ctx context.Context, f *cif.File, stream *frontend.Stream, opt Options, t0 time.Time) (*Result, error) {
	labels := stream.Labels()
	fw := opt.FlattenWorkers

	// The stamp pool outlives a failed sweep unless something cancels
	// it, so the flatten always gets a cancellable context — the
	// deferred cancel reaps the pool (and its cancellation watcher) on
	// every exit path, including errors and panics.
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	tF := time.Now()
	// Diags stays nil here: the fresh Stream above already recorded the
	// lenient front end's findings; the flatten only needs the same ban
	// decisions, which are deterministic.
	fl, err := frontend.Flatten(ctx, f, frontend.Options{
		Grid: opt.Grid, Limits: opt.Limits, Lenient: opt.Lenient,
		Arena: e.feArena(),
	})
	if err != nil {
		return nil, err
	}
	setup := time.Since(tF)

	sopt := scan.Options{
		KeepGeometry:  opt.KeepGeometry,
		Labels:        labels,
		InsertionSort: opt.InsertionSort,
		Ctx:           ctx,
		Limits:        opt.Limits,
		Pool:          e.scanPool(),
	}

	var res *scan.Result
	var timed *timedSource
	serial := func() (*scan.Result, error) {
		var src scan.Source = fl.Stream(fw)
		if opt.Profile {
			timed = &timedSource{inner: src}
			src = timed
		}
		return scan.Sweep(src, sopt)
	}
	if opt.Workers > 1 {
		// Cut selection needs the exact top multiset, so the prepass
		// stamps box tops (and any manhattanised geometry) first; the
		// boxes themselves still stream. Bands and cuts replicate
		// ParallelSweep's choices exactly, so the stitched wirelist is
		// byte-identical to the materialising pipeline's.
		fl.Prepare(fw)
		tops, terr := fl.SortedTops(fw)
		if terr != nil {
			return nil, terr
		}
		bands := scan.EffectiveBands(len(tops), opt.Workers)
		var cuts []int64
		if bands >= 2 {
			cuts = scan.CutsFromTops(tops, bands)
		}
		if len(cuts) == 0 {
			res, err = serial()
		} else {
			srcs := fl.BandStreams(fw, cuts)
			bsrcs := make([]scan.Source, len(srcs))
			for i, s := range srcs {
				bsrcs[i] = s
			}
			res, err = scan.ParallelSweepSources(bsrcs, cuts, len(tops), sopt)
		}
	} else {
		res, err = serial()
	}
	// A failed stamp pool makes its streams report exhaustion (the
	// scan.Source contract has no error channel), so the sweep can
	// "succeed" on truncated input: the flatten's own error is the
	// root cause and takes precedence.
	if ferr := fl.Err(); ferr != nil {
		return nil, ferr
	}
	if err != nil {
		return nil, err
	}

	out := &Result{
		Netlist:  res.Netlist,
		Counters: res.Counters,
		Frontend: fl.Stats(),
		Warnings: append(f.Warnings, res.Warnings...),
	}
	// Every stream is drained and the Result owns its data; the stamped
	// runs and the label stream go back to the arena.
	fl.Release()
	e.feArena().PutStream(stream)
	out.Phases.Total = time.Since(t0)
	if opt.Profile {
		flatten, _, sortRuns := fl.Timing()
		out.Phases.Flatten = setup + flatten
		out.Phases.Sort = sortRuns
		out.Phases.Insert = res.Timing.Insert
		if timed != nil {
			// Serial streaming: time the sweep spent blocked on (or
			// merging from) the flatten belongs to the ingest, not to
			// active-list insertion.
			out.Phases.Insert -= timed.spent
			if out.Phases.Insert < 0 {
				out.Phases.Insert = 0
			}
		}
		out.Phases.Devices = res.Timing.Devices
		out.Phases.Output = res.Timing.Output
	}
	return out, nil
}

// drainLimited materialises the stream like frontend.Stream.Drain, but
// re-checks cancellation and the box/memory budgets every chunk so a
// runaway instantiation fails fast instead of exhausting memory before
// the sweep ever runs.
func drainLimited(ctx context.Context, stream *frontend.Stream, limits guard.Limits, buf []frontend.Box) ([]frontend.Box, error) {
	const chunk = 4096
	out := buf[:0]
	for {
		b, ok := stream.Next()
		if !ok {
			if err := limits.CheckBoxes(guard.StageFrontend, int64(len(out))); err != nil {
				return nil, err
			}
			return out, nil
		}
		out = append(out, b)
		if len(out)%chunk == 0 {
			if err := guard.Ctx(ctx, guard.StageFrontend); err != nil {
				return nil, err
			}
			if err := limits.CheckBoxes(guard.StageFrontend, int64(len(out))); err != nil {
				return nil, err
			}
			if err := limits.CheckMem(guard.StageFrontend, int64(len(out))*guard.BoxBytes); err != nil {
				return nil, err
			}
		}
	}
}

// timedSource measures the time spent inside the front end.
type timedSource struct {
	inner scan.Source
	spent time.Duration
}

func (t *timedSource) NextTop() (int64, bool) {
	s := time.Now()
	y, ok := t.inner.NextTop()
	t.spent += time.Since(s)
	return y, ok
}

func (t *timedSource) Next() (frontend.Box, bool) {
	s := time.Now()
	b, ok := t.inner.Next()
	t.spent += time.Since(s)
	return b, ok
}
