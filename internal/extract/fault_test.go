package extract

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"ace/internal/cif"
	"ace/internal/gen"
	"ace/internal/guard"
	"ace/internal/wirelist"
)

// faultConfigs are the pipeline shapes the fault matrix drives, each
// paired with the stages an extraction of that shape actually reaches.
// The design has 1500 boxes, enough that Workers: 4 forms real bands
// and the flatten path picks cuts.
var faultConfigs = []struct {
	name   string
	opt    Options
	stages []string
}{
	{"heap-serial", Options{},
		[]string{guard.StageFrontend, guard.StageSweep, guard.StageExtract}},
	{"heap-bands", Options{Workers: 4},
		[]string{guard.StageFrontend, guard.StageBand, guard.StageStitch, guard.StageExtract}},
	{"flat-serial", Options{FlattenWorkers: 2},
		[]string{guard.StageFrontend, guard.StageArena, guard.StageStamp, guard.StageSweep, guard.StageExtract}},
	{"flat-bands", Options{FlattenWorkers: 2, Workers: 4},
		[]string{guard.StageFrontend, guard.StageArena, guard.StageStamp, guard.StagePrepass,
			guard.StageBand, guard.StageStitch, guard.StageExtract}},
}

func faultDesign() *cif.File { return gen.Statistical(1500, 11).File }

func kindName(k guard.FaultKind) string {
	switch k {
	case guard.FaultPanic:
		return "panic"
	case guard.FaultDelay:
		return "delay"
	default:
		return "error"
	}
}

// checkFaultError asserts the typed-error contract: an injected error
// surfaces as a *guard.StageError naming the stage and unwrapping to
// guard.ErrInjected; an injected panic surfaces as a *guard.PanicError
// naming the stage and carrying a stack — never a process crash.
func checkFaultError(t *testing.T, err error, stage string, kind guard.FaultKind) {
	t.Helper()
	if err == nil {
		t.Fatalf("stage %s kind %s: extraction succeeded, want a typed error", stage, kindName(kind))
	}
	switch kind {
	case guard.FaultPanic:
		var pe *guard.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("stage %s: got %v (%T), want *guard.PanicError", stage, err, err)
		}
		if pe.Stage != stage {
			t.Fatalf("panic attributed to %q, want %q", pe.Stage, stage)
		}
		if len(pe.Stack) == 0 {
			t.Fatalf("panic error carries no stack")
		}
	default:
		if !errors.Is(err, guard.ErrInjected) {
			t.Fatalf("stage %s: got %v, want ErrInjected through the wrapper", stage, err)
		}
		var se *guard.StageError
		if !errors.As(err, &se) {
			t.Fatalf("stage %s: got %v (%T), want *guard.StageError", stage, err, err)
		}
		if se.Stage != stage {
			t.Fatalf("error attributed to %q, want %q", se.Stage, stage)
		}
	}
}

// waitNoLeaks asserts the goroutine count returns to its pre-run base:
// a failed extraction must unwind its worker pools, not strand them.
func waitNoLeaks(t *testing.T, base int) {
	t.Helper()
	if n, ok := guard.WaitGoroutines(base+2, 5*time.Second); !ok {
		t.Fatalf("goroutines leaked: %d still running, base was %d", n, base)
	}
}

// TestFaultMatrix injects an error and a panic into every stage of
// every pipeline shape and asserts the failure contract each time: a
// typed error attributed to the injected stage, no partial result, and
// no leaked worker goroutines.
func TestFaultMatrix(t *testing.T) {
	f := faultDesign()
	for _, cfg := range faultConfigs {
		for _, stage := range cfg.stages {
			for _, kind := range []guard.FaultKind{guard.FaultError, guard.FaultPanic} {
				name := fmt.Sprintf("%s/%s/%s", cfg.name, strings.ReplaceAll(stage, "/", "."), kindName(kind))
				t.Run(name, func(t *testing.T) {
					fp := &guard.Failpoint{Stage: stage, Kind: kind}
					restore := guard.SetInjector(fp)
					defer restore()
					base := runtime.NumGoroutine()

					res, err := File(f, cfg.opt)
					if res != nil {
						t.Fatalf("got a result alongside the failure")
					}
					checkFaultError(t, err, stage, kind)
					if fp.Fired() == 0 {
						t.Fatalf("failpoint at %s never fired (stage unreachable in config %s)", stage, cfg.name)
					}
					restore()
					waitNoLeaks(t, base)
				})
			}
		}
	}
}

// TestFaultParse drives the parse stage through the text entry point
// (the matrix above starts from a parsed file).
func TestFaultParse(t *testing.T) {
	const src = "L NM; B 100 100 0 0;\nE\n"
	for _, kind := range []guard.FaultKind{guard.FaultError, guard.FaultPanic} {
		t.Run(kindName(kind), func(t *testing.T) {
			fp := &guard.Failpoint{Stage: guard.StageParse, Kind: kind}
			restore := guard.SetInjector(fp)
			defer restore()
			_, err := String(src, Options{})
			checkFaultError(t, err, guard.StageParse, kind)
		})
	}
}

// TestFaultSkipCount pins the failpoint's determinism end to end: with
// Skip set past the stage's total hits the extraction succeeds and the
// hit count is reproducible, so a test can aim a fault at the N'th
// work unit of a stage and get the same unit every run.
func TestFaultSkipCount(t *testing.T) {
	f := faultDesign()
	fp := &guard.Failpoint{Stage: guard.StageStamp, Kind: guard.FaultError, Skip: 1 << 40}
	restore := guard.SetInjector(fp)
	defer restore()
	if _, err := File(f, Options{FlattenWorkers: 2}); err != nil {
		t.Fatalf("skipped failpoint failed the run: %v", err)
	}
	hits := fp.Hits()
	if hits == 0 {
		t.Fatalf("stamp stage never hit")
	}
	if fp.Fired() != 0 {
		t.Fatalf("failpoint fired %d times despite Skip", fp.Fired())
	}
	fp2 := &guard.Failpoint{Stage: guard.StageStamp, Kind: guard.FaultError, Skip: 1 << 40}
	guard.SetInjector(fp2)
	if _, err := File(f, Options{FlattenWorkers: 2}); err != nil {
		t.Fatalf("second run failed: %v", err)
	}
	if fp2.Hits() != hits {
		t.Fatalf("stamp hits not reproducible: %d then %d", hits, fp2.Hits())
	}
}

// TestCancelPreCancelled: an already-cancelled context must abort every
// pipeline shape promptly with an error that still satisfies
// errors.Is(err, context.Canceled), and leave no goroutines behind.
func TestCancelPreCancelled(t *testing.T) {
	f := faultDesign()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, cfg := range faultConfigs {
		t.Run(cfg.name, func(t *testing.T) {
			base := runtime.NumGoroutine()
			t0 := time.Now()
			_, err := FileContext(ctx, f, cfg.opt)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("got %v, want context.Canceled through the wrapper", err)
			}
			if d := time.Since(t0); d > 10*time.Second {
				t.Fatalf("cancellation took %v", d)
			}
			waitNoLeaks(t, base)
		})
	}
}

// TestCancelBoundedLatency cancels mid-extraction while an injected
// delay holds the sweep busy, and asserts the pipeline notices within
// a bounded number of checkpoint intervals rather than running the
// design to completion.
func TestCancelBoundedLatency(t *testing.T) {
	f := faultDesign()
	for _, cfg := range faultConfigs {
		// Slow the stage the config's sweep actually runs in, so the
		// extraction is guaranteed to be mid-flight when cancel fires.
		delayStage := guard.StageSweep
		if cfg.opt.Workers > 1 {
			delayStage = guard.StageBand
		}
		t.Run(cfg.name, func(t *testing.T) {
			fp := &guard.Failpoint{Stage: delayStage, Kind: guard.FaultDelay, Delay: 200 * time.Millisecond}
			restore := guard.SetInjector(fp)
			defer restore()
			base := runtime.NumGoroutine()

			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			timer := time.AfterFunc(20*time.Millisecond, cancel)
			defer timer.Stop()

			t0 := time.Now()
			_, err := FileContext(ctx, f, cfg.opt)
			elapsed := time.Since(t0)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("got %v, want context.Canceled", err)
			}
			// The checkpoints run cancellation checks before the (injected)
			// delay, so the latency bound is a couple of delay periods, not
			// one delay per remaining scanline stop.
			if elapsed > 5*time.Second {
				t.Fatalf("cancellation latency %v, want bounded", elapsed)
			}
			restore()
			waitNoLeaks(t, base)
		})
	}
}

// bombCIF builds a hierarchy bomb: levels symbols where each level
// instantiates the one below it fanout times, so the flattened design
// holds fanout^(levels-1) boxes — far beyond physical memory for
// 100^9 — while the source text stays a few kilobytes.
func bombCIF(levels, fanout int) string {
	var b strings.Builder
	b.WriteString("DS 1 1 1;\nL NM;\nB 10 10 0 0;\nDF;\n")
	for l := 2; l <= levels; l++ {
		fmt.Fprintf(&b, "DS %d 1 1;\n", l)
		for j := 0; j < fanout; j++ {
			fmt.Fprintf(&b, "C %d T %d %d;\n", l-1, j*20, j*15)
		}
		b.WriteString("DF;\n")
	}
	fmt.Fprintf(&b, "C %d;\nE\n", levels)
	return b.String()
}

// TestHierarchyBombFlat: the 10-level 100x fan-out bomb must fail fast
// in the arena fold with a typed LimitError — before the fold
// materialises anything near the 10^18-box flattened design.
func TestHierarchyBombFlat(t *testing.T) {
	f, err := cif.ParseString(bombCIF(10, 100))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		lim  guard.Limits
		what string
	}{
		{"expanded-boxes", guard.Limits{MaxExpandedBoxes: 1 << 20}, "expanded boxes"},
		{"memory-bytes", guard.Limits{MaxMemBytes: 8 << 20}, "memory bytes"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			t0 := time.Now()
			_, err := File(f, Options{FlattenWorkers: 2, Limits: tc.lim})
			elapsed := time.Since(t0)
			var le *guard.LimitError
			if !errors.As(err, &le) {
				t.Fatalf("got %v (%T), want *guard.LimitError", err, err)
			}
			if le.Stage != guard.StageArena {
				t.Fatalf("limit tripped at %q, want %q", le.Stage, guard.StageArena)
			}
			if le.What != tc.what {
				t.Fatalf("limit %q tripped, want %q", le.What, tc.what)
			}
			if elapsed > 30*time.Second {
				t.Fatalf("bomb took %v to reject — not failing fast", elapsed)
			}
		})
	}
}

// TestHierarchyBombHeap: the lazily instantiated paths must also stop
// at the box budget — in the sweep for the serial path and in the
// drain for the band path — instead of streaming the bomb to OOM. A
// smaller bomb keeps the pre-budget streaming cheap.
func TestHierarchyBombHeap(t *testing.T) {
	f, err := cif.ParseString(bombCIF(5, 10))
	if err != nil {
		t.Fatal(err)
	}
	lim := guard.Limits{MaxBoxes: 4096}
	for _, tc := range []struct {
		name  string
		opt   Options
		stage string
	}{
		{"serial-sweep", Options{Limits: lim}, guard.StageSweep},
		{"band-drain", Options{Workers: 4, Limits: lim}, guard.StageFrontend},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := File(f, tc.opt)
			var le *guard.LimitError
			if !errors.As(err, &le) {
				t.Fatalf("got %v (%T), want *guard.LimitError", err, err)
			}
			if le.Stage != tc.stage {
				t.Fatalf("limit tripped at %q, want %q", le.Stage, tc.stage)
			}
			if le.What != "boxes" {
				t.Fatalf("limit %q tripped, want boxes", le.What)
			}
		})
	}
}

// TestGuardedPipelineByteIdentical: with a live context and every
// budget armed (but none tripping), the wirelist must stay
// byte-identical to the unguarded run across the flatten x sweep
// worker matrix — the hardening layer is a pure no-op on the happy
// path.
func TestGuardedPipelineByteIdentical(t *testing.T) {
	lim := guard.Limits{
		MaxBoxes:         1 << 40,
		MaxExpandedBoxes: 1 << 40,
		MaxMemBytes:      1 << 50,
		MaxDepth:         1000,
	}
	designs := map[string]*cif.File{
		"statistical": faultDesign(),
		"cherry":      gen.MustBenchChip("cherry").File,
		"mesh":        gen.Mesh(5).File,
	}
	for name, f := range designs {
		want := formatWirelist(t, name, f, Options{})
		for _, fw := range []int{1, 8} {
			for _, sw := range []int{1, 4} {
				res, err := FileContext(context.Background(), f, Options{
					Workers: sw, FlattenWorkers: fw, Limits: lim,
				})
				if err != nil {
					t.Fatalf("%s fw=%d sw=%d: %v", name, fw, sw, err)
				}
				got := wirelist.Format(res.Netlist, wirelist.Options{})
				if got != want {
					i := diffPos(want, got)
					t.Fatalf("%s fw=%d sw=%d: guarded wirelist differs at byte %d", name, fw, sw, i)
				}
			}
		}
	}
}
