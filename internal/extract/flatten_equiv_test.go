package extract

import (
	"testing"

	"ace/internal/cif"
	"ace/internal/gen"
	"ace/internal/wirelist"
)

// The acceptance matrix: every flatten grain crossed with every sweep
// width must reproduce the legacy pipeline's wirelist byte for byte.
var (
	equivFlattenWorkers = []int{1, 2, 8}
	equivSweepWorkers   = []int{1, 4}
)

func equivDesigns(t *testing.T) map[string]*cif.File {
	t.Helper()
	out := map[string]*cif.File{}
	for _, c := range corpus {
		out[c.file] = readCorpus(t, c.file)
	}
	for _, w := range gen.BenchChips() {
		out[w.Name] = w.File
	}
	out["mesh"] = gen.Mesh(5).File
	out["statistical"] = gen.Statistical(1500, 11).File
	return out
}

func formatWirelist(t *testing.T, name string, f *cif.File, opt Options) string {
	t.Helper()
	res, err := File(f, opt)
	if err != nil {
		t.Fatalf("%s %+v: %v", name, opt, err)
	}
	return wirelist.Format(res.Netlist, wirelist.Options{Geometry: opt.KeepGeometry})
}

func diffPos(a, b string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// TestFlattenWirelistByteIdentical runs the full equivalence matrix:
// for every corpus file and generated chip, the streamed ingest at
// flatten workers {1, 2, 8} must produce a wirelist byte-identical to
// the legacy heap pipeline's, at sweep workers {1, 4} each.
func TestFlattenWirelistByteIdentical(t *testing.T) {
	for name, f := range equivDesigns(t) {
		for _, sw := range equivSweepWorkers {
			want := formatWirelist(t, name, f, Options{Workers: sw})
			for _, fw := range equivFlattenWorkers {
				got := formatWirelist(t, name, f, Options{Workers: sw, FlattenWorkers: fw})
				if got != want {
					i := diffPos(want, got)
					lo := i - 60
					if lo < 0 {
						lo = 0
					}
					t.Fatalf("%s sweep=%d flatten=%d: wirelist differs at byte %d\nlegacy:  …%q\nflatten: …%q",
						name, sw, fw, i, want[lo:min(i+60, len(want))], got[lo:min(i+60, len(got))])
				}
			}
		}
	}
}

// TestFlattenWirelistGeometry repeats a slice of the matrix with
// geometry recording on: recorded net and device rectangles depend on
// strip formation order, so this pins the streamed path's delivery
// order at the finest level the output can express.
func TestFlattenWirelistGeometry(t *testing.T) {
	for _, name := range []string{"polygons.cif", "labels.cif", "rotated.cif"} {
		f := readCorpus(t, name)
		for _, sw := range equivSweepWorkers {
			want := formatWirelist(t, name, f, Options{Workers: sw, KeepGeometry: true})
			for _, fw := range equivFlattenWorkers {
				got := formatWirelist(t, name, f, Options{Workers: sw, FlattenWorkers: fw, KeepGeometry: true})
				if got != want {
					i := diffPos(want, got)
					t.Fatalf("%s sweep=%d flatten=%d: geometry wirelist differs at byte %d",
						name, sw, fw, i)
				}
			}
		}
	}
}
