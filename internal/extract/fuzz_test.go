package extract

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ace/internal/guard"
)

// FuzzExtract drives arbitrary bytes through the full pipeline —
// parse, flatten, sweep, wirelist counters — in every pipeline shape,
// under tight resource budgets. The invariant is the robustness
// contract end to end: malformed or hostile input may be rejected with
// an error, but must never panic (a *guard.PanicError surfacing from
// the panic-isolated pipeline IS a caught crash, so it fails the
// fuzz), never blow the budgets' memory, and never disagree between
// the serial and parallel shapes when it is accepted.
func FuzzExtract(f *testing.F) {
	names, _ := filepath.Glob(filepath.Join("testdata", "*.cif"))
	for _, n := range names {
		if data, err := os.ReadFile(n); err == nil {
			f.Add(data)
		}
	}
	f.Add([]byte("L NM; B 100 100 0 0;\nE\n"))
	f.Add([]byte("DS 1 2 1;\nL ND; B 50 250 0 0;\nDF;\nC 1;\nC 1 T 300 0 MX;\nE\n"))
	f.Add([]byte("DS 1 1 1;\nL NP; W 20 0 0 100 0 100 100;\nDF;\nDS 2 1 1;\nC 1;\nC 1 R 0 -1;\nDF;\nC 2;\n94 A 0 0 NP;\nE\n"))
	f.Add([]byte("P 0 0 800 0 800 1800 400 2400;\nE"))
	// Malformed seeds: the recovery corpus exercises every resync path.
	malformed, _ := filepath.Glob(filepath.Join("..", "cif", "testdata", "malformed", "*.cif"))
	for _, n := range malformed {
		if data, err := os.ReadFile(n); err == nil {
			f.Add(data)
		}
	}

	lim := guard.Limits{
		MaxBoxes:         20000,
		MaxExpandedBoxes: 20000,
		MaxDepth:         64,
		MaxMemBytes:      16 << 20,
	}
	shapes := []Options{
		{Limits: lim},
		{Workers: 2, Limits: lim},
		{FlattenWorkers: 2, Limits: lim},
		{FlattenWorkers: 2, Workers: 2, Limits: lim},
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		var devices, nets = -1, -1
		for _, opt := range shapes {
			res, err := StringContext(ctx, string(data), opt)
			if err != nil {
				var pe *guard.PanicError
				if errors.As(err, &pe) {
					t.Fatalf("pipeline panicked in %s: %v\n%s", pe.Stage, pe.Value, pe.Stack)
				}
				continue
			}
			if devices == -1 {
				devices, nets = len(res.Netlist.Devices), len(res.Netlist.Nets)
				continue
			}
			if len(res.Netlist.Devices) != devices || len(res.Netlist.Nets) != nets {
				t.Fatalf("shapes disagree: %+v got %d devices / %d nets, first shape got %d / %d",
					opt, len(res.Netlist.Devices), len(res.Netlist.Nets), devices, nets)
			}
		}

		// Lenient shape: recovery may reject only with typed errors
		// (budgets, cancellation), never a caught panic, and on inputs
		// with no error diagnostics it must agree exactly with strict.
		lres, lerr := StringContext(ctx, string(data), Options{Lenient: true, Limits: lim})
		if lerr != nil {
			var pe *guard.PanicError
			if errors.As(lerr, &pe) {
				t.Fatalf("lenient pipeline panicked in %s: %v\n%s", pe.Stage, pe.Value, pe.Stack)
			}
			var le *guard.LimitError
			if !errors.As(lerr, &le) && !errors.Is(lerr, context.DeadlineExceeded) {
				t.Fatalf("lenient rejected input with untyped error: %v", lerr)
			}
			return
		}
		if lres.Diagnostics.Len() == 0 && devices == -1 {
			t.Fatalf("lenient clean (zero diagnostics) but strict rejected the input")
		}
		if devices != -1 {
			// Strict accepted: lenient must agree exactly (a warning-only
			// set is fine — strict records the same warnings as strings).
			if lres.Diagnostics.Errors() > 0 {
				t.Fatalf("strict accepted input but lenient reports error diagnostics: %v",
					lres.Diagnostics.All())
			}
			if len(lres.Netlist.Devices) != devices || len(lres.Netlist.Nets) != nets {
				t.Fatalf("lenient disagrees with strict on clean input: %d devices / %d nets vs %d / %d",
					len(lres.Netlist.Devices), len(lres.Netlist.Nets), devices, nets)
			}
		}
	})
}
