package extract

import (
	"testing"

	"ace/internal/gen"
	"ace/internal/geom"
	"ace/internal/netlist"
	"ace/internal/tech"
)

// TestInverterGolden reproduces Figure 3-4 of the paper: extracting
// the Figure 3-3 inverter must yield exactly the published devices,
// sizes, locations and net names.
func TestInverterGolden(t *testing.T) {
	res, err := File(gen.Inverter(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	nl := res.Netlist
	if probs := nl.Validate(); len(probs) > 0 {
		t.Fatalf("invalid: %v", probs)
	}

	if len(nl.Devices) != 2 {
		t.Fatalf("devices %d, want 2\n%s", len(nl.Devices), nl)
	}
	if len(nl.Nets) != 4 {
		t.Fatalf("nets %d, want 4\n%s", len(nl.Nets), nl)
	}

	var enh, dep *netlist.Device
	for i := range nl.Devices {
		switch nl.Devices[i].Type {
		case tech.Enhancement:
			enh = &nl.Devices[i]
		case tech.Depletion:
			dep = &nl.Devices[i]
		}
	}
	if enh == nil || dep == nil {
		t.Fatalf("missing device types\n%s", nl)
	}

	// Figure 3-4: (Channel (Length 400) (Width 2800)), Location -800 -400.
	if enh.Length != 400 || enh.Width != 2800 {
		t.Errorf("enh L=%d W=%d, want 400/2800", enh.Length, enh.Width)
	}
	if enh.Location != geom.Pt(-800, -400) {
		t.Errorf("enh location %v, want (-800,-400)", enh.Location)
	}
	// Figure 3-4: (Channel (Length 1400) (Width 400)), Location -400 2800.
	if dep.Length != 1400 || dep.Width != 400 {
		t.Errorf("dep L=%d W=%d, want 1400/400", dep.Length, dep.Width)
	}
	if dep.Location != geom.Pt(-400, 2800) {
		t.Errorf("dep location %v, want (-400,2800)", dep.Location)
	}

	// Connectivity: enh gate=INP source=OUT drain=GND; dep gate=OUT,
	// terminals VDD and OUT.
	name := func(i int) string { return nl.Nets[i].Name(i) }
	if name(enh.Gate) != "INP" || name(enh.Source) != "OUT" || name(enh.Drain) != "GND" {
		t.Errorf("enh g/s/d = %s/%s/%s, want INP/OUT/GND",
			name(enh.Gate), name(enh.Source), name(enh.Drain))
	}
	if name(dep.Gate) != "OUT" || name(dep.Source) != "VDD" || name(dep.Drain) != "OUT" {
		t.Errorf("dep g/s/d = %s/%s/%s, want OUT/VDD/OUT",
			name(dep.Gate), name(dep.Source), name(dep.Drain))
	}

	// Net locations as published in Figure 3-4.
	wantLoc := map[string]geom.Point{
		"VDD": geom.Pt(-2600, 3800),
		"OUT": geom.Pt(-800, 2800),
		"INP": geom.Pt(-800, -400),
		"GND": geom.Pt(-400, -800),
	}
	for nm, want := range wantLoc {
		i, ok := nl.NetByName(nm)
		if !ok {
			t.Errorf("net %s missing", nm)
			continue
		}
		if nl.Nets[i].Location != want {
			t.Errorf("net %s location %v, want %v", nm, nl.Nets[i].Location, want)
		}
	}
	if len(res.Warnings) != 0 {
		t.Errorf("warnings: %v", res.Warnings)
	}
}

func TestInverterKeepGeometry(t *testing.T) {
	res, err := File(gen.Inverter(), Options{KeepGeometry: true})
	if err != nil {
		t.Fatal(err)
	}
	nl := res.Netlist
	// The OUT net must include both poly (the dep gate) and diffusion.
	i, ok := nl.NetByName("OUT")
	if !ok {
		t.Fatal("OUT missing")
	}
	layers := map[tech.Layer]bool{}
	var area int64
	for _, g := range nl.Nets[i].Geometry {
		layers[g.Layer] = true
		area += g.Rect.Area()
	}
	if !layers[tech.Poly] || !layers[tech.Diff] {
		t.Fatalf("OUT layers %v, want poly+diff", layers)
	}
	if area == 0 {
		t.Fatal("OUT has no geometry area")
	}
	// Device channel geometry must match the figure's channel boxes.
	for _, d := range nl.Devices {
		if d.Type == tech.Enhancement {
			want := []geom.Rect{
				geom.R(-800, -2000, -400, -800),
				geom.R(-800, -800, 800, -400),
			}
			if !geom.SameRegion(d.Geometry, want) {
				t.Fatalf("enh channel geometry %v", d.Geometry)
			}
		}
	}
}

func TestFourInverters(t *testing.T) {
	res, err := File(gen.FourInverters(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	nl := res.Netlist
	st := nl.Stats()
	if st.Devices != 8 || st.Enhancement != 4 || st.Depletion != 4 {
		t.Fatalf("stats %v", st)
	}
	// Shared rails plus four outputs: VDD, GND, INP, OUT0..OUT3 = 7.
	if st.Nets != 7 {
		t.Fatalf("nets %d, want 7\n%s", st.Nets, nl)
	}
	for _, nm := range []string{"VDD", "GND", "INP", "OUT0", "OUT1", "OUT2", "OUT3"} {
		if _, ok := nl.NetByName(nm); !ok {
			t.Fatalf("net %s missing", nm)
		}
	}
}

func TestInverterRowScales(t *testing.T) {
	for _, n := range []int{1, 3, 10} {
		res, err := File(gen.InverterRow(n), Options{})
		if err != nil {
			t.Fatal(err)
		}
		st := res.Netlist.Stats()
		if st.Devices != 2*n {
			t.Fatalf("n=%d devices %d", n, st.Devices)
		}
		// Nets: VDD+GND+INP shared + one OUT per inverter.
		if st.Nets != 3+n {
			t.Fatalf("n=%d nets %d, want %d", n, st.Nets, 3+n)
		}
	}
}

func TestRowEquivalentToRepeatedInverter(t *testing.T) {
	// An inverter row of 2 and the four-inverter quad's first half
	// must be isomorphic per-stage; here: compare a row of 4 with the
	// hierarchical quad (same layout, different hierarchy).
	rowRes, err := File(gen.InverterRow(4), Options{})
	if err != nil {
		t.Fatal(err)
	}
	quadRes, err := File(gen.FourInverters(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	eq, reason := netlist.Equivalent(rowRes.Netlist, quadRes.Netlist)
	if !eq {
		t.Fatalf("row and quad differ: %s", reason)
	}
}

func TestProfilePhases(t *testing.T) {
	res, err := File(gen.InverterRow(20), Options{Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Phases
	if p.Total <= 0 {
		t.Fatal("no total time")
	}
	sum := p.Parse + p.FrontEnd + p.Insert + p.Devices + p.Output + p.Misc()
	if sum > p.Total*2 {
		t.Fatalf("phase sum %v vs total %v", sum, p.Total)
	}
}

func TestStringEntryPoint(t *testing.T) {
	res, err := String("L ND; B 100 100 0 0;\nL NP; B 300 20 0 0;\nE\n", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Netlist.Devices) != 1 {
		t.Fatalf("devices %d", len(res.Netlist.Devices))
	}
	if res.Phases.Parse <= 0 {
		t.Fatal("parse phase not recorded")
	}
}
