package extract

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"ace/internal/cif"
	"ace/internal/diag"
	"ace/internal/gen"
	"ace/internal/wirelist"
)

// wirelistBytes extracts src and renders the flat wirelist.
func wirelistBytes(t *testing.T, name, src string, opt Options) []byte {
	t.Helper()
	res, err := String(src, opt)
	if err != nil {
		t.Fatalf("%s: %+v: %v", name, opt, err)
	}
	var buf bytes.Buffer
	if err := wirelist.Write(&buf, res.Netlist, wirelist.Options{}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// lenientShapes is the worker matrix the equivalence contract is
// asserted over: serial, banded sweep, streamed pre-flatten, and both
// combined.
var lenientShapes = []Options{
	{},
	{Workers: 4},
	{FlattenWorkers: 1},
	{FlattenWorkers: 8},
	{Workers: 4, FlattenWorkers: 8},
}

// TestLenientCleanByteIdentical locks the tentpole contract: on clean
// input, lenient extraction is byte-identical to strict across every
// front-end/back-end worker shape, and reports zero diagnostics.
func TestLenientCleanByteIdentical(t *testing.T) {
	srcs := map[string]string{}
	for _, c := range corpus {
		data, err := os.ReadFile(filepath.Join("testdata", c.file))
		if err != nil {
			t.Fatal(err)
		}
		srcs[c.file] = string(data)
	}
	for _, c := range gen.Chips {
		w := c.Build(0.02)
		srcs[w.Name] = cif.String(w.File)
	}
	for name, src := range srcs {
		for _, shape := range lenientShapes {
			strictOut := wirelistBytes(t, name, src, shape)
			lo := shape
			lo.Lenient = true
			res, err := String(src, lo)
			if err != nil {
				t.Fatalf("%s: lenient %+v: %v", name, lo, err)
			}
			if n := res.Diagnostics.Len(); n != 0 {
				t.Fatalf("%s: clean input produced %d diagnostics: %v",
					name, n, res.Diagnostics.All())
			}
			var buf bytes.Buffer
			if err := wirelist.Write(&buf, res.Netlist, wirelist.Options{}); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(strictOut, buf.Bytes()) {
				t.Fatalf("%s: lenient wirelist differs from strict at %+v", name, shape)
			}
		}
	}
}

// malformedCorpus returns the cif package's malformed corpus files.
func malformedCorpus(t *testing.T) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join("..", "cif", "testdata", "malformed", "*.cif"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("empty malformed corpus")
	}
	return files
}

// TestLenientMalformedSalvage runs the malformed corpus through the
// full lenient pipeline: extraction must succeed, return a
// deterministically ordered diagnostics set with sane spans, and still
// produce a writable wirelist. Strict extraction must fail whenever
// the set holds an Error-severity diagnostic.
func TestLenientMalformedSalvage(t *testing.T) {
	for _, path := range malformedCorpus(t) {
		name := filepath.Base(path)
		t.Run(name, func(t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			src := string(data)
			res, err := String(src, Options{Lenient: true})
			if err != nil {
				t.Fatalf("lenient extraction aborted: %v", err)
			}
			ds := res.Diagnostics.All()
			if len(ds) == 0 {
				t.Fatal("no diagnostics on malformed input")
			}
			for i := 1; i < len(ds); i++ {
				if diag.Less(ds[i], ds[i-1]) {
					t.Fatalf("diagnostics out of order at %d: %v after %v", i, ds[i], ds[i-1])
				}
			}
			for _, d := range ds {
				if d.Span.Located() && (d.Span.Line < 1 || d.Span.Col < 1) {
					t.Fatalf("located diagnostic with bad span: %+v", d)
				}
			}
			var buf bytes.Buffer
			if err := wirelist.Write(&buf, res.Netlist, wirelist.Options{}); err != nil {
				t.Fatalf("salvaged wirelist does not render: %v", err)
			}

			_, strictErr := String(src, Options{})
			if res.Diagnostics.Errors() > 0 && strictErr == nil {
				t.Fatal("strict extraction succeeded despite error diagnostics")
			}
			if res.Diagnostics.Errors() == 0 && strictErr != nil {
				t.Fatalf("strict extraction failed on warning-only input: %v", strictErr)
			}
		})
	}
}
