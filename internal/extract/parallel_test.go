package extract

import (
	"testing"

	"ace/internal/gen"
	"ace/internal/netlist"
)

// equivSerialParallel extracts serially and with workers bands and
// requires netlist isomorphism plus identical summary counts.
func equivSerialParallel(t *testing.T, name string, run func(Options) (*Result, error), workers int) {
	t.Helper()
	serial, err := run(Options{})
	if err != nil {
		t.Fatalf("%s: serial: %v", name, err)
	}
	par, err := run(Options{Workers: workers})
	if err != nil {
		t.Fatalf("%s: workers=%d: %v", name, workers, err)
	}
	if probs := par.Netlist.Validate(); len(probs) > 0 {
		t.Errorf("%s: workers=%d: invalid netlist: %v", name, workers, probs)
	}
	if got, want := par.Netlist.Stats(), serial.Netlist.Stats(); got != want {
		t.Errorf("%s: workers=%d: stats %v, want %v", name, workers, got, want)
	}
	eq, reason := netlist.Equivalent(serial.Netlist, par.Netlist)
	if !eq {
		t.Errorf("%s: workers=%d not equivalent to serial: %s", name, workers, reason)
	}
	if got, want := len(par.Warnings), len(serial.Warnings); got != want {
		t.Errorf("%s: workers=%d: %d warnings, want %d (%v vs %v)",
			name, workers, got, want, par.Warnings, serial.Warnings)
	}
}

// TestParallelCorpus: every corpus file, parallel ≅ serial.
func TestParallelCorpus(t *testing.T) {
	for _, c := range corpus {
		f := readCorpus(t, c.file)
		equivSerialParallel(t, c.file, func(o Options) (*Result, error) {
			return File(f, o)
		}, 4)
	}
}

// TestParallelChips: every synthetic chip at small scale, parallel ≅
// serial, across several worker counts.
func TestParallelChips(t *testing.T) {
	for _, c := range gen.Chips {
		w := c.Build(0.02)
		for _, workers := range []int{2, 4, 8} {
			equivSerialParallel(t, w.Name, func(o Options) (*Result, error) {
				return File(w.File, o)
			}, workers)
		}
	}
}

// TestParallelInverterGolden: the parallel path reproduces the paper's
// inverter exactly — same locations, names and device sizes — because
// band stitching preserves the serial builder semantics, not just
// isomorphism.
func TestParallelInverterGolden(t *testing.T) {
	// InverterRow makes the design tall enough to cut into real bands
	// even under the small-design serial fallback.
	f := gen.InverterRow(64)
	serial, err := File(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := File(f, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Netlist.Devices) != len(serial.Netlist.Devices) {
		t.Fatalf("devices %d vs %d", len(par.Netlist.Devices), len(serial.Netlist.Devices))
	}
	eq, reason := netlist.Equivalent(serial.Netlist, par.Netlist)
	if !eq {
		t.Fatal(reason)
	}
}

// TestParallelKeepGeometry: geometry keeping survives the band split.
func TestParallelKeepGeometry(t *testing.T) {
	c, ok := gen.ChipByName("dchip")
	if !ok {
		t.Fatal("dchip missing")
	}
	w := c.Build(0.02)
	par, err := File(w.File, Options{Workers: 4, KeepGeometry: true})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := File(w.File, Options{KeepGeometry: true})
	if err != nil {
		t.Fatal(err)
	}
	eq, reason := netlist.Equivalent(serial.Netlist, par.Netlist)
	if !eq {
		t.Fatal(reason)
	}
	nGeom := func(nl *netlist.Netlist) (nets, devs int) {
		for i := range nl.Nets {
			nets += len(nl.Nets[i].Geometry)
		}
		for i := range nl.Devices {
			devs += len(nl.Devices[i].Geometry)
		}
		return
	}
	sn, sd := nGeom(serial.Netlist)
	pn, pd := nGeom(par.Netlist)
	if pn == 0 || pd == 0 {
		t.Fatalf("parallel geometry missing: nets=%d devs=%d", pn, pd)
	}
	// Band boundaries may split rectangles, never drop area; counts can
	// only grow by at most one rect per seam crossing.
	if pn < sn || pd < sd {
		t.Errorf("parallel geometry lost rects: nets %d<%d or devs %d<%d", pn, sn, pd, sd)
	}
}

// TestWorkersDegenerate: absurd worker counts fall back gracefully.
func TestWorkersDegenerate(t *testing.T) {
	f := gen.Inverter()
	for _, workers := range []int{1, 2, 1000} {
		res, err := File(f, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(res.Netlist.Devices) != 2 {
			t.Fatalf("workers=%d: devices=%d", workers, len(res.Netlist.Devices))
		}
	}
}
