package extract

import (
	"strings"
	"testing"
)

func TestReaderEntryPoint(t *testing.T) {
	res, err := Reader(strings.NewReader("L ND; B 100 100 0 0;\nL NP; B 300 20 0 0;\nE\n"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Netlist.Devices) != 1 {
		t.Fatalf("devices %d", len(res.Netlist.Devices))
	}
	if res.Phases.Parse <= 0 || res.Phases.Total < res.Phases.Parse {
		t.Fatalf("phases %+v", res.Phases)
	}
	// Parse errors surface.
	if _, err := Reader(strings.NewReader("DS 1;\n"), Options{}); err == nil {
		t.Fatal("expected parse error")
	}
}
