package extract

import (
	"fmt"
	"strings"
	"testing"

	"ace/internal/cif"
)

// TestDeepHierarchy: a 500-level chain of single-call symbols must
// instantiate without blowing the stack or the heap.
func TestDeepHierarchy(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("DS 1; L ND; B 100 100 0 0; DF;\n")
	const depth = 500
	for i := 2; i <= depth; i++ {
		fmt.Fprintf(&sb, "DS %d; C %d T 10 10; DF;\n", i, i-1)
	}
	fmt.Fprintf(&sb, "C %d;\nE\n", depth)
	res, err := String(sb.String(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Netlist.Nets) != 1 {
		t.Fatalf("nets %d", len(res.Netlist.Nets))
	}
	if res.Frontend.CellsExpanded != depth {
		t.Fatalf("expanded %d, want %d", res.Frontend.CellsExpanded, depth)
	}
}

// TestWideFanout: one symbol instantiated 10000 times.
func TestWideFanout(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("DS 1; L NM; B 100 100 0 0; DF;\n")
	for i := 0; i < 10000; i++ {
		fmt.Fprintf(&sb, "C 1 T %d %d;\n", (i%100)*200, (i/100)*200)
	}
	sb.WriteString("E\n")
	res, err := String(sb.String(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The 100×100 grid of 100-unit boxes at 200 pitch: all disjoint.
	if len(res.Netlist.Nets) != 10000 {
		t.Fatalf("nets %d", len(res.Netlist.Nets))
	}
}

// TestHugeCoordinates: far-flung geometry must not overflow.
func TestHugeCoordinates(t *testing.T) {
	src := `
L ND; B 1000 1000 2000000000 2000000000;
L NP; B 3000 200 2000000000 2000000000;
L NM; B 1000 1000 -2000000000 -2000000000;
E
`
	res, err := String(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Netlist.Devices) != 1 {
		t.Fatalf("devices %d", len(res.Netlist.Devices))
	}
}

// TestManyTinyNets: a large all-disjoint design stresses the
// finalisation path.
func TestManyTinyNets(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("L NM;\n")
	for i := 0; i < 5000; i++ {
		fmt.Fprintf(&sb, "B 50 50 %d %d;\n", (i%100)*200, (i/100)*200)
	}
	sb.WriteString("E\n")
	res, err := String(sb.String(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Netlist.Nets) != 5000 {
		t.Fatalf("nets %d", len(res.Netlist.Nets))
	}
}

// TestZeroHeightGeometryDropped: degenerate boxes vanish silently.
func TestZeroHeightGeometryDropped(t *testing.T) {
	res, err := String("L ND; B 0 100 0 0; B 100 0 0 0; B 100 100 500 500;\nE\n", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Netlist.Nets) != 1 {
		t.Fatalf("nets %d", len(res.Netlist.Nets))
	}
}

// TestSharedSymbolAcrossLayers: the same symbol called under different
// sticky layers keeps per-item layers fixed at definition time.
func TestStickyLayerInstantiation(t *testing.T) {
	src := `
DS 1; B 100 100 0 0; DF;
L ND;
C 1;
L NP;
C 1 T 500 0;
E
`
	f, err := cif.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	// The symbol body was parsed before any L command, so its box was
	// dropped with a warning at parse time; the design ends up with no
	// geometry at all and extraction reports that cleanly.
	if len(f.Warnings) == 0 {
		t.Fatal("expected an unlayered-geometry warning")
	}
	if _, err := File(f, Options{}); err == nil {
		t.Fatal("expected the empty-design error")
	}
}
