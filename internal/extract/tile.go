package extract

import (
	"context"
	"time"

	"ace/internal/geom"
	"ace/internal/guard"
	"ace/internal/scan"
	"ace/internal/tile"
)

// TileIO reports the I/O a tiled extraction performed, against the
// file's totals — the evidence that a windowed query touched O(window)
// tiles and a banded run read each tile once (plus quantile probes).
type TileIO struct {
	BytesRead    int64 // payload + index bytes fetched
	TilesDecoded int64 // tile payloads decoded (with checksum verify)
	TilesTotal   int64 // non-empty tiles in the file
	FileBytes    int64 // total file size
}

// Tiles extracts a design from a packed tile file instead of CIF. The
// sweep pulls boxes straight off the file's band iterators: serial
// runs read the whole chip top-down one tile row at a time; Workers>1
// gives every band sweeper a random-access iterator over exactly its
// band's tile ranges, clipped at the cuts precisely as partitionBoxes
// clips in-RAM boxes — the wirelist is byte-identical to the CIF
// pipelines at every worker setting, but peak memory is the tile
// working set, not the chip.
func Tiles(r *tile.Reader, opt Options) (*Result, error) {
	return TilesContext(nil, r, opt)
}

// TilesContext is Tiles with cooperative cancellation.
func TilesContext(ctx context.Context, r *tile.Reader, opt Options) (*Result, error) {
	return tilesContext(nil, ctx, r, opt)
}

func tilesContext(e *Engine, ctx context.Context, r *tile.Reader, opt Options) (res *Result, err error) {
	defer guard.Recover(guard.StageExtract, &err)
	if err := guard.Inject(guard.StageExtract); err != nil {
		return nil, err
	}
	t0 := time.Now()
	n := r.NumBoxes()
	if err := opt.Limits.CheckBoxes(guard.StageFrontend, n); err != nil {
		return nil, err
	}
	io0 := r.Counters()

	sopt := scan.Options{
		KeepGeometry:  opt.KeepGeometry,
		Labels:        r.Labels(),
		InsertionSort: opt.InsertionSort,
		Ctx:           ctx,
		Limits:        opt.Limits,
		Pool:          e.scanPool(),
	}

	var sres *scan.Result
	var iters []*tile.Iter
	var timed *timedSource
	serial := func() (*scan.Result, error) {
		it := r.ReadBand(tile.WholeChip())
		iters = []*tile.Iter{it}
		var src scan.Source = it
		if opt.Profile {
			timed = &timedSource{inner: src}
			src = timed
		}
		return scan.Sweep(src, sopt)
	}
	if opt.Workers > 1 {
		// Replicate ParallelSweep's cut selection from the file: the
		// quantile ranks resolve through the row index, decoding only the
		// tile rows the probes land in.
		bands := scan.EffectiveBands(int(n), opt.Workers)
		var cuts []int64
		var topErr error
		if bands >= 2 {
			var cache tile.RowTopsCache
			cuts = scan.CutsFromTopsFunc(int(n), func(i int) int64 {
				t, err := r.TopAt(int64(i), &cache)
				if err != nil && topErr == nil {
					topErr = err
				}
				return t
			}, bands)
		}
		if topErr != nil {
			return nil, topErr
		}
		if len(cuts) == 0 {
			sres, err = serial()
		} else {
			iters = r.Sources(cuts)
			srcs := make([]scan.Source, len(iters))
			for i, it := range iters {
				srcs[i] = it
			}
			sres, err = scan.ParallelSweepSources(srcs, cuts, int(n), sopt)
		}
	} else {
		sres, err = serial()
	}
	// A corrupt tile makes its iterator fake exhaustion (scan.Source has
	// no error channel), so the sweep can "succeed" on a truncated band:
	// the iterator's own error is the root cause and takes precedence.
	for _, it := range iters {
		if ierr := it.Err(); ierr != nil {
			return nil, ierr
		}
	}
	if err != nil {
		return nil, err
	}

	out := &Result{
		Netlist:  sres.Netlist,
		Counters: sres.Counters,
		Warnings: sres.Warnings,
		Tile:     tileIODelta(r, io0),
	}
	out.Phases.Total = time.Since(t0)
	if opt.Profile {
		if timed != nil {
			out.Phases.FrontEnd = timed.spent
			out.Phases.Insert = sres.Timing.Insert - timed.spent
			if out.Phases.Insert < 0 {
				out.Phases.Insert = 0
			}
		} else {
			out.Phases.Insert = sres.Timing.Insert
		}
		out.Phases.Devices = sres.Timing.Devices
		out.Phases.Output = sres.Timing.Output
	}
	return out, nil
}

// TileWindow extracts only the geometry overlapping rect from a packed
// tile file: boxes are clipped to the window, labels filtered to it,
// and — the point of the format — only tiles whose index bbox
// intersects the window are read or decoded. Result.Tile records the
// I/O so callers can verify the O(window) claim.
func TileWindow(ctx context.Context, r *tile.Reader, rect geom.Rect, opt Options) (*Result, error) {
	return tileWindow(nil, ctx, r, rect, opt)
}

func tileWindow(e *Engine, ctx context.Context, r *tile.Reader, rect geom.Rect, opt Options) (res *Result, err error) {
	defer guard.Recover(guard.StageExtract, &err)
	if err := guard.Inject(guard.StageExtract); err != nil {
		return nil, err
	}
	t0 := time.Now()
	io0 := r.Counters()

	it := r.ReadWindow(rect)
	sres, err := scan.Sweep(it, scan.Options{
		KeepGeometry:  opt.KeepGeometry,
		Labels:        r.WindowLabels(rect),
		InsertionSort: opt.InsertionSort,
		Ctx:           ctx,
		Limits:        opt.Limits,
		Pool:          e.scanPool(),
	})
	if ierr := it.Err(); ierr != nil {
		return nil, ierr
	}
	if err != nil {
		return nil, err
	}

	out := &Result{
		Netlist:  sres.Netlist,
		Counters: sres.Counters,
		Warnings: sres.Warnings,
		Tile:     tileIODelta(r, io0),
	}
	out.Phases.Total = time.Since(t0)
	return out, nil
}

// tileIODelta snapshots the I/O this extraction added on top of io0.
func tileIODelta(r *tile.Reader, io0 tile.Counters) *TileIO {
	io1 := r.Counters()
	return &TileIO{
		BytesRead:    io1.BytesRead - io0.BytesRead,
		TilesDecoded: io1.TilesDecoded - io0.TilesDecoded,
		TilesTotal:   r.NonEmptyTiles(),
		FileBytes:    r.Size(),
	}
}
