package extract

import (
	"bytes"
	"context"
	"testing"

	"ace/internal/cif"
	"ace/internal/frontend"
	"ace/internal/geom"
	"ace/internal/scan"
	"ace/internal/tile"
	"ace/internal/wirelist"
)

// packFile streams a parsed design through the lazy front end into an
// in-memory tile file, exactly as cifpack does.
func packFile(t *testing.T, f *cif.File, cols, rows int) *tile.Reader {
	t.Helper()
	stream, err := frontend.New(f, frontend.Options{})
	if err != nil {
		t.Fatalf("frontend: %v", err)
	}
	bbox := stream.BBox()
	labels := stream.Labels()
	var buf bytes.Buffer
	w, err := tile.NewWriter(&buf, tile.NewGrid(bbox, cols, rows))
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	for _, l := range labels {
		w.AddLabel(l)
	}
	for {
		b, ok := stream.Next()
		if !ok {
			break
		}
		if err := w.Add(b); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	r, err := tile.NewReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	return r
}

func formatTiled(t *testing.T, name string, r *tile.Reader, opt Options) string {
	t.Helper()
	res, err := Tiles(r, opt)
	if err != nil {
		t.Fatalf("%s %+v: %v", name, opt, err)
	}
	return wirelist.Format(res.Netlist, wirelist.Options{Geometry: opt.KeepGeometry})
}

// TestTiledWirelistByteIdentical is the out-of-core acceptance matrix:
// extracting from the packed tile file must reproduce the in-RAM
// pipeline's wirelist byte for byte, at sweep workers {1, 4}, for
// every corpus file and generated chip, across tile grid resolutions
// (including degenerate 1×1 and a grid much finer than the designs).
func TestTiledWirelistByteIdentical(t *testing.T) {
	grids := [][2]int{{1, 1}, {4, 4}, {16, 16}}
	for name, f := range equivDesigns(t) {
		for _, sw := range equivSweepWorkers {
			want := formatWirelist(t, name, f, Options{Workers: sw})
			for _, g := range grids {
				r := packFile(t, f, g[0], g[1])
				got := formatTiled(t, name, r, Options{Workers: sw})
				if got != want {
					i := diffPos(want, got)
					lo := i - 60
					if lo < 0 {
						lo = 0
					}
					t.Fatalf("%s sweep=%d grid=%v: wirelist differs at byte %d\nin-RAM: …%q\ntiled:  …%q",
						name, sw, g, i, want[lo:min(i+60, len(want))], got[lo:min(i+60, len(got))])
				}
			}
		}
	}
}

// TestTiledWirelistGeometry repeats a slice of the matrix with
// geometry recording on, pinning the tiled source's delivery order at
// the finest level the output can express.
func TestTiledWirelistGeometry(t *testing.T) {
	for _, name := range []string{"polygons.cif", "labels.cif", "rotated.cif"} {
		f := readCorpus(t, name)
		for _, sw := range equivSweepWorkers {
			want := formatWirelist(t, name, f, Options{Workers: sw, KeepGeometry: true})
			r := packFile(t, f, 8, 8)
			got := formatTiled(t, name, r, Options{Workers: sw, KeepGeometry: true})
			if got != want {
				i := diffPos(want, got)
				t.Fatalf("%s sweep=%d: geometry wirelist differs at byte %d", name, sw, i)
			}
		}
	}
}

// TestTileWindowMatchesClippedSweep checks the windowed read against a
// reference built the straightforward way: drain the whole design,
// clip every box to the window by hand, sweep the clipped list.
func TestTileWindowMatchesClippedSweep(t *testing.T) {
	for _, name := range []string{"wires.cif", "polygons.cif", "labels.cif"} {
		f := readCorpus(t, name)
		stream, err := frontend.New(f, frontend.Options{})
		if err != nil {
			t.Fatal(err)
		}
		labels := stream.Labels()
		boxes := stream.Drain()
		bb := stream.BBox()
		windows := []geom.Rect{
			bb, // whole chip
			{XMin: bb.XMin, YMin: (bb.YMin + bb.YMax) / 2, XMax: (bb.XMin + bb.XMax) / 2, YMax: bb.YMax},
			{XMin: bb.XMin + bb.W()/4, YMin: bb.YMin + bb.H()/4, XMax: bb.XMax - bb.W()/4, YMax: bb.YMax - bb.H()/4},
		}
		r := packFile(t, f, 8, 8)
		for _, win := range windows {
			var clipped []frontend.Box
			for _, b := range boxes {
				if !b.Rect.Overlaps(win) {
					continue
				}
				clipped = append(clipped, frontend.Box{Layer: b.Layer, Rect: b.Rect.Intersect(win)})
			}
			scan.SortTopDown(clipped)
			var winLabels []frontend.Label
			for _, l := range labels {
				if win.Contains(l.At) {
					winLabels = append(winLabels, l)
				}
			}
			sres, err := scan.Sweep(scan.NewBoxSource(clipped), scan.Options{Labels: winLabels})
			if err != nil {
				t.Fatalf("%s reference sweep: %v", name, err)
			}
			want := wirelist.Format(sres.Netlist, wirelist.Options{})

			res, err := TileWindow(context.Background(), r, win, Options{})
			if err != nil {
				t.Fatalf("%s window %v: %v", name, win, err)
			}
			got := wirelist.Format(res.Netlist, wirelist.Options{})
			if got != want {
				t.Fatalf("%s window %v: wirelist differs at byte %d", name, win, diffPos(want, got))
			}
			if res.Tile == nil || res.Tile.TilesDecoded == 0 && len(clipped) > 0 {
				t.Fatalf("%s window %v: missing tile I/O counters: %+v", name, win, res.Tile)
			}
		}
	}
}

// TestTiledCorruptFailsSoft: extraction from a damaged file must
// surface the tile error, not a truncated-but-plausible wirelist.
func TestTiledCorruptFailsSoft(t *testing.T) {
	f := readCorpus(t, "wires.cif")
	stream, err := frontend.New(f, frontend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w, err := tile.NewWriter(&buf, tile.NewGrid(stream.BBox(), 4, 4))
	if err != nil {
		t.Fatal(err)
	}
	for {
		b, ok := stream.Next()
		if !ok {
			break
		}
		if err := w.Add(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Flip a payload byte (inside the tile region, past the header).
	mut := append([]byte(nil), raw...)
	mut[len(mut)/4] ^= 0x40
	r, err := tile.NewReader(bytes.NewReader(mut), int64(len(mut)))
	if err != nil {
		// Damage landed in the index: typed failure at open is fine too.
		return
	}
	for _, workers := range []int{1, 4} {
		if _, err := Tiles(r, Options{Workers: workers}); err == nil {
			t.Fatalf("workers=%d: corrupt tile file extracted without error", workers)
		}
	}
}
