package frontend

import (
	"sync"

	"ace/internal/geom"
)

// Arena owns the front end's reusable allocation state: lazy heap
// Streams (their entry heaps, label lists and memo tables) and the box
// buffers the pre-flattener stamps runs into. A long-lived caller
// (extract.Engine) threads one Arena through Options.Arena so repeated
// instantiation of same-shaped workloads stops allocating.
//
// The Arena is a mutex-guarded free list, safe for concurrent use; a
// nil *Arena degrades to plain allocation everywhere, so call sites
// need no guards. Reuse is explicit: a Stream or box buffer handed
// back with PutStream/PutBoxBuf may be reissued at any time, so the
// caller must be done with everything it returned (extraction Results
// copy all they keep).
type Arena struct {
	mu       sync.Mutex
	streams  []*Stream
	boxBufs  [][]Box
	geoScrts []*geom.BoxScratch
}

// NewArena returns an empty Arena.
func NewArena() *Arena { return &Arena{} }

// getStream returns a reset Stream, pooled when available.
func (a *Arena) getStream() *Stream {
	if a == nil {
		return &Stream{bboxes: map[int]geom.Rect{}}
	}
	a.mu.Lock()
	var s *Stream
	if n := len(a.streams); n > 0 {
		s = a.streams[n-1]
		a.streams[n-1] = nil
		a.streams = a.streams[:n-1]
	}
	a.mu.Unlock()
	if s == nil {
		return &Stream{bboxes: map[int]geom.Rect{}}
	}
	s.reset()
	return s
}

// PutStream returns a consumed Stream's state to the arena. Every
// slice the Stream handed out (Labels, Drain results already belong to
// the caller) must be dead or copied; the next NewItems with this
// arena reuses the backing memory.
func (a *Arena) PutStream(s *Stream) {
	if a == nil || s == nil {
		return
	}
	a.mu.Lock()
	a.streams = append(a.streams, s)
	a.mu.Unlock()
}

// GetBoxBuf returns an empty box buffer with whatever capacity the
// arena has spare (nil when none).
func (a *Arena) GetBoxBuf() []Box {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if n := len(a.boxBufs); n > 0 {
		b := a.boxBufs[n-1]
		a.boxBufs[n-1] = nil
		a.boxBufs = a.boxBufs[:n-1]
		return b[:0]
	}
	return nil
}

// PutBoxBuf returns a box buffer's capacity to the arena.
func (a *Arena) PutBoxBuf(b []Box) {
	if a == nil || cap(b) == 0 {
		return
	}
	a.mu.Lock()
	a.boxBufs = append(a.boxBufs, b[:0])
	a.mu.Unlock()
}

// GetBoxScratch returns a pooled polygon/wire decomposition scratch
// (a fresh one when the arena is nil or empty). The pre-flattener's
// instance workers each draw their own, so a scratch is never shared
// across goroutines.
func (a *Arena) GetBoxScratch() *geom.BoxScratch {
	if a == nil {
		return &geom.BoxScratch{}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if n := len(a.geoScrts); n > 0 {
		sc := a.geoScrts[n-1]
		a.geoScrts[n-1] = nil
		a.geoScrts = a.geoScrts[:n-1]
		return sc
	}
	return &geom.BoxScratch{}
}

// PutBoxScratch returns a decomposition scratch to the arena. Every
// slice it handed out must be dead or copied.
func (a *Arena) PutBoxScratch(sc *geom.BoxScratch) {
	if a == nil || sc == nil {
		return
	}
	a.mu.Lock()
	a.geoScrts = append(a.geoScrts, sc)
	a.mu.Unlock()
}

// reset clears a pooled Stream for its next design, keeping capacity.
func (s *Stream) reset() {
	s.syms = nil
	s.grid = 0
	s.keepNG = false
	s.heap = s.heap[:0]
	s.labels = s.labels[:0]
	s.stats = Stats{}
	s.bbox = geom.Rect{}
	s.hasBB = false
	clear(s.bboxes)
	clear(s.labelMemo)
	clear(s.impureMemo)
	s.callSink = nil
	s.banned = nil
}
