// Symbol-level pre-flattening: the streamed alternative to the lazy
// heap Stream.
//
// The heap front end re-derives every box of every instance through
// the call hierarchy: N boxes cost N heap operations plus a transform
// chain per box. The pre-flattener instead flattens each cif.Symbol
// body ONCE into a canonical arena of boxes sorted by descending top
// edge, and then stamps instances by applying the instance's affine
// transform to the whole arena — a linear pass. Because every CIF
// transform is one of the eight orthogonal matrices, composed-
// transform stamping is exact: the stamped rectangles are bit-equal to
// the legacy stream's stepwise expansion. A transform with D == 0 and
// E == 1 (translations) maps descending tops to descending tops, so
// the stamped run needs no sort at all; mirrored and rotated instances
// re-sort their run, paying only when the transform demands it.
//
// Polygons and wires cannot be pre-flattened: manhattanisation snaps
// to the grid AFTER transforming, so it does not commute with the
// instance transform. They ride in the arena as deferred "impure"
// items carrying their accumulated local transform and are
// manhattanised per instance with the full composed transform —
// exactly what the legacy stream does.
//
// Instances are stamped in parallel by a worker pool and their sorted
// runs are k-way merged by FlatStream, which delivers boxes in
// descending-top order while later instances are still being stamped:
// a box may be emitted as soon as its top is no lower than every
// unstamped instance's bounding-box top (the same bound the lazy heap
// uses to schedule call expansion). The sweep therefore overlaps the
// flatten.
//
// The merge delivers the same multiset of boxes at every stop as the
// legacy stream. The sweep's output depends only on those per-stop
// multisets — not on intra-stop delivery order — so the extraction
// output is byte-identical to the heap path's.
package frontend

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ace/internal/cif"
	"ace/internal/geom"
	"ace/internal/guard"
	"ace/internal/tech"
)

// Flat is a pre-flattened design: per-symbol box arenas plus the list
// of instances to stamp. Build one with Flatten, then open a
// FlatStream (serial sweep) or band streams (parallel sweep) to
// consume the boxes. A Flat may be consumed once.
type Flat struct {
	grid   int64
	keepNG bool
	syms   map[int]*cif.Symbol
	bboxes map[int]geom.Rect
	arenas map[int]*symArena
	insts  []flatInstance
	banned map[int]bool // lenient-mode dropped symbols (see guard.go)
	pool   *Arena       // pooled run buffers; nil means plain allocation

	prepassed bool // instance impure boxes materialised

	// Hardening state: ctx cancels the stamp pool cooperatively;
	// limits bound materialised boxes and retained bytes; the first
	// worker failure (panic, injected fault, budget, cancellation)
	// lands in err, aborts the remaining stamping and releases every
	// consumer blocked on a stream. buildErr carries arena-fold budget
	// violations out of the recursive build.
	ctx       context.Context
	limits    guard.Limits
	buildErr  error
	arenaBox  int64 // boxes materialised across all arenas
	failMu    sync.Mutex
	err       error
	streams   []*FlatStream
	abortFlag atomic.Bool
	retained  atomic.Int64 // approximate bytes of published runs + arenas

	started  time.Time
	boxesOut atomic.Int64
	nonManh  atomic.Int64
	sortNs   atomic.Int64
	stampNs  atomic.Int64
	doneAt   atomic.Int64 // unix nanos when the last run published
}

// fail records the first pipeline failure, aborts outstanding stamping
// and wakes every consumer blocked on a stream so the sweep above can
// unwind. Safe to call from any worker.
func (fl *Flat) fail(err error) {
	if err == nil {
		return
	}
	fl.failMu.Lock()
	if fl.err == nil {
		fl.err = err
	}
	streams := fl.streams
	fl.failMu.Unlock()
	fl.abortFlag.Store(true)
	for _, s := range streams {
		s.fail()
	}
}

// Err reports the first failure of the flatten pipeline: a stamp
// worker panic (as a *guard.PanicError), an exceeded budget, an
// injected fault or context cancellation. Callers must check it after
// the consuming sweep finishes — a failed stream reports exhaustion to
// keep the scan.Source contract, so the sweep's partial result must be
// discarded when Err is non-nil.
func (fl *Flat) Err() error {
	fl.failMu.Lock()
	defer fl.failMu.Unlock()
	return fl.err
}

// symArena is one symbol's flattened body.
type symArena struct {
	boxes  []Box        // pure boxes, sorted by descending Rect.YMax
	impure []impureItem // deferred polygons/wires
	weight int          // len(boxes) + an estimate for impure output
}

// impureItem is a polygon or wire whose manhattanisation must wait for
// the instance transform.
type impureItem struct {
	isWire bool
	layer  tech.Layer
	poly   geom.Polygon
	wire   geom.Wire
	tr     geom.Transform // accumulated transform within the symbol
}

// flatInstance is one unit of stamping work: either an instance of a
// flattened symbol arena, or a chunk of call-free items flattened
// directly (top-level geometry, or pieces of a split leaf symbol).
type flatInstance struct {
	sym    int        // symbol id, or -1 for a direct item chunk
	items  []cif.Item // when sym < 0; never contains calls
	tr     geom.Transform
	top    int64 // transformed bounding-box top: bound on stamped tops
	weight int   // estimated box count, for expansion and scheduling

	impBoxes []Box // prepass-materialised impure boxes (may be nil)
	impDone  bool
}

// impureBoxEstimate is the scheduling weight of one deferred polygon
// or wire (manhattanisation count is unknown until stamped).
const impureBoxEstimate = 8

// Flatten pre-flattens the file's top cell. ctx cancels the stamp
// workers it later launches; nil means never.
func Flatten(ctx context.Context, f *cif.File, opts Options) (*Flat, error) {
	top, _ := f.TopSymbol()
	return FlattenItems(ctx, top, f.Symbols, opts)
}

// FlattenItems pre-flattens an explicit item list. An empty design
// yields a Flat whose streams simply report exhaustion; callers that
// must reject empty designs do so via New, which the extractor runs
// first for labels anyway. The error covers the synchronous build:
// cyclic or over-deep hierarchies, and arena budgets (the arena fold
// is where a hierarchy bomb would otherwise materialise — a 10-level
// 100x fan-out must fail fast here, not OOM).
func FlattenItems(ctx context.Context, items []cif.Item, syms map[int]*cif.Symbol, opts Options) (fl *Flat, err error) {
	defer guard.Recover(guard.StageArena, &err)
	if err := guard.Inject(guard.StageArena); err != nil {
		return nil, err
	}
	var banned map[int]bool
	if opts.Lenient {
		// The diagnostics themselves come from the Stream build, which
		// the extractor always runs first (for labels); reporting here
		// too would double them. The ban set must match regardless.
		banned = checkHierarchyLenient(items, syms, opts.Limits.Depth(), nil)
	} else if err := checkHierarchy(items, syms, opts.Limits.Depth()); err != nil {
		return nil, err
	}
	grid := opts.Grid
	if grid <= 0 {
		grid = 10
	}
	fl = &Flat{
		grid:   grid,
		keepNG: opts.KeepGlass,
		syms:   syms,
		bboxes: map[int]geom.Rect{},
		arenas: map[int]*symArena{},
		banned: banned,
		pool:   opts.Arena,
		ctx:    ctx,
		limits: opts.Limits,
	}
	fl.addInstances(items, geom.Identity)
	if fl.buildErr != nil {
		return nil, fl.buildErr
	}
	fl.retained.Store(fl.arenaBox * guard.BoxBytes)
	if err := fl.limits.CheckMem(guard.StageArena, fl.retained.Load()); err != nil {
		return nil, err
	}
	return fl, nil
}

// addInstances turns an item list into stamping work: non-call
// geometry becomes one direct chunk, each call becomes a symbol
// instance. Labels are skipped — the extractor takes labels from the
// legacy Stream so their delivery order is bit-for-bit unchanged.
func (fl *Flat) addInstances(items []cif.Item, tr geom.Transform) {
	if fl.buildErr != nil {
		return
	}
	var direct []cif.Item
	for _, it := range items {
		switch it.Kind {
		case cif.ItemBox, cif.ItemPolygon, cif.ItemWire:
			direct = append(direct, it)
		case cif.ItemCall:
			if fl.banned[it.SymbolID] {
				continue // dropped by lenient hierarchy validation
			}
			sub, ok := cif.SymbolBBox(it.SymbolID, fl.syms, fl.bboxes)
			if !ok {
				continue // empty symbol, exactly as the heap skips it
			}
			t := it.Trans.Then(tr)
			a := fl.arena(it.SymbolID)
			top := t.ApplyRect(sub).YMax
			if len(a.impure) > 0 {
				// Manhattanised geometry can overshoot the bounding
				// box by up to a grid band; round the watermark bound
				// up so no stamped box outranks it (the heap stream
				// rounds its call keys identically).
				top = ceilToGrid(top, fl.grid)
			}
			fl.insts = append(fl.insts, flatInstance{
				sym:    it.SymbolID,
				tr:     t,
				top:    top,
				weight: a.weight,
			})
		}
	}
	if len(direct) > 0 {
		fl.addDirect(direct, tr)
	}
}

// addDirect appends a call-free item chunk as one instance.
func (fl *Flat) addDirect(items []cif.Item, tr geom.Transform) {
	bb, ok := cif.BBoxItems(items, fl.syms, fl.bboxes)
	if !ok {
		return
	}
	w, impure := 0, false
	for _, it := range items {
		if it.Kind == cif.ItemBox {
			w++
		} else {
			w += impureBoxEstimate
			impure = true
		}
	}
	top := tr.ApplyRect(bb).YMax
	if impure {
		top = ceilToGrid(top, fl.grid)
	}
	fl.insts = append(fl.insts, flatInstance{
		sym:    -1,
		items:  items,
		tr:     tr,
		top:    top,
		weight: w,
	})
}

// arena returns the symbol's flattened body, building and memoising it
// (and every symbol below it) on first use. Sub-arenas fold into their
// parents by transforming the whole child arena — the memoisation that
// makes repeated instantiation cheap.
func (fl *Flat) arena(id int) *symArena {
	if a, ok := fl.arenas[id]; ok {
		return a
	}
	a := &symArena{}
	fl.arenas[id] = a // placed first so a recursive definition terminates
	sym := fl.syms[id]
	if sym == nil {
		return a
	}
	for _, it := range sym.Items {
		if fl.buildErr != nil {
			return a
		}
		switch it.Kind {
		case cif.ItemBox:
			a.addBox(it.Layer, it.Box, fl.keepNG)
		case cif.ItemPolygon:
			a.impure = append(a.impure, impureItem{
				layer: it.Layer, poly: it.Poly, tr: geom.Identity,
			})
		case cif.ItemWire:
			a.impure = append(a.impure, impureItem{
				isWire: true, layer: it.Layer, wire: it.Wire, tr: geom.Identity,
			})
		case cif.ItemCall:
			if fl.banned[it.SymbolID] {
				continue // dropped by lenient hierarchy validation
			}
			child := fl.arena(it.SymbolID)
			if fl.buildErr != nil {
				return a
			}
			// Budget-check BEFORE the fold copies the child in: a
			// hierarchy bomb multiplies the arena a hundredfold per
			// level, and the check must fire before the allocation,
			// not after.
			grown := fl.arenaBox + int64(len(a.boxes)) + int64(len(child.boxes))
			if err := fl.limits.CheckExpanded(guard.StageArena, grown); err != nil {
				fl.buildErr = err
				return a
			}
			if err := fl.limits.CheckMem(guard.StageArena, grown*guard.BoxBytes); err != nil {
				fl.buildErr = err
				return a
			}
			for _, b := range child.boxes {
				// Child boxes are pre-filtered; orthogonal transforms
				// keep non-empty rects non-empty, so no re-check.
				a.boxes = append(a.boxes, Box{Layer: b.Layer, Rect: it.Trans.ApplyRect(b.Rect)})
			}
			for _, im := range child.impure {
				im.tr = im.tr.Then(it.Trans)
				a.impure = append(a.impure, im)
			}
		}
	}
	fl.arenaBox += int64(len(a.boxes))
	if err := fl.limits.CheckExpanded(guard.StageArena, fl.arenaBox); err != nil {
		fl.buildErr = err
		return a
	}
	sort.Slice(a.boxes, func(i, j int) bool {
		return a.boxes[i].Rect.YMax > a.boxes[j].Rect.YMax
	})
	a.weight = len(a.boxes) + impureBoxEstimate*len(a.impure)
	return a
}

func (a *symArena) addBox(l tech.Layer, r geom.Rect, keepNG bool) {
	if r.Empty() {
		return
	}
	if l == tech.Glass && !keepNG {
		return
	}
	a.boxes = append(a.boxes, Box{Layer: l, Rect: r})
}

// minExpandWeight keeps the expansion loop from shredding instances
// whose stamp is already cheap.
const minExpandWeight = 2048

// expand refines the instance list until it holds at least target
// units of stamping work, by repeatedly unfolding the heaviest
// instance: a symbol instance becomes its direct geometry plus one
// instance per sub-call; a direct chunk splits in half. This is what
// gives the worker pool parallel grain when the design's top level is
// a single call (Mesh, Statistical) — the output multiset is invariant
// under expansion, so worker count and grain never change the
// extraction result.
func (fl *Flat) expand(target int) {
	for guard := 0; len(fl.insts) < target && guard < 4*target; guard++ {
		best, bw := -1, minExpandWeight
		for i := range fl.insts {
			in := &fl.insts[i]
			if in.weight < bw {
				continue
			}
			if in.sym < 0 && len(in.items) < 2 {
				continue
			}
			best, bw = i, in.weight
		}
		if best < 0 {
			return
		}
		in := fl.insts[best]
		fl.insts[best] = fl.insts[len(fl.insts)-1]
		fl.insts = fl.insts[:len(fl.insts)-1]
		if in.sym >= 0 {
			fl.addInstances(fl.syms[in.sym].Items, in.tr)
		} else {
			mid := len(in.items) / 2
			fl.addDirect(in.items[:mid], in.tr)
			fl.addDirect(in.items[mid:], in.tr)
		}
	}
}

// prepass materialises every instance's impure boxes in parallel, so
// box counts and tops are exact before any band cuts are chosen. Pure
// arena boxes are not materialised here — only their transformed tops
// are read — so the prepass stays cheap relative to the stamp.
func (fl *Flat) prepass(workers int) error {
	if fl.prepassed {
		return nil
	}
	fl.prepassed = true
	return fl.forEachInstance(workers, func(i int) {
		fl.materialiseImpure(&fl.insts[i])
	})
}

// materialiseImpure stamps an instance's deferred polygons and wires.
func (fl *Flat) materialiseImpure(in *flatInstance) {
	if in.impDone {
		return
	}
	in.impDone = true
	if in.sym < 0 {
		for _, it := range in.items {
			switch it.Kind {
			case cif.ItemPolygon:
				in.impBoxes = fl.appendImpure(in.impBoxes, impureItem{
					layer: it.Layer, poly: it.Poly, tr: geom.Identity,
				}, in.tr)
			case cif.ItemWire:
				in.impBoxes = fl.appendImpure(in.impBoxes, impureItem{
					isWire: true, layer: it.Layer, wire: it.Wire, tr: geom.Identity,
				}, in.tr)
			}
		}
		return
	}
	for _, im := range fl.arenas[in.sym].impure {
		in.impBoxes = fl.appendImpure(in.impBoxes, im, in.tr)
	}
}

// appendImpure manhattanises one deferred item under the full composed
// transform — the identical arithmetic to the legacy stream's
// expansion, so the resulting rectangles are bit-equal.
func (fl *Flat) appendImpure(out []Box, im impureItem, inst geom.Transform) []Box {
	fl.nonManh.Add(1)
	full := im.tr.Then(inst)
	emit := func(l tech.Layer, r geom.Rect) {
		if r.Empty() || (l == tech.Glass && !fl.keepNG) {
			return
		}
		out = append(out, Box{Layer: l, Rect: r})
	}
	// Instances materialise concurrently, so each call draws its own
	// decomposition scratch from the pool; emit copies every rect out
	// before the scratch goes back.
	sc := fl.pool.GetBoxScratch()
	if im.isWire {
		for _, r := range im.wire.ApplyBoxes(sc, full, fl.grid) {
			emit(im.layer, r)
		}
	} else {
		for _, r := range im.poly.ApplyManhattanize(sc, full, fl.grid) {
			emit(im.layer, r)
		}
	}
	fl.pool.PutBoxScratch(sc)
	return out
}

// SortedTops runs the prepass and returns every stamped box top,
// sorted descending — the exact multiset the materialising pipeline
// sorts, so cut selection (scan.CutsFromTops) lands on the identical
// band boundaries. len(result) is the exact box count. The error
// surfaces prepass-worker panics, injected faults and cancellation.
func (fl *Flat) SortedTops(workers int) ([]int64, error) {
	if err := fl.prepass(workers); err != nil {
		return nil, err
	}
	parts := make([][]int64, len(fl.insts))
	err := fl.forEachInstance(workers, func(i int) {
		in := &fl.insts[i]
		var tops []int64
		if in.sym >= 0 {
			a := fl.arenas[in.sym]
			tops = make([]int64, 0, len(a.boxes)+len(in.impBoxes))
			for _, b := range a.boxes {
				tops = append(tops, in.tr.ApplyRect(b.Rect).YMax)
			}
		} else {
			tops = make([]int64, 0, len(in.items)+len(in.impBoxes))
			for _, it := range in.items {
				if it.Kind != cif.ItemBox {
					continue
				}
				r := in.tr.ApplyRect(it.Box)
				if r.Empty() || (it.Layer == tech.Glass && !fl.keepNG) {
					continue
				}
				tops = append(tops, r.YMax)
			}
		}
		for _, b := range in.impBoxes {
			tops = append(tops, b.Rect.YMax)
		}
		parts[i] = tops
	})
	if err != nil {
		return nil, err
	}
	n := 0
	for _, p := range parts {
		n += len(p)
	}
	all := make([]int64, 0, n)
	for _, p := range parts {
		all = append(all, p...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] > all[j] })
	if err := fl.limits.CheckBoxes(guard.StagePrepass, int64(len(all))); err != nil {
		return nil, err
	}
	return all, nil
}

// forEachInstance applies f to every instance index from a pool of
// workers. Each worker runs under panic isolation; the first failure
// (panic, injected fault, cancellation) stops the remaining work and
// is returned with stage attribution.
func (fl *Flat) forEachInstance(workers int, f func(int)) error {
	var next atomic.Int64
	var firstErr atomic.Pointer[error]
	record := func(err error) {
		if err != nil {
			e := err
			firstErr.CompareAndSwap(nil, &e)
		}
	}
	work := func() error {
		for {
			if firstErr.Load() != nil {
				return nil
			}
			if err := guard.Ctx(fl.ctx, guard.StagePrepass); err != nil {
				return err
			}
			if err := guard.Inject(guard.StagePrepass); err != nil {
				return err
			}
			i := int(next.Add(1)) - 1
			if i >= len(fl.insts) {
				return nil
			}
			f(i)
		}
	}
	if workers < 1 {
		workers = 1
	}
	if workers == 1 || len(fl.insts) < 2 {
		record(guard.Run(guard.StagePrepass, work))
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				record(guard.Run(guard.StagePrepass, work))
			}()
		}
		wg.Wait()
	}
	if ep := firstErr.Load(); ep != nil {
		return *ep
	}
	return nil
}

// stampRun materialises one instance's boxes, sorted by descending
// top. Translations reuse the arena's sort order; mirrored or rotated
// instances — and any run that gained manhattanised boxes — re-sort.
func (fl *Flat) stampRun(in *flatInstance) []Box {
	t0 := time.Now()
	fl.materialiseImpure(in)
	run := fl.pool.GetBoxBuf()
	needSort := true
	if in.sym >= 0 {
		a := fl.arenas[in.sym]
		if run == nil {
			run = make([]Box, 0, len(a.boxes)+len(in.impBoxes))
		}
		for _, b := range a.boxes {
			run = append(run, Box{Layer: b.Layer, Rect: in.tr.ApplyRect(b.Rect)})
		}
		// D == 0, E == 1: new top = old top + F, strictly monotone, so
		// the arena's descending-top order survives the transform.
		needSort = !(in.tr.D == 0 && in.tr.E == 1) || len(in.impBoxes) > 0
	} else {
		if run == nil {
			run = make([]Box, 0, len(in.items)+len(in.impBoxes))
		}
		for _, it := range in.items {
			if it.Kind != cif.ItemBox {
				continue
			}
			r := in.tr.ApplyRect(it.Box)
			if r.Empty() || (it.Layer == tech.Glass && !fl.keepNG) {
				continue
			}
			run = append(run, Box{Layer: it.Layer, Rect: r})
		}
	}
	run = append(run, in.impBoxes...)
	if needSort {
		ts := time.Now()
		sort.Slice(run, func(i, j int) bool {
			return run[i].Rect.YMax > run[j].Rect.YMax
		})
		fl.sortNs.Add(int64(time.Since(ts)))
	}
	fl.boxesOut.Add(int64(len(run)))
	fl.stampNs.Add(int64(time.Since(t0)))
	return run
}

// Stream expands the instance list for the given grain, launches the
// stamp workers and returns the merged descending-top box source for
// the serial sweep. Boxes flow as instances finish: the caller's sweep
// overlaps the stamping.
func (fl *Flat) Stream(workers int) *FlatStream {
	fl.expand(4*workers + 4)
	s := newFlatStream(fl.insts)
	fl.start(workers, []*FlatStream{s}, nil)
	return s
}

// BandStreams is Stream for the band-parallel sweep: every stamped run
// is routed into the bands it intersects (clipped, with the exact
// partition rules of scan.ParallelSweep) and each band merges its
// share independently, so all band sweepers consume concurrently with
// the stamping. Callers choose cuts from SortedTops first; expansion
// has already happened inside it via Prepare, so the instance set here
// matches the one SortedTops measured.
func (fl *Flat) BandStreams(workers int, cuts []int64) []*FlatStream {
	streams := make([]*FlatStream, len(cuts)+1)
	for k := range streams {
		streams[k] = newFlatStream(fl.insts)
		for i := range fl.insts {
			in := &fl.insts[i]
			bound := in.top
			if k > 0 && cuts[k-1] < bound {
				bound = cuts[k-1]
			}
			streams[k].runs[i].bound = bound
		}
	}
	fl.start(workers, streams, cuts)
	return streams
}

// Prepare expands the instance list for the given worker grain; called
// before SortedTops so that cut selection and stamping agree on the
// instance set.
func (fl *Flat) Prepare(workers int) {
	fl.expand(4*workers + 4)
}

// start launches the stamp worker pool. Heaviest instances go first so
// the pool tail stays short. Every worker runs under panic isolation;
// the first failure aborts the remaining stamping and fails the
// streams so blocked consumers unwind instead of deadlocking.
func (fl *Flat) start(workers int, streams []*FlatStream, cuts []int64) {
	fl.started = time.Now()
	fl.failMu.Lock()
	fl.streams = append(fl.streams, streams...)
	fl.failMu.Unlock()
	if err := fl.Err(); err != nil {
		// A previous stream of this Flat already failed; keep the new
		// streams consistent instead of blocking their consumers.
		for _, s := range streams {
			s.fail()
		}
		return
	}
	order := make([]int, len(fl.insts))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return fl.insts[order[a]].weight > fl.insts[order[b]].weight
	})
	if workers < 1 {
		workers = 1
	}
	if fl.ctx != nil {
		// Watch for external cancellation so consumers blocked in
		// cond.Wait unwind promptly even when no worker is between
		// checks. The watcher exits when the caller's deferred cancel
		// fires, so it never outlives the extraction.
		ctx := fl.ctx
		go func() {
			<-ctx.Done()
			fl.fail(&guard.StageError{Stage: guard.StageStamp, Err: ctx.Err()})
		}()
	}
	var next atomic.Int64
	work := func() error {
		var bands [][]Box
		if cuts != nil {
			bands = make([][]Box, len(cuts)+1)
		}
		for {
			if fl.abortFlag.Load() {
				return nil
			}
			if err := guard.Ctx(fl.ctx, guard.StageStamp); err != nil {
				return err
			}
			if err := guard.Inject(guard.StageStamp); err != nil {
				return err
			}
			oi := int(next.Add(1)) - 1
			if oi >= len(order) {
				return nil
			}
			i := order[oi]
			run := fl.stampRun(&fl.insts[i])
			if err := fl.limits.CheckMem(guard.StageStamp,
				fl.retained.Add(int64(len(run))*guard.BoxBytes)); err != nil {
				return err
			}
			if cuts == nil {
				if streams[0].publish(i, run) {
					fl.doneAt.Store(time.Now().UnixNano())
				}
				continue
			}
			for k := range bands {
				bands[k] = bands[k][:0]
			}
			routeRun(run, cuts, bands)
			for k, s := range streams {
				out := append(fl.pool.GetBoxBuf(), bands[k]...)
				if s.publish(i, out) && k == len(streams)-1 {
					fl.doneAt.Store(time.Now().UnixNano())
				}
			}
			// The un-routed run dies here; its per-band copies live on
			// in the streams until Release.
			fl.pool.PutBoxBuf(run)
		}
	}
	for w := 0; w < workers; w++ {
		go func() {
			if err := guard.Run(guard.StageStamp, work); err != nil {
				fl.fail(err)
			}
		}()
	}
}

// routeRun distributes one sorted run into per-band lists, clipped to
// each band — the same assignment partitionBoxes makes: band k covers
// (cuts[k], cuts[k-1]], a box belongs to every band it intersects, and
// a box whose top sits exactly on a cut belongs to the band below.
// Clipping tops to the band boundary is monotone, so each band's list
// stays sorted by descending top.
func routeRun(run []Box, cuts []int64, out [][]Box) {
	nBands := len(cuts) + 1
	for _, b := range run {
		y0, y1 := b.Rect.YMin, b.Rect.YMax
		k := 0
		for k < len(cuts) && y1 <= cuts[k] {
			k++
		}
		for ; k < nBands; k++ {
			if k > 0 && y0 >= cuts[k-1] {
				break
			}
			r := b.Rect
			if k > 0 && r.YMax > cuts[k-1] {
				r.YMax = cuts[k-1]
			}
			if k < len(cuts) && r.YMin < cuts[k] {
				r.YMin = cuts[k]
			}
			out[k] = append(out[k], Box{Layer: b.Layer, Rect: r})
			if k == len(cuts) || y0 >= cuts[k] {
				break
			}
		}
	}
}

// Release returns the published runs' backing buffers to the arena the
// Flat was built with. Call it only after every stream is fully
// consumed and the pipeline succeeded — the extraction Result has
// copied everything it keeps by then. On a failed or still-stamping
// pipeline Release is a no-op: a worker could still publish into a
// buffer we just reissued.
func (fl *Flat) Release() {
	if fl.pool == nil {
		return
	}
	fl.failMu.Lock()
	streams := fl.streams
	failed := fl.err != nil
	fl.failMu.Unlock()
	if failed {
		return
	}
	for _, s := range streams {
		s.mu.Lock()
		if s.pending != 0 || s.failed {
			s.mu.Unlock()
			return
		}
		for i := range s.runs {
			fl.pool.PutBoxBuf(s.runs[i].boxes)
			s.runs[i].boxes = nil
		}
		s.mu.Unlock()
	}
}

// Stats reports front-end counters for the flattened path, in the
// legacy Stream's terms: BoxesOut counts design boxes delivered,
// CellsExpanded counts instances stamped, NonManhattan counts deferred
// polygon/wire stampings. PeakHeap is zero — there is no heap.
func (fl *Flat) Stats() Stats {
	return Stats{
		BoxesOut:      int(fl.boxesOut.Load()),
		CellsExpanded: len(fl.insts),
		NonManhattan:  int(fl.nonManh.Load()),
	}
}

// Timing reports (wall-clock from worker launch to the last run
// published, CPU time spent stamping, CPU time spent sorting runs).
// The wall-clock overlaps the sweep that consumes the streams.
func (fl *Flat) Timing() (flatten, stamp, sortRuns time.Duration) {
	if done := fl.doneAt.Load(); done != 0 && !fl.started.IsZero() {
		flatten = time.Unix(0, done).Sub(fl.started)
	}
	return flatten, time.Duration(fl.stampNs.Load()), time.Duration(fl.sortNs.Load())
}

// FlatStream merges stamped runs into one descending-top box source
// (the scan.Source contract). A box is released once no unpublished
// run could still produce a higher one; consumers block until then, so
// delivery order is correct even while stamping is in flight.
type FlatStream struct {
	mu      sync.Mutex
	cond    *sync.Cond
	runs    []flatRun
	pending int
	failed  bool // pipeline aborted; report exhaustion, owner's Err has why
}

type flatRun struct {
	boxes []Box
	pos   int
	bound int64 // inclusive upper bound on this run's unconsumed tops
	done  bool
}

func newFlatStream(insts []flatInstance) *FlatStream {
	s := &FlatStream{runs: make([]flatRun, len(insts)), pending: len(insts)}
	s.cond = sync.NewCond(&s.mu)
	for i := range insts {
		s.runs[i].bound = insts[i].top
	}
	return s
}

// publish installs a finished run; returns true when it was the last.
func (s *FlatStream) publish(i int, boxes []Box) bool {
	s.mu.Lock()
	r := &s.runs[i]
	r.boxes = boxes
	r.done = true
	if len(boxes) > 0 {
		r.bound = boxes[0].Rect.YMax
	}
	s.pending--
	last := s.pending == 0
	s.cond.Broadcast()
	s.mu.Unlock()
	return last
}

// fail marks the stream aborted and wakes blocked consumers, which
// then observe exhaustion — the scan.Source contract has no error
// channel, so the Flat that owns the stream carries the error and
// callers check Flat.Err after the sweep returns.
func (s *FlatStream) fail() {
	s.mu.Lock()
	s.failed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// pick returns the run to pop next, -1 to wait for a publication, or
// -2 when every run is exhausted.
func (s *FlatStream) pick() int {
	if s.failed {
		return -2
	}
	best := -1
	var bestTop, maxPending int64
	havePending := false
	for i := range s.runs {
		r := &s.runs[i]
		if !r.done {
			if !havePending || r.bound > maxPending {
				maxPending, havePending = r.bound, true
			}
			continue
		}
		if r.pos < len(r.boxes) {
			if t := r.boxes[r.pos].Rect.YMax; best < 0 || t > bestTop {
				best, bestTop = i, t
			}
		}
	}
	switch {
	case best >= 0 && (!havePending || bestTop >= maxPending):
		return best
	case best < 0 && !havePending:
		return -2
	default:
		return -1
	}
}

// NextTop reports the top of the next box without consuming it,
// blocking while an unpublished run could still beat it.
func (s *FlatStream) NextTop() (int64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		switch i := s.pick(); {
		case i == -2:
			return 0, false
		case i >= 0:
			return s.runs[i].boxes[s.runs[i].pos].Rect.YMax, true
		default:
			s.cond.Wait()
		}
	}
}

// Next returns the next box in descending top order.
func (s *FlatStream) Next() (Box, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		switch i := s.pick(); {
		case i == -2:
			return Box{}, false
		case i >= 0:
			r := &s.runs[i]
			b := r.boxes[r.pos]
			r.pos++
			return b, true
		default:
			s.cond.Wait()
		}
	}
}

// Drain returns all remaining boxes (tests and baselines).
func (s *FlatStream) Drain() []Box {
	var out []Box
	for {
		b, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, b)
	}
}
