package frontend

import (
	"os"
	"path/filepath"
	"sort"
	"testing"

	"ace/internal/cif"
	"ace/internal/gen"
)

// flattenWorkerCounts spans the grains the extractor exposes: serial
// stamping, a small pool, and more workers than this host has cores.
var flattenWorkerCounts = []int{1, 2, 8}

// corpusFiles loads every CIF file from the extract package's corpus;
// the flatten path must agree with the heap on each of them.
func corpusFiles(t *testing.T) map[string]*cif.File {
	t.Helper()
	dir := filepath.Join("..", "extract", "testdata")
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]*cif.File{}
	for _, e := range ents {
		if filepath.Ext(e.Name()) != ".cif" {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		f, err := cif.ParseBytes(data)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		out[e.Name()] = f
	}
	if len(out) == 0 {
		t.Fatal("no corpus files found")
	}
	return out
}

// genDesigns are generated workloads with deep hierarchy, mirrored and
// rotated instances, and (Statistical) pseudo-random geometry.
func genDesigns() map[string]*cif.File {
	out := map[string]*cif.File{}
	for _, w := range gen.BenchChips() {
		out[w.Name] = w.File
	}
	out["mesh"] = gen.Mesh(5).File
	out["statistical"] = gen.Statistical(1500, 11).File
	return out
}

// mirroredSrc exercises every transform family the stamper handles —
// identity, both mirrors, three rotations, and compositions — over a
// cell that mixes boxes with deferred (manhattanised) geometry, at two
// nesting levels so arena folding composes transforms.
const mirroredSrc = `
DS 1 1 1;
L ND; B 40 20 30 20;
L NP; P 0 0 60 0 60 25 30 55 0 25;
L NM; W 8 0 0 50 50 90 50;
DF;
DS 2 1 1;
C 1;
C 1 M X T 300 0;
C 1 M Y T 0 280;
C 1 R 0 1 T 500 100;
C 1 R 0 -1 T 150 450;
C 1 R -1 0 T 700 600;
L ND; B 30 30 -40 -40;
DF;
DS 3 1 1;
C 2;
C 2 M X R 0 1 T 1900 1900;
C 2 M Y R 0 -1 T -800 900;
DF;
C 3;
C 3 T 4000 100 M Y;
E
`

func parseSrc(t *testing.T, src string) *cif.File {
	t.Helper()
	f, err := cif.ParseString(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f
}

// canonBoxes returns a copy in the canonical total order (descending
// top, then layer, XMin, YMin, XMax). Two streams deliver the same
// per-stop multisets iff their canonical forms are equal.
func canonBoxes(in []Box) []Box {
	out := make([]Box, len(in))
	copy(out, in)
	sort.Slice(out, func(i, j int) bool {
		a, b := &out[i], &out[j]
		if a.Rect.YMax != b.Rect.YMax {
			return a.Rect.YMax > b.Rect.YMax
		}
		if a.Layer != b.Layer {
			return a.Layer < b.Layer
		}
		if a.Rect.XMin != b.Rect.XMin {
			return a.Rect.XMin < b.Rect.XMin
		}
		if a.Rect.YMin != b.Rect.YMin {
			return a.Rect.YMin < b.Rect.YMin
		}
		return a.Rect.XMax < b.Rect.XMax
	})
	return out
}

func checkDescendingTops(t *testing.T, name string, boxes []Box) {
	t.Helper()
	for i := 1; i < len(boxes); i++ {
		if boxes[i].Rect.YMax > boxes[i-1].Rect.YMax {
			t.Fatalf("%s: box %d top %d above previous top %d",
				name, i, boxes[i].Rect.YMax, boxes[i-1].Rect.YMax)
		}
	}
}

func compareCanon(t *testing.T, name string, want, got []Box) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: heap delivered %d boxes, flatten %d", name, len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: canonical box %d differs: heap %+v, flatten %+v",
				name, i, want[i], got[i])
		}
	}
}

// TestDrainMatchesNext is the Drain/Next property: Drain must yield
// exactly the sequence repeated Next calls would.
func TestDrainMatchesNext(t *testing.T) {
	designs := corpusFiles(t)
	for name, f := range genDesigns() {
		designs[name] = f
	}
	designs["mirrored"] = parseSrc(t, mirroredSrc)
	for name, f := range designs {
		s1, err := New(f, Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		s2, err := New(f, Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		drained := s1.Drain()
		for i, want := range drained {
			if top, ok := s2.NextTop(); !ok || top != want.Rect.YMax {
				t.Fatalf("%s: NextTop at %d = (%d, %t), Drain saw top %d",
					name, i, top, ok, want.Rect.YMax)
			}
			got, ok := s2.Next()
			if !ok || got != want {
				t.Fatalf("%s: Next at %d = (%+v, %t), Drain saw %+v",
					name, i, got, ok, want)
			}
		}
		if b, ok := s2.Next(); ok {
			t.Fatalf("%s: Next yielded %+v past Drain's end", name, b)
		}
	}
}

// TestFlattenMatchesHeap checks the tentpole equivalence: at every
// worker grain, the pre-flattened stream delivers descending tops and
// the identical box multiset at every stop as the legacy heap stream —
// over the corpus, the generated chips, and the handcrafted
// mirrored/rotated design.
func TestFlattenMatchesHeap(t *testing.T) {
	designs := corpusFiles(t)
	for name, f := range genDesigns() {
		designs[name] = f
	}
	designs["mirrored"] = parseSrc(t, mirroredSrc)
	for name, f := range designs {
		s, err := New(f, Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want := canonBoxes(s.Drain())
		for _, w := range flattenWorkerCounts {
			fl, err := Flatten(nil, f, Options{})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			got := fl.Stream(w).Drain()
			checkDescendingTops(t, name, got)
			compareCanon(t, name, want, canonBoxes(got))
		}
	}
}

// TestFlattenKeepGlass pins the Glass filter parity: both front ends
// must drop or keep overglass geometry together.
func TestFlattenKeepGlass(t *testing.T) {
	src := `
DS 1 1 1;
L NG; B 20 20 0 0;
L NM; B 40 10 0 40;
DF;
C 1;
C 1 T 100 0;
E
`
	f := parseSrc(t, src)
	for _, keep := range []bool{false, true} {
		opt := Options{KeepGlass: keep}
		s, err := New(f, opt)
		if err != nil {
			t.Fatal(err)
		}
		want := canonBoxes(s.Drain())
		fl, err := Flatten(nil, f, opt)
		if err != nil {
			t.Fatal(err)
		}
		got := canonBoxes(fl.Stream(2).Drain())
		compareCanon(t, "glass", want, got)
	}
}

// TestSortedTopsMatchDrain: the prepass top multiset drives band-cut
// selection, so it must equal the heap stream's top multiset exactly.
func TestSortedTopsMatchDrain(t *testing.T) {
	designs := genDesigns()
	designs["mirrored"] = parseSrc(t, mirroredSrc)
	for name, f := range designs {
		s, err := New(f, Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		boxes := s.Drain()
		fl, err := Flatten(nil, f, Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		fl.Prepare(3)
		tops, err := fl.SortedTops(3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(tops) != len(boxes) {
			t.Fatalf("%s: %d tops for %d boxes", name, len(tops), len(boxes))
		}
		for i, b := range boxes {
			if tops[i] != b.Rect.YMax {
				t.Fatalf("%s: top %d = %d, heap stream has %d",
					name, i, tops[i], b.Rect.YMax)
			}
		}
	}
}
