// Package frontend implements ACE's front end: it parses a CIF design
// and delivers fully-instantiated, manhattanised boxes to the back end
// sorted from the top of the chip to the bottom — without ever
// instantiating the whole chip at once.
//
// The sort uses a max-heap keyed by box top. Symbol calls sit in the
// heap as single entries keyed by the top of their transformed
// bounding box; a call is expanded one level only when the sweep
// actually reaches it (ACE §4: "recursively expands only those cells
// that intersect the current scanline"). A cell entirely below the
// scanline therefore costs one heap entry, not its full contents.
package frontend

import (
	"fmt"

	"ace/internal/cif"
	"ace/internal/diag"
	"ace/internal/geom"
	"ace/internal/guard"
	"ace/internal/tech"
)

// Box is one axis-aligned piece of mask geometry.
type Box struct {
	Layer tech.Layer
	Rect  geom.Rect
}

// Label is an instantiated net name annotation.
type Label struct {
	Name     string
	At       geom.Point
	Layer    tech.Layer
	HasLayer bool
}

// Options configures instantiation.
type Options struct {
	// Grid is the manhattanisation grid for non-manhattan geometry in
	// centimicrons. Zero selects the default of 10 (λ/20 at the
	// standard NMOS λ of 200).
	Grid int64

	// KeepGlass instructs the stream to also deliver overglass
	// geometry; extraction ignores it, so by default it is dropped.
	KeepGlass bool

	// Limits are the front end's resource budgets: MaxDepth bounds the
	// call hierarchy (cycles are always rejected), MaxExpandedBoxes
	// caps the pre-flattener's materialised arena boxes and
	// MaxMemBytes its retained bytes. Zero fields are unlimited except
	// depth, which defaults to guard.DefaultMaxDepth.
	Limits guard.Limits

	// Lenient selects fail-soft hierarchy validation: recursive
	// definitions and over-deep hierarchies are reported into Diags as
	// Error diagnostics and the offending calls dropped, instead of
	// failing the build. An empty design yields an empty stream plus a
	// diagnostic rather than an error. Resource budgets (Limits) still
	// abort: they protect the process, not the input.
	Lenient bool

	// Diags receives the front end's diagnostics in lenient mode. Nil
	// is allowed; findings are then silently dropped.
	Diags *diag.Set

	// Arena, when non-nil, supplies pooled Streams and box buffers so
	// repeated instantiation stops allocating. Output is identical with
	// and without it.
	Arena *Arena
}

// Stats reports front-end work counters.
type Stats struct {
	BoxesOut      int // boxes delivered to the back end
	CellsExpanded int // symbol instances expanded
	PeakHeap      int // maximum heap size reached
	NonManhattan  int // polygons/wires/rotated boxes approximated
}

// Stream delivers boxes in descending top-edge order.
type Stream struct {
	syms   map[int]*cif.Symbol
	bboxes map[int]geom.Rect
	grid   int64
	keepNG bool

	heap   []entry
	labels []Label
	stats  Stats
	bbox   geom.Rect
	hasBB  bool

	// labelMemo caches per-symbol "subtree contains labels"; callSink,
	// when set, diverts label-bearing calls from the heap during
	// Labels()'s forced expansion. impureMemo caches per-symbol
	// "subtree contains polygons or wires", which decides whether a
	// call's heap key needs grid rounding (see pushItems).
	labelMemo  map[int]bool
	impureMemo map[int]bool
	callSink   *[]entry

	// banned holds symbols whose calls lenient hierarchy validation
	// dropped (cycles, excess depth); nil in strict mode.
	banned map[int]bool

	// geo is the polygon/wire decomposition scratch; a Stream is
	// single-goroutine, and pooled Streams keep its grown capacity.
	geo geom.BoxScratch
}

type entryKind int8

const (
	entryBox entryKind = iota
	entryCall
)

type entry struct {
	top   int64
	kind  entryKind
	box   Box
	sym   int
	trans geom.Transform
}

// New builds a stream over the file's top cell. It returns an error if
// the design has no geometry at all.
func New(f *cif.File, opts Options) (*Stream, error) {
	top, _ := f.TopSymbol()
	return NewItems(top, f.Symbols, opts)
}

// NewItems builds a stream over an explicit item list (used by HEXT to
// instantiate window contents). A panic while seeding the heap surfaces
// as a *guard.PanicError attributed to the front end.
func NewItems(items []cif.Item, syms map[int]*cif.Symbol, opts Options) (s *Stream, err error) {
	defer guard.Recover(guard.StageFrontend, &err)
	if err := guard.Inject(guard.StageFrontend); err != nil {
		return nil, err
	}
	var banned map[int]bool
	if opts.Lenient {
		banned = checkHierarchyLenient(items, syms, opts.Limits.Depth(), opts.Diags)
	} else if err := checkHierarchy(items, syms, opts.Limits.Depth()); err != nil {
		return nil, err
	}
	grid := opts.Grid
	if grid <= 0 {
		grid = 10
	}
	s = opts.Arena.getStream()
	s.syms = syms
	s.grid = grid
	s.keepNG = opts.KeepGlass
	s.banned = banned
	s.pushItems(items, geom.Identity)
	if len(s.heap) == 0 && len(s.labels) == 0 {
		if !opts.Lenient {
			return nil, fmt.Errorf("frontend: %w", guard.ErrNoGeometry)
		}
		addDiag(opts.Diags, diag.New(diag.Warning, guard.StageFrontend,
			"no-geometry", "design contains no geometry"))
	}
	bb, ok := cif.BBoxItems(items, syms, s.bboxes)
	if ok {
		s.bbox = bb
		s.hasBB = true
	}
	return s, nil
}

// BBox returns the design's bounding box.
func (s *Stream) BBox() geom.Rect { return s.bbox }

// Labels returns every label in the design. Only calls whose symbol
// subtree actually contains labels are expanded, so the front end's
// laziness is preserved for ordinary geometry (labels typically live
// at the top level).
func (s *Stream) Labels() []Label {
	// Pull label-bearing calls out of the heap.
	var queue []entry
	w := 0
	for _, e := range s.heap {
		if e.kind == entryCall && s.hasLabels(e.sym) {
			queue = append(queue, e)
		} else {
			s.heap[w] = e
			w++
		}
	}
	if w == len(s.heap) {
		return s.labels // nothing to expand
	}
	s.heap = s.heap[:w]
	s.fixHeap()

	// Expand the queue iteratively; geometry goes back into the heap,
	// label-bearing sub-calls stay in the queue.
	for len(queue) > 0 {
		e := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		s.stats.CellsExpanded++
		s.callSink = &queue
		s.pushItems(s.syms[e.sym].Items, e.trans)
		s.callSink = nil
	}
	return s.labels
}

// hasLabels reports whether a symbol's subtree contains any label.
func (s *Stream) hasLabels(id int) bool {
	if v, ok := s.labelMemo[id]; ok {
		return v
	}
	if s.labelMemo == nil {
		s.labelMemo = map[int]bool{}
	}
	s.labelMemo[id] = false // break cycles defensively
	found := false
	for _, it := range s.syms[id].Items {
		switch it.Kind {
		case cif.ItemLabel:
			found = true
		case cif.ItemCall:
			if s.hasLabels(it.SymbolID) {
				found = true
			}
		}
		if found {
			break
		}
	}
	s.labelMemo[id] = found
	return found
}

// hasImpure reports whether a symbol's subtree contains any polygon or
// wire — geometry whose manhattanisation may overshoot the symbol
// bounding box by up to one grid band.
func (s *Stream) hasImpure(id int) bool {
	if v, ok := s.impureMemo[id]; ok {
		return v
	}
	if s.impureMemo == nil {
		s.impureMemo = map[int]bool{}
	}
	s.impureMemo[id] = false // break cycles defensively
	found := false
	for _, it := range s.syms[id].Items {
		switch it.Kind {
		case cif.ItemPolygon, cif.ItemWire:
			found = true
		case cif.ItemCall:
			if s.hasImpure(it.SymbolID) {
				found = true
			}
		}
		if found {
			break
		}
	}
	s.impureMemo[id] = found
	return found
}

// ceilToGrid rounds v up to the next multiple of grid.
func ceilToGrid(v, grid int64) int64 {
	if r := ((v % grid) + grid) % grid; r != 0 {
		return v + grid - r
	}
	return v
}

// Stats returns work counters.
func (s *Stream) Stats() Stats { return s.stats }

// NextTop reports the top edge of the next box without consuming it.
func (s *Stream) NextTop() (int64, bool) {
	for len(s.heap) > 0 && s.heap[0].kind == entryCall {
		e := s.pop()
		s.expand(e)
	}
	if len(s.heap) == 0 {
		return 0, false
	}
	return s.heap[0].top, true
}

// Next returns the next box in descending top order.
func (s *Stream) Next() (Box, bool) {
	if _, ok := s.NextTop(); !ok {
		return Box{}, false
	}
	e := s.pop()
	s.stats.BoxesOut++
	return e.box, true
}

// Drain returns all remaining boxes (mostly for tests and the
// baselines, which want the flat list).
func (s *Stream) Drain() []Box {
	var out []Box
	for {
		b, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, b)
	}
}

func (s *Stream) expand(e entry) {
	sym := s.syms[e.sym]
	s.stats.CellsExpanded++
	s.pushItems(sym.Items, e.trans)
}

func (s *Stream) pushItems(items []cif.Item, tr geom.Transform) {
	for _, it := range items {
		switch it.Kind {
		case cif.ItemBox:
			s.pushBox(it.Layer, tr.ApplyRect(it.Box))
		case cif.ItemPolygon:
			s.stats.NonManhattan++
			// pushBox copies each rect out before the scratch's next use.
			for _, r := range it.Poly.ApplyManhattanize(&s.geo, tr, s.grid) {
				s.pushBox(it.Layer, r)
			}
		case cif.ItemWire:
			s.stats.NonManhattan++
			for _, r := range it.Wire.ApplyBoxes(&s.geo, tr, s.grid) {
				s.pushBox(it.Layer, r)
			}
		case cif.ItemCall:
			if s.banned[it.SymbolID] {
				continue // dropped by lenient hierarchy validation
			}
			sub, ok := cif.SymbolBBox(it.SymbolID, s.syms, s.bboxes)
			if !ok {
				continue // empty symbol
			}
			t := it.Trans.Then(tr)
			top := t.ApplyRect(sub).YMax
			if s.hasImpure(it.SymbolID) {
				// Manhattanisation rounds band tops up to the grid, so
				// a polygon or wire in the subtree can produce boxes
				// above the symbol's bounding box. Rounding the key up
				// keeps the heap's invariant — children never outrank
				// their call — so delivery stays in descending-top
				// order (the sweep requires it).
				top = ceilToGrid(top, s.grid)
			}
			e := entry{
				top:   top,
				kind:  entryCall,
				sym:   it.SymbolID,
				trans: t,
			}
			if s.callSink != nil && s.hasLabels(it.SymbolID) {
				*s.callSink = append(*s.callSink, e)
			} else {
				s.push(e)
			}
		case cif.ItemLabel:
			s.labels = append(s.labels, Label{
				Name:     it.Name,
				At:       tr.Apply(it.At),
				Layer:    it.Layer,
				HasLayer: it.HasLayer,
			})
		}
	}
}

func (s *Stream) pushBox(l tech.Layer, r geom.Rect) {
	if r.Empty() {
		return
	}
	if l == tech.Glass && !s.keepNG {
		return
	}
	s.push(entry{top: r.YMax, kind: entryBox, box: Box{Layer: l, Rect: r}})
}

// ---- max-heap keyed by top ----

func (s *Stream) push(e entry) {
	s.heap = append(s.heap, e)
	i := len(s.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if s.heap[p].top >= s.heap[i].top {
			break
		}
		s.heap[p], s.heap[i] = s.heap[i], s.heap[p]
		i = p
	}
	if len(s.heap) > s.stats.PeakHeap {
		s.stats.PeakHeap = len(s.heap)
	}
}

func (s *Stream) pop() entry {
	e := s.heap[0]
	last := len(s.heap) - 1
	s.heap[0] = s.heap[last]
	s.heap = s.heap[:last]
	s.siftDown(0)
	return e
}

func (s *Stream) siftDown(i int) {
	n := len(s.heap)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && s.heap[l].top > s.heap[m].top {
			m = l
		}
		if r < n && s.heap[r].top > s.heap[m].top {
			m = r
		}
		if m == i {
			return
		}
		s.heap[i], s.heap[m] = s.heap[m], s.heap[i]
		i = m
	}
}

func (s *Stream) fixHeap() {
	for i := len(s.heap)/2 - 1; i >= 0; i-- {
		s.siftDown(i)
	}
}
