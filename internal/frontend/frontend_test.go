package frontend

import (
	"math/rand"
	"strings"
	"testing"

	"ace/internal/cif"
	"ace/internal/geom"
	"ace/internal/tech"
)

func stream(t *testing.T, src string) *Stream {
	t.Helper()
	f, err := cif.ParseString(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	s, err := New(f, Options{})
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	return s
}

func TestSortedDescendingTops(t *testing.T) {
	src := `
L ND;
B 10 10 0 0;
B 10 10 0 100;
B 10 10 0 50;
B 10 10 0 -30;
E
`
	s := stream(t, src)
	boxes := s.Drain()
	if len(boxes) != 4 {
		t.Fatalf("boxes %d", len(boxes))
	}
	for i := 1; i < len(boxes); i++ {
		if boxes[i].Rect.YMax > boxes[i-1].Rect.YMax {
			t.Fatalf("out of order: %v after %v", boxes[i].Rect, boxes[i-1].Rect)
		}
	}
}

func TestHierarchyExpansion(t *testing.T) {
	src := `
DS 1; L ND; B 100 100 50 50; DF;
DS 2; C 1; C 1 T 200 0; DF;
C 2;
C 2 T 0 1000;
E
`
	s := stream(t, src)
	boxes := s.Drain()
	if len(boxes) != 4 {
		t.Fatalf("boxes %d, want 4", len(boxes))
	}
	// The two instances at y offset 1000 must come first.
	if boxes[0].Rect.YMax != 1100 || boxes[1].Rect.YMax != 1100 {
		t.Fatalf("top boxes wrong: %v %v", boxes[0].Rect, boxes[1].Rect)
	}
	st := s.Stats()
	if st.CellsExpanded != 6 { // 2×C2 + 4×C1
		t.Fatalf("cells expanded %d, want 6", st.CellsExpanded)
	}
	if st.BoxesOut != 4 {
		t.Fatalf("boxes out %d", st.BoxesOut)
	}
}

func TestLazyExpansion(t *testing.T) {
	// A deep row of cells: reading only the top boxes must not expand
	// cells that lie entirely below.
	var sb strings.Builder
	sb.WriteString("DS 1; L ND; B 100 100 50 50; DF;\n")
	for i := 0; i < 50; i++ {
		// Each instance 200 lower than the previous.
		sb.WriteString("C 1 T 0 ")
		sb.WriteString(itoa(-200 * i))
		sb.WriteString(";\n")
	}
	sb.WriteString("E\n")
	s := stream(t, sb.String())
	b, ok := s.Next()
	if !ok || b.Rect.YMax != 100 {
		t.Fatalf("first box %v %v", b, ok)
	}
	if got := s.Stats().CellsExpanded; got != 1 {
		t.Fatalf("expanded %d cells for one box, want 1", got)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b [24]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}

func TestTransformedInstances(t *testing.T) {
	src := `
DS 1; L NP; B 100 20 50 10; DF;
C 1 R 0 1;
E
`
	s := stream(t, src)
	boxes := s.Drain()
	if len(boxes) != 1 {
		t.Fatalf("boxes %d", len(boxes))
	}
	r := boxes[0].Rect
	if r.W() != 20 || r.H() != 100 {
		t.Fatalf("rotated instance box %v", r)
	}
}

func TestLabelsInstantiated(t *testing.T) {
	src := `
DS 1; L ND; B 10 10 0 0; 94 A 5 5; DF;
C 1 T 100 100;
94 TOPLVL 0 0;
E
`
	s := stream(t, src)
	s.Drain()
	labels := s.Labels()
	if len(labels) != 2 {
		t.Fatalf("labels %d: %+v", len(labels), labels)
	}
	var a, top *Label
	for i := range labels {
		switch labels[i].Name {
		case "A":
			a = &labels[i]
		case "TOPLVL":
			top = &labels[i]
		}
	}
	if a == nil || a.At != geom.Pt(105, 105) {
		t.Fatalf("label A: %+v", a)
	}
	if top == nil || top.At != geom.Pt(0, 0) {
		t.Fatalf("label TOPLVL: %+v", top)
	}
}

func TestLabelsForceExpansion(t *testing.T) {
	// Labels must be found even if the caller never drains geometry.
	src := `
DS 1; L ND; B 10 10 0 0; 94 DEEP 1 2; DF;
C 1;
E
`
	s := stream(t, src)
	labels := s.Labels()
	if len(labels) != 1 || labels[0].Name != "DEEP" {
		t.Fatalf("labels %+v", labels)
	}
}

func TestPolygonExpansion(t *testing.T) {
	src := "L ND; P 0 0 100 0 0 100;\nE\n"
	s := stream(t, src)
	boxes := s.Drain()
	if len(boxes) == 0 {
		t.Fatal("polygon expanded to no boxes")
	}
	if s.Stats().NonManhattan != 1 {
		t.Fatalf("NonManhattan %d", s.Stats().NonManhattan)
	}
	var area int64
	rects := make([]geom.Rect, len(boxes))
	for i, b := range boxes {
		if b.Layer != tech.Diff {
			t.Fatalf("layer %v", b.Layer)
		}
		rects[i] = b.Rect
	}
	area = geom.UnionArea(rects)
	if area < 4000 || area > 6000 {
		t.Fatalf("triangle area %d not near 5000", area)
	}
}

func TestGlassDropped(t *testing.T) {
	src := "L NG; B 100 100 0 0;\nL ND; B 10 10 0 0;\nE\n"
	s := stream(t, src)
	boxes := s.Drain()
	if len(boxes) != 1 || boxes[0].Layer != tech.Diff {
		t.Fatalf("glass not dropped: %+v", boxes)
	}
	// With KeepGlass the box must appear.
	f, _ := cif.ParseString(src)
	s2, _ := New(f, Options{KeepGlass: true})
	if got := len(s2.Drain()); got != 2 {
		t.Fatalf("KeepGlass boxes %d", got)
	}
}

func TestEmptyDesignErrors(t *testing.T) {
	f, err := cif.ParseString("E\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(f, Options{}); err == nil {
		t.Fatal("empty design should error")
	}
}

func TestBBox(t *testing.T) {
	src := "DS 1; L ND; B 100 100 50 50; DF;\nC 1;\nC 1 T 500 500;\nE\n"
	s := stream(t, src)
	if s.BBox() != geom.R(0, 0, 600, 600) {
		t.Fatalf("bbox %v", s.BBox())
	}
}

func TestHeapRandomized(t *testing.T) {
	// Property: for random flat designs, output is a permutation of
	// input sorted by descending YMax.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(100)
		var sb strings.Builder
		sb.WriteString("L ND;\n")
		tops := make(map[int64]int)
		for i := 0; i < n; i++ {
			y := int64(rng.Intn(1000))
			tops[y+5]++
			sb.WriteString("B 10 10 ")
			sb.WriteString(itoa(rng.Intn(1000)))
			sb.WriteString(" ")
			sb.WriteString(itoa(int(y)))
			sb.WriteString(";\n")
		}
		sb.WriteString("E\n")
		s := stream(t, sb.String())
		prev := int64(1 << 60)
		count := 0
		for {
			b, ok := s.Next()
			if !ok {
				break
			}
			count++
			if b.Rect.YMax > prev {
				t.Fatalf("unsorted output")
			}
			prev = b.Rect.YMax
			tops[b.Rect.YMax]--
		}
		if count != n {
			t.Fatalf("lost boxes: %d of %d", count, n)
		}
		for y, c := range tops {
			if c != 0 {
				t.Fatalf("top %d count %d", y, c)
			}
		}
	}
}

func TestNextTopDoesNotConsume(t *testing.T) {
	s := stream(t, "L ND; B 10 10 0 0;\nE\n")
	y1, ok1 := s.NextTop()
	y2, ok2 := s.NextTop()
	if !ok1 || !ok2 || y1 != y2 || y1 != 5 {
		t.Fatalf("NextTop %d/%v %d/%v", y1, ok1, y2, ok2)
	}
	if _, ok := s.Next(); !ok {
		t.Fatal("box lost")
	}
	if _, ok := s.NextTop(); ok {
		t.Fatal("stream should be empty")
	}
}
