package frontend

import (
	"fmt"

	"ace/internal/cif"
	"ace/internal/diag"
	"ace/internal/guard"
)

// addDiag records a diagnostic into an optional sink.
func addDiag(ds *diag.Set, d diag.Diagnostic) {
	if ds != nil {
		ds.Add(d)
	}
}

// checkHierarchy walks the call graph reachable from items and rejects
// cycles and hierarchies deeper than maxDepth, before any expansion
// work begins. The CIF parser already rejects recursive definitions,
// but both front ends also accept synthesised symbol tables (HEXT
// windows, tests, library users), and the lazy heap would loop forever
// on a self-referential symbol while the pre-flattener's arena fold
// would silently drop its contents. This mirrors the depth guard
// hext's hierarchical-wirelist parser applies in hierparse.go.
//
// Errors name the offending DS so they read like parse errors.
func checkHierarchy(items []cif.Item, syms map[int]*cif.Symbol, maxDepth int) error {
	// depths memoises the longest symbol chain starting at a symbol
	// (>= 1); onStack marks the DFS path for cycle detection.
	depths := make(map[int]int)
	onStack := make(map[int]bool)
	var visit func(id, depth int) (int, error)
	visit = func(id, depth int) (int, error) {
		if depth > maxDepth {
			return 0, &guard.LimitError{
				Stage: guard.StageFrontend, What: "call-hierarchy depth",
				Value: int64(depth), Limit: int64(maxDepth),
			}
		}
		if onStack[id] {
			return 0, fmt.Errorf("frontend: recursive symbol definition involving DS %d", id)
		}
		if d, ok := depths[id]; ok {
			return d, nil
		}
		sym := syms[id]
		if sym == nil {
			depths[id] = 1
			return 1, nil
		}
		onStack[id] = true
		deepest := 0
		for _, it := range sym.Items {
			if it.Kind != cif.ItemCall {
				continue
			}
			d, err := visit(it.SymbolID, depth+1)
			if err != nil {
				return 0, err
			}
			if d > deepest {
				deepest = d
			}
		}
		delete(onStack, id)
		depths[id] = deepest + 1
		return deepest + 1, nil
	}
	for _, it := range items {
		if it.Kind != cif.ItemCall {
			continue
		}
		d, err := visit(it.SymbolID, 1)
		if err != nil {
			return err
		}
		if d > maxDepth {
			return &guard.LimitError{
				Stage: guard.StageFrontend, What: "call-hierarchy depth",
				Value: int64(d), Limit: int64(maxDepth),
			}
		}
	}
	return nil
}

// checkHierarchyLenient is checkHierarchy's fail-soft counterpart: a
// symbol found on the DFS path (a cycle) or past the depth budget is
// reported into ds and added to the returned ban set, whose calls the
// front ends then drop — the rest of the design still extracts. The
// walk follows item order, so the diagnostics and the ban choices are
// deterministic.
func checkHierarchyLenient(items []cif.Item, syms map[int]*cif.Symbol, maxDepth int, ds *diag.Set) map[int]bool {
	banned := map[int]bool{}
	ban := func(id int, code, format string, args ...any) {
		if banned[id] {
			return
		}
		banned[id] = true
		addDiag(ds, diag.New(diag.Error, guard.StageFrontend, code,
			fmt.Sprintf(format, args...)))
	}
	depths := make(map[int]int)
	onStack := make(map[int]bool)
	var visit func(id, depth int) int
	visit = func(id, depth int) int {
		if depth > maxDepth {
			ban(id, "hierarchy-depth",
				"call hierarchy exceeds depth limit %d at DS %d; calls to it dropped", maxDepth, id)
			return 0
		}
		if onStack[id] {
			ban(id, "hierarchy-cycle",
				"recursive symbol definition involving DS %d; calls to it dropped", id)
			return 0
		}
		if d, ok := depths[id]; ok {
			return d
		}
		sym := syms[id]
		if sym == nil {
			// The parser's lenient pass scrubs undefined calls, but a
			// synthesised symbol table handed straight to the front end
			// can still hold them; expanding one would dereference nil.
			ban(id, "undefined-symbol", "call to undefined symbol %d dropped", id)
			return 0
		}
		onStack[id] = true
		deepest := 0
		for _, it := range sym.Items {
			if it.Kind != cif.ItemCall {
				continue
			}
			if d := visit(it.SymbolID, depth+1); d > deepest {
				deepest = d
			}
		}
		delete(onStack, id)
		depths[id] = deepest + 1
		return deepest + 1
	}
	for _, it := range items {
		if it.Kind != cif.ItemCall {
			continue
		}
		if d := visit(it.SymbolID, 1); d > maxDepth {
			ban(it.SymbolID, "hierarchy-depth",
				"call hierarchy exceeds depth limit %d at DS %d; calls to it dropped", maxDepth, it.SymbolID)
		}
	}
	if len(banned) == 0 {
		return nil
	}
	return banned
}
