package frontend

import (
	"fmt"

	"ace/internal/cif"
	"ace/internal/guard"
)

// checkHierarchy walks the call graph reachable from items and rejects
// cycles and hierarchies deeper than maxDepth, before any expansion
// work begins. The CIF parser already rejects recursive definitions,
// but both front ends also accept synthesised symbol tables (HEXT
// windows, tests, library users), and the lazy heap would loop forever
// on a self-referential symbol while the pre-flattener's arena fold
// would silently drop its contents. This mirrors the depth guard
// hext's hierarchical-wirelist parser applies in hierparse.go.
//
// Errors name the offending DS so they read like parse errors.
func checkHierarchy(items []cif.Item, syms map[int]*cif.Symbol, maxDepth int) error {
	// depths memoises the longest symbol chain starting at a symbol
	// (>= 1); onStack marks the DFS path for cycle detection.
	depths := make(map[int]int)
	onStack := make(map[int]bool)
	var visit func(id, depth int) (int, error)
	visit = func(id, depth int) (int, error) {
		if depth > maxDepth {
			return 0, &guard.LimitError{
				Stage: guard.StageFrontend, What: "call-hierarchy depth",
				Value: int64(depth), Limit: int64(maxDepth),
			}
		}
		if onStack[id] {
			return 0, fmt.Errorf("frontend: recursive symbol definition involving DS %d", id)
		}
		if d, ok := depths[id]; ok {
			return d, nil
		}
		sym := syms[id]
		if sym == nil {
			depths[id] = 1
			return 1, nil
		}
		onStack[id] = true
		deepest := 0
		for _, it := range sym.Items {
			if it.Kind != cif.ItemCall {
				continue
			}
			d, err := visit(it.SymbolID, depth+1)
			if err != nil {
				return 0, err
			}
			if d > deepest {
				deepest = d
			}
		}
		delete(onStack, id)
		depths[id] = deepest + 1
		return deepest + 1, nil
	}
	for _, it := range items {
		if it.Kind != cif.ItemCall {
			continue
		}
		d, err := visit(it.SymbolID, 1)
		if err != nil {
			return err
		}
		if d > maxDepth {
			return &guard.LimitError{
				Stage: guard.StageFrontend, What: "call-hierarchy depth",
				Value: int64(d), Limit: int64(maxDepth),
			}
		}
	}
	return nil
}
