package frontend

import (
	"errors"
	"strings"
	"testing"

	"ace/internal/cif"
	"ace/internal/geom"
	"ace/internal/guard"
	"ace/internal/tech"
)

func callItem(sym int) cif.Item {
	return cif.Item{Kind: cif.ItemCall, SymbolID: sym, Trans: geom.Identity}
}

func boxItem() cif.Item {
	return cif.Item{Kind: cif.ItemBox, Layer: tech.Metal, Box: geom.Rect{XMin: 0, YMin: 0, XMax: 100, YMax: 100}}
}

// TestCycleRejected: the CIF parser refuses recursive definitions, but
// both front ends also accept synthesised symbol tables. A cycle must
// come back as an error from both — the lazy heap would otherwise
// expand it forever and the arena fold would recurse until the stack
// ran out.
func TestCycleRejected(t *testing.T) {
	syms := map[int]*cif.Symbol{
		1: {ID: 1, Items: []cif.Item{boxItem(), callItem(2)}},
		2: {ID: 2, Items: []cif.Item{callItem(1)}},
	}
	top := []cif.Item{callItem(1)}

	if _, err := NewItems(top, syms, Options{}); err == nil || !strings.Contains(err.Error(), "recursive") {
		t.Fatalf("NewItems: got %v, want a recursive-definition error", err)
	}
	if _, err := FlattenItems(nil, top, syms, Options{}); err == nil || !strings.Contains(err.Error(), "recursive") {
		t.Fatalf("FlattenItems: got %v, want a recursive-definition error", err)
	}
}

// TestSelfCycleRejected covers the tightest loop: a symbol calling
// itself.
func TestSelfCycleRejected(t *testing.T) {
	syms := map[int]*cif.Symbol{
		1: {ID: 1, Items: []cif.Item{boxItem(), callItem(1)}},
	}
	top := []cif.Item{callItem(1)}
	if _, err := NewItems(top, syms, Options{}); err == nil || !strings.Contains(err.Error(), "DS 1") {
		t.Fatalf("got %v, want an error naming DS 1", err)
	}
}

// TestDepthLimit: a chain one level deeper than MaxDepth is rejected
// with a typed LimitError before any expansion work, while the same
// chain within the budget extracts normally.
func TestDepthLimit(t *testing.T) {
	const chain = 40
	syms := map[int]*cif.Symbol{1: {ID: 1, Items: []cif.Item{boxItem()}}}
	for i := 2; i <= chain; i++ {
		syms[i] = &cif.Symbol{ID: i, Items: []cif.Item{callItem(i - 1)}}
	}
	top := []cif.Item{callItem(chain)}

	_, err := NewItems(top, syms, Options{Limits: guard.Limits{MaxDepth: chain - 1}})
	var le *guard.LimitError
	if !errors.As(err, &le) {
		t.Fatalf("got %v (%T), want *guard.LimitError", err, err)
	}
	if le.Stage != guard.StageFrontend || le.What != "call-hierarchy depth" {
		t.Fatalf("bad attribution: %+v", le)
	}
	if _, err := FlattenItems(nil, top, syms, Options{Limits: guard.Limits{MaxDepth: chain - 1}}); !errors.As(err, &le) {
		t.Fatalf("FlattenItems: got %v, want *guard.LimitError", err)
	}

	if _, err := NewItems(top, syms, Options{Limits: guard.Limits{MaxDepth: chain}}); err != nil {
		t.Fatalf("within the budget: %v", err)
	}
	if _, err := FlattenItems(nil, top, syms, Options{Limits: guard.Limits{MaxDepth: chain}}); err != nil {
		t.Fatalf("FlattenItems within the budget: %v", err)
	}
}
