package gen

import (
	"math/rand"

	"ace/internal/cif"
	"ace/internal/geom"
	"ace/internal/tech"
)

// Workload bundles a generated design with the ground truth the tests
// and benchmark harnesses check against.
type Workload struct {
	Name        string
	File        *cif.File
	WantDevices int // exact expected device count
	WantNets    int // exact expected net count (0 = not asserted)
}

// InverterChain builds a functional chain of n inverters (stage i
// drives stage i+1) with IN, OUT, VDD and GND labels. It is the
// simulator example's workload.
func InverterChain(n int) Workload {
	if n < 1 {
		n = 1
	}
	d := NewDesign()
	cell := ChainInverterCell(d, "chainInv")
	row := d.Cell("chain")
	for i := 0; i < n; i++ {
		row.CallAt(cell, int64(i)*GateCellWidth*Lambda, 0)
	}
	d.CallTop(row, geom.Identity)
	h := GateCellHeight(1)
	d.LabelTopOn("GND", 1*Lambda, 2*Lambda, tech.Metal)
	d.LabelTopOn("VDD", 1*Lambda, (h-2)*Lambda, tech.Metal)
	d.LabelTopOn("IN", 0, 7*Lambda, tech.Poly)
	d.LabelTopOn("OUT", int64(n)*GateCellWidth*Lambda, (h-17)*Lambda, tech.Poly)
	return Workload{
		Name:        "chain",
		File:        d.File(),
		WantDevices: 2 * n,
		WantNets:    n + 3,
	}
}

// RingOscillator builds a closed loop of n chain inverters: the last
// stage's output routes back (on poly, below the GND rail) to the
// first stage's input. An odd n oscillates — the simulator must report
// X; an even n is bistable.
func RingOscillator(n int) Workload {
	if n < 2 {
		n = 2
	}
	d := NewDesign()
	cell := ChainInverterCell(d, "ringInv")
	ring := d.Cell("ring")
	for i := 0; i < n; i++ {
		ring.CallAt(cell, int64(i)*GateCellWidth*Lambda, 0)
	}
	h := GateCellHeight(1)
	right := int64(n) * GateCellWidth
	// Feedback: drop from the last output wire, run under the cells,
	// rise into the first input riser. Poly crosses the metal rails
	// and nothing else.
	ring.LBox(tech.Poly, right-2, -4, right, h-16) // drop on the right
	ring.LBox(tech.Poly, 0, -4, right, -2)         // return run
	ring.LBox(tech.Poly, 0, -4, 2, 8)              // rise into the riser
	d.CallTop(ring, geom.Identity)
	d.LabelTopOn("GND", 1*Lambda, 2*Lambda, tech.Metal)
	d.LabelTopOn("VDD", 1*Lambda, (h-2)*Lambda, tech.Metal)
	d.LabelTopOn("TAP", 0, -3*Lambda, tech.Poly)
	return Workload{
		Name:        "ring",
		File:        d.File(),
		WantDevices: 2 * n,
		WantNets:    n + 2, // VDD, GND, n stage nets (the loop closes)
	}
}

// Memory builds a rows×cols array of two-device storage cells under a
// two-level hierarchy (cell → row → array): the testram-style workload
// on which HEXT shines. Rows are separated by a 4λ gap, so each row
// keeps its own rails.
func Memory(rows, cols int) Workload {
	d := NewDesign()
	cell := GateCell(d, "ramCell", 1)
	row := d.Cell("ramRow")
	for c := 0; c < cols; c++ {
		row.CallAt(cell, int64(c)*GateCellWidth*Lambda, 0)
	}
	arr := d.Cell("ramArray")
	pitch := (GateCellHeight(1) + 4) * Lambda
	for r := 0; r < rows; r++ {
		arr.CallAt(row, 0, int64(r)*pitch)
	}
	d.CallTop(arr, geom.Identity)
	d.LabelTopOn("GND0", 1*Lambda, 2*Lambda, tech.Metal)
	d.LabelTopOn("VDD0", 1*Lambda, (GateCellHeight(1)-2)*Lambda, tech.Metal)
	return Workload{
		Name:        "memory",
		File:        d.File(),
		WantDevices: 2 * rows * cols,
		// Per row: VDD + GND + per cell one IN and one OUT net.
		WantNets: rows * (2 + 2*cols),
	}
}

// SquareArrayCell is the HEXT Table 4-1 basic cell: "a single
// transistor formed by the overlap of diffusion and polysilicon",
// drawn with a 4λ margin inside a 20λ tile so abutted tiles do not
// touch electrically.
const squareTile = 20

// SquareArray builds an n-cell square array (n must be a power of 4)
// as a complete binary tree of symbols, exactly as the HEXT analysis
// assumes: each level doubles one dimension.
func SquareArray(n int) Workload {
	if n < 1 {
		n = 1
	}
	d := NewDesign()
	cell := d.Cell("xcell")
	cell.LBox(tech.Diff, 8, 4, 10, 16)
	cell.LBox(tech.Poly, 4, 8, 16, 10)

	cur := cell
	wx, wy := int64(squareTile), int64(squareTile)
	cells := 1
	for cells < n {
		next := d.Cell("lvl" + itoa(cells*2))
		if wx <= wy {
			next.CallAt(cur, 0, 0)
			next.CallAt(cur, wx*Lambda, 0)
			wx *= 2
		} else {
			next.CallAt(cur, 0, 0)
			next.CallAt(cur, 0, wy*Lambda)
			wy *= 2
		}
		cur = next
		cells *= 2
	}
	d.CallTop(cur, geom.Identity)
	return Workload{
		Name:        "squareArray",
		File:        d.File(),
		WantDevices: cells,
		WantNets:    3 * cells, // each isolated transistor: poly + 2 diff stubs
	}
}

// Mesh builds ACE §4's worst case: n horizontal poly lines crossing n
// vertical diffusion lines — 2n boxes forming n² transistors.
func Mesh(n int) Workload {
	d := NewDesign()
	c := d.Cell("mesh")
	span := int64(4 * n)
	for i := int64(0); i < int64(n); i++ {
		c.LBox(tech.Poly, -2, 4*i, span, 4*i+2)
		c.LBox(tech.Diff, 4*i, -2, 4*i+2, span)
	}
	d.CallTop(c, geom.Identity)
	return Workload{
		Name:        "mesh",
		File:        d.File(),
		WantDevices: n * n,
		// Each diffusion column is cut into n+1 conducting segments;
		// each poly row stays one net.
		WantNets: n*(n+1) + n,
	}
}

// Replicated builds a single row of n identical gate cells whose
// inter-cell gaps all differ (4λ, 5λ, 6λ, …), so the cells stay
// electrically isolated but no two instances see the same
// surroundings. The window memo table — which keys on exact window
// frames — cannot share the margin windows between instances; the
// anchored contents still repeat, which is exactly the sharing the
// content-addressed sweep cache exists to catch. It is the reuse-sweep
// workload of the hierarchical benchmark.
func Replicated(n int) Workload {
	if n < 1 {
		n = 1
	}
	d := NewDesign()
	cell := GateCell(d, "repCell", 1)
	x := int64(0)
	for i := 0; i < n; i++ {
		d.CallTop(cell, geom.Translate(x*Lambda, 0))
		gap := int64(4 + i)
		x += GateCellWidth + gap
	}
	d.LabelTopOn("GND0", 1*Lambda, 2*Lambda, tech.Metal)
	d.LabelTopOn("VDD0", 1*Lambda, (GateCellHeight(1)-2)*Lambda, tech.Metal)
	return Workload{
		Name:        "replicated",
		File:        d.File(),
		WantDevices: 2 * n,
		// Isolated cells: VDD, GND, IN and OUT per cell.
		WantNets: 4 * n,
	}
}

// Statistical builds a flat design following the Bentley–Haken–Hon
// model used in ACE §4's expected-case analysis: n squares of edge
// ~7.6λ (rounded to 8λ) uniformly distributed over a [0.8·√n·λ]²
// region, λ-aligned, on the conducting layers. It drives the E6
// complexity-counter experiment.
func Statistical(n int, seed int64) Workload {
	rng := rand.New(rand.NewSource(seed))
	d := NewDesign()
	c := d.Cell("stat")
	side := int64(float64(n) * 0.64) // (0.8·√n)² = 0.64·n, in λ²
	// side is the area; the edge length in λ:
	edge := isqrt(side)
	if edge < 16 {
		edge = 16
	}
	layers := []tech.Layer{tech.Diff, tech.Poly, tech.Metal}
	for i := 0; i < n; i++ {
		l := layers[rng.Intn(len(layers))]
		x := int64(rng.Intn(int(edge)))
		y := int64(rng.Intn(int(edge)))
		c.LBox(l, x, y, x+8, y+8)
	}
	d.CallTop(c, geom.Identity)
	return Workload{Name: "statistical", File: d.File()}
}

func isqrt(v int64) int64 {
	if v < 0 {
		return 0
	}
	x := int64(1)
	for x*x < v {
		x++
	}
	return x
}
