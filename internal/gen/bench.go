package gen

// Shared benchmark-workload definitions. Every benchmark harness in
// the repository — the root-level `go test -bench` files, the ingest
// benchmarks in internal/cif and internal/frontend, and the
// `-bench-json` CLI harnesses — builds its chips through these helpers
// so a workload tweak changes every baseline consistently.

import "fmt"

// BenchScale shrinks the Table 5-1/5-2 chips so a full benchmark run
// stays laptop-friendly. cmd/ace -table51 runs them at full size.
const BenchScale = 0.05

// BenchChip builds the named Table 5-1 chip at BenchScale. It returns
// an error on an unknown name so library callers can surface a typo
// instead of crashing; test and benchmark code uses MustBenchChip.
func BenchChip(name string) (Workload, error) {
	c, ok := ChipByName(name)
	if !ok {
		return Workload{}, fmt.Errorf("gen: unknown benchmark chip %q", name)
	}
	return c.Build(BenchScale), nil
}

// MustBenchChip is BenchChip for tests and benchmarks, where an
// unknown name should fail loudly instead of silently measuring the
// wrong design.
func MustBenchChip(name string) Workload {
	w, err := BenchChip(name)
	if err != nil {
		panic(err)
	}
	return w
}

// BenchChips builds every Table 5-1 chip at BenchScale, in table
// order.
func BenchChips() []Workload {
	out := make([]Workload, len(Chips))
	for i, c := range Chips {
		out[i] = c.Build(BenchScale)
	}
	return out
}
