package gen

import (
	"ace/internal/tech"
)

// Lambda is the NMOS λ in centimicrons; the cell library is drawn on a
// λ grid and scaled up on emission.
const Lambda = 200

// LBox adds a box given in λ units.
func (c *Cell) LBox(layer tech.Layer, x0, y0, x1, y1 int64) *Cell {
	return c.Box(layer, x0*Lambda, y0*Lambda, x1*Lambda, y1*Lambda)
}

// LLabel adds a label given in λ units.
func (c *Cell) LLabel(name string, x, y int64) *Cell {
	return c.Label(name, x*Lambda, y*Lambda)
}

// GateCellWidth is the width of every library gate cell in λ.
const GateCellWidth = 30

// GateCellHeight returns the height in λ of a gate cell with k inputs.
func GateCellHeight(k int) int64 { return 26 + 6*int64(k) }

// GateCell builds a k-input NMOS NAND gate (k series enhancement
// pull-downs plus one depletion load with its gate tied to the output
// through a buried contact). It is the library's workhorse: a 1-input
// GateCell is an inverter.
//
// Layout (λ units): GND rail along the bottom, VDD rail along the top,
// a vertical diffusion column between them crossed by k input poly
// strips and the load gate. Extraction yields exactly k+1 devices and
// k+3 nets (VDD, GND, OUT, k inputs) for an isolated instance.
//
// Instances abutted horizontally at GateCellWidth·λ share their VDD
// and GND rails.
func GateCell(d *Design, name string, k int) *Cell {
	if k < 1 {
		k = 1
	}
	h := GateCellHeight(k)
	c := d.Cell(name)

	// Power rails, full width.
	c.LBox(tech.Metal, 0, 0, GateCellWidth, 4)   // GND
	c.LBox(tech.Metal, 0, h-4, GateCellWidth, h) // VDD

	// Diffusion column and its rail contacts. The 4λ pads give the
	// cuts their 1λ diffusion surround (Mead–Conway contact rule).
	c.LBox(tech.Diff, 12, 0, 14, h)
	c.LBox(tech.Diff, 11, 0, 15, 4)
	c.LBox(tech.Diff, 11, h-4, 15, h)
	c.LBox(tech.Cut, 12, 1, 14, 3)
	c.LBox(tech.Cut, 12, h-3, 14, h-1)

	// Pull-down input gates.
	for i := int64(0); i < int64(k); i++ {
		c.LBox(tech.Poly, 4, 6+6*i, 22, 8+6*i)
	}

	// Depletion load and implant. The load channel is 2λ wide and 8λ
	// long (4 squares) against 1-square pull-downs, satisfying the
	// Mead–Conway 4:1 inverter ratio.
	c.LBox(tech.Poly, 8, h-16, 22, h-8)
	c.LBox(tech.Implant, 10, h-17, 16, h-7)

	// Output node: a diffusion branch below the load, tied to the load
	// gate through a buried contact.
	c.LBox(tech.Diff, 14, h-20, 28, h-18)   // output branch
	c.LBox(tech.Poly, 16, h-20, 18, h-8)    // gate tie-down
	c.LBox(tech.Buried, 16, h-20, 18, h-18) // buried contact

	return c
}

// GateDevices returns the device count of a k-input GateCell.
func GateDevices(k int) int { return k + 1 }

// GateNets returns the net count of one isolated k-input GateCell:
// k inputs, VDD, GND, the output, and the k−1 intermediate nodes of
// the series pull-down chain.
func GateNets(k int) int { return 2*k + 2 }

// ChainInverterCell builds an inverter whose input enters on poly at
// the cell's left edge and whose output leaves on poly at the right
// edge, at matching heights — so a row of abutted instances forms a
// functional inverter chain (input of stage i+1 driven by stage i).
func ChainInverterCell(d *Design, name string) *Cell {
	c := GateCell(d, name, 1)
	h := GateCellHeight(1)
	// Output poly wire from the gate tie to the right edge.
	c.LBox(tech.Poly, 18, h-18, GateCellWidth, h-16)
	// Input riser from the left edge down to the input strip; it
	// reaches up to the incoming wire's height and right to x=4 where
	// it contacts the input strip.
	c.LBox(tech.Poly, 0, 6, 4, h-16)
	return c
}

// chainCellExtraNets is the net-count delta of ChainInverterCell vs a
// plain 1-input GateCell (zero: the wires join existing nets).
const chainCellExtraNets = 0
