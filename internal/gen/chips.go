package gen

import (
	"fmt"
	"math/rand"
	"sort"

	"ace/internal/cif"
	"ace/internal/geom"
	"ace/internal/tech"
)

// Datapath builds a bit-sliced datapath: one stage cell containing
// `bits` vertically stacked 2-input gates, instantiated `stages` times
// in a row — the riscb-style workload (regular in one dimension).
func Datapath(bits, stages int) Workload {
	d := NewDesign()
	slice := GateCell(d, "bitSlice", 2)
	stage := d.Cell("stage")
	pitch := (GateCellHeight(2) + 4) * Lambda
	for b := 0; b < bits; b++ {
		stage.CallAt(slice, 0, int64(b)*pitch)
	}
	row := d.Cell("datapath")
	for s := 0; s < stages; s++ {
		row.CallAt(stage, int64(s)*(GateCellWidth+4)*Lambda, 0)
	}
	d.CallTop(row, geom.Identity)
	return Workload{
		Name:        "datapath",
		File:        d.File(),
		WantDevices: 3 * bits * stages,
		// Stages are separated by a 4λ gap, so nothing is shared:
		// each gate contributes its full isolated net count.
		WantNets: bits * stages * GateNets(2),
	}
}

// Irregular builds random-logic structure: n gates with 1–3 inputs
// placed at irregular positions (no two windows alike), plus metal
// routing wires crossing the whole block. This is the schip2/psc-style
// workload on which HEXT's windowing pays little.
func Irregular(nGates int, seed int64) Workload {
	rng := rand.New(rand.NewSource(seed))
	d := NewDesign()
	cells := []*Cell{
		GateCell(d, "inv", 1),
		GateCell(d, "nand2", 2),
		GateCell(d, "nand3", 3),
	}

	colsPerRow := isqrt(int64(nGates))
	if colsPerRow < 1 {
		colsPerRow = 1
	}
	rowPitch := (GateCellHeight(3) + 8) * Lambda
	devices := 0
	nets := 0
	var x, y, maxX int64
	col := int64(0)
	for g := 0; g < nGates; g++ {
		k := 1 + rng.Intn(3)
		d.CallTop(cells[k-1], geom.Translate(x, y))
		devices += GateDevices(k)
		nets += GateNets(k)
		x += (GateCellWidth + 2 + int64(rng.Intn(8))) * Lambda
		if x > maxX {
			maxX = x
		}
		col++
		if col >= colsPerRow {
			col = 0
			x = int64(rng.Intn(6)) * Lambda
			y += rowPitch
		}
	}
	// Routing: horizontal metal wires through the gaps between rows.
	// Metal crosses poly and diffusion without connecting, so they add
	// boxes and nets but no devices.
	rows := (nGates + int(colsPerRow) - 1) / int(colsPerRow)
	wires := 0
	for r := 1; r < rows; r++ {
		wy := int64(r)*rowPitch - 6*Lambda
		for w := int64(0); w < 3; w++ {
			d.Top(cif.Item{Kind: cif.ItemBox, Layer: tech.Metal,
				Box: geom.R(0, wy+2*w*Lambda, maxX+GateCellWidth*Lambda, wy+(2*w+1)*Lambda)})
			wires++
		}
	}
	return Workload{
		Name:        "irregular",
		File:        d.File(),
		WantDevices: devices,
		WantNets:    nets + wires,
	}
}

// Chip is a named benchmark workload standing in for one of the
// paper's seven (lost) test chips, with the published device count.
type Chip struct {
	Name         string
	PaperDevices int     // device count from Table 5-1
	PaperBoxes   float64 // box count in thousands, from Table 5-1
	Mix          string  // structural character used to synthesise it
}

// Chips lists the paper's benchmark chips in Table 5-1 order.
var Chips = []Chip{
	{"cherry", 881, 7.4, "small mixed design"},
	{"dchip", 4884, 50.7, "datapath + control"},
	{"schip2", 9473, 109.0, "irregular random logic"},
	{"testram", 20480, 196.9, "regular memory array"},
	{"psc", 25521, 251.5, "irregular + arrays"},
	{"scheme81", 32031, 418.3, "processor: datapath + memory + control"},
	{"riscb", 42084, 533.0, "bit-sliced datapath"},
}

// ChipByName returns the chip record with the given name.
func ChipByName(name string) (Chip, bool) {
	for _, c := range Chips {
		if c.Name == name {
			return c, true
		}
	}
	return Chip{}, false
}

// Build synthesises the chip at the given scale (1.0 = the published
// device count; smaller scales shrink every component proportionally
// for quick benchmark runs). The returned workload's WantDevices is
// exact.
func (c Chip) Build(scale float64) Workload {
	target := int(float64(c.PaperDevices) * scale)
	if target < 8 {
		target = 8
	}
	var w Workload
	switch c.Name {
	case "testram":
		rows, cols := memoryShape(target / 2)
		w = Memory(rows, cols)
	case "schip2":
		w = Irregular(gatesForDevices(target, 3.0), 1002)
	case "psc":
		w = composite(target, 0.30, 0.15, c.Name, 1003)
	case "riscb":
		w = composite(target, 0.15, 0.70, c.Name, 1004)
	case "dchip":
		w = composite(target, 0.20, 0.50, c.Name, 1005)
	case "scheme81":
		w = composite(target, 0.35, 0.35, c.Name, 1006)
	default: // cherry and anything unknown: small mixed design
		w = composite(target, 0.25, 0.35, c.Name, 1001)
	}
	w.Name = c.Name
	return w
}

// memoryShape picks a near-square rows×cols decomposition.
func memoryShape(cells int) (rows, cols int) {
	if cells < 1 {
		cells = 1
	}
	rows = int(isqrt(int64(cells)))
	if rows < 1 {
		rows = 1
	}
	cols = (cells + rows - 1) / rows
	return rows, cols
}

// gatesForDevices converts a device budget into a gate count given the
// mean devices per gate.
func gatesForDevices(devices int, meanPerGate float64) int {
	g := int(float64(devices) / meanPerGate)
	if g < 1 {
		g = 1
	}
	return g
}

// composite builds a chip from a memory block, a datapath block and an
// irregular block stacked vertically with generous gaps, hitting the
// device target exactly with a filler row of gates.
func composite(target int, memFrac, dpFrac float64, name string, seed int64) Workload {
	d := NewDesign()
	devices := 0
	nets := 0
	var yOff int64 // in λ

	place := func(w Workload, height int64) {
		importWorkload(d, w, geom.Translate(0, yOff*Lambda))
		devices += w.WantDevices
		nets += w.WantNets
		yOff += height + 16
	}

	if memDev := int(float64(target) * memFrac); memDev >= 4 {
		rows, cols := memoryShape(memDev / 2)
		place(Memory(rows, cols), int64(rows)*(GateCellHeight(1)+4))
	}

	if dpDev := int(float64(target) * dpFrac); dpDev >= 24 {
		// Wider datapaths get more bits so the block stays roughly
		// square (the Bentley–Haken–Hon model's assumption); a single
		// 1000-stage 8-bit row would distort the scanline's active
		// list far beyond anything a real floorplan produces.
		bits := 8
		if dpDev > 2400 {
			bits = 32
		}
		stages := dpDev / (3 * bits)
		if stages < 1 {
			stages = 1
		}
		place(Datapath(bits, stages), int64(bits)*(GateCellHeight(2)+4))
	}

	// Irregular block with most of the remainder, keeping slack for
	// the exact-count filler.
	if irrDev := target - devices - 14; irrDev >= 6 {
		iw := Irregular(gatesForDevices(irrDev, 3.0), seed)
		place(iw, workloadHeight(iw))
	}

	// Filler: single gates to land exactly on the target.
	fill := d.Cell("filler_" + name)
	var fx int64
	idx := 0
	for remain := target - devices; remain > 0; remain = target - devices {
		if remain == 1 {
			// A bare poly-over-diff transistor tile.
			fill.LBox(tech.Diff, fx+8, 4, fx+10, 16)
			fill.LBox(tech.Poly, fx+4, 8, fx+16, 10)
			devices++
			nets += 3
			break
		}
		k := 1
		switch {
		case remain >= 4 && remain%3 == 1:
			k = 3
		case remain >= 3 && remain%2 == 1:
			k = 2
		}
		g := GateCell(d, fmt.Sprintf("fg_%s_%d", name, idx), k)
		idx++
		fill.Call(g, geom.Translate(fx*Lambda, 0))
		devices += GateDevices(k)
		nets += GateNets(k)
		fx += GateCellWidth + 4
	}
	d.CallTop(fill, geom.Translate(0, yOff*Lambda))

	return Workload{Name: name, File: d.File(), WantDevices: devices, WantNets: nets}
}

// importWorkload copies another design's symbols and top items into d
// under fresh ids, applying tr to the top-level items. Labels are
// dropped to avoid duplicate names across blocks.
func importWorkload(d *Design, w Workload, tr geom.Transform) {
	remap := map[int]int{}
	ids := make([]int, 0, len(w.File.Symbols))
	for id := range w.File.Symbols {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		remap[id] = d.nextID
		d.nextID++
	}
	for _, id := range ids {
		src := w.File.Symbols[id]
		dst := &cif.Symbol{ID: remap[id], Name: src.Name}
		for _, it := range src.Items {
			if it.Kind == cif.ItemCall {
				it.SymbolID = remap[it.SymbolID]
			}
			dst.Items = append(dst.Items, it)
		}
		d.file.Symbols[dst.ID] = dst
	}
	for _, it := range w.File.Top {
		switch it.Kind {
		case cif.ItemCall:
			it.SymbolID = remap[it.SymbolID]
			it.Trans = it.Trans.Then(tr)
		case cif.ItemBox:
			it.Box = tr.ApplyRect(it.Box)
		case cif.ItemLabel:
			continue
		default:
			continue // gen never places polygons or wires at top level
		}
		d.file.Top = append(d.file.Top, it)
	}
}

// workloadHeight returns the λ height of a workload's bounding box.
func workloadHeight(w Workload) int64 {
	bb, ok := cif.BBoxItems(w.File.Top, w.File.Symbols, map[int]geom.Rect{})
	if !ok {
		return 0
	}
	return (bb.YMax - bb.YMin + Lambda - 1) / Lambda
}
