// Package gen builds synthetic NMOS workloads as CIF designs: the
// paper's inverter (Figure 3-3), a small cell library, regular arrays,
// bit-sliced datapaths and irregular random logic — the raw material
// for reproducing every table in the two papers. The original
// benchmark chips (cherry … riscb) are lost; chips.go builds
// structural stand-ins with the published device counts (see DESIGN.md
// "Substitutions").
package gen

import (
	"ace/internal/cif"
	"ace/internal/geom"
	"ace/internal/tech"
)

// Design incrementally builds a cif.File.
type Design struct {
	file   *cif.File
	nextID int
}

// NewDesign returns an empty design.
func NewDesign() *Design {
	return &Design{file: &cif.File{Symbols: map[int]*cif.Symbol{}}, nextID: 1}
}

// Cell starts a new symbol definition with the given name.
func (d *Design) Cell(name string) *Cell {
	s := &cif.Symbol{ID: d.nextID, Name: name}
	d.file.Symbols[s.ID] = s
	d.nextID++
	return &Cell{sym: s}
}

// File finishes the design and returns the CIF file.
func (d *Design) File() *cif.File { return d.file }

// Top appends an item to the design's top level.
func (d *Design) Top(items ...cif.Item) {
	d.file.Top = append(d.file.Top, items...)
}

// CallTop instantiates a cell at the design's top level.
func (d *Design) CallTop(c *Cell, tr geom.Transform) {
	d.Top(cif.Item{Kind: cif.ItemCall, SymbolID: c.sym.ID, Trans: tr})
}

// LabelTop places a net-name label at the design's top level.
func (d *Design) LabelTop(name string, x, y int64) {
	d.Top(cif.Item{Kind: cif.ItemLabel, Name: name, At: geom.Pt(x, y)})
}

// LabelTopOn places a layer-qualified label at the top level.
func (d *Design) LabelTopOn(name string, x, y int64, layer tech.Layer) {
	d.Top(cif.Item{Kind: cif.ItemLabel, Name: name, At: geom.Pt(x, y),
		Layer: layer, HasLayer: true})
}

// Cell is a symbol under construction.
type Cell struct {
	sym *cif.Symbol
}

// ID returns the CIF symbol number.
func (c *Cell) ID() int { return c.sym.ID }

// Box adds a rectangle given by opposite corners.
func (c *Cell) Box(layer tech.Layer, x0, y0, x1, y1 int64) *Cell {
	c.sym.Items = append(c.sym.Items, cif.Item{
		Kind: cif.ItemBox, Layer: layer, Box: geom.R(x0, y0, x1, y1),
	})
	return c
}

// BoxCWH adds a rectangle in CIF "B length width cx cy" form, so
// geometry can be transcribed straight from the paper's figures.
func (c *Cell) BoxCWH(layer tech.Layer, length, width, cx, cy int64) *Cell {
	c.sym.Items = append(c.sym.Items, cif.Item{
		Kind: cif.ItemBox, Layer: layer,
		Box: geom.RectCWH(length, width, geom.Pt(cx, cy)),
	})
	return c
}

// Label places a net-name label inside the cell.
func (c *Cell) Label(name string, x, y int64) *Cell {
	c.sym.Items = append(c.sym.Items, cif.Item{
		Kind: cif.ItemLabel, Name: name, At: geom.Pt(x, y),
	})
	return c
}

// Call instantiates another cell inside this one.
func (c *Cell) Call(sub *Cell, tr geom.Transform) *Cell {
	c.sym.Items = append(c.sym.Items, cif.Item{
		Kind: cif.ItemCall, SymbolID: sub.sym.ID, Trans: tr,
	})
	return c
}

// CallAt is Call with a plain translation.
func (c *Cell) CallAt(sub *Cell, dx, dy int64) *Cell {
	return c.Call(sub, geom.Translate(dx, dy))
}
