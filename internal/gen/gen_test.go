package gen

import (
	"testing"

	"ace/internal/extract"
	"ace/internal/geom"
	"ace/internal/netlist"
	"ace/internal/tech"
)

func extractWL(t *testing.T, w Workload) *netlist.Netlist {
	t.Helper()
	res, err := extract.File(w.File, extract.Options{})
	if err != nil {
		t.Fatalf("%s: extract: %v", w.Name, err)
	}
	if probs := res.Netlist.Validate(); len(probs) > 0 {
		t.Fatalf("%s: invalid netlist: %v", w.Name, probs)
	}
	return res.Netlist
}

func checkCounts(t *testing.T, w Workload) *netlist.Netlist {
	t.Helper()
	nl := extractWL(t, w)
	if w.WantDevices != 0 && len(nl.Devices) != w.WantDevices {
		t.Fatalf("%s: devices %d, want %d", w.Name, len(nl.Devices), w.WantDevices)
	}
	if w.WantNets != 0 && len(nl.Nets) != w.WantNets {
		t.Fatalf("%s: nets %d, want %d", w.Name, len(nl.Nets), w.WantNets)
	}
	return nl
}

func TestGateCellCounts(t *testing.T) {
	for k := 1; k <= 3; k++ {
		d := NewDesign()
		c := GateCell(d, "g", k)
		d.CallTop(c, geom.Identity)
		nl := extractWL(t, Workload{Name: "gate", File: d.File()})
		if len(nl.Devices) != GateDevices(k) {
			t.Fatalf("k=%d: devices %d, want %d\n%s", k, len(nl.Devices), GateDevices(k), nl)
		}
		if len(nl.Nets) != GateNets(k) {
			t.Fatalf("k=%d: nets %d, want %d\n%s", k, len(nl.Nets), GateNets(k), nl)
		}
		st := nl.Stats()
		if st.Depletion != 1 || st.Enhancement != k {
			t.Fatalf("k=%d: stats %v", k, st)
		}
		// The depletion load's gate must be tied to one of its own
		// source/drain nets (the output) — the NMOS load pattern.
		for _, dev := range nl.Devices {
			if dev.Type == tech.Depletion {
				if dev.Gate != dev.Source && dev.Gate != dev.Drain {
					t.Fatalf("k=%d: load gate not tied to output\n%s", k, nl)
				}
			}
		}
	}
}

func TestGateCellSeriesChain(t *testing.T) {
	// In a 3-input gate the pull-downs are in series: enhancement
	// devices must form a path GND — n1 — n2 — OUT.
	d := NewDesign()
	c := GateCell(d, "nand3", 3)
	d.CallTop(c, geom.Identity)
	nl := extractWL(t, Workload{File: d.File()})
	degree := map[int]int{}
	for _, dev := range nl.Devices {
		if dev.Type == tech.Enhancement {
			degree[dev.Source]++
			degree[dev.Drain]++
		}
	}
	ones, twos := 0, 0
	for _, cnt := range degree {
		switch cnt {
		case 1:
			ones++
		case 2:
			twos++
		default:
			t.Fatalf("series chain broken: degree map %v\n%s", degree, nl)
		}
	}
	if ones != 2 || twos != 2 {
		t.Fatalf("series chain shape wrong: %v", degree)
	}
}

func TestInverterChainCounts(t *testing.T) {
	for _, n := range []int{1, 2, 5, 16} {
		checkCounts(t, InverterChain(n))
	}
}

func TestInverterChainConnectivity(t *testing.T) {
	w := InverterChain(3)
	nl := checkCounts(t, w)
	in, ok := nl.NetByName("IN")
	if !ok {
		t.Fatalf("IN missing\n%s", nl)
	}
	out, ok := nl.NetByName("OUT")
	if !ok {
		t.Fatalf("OUT missing\n%s", nl)
	}
	// Follow the chain: stage 1's enh gate is IN; its output feeds the
	// next gate, ending at OUT after 3 stages.
	cur := in
	for stage := 0; stage < 3; stage++ {
		next := -1
		for _, dev := range nl.Devices {
			if dev.Type == tech.Enhancement && dev.Gate == cur {
				// The pull-down's non-GND terminal is the stage output.
				for _, term := range []int{dev.Source, dev.Drain} {
					if g, okG := nl.NetByName("GND"); okG && term != g {
						next = term
					}
				}
			}
		}
		if next < 0 {
			t.Fatalf("chain broken at stage %d\n%s", stage, nl)
		}
		cur = next
	}
	if cur != out {
		t.Fatalf("chain does not end at OUT (ended at net %d)\n%s", cur, nl)
	}
}

func TestMemoryCounts(t *testing.T) {
	checkCounts(t, Memory(3, 5))
	checkCounts(t, Memory(1, 1))
}

func TestSquareArrayCounts(t *testing.T) {
	for _, n := range []int{1, 4, 16, 64} {
		w := SquareArray(n)
		if w.WantDevices != n {
			t.Fatalf("SquareArray(%d) built %d cells", n, w.WantDevices)
		}
		checkCounts(t, w)
	}
}

func TestMeshCounts(t *testing.T) {
	for _, n := range []int{2, 5} {
		checkCounts(t, Mesh(n))
	}
}

func TestDatapathCounts(t *testing.T) {
	checkCounts(t, Datapath(4, 3))
}

func TestIrregularCounts(t *testing.T) {
	checkCounts(t, Irregular(25, 7))
	// Determinism: same seed, same structure.
	a := Irregular(10, 42)
	b := Irregular(10, 42)
	if a.WantDevices != b.WantDevices || a.WantNets != b.WantNets {
		t.Fatal("Irregular not deterministic")
	}
}

func TestStatisticalBuilds(t *testing.T) {
	w := Statistical(500, 1)
	nl := extractWL(t, w)
	if len(nl.Nets) == 0 {
		t.Fatal("statistical model produced nothing")
	}
}

func TestChipsSmallScale(t *testing.T) {
	for _, c := range Chips {
		w := c.Build(0.02)
		nl := checkCounts(t, w)
		if len(nl.Devices) < 8 {
			t.Fatalf("%s: suspiciously few devices (%d)", c.Name, len(nl.Devices))
		}
	}
}

func TestChipScaleRoughlyProportional(t *testing.T) {
	c, _ := ChipByName("testram")
	small := c.Build(0.01)
	big := c.Build(0.04)
	if big.WantDevices < 3*small.WantDevices {
		t.Fatalf("scaling broken: %d vs %d", small.WantDevices, big.WantDevices)
	}
}

func TestChipByName(t *testing.T) {
	if _, ok := ChipByName("riscb"); !ok {
		t.Fatal("riscb missing")
	}
	if _, ok := ChipByName("nonesuch"); ok {
		t.Fatal("bogus chip found")
	}
}

func TestInverterCellStandalone(t *testing.T) {
	// Already covered in extract's golden test; here just confirm the
	// workload wrapper contract.
	nl := extractWL(t, Workload{Name: "inverter", File: Inverter()})
	if len(nl.Devices) != 2 || len(nl.Nets) != 4 {
		t.Fatalf("inverter %d devices %d nets", len(nl.Devices), len(nl.Nets))
	}
}
