package gen

import (
	"ace/internal/cif"
	"ace/internal/geom"
	"ace/internal/tech"
)

// InverterPitch is the horizontal pitch at which inverter instances
// abut so that their VDD, GND and input rails connect.
const InverterPitch = 4800

// InverterCell adds the paper's inverter (Figure 3-3) to the design
// and returns the cell. Every rectangle is transcribed from the net
// and channel geometry listed in the Figure 3-4 wirelist, so an
// extraction of this cell must reproduce the figure exactly:
//
//	nEnh  Length 400  Width 2800 at (-800, -400)
//	nDep  Length 1400 Width 400  at (-400, 2800)
//	nets  VDD (-2600,3800), OUT (-800,2800), INP (-800,-400),
//	      GND (-400,-800)
//
// The cell spans x ∈ [-2600, 2200], y ∈ [-3200, 3800]; metal rails for
// VDD (top), GND and the input (bottom) run the full width so abutting
// instances at InverterPitch share them.
func InverterCell(d *Design) *Cell {
	c := d.Cell("inverter")

	// Diffusion. The two enhancement-channel boxes and the depletion
	// channel box come from the wirelist's Channel clauses; the rest
	// from nets N5 (OUT), N11 (GND) and N2 (VDD).
	c.BoxCWH(tech.Diff, 400, 1200, -600, -1400)  // enh channel, vertical part
	c.BoxCWH(tech.Diff, 1600, 400, 0, -600)      // enh channel, horizontal part
	c.BoxCWH(tech.Diff, 400, 1400, -200, 2100)   // dep channel
	c.BoxCWH(tech.Diff, 400, 1600, -1000, -1200) // N5: source arm left of enh gate
	c.BoxCWH(tech.Diff, 2000, 400, -200, -200)   // N5: bar above enh gate
	c.BoxCWH(tech.Diff, 3400, 600, 500, 300)     // N5: output bar running right
	c.BoxCWH(tech.Diff, 2000, 200, -200, 700)    // N5: riser
	c.BoxCWH(tech.Diff, 400, 600, -200, 1100)    // N5: butting into the buried contact
	c.BoxCWH(tech.Diff, 1200, 1200, 200, -1400)  // N11: GND drain block
	c.BoxCWH(tech.Diff, 400, 200, -200, 2900)    // N2: VDD neck
	c.BoxCWH(tech.Diff, 800, 800, -200, 3400)    // N2: VDD contact pad

	// Poly.
	c.BoxCWH(tech.Poly, 800, 800, -600, -2800)  // N9: input contact pad
	c.BoxCWH(tech.Poly, 400, 1600, -600, -1600) // N9: vertical gate arm
	c.BoxCWH(tech.Poly, 2600, 400, 500, -600)   // N9: horizontal gate arm
	c.BoxCWH(tech.Poly, 1200, 2000, -200, 1800) // N5: depletion gate, tied to OUT

	// Metal rails, full cell width.
	c.BoxCWH(tech.Metal, 4800, 800, -200, 3400)  // VDD
	c.BoxCWH(tech.Metal, 4800, 800, -200, -1600) // GND
	c.BoxCWH(tech.Metal, 4800, 800, -200, -2800) // input

	// Contact cuts.
	c.BoxCWH(tech.Cut, 400, 400, -200, 3400)  // VDD metal ↔ diff
	c.BoxCWH(tech.Cut, 400, 400, 400, -1600)  // GND metal ↔ diff
	c.BoxCWH(tech.Cut, 400, 400, -600, -2800) // input metal ↔ poly

	// Buried contact tying the depletion gate (poly) to OUT (diff).
	c.Box(tech.Buried, -400, 800, 0, 1400)

	// Depletion implant over the load's channel.
	c.BoxCWH(tech.Implant, 800, 1800, -200, 2100)

	return c
}

// Inverter builds a standalone single-inverter chip with VDD, GND,
// INP and OUT labels, reproducing Figures 3-3/3-4 end to end.
func Inverter() *cif.File {
	d := NewDesign()
	inv := InverterCell(d)
	d.CallTop(inv, geom.Identity)
	d.LabelTopOn("VDD", -2600, 3800, tech.Metal)
	d.LabelTopOn("GND", -2600, -1600, tech.Metal)
	d.LabelTopOn("INP", -2600, -2800, tech.Metal)
	d.LabelTopOn("OUT", 2200, 300, tech.Diff)
	return d.File()
}

// FourInverters builds the HEXT paper's Figure 2-1 workload: four
// abutting inverters sharing VDD, GND and input rails, constructed as
// a two-level hierarchy (a pair cell called twice) so the hierarchical
// extractor has structure to exploit.
func FourInverters() *cif.File {
	d := NewDesign()
	inv := InverterCell(d)
	pair := d.Cell("invPair")
	pair.CallAt(inv, 0, 0)
	pair.CallAt(inv, InverterPitch, 0)
	quad := d.Cell("invQuad")
	quad.CallAt(pair, 0, 0)
	quad.CallAt(pair, 2*InverterPitch, 0)
	d.CallTop(quad, geom.Identity)
	d.LabelTopOn("VDD", -2600, 3800, tech.Metal)
	d.LabelTopOn("GND", -2600, -1600, tech.Metal)
	d.LabelTopOn("INP", -2600, -2800, tech.Metal)
	for i := int64(0); i < 4; i++ {
		d.LabelTopOn(outName(int(i)), 2200+i*InverterPitch, 300, tech.Diff)
	}
	return d.File()
}

// InverterRow builds a row of n abutting inverters (shared rails,
// common input) under a single row cell.
func InverterRow(n int) *cif.File {
	d := NewDesign()
	inv := InverterCell(d)
	row := d.Cell("invRow")
	for i := 0; i < n; i++ {
		row.CallAt(inv, int64(i)*InverterPitch, 0)
	}
	d.CallTop(row, geom.Identity)
	d.LabelTopOn("VDD", -2600, 3800, tech.Metal)
	d.LabelTopOn("GND", -2600, -1600, tech.Metal)
	d.LabelTopOn("INP", -2600, -2800, tech.Metal)
	return d.File()
}

func outName(i int) string {
	return "OUT" + itoa(i)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b [24]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}
