package gen

import (
	"ace/internal/geom"
	"ace/internal/tech"
)

// NOR-plane geometry (λ units). Columns carry inputs on vertical poly
// lines; rows carry product terms on horizontal metal lines, each with
// a depletion pull-up on the right. A programmed crosspoint plants an
// enhancement pull-down from the row's metal (via a contact) to the
// column's ground line, gated by the input poly — the classic NMOS
// PLA plane of Mead & Conway: PROD_r = NOR(inputs programmed in row r).
const (
	plaColPitch = 18 // λ between input columns
	plaRowPitch = 22 // λ between product rows
)

// NORPlane builds a rows×cols programmable NOR plane. program[r][c]
// plants a transistor at row r, column c. Labels: IN<c> on each input
// column, PROD<r> on each product line, VDD, GND.
//
// Extraction yields exactly (#programmed + rows) devices and
// (rows + cols + 2) nets.
func NORPlane(program [][]bool) Workload {
	rows := len(program)
	cols := 0
	for _, r := range program {
		if len(r) > cols {
			cols = len(r)
		}
	}
	if rows == 0 || cols == 0 {
		return Workload{Name: "norplane", File: NewDesign().File()}
	}

	d := NewDesign()
	c := d.Cell("norplane")

	colX := func(ci int) int64 { return int64(ci) * plaColPitch } // poly left edge
	rowY := func(ri int) int64 { return 4 + int64(ri)*plaRowPitch }
	top := rowY(rows-1) + 18 // plane top: above the last row's pull-up
	xR := colX(cols-1) + plaColPitch + 4

	// Input poly columns.
	for ci := 0; ci < cols; ci++ {
		c.LBox(tech.Poly, colX(ci), 0, colX(ci)+2, top)
	}
	// Ground diffusion columns (one per input column) with bottom pads
	// cut to the GND metal rail.
	for ci := 0; ci < cols; ci++ {
		g := colX(ci) + 6
		c.LBox(tech.Diff, g, -6, g+2, top)
		c.LBox(tech.Diff, g-1, -6, g+3, -2)
		c.LBox(tech.Cut, g, -5, g+2, -3)
	}
	c.LBox(tech.Metal, -8, -6, xR+13, -2) // GND rail
	// VDD rail on the right, clear of the GND rail.
	c.LBox(tech.Metal, xR+9, 2, xR+13, top)

	devices := 0
	for ri := 0; ri < rows; ri++ {
		y := rowY(ri)
		// Product metal line across the plane and into the pull-up.
		c.LBox(tech.Metal, -8, y-1, xR+4, y+3)

		// Programmed crosspoints.
		for ci := 0; ci < cols && ci < len(program[ri]); ci++ {
			if !program[ri][ci] {
				continue
			}
			x := colX(ci)
			// Contact pad from the product metal down to diffusion.
			c.LBox(tech.Diff, x-6, y-1, x-2, y+3)
			c.LBox(tech.Cut, x-5, y, x-3, y+2)
			// Diffusion stub crossing the poly column into the ground
			// column: the pull-down transistor.
			c.LBox(tech.Diff, x-2, y, x+8, y+2)
			devices++
		}

		// Pull-up at the row's right end.
		// Product-node contact pad.
		c.LBox(tech.Diff, xR-1, y-1, xR+5, y+3)
		c.LBox(tech.Cut, xR, y, xR+2, y+2)
		// Depletion channel column up to the VDD contact.
		c.LBox(tech.Diff, xR, y+3, xR+2, y+13)
		c.LBox(tech.Poly, xR-2, y+4, xR+4, y+12)
		c.LBox(tech.Implant, xR-1, y+3, xR+3, y+13)
		// Gate tie-down to the product node through a buried contact.
		c.LBox(tech.Poly, xR+3, y-1, xR+5, y+12)
		c.LBox(tech.Buried, xR+3, y-1, xR+5, y+3)
		// VDD contact pad and metal stub to the rail.
		c.LBox(tech.Diff, xR-1, y+13, xR+3, y+17)
		c.LBox(tech.Cut, xR, y+14, xR+2, y+16)
		c.LBox(tech.Metal, xR-1, y+13, xR+13, y+17)
		devices++
	}

	d.CallTop(c, geom.Identity)
	for ci := 0; ci < cols; ci++ {
		d.LabelTopOn("IN"+itoa(ci), (colX(ci)+1)*Lambda, 0, tech.Poly)
	}
	for ri := 0; ri < rows; ri++ {
		d.LabelTopOn("PROD"+itoa(ri), -3*Lambda, (rowY(ri)+1)*Lambda, tech.Metal)
	}
	d.LabelTopOn("GND", -3*Lambda, -4*Lambda, tech.Metal)
	d.LabelTopOn("VDD", (xR+10)*Lambda, 3*Lambda, tech.Metal)

	return Workload{
		Name:        "norplane",
		File:        d.File(),
		WantDevices: devices,
		WantNets:    rows + cols + 2,
	}
}
