package gen

import (
	"testing"

	"ace/internal/extract"
)

func TestNORPlaneCounts(t *testing.T) {
	program := [][]bool{
		{true, false, true},
		{false, true, false},
		{true, true, true},
	}
	w := NORPlane(program)
	res, err := extract.File(w.File, extract.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if probs := res.Netlist.Validate(); len(probs) > 0 {
		t.Fatalf("invalid: %v", probs)
	}
	// 6 programmed pull-downs + 3 pull-ups.
	if got := len(res.Netlist.Devices); got != w.WantDevices || got != 9 {
		t.Fatalf("devices %d, want %d\n%s", got, w.WantDevices, res.Netlist)
	}
	if got := len(res.Netlist.Nets); got != w.WantNets || got != 8 {
		t.Fatalf("nets %d, want %d\n%s", got, w.WantNets, res.Netlist)
	}
	st := res.Netlist.Stats()
	if st.Depletion != 3 || st.Enhancement != 6 {
		t.Fatalf("stats %v", st)
	}
	for _, nm := range []string{"IN0", "IN1", "IN2", "PROD0", "PROD1", "PROD2", "VDD", "GND"} {
		if _, ok := res.Netlist.NetByName(nm); !ok {
			t.Fatalf("net %s missing\n%s", nm, res.Netlist)
		}
	}
	if len(res.Warnings) != 0 {
		t.Fatalf("warnings: %v", res.Warnings)
	}
}

func TestNORPlaneEmptyRow(t *testing.T) {
	// A row with no programmed transistor is a bare pull-up: always 1.
	w := NORPlane([][]bool{{false, false}})
	res, err := extract.File(w.File, extract.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Netlist.Devices) != 1 {
		t.Fatalf("devices %d", len(res.Netlist.Devices))
	}
}

func TestNORPlaneDegenerate(t *testing.T) {
	w := NORPlane(nil)
	if w.WantDevices != 0 {
		t.Fatal("empty program should build nothing")
	}
}
