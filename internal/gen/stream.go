package gen

import (
	"fmt"
	"io"
)

// StreamSpec sizes a streamed benchmark chip: a grid of metal
// serpentine row cells (box-heavy, netlist-light — every row merges
// into one net) plus a thin strip of transistors so the extraction
// exercises devices too. The generator emits CIF text directly to the
// writer and never materialises the design, so multi-GB chips cost
// O(1) memory to produce.
type StreamSpec struct {
	// TargetBoxes is the flattened box count to aim for; the actual
	// count (within one row cell of the target) is reported back.
	TargetBoxes int64

	// CellBoxes is the box count of one row cell; 0 selects 128. Larger
	// cells mean fewer, longer rows.
	CellBoxes int

	// Gates is the number of transistor cells placed along the bottom
	// strip; 0 selects 64. Each contributes one device and three nets.
	Gates int

	// Flat emits every box as a top-level B command instead of symbol
	// calls: the text grows to O(TargetBoxes) but the writer still
	// streams. Use it to exercise parsers on huge flat files; the
	// hierarchical form extracts identically.
	Flat bool
}

// StreamInfo reports what StreamChip actually emitted.
type StreamInfo struct {
	Boxes     int64 // flattened box count
	Instances int64 // row-cell instances
	Gates     int   // transistor cells
	Cols      int   // instance grid columns
	Rows      int   // instance grid rows
}

// Stream geometry, in centimicrons (λ = Lambda). A row cell is
// CellBoxes metal boxes, each 4λ wide and 2λ tall, overlapping 1λ so
// the sweep merges the whole row into a single strip — the box-heavy,
// element-light shape that keeps the union-find arena tiny relative to
// the geometry, which is what lets a chip far larger than memory
// extract under a hard memory limit.
const (
	streamBoxW     = 4 * Lambda // box width
	streamBoxPitch = 3 * Lambda // horizontal step (1λ overlap)
	streamRowH     = 2 * Lambda // row cell height
	streamRowGap   = 2 * Lambda // vertical gap between rows
	streamCellGap  = 2 * Lambda // horizontal gap between row cells
	streamGateW    = 10 * Lambda
)

// StreamChip writes the chip as CIF text. The caller supplies a
// buffered writer for large outputs.
func StreamChip(w io.Writer, spec StreamSpec) (StreamInfo, error) {
	cellBoxes := spec.CellBoxes
	if cellBoxes <= 0 {
		cellBoxes = 128
	}
	gates := spec.Gates
	if gates == 0 {
		gates = 64
	}
	target := spec.TargetBoxes
	if target < 1 {
		target = 1
	}
	gateBoxes := int64(gates) * 2
	instances := (target - gateBoxes + int64(cellBoxes) - 1) / int64(cellBoxes)
	if instances < 1 {
		instances = 1
	}
	rowW := int64(cellBoxes-1)*streamBoxPitch + streamBoxW
	cellPitchX := rowW + streamCellGap
	cellPitchY := int64(streamRowH + streamRowGap)

	// Square the chip in coordinate space, not instance count: row
	// cells are much wider than tall, so the grid needs far more rows
	// than columns. A square chip gives the band partitioner (and tile
	// grid) plenty of distinct stop levels to cut at.
	cols := 1
	for int64(cols)*int64(cols)*cellPitchX < instances*cellPitchY {
		cols++
	}
	rows := int((instances + int64(cols) - 1) / int64(cols))

	info := StreamInfo{
		Boxes:     instances*int64(cellBoxes) + gateBoxes,
		Instances: instances,
		Gates:     gates,
		Cols:      cols,
		Rows:      rows,
	}

	ew := &errWriter{w: w}

	emitRowBoxes := func(dx, dy int64) {
		for i := 0; i < cellBoxes; i++ {
			x0 := dx + int64(i)*streamBoxPitch
			// B length width cx cy (center form; even extents round-trip).
			ew.printf("B %d %d %d %d;\n", streamBoxW, streamRowH,
				x0+streamBoxW/2, dy+streamRowH/2)
		}
	}
	// One enhancement transistor: a diff bar crossed by a poly gate.
	// Channel at the overlap; diff splits into source and drain nets.
	emitGateBoxes := func(dx, dy int64, layer func(string)) {
		layer("ND")
		ew.printf("B %d %d %d %d;\n", 6*Lambda, 2*Lambda, dx+3*Lambda, dy+Lambda)
		layer("NP")
		ew.printf("B %d %d %d %d;\n", 2*Lambda, 4*Lambda, dx+3*Lambda, dy+Lambda)
	}

	if spec.Flat {
		ew.printf("L NM;\n")
		var emitted int64
		for inst := int64(0); inst < instances; inst++ {
			col := int(inst % int64(cols))
			row := int(inst / int64(cols))
			emitRowBoxes(int64(col)*cellPitchX, int64(row)*cellPitchY)
			emitted += int64(cellBoxes)
			if ew.err != nil {
				return info, ew.err
			}
		}
		cur := "NM"
		layer := func(l string) {
			if l != cur {
				ew.printf("L %s;\n", l)
				cur = l
			}
		}
		for g := 0; g < gates; g++ {
			emitGateBoxes(int64(g)*streamGateW, -6*Lambda, layer)
		}
	} else {
		ew.printf("DS 1 1 1;\n9 srow;\nL NM;\n")
		emitRowBoxes(0, 0)
		ew.printf("DF;\n")
		ew.printf("DS 2 1 1;\n9 sgate;\n")
		cur := ""
		layer := func(l string) {
			if l != cur {
				ew.printf("L %s;\n", l)
				cur = l
			}
		}
		emitGateBoxes(0, -6*Lambda, layer)
		ew.printf("DF;\n")
		for inst := int64(0); inst < instances; inst++ {
			col := inst % int64(cols)
			row := inst / int64(cols)
			ew.printf("C 1 T %d %d;\n", col*cellPitchX, row*cellPitchY)
			if ew.err != nil {
				return info, ew.err
			}
		}
		for g := 0; g < gates; g++ {
			ew.printf("C 2 T %d 0;\n", int64(g)*streamGateW)
		}
	}
	// One label on the first row's first box: the label path stays live.
	ew.printf("94 row0 %d %d;\n", Lambda, Lambda)
	ew.printf("E\n")
	return info, ew.err
}

type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
