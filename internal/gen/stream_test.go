package gen

import (
	"bytes"
	"testing"

	"ace/internal/cif"
	"ace/internal/frontend"
)

func streamToFile(t *testing.T, spec StreamSpec) (*cif.File, StreamInfo) {
	t.Helper()
	var buf bytes.Buffer
	info, err := StreamChip(&buf, spec)
	if err != nil {
		t.Fatalf("StreamChip: %v", err)
	}
	f, err := cif.ParseBytes(buf.Bytes())
	if err != nil {
		t.Fatalf("parse streamed chip: %v", err)
	}
	return f, info
}

func countBoxes(t *testing.T, f *cif.File) int64 {
	t.Helper()
	s, err := frontend.New(f, frontend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var n int64
	for {
		if _, ok := s.Next(); !ok {
			break
		}
		n++
	}
	return n
}

func TestStreamChipBoxCount(t *testing.T) {
	for _, target := range []int64{1, 500, 5000, 20000} {
		f, info := streamToFile(t, StreamSpec{TargetBoxes: target, CellBoxes: 32, Gates: 8})
		got := countBoxes(t, f)
		if got != info.Boxes {
			t.Fatalf("target %d: flattened %d boxes, info says %d", target, got, info.Boxes)
		}
		if target > 100 {
			if got < target || got > target+32+16 {
				t.Fatalf("target %d: emitted %d boxes, outside [target, target+cell]", target, got)
			}
		}
	}
}

func TestStreamChipFlatMatchesHierarchical(t *testing.T) {
	spec := StreamSpec{TargetBoxes: 3000, CellBoxes: 32, Gates: 8}
	hier, hInfo := streamToFile(t, spec)
	spec.Flat = true
	flat, fInfo := streamToFile(t, spec)
	if hInfo != fInfo {
		t.Fatalf("info differs: hier %+v flat %+v", hInfo, fInfo)
	}
	hs, err := frontend.New(hier, frontend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := frontend.New(flat, frontend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	hb := hs.Drain()
	fb := fs.Drain()
	if len(hb) != len(fb) {
		t.Fatalf("hier %d boxes, flat %d", len(hb), len(fb))
	}
}
