package geom

import (
	"cmp"
	"slices"
)

// Canonicalize converts an arbitrary set of (possibly overlapping)
// rectangles into the canonical maximal-horizontal-strip form of their
// union: the result contains disjoint rectangles, each as wide as the
// union permits, with vertically adjacent rectangles of identical x
// extent merged. Two rectangle sets cover the same region if and only
// if their canonical forms are equal, which makes this the basis for
// geometry comparison throughout the extractor.
func Canonicalize(rects []Rect) []Rect {
	var sc BoxScratch
	return canonicalizeInto(&sc, rects)
}

// canonicalizeInto is Canonicalize drawing every buffer from sc; the
// result aliases sc.done and is valid until the scratch's next use.
func canonicalizeInto(sc *BoxScratch, rects []Rect) []Rect {
	in := sc.in[:0]
	for _, r := range rects {
		if !r.Empty() {
			in = append(in, r)
		}
	}
	sc.in = in
	if len(in) == 0 {
		return nil
	}

	// Collect the y coordinates where the union's cross-section can
	// change, then sweep band by band.
	ys := sc.ys[:0]
	for _, r := range in {
		ys = append(ys, r.YMin, r.YMax)
	}
	slices.Sort(ys)
	ys = dedup64(ys)
	sc.ys = ys

	slices.SortFunc(in, func(a, b Rect) int { return cmp.Compare(a.YMin, b.YMin) })

	open, stillBuf := sc.open[:0], sc.still[:0] // double-buffered across bands
	done := sc.done[:0]

	// Per-band scratch, reused across the sweep: Manhattanize calls this
	// once per polygon with one band per grid line, so per-band
	// allocations here multiply into the front end's hottest site.
	active := sc.active[:0]
	ivals := sc.ivals
	used := sc.used
	next := 0
	for bi := 0; bi+1 < len(ys); bi++ {
		y0, y1 := ys[bi], ys[bi+1]
		for next < len(in) && in[next].YMin <= y0 {
			active = append(active, in[next])
			next++
		}
		// Drop rects that ended at or before this band.
		w := active[:0]
		for _, r := range active {
			if r.YMax > y0 {
				w = append(w, r)
			}
		}
		active = w

		ivals = appendBandIntervals(ivals[:0], active)

		// Merge with open strips from the previous band.
		still := stillBuf[:0]
		used = used[:0]
		for range ivals {
			used = append(used, false)
		}
		for _, s := range open {
			matched := false
			if s.y1 == y0 {
				for i, iv := range ivals {
					if !used[i] && iv[0] == s.x0 && iv[1] == s.x1 {
						still = append(still, canonStrip{s.x0, s.x1, s.y0, y1})
						used[i] = true
						matched = true
						break
					}
				}
			}
			if !matched {
				done = append(done, Rect{s.x0, s.y0, s.x1, s.y1})
			}
		}
		for i, iv := range ivals {
			if !used[i] {
				still = append(still, canonStrip{iv[0], iv[1], y0, y1})
			}
		}
		open, stillBuf = still, open
	}
	for _, s := range open {
		done = append(done, Rect{s.x0, s.y0, s.x1, s.y1})
	}

	slices.SortFunc(done, func(a, b Rect) int {
		if a.YMin != b.YMin {
			return cmp.Compare(a.YMin, b.YMin)
		}
		return cmp.Compare(a.XMin, b.XMin)
	})
	sc.active, sc.ivals, sc.used = active, ivals, used
	sc.open, sc.still, sc.done = open, stillBuf, done
	return done
}

// appendBandIntervals appends the merged x intervals covered by the
// given rectangles (all assumed to span the current band) onto dst,
// which must be an empty — possibly pre-allocated — scratch slice, and
// returns the merged prefix.
func appendBandIntervals(dst [][2]int64, active []Rect) [][2]int64 {
	if len(active) == 0 {
		return dst
	}
	for _, r := range active {
		dst = append(dst, [2]int64{r.XMin, r.XMax})
	}
	slices.SortFunc(dst, func(a, b [2]int64) int { return cmp.Compare(a[0], b[0]) })
	out := dst[:1]
	for _, iv := range dst[1:] {
		last := &out[len(out)-1]
		if iv[0] <= last[1] {
			if iv[1] > last[1] {
				last[1] = iv[1]
			}
		} else {
			out = append(out, iv)
		}
	}
	return out
}

// UnionArea returns the total area covered by the union of the given
// rectangles.
func UnionArea(rects []Rect) int64 {
	var a int64
	for _, r := range Canonicalize(rects) {
		a += r.Area()
	}
	return a
}

// BBoxOf returns the bounding box of a set of rectangles.
func BBoxOf(rects []Rect) Rect {
	if len(rects) == 0 {
		return Rect{}
	}
	bb := rects[0]
	for _, r := range rects[1:] {
		bb = bb.Union(r)
	}
	return bb
}

// SameRegion reports whether two rectangle sets cover exactly the same
// area.
func SameRegion(a, b []Rect) bool {
	ca, cb := Canonicalize(a), Canonicalize(b)
	if len(ca) != len(cb) {
		return false
	}
	for i := range ca {
		if ca[i] != cb[i] {
			return false
		}
	}
	return true
}

func dedup64(s []int64) []int64 {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}
