package geom

import "sort"

// Canonicalize converts an arbitrary set of (possibly overlapping)
// rectangles into the canonical maximal-horizontal-strip form of their
// union: the result contains disjoint rectangles, each as wide as the
// union permits, with vertically adjacent rectangles of identical x
// extent merged. Two rectangle sets cover the same region if and only
// if their canonical forms are equal, which makes this the basis for
// geometry comparison throughout the extractor.
func Canonicalize(rects []Rect) []Rect {
	in := make([]Rect, 0, len(rects))
	for _, r := range rects {
		if !r.Empty() {
			in = append(in, r)
		}
	}
	if len(in) == 0 {
		return nil
	}

	// Collect the y coordinates where the union's cross-section can
	// change, then sweep band by band.
	ys := make([]int64, 0, 2*len(in))
	for _, r := range in {
		ys = append(ys, r.YMin, r.YMax)
	}
	sort.Slice(ys, func(i, j int) bool { return ys[i] < ys[j] })
	ys = dedup64(ys)

	sort.Slice(in, func(i, j int) bool { return in[i].YMin < in[j].YMin })

	type strip struct {
		x0, x1 int64
		y0, y1 int64
	}
	var open []strip // strips still extendable downward... (we sweep upward)
	var done []Rect

	active := make([]Rect, 0, 16)
	next := 0
	for bi := 0; bi+1 < len(ys); bi++ {
		y0, y1 := ys[bi], ys[bi+1]
		for next < len(in) && in[next].YMin <= y0 {
			active = append(active, in[next])
			next++
		}
		// Drop rects that ended at or before this band.
		w := active[:0]
		for _, r := range active {
			if r.YMax > y0 {
				w = append(w, r)
			}
		}
		active = w

		ivals := bandIntervals(active)

		// Merge with open strips from the previous band.
		var still []strip
		used := make([]bool, len(ivals))
		for _, s := range open {
			matched := false
			if s.y1 == y0 {
				for i, iv := range ivals {
					if !used[i] && iv[0] == s.x0 && iv[1] == s.x1 {
						still = append(still, strip{s.x0, s.x1, s.y0, y1})
						used[i] = true
						matched = true
						break
					}
				}
			}
			if !matched {
				done = append(done, Rect{s.x0, s.y0, s.x1, s.y1})
			}
		}
		for i, iv := range ivals {
			if !used[i] {
				still = append(still, strip{iv[0], iv[1], y0, y1})
			}
		}
		open = still
	}
	for _, s := range open {
		done = append(done, Rect{s.x0, s.y0, s.x1, s.y1})
	}

	sort.Slice(done, func(i, j int) bool {
		if done[i].YMin != done[j].YMin {
			return done[i].YMin < done[j].YMin
		}
		return done[i].XMin < done[j].XMin
	})
	return done
}

// bandIntervals returns the merged x intervals covered by the given
// rectangles (all assumed to span the current band).
func bandIntervals(active []Rect) [][2]int64 {
	if len(active) == 0 {
		return nil
	}
	xs := make([][2]int64, len(active))
	for i, r := range active {
		xs[i] = [2]int64{r.XMin, r.XMax}
	}
	sort.Slice(xs, func(i, j int) bool { return xs[i][0] < xs[j][0] })
	out := xs[:1]
	for _, iv := range xs[1:] {
		last := &out[len(out)-1]
		if iv[0] <= last[1] {
			if iv[1] > last[1] {
				last[1] = iv[1]
			}
		} else {
			out = append(out, iv)
		}
	}
	return out
}

// UnionArea returns the total area covered by the union of the given
// rectangles.
func UnionArea(rects []Rect) int64 {
	var a int64
	for _, r := range Canonicalize(rects) {
		a += r.Area()
	}
	return a
}

// BBoxOf returns the bounding box of a set of rectangles.
func BBoxOf(rects []Rect) Rect {
	if len(rects) == 0 {
		return Rect{}
	}
	bb := rects[0]
	for _, r := range rects[1:] {
		bb = bb.Union(r)
	}
	return bb
}

// SameRegion reports whether two rectangle sets cover exactly the same
// area.
func SameRegion(a, b []Rect) bool {
	ca, cb := Canonicalize(a), Canonicalize(b)
	if len(ca) != len(cb) {
		return false
	}
	for i := range ca {
		if ca[i] != cb[i] {
			return false
		}
	}
	return true
}

func dedup64(s []int64) []int64 {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}
