package geom

import (
	"errors"
	"fmt"
	"math"
)

// ErrOverflow reports int64 coordinate arithmetic that would wrap.
// Absurd DS scales and translations must surface it as a parse error,
// never as silently wrapped coordinates.
var ErrOverflow = errors.New("geom: coordinate overflow")

// AddOK returns a+b and whether the sum fits in int64.
func AddOK(a, b int64) (int64, bool) {
	s := a + b
	// Overflow iff the operands share a sign the sum does not.
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		return s, false
	}
	return s, true
}

// MulOK returns a*b and whether the product fits in int64.
func MulOK(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	p := a * b
	if p/b != a {
		return p, false
	}
	if a == -1 && b == math.MinInt64 || b == -1 && a == math.MinInt64 {
		return p, false
	}
	return p, true
}

// ThenChecked is Then with overflow detection: it returns an error
// wrapping ErrOverflow when composing the translations would wrap,
// instead of producing a transform that silently folds coordinates.
// The linear parts of CIF transforms are orthogonal (entries in
// {-1, 0, 1}), so only the translation terms can overflow, but every
// term is checked for robustness against synthesised transforms.
func (t Transform) ThenChecked(u Transform) (Transform, error) {
	mulAdd := func(a, x, b, y, c int64) (int64, bool) {
		p1, ok1 := MulOK(a, x)
		p2, ok2 := MulOK(b, y)
		s, ok3 := AddOK(p1, p2)
		if !(ok1 && ok2 && ok3) {
			return 0, false
		}
		s, ok4 := AddOK(s, c)
		return s, ok4
	}
	var r Transform
	var ok [6]bool
	r.A, ok[0] = mulAdd(u.A, t.A, u.B, t.D, 0)
	r.B, ok[1] = mulAdd(u.A, t.B, u.B, t.E, 0)
	r.C, ok[2] = mulAdd(u.A, t.C, u.B, t.F, u.C)
	r.D, ok[3] = mulAdd(u.D, t.A, u.E, t.D, 0)
	r.E, ok[4] = mulAdd(u.D, t.B, u.E, t.E, 0)
	r.F, ok[5] = mulAdd(u.D, t.C, u.E, t.F, u.F)
	for _, o := range ok {
		if !o {
			return r, fmt.Errorf("composing %v with %v: %w", t, u, ErrOverflow)
		}
	}
	return r, nil
}
