// Package geom provides the integer geometry kernel used by every part
// of the extractor: points, rectangles, CIF transformations, polygons,
// wires, and the manhattanisation pass that approximates arbitrary
// geometry with axis-aligned boxes.
//
// All coordinates are integers in CIF centimicrons (1/100 µm). The
// technology's λ (lambda) is also expressed in centimicrons; the
// default Mead–Conway NMOS λ is 200 (2 µm).
package geom

import "fmt"

// Point is an integer coordinate pair in centimicrons.
type Point struct {
	X, Y int64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y int64) Point { return Point{x, y} }

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p minus q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

func (p Point) String() string { return fmt.Sprintf("(%d,%d)", p.X, p.Y) }

// Rect is an axis-aligned rectangle. The invariant XMin <= XMax and
// YMin <= YMax holds for every Rect produced by this package;
// degenerate (zero width or height) rectangles are permitted and
// represent edges or points.
type Rect struct {
	XMin, YMin, XMax, YMax int64
}

// R builds a Rect from two corner coordinates in any order.
func R(x0, y0, x1, y1 int64) Rect {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	return Rect{x0, y0, x1, y1}
}

// RectCWH builds a Rect from a CIF box description: length (x extent),
// width (y extent) and centre point, matching "B length width cx cy".
func RectCWH(length, width int64, center Point) Rect {
	return Rect{
		XMin: center.X - length/2,
		YMin: center.Y - width/2,
		XMax: center.X + (length - length/2),
		YMax: center.Y + (width - width/2),
	}
}

// W returns the rectangle's x extent.
func (r Rect) W() int64 { return r.XMax - r.XMin }

// H returns the rectangle's y extent.
func (r Rect) H() int64 { return r.YMax - r.YMin }

// Area returns the rectangle's area.
func (r Rect) Area() int64 { return r.W() * r.H() }

// Center returns the rectangle's centre, rounded toward -infinity.
func (r Rect) Center() Point { return Point{(r.XMin + r.XMax) / 2, (r.YMin + r.YMax) / 2} }

// Empty reports whether the rectangle has zero area.
func (r Rect) Empty() bool { return r.XMin >= r.XMax || r.YMin >= r.YMax }

// Contains reports whether p lies inside or on the boundary of r.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.XMin && p.X <= r.XMax && p.Y >= r.YMin && p.Y <= r.YMax
}

// ContainsRect reports whether s lies entirely within r.
func (r Rect) ContainsRect(s Rect) bool {
	return s.XMin >= r.XMin && s.XMax <= r.XMax && s.YMin >= r.YMin && s.YMax <= r.YMax
}

// Overlaps reports whether r and s share interior area.
func (r Rect) Overlaps(s Rect) bool {
	return r.XMin < s.XMax && s.XMin < r.XMax && r.YMin < s.YMax && s.YMin < r.YMax
}

// Touches reports whether r and s overlap or abut (share at least an
// edge segment or a corner point).
func (r Rect) Touches(s Rect) bool {
	return r.XMin <= s.XMax && s.XMin <= r.XMax && r.YMin <= s.YMax && s.YMin <= r.YMax
}

// Intersect returns the overlap of r and s. The result is degenerate
// or inverted when the rectangles do not overlap; callers should test
// Empty.
func (r Rect) Intersect(s Rect) Rect {
	return Rect{
		XMin: max64(r.XMin, s.XMin),
		YMin: max64(r.YMin, s.YMin),
		XMax: min64(r.XMax, s.XMax),
		YMax: min64(r.YMax, s.YMax),
	}
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() && r == (Rect{}) {
		return s
	}
	if s.Empty() && s == (Rect{}) {
		return r
	}
	return Rect{
		XMin: min64(r.XMin, s.XMin),
		YMin: min64(r.YMin, s.YMin),
		XMax: max64(r.XMax, s.XMax),
		YMax: max64(r.YMax, s.YMax),
	}
}

// Translate returns r shifted by d.
func (r Rect) Translate(d Point) Rect {
	return Rect{r.XMin + d.X, r.YMin + d.Y, r.XMax + d.X, r.YMax + d.Y}
}

func (r Rect) String() string {
	return fmt.Sprintf("[%d,%d %d,%d]", r.XMin, r.YMin, r.XMax, r.YMax)
}

// Corners returns the rectangle's four corners counter-clockwise
// starting at (XMin, YMin).
func (r Rect) Corners() [4]Point {
	return [4]Point{
		{r.XMin, r.YMin},
		{r.XMax, r.YMin},
		{r.XMax, r.YMax},
		{r.XMin, r.YMax},
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
