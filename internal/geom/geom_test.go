package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRNormalizes(t *testing.T) {
	r := R(10, 20, -5, 3)
	want := Rect{-5, 3, 10, 20}
	if r != want {
		t.Fatalf("R(10,20,-5,3) = %v, want %v", r, want)
	}
}

func TestRectCWH(t *testing.T) {
	// CIF "B L400 W1200 C-600 -1400" from the paper's inverter.
	r := RectCWH(400, 1200, Pt(-600, -1400))
	want := Rect{-800, -2000, -400, -800}
	if r != want {
		t.Fatalf("RectCWH = %v, want %v", r, want)
	}
	// Odd sizes must still produce the exact extents.
	r = RectCWH(5, 3, Pt(0, 0))
	if r.W() != 5 || r.H() != 3 {
		t.Fatalf("odd RectCWH extents = %dx%d, want 5x3", r.W(), r.H())
	}
}

func TestOverlapsAndTouches(t *testing.T) {
	a := R(0, 0, 10, 10)
	cases := []struct {
		b                 Rect
		overlaps, touches bool
	}{
		{R(5, 5, 15, 15), true, true},
		{R(10, 0, 20, 10), false, true},  // share an edge
		{R(10, 10, 20, 20), false, true}, // share a corner
		{R(11, 0, 20, 10), false, false}, // disjoint
		{R(2, 2, 8, 8), true, true},      // contained
		{R(0, -5, 10, 0), false, true},   // abut below
		{R(-10, -10, 0, 0), false, true}, // corner at origin
		{R(-10, -10, -1, -1), false, false},
	}
	for _, c := range cases {
		if got := a.Overlaps(c.b); got != c.overlaps {
			t.Errorf("%v.Overlaps(%v) = %v, want %v", a, c.b, got, c.overlaps)
		}
		if got := a.Touches(c.b); got != c.touches {
			t.Errorf("%v.Touches(%v) = %v, want %v", a, c.b, got, c.touches)
		}
	}
}

func TestIntersect(t *testing.T) {
	a := R(0, 0, 10, 10)
	b := R(5, 5, 20, 20)
	got := a.Intersect(b)
	if got != R(5, 5, 10, 10) {
		t.Fatalf("Intersect = %v", got)
	}
	c := R(11, 11, 20, 20)
	if !a.Intersect(c).Empty() {
		t.Fatalf("disjoint Intersect not empty: %v", a.Intersect(c))
	}
}

func TestOverlapsCommutes(t *testing.T) {
	f := func(x0, y0, x1, y1, x2, y2, x3, y3 int16) bool {
		a := R(int64(x0), int64(y0), int64(x1), int64(y1))
		b := R(int64(x2), int64(y2), int64(x3), int64(y3))
		return a.Overlaps(b) == b.Overlaps(a) && a.Touches(b) == b.Touches(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntersectConsistentWithOverlaps(t *testing.T) {
	f := func(x0, y0, x1, y1, x2, y2, x3, y3 int16) bool {
		a := R(int64(x0), int64(y0), int64(x1), int64(y1))
		b := R(int64(x2), int64(y2), int64(x3), int64(y3))
		i := a.Intersect(b)
		inBoth := i.XMin < i.XMax && i.YMin < i.YMax
		return inBoth == a.Overlaps(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTransformBasics(t *testing.T) {
	p := Pt(3, 4)
	if got := Translate(10, -2).Apply(p); got != Pt(13, 2) {
		t.Errorf("translate: %v", got)
	}
	if got := MirrorX().Apply(p); got != Pt(-3, 4) {
		t.Errorf("mirror x: %v", got)
	}
	if got := MirrorY().Apply(p); got != Pt(3, -4) {
		t.Errorf("mirror y: %v", got)
	}
	r90, err := Rotate(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := r90.Apply(p); got != Pt(-4, 3) {
		t.Errorf("rot90: %v", got)
	}
	r180, _ := Rotate(-1, 0)
	if got := r180.Apply(p); got != Pt(-3, -4) {
		t.Errorf("rot180: %v", got)
	}
	r270, _ := Rotate(0, -1)
	if got := r270.Apply(p); got != Pt(4, -3) {
		t.Errorf("rot270: %v", got)
	}
	if _, err := Rotate(1, 1); err == nil {
		t.Error("Rotate(1,1) should fail")
	}
}

func TestTransformCompose(t *testing.T) {
	// CIF semantics: listed transforms apply in order. Mirror in x,
	// then translate: p -> (-x + 10, y + 5).
	tr := MirrorX().Then(Translate(10, 5))
	if got := tr.Apply(Pt(3, 4)); got != Pt(7, 9) {
		t.Fatalf("compose: %v", got)
	}
	// Associativity of Then on random orthogonal transforms.
	all := orthogonals()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		a := randXform(rng, all)
		b := randXform(rng, all)
		c := randXform(rng, all)
		if a.Then(b).Then(c) != a.Then(b.Then(c)) {
			t.Fatalf("Then not associative for %v %v %v", a, b, c)
		}
		p := Pt(int64(rng.Intn(2000)-1000), int64(rng.Intn(2000)-1000))
		if b.Apply(a.Apply(p)) != a.Then(b).Apply(p) {
			t.Fatalf("Then inconsistent with Apply for %v %v", a, b)
		}
	}
}

func orthogonals() []Transform {
	r0 := Identity
	r90, _ := Rotate(0, 1)
	r180, _ := Rotate(-1, 0)
	r270, _ := Rotate(0, -1)
	base := []Transform{r0, r90, r180, r270}
	out := base
	for _, b := range base {
		out = append(out, MirrorX().Then(b))
	}
	return out
}

func randXform(rng *rand.Rand, all []Transform) Transform {
	t := all[rng.Intn(len(all))]
	return t.Then(Translate(int64(rng.Intn(200)-100), int64(rng.Intn(200)-100)))
}

func TestApplyRectPreservesArea(t *testing.T) {
	all := orthogonals()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		r := R(int64(rng.Intn(100)), int64(rng.Intn(100)),
			int64(rng.Intn(100)), int64(rng.Intn(100)))
		tr := randXform(rng, all)
		got := tr.ApplyRect(r)
		if got.Area() != r.Area() {
			t.Fatalf("area changed: %v -> %v under %v", r, got, tr)
		}
		if got.XMin > got.XMax || got.YMin > got.YMax {
			t.Fatalf("unnormalised rect %v", got)
		}
	}
}

func TestApproxRotation(t *testing.T) {
	cases := []struct {
		a, b    int64
		want    Point // image of (1, 0) scaled test point (10, 0)
		snapped bool
	}{
		{1, 0, Pt(10, 0), false},
		{0, 1, Pt(0, 10), false},
		{-5, 0, Pt(-10, 0), false},
		{0, -7, Pt(0, -10), false},
		{3, 1, Pt(10, 0), true}, // snaps to +x
		{1, 3, Pt(0, 10), true}, // snaps to +y
		{-3, -1, Pt(-10, 0), true},
		{0, 0, Pt(10, 0), false}, // zero vector = identity
	}
	for _, c := range cases {
		tr, snapped := ApproxRotation(c.a, c.b)
		if got := tr.Apply(Pt(10, 0)); got != c.want || snapped != c.snapped {
			t.Errorf("ApproxRotation(%d,%d): image %v snapped=%v, want %v %v",
				c.a, c.b, got, snapped, c.want, c.snapped)
		}
	}
}

func TestPolygonIsRect(t *testing.T) {
	sq := Polygon{Pt(0, 0), Pt(10, 0), Pt(10, 10), Pt(0, 10)}
	if r, ok := sq.IsRect(); !ok || r != R(0, 0, 10, 10) {
		t.Fatalf("square IsRect = %v, %v", r, ok)
	}
	tri := Polygon{Pt(0, 0), Pt(10, 0), Pt(5, 10)}
	if _, ok := tri.IsRect(); ok {
		t.Fatal("triangle claimed to be a rect")
	}
	// Clockwise winding must also be recognised.
	cw := Polygon{Pt(0, 10), Pt(10, 10), Pt(10, 0), Pt(0, 0)}
	if _, ok := cw.IsRect(); !ok {
		t.Fatal("clockwise square not recognised")
	}
}

func TestPolygonArea2(t *testing.T) {
	sq := Polygon{Pt(0, 0), Pt(10, 0), Pt(10, 10), Pt(0, 10)}
	if sq.Area2() != 200 {
		t.Fatalf("square Area2 = %d", sq.Area2())
	}
	tri := Polygon{Pt(0, 0), Pt(10, 0), Pt(0, 10)}
	if tri.Area2() != 100 {
		t.Fatalf("triangle Area2 = %d", tri.Area2())
	}
}

func TestManhattanizeRectExact(t *testing.T) {
	sq := Polygon{Pt(0, 0), Pt(40, 0), Pt(40, 20), Pt(0, 20)}
	boxes := sq.Manhattanize(10)
	if len(boxes) != 1 || boxes[0] != R(0, 0, 40, 20) {
		t.Fatalf("rect polygon boxes = %v", boxes)
	}
}

func TestManhattanizeTriangleAreaClose(t *testing.T) {
	tri := Polygon{Pt(0, 0), Pt(100, 0), Pt(0, 100)}
	boxes := tri.Manhattanize(10)
	area := UnionArea(boxes)
	want := tri.Area2() / 2
	diff := area - want
	if diff < 0 {
		diff = -diff
	}
	// Staircase at grid 10 over a 100x100 triangle should stay within
	// one grid-row of area per band: 10 bands * 10*10/2 ≈ 500.
	if diff > 600 {
		t.Fatalf("triangle area %d vs true %d (diff %d)", area, want, diff)
	}
	// All boxes must lie on the grid.
	for _, b := range boxes {
		if b.XMin%10 != 0 || b.XMax%10 != 0 || b.YMin%10 != 0 || b.YMax%10 != 0 {
			t.Fatalf("box off grid: %v", b)
		}
	}
}

func TestManhattanizeLShape(t *testing.T) {
	// Rectilinear polygons should manhattanise exactly regardless of grid.
	l := Polygon{Pt(0, 0), Pt(30, 0), Pt(30, 10), Pt(10, 10), Pt(10, 30), Pt(0, 30)}
	boxes := l.Manhattanize(10)
	if got, want := UnionArea(boxes), int64(500); got != want {
		t.Fatalf("L-shape area = %d, want %d (boxes %v)", got, want, boxes)
	}
}

func TestCanonicalizeMergesAndDedups(t *testing.T) {
	in := []Rect{R(0, 0, 10, 10), R(0, 10, 10, 20), R(0, 0, 10, 20), R(5, 5, 6, 6)}
	out := Canonicalize(in)
	if len(out) != 1 || out[0] != R(0, 0, 10, 20) {
		t.Fatalf("Canonicalize = %v", out)
	}
}

func TestCanonicalizeDisjointStaysDisjoint(t *testing.T) {
	in := []Rect{R(0, 0, 10, 10), R(20, 0, 30, 10)}
	out := Canonicalize(in)
	if len(out) != 2 {
		t.Fatalf("Canonicalize = %v", out)
	}
}

func TestCanonicalizeIdempotentAndAreaPreserving(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(12)
		in := make([]Rect, n)
		for i := range in {
			x := int64(rng.Intn(40))
			y := int64(rng.Intn(40))
			in[i] = R(x, y, x+int64(1+rng.Intn(20)), y+int64(1+rng.Intn(20)))
		}
		c1 := Canonicalize(in)
		c2 := Canonicalize(c1)
		if !SameRegion(c1, c2) || len(c1) != len(c2) {
			t.Fatalf("not idempotent: %v vs %v", c1, c2)
		}
		// Disjointness of output.
		for i := range c1 {
			for j := i + 1; j < len(c1); j++ {
				if c1[i].Overlaps(c1[j]) {
					t.Fatalf("canonical rects overlap: %v %v", c1[i], c1[j])
				}
			}
		}
		// Area by inclusion sampling: every input point covered iff
		// covered by output.
		for k := 0; k < 50; k++ {
			p := Pt(int64(rng.Intn(70)), int64(rng.Intn(70)))
			inIn := coveredStrict(in, p)
			inOut := coveredStrict(c1, p)
			if inIn != inOut {
				t.Fatalf("coverage mismatch at %v: in=%v out=%v", p, inIn, inOut)
			}
		}
	}
}

func coveredStrict(rs []Rect, p Point) bool {
	for _, r := range rs {
		if p.X >= r.XMin && p.X < r.XMax && p.Y >= r.YMin && p.Y < r.YMax {
			return true
		}
	}
	return false
}

func TestWireBoxesStraight(t *testing.T) {
	w := Wire{Width: 4, Path: []Point{Pt(0, 0), Pt(20, 0)}}
	boxes := w.Boxes(1)
	if len(boxes) != 1 || boxes[0] != R(-2, -2, 22, 2) {
		t.Fatalf("horizontal wire boxes = %v", boxes)
	}
	w = Wire{Width: 4, Path: []Point{Pt(0, 0), Pt(0, 30)}}
	boxes = w.Boxes(1)
	if len(boxes) != 1 || boxes[0] != R(-2, -2, 2, 32) {
		t.Fatalf("vertical wire boxes = %v", boxes)
	}
}

func TestWireBoxesBend(t *testing.T) {
	w := Wire{Width: 4, Path: []Point{Pt(0, 0), Pt(20, 0), Pt(20, 20)}}
	boxes := w.Boxes(1)
	area := UnionArea(boxes)
	// Two arms of 4x22 and 4x22 overlapping in a 4x4 joint.
	want := int64(24*4 + 22*4 - 4*4 - 2*4) // exact: horiz (-2..22)x(-2..2), vert (18..22)x(-2..32)
	_ = want
	if area == 0 {
		t.Fatal("bend wire produced no area")
	}
	// The two arms must be connected: canonical form of a connected
	// region has every box touching at least one other (when >1 box).
	if len(boxes) > 1 {
		for i, b := range boxes {
			touches := false
			for j, c := range boxes {
				if i != j && b.Touches(c) {
					touches = true
					break
				}
			}
			if !touches {
				t.Fatalf("disconnected wire box %v in %v", b, boxes)
			}
		}
	}
}

func TestWireDiagonal(t *testing.T) {
	w := Wire{Width: 8, Path: []Point{Pt(0, 0), Pt(40, 40)}}
	boxes := w.Boxes(4)
	if len(boxes) == 0 {
		t.Fatal("diagonal wire produced no boxes")
	}
	// End caps must be present so the wire connects to abutting geometry.
	bb := BBoxOf(boxes)
	if !bb.Contains(Pt(0, 0)) || !bb.Contains(Pt(40, 40)) {
		t.Fatalf("diagonal wire misses endpoints: bbox %v", bb)
	}
}

func TestOctagon(t *testing.T) {
	oct := Octagon(100, Pt(0, 0))
	if len(oct) != 8 {
		t.Fatalf("octagon has %d vertices", len(oct))
	}
	bb := oct.BBox()
	if bb.W() != 100 || bb.H() != 100 {
		t.Fatalf("octagon bbox %v", bb)
	}
	if oct.Area2() <= 0 {
		t.Fatal("octagon not counter-clockwise")
	}
}

func TestUnionAreaOverlap(t *testing.T) {
	a := R(0, 0, 10, 10)
	b := R(5, 0, 15, 10)
	if got := UnionArea([]Rect{a, b}); got != 150 {
		t.Fatalf("UnionArea = %d, want 150", got)
	}
}

func TestDivRound(t *testing.T) {
	cases := []struct{ n, d, want int64 }{
		{7, 2, 4}, {-7, 2, -3}, {5, 2, 3}, {-5, 2, -2},
		{6, 3, 2}, {-6, 3, -2}, {1, 4, 0}, {3, 4, 1}, {-3, 4, -1},
	}
	for _, c := range cases {
		if got := divRound(c.n, c.d); got != c.want {
			t.Errorf("divRound(%d,%d) = %d, want %d", c.n, c.d, got, c.want)
		}
	}
}

func TestFloorCeilDiv(t *testing.T) {
	if floorDiv(-1, 10) != -1 || floorDiv(0, 10) != 0 || floorDiv(9, 10) != 0 ||
		floorDiv(10, 10) != 1 || floorDiv(-10, 10) != -1 || floorDiv(-11, 10) != -2 {
		t.Fatal("floorDiv wrong")
	}
	if ceilDiv(1, 10) != 1 || ceilDiv(0, 10) != 0 || ceilDiv(-9, 10) != 0 ||
		ceilDiv(11, 10) != 2 {
		t.Fatal("ceilDiv wrong")
	}
}
