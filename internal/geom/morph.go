package geom

// Morphological operations on rectangle regions, used by the design
// rule checker: minimum width is checked with an opening (erode then
// dilate — anything that vanishes is thinner than the structuring
// square) and minimum spacing with a closing (dilate then erode —
// anything that appears is a gap narrower than the square).

// Dilate grows the region by d on every side (Minkowski sum with a
// (2d)×(2d) square). A non-positive d returns the canonical region
// unchanged.
func Dilate(rects []Rect, d int64) []Rect {
	if d <= 0 {
		return Canonicalize(rects)
	}
	out := make([]Rect, 0, len(rects))
	for _, r := range rects {
		if r.Empty() {
			continue
		}
		out = append(out, Rect{r.XMin - d, r.YMin - d, r.XMax + d, r.YMax + d})
	}
	return Canonicalize(out)
}

// Erode shrinks the region by d on every side: the result contains
// exactly the points whose (2d)×(2d) neighbourhood lies inside the
// region. Implemented as the complement of the dilated complement,
// computed within a padded bounding frame.
func Erode(rects []Rect, d int64) []Rect {
	if d <= 0 {
		return Canonicalize(rects)
	}
	region := Canonicalize(rects)
	if len(region) == 0 {
		return nil
	}
	bb := BBoxOf(region)
	frame := Rect{bb.XMin - 3*d, bb.YMin - 3*d, bb.XMax + 3*d, bb.YMax + 3*d}
	comp := SubtractRegions([]Rect{frame}, region)
	compDilated := Dilate(comp, d)
	return SubtractRegions([]Rect{frame}, compDilated)
}

// Opening erodes then dilates: the region minus every feature narrower
// than 2d.
func Opening(rects []Rect, d int64) []Rect {
	return Dilate(Erode(rects, d), d)
}

// Closing dilates then erodes: the region plus every gap or notch
// narrower than 2d.
func Closing(rects []Rect, d int64) []Rect {
	region := Canonicalize(rects)
	if len(region) == 0 {
		return nil
	}
	return Erode(Dilate(region, d), d)
}

// ThinnerThan returns the parts of the region whose local width is
// strictly less than w — the minimum-width violation markers. A
// feature of width exactly w passes. The computation runs in doubled
// coordinates so the strict comparison is exact for integer erosion
// (a width-2d slab erodes to a degenerate line in rectangle
// representation, which would wrongly flag exact-width features).
func ThinnerThan(rects []Rect, w int64) []Rect {
	if w <= 1 {
		return nil
	}
	region2 := scaleRegion(Canonicalize(rects), 2)
	opened := Opening(region2, w-1)
	return scaleRegionDown(SubtractRegions(region2, opened))
}

// GapsNarrowerThan returns the exterior gaps and notches of the region
// strictly narrower than s — the minimum-spacing violation markers.
// Components exactly s apart pass.
func GapsNarrowerThan(rects []Rect, s int64) []Rect {
	if s <= 1 {
		return nil
	}
	region2 := scaleRegion(Canonicalize(rects), 2)
	closed := Closing(region2, s-1)
	return scaleRegionDown(SubtractRegions(closed, region2))
}

func scaleRegion(rects []Rect, k int64) []Rect {
	out := make([]Rect, len(rects))
	for i, r := range rects {
		out[i] = Rect{r.XMin * k, r.YMin * k, r.XMax * k, r.YMax * k}
	}
	return out
}

// scaleRegionDown halves coordinates, rounding outward so markers
// never shrink to nothing.
func scaleRegionDown(rects []Rect) []Rect {
	out := make([]Rect, 0, len(rects))
	for _, r := range rects {
		s := Rect{
			XMin: floorDiv(r.XMin, 2), YMin: floorDiv(r.YMin, 2),
			XMax: ceilDiv(r.XMax, 2), YMax: ceilDiv(r.YMax, 2),
		}
		if !s.Empty() {
			out = append(out, s)
		}
	}
	return Canonicalize(out)
}
