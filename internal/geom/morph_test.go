package geom

import (
	"math/rand"
	"testing"
)

func TestDilateErodeBasics(t *testing.T) {
	r := []Rect{R(0, 0, 100, 100)}
	d := Dilate(r, 10)
	if len(d) != 1 || d[0] != R(-10, -10, 110, 110) {
		t.Fatalf("dilate = %v", d)
	}
	e := Erode(r, 10)
	if len(e) != 1 || e[0] != R(10, 10, 90, 90) {
		t.Fatalf("erode = %v", e)
	}
	// Eroding more than half the width annihilates the region.
	if out := Erode(r, 50); len(out) != 0 {
		t.Fatalf("over-erode = %v", out)
	}
	// d=0 is identity.
	if out := Dilate(r, 0); !SameRegion(out, r) {
		t.Fatalf("dilate 0 = %v", out)
	}
}

func TestErodeDilateInverseOnFatRegions(t *testing.T) {
	// For a single rectangle comfortably larger than the element,
	// opening is the identity.
	r := []Rect{R(0, 0, 100, 40)}
	if out := Opening(r, 10); !SameRegion(out, r) {
		t.Fatalf("opening changed a fat rect: %v", out)
	}
	if out := Closing(r, 10); !SameRegion(out, r) {
		t.Fatalf("closing changed a fat rect: %v", out)
	}
}

func TestOpeningRemovesThinFeatures(t *testing.T) {
	// A fat pad with a thin whisker.
	r := []Rect{R(0, 0, 100, 100), R(100, 40, 300, 50)} // whisker 10 tall
	opened := Opening(r, 10)                            // 20×20 square
	if coveredStrict(opened, Pt(200, 45)) {
		t.Fatalf("whisker survived opening: %v", opened)
	}
	if !coveredStrict(opened, Pt(50, 50)) {
		t.Fatal("pad did not survive opening")
	}
}

func TestThinnerThan(t *testing.T) {
	r := []Rect{R(0, 0, 100, 100), R(100, 40, 300, 50)}
	viol := ThinnerThan(r, 20)
	if len(viol) == 0 {
		t.Fatal("thin whisker not flagged")
	}
	if !coveredStrict(viol, Pt(200, 45)) {
		t.Fatalf("violation markers miss the whisker: %v", viol)
	}
	// A uniformly fat region is clean.
	if out := ThinnerThan([]Rect{R(0, 0, 100, 100)}, 20); len(out) != 0 {
		t.Fatalf("fat region flagged: %v", out)
	}
}

func TestGapsNarrowerThan(t *testing.T) {
	// Two fat bars 10 apart.
	r := []Rect{R(0, 0, 100, 100), R(110, 0, 210, 100)}
	viol := GapsNarrowerThan(r, 20)
	if len(viol) == 0 {
		t.Fatal("narrow gap not flagged")
	}
	if !coveredStrict(viol, Pt(105, 50)) {
		t.Fatalf("violation markers miss the gap: %v", viol)
	}
	// Bars 40 apart are clean for a 20 rule.
	r2 := []Rect{R(0, 0, 100, 100), R(140, 0, 240, 100)}
	if out := GapsNarrowerThan(r2, 20); len(out) != 0 {
		t.Fatalf("wide gap flagged: %v", out)
	}
}

func TestNotchDetected(t *testing.T) {
	// A U-shaped region whose notch is 10 wide.
	u := []Rect{R(0, 0, 30, 100), R(40, 0, 70, 100), R(0, -30, 70, 0)}
	viol := GapsNarrowerThan(u, 20)
	if len(viol) == 0 || !coveredStrict(viol, Pt(35, 50)) {
		t.Fatalf("notch not flagged: %v", viol)
	}
}

func TestMorphologyProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(6)
		r := make([]Rect, n)
		for i := range r {
			x := int64(rng.Intn(60))
			y := int64(rng.Intn(60))
			r[i] = R(x, y, x+int64(4+rng.Intn(40)), y+int64(4+rng.Intn(40)))
		}
		d := int64(1 + rng.Intn(8))
		region := Canonicalize(r)

		// Anti-extensivity of erosion / extensivity of dilation.
		if UnionArea(Erode(region, d)) > UnionArea(region) {
			t.Fatal("erosion grew the region")
		}
		if UnionArea(Dilate(region, d)) < UnionArea(region) {
			t.Fatal("dilation shrank the region")
		}
		// Opening ⊆ region ⊆ closing.
		if len(SubtractRegions(Opening(region, d), region)) != 0 {
			t.Fatal("opening escaped the region")
		}
		if len(SubtractRegions(region, Closing(region, d))) != 0 {
			t.Fatal("closing lost part of the region")
		}
		// Idempotence.
		o := Opening(region, d)
		if !SameRegion(o, Opening(o, d)) {
			t.Fatalf("opening not idempotent (d=%d): %v", d, region)
		}
		c := Closing(region, d)
		if !SameRegion(c, Closing(c, d)) {
			t.Fatalf("closing not idempotent (d=%d): %v", d, region)
		}
		// Erode inverts dilate on already-dilated sets.
		if !SameRegion(Erode(Dilate(region, d), d), Closing(region, d)) {
			t.Fatal("closing decomposition broken")
		}
	}
}
