package geom

import (
	"fmt"
	"slices"
)

// Polygon is a simple closed polygon described by its vertices in
// order (either winding). The closing edge from the last vertex back
// to the first is implicit.
type Polygon []Point

// BBox returns the polygon's bounding box.
func (pg Polygon) BBox() Rect {
	if len(pg) == 0 {
		return Rect{}
	}
	r := Rect{pg[0].X, pg[0].Y, pg[0].X, pg[0].Y}
	for _, p := range pg[1:] {
		r.XMin = min64(r.XMin, p.X)
		r.XMax = max64(r.XMax, p.X)
		r.YMin = min64(r.YMin, p.Y)
		r.YMax = max64(r.YMax, p.Y)
	}
	return r
}

// Area2 returns twice the signed area of the polygon (positive for
// counter-clockwise winding). Doubling keeps the result integral.
func (pg Polygon) Area2() int64 {
	var s int64
	n := len(pg)
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		s += pg[i].X*pg[j].Y - pg[j].X*pg[i].Y
	}
	return s
}

// Translate returns the polygon shifted by d.
func (pg Polygon) Translate(d Point) Polygon {
	out := make(Polygon, len(pg))
	for i, p := range pg {
		out[i] = p.Add(d)
	}
	return out
}

// Apply returns the polygon mapped through t.
func (pg Polygon) Apply(t Transform) Polygon {
	out := make(Polygon, len(pg))
	for i, p := range pg {
		out[i] = t.Apply(p)
	}
	return out
}

// IsRect reports whether the polygon is exactly an axis-aligned
// rectangle, and returns it if so.
func (pg Polygon) IsRect() (Rect, bool) {
	if len(pg) != 4 {
		return Rect{}, false
	}
	bb := pg.BBox()
	for _, p := range pg {
		onX := p.X == bb.XMin || p.X == bb.XMax
		onY := p.Y == bb.YMin || p.Y == bb.YMax
		if !onX || !onY {
			return Rect{}, false
		}
	}
	// The four corners must all be distinct for a true rectangle.
	for i := range pg {
		for j := i + 1; j < len(pg); j++ {
			if pg[i] == pg[j] {
				return Rect{}, false
			}
		}
	}
	return bb, !bb.Empty()
}

// Manhattanize approximates the polygon with axis-aligned boxes whose
// edges are multiples of grid. Bands of height ≤ grid are sampled at
// their vertical midpoint using even-odd fill; interval endpoints are
// rounded to the nearest grid line. Vertically compatible boxes are
// merged before returning. A non-positive grid defaults to 1.
//
// This is the front end's treatment of non-manhattan geometry: "split
// into a number of small aligned boxes that approximate the original
// object" (ACE §3).
func (pg Polygon) Manhattanize(grid int64) []Rect {
	var sc BoxScratch
	return pg.manhattanizeInto(&sc, grid)
}

// ApplyManhattanize maps the polygon through t and manhattanises it,
// drawing every intermediate buffer from sc (nil: allocate per call).
// The result aliases sc and is valid until the scratch's next use.
func (pg Polygon) ApplyManhattanize(sc *BoxScratch, t Transform, grid int64) []Rect {
	if sc == nil {
		sc = &BoxScratch{}
	}
	tp := sc.poly[:0]
	for _, p := range pg {
		tp = append(tp, t.Apply(p))
	}
	sc.poly = tp
	return tp.manhattanizeInto(sc, grid)
}

// manhattanizeInto is Manhattanize drawing scratch from sc. The
// receiver may alias sc.poly; only sc.xs, sc.out and the
// canonicalisation buffers are touched.
func (pg Polygon) manhattanizeInto(sc *BoxScratch, grid int64) []Rect {
	if grid <= 0 {
		grid = 1
	}
	if len(pg) < 3 {
		return nil
	}
	if r, ok := pg.IsRect(); ok {
		sc.out = append(sc.out[:0], r)
		return sc.out
	}

	bb := pg.BBox()
	yLo := floorDiv(bb.YMin, grid) * grid
	yHi := ceilDiv(bb.YMax, grid) * grid

	out := sc.out[:0]
	xs := sc.xs
	for y := yLo; y < yHi; y += grid {
		// Sample the fill at the band's vertical midpoint. Midpoints
		// are half-integral in general; scale by 2 to stay integral.
		ymid2 := 2*y + grid // == 2*(y + grid/2)
		xs = pg.appendCrossings2(xs[:0], ymid2)
		for i := 0; i+1 < len(xs); i += 2 {
			x0 := roundToGrid2(xs[i], grid)
			x1 := roundToGrid2(xs[i+1], grid)
			if x1 > x0 {
				out = append(out, Rect{x0, y, x1, y + grid})
			}
		}
	}
	sc.out, sc.xs = out, xs
	return canonicalizeInto(sc, out)
}

// appendCrossings2 appends onto xs the sorted doubled x coordinates
// where the polygon's edges cross the horizontal line 2*y = ymid2, and
// returns the extended slice (a scratch buffer the band loop reuses).
// All arithmetic is in doubled coordinates so the half-integral
// sampling line stays exact; because the line sits strictly between
// integer grid lines it can never pass through a vertex, so each
// crossing is a clean transversal.
func (pg Polygon) appendCrossings2(xs []int64, ymid2 int64) []int64 {
	n := len(pg)
	for i := 0; i < n; i++ {
		a, b := pg[i], pg[(i+1)%n]
		ay2, by2 := 2*a.Y, 2*b.Y
		if (ay2 < ymid2) == (by2 < ymid2) {
			continue // both endpoints on the same side: no crossing
		}
		// x = ax + (ymid-ay) * (bx-ax)/(by-ay), in doubled coords.
		num := (ymid2 - ay2) * (2*b.X - 2*a.X)
		den := by2 - ay2
		xs = append(xs, 2*a.X+divRound(num, den))
	}
	slices.Sort(xs)
	return xs
}

// roundToGrid2 rounds a doubled coordinate x2 to the nearest multiple
// of grid (in ordinary coordinates).
func roundToGrid2(x2, grid int64) int64 {
	g2 := 2 * grid
	q := divRound(x2, g2)
	return q * grid
}

// divRound divides with rounding to nearest (ties toward +infinity),
// correct for negative operands.
func divRound(num, den int64) int64 {
	if den < 0 {
		num, den = -num, -den
	}
	if num >= 0 {
		return (num + den/2) / den
	}
	return -((-num + den/2 - 1) / den)
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

func ceilDiv(a, b int64) int64 {
	return -floorDiv(-a, b)
}

// Wire is a CIF wire: a path of points drawn with a given width. The
// CIF definition gives each segment rectangular body of the wire width
// and round end caps; like most extractors we approximate the caps
// with squares (a half-width extension at each path end and a full
// square at each interior joint).
type Wire struct {
	Width int64
	Path  []Point
}

// Boxes converts the wire to axis-aligned boxes on the given grid.
// Axis-aligned segments convert exactly; diagonal segments are
// approximated via polygon manhattanisation.
func (w Wire) Boxes(grid int64) []Rect {
	var sc BoxScratch
	return w.boxesInto(&sc, grid)
}

// ApplyBoxes maps the wire's path through t and converts it to boxes,
// drawing every intermediate buffer from sc (nil: allocate per call).
// The result aliases sc and is valid until the scratch's next use.
func (w Wire) ApplyBoxes(sc *BoxScratch, t Transform, grid int64) []Rect {
	if sc == nil {
		sc = &BoxScratch{}
	}
	path := sc.path[:0]
	for _, p := range w.Path {
		path = append(path, t.Apply(p))
	}
	sc.path = path
	return Wire{Width: w.Width, Path: path}.boxesInto(sc, grid)
}

// boxesInto is Boxes drawing scratch from sc. The path may alias
// sc.path; segments accumulate in sc.wire (kept separate from sc.out,
// which diagonal-segment manhattanisation consumes mid-loop).
func (w Wire) boxesInto(sc *BoxScratch, grid int64) []Rect {
	if len(w.Path) == 0 || w.Width <= 0 {
		return nil
	}
	h := w.Width / 2
	h2 := w.Width - h // handles odd widths
	out := sc.wire[:0]
	if len(w.Path) == 1 {
		p := w.Path[0]
		sc.wire = append(out, Rect{p.X - h, p.Y - h, p.X + h2, p.Y + h2})
		return sc.wire
	}
	for i := 0; i+1 < len(w.Path); i++ {
		a, b := w.Path[i], w.Path[i+1]
		switch {
		case a.Y == b.Y: // horizontal
			x0, x1 := min64(a.X, b.X), max64(a.X, b.X)
			out = append(out, Rect{x0 - h, a.Y - h, x1 + h2, a.Y + h2})
		case a.X == b.X: // vertical
			y0, y1 := min64(a.Y, b.Y), max64(a.Y, b.Y)
			out = append(out, Rect{a.X - h, y0 - h, a.X + h2, y1 + h2})
		default: // diagonal: build the segment quad and manhattanise
			out = append(out, diagonalSegment(sc, a, b, w.Width, grid)...)
			// Square joints keep connectivity through the corner.
			out = append(out,
				Rect{a.X - h, a.Y - h, a.X + h2, a.Y + h2},
				Rect{b.X - h, b.Y - h, b.X + h2, b.Y + h2})
		}
	}
	sc.wire = out
	return canonicalizeInto(sc, out)
}

// diagonalSegment approximates a diagonal wire segment of the given
// width with grid-aligned boxes. The result is valid until the
// scratch's next use; the caller copies it out immediately.
func diagonalSegment(sc *BoxScratch, a, b Point, width, grid int64) []Rect {
	// Perpendicular offset: scale the perpendicular of (dx,dy) so its
	// longer component is width/2. This slightly over- or under-sizes
	// skewed segments, which is acceptable for an approximation the
	// designer opted into by drawing off-axis wires.
	dx, dy := b.X-a.X, b.Y-a.Y
	adx, ady := dx, dy
	if adx < 0 {
		adx = -adx
	}
	if ady < 0 {
		ady = -ady
	}
	m := max64(adx, ady)
	if m == 0 {
		return nil
	}
	px := -dy * (width / 2) / m
	py := dx * (width / 2) / m
	sc.quad = [4]Point{
		{a.X + px, a.Y + py},
		{b.X + px, b.Y + py},
		{b.X - px, b.Y - py},
		{a.X - px, a.Y - py},
	}
	return Polygon(sc.quad[:]).manhattanizeInto(sc, grid)
}

// Octagon returns the octagon inscribed in the circle of the given
// diameter centred at c; used to approximate CIF round flashes.
func Octagon(diameter int64, c Point) Polygon {
	r := diameter / 2
	// 5/12 ≈ tan(22.5°)·r ≈ 0.414·r gives a regular-ish octagon.
	k := r * 5 / 12
	return Polygon{
		{c.X + r, c.Y + k}, {c.X + k, c.Y + r},
		{c.X - k, c.Y + r}, {c.X - r, c.Y + k},
		{c.X - r, c.Y - k}, {c.X - k, c.Y - r},
		{c.X + k, c.Y - r}, {c.X + r, c.Y - k},
	}
}

func (pg Polygon) String() string {
	return fmt.Sprintf("Polygon%v", []Point(pg))
}
