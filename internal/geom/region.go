package geom

import "sort"

// Region boolean operations over rectangle sets. Inputs may overlap
// arbitrarily; outputs are in canonical maximal-horizontal-strip form
// (see Canonicalize).

// IntersectRegions returns the region covered by both a and b.
func IntersectRegions(a, b []Rect) []Rect {
	return regionOp(a, b, func(x, y bool) bool { return x && y })
}

// SubtractRegions returns the region covered by a but not b.
func SubtractRegions(a, b []Rect) []Rect {
	return regionOp(a, b, func(x, y bool) bool { return x && !y })
}

// UnionRegions returns the region covered by either a or b.
func UnionRegions(a, b []Rect) []Rect {
	return Canonicalize(append(append([]Rect{}, a...), b...))
}

func regionOp(a, b []Rect, keep func(inA, inB bool) bool) []Rect {
	in := make([]Rect, 0, len(a)+len(b))
	for _, r := range a {
		if !r.Empty() {
			in = append(in, r)
		}
	}
	na := len(in)
	for _, r := range b {
		if !r.Empty() {
			in = append(in, r)
		}
	}
	if len(in) == 0 {
		return nil
	}

	ys := make([]int64, 0, 2*len(in))
	for _, r := range in {
		ys = append(ys, r.YMin, r.YMax)
	}
	sort.Slice(ys, func(i, j int) bool { return ys[i] < ys[j] })
	ys = dedup64(ys)

	type idxRect struct {
		r Rect
		a bool
	}
	all := make([]idxRect, len(in))
	for i, r := range in {
		all[i] = idxRect{r, i < na}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].r.YMin < all[j].r.YMin })

	var out []Rect
	var activeA, activeB []Rect
	var ia, ib [][2]int64 // per-band scratch, reused across bands
	next := 0
	for bi := 0; bi+1 < len(ys); bi++ {
		y0, y1 := ys[bi], ys[bi+1]
		for next < len(all) && all[next].r.YMin <= y0 {
			if all[next].a {
				activeA = append(activeA, all[next].r)
			} else {
				activeB = append(activeB, all[next].r)
			}
			next++
		}
		activeA = pruneEnded(activeA, y0)
		activeB = pruneEnded(activeB, y0)

		ia = appendBandIntervals(ia[:0], activeA)
		ib = appendBandIntervals(ib[:0], activeB)
		for _, iv := range combineIntervals(ia, ib, keep) {
			out = append(out, Rect{iv[0], y0, iv[1], y1})
		}
	}
	return Canonicalize(out)
}

func pruneEnded(active []Rect, y int64) []Rect {
	w := active[:0]
	for _, r := range active {
		if r.YMax > y {
			w = append(w, r)
		}
	}
	return w
}

// combineIntervals applies keep pointwise over two disjoint sorted
// interval lists.
func combineIntervals(a, b [][2]int64, keep func(bool, bool) bool) [][2]int64 {
	// Collect all boundaries.
	var xs []int64
	for _, iv := range a {
		xs = append(xs, iv[0], iv[1])
	}
	for _, iv := range b {
		xs = append(xs, iv[0], iv[1])
	}
	if len(xs) == 0 {
		return nil
	}
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	xs = dedup64(xs)

	contains := func(list [][2]int64, x0 int64) bool {
		i := sort.Search(len(list), func(k int) bool { return list[k][1] > x0 })
		return i < len(list) && list[i][0] <= x0
	}

	var out [][2]int64
	for i := 0; i+1 < len(xs); i++ {
		x0, x1 := xs[i], xs[i+1]
		if keep(contains(a, x0), contains(b, x0)) {
			if n := len(out); n > 0 && out[n-1][1] == x0 {
				out[n-1][1] = x1
			} else {
				out = append(out, [2]int64{x0, x1})
			}
		}
	}
	return out
}

// ContactLen returns the length of the shared boundary between two
// non-overlapping rectangles: positive when they abut along a segment,
// zero for corner-only contact or separation. For overlapping
// rectangles it returns the overlap's longer side as a connectivity
// surrogate (any positive value means electrically connected).
func ContactLen(a, b Rect) int64 {
	xo := min64(a.XMax, b.XMax) - max64(a.XMin, b.XMin)
	yo := min64(a.YMax, b.YMax) - max64(a.YMin, b.YMin)
	switch {
	case xo > 0 && yo > 0: // overlap
		return max64(xo, yo)
	case xo > 0 && yo == 0: // horizontal edge contact
		return xo
	case yo > 0 && xo == 0: // vertical edge contact
		return yo
	}
	return 0
}

// Connected reports whether two rectangles share boundary of positive
// length (overlap or edge-abut; corner contact does not count).
func Connected(a, b Rect) bool { return ContactLen(a, b) > 0 }
