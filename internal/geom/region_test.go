package geom

import (
	"math/rand"
	"testing"
)

func TestIntersectRegions(t *testing.T) {
	a := []Rect{R(0, 0, 100, 100)}
	b := []Rect{R(50, 50, 150, 150)}
	got := IntersectRegions(a, b)
	if len(got) != 1 || got[0] != R(50, 50, 100, 100) {
		t.Fatalf("intersect = %v", got)
	}
	if out := IntersectRegions(a, []Rect{R(200, 200, 300, 300)}); len(out) != 0 {
		t.Fatalf("disjoint intersect = %v", out)
	}
}

func TestSubtractRegions(t *testing.T) {
	a := []Rect{R(0, 0, 100, 100)}
	b := []Rect{R(25, 25, 75, 75)}
	got := SubtractRegions(a, b)
	if UnionArea(got) != 100*100-50*50 {
		t.Fatalf("subtract area = %d", UnionArea(got))
	}
	// Subtracting everything leaves nothing.
	if out := SubtractRegions(a, a); len(out) != 0 {
		t.Fatalf("self subtract = %v", out)
	}
	// Subtracting nothing is identity.
	if out := SubtractRegions(a, nil); !SameRegion(out, a) {
		t.Fatalf("empty subtract = %v", out)
	}
}

func TestUnionRegions(t *testing.T) {
	a := []Rect{R(0, 0, 100, 100)}
	b := []Rect{R(100, 0, 200, 100)}
	got := UnionRegions(a, b)
	if len(got) != 1 || got[0] != R(0, 0, 200, 100) {
		t.Fatalf("union = %v", got)
	}
}

// TestRegionOpsRandom checks the boolean algebra pointwise against
// brute-force coverage tests.
func TestRegionOpsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	randRects := func() []Rect {
		n := rng.Intn(8)
		out := make([]Rect, n)
		for i := range out {
			x := int64(rng.Intn(30))
			y := int64(rng.Intn(30))
			out[i] = R(x, y, x+int64(1+rng.Intn(15)), y+int64(1+rng.Intn(15)))
		}
		return out
	}
	for trial := 0; trial < 200; trial++ {
		a, b := randRects(), randRects()
		inter := IntersectRegions(a, b)
		sub := SubtractRegions(a, b)
		uni := UnionRegions(a, b)
		for k := 0; k < 40; k++ {
			p := Pt(int64(rng.Intn(50)), int64(rng.Intn(50)))
			inA, inB := coveredStrict(a, p), coveredStrict(b, p)
			if coveredStrict(inter, p) != (inA && inB) {
				t.Fatalf("intersect wrong at %v", p)
			}
			if coveredStrict(sub, p) != (inA && !inB) {
				t.Fatalf("subtract wrong at %v", p)
			}
			if coveredStrict(uni, p) != (inA || inB) {
				t.Fatalf("union wrong at %v", p)
			}
		}
		// Area identity: |A| = |A∩B| + |A−B|.
		if UnionArea(inter)+UnionArea(sub) != UnionArea(a) {
			t.Fatalf("area identity violated")
		}
	}
}

func TestContactLen(t *testing.T) {
	cases := []struct {
		a, b Rect
		want int64
	}{
		{R(0, 0, 10, 10), R(10, 0, 20, 10), 10}, // full edge
		{R(0, 0, 10, 10), R(10, 5, 20, 15), 5},  // partial edge
		{R(0, 0, 10, 10), R(0, 10, 10, 20), 10}, // top edge
		{R(0, 0, 10, 10), R(10, 10, 20, 20), 0}, // corner
		{R(0, 0, 10, 10), R(11, 0, 20, 10), 0},  // separated
		{R(0, 0, 10, 10), R(5, 5, 15, 15), 5},   // overlap
		{R(0, 0, 10, 10), R(2, 2, 8, 8), 6},     // contained
	}
	for _, c := range cases {
		if got := ContactLen(c.a, c.b); got != c.want {
			t.Errorf("ContactLen(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := ContactLen(c.b, c.a); got != c.want {
			t.Errorf("ContactLen not symmetric for %v %v", c.a, c.b)
		}
		if Connected(c.a, c.b) != (c.want > 0) {
			t.Errorf("Connected(%v,%v) inconsistent", c.a, c.b)
		}
	}
}
