package geom

// BoxScratch holds the reusable buffers behind polygon and wire
// decomposition (Manhattanize, Wire.Boxes, Canonicalize). The plain
// functions allocate these per call; the front end decomposes every
// non-manhattan item on every extraction, so a warm loop threads one
// scratch through ApplyManhattanize / ApplyBoxes instead and the
// decomposition stops allocating once the buffers have grown to the
// workload's shape.
//
// Results returned by scratch-taking methods alias the scratch and
// stay valid only until its next use — callers copy what they keep.
// The zero value is ready; a nil *BoxScratch degrades to per-call
// allocation, so call sites need no guards. A scratch is not safe for
// concurrent use; pool instances per goroutine (frontend.Arena does).
type BoxScratch struct {
	poly Polygon  // transformed polygon copy
	path []Point  // transformed wire path
	quad [4]Point // diagonal wire segment quad
	xs   []int64  // band crossing coordinates
	out  []Rect   // raw manhattanisation bands
	wire []Rect   // wire segment accumulation

	// canonicalisation state
	in     []Rect
	ys     []int64
	active []Rect
	ivals  [][2]int64
	used   []bool
	open   []canonStrip
	still  []canonStrip
	done   []Rect
}

// canonStrip is an in-progress maximal horizontal strip of the union
// being canonicalised.
type canonStrip struct {
	x0, x1 int64
	y0, y1 int64
}
