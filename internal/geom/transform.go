package geom

import "fmt"

// Transform is an orthogonal affine transformation:
//
//	x' = A*x + B*y + C
//	y' = D*x + E*y + F
//
// where the linear part (A B; D E) is one of the eight orthogonal
// matrices (rotations by multiples of 90° and mirrors). This is the
// full set needed for CIF symbol calls: CIF permits an arbitrary
// rotation vector, but all layout in practice (and everything the
// front end guarantees to keep manhattan) uses axis-aligned vectors;
// see ApproxRotation for how arbitrary vectors are snapped.
type Transform struct {
	A, B, C int64
	D, E, F int64
}

// Identity is the do-nothing transformation.
var Identity = Transform{A: 1, E: 1}

// Translate returns a transformation that shifts by (dx, dy).
func Translate(dx, dy int64) Transform {
	return Transform{A: 1, C: dx, E: 1, F: dy}
}

// MirrorX returns the CIF "M X" transformation (x → −x).
func MirrorX() Transform { return Transform{A: -1, E: 1} }

// MirrorY returns the CIF "M Y" transformation (y → −y).
func MirrorY() Transform { return Transform{A: 1, E: -1} }

// Rotate returns the CIF "R a b" transformation for an axis-aligned
// direction vector: the positive x axis is rotated to point along
// (a, b). Exactly one of a, b must be non-zero; arbitrary vectors are
// snapped by ApproxRotation before reaching here.
func Rotate(a, b int64) (Transform, error) {
	switch {
	case a > 0 && b == 0:
		return Identity, nil
	case a == 0 && b > 0: // 90° CCW: (x,y) -> (-y, x)
		return Transform{B: -1, D: 1}, nil
	case a < 0 && b == 0: // 180°: (x,y) -> (-x,-y)
		return Transform{A: -1, E: -1}, nil
	case a == 0 && b < 0: // 270°: (x,y) -> (y, -x)
		return Transform{B: 1, D: -1}, nil
	}
	return Identity, fmt.Errorf("geom: rotation vector (%d,%d) is not axis-aligned", a, b)
}

// ApproxRotation snaps an arbitrary CIF rotation vector to the nearest
// axis-aligned vector and returns the corresponding transformation and
// whether snapping changed the direction. The zero vector maps to the
// identity.
func ApproxRotation(a, b int64) (Transform, bool) {
	if a == 0 && b == 0 {
		return Identity, false
	}
	abs := func(v int64) int64 {
		if v < 0 {
			return -v
		}
		return v
	}
	var t Transform
	exact := a == 0 || b == 0
	if abs(a) >= abs(b) {
		if a >= 0 {
			t, _ = Rotate(1, 0)
		} else {
			t, _ = Rotate(-1, 0)
		}
	} else {
		if b >= 0 {
			t, _ = Rotate(0, 1)
		} else {
			t, _ = Rotate(0, -1)
		}
	}
	return t, !exact
}

// Apply maps a point through the transformation.
func (t Transform) Apply(p Point) Point {
	return Point{
		X: t.A*p.X + t.B*p.Y + t.C,
		Y: t.D*p.X + t.E*p.Y + t.F,
	}
}

// ApplyRect maps a rectangle through the transformation, renormalising
// the corner order. Orthogonal transforms always map rectangles to
// rectangles.
func (t Transform) ApplyRect(r Rect) Rect {
	p := t.Apply(Point{r.XMin, r.YMin})
	q := t.Apply(Point{r.XMax, r.YMax})
	return R(p.X, p.Y, q.X, q.Y)
}

// Then returns the transformation that applies t first, then u — the
// composition u∘t. This matches CIF call semantics where listed
// transformations are applied left to right.
func (t Transform) Then(u Transform) Transform {
	return Transform{
		A: u.A*t.A + u.B*t.D,
		B: u.A*t.B + u.B*t.E,
		C: u.A*t.C + u.B*t.F + u.C,
		D: u.D*t.A + u.E*t.D,
		E: u.D*t.B + u.E*t.E,
		F: u.D*t.C + u.E*t.F + u.F,
	}
}

// IsIdentity reports whether t is the identity transformation.
func (t Transform) IsIdentity() bool { return t == Identity }

func (t Transform) String() string {
	return fmt.Sprintf("[%d %d %d; %d %d %d]", t.A, t.B, t.C, t.D, t.E, t.F)
}
