package guard

import (
	"errors"
	"sync/atomic"
	"time"
)

// Injector is the fault-injection hook. The pipeline calls Inject at
// the entry of every stage and every worker-pool work unit; an
// installed Injector may return an error (injected error), panic
// (injected crash, exercising the recover wrappers) or sleep (injected
// delay, exercising cancellation) before returning nil.
//
// The hook is compiled behind this interface rather than build tags:
// with no injector installed, Inject is one atomic load and a branch,
// cheap enough to leave in production builds.
type Injector interface {
	Fire(stage string) error
}

// injector holds the installed Injector. An extra indirection because
// atomic.Pointer needs a concrete type.
type injectorBox struct{ in Injector }

var installed atomic.Pointer[injectorBox]

// SetInjector installs in as the process-wide fault injector and
// returns a function restoring the previous one. Tests install a
// *Failpoint, run the pipeline, then restore. Pass nil to clear.
func SetInjector(in Injector) (restore func()) {
	prev := installed.Load()
	if in == nil {
		installed.Store(nil)
	} else {
		installed.Store(&injectorBox{in: in})
	}
	return func() { installed.Store(prev) }
}

// Inject fires the installed injector for a stage. Injected errors
// come back wrapped in a *StageError carrying the stage; injected
// panics propagate to the caller's recover wrapper; with no injector
// installed it returns nil at the cost of one atomic load.
func Inject(stage string) error {
	box := installed.Load()
	if box == nil {
		return nil
	}
	if err := box.in.Fire(stage); err != nil {
		return &StageError{Stage: stage, Err: err}
	}
	return nil
}

// ErrInjected is the error a Failpoint in FaultError mode returns.
var ErrInjected = errors.New("injected fault")

// FaultKind selects what a Failpoint does when it fires.
type FaultKind int

const (
	// FaultError makes the stage return ErrInjected.
	FaultError FaultKind = iota
	// FaultPanic panics with ErrInjected, exercising panic isolation.
	FaultPanic
	// FaultDelay sleeps for Delay, exercising cancellation latency.
	FaultDelay
)

// Failpoint is a deterministic Injector for tests: it fires Kind at
// the Skip+1'th call reaching Stage and counts every hit. All methods
// are safe for concurrent use — stages fire from many goroutines.
type Failpoint struct {
	Stage string
	Kind  FaultKind
	Delay time.Duration // FaultDelay sleep
	Skip  int64         // hits at Stage to let pass before firing

	hits  atomic.Int64 // calls that reached Stage
	fired atomic.Int64 // calls that actually fired
}

// Fire implements Injector.
func (f *Failpoint) Fire(stage string) error {
	if stage != f.Stage {
		return nil
	}
	if f.hits.Add(1) <= f.Skip {
		return nil
	}
	f.fired.Add(1)
	switch f.Kind {
	case FaultPanic:
		panic(ErrInjected)
	case FaultDelay:
		time.Sleep(f.Delay)
		return nil
	default:
		return ErrInjected
	}
}

// Hits reports how many calls reached the failpoint's stage.
func (f *Failpoint) Hits() int64 { return f.hits.Load() }

// Fired reports how many calls actually fired.
func (f *Failpoint) Fired() int64 { return f.fired.Load() }
