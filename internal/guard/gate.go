package guard

import (
	"context"
	"sync/atomic"
)

// WhatConcurrent is the LimitError.What reported when an admission
// gate rejects work: the concurrency budget's name in the taxonomy,
// next to "boxes", "expanded boxes" and "memory bytes".
const WhatConcurrent = "concurrent requests"

// StageAdmit is the admission stage: the point where concurrent work
// is accepted or shed. Like StageCheck it is an attribution label, not
// a fault-injection point.
const StageAdmit = "admit"

// Gate is an admission-token semaphore: the concurrency half of the
// Limits taxonomy. At most max units of work hold a token at once;
// TryAcquire sheds excess load with a *LimitError (the same typed
// error the memory and box budgets produce, so callers classify all
// budget violations through one path) while Acquire queues until a
// token frees or the context expires.
//
// A nil *Gate, and a Gate built with max <= 0, admit everything and
// only count in-flight work. All methods are safe for concurrent use.
type Gate struct {
	max     int
	slots   chan struct{}
	unbound atomic.Int64 // in-flight count when slots == nil
}

// NewGate returns a gate admitting at most max concurrent holders;
// max <= 0 builds an unlimited, counting-only gate.
func NewGate(max int) *Gate {
	if max <= 0 {
		return &Gate{}
	}
	return &Gate{max: max, slots: make(chan struct{}, max)}
}

// NewGate builds the admission gate for the Limits' MaxConcurrent
// budget. Unlike the Check helpers a gate is stateful, so callers keep
// the returned gate rather than re-deriving it from the Limits value.
func (l Limits) NewGate() *Gate { return NewGate(l.MaxConcurrent) }

// TryAcquire takes a token without blocking. When the gate is full it
// reports a stage-attributed *LimitError (What == WhatConcurrent) and
// takes nothing.
func (g *Gate) TryAcquire(stage string) error {
	if g == nil || g.slots == nil {
		if g != nil {
			g.unbound.Add(1)
		}
		return nil
	}
	select {
	case g.slots <- struct{}{}:
		return nil
	default:
		return &LimitError{
			Stage: stage,
			What:  WhatConcurrent,
			Value: int64(g.max) + 1,
			Limit: int64(g.max),
		}
	}
}

// Acquire takes a token, waiting for one to free when the gate is
// full. A cancelled or expired ctx ends the wait with a
// stage-attributed *StageError wrapping ctx.Err(); a nil ctx waits
// indefinitely.
func (g *Gate) Acquire(ctx context.Context, stage string) error {
	if g == nil || g.slots == nil {
		if g != nil {
			g.unbound.Add(1)
		}
		return nil
	}
	if ctx == nil {
		g.slots <- struct{}{}
		return nil
	}
	// Never block on a context that is already done: a full select
	// picks a ready case at random, which could admit past a deadline.
	if err := Ctx(ctx, stage); err != nil {
		return err
	}
	select {
	case g.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return &StageError{Stage: stage, Err: ctx.Err()}
	}
}

// Release returns a token taken by TryAcquire or Acquire. Releasing
// more than was acquired is a no-op, never a deadlock.
func (g *Gate) Release() {
	if g == nil {
		return
	}
	if g.slots == nil {
		// Counting-only: floor at zero so mismatched releases cannot
		// drive the gauge negative.
		for {
			n := g.unbound.Load()
			if n <= 0 {
				return
			}
			if g.unbound.CompareAndSwap(n, n-1) {
				return
			}
		}
	}
	select {
	case <-g.slots:
	default:
	}
}

// InFlight reports the number of tokens currently held.
func (g *Gate) InFlight() int {
	if g == nil {
		return 0
	}
	if g.slots == nil {
		return int(g.unbound.Load())
	}
	return len(g.slots)
}

// Max reports the gate's admission cap (0: unlimited).
func (g *Gate) Max() int {
	if g == nil {
		return 0
	}
	return g.max
}

// CheckConcurrent reports a LimitError when n concurrent units exceed
// the MaxConcurrent budget — the stateless sibling of NewGate for
// callers that track their own in-flight count.
func (l Limits) CheckConcurrent(stage string, n int64) error {
	if l.MaxConcurrent > 0 && n > int64(l.MaxConcurrent) {
		return &LimitError{Stage: stage, What: WhatConcurrent, Value: n, Limit: int64(l.MaxConcurrent)}
	}
	return nil
}
