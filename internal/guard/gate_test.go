package guard

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGateTryAcquireShedsAtCap(t *testing.T) {
	g := NewGate(2)
	if err := g.TryAcquire(StageAdmit); err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	if err := g.TryAcquire(StageAdmit); err != nil {
		t.Fatalf("second acquire: %v", err)
	}
	err := g.TryAcquire(StageAdmit)
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("over-cap acquire: got %v, want *LimitError", err)
	}
	if le.What != WhatConcurrent || le.Limit != 2 || le.Stage != StageAdmit {
		t.Fatalf("limit error fields: %+v", le)
	}
	if got := g.InFlight(); got != 2 {
		t.Fatalf("InFlight = %d, want 2", got)
	}
	g.Release()
	if err := g.TryAcquire(StageAdmit); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
}

func TestGateAcquireWaitsForRelease(t *testing.T) {
	g := NewGate(1)
	if err := g.TryAcquire(StageAdmit); err != nil {
		t.Fatal(err)
	}
	acquired := make(chan error, 1)
	go func() { acquired <- g.Acquire(context.Background(), StageAdmit) }()
	select {
	case err := <-acquired:
		t.Fatalf("Acquire returned %v before a token freed", err)
	case <-time.After(20 * time.Millisecond):
	}
	g.Release()
	select {
	case err := <-acquired:
		if err != nil {
			t.Fatalf("Acquire after release: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Acquire did not observe the release")
	}
}

func TestGateAcquireHonorsContext(t *testing.T) {
	g := NewGate(1)
	if err := g.TryAcquire(StageAdmit); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	err := g.Acquire(ctx, StageAdmit)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Acquire under expired ctx: %v", err)
	}
	var se *StageError
	if !errors.As(err, &se) || se.Stage != StageAdmit {
		t.Fatalf("error not stage-attributed: %v", err)
	}
	// A pre-cancelled context must never admit, even with a free slot.
	g.Release()
	cctx, ccancel := context.WithCancel(context.Background())
	ccancel()
	if err := g.Acquire(cctx, StageAdmit); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled Acquire: %v", err)
	}
	if got := g.InFlight(); got != 0 {
		t.Fatalf("cancelled acquires leaked tokens: InFlight = %d", got)
	}
}

func TestGateUnlimitedCountsOnly(t *testing.T) {
	for _, g := range []*Gate{nil, NewGate(0), NewGate(-3)} {
		for i := 0; i < 10; i++ {
			if err := g.TryAcquire(StageAdmit); err != nil {
				t.Fatalf("unlimited gate rejected: %v", err)
			}
		}
		if g != nil {
			if got := g.InFlight(); got != 10 {
				t.Fatalf("unlimited InFlight = %d, want 10", got)
			}
		}
		for i := 0; i < 12; i++ { // over-release must not go negative
			g.Release()
		}
		if got := g.InFlight(); got != 0 {
			t.Fatalf("unlimited InFlight after release = %d, want 0", got)
		}
	}
}

func TestGateConcurrentNeverExceedsCap(t *testing.T) {
	const cap = 4
	g := NewGate(cap)
	var inFlight, peak, admitted atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if err := g.Acquire(context.Background(), StageAdmit); err != nil {
					t.Errorf("Acquire: %v", err)
					return
				}
				n := inFlight.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				admitted.Add(1)
				inFlight.Add(-1)
				g.Release()
			}
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > cap {
		t.Fatalf("peak concurrency %d exceeded cap %d", p, cap)
	}
	if a := admitted.Load(); a != 64*50 {
		t.Fatalf("admitted %d, want %d", a, 64*50)
	}
	if got := g.InFlight(); got != 0 {
		t.Fatalf("tokens leaked: InFlight = %d", got)
	}
}

func TestLimitsMaxConcurrent(t *testing.T) {
	l := Limits{MaxConcurrent: 3}
	if err := l.CheckConcurrent(StageAdmit, 3); err != nil {
		t.Fatalf("at cap: %v", err)
	}
	err := l.CheckConcurrent(StageAdmit, 4)
	var le *LimitError
	if !errors.As(err, &le) || le.What != WhatConcurrent || le.Value != 4 || le.Limit != 3 {
		t.Fatalf("over cap: %v", err)
	}
	if err := (Limits{}).CheckConcurrent(StageAdmit, 1<<40); err != nil {
		t.Fatalf("unlimited: %v", err)
	}
	g := l.NewGate()
	if g.Max() != 3 {
		t.Fatalf("Limits.NewGate cap = %d, want 3", g.Max())
	}
}
