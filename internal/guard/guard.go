// Package guard is the pipeline's hardening layer: typed errors for
// panics, resource budgets and injected faults; recover wrappers that
// keep one crashing worker from taking down the process; cooperative
// cancellation helpers; and a deterministic fault-injection harness
// (see failpoint.go) that the matrix tests drive through every stage
// of the extraction pipeline.
//
// The package is stdlib-only and imports nothing else from the
// repository, so every layer — cif, geom, frontend, scan, extract,
// hext and the commands — can depend on it without cycles.
//
// Error taxonomy:
//
//   - *PanicError — a worker goroutine panicked; carries the pipeline
//     stage, the panic value and the captured stack. The pool that
//     owned the worker unwinds cleanly and surfaces this instead of
//     crashing the process.
//   - *LimitError — a resource budget (Limits) was exceeded; carries
//     the stage, which budget, the observed value and the cap.
//   - *StageError — any other error attributed to a pipeline stage:
//     context cancellation, deadline expiry, injected faults. Unwraps
//     to the underlying error so errors.Is(err, context.Canceled)
//     still works through it.
package guard

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"
)

// ErrNoGeometry is the sentinel wrapped by the strict-mode "design
// contains no geometry" failures in the flat and hierarchical front
// ends. It lives here, in the shared taxonomy layer, so callers that
// sort failures into "bad input" versus "broken pipeline" — the HTTP
// service's 422-versus-500 split — can classify it with errors.Is
// without importing either front end.
var ErrNoGeometry = errors.New("design contains no geometry")

// Pipeline stage names used for error attribution and fault-injection
// targeting. Every worker pool and every sequential stage reports one
// of these.
const (
	StageParse       = "cif/parse"
	StageFrontend    = "frontend/stream"  // lazy heap front end
	StageArena       = "frontend/arena"   // symbol-arena pre-flatten
	StageStamp       = "frontend/stamp"   // parallel instance stamping
	StagePrepass     = "frontend/prepass" // impure-box prepass / SortedTops
	StageSweep       = "scan/sweep"       // serial scanline sweep
	StageBand        = "scan/band"        // one band of the parallel sweep
	StageStitch      = "scan/stitch"      // seam stitching
	StageExtract     = "extract"          // pipeline driver
	StageHextPlan    = "hext/plan"        // window subdivision front end
	StageHextLeaf    = "hext/leaf"        // leaf window sweep
	StageHextCompose = "hext/compose"     // window compose
	StageHextFlatten = "hext/flatten"     // window-DAG flattening

	// StageCheck is the static electrical-rule checker. It is not a
	// fault-injection point (the checker is a pure post-pass), so it is
	// absent from Stages; it exists for diagnostic attribution.
	StageCheck = "check"
)

// Stages lists every injection point the fault matrix exercises, in
// pipeline order.
var Stages = []string{
	StageParse, StageFrontend, StageArena, StageStamp, StagePrepass,
	StageSweep, StageBand, StageStitch, StageExtract,
	StageHextPlan, StageHextLeaf, StageHextCompose, StageHextFlatten,
}

// PanicError is a panic captured by a recover wrapper: the stage it
// happened in, the panic value and the goroutine stack at the point of
// the panic.
type PanicError struct {
	Stage string
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("%s: panic: %v", e.Stage, e.Value)
}

// StageError attributes an underlying error (cancellation, deadline,
// injected fault) to a pipeline stage.
type StageError struct {
	Stage string
	Err   error
}

func (e *StageError) Error() string { return e.Stage + ": " + e.Err.Error() }
func (e *StageError) Unwrap() error { return e.Err }

// abortPanic carries an error up a deep recursion as a panic; Recover
// unwraps it back to the error instead of wrapping it in a PanicError.
// It is how the hext flattener unwinds mid-recursion on cancellation.
type abortPanic struct{ err error }

// Abort panics with err in a form Recover converts back into err
// itself (not a PanicError). Use it to unwind deep recursion where
// threading an error return through every frame is not practical.
func Abort(err error) { panic(abortPanic{err}) }

// Recover is the deferred half of a recover wrapper:
//
//	defer guard.Recover(guard.StageSweep, &err)
//
// A panic in the guarded function becomes a *PanicError in *errp
// (carrying the captured stack), except aborts raised via Abort, which
// restore their original error. If *errp is already set it is kept.
func Recover(stage string, errp *error) {
	r := recover()
	if r == nil {
		return
	}
	if *errp != nil {
		return
	}
	if a, ok := r.(abortPanic); ok {
		*errp = a.err
		return
	}
	buf := make([]byte, 16<<10)
	buf = buf[:runtime.Stack(buf, false)]
	*errp = &PanicError{Stage: stage, Value: r, Stack: buf}
}

// Run executes f under a recover wrapper, converting panics into
// *PanicError attributed to stage. This is the standard body of a
// worker-pool goroutine.
func Run(stage string, f func() error) (err error) {
	defer Recover(stage, &err)
	return f()
}

// Ctx reports a stage-attributed error when ctx has been cancelled or
// timed out, and nil otherwise. A nil ctx never errors, so unplumbed
// callers pay only a nil check.
func Ctx(ctx context.Context, stage string) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return &StageError{Stage: stage, Err: err}
	}
	return nil
}

// WaitGoroutines polls until the process goroutine count drops to at
// most base, returning the last observed count and whether the bound
// was reached. Tests use it as a stdlib-only leak checker: workers
// that are mid-unwind when an extraction returns get a grace period to
// exit, but a genuinely leaked goroutine fails the bound.
func WaitGoroutines(base int, timeout time.Duration) (int, bool) {
	deadline := time.Now().Add(timeout)
	for {
		n := runtime.NumGoroutine()
		if n <= base {
			return n, true
		}
		if time.Now().After(deadline) {
			return n, false
		}
		time.Sleep(time.Millisecond)
	}
}
