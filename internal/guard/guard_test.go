package guard

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestRunConvertsPanic(t *testing.T) {
	err := Run(StageSweep, func() error { panic("boom") })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v, want *PanicError", err)
	}
	if pe.Stage != StageSweep {
		t.Fatalf("stage %q, want %q", pe.Stage, StageSweep)
	}
	if pe.Value != "boom" {
		t.Fatalf("value %v, want boom", pe.Value)
	}
	if !strings.Contains(string(pe.Stack), "guard_test.go") {
		t.Fatalf("stack does not point at the panic site:\n%s", pe.Stack)
	}
}

func TestRunPassesErrorThrough(t *testing.T) {
	want := errors.New("plain failure")
	if err := Run(StageSweep, func() error { return want }); err != want {
		t.Fatalf("got %v, want %v", err, want)
	}
	if err := Run(StageSweep, func() error { return nil }); err != nil {
		t.Fatalf("got %v, want nil", err)
	}
}

func TestAbortUnwindsToOriginalError(t *testing.T) {
	want := &StageError{Stage: StageHextFlatten, Err: context.Canceled}
	err := Run(StageHextLeaf, func() error {
		// Abort from deep inside: Recover must restore the original
		// error, not wrap it in a PanicError.
		Abort(want)
		return nil
	})
	if err != want {
		t.Fatalf("got %v, want the aborted error", err)
	}
}

func TestRecoverKeepsExistingError(t *testing.T) {
	want := errors.New("first failure wins")
	var err error
	func() {
		defer Recover(StageSweep, &err)
		err = want
		panic("late panic")
	}()
	if err != want {
		t.Fatalf("got %v, want %v", err, want)
	}
}

func TestCtx(t *testing.T) {
	if err := Ctx(nil, StageSweep); err != nil {
		t.Fatalf("nil ctx errored: %v", err)
	}
	if err := Ctx(context.Background(), StageSweep); err != nil {
		t.Fatalf("live ctx errored: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Ctx(ctx, StageBand)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled through the wrapper", err)
	}
	var se *StageError
	if !errors.As(err, &se) || se.Stage != StageBand {
		t.Fatalf("got %v, want *StageError at %q", err, StageBand)
	}
}

func TestLimitsZeroValueUnlimited(t *testing.T) {
	var l Limits
	if err := l.CheckBoxes(StageSweep, 1<<50); err != nil {
		t.Fatalf("zero-value MaxBoxes tripped: %v", err)
	}
	if err := l.CheckExpanded(StageArena, 1<<50); err != nil {
		t.Fatalf("zero-value MaxExpandedBoxes tripped: %v", err)
	}
	if err := l.CheckMem(StageArena, 1<<50); err != nil {
		t.Fatalf("zero-value MaxMemBytes tripped: %v", err)
	}
	if l.Depth() != DefaultMaxDepth {
		t.Fatalf("Depth() = %d, want default %d", l.Depth(), DefaultMaxDepth)
	}
}

func TestLimitsExceeded(t *testing.T) {
	l := Limits{MaxBoxes: 10, MaxExpandedBoxes: 20, MaxDepth: 5, MaxMemBytes: 30}
	if err := l.CheckBoxes(StageSweep, 10); err != nil {
		t.Fatalf("at the limit must pass: %v", err)
	}
	err := l.CheckBoxes(StageSweep, 11)
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("got %v, want *LimitError", err)
	}
	if le.Stage != StageSweep || le.What != "boxes" || le.Value != 11 || le.Limit != 10 {
		t.Fatalf("bad fields: %+v", le)
	}
	if err := l.CheckExpanded(StageArena, 21); !errors.As(err, &le) || le.What != "expanded boxes" {
		t.Fatalf("expanded: got %v", err)
	}
	if err := l.CheckMem(StageStamp, 31); !errors.As(err, &le) || le.What != "memory bytes" {
		t.Fatalf("mem: got %v", err)
	}
	if l.Depth() != 5 {
		t.Fatalf("Depth() = %d, want 5", l.Depth())
	}
}

func TestInjectNoInjector(t *testing.T) {
	restore := SetInjector(nil)
	defer restore()
	for _, s := range Stages {
		if err := Inject(s); err != nil {
			t.Fatalf("stage %s errored with no injector: %v", s, err)
		}
	}
}

func TestFailpointSkipAndCounts(t *testing.T) {
	fp := &Failpoint{Stage: StageSweep, Kind: FaultError, Skip: 2}
	restore := SetInjector(fp)
	defer restore()

	if err := Inject(StageBand); err != nil {
		t.Fatalf("other stage fired: %v", err)
	}
	if err := Inject(StageSweep); err != nil {
		t.Fatalf("hit 1 fired despite Skip=2: %v", err)
	}
	if err := Inject(StageSweep); err != nil {
		t.Fatalf("hit 2 fired despite Skip=2: %v", err)
	}
	err := Inject(StageSweep)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("hit 3: got %v, want ErrInjected", err)
	}
	var se *StageError
	if !errors.As(err, &se) || se.Stage != StageSweep {
		t.Fatalf("injected error not stage-attributed: %v", err)
	}
	if fp.Hits() != 3 || fp.Fired() != 1 {
		t.Fatalf("hits=%d fired=%d, want 3/1", fp.Hits(), fp.Fired())
	}
}

func TestFailpointPanicKind(t *testing.T) {
	fp := &Failpoint{Stage: StageStamp, Kind: FaultPanic}
	restore := SetInjector(fp)
	defer restore()

	err := Run(StageStamp, func() error { return Inject(StageStamp) })
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Stage != StageStamp {
		t.Fatalf("got %v, want *PanicError at %q", err, StageStamp)
	}
}

func TestFailpointDelayKind(t *testing.T) {
	fp := &Failpoint{Stage: StageSweep, Kind: FaultDelay, Delay: 20 * time.Millisecond}
	restore := SetInjector(fp)
	defer restore()

	t0 := time.Now()
	if err := Inject(StageSweep); err != nil {
		t.Fatalf("delay kind errored: %v", err)
	}
	if d := time.Since(t0); d < 20*time.Millisecond {
		t.Fatalf("slept %v, want >= 20ms", d)
	}
}

func TestSetInjectorRestore(t *testing.T) {
	a := &Failpoint{Stage: StageSweep, Kind: FaultError}
	restoreA := SetInjector(a)
	b := &Failpoint{Stage: StageSweep, Kind: FaultError, Skip: 1 << 30}
	restoreB := SetInjector(b)
	if err := Inject(StageSweep); err != nil {
		t.Fatalf("b should not fire: %v", err)
	}
	restoreB()
	if err := Inject(StageSweep); err == nil {
		t.Fatal("a restored but did not fire")
	}
	restoreA()
	if err := Inject(StageSweep); err != nil {
		t.Fatalf("injector not cleared: %v", err)
	}
}
