package guard

import "fmt"

// Limits are the pipeline's resource budgets. The zero value of every
// field means "unlimited" except MaxDepth, whose effective default is
// DefaultMaxDepth — an unbounded call hierarchy is never legitimate
// (the CIF parser rejects cycles, but the front end also accepts
// synthesised symbol tables and must terminate on its own).
//
// The budgets are enforced where the memory is actually committed:
//
//   - MaxBoxes caps geometry items accepted by the CIF parser and
//     boxes entering a scanline sweep (Counters.BoxesIn), so a lazily
//     instantiated bomb fails during the sweep, not after OOM.
//   - MaxExpandedBoxes caps the boxes materialised by the
//     pre-flattener's symbol arenas — the hierarchy-bomb guard: a
//     10-level 100x fan-out fails fast while folding arenas instead of
//     exhausting memory.
//   - MaxDepth bounds the call-hierarchy depth in the front end.
//   - MaxMemBytes is an approximate budget on retained pipeline
//     memory: arena bytes, materialised box slices and the streamed
//     ingest's published runs, plus the sweep's active lists and
//     builder elements.
type Limits struct {
	MaxBoxes         int64
	MaxExpandedBoxes int64
	MaxDepth         int
	MaxMemBytes      int64

	// MaxConcurrent caps units of work admitted concurrently (0:
	// unlimited). Unlike the other budgets it is enforced by a
	// stateful admission Gate (see NewGate) rather than a pure check,
	// because concurrency is a property of the set of in-flight work,
	// not of one request; CheckConcurrent exists for callers that
	// track their own count.
	MaxConcurrent int
}

// DefaultMaxDepth is the call-hierarchy depth applied when
// Limits.MaxDepth is zero. Real designs run a few dozen levels;
// 100,000 is far beyond any legitimate hierarchy yet still terminates
// instantly, so the default only exists to reject cycles-by-another-
// name (hierarchies deep enough to be hostile) without a config knob.
const DefaultMaxDepth = 100000

// Depth returns the effective depth bound.
func (l Limits) Depth() int {
	if l.MaxDepth > 0 {
		return l.MaxDepth
	}
	return DefaultMaxDepth
}

// BoxBytes is the approximate retained size of one materialised box
// (layer + rect + padding) used by the MaxMemBytes accounting.
const BoxBytes = 40

// CheckBoxes reports a LimitError when n exceeds the MaxBoxes budget.
func (l Limits) CheckBoxes(stage string, n int64) error {
	if l.MaxBoxes > 0 && n > l.MaxBoxes {
		return &LimitError{Stage: stage, What: "boxes", Value: n, Limit: l.MaxBoxes}
	}
	return nil
}

// CheckExpanded reports a LimitError when n materialised boxes exceed
// the MaxExpandedBoxes budget.
func (l Limits) CheckExpanded(stage string, n int64) error {
	if l.MaxExpandedBoxes > 0 && n > l.MaxExpandedBoxes {
		return &LimitError{Stage: stage, What: "expanded boxes", Value: n, Limit: l.MaxExpandedBoxes}
	}
	return nil
}

// CheckMem reports a LimitError when approximately n retained bytes
// exceed the MaxMemBytes budget.
func (l Limits) CheckMem(stage string, n int64) error {
	if l.MaxMemBytes > 0 && n > l.MaxMemBytes {
		return &LimitError{Stage: stage, What: "memory bytes", Value: n, Limit: l.MaxMemBytes}
	}
	return nil
}

// LimitError reports an exceeded resource budget.
type LimitError struct {
	Stage string
	What  string
	Value int64
	Limit int64
}

func (e *LimitError) Error() string {
	return fmt.Sprintf("%s: %s limit exceeded: %d > %d", e.Stage, e.What, e.Value, e.Limit)
}
