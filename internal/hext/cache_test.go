package hext

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"
	"time"

	"ace/internal/cif"
	"ace/internal/gen"
	"ace/internal/wirelist"
)

func flatWirelist(t *testing.T, res *Result) string {
	t.Helper()
	var buf bytes.Buffer
	if err := wirelist.Write(&buf, res.Netlist, wirelist.Options{}); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// The reuse-sweep workload: 64 replicated instances whose windows all
// differ (varying margins defeat the memo table), but whose anchored
// contents repeat. The content cache must collapse the leaf sweeps to
// the number of distinct contents while the netlist stays equivalent
// to flat ACE.
func TestContentCacheHits(t *testing.T) {
	w := gen.Replicated(64)
	hres, _ := hextVsACE(t, w.Name, w.File, Options{})
	if got := len(hres.Netlist.Devices); got != w.WantDevices {
		t.Fatalf("devices %d, want %d", got, w.WantDevices)
	}
	if got := len(hres.Netlist.Nets); got != w.WantNets {
		t.Fatalf("nets %d, want %d", got, w.WantNets)
	}
	c := hres.Counters
	if c.LeafSweeps != c.CacheMisses {
		t.Fatalf("LeafSweeps %d != CacheMisses %d with cache enabled (%+v)",
			c.LeafSweeps, c.CacheMisses, c)
	}
	if c.CacheHits == 0 {
		t.Fatalf("no cache hits on 64 replicated instances: %+v", c)
	}
	// Leaf sweeps are bounded by the number of *distinct* window
	// contents — the cell content plus empty/rail margins — not by the
	// number of flat calls (one per window).
	if c.LeafSweeps >= c.FlatCalls {
		t.Fatalf("cache shared nothing: sweeps %d, flat calls %d (%+v)",
			c.LeafSweeps, c.FlatCalls, c)
	}
	if c.LeafSweeps > 8 {
		t.Fatalf("too many distinct sweeps for a replicated row: %d (%+v)", c.LeafSweeps, c)
	}
	if c.CacheBytes <= 0 {
		t.Fatalf("cache byte gauge not recorded: %+v", c)
	}
}

// With the cache disabled every flat call sweeps.
func TestCacheDisabled(t *testing.T) {
	w := gen.Replicated(16)
	hres, _ := hextVsACE(t, "replicatedNoCache", w.File, Options{CacheSize: -1})
	c := hres.Counters
	if c.CacheHits != 0 || c.CacheMisses != 0 || c.CacheBytes != 0 {
		t.Fatalf("cache counters moved while disabled: %+v", c)
	}
	if c.LeafSweeps != c.FlatCalls {
		t.Fatalf("LeafSweeps %d != FlatCalls %d with cache disabled (%+v)",
			c.LeafSweeps, c.FlatCalls, c)
	}
}

// A pathologically small cache must evict but never corrupt results.
func TestCacheEvictionCorrectness(t *testing.T) {
	w := gen.Memory(6, 6)
	hres, _ := hextVsACE(t, "memoryTinyCache", w.File, Options{CacheSize: 2})
	if got := len(hres.Netlist.Devices); got != w.WantDevices {
		t.Fatalf("devices %d, want %d", got, w.WantDevices)
	}
	ref, err := Extract(w.File, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a, b := flatWirelist(t, hres), flatWirelist(t, ref); a != b {
		t.Fatal("tiny-cache wirelist differs from default-cache wirelist")
	}
}

// The promise the DAG scheduler makes: the output is byte-identical at
// every worker count and cache configuration — flat wirelist and
// hierarchical wirelist both.
func TestParallelByteIdentical(t *testing.T) {
	workloads := []struct {
		name string
		file *cif.File
		base Options
	}{
		{"replicated", gen.Replicated(48).File, Options{}},
		{"memory", gen.Memory(8, 8).File, Options{}},
		// MaxLeafItems 4 forces cuts through channels: partial
		// transistors cross the parallel compose path.
		{"mesh", gen.Mesh(5).File, Options{MaxLeafItems: 4}},
		{"statistical", gen.Statistical(600, 7).File, Options{MaxLeafItems: 60}},
	}
	for _, w := range workloads {
		serial := w.base
		serial.Workers = 1
		ref, err := Extract(w.file, serial)
		if err != nil {
			t.Fatalf("%s: serial: %v", w.name, err)
		}
		refFlat := flatWirelist(t, ref)
		refHier := ref.HierarchicalString()
		for _, v := range []struct {
			tag     string
			workers int
			cache   int
		}{
			{"workers=4", 4, 0},
			{"workers=8", 8, 0},
			{"workers=4,nocache", 4, -1},
			{"workers=4,cache=3", 4, 3},
			{"serial,nocache", 1, -1},
		} {
			opt := w.base
			opt.Workers = v.workers
			opt.CacheSize = v.cache
			res, err := Extract(w.file, opt)
			if err != nil {
				t.Fatalf("%s/%s: %v", w.name, v.tag, err)
			}
			if got := flatWirelist(t, res); got != refFlat {
				t.Fatalf("%s/%s: flat wirelist differs from serial run", w.name, v.tag)
			}
			if got := res.HierarchicalString(); got != refHier {
				t.Fatalf("%s/%s: hierarchical wirelist differs from serial run", w.name, v.tag)
			}
			if len(res.Warnings) != len(ref.Warnings) {
				t.Fatalf("%s/%s: warning count %d != serial %d",
					w.name, v.tag, len(res.Warnings), len(ref.Warnings))
			}
		}
	}
}

// Parallel execution must not repeat sweeps: the single-flight cache
// keeps LeafSweeps equal to the number of distinct contents even when
// workers race to the same entry.
func TestParallelSingleFlight(t *testing.T) {
	w := gen.Replicated(64)
	serial, err := Extract(w.File, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Extract(w.File, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if par.Counters.LeafSweeps != serial.Counters.LeafSweeps {
		t.Fatalf("parallel ran %d sweeps, serial %d — single-flight broken",
			par.Counters.LeafSweeps, serial.Counters.LeafSweeps)
	}
	if par.Counters.CacheHits != serial.Counters.CacheHits {
		t.Fatalf("parallel hits %d != serial hits %d",
			par.Counters.CacheHits, serial.Counters.CacheHits)
	}
}

// TestParallelSpeedup measures the DAG scheduler's wall-clock win on a
// sweep-dominated workload. On a single-core host there is nothing to
// measure, so the assertion is skipped — with an explicit log line, as
// the benchmark protocol requires.
func TestParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping timing test in -short mode")
	}
	if n := runtime.NumCPU(); n < 2 {
		t.Skipf("only one core available (NumCPU=%d): skipping parallel-speedup assertion", n)
	}
	// Distinct random contents defeat both memo table and cache, so the
	// back-end has real concurrent sweeps to schedule.
	w := gen.Statistical(4000, 3)
	run := func(workers int) time.Duration {
		best := time.Duration(1<<63 - 1)
		for i := 0; i < 3; i++ {
			t0 := time.Now()
			if _, err := Extract(w.File, Options{Workers: workers, MaxLeafItems: 200, DisableMemo: true}); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(t0); d < best {
				best = d
			}
		}
		return best
	}
	serial := run(1)
	par := run(4)
	// Demand a real win on ≥4 cores; on 2–3 cores just demand that
	// parallel execution is not slower.
	limit := serial
	if runtime.NumCPU() >= 4 {
		limit = serial * 9 / 10
	}
	if par > limit {
		t.Fatalf("no parallel speedup: serial %v, 4 workers %v (NumCPU=%d)",
			serial, par, runtime.NumCPU())
	}
}

// BenchmarkHext is the reuse sweep of the hierarchical benchmark:
// replicating the same cell 1×, 8× and 64× should grow extraction cost
// far slower than linearly while the content cache absorbs the leaf
// sweeps. Worker and no-cache variants quantify the DAG scheduler and
// the memoisation separately.
func BenchmarkHext(b *testing.B) {
	for _, reps := range []int{1, 8, 64} {
		w := gen.Replicated(reps)
		for _, v := range []struct {
			tag string
			opt Options
		}{
			{"workers=1", Options{Workers: 1}},
			{"workers=4", Options{Workers: 4}},
			{"nocache", Options{Workers: 1, CacheSize: -1}},
		} {
			b.Run(fmt.Sprintf("reps=%d/%s", reps, v.tag), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res, err := Extract(w.File, v.opt)
					if err != nil {
						b.Fatal(err)
					}
					if len(res.Netlist.Devices) != w.WantDevices {
						b.Fatalf("devices %d, want %d", len(res.Netlist.Devices), w.WantDevices)
					}
				}
			})
		}
	}
}
