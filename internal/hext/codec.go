package hext

import (
	"encoding/binary"
	"errors"
	"fmt"

	"ace/internal/geom"
	"ace/internal/netlist"
	"ace/internal/tech"
)

// This file is the versioned binary encoding behind the persistent
// cache (internal/store): leaf-sweep entries (an anchored netlist plus
// its warnings) and whole winResult trees (the window DAG under one
// memo key, children embedded and deduplicated). The store layer
// already guarantees the bytes are exactly what a previous run wrote
// for exactly this key — magic, version, full key and checksum are
// verified there — but the decoders still bounds-check every read and
// validate every cross-reference, so even a hostile cache file can
// only produce a decode error (a miss, recomputed), never a panic or
// a wrong netlist.

// Payload format versions, separate from the store's container
// version: bump when the encodings below change shape.
const (
	sweepPayloadVersion = 1
	winPayloadVersion   = 1
)

var errCodec = errors.New("hext: cache payload damaged")

// --- encoder ---

type encBuf struct{ b []byte }

func (e *encBuf) u8(v byte) { e.b = append(e.b, v) }
func (e *encBuf) uvarint(v uint64) {
	e.b = binary.AppendUvarint(e.b, v)
}
func (e *encBuf) varint(v int64) {
	e.b = binary.AppendVarint(e.b, v)
}
func (e *encBuf) str(s string) {
	e.uvarint(uint64(len(s)))
	e.b = append(e.b, s...)
}
func (e *encBuf) point(p geom.Point) {
	e.varint(p.X)
	e.varint(p.Y)
}
func (e *encBuf) rect(r geom.Rect) {
	e.varint(r.XMin)
	e.varint(r.YMin)
	e.varint(r.XMax)
	e.varint(r.YMax)
}

// --- decoder ---

// decBuf reads the encoding back with a sticky error: after any
// malformed read every subsequent read returns zero values, so decode
// routines can run straight through and check err once.
type decBuf struct {
	b   []byte
	off int
	err error
}

func (d *decBuf) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s", errCodec, what)
	}
}

func (d *decBuf) u8() byte {
	if d.err != nil || d.off >= len(d.b) {
		d.fail("u8 past end")
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *decBuf) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad uvarint")
		return 0
	}
	d.off += n
	return v
}

func (d *decBuf) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad varint")
		return 0
	}
	d.off += n
	return v
}

// count reads a collection length and rejects values that could not
// possibly fit in the remaining bytes (each element costs at least
// one byte), so corrupt lengths cannot drive huge allocations.
func (d *decBuf) count() int {
	v := d.uvarint()
	if d.err != nil {
		return 0
	}
	if v > uint64(len(d.b)-d.off) {
		d.fail("count exceeds payload")
		return 0
	}
	return int(v)
}

func (d *decBuf) str() string {
	n := d.count()
	if d.err != nil || d.off+n > len(d.b) {
		d.fail("string past end")
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

func (d *decBuf) point() geom.Point {
	return geom.Point{X: d.varint(), Y: d.varint()}
}

func (d *decBuf) rect() geom.Rect {
	return geom.Rect{XMin: d.varint(), YMin: d.varint(), XMax: d.varint(), YMax: d.varint()}
}

func (d *decBuf) done() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return fmt.Errorf("%w: %d trailing bytes", errCodec, len(d.b)-d.off)
	}
	return nil
}

// --- netlist ---

func encodeNetlist(e *encBuf, nl *netlist.Netlist) {
	e.str(nl.Name)
	e.uvarint(uint64(len(nl.Nets)))
	for i := range nl.Nets {
		n := &nl.Nets[i]
		e.uvarint(uint64(len(n.Names)))
		for _, nm := range n.Names {
			e.str(nm)
		}
		e.point(n.Location)
		e.uvarint(uint64(len(n.Geometry)))
		for _, g := range n.Geometry {
			e.u8(byte(g.Layer))
			e.rect(g.Rect)
		}
	}
	e.uvarint(uint64(len(nl.Devices)))
	for i := range nl.Devices {
		d := &nl.Devices[i]
		e.u8(byte(d.Type))
		e.varint(int64(d.Gate))
		e.varint(int64(d.Source))
		e.varint(int64(d.Drain))
		e.varint(d.Length)
		e.varint(d.Width)
		e.varint(d.Area)
		e.varint(d.ImplArea)
		e.point(d.Location)
		e.uvarint(uint64(len(d.Terminals)))
		for _, t := range d.Terminals {
			e.varint(int64(t.Net))
			e.varint(t.Edge)
		}
		e.uvarint(uint64(len(d.Geometry)))
		for _, r := range d.Geometry {
			e.rect(r)
		}
	}
}

// decodeNetlist rebuilds a netlist, validating that every net index a
// device carries points inside the net table — the flattener indexes
// by them unconditionally.
func decodeNetlist(d *decBuf) *netlist.Netlist {
	nl := &netlist.Netlist{Name: d.str()}
	nNets := d.count()
	if d.err != nil {
		return nl
	}
	nl.Nets = make([]netlist.Net, nNets)
	for i := range nl.Nets {
		n := &nl.Nets[i]
		if c := d.count(); c > 0 {
			n.Names = make([]string, c)
			for j := range n.Names {
				n.Names[j] = d.str()
			}
		}
		n.Location = d.point()
		if c := d.count(); c > 0 {
			n.Geometry = make([]netlist.LayerRect, c)
			for j := range n.Geometry {
				n.Geometry[j] = netlist.LayerRect{Layer: tech.Layer(d.u8()), Rect: d.rect()}
			}
		}
		if d.err != nil {
			return nl
		}
	}
	nDevs := d.count()
	if d.err != nil {
		return nl
	}
	netIdx := func(v int64) int {
		if v < 0 || v >= int64(nNets) {
			d.fail("device net index out of range")
			return 0
		}
		return int(v)
	}
	nl.Devices = make([]netlist.Device, nDevs)
	for i := range nl.Devices {
		dev := &nl.Devices[i]
		dev.Type = tech.DeviceType(d.u8())
		dev.Gate = netIdx(d.varint())
		dev.Source = netIdx(d.varint())
		dev.Drain = netIdx(d.varint())
		dev.Length = d.varint()
		dev.Width = d.varint()
		dev.Area = d.varint()
		dev.ImplArea = d.varint()
		dev.Location = d.point()
		if c := d.count(); c > 0 {
			dev.Terminals = make([]netlist.Terminal, c)
			for j := range dev.Terminals {
				dev.Terminals[j] = netlist.Terminal{Net: netIdx(d.varint()), Edge: d.varint()}
			}
		}
		if c := d.count(); c > 0 {
			dev.Geometry = make([]geom.Rect, c)
			for j := range dev.Geometry {
				dev.Geometry[j] = d.rect()
			}
		}
		if d.err != nil {
			return nl
		}
	}
	return nl
}

// --- leaf-sweep entries (the disk tier under the content cache) ---

// encodeSweep serialises one content-addressed leaf sweep: the
// anchored netlist, the sweep warnings and the geometry count. The
// encoding is appended to dst[:0] (which may be nil), so a caller in a
// loop reuses one buffer; the returned slice is valid until that
// buffer's next use.
func encodeSweep(dst []byte, nl *netlist.Netlist, warnings []string, boxes int) []byte {
	if cap(dst) == 0 {
		dst = make([]byte, 0, 256)
	}
	e := &encBuf{b: dst[:0]}
	e.u8(sweepPayloadVersion)
	encodeNetlist(e, nl)
	e.uvarint(uint64(len(warnings)))
	for _, w := range warnings {
		e.str(w)
	}
	e.uvarint(uint64(boxes))
	return e.b
}

func decodeSweep(payload []byte) (nl *netlist.Netlist, warnings []string, boxes int, err error) {
	d := &decBuf{b: payload}
	if v := d.u8(); v != sweepPayloadVersion {
		return nil, nil, 0, fmt.Errorf("%w: sweep payload version %d", errCodec, v)
	}
	nl = decodeNetlist(d)
	if c := d.count(); c > 0 {
		warnings = make([]string, c)
		for i := range warnings {
			warnings[i] = d.str()
		}
	}
	boxes = int(d.uvarint())
	if err := d.done(); err != nil {
		return nil, nil, 0, err
	}
	return nl, warnings, boxes, nil
}

// --- winResult trees (the disk tier under the window memo) ---

const (
	nodeTagLeaf = 0
	nodeTagComp = 1
)

// encodeWinTree serialises the complete result DAG under root as a
// flat record list in first-visit post-order (child 0's subtree,
// child 1's, then the node), deduplicated by pointer. That order is
// exactly the order the planner assigns window ids in, so a fresh
// session decoding the tree reproduces the cold run's ids — and with
// them the hierarchical wirelist — byte for byte. Each record carries
// the node's window memo key (when known), so a decoder holding some
// of the windows in memory already can graft the stored tree onto its
// memo instead of duplicating shared subtrees.
//
// Like encodeSweep, the record list is appended to dst[:0]; the
// returned slice is valid until that buffer's next use.
func encodeWinTree(dst []byte, root *winResult, keyOf func(*winResult) string) []byte {
	var order []*winResult
	index := map[*winResult]int{}
	var walk func(r *winResult)
	walk = func(r *winResult) {
		if _, seen := index[r]; seen {
			return
		}
		if r.comp != nil {
			walk(r.comp.kids[0])
			walk(r.comp.kids[1])
		}
		index[r] = len(order)
		order = append(order, r)
	}
	walk(root)

	if cap(dst) == 0 {
		dst = make([]byte, 0, 1024)
	}
	e := &encBuf{b: dst[:0]}
	e.u8(winPayloadVersion)
	e.uvarint(uint64(len(order)))
	encodeRef := func(rf ref) {
		e.u8(byte(rf.child))
		e.varint(int64(rf.idx))
	}
	for _, r := range order {
		if keyOf != nil {
			e.str(keyOf(r))
		} else {
			e.str("")
		}
		if r.leaf != nil {
			e.u8(nodeTagLeaf)
		} else {
			e.u8(nodeTagComp)
		}
		e.varint(r.w)
		e.varint(r.h)
		e.uvarint(uint64(r.insts))
		e.varint(int64(r.netCount))
		e.varint(int64(r.partCount))
		e.uvarint(uint64(len(r.edges)))
		for _, eg := range r.edges {
			e.u8(byte(eg.layer))
			e.u8(byte(eg.face))
			e.varint(eg.lo)
			e.varint(eg.hi)
			e.varint(int64(eg.ref))
		}
		if r.leaf != nil {
			e.point(r.leaf.anchor)
			e.uvarint(uint64(r.leaf.boxes))
			e.uvarint(uint64(len(r.leaf.partDevs)))
			for _, di := range r.leaf.partDevs {
				e.varint(int64(di))
			}
			encodeNetlist(e, r.leaf.nl)
		} else {
			c := r.comp
			e.uvarint(uint64(index[c.kids[0]]))
			e.uvarint(uint64(index[c.kids[1]]))
			e.point(c.at[0])
			e.point(c.at[1])
			e.uvarint(uint64(len(c.netEquivs)))
			for _, eq := range c.netEquivs {
				encodeRef(eq[0])
				encodeRef(eq[1])
			}
			e.uvarint(uint64(len(c.partEquivs)))
			for _, eq := range c.partEquivs {
				encodeRef(eq[0])
				encodeRef(eq[1])
			}
			e.uvarint(uint64(len(c.partTerms)))
			for _, pt := range c.partTerms {
				encodeRef(pt.part)
				encodeRef(pt.net)
				e.varint(pt.edge)
			}
			e.uvarint(uint64(len(c.parentNets)))
			for _, rf := range c.parentNets {
				encodeRef(rf)
			}
			e.uvarint(uint64(len(c.parentParts)))
			for _, rf := range c.parentParts {
				encodeRef(rf)
			}
		}
	}
	return e.b
}

// decodeWinTree rebuilds a result DAG, assigning fresh ids through
// nextID in record order (= the planner's post-order). Records whose
// embedded memo key is already resolved by lookup reuse the existing
// in-memory result instead of a duplicate; freshly built keyed nodes
// are reported through adopt (after the whole payload has validated),
// so the caller can publish them into its memo. Every cross-reference
// is validated: child indices must point at earlier records, refs
// must address existing child nets/partials, and leaf partial slots
// must address existing devices — so a decoded tree can be flattened
// without any index panic. lookup and adopt may be nil.
func decodeWinTree(payload []byte, lookup func(string) (*winResult, bool),
	adopt func(string, *winResult), nextID func() int) (*winResult, error) {
	d := &decBuf{b: payload}
	if v := d.u8(); v != winPayloadVersion {
		return nil, fmt.Errorf("%w: win payload version %d", errCodec, v)
	}
	n := d.count()
	if d.err != nil {
		return nil, d.err
	}
	if n == 0 {
		return nil, fmt.Errorf("%w: empty tree", errCodec)
	}
	type freshNode struct {
		key string
		r   *winResult
	}
	nodes := make([]*winResult, 0, n)
	var fresh []freshNode
	for i := 0; i < n; i++ {
		key := d.str()
		tag := d.u8()
		r := &winResult{
			w: d.varint(), h: d.varint(),
			insts:    int64(d.uvarint()),
			netCount: int(d.varint()), partCount: int(d.varint()),
		}
		if r.netCount < 0 || r.partCount < 0 {
			d.fail("negative counts")
		}
		if c := d.count(); c > 0 {
			r.edges = make([]edge, c)
			for j := range r.edges {
				eg := edge{
					layer: elayer(d.u8()), face: face(d.u8()),
					lo: d.varint(), hi: d.varint(), ref: int32(d.varint()),
				}
				if eg.layer < eMetal || eg.layer > eChan || eg.face < faceL || eg.face >= numFaces {
					d.fail("edge enum out of range")
				}
				refMax := int32(r.netCount)
				if eg.layer == eChan {
					refMax = int32(r.partCount)
				}
				if eg.ref < 0 || eg.ref >= refMax {
					d.fail("edge ref out of range")
				}
				r.edges[j] = eg
			}
		}
		switch tag {
		case nodeTagLeaf:
			ld := &leafData{anchor: d.point(), boxes: int(d.uvarint())}
			if c := d.count(); c > 0 {
				ld.partDevs = make([]int, c)
				for j := range ld.partDevs {
					ld.partDevs[j] = int(d.varint())
				}
			}
			ld.nl = decodeNetlist(d)
			for _, di := range ld.partDevs {
				if di < 0 || di >= len(ld.nl.Devices) {
					d.fail("partial device index out of range")
				}
			}
			if r.netCount != len(ld.nl.Nets) || r.partCount != len(ld.partDevs) {
				d.fail("leaf counts disagree with netlist")
			}
			if r.insts != 1 {
				d.fail("leaf insts != 1")
			}
			r.leaf = ld
		case nodeTagComp:
			c := &compData{}
			k0, k1 := d.uvarint(), d.uvarint()
			if d.err == nil && (k0 >= uint64(len(nodes)) || k1 >= uint64(len(nodes))) {
				d.fail("child index out of range")
			}
			if d.err != nil {
				return nil, d.err
			}
			c.kids[0], c.kids[1] = nodes[k0], nodes[k1]
			c.at[0] = d.point()
			c.at[1] = d.point()
			decodeRef := func(counts func(*winResult) int) ref {
				rf := ref{child: int8(d.u8()), idx: int32(d.varint())}
				if rf.child < 0 || rf.child > 1 {
					d.fail("ref child out of range")
					return ref{}
				}
				if d.err == nil && (rf.idx < 0 || rf.idx >= int32(counts(c.kids[rf.child]))) {
					d.fail("ref idx out of range")
				}
				return rf
			}
			nets := func(w *winResult) int { return w.netCount }
			parts := func(w *winResult) int { return w.partCount }
			if cnt := d.count(); cnt > 0 {
				c.netEquivs = make([][2]ref, cnt)
				for j := range c.netEquivs {
					c.netEquivs[j] = [2]ref{decodeRef(nets), decodeRef(nets)}
				}
			}
			if cnt := d.count(); cnt > 0 {
				c.partEquivs = make([][2]ref, cnt)
				for j := range c.partEquivs {
					c.partEquivs[j] = [2]ref{decodeRef(parts), decodeRef(parts)}
				}
			}
			if cnt := d.count(); cnt > 0 {
				c.partTerms = make([]partTerm, cnt)
				for j := range c.partTerms {
					c.partTerms[j] = partTerm{
						part: decodeRef(parts), net: decodeRef(nets), edge: d.varint(),
					}
				}
			}
			if cnt := d.count(); cnt > 0 {
				c.parentNets = make([]ref, cnt)
				for j := range c.parentNets {
					c.parentNets[j] = decodeRef(nets)
				}
			}
			if cnt := d.count(); cnt > 0 {
				c.parentParts = make([]ref, cnt)
				for j := range c.parentParts {
					c.parentParts[j] = decodeRef(parts)
				}
			}
			if d.err == nil && (r.netCount != len(c.parentNets) || r.partCount != len(c.parentParts)) {
				d.fail("compose counts disagree with exports")
			}
			if d.err == nil && r.insts != c.kids[0].insts+c.kids[1].insts {
				d.fail("compose insts disagree with children")
			}
			r.comp = c
		default:
			d.fail("unknown node tag")
		}
		if d.err != nil {
			return nil, d.err
		}
		// A record whose key is already resolved in memory stands for
		// the same content (keys are content-derived); reuse the live
		// result so shared subtrees stay shared across cache entries.
		if key != "" && lookup != nil {
			if ex, ok := lookup(key); ok {
				if ex.w != r.w || ex.h != r.h ||
					ex.netCount != r.netCount || ex.partCount != r.partCount {
					return nil, fmt.Errorf("%w: stored node disagrees with memo", errCodec)
				}
				nodes = append(nodes, ex)
				continue
			}
			fresh = append(fresh, freshNode{key, r})
		}
		nodes = append(nodes, r)
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	// Ids are assigned (and keyed nodes adopted) only after the whole
	// payload validated, so a rejected tree consumes none of the
	// session's id space and publishes nothing.
	for _, r := range nodes {
		if r.id == 0 {
			r.id = nextID()
		}
	}
	if adopt != nil {
		for _, f := range fresh {
			adopt(f.key, f.r)
		}
	}
	return nodes[len(nodes)-1], nil
}
