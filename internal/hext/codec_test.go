package hext

import (
	"bytes"
	"reflect"
	"testing"

	"ace/internal/geom"
	"ace/internal/netlist"
	"ace/internal/tech"
)

func TestSweepCodecRoundTrip(t *testing.T) {
	nl := &netlist.Netlist{
		Name: "leaf",
		Nets: []netlist.Net{
			{Names: []string{"vdd", "a"}, Location: geom.Pt(-3, 7), Geometry: []netlist.LayerRect{
				{Layer: tech.Metal, Rect: geom.Rect{XMin: -1, YMin: -2, XMax: 3, YMax: 4}},
			}},
			{}, // nameless, geometry-free net
		},
		Devices: []netlist.Device{
			{
				Type: tech.Depletion, Gate: 0, Source: 1, Drain: 0,
				Length: 200, Width: 400, Area: 80000, ImplArea: 80000,
				Location:  geom.Pt(10, 20),
				Terminals: []netlist.Terminal{{Net: 1, Edge: 400}, {Net: 0, Edge: 300}},
				Geometry:  []geom.Rect{{XMin: 10, YMin: 20, XMax: 12, YMax: 24}},
			},
		},
	}
	warns := []string{"w1", ""}
	payload := encodeSweep(nil, nl, warns, 42)
	gotNl, gotWarns, gotBoxes, err := decodeSweep(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotNl, nl) {
		t.Fatalf("netlist mismatch:\n got %+v\nwant %+v", gotNl, nl)
	}
	if !reflect.DeepEqual(gotWarns, warns) || gotBoxes != 42 {
		t.Fatalf("warns/boxes mismatch: %v %d", gotWarns, gotBoxes)
	}
}

// TestSweepCodecRejectsDamage: every truncation and a byte-flip sweep
// over a real payload must decode to an error or a *valid* value —
// never panic. Flips that strike content bytes may legitimately
// decode; flips that break structure must error.
func TestSweepCodecRejectsDamage(t *testing.T) {
	nl := &netlist.Netlist{Name: "x", Nets: []netlist.Net{{Names: []string{"n"}}},
		Devices: []netlist.Device{{Terminals: []netlist.Terminal{{Net: 0, Edge: 1}}}}}
	payload := encodeSweep(nil, nl, []string{"warn"}, 3)
	for cut := 0; cut < len(payload); cut++ {
		if _, _, _, err := decodeSweep(payload[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	for i := range payload {
		mut := bytes.Clone(payload)
		mut[i] ^= 0x55
		gotNl, _, _, err := decodeSweep(mut) // must not panic
		if err == nil {
			// Whatever decoded must still be internally consistent
			// enough to flatten: device net indices in range.
			for _, d := range gotNl.Devices {
				if d.Gate < 0 || d.Gate >= len(gotNl.Nets) {
					t.Fatalf("flip at %d decoded device with bad gate", i)
				}
				for _, term := range d.Terminals {
					if term.Net < 0 || term.Net >= len(gotNl.Nets) {
						t.Fatalf("flip at %d decoded bad terminal", i)
					}
				}
			}
		}
	}
}

// TestWinTreeCodecRoundTrip encodes a real extraction's result DAG and
// checks the decoded copy re-encodes to identical bytes (with fresh
// post-order ids), and that node sharing is preserved.
func TestWinTreeCodecRoundTrip(t *testing.T) {
	s := NewSession(Options{})
	res, err := s.Extract(editableChip(false))
	if err != nil {
		t.Fatal(err)
	}
	payload := encodeWinTree(nil, res.top, nil)

	ids := 0
	nextID := func() int { ids++; return ids }
	root, err := decodeWinTree(payload, nil, nil, nextID)
	if err != nil {
		t.Fatal(err)
	}
	if root.id != ids {
		t.Fatalf("root id %d, want last-assigned %d", root.id, ids)
	}
	again := encodeWinTree(nil, root, nil)
	if !bytes.Equal(payload, again) {
		t.Fatal("decoded tree re-encodes differently")
	}
	// Sharing: the decoded DAG must have exactly as many distinct
	// nodes as records were assigned ids.
	seen := map[*winResult]bool{}
	var walk func(r *winResult)
	walk = func(r *winResult) {
		if seen[r] {
			return
		}
		seen[r] = true
		if r.comp != nil {
			walk(r.comp.kids[0])
			walk(r.comp.kids[1])
		}
	}
	walk(root)
	if len(seen) != ids {
		t.Fatalf("decoded %d distinct nodes, assigned %d ids", len(seen), ids)
	}
}

// TestWinTreeCodecRejectsDamage: truncations and byte flips of a tree
// payload never panic, and whatever decodes keeps every
// cross-reference in range (so flatten cannot index out of bounds).
func TestWinTreeCodecRejectsDamage(t *testing.T) {
	s := NewSession(Options{})
	res, err := s.Extract(editableChip(false))
	if err != nil {
		t.Fatal(err)
	}
	payload := encodeWinTree(nil, res.top, nil)
	nextID := func() func() int {
		ids := 0
		return func() int { ids++; return ids }
	}
	for cut := 0; cut < len(payload); cut += 7 {
		if _, err := decodeWinTree(payload[:cut], nil, nil, nextID()); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	checkRefs := func(i int, root *winResult) {
		var walk func(r *winResult)
		seen := map[*winResult]bool{}
		walk = func(r *winResult) {
			if seen[r] {
				return
			}
			seen[r] = true
			if r.leaf != nil {
				for _, di := range r.leaf.partDevs {
					if di < 0 || di >= len(r.leaf.nl.Devices) {
						t.Fatalf("flip at %d: partial device out of range", i)
					}
				}
				return
			}
			c := r.comp
			counts := func(rf ref, nets bool) {
				kid := c.kids[rf.child]
				max := int32(kid.netCount)
				if !nets {
					max = int32(kid.partCount)
				}
				if rf.idx < 0 || rf.idx >= max {
					t.Fatalf("flip at %d: ref out of range", i)
				}
			}
			for _, eq := range c.netEquivs {
				counts(eq[0], true)
				counts(eq[1], true)
			}
			for _, eq := range c.partEquivs {
				counts(eq[0], false)
				counts(eq[1], false)
			}
			for _, pt := range c.partTerms {
				counts(pt.part, false)
				counts(pt.net, true)
			}
			for _, rf := range c.parentNets {
				counts(rf, true)
			}
			for _, rf := range c.parentParts {
				counts(rf, false)
			}
			walk(c.kids[0])
			walk(c.kids[1])
		}
		walk(root)
	}
	for i := 0; i < len(payload); i++ {
		mut := bytes.Clone(payload)
		mut[i] ^= 0x55
		root, err := decodeWinTree(mut, nil, nil, nextID()) // must not panic
		if err == nil {
			checkRefs(i, root)
		}
	}
}
