package hext

import (
	"sort"

	"ace/internal/geom"
	"ace/internal/uf"
)

// composeScratch is the per-worker scratch state for compose: seam
// edge lists, the dense union-finds over the two children's nets and
// partials, and the export tables. Everything is reset (not
// reallocated) between calls, so steady-state compose does no heap
// work beyond growing the result's own slices — the "allocation-free
// on the hot path" half of the DAG scheduler.
type composeScratch struct {
	sa, sb []edge

	netUF  uf.Forest32
	partUF uf.Forest32

	netExport  []int32 // dense element id -> parent export id, -1 unset
	partExport []int32
}

func (s *composeScratch) resetNets(n int) {
	s.netUF.Reset()
	s.netUF.Reserve(n)
	s.netUF.Grow(n)
	s.netExport = resetExport(s.netExport, n)
}

func (s *composeScratch) resetParts(n int) {
	s.partUF.Reset()
	s.partUF.Reserve(n)
	s.partUF.Grow(n)
	s.partExport = resetExport(s.partExport, n)
}

func resetExport(e []int32, n int) []int32 {
	if cap(e) < n {
		e = make([]int32, n)
	} else {
		e = e[:n]
	}
	for i := range e {
		e[i] = -1
	}
	return e
}

// compose merges two windows that came from a guillotine cut: for
// axis 'x', a is the left child and b the right child placed at x=at;
// for axis 'y', b sits at y=at. Both children span the full extent of
// the parent along the cut, so the seam is a's entire R (or T) face
// against b's entire L (or B) face.
//
// The routine implements HEXT §3's three steps: find the touching
// boundary segments, establish signal equivalences element by element,
// and compute the new window's interface by copying the surviving
// segments (cost proportional to the parent's perimeter). It is a pure
// function of the two children plus the cut, so the DAG scheduler can
// run independent composes on any worker in any order.
func (x *execCtx) compose(n *dagNode) *winResult {
	a, b := n.kids[0].res, n.kids[1].res
	axis, at, pw, ph := n.axis, n.at, n.w, n.h

	r := &winResult{id: n.id, w: pw, h: ph, insts: a.insts + b.insts}
	c := &compData{kids: [2]*winResult{a, b}}
	if axis == 'x' {
		c.at[1] = geom.Pt(at, 0)
	} else {
		c.at[1] = geom.Pt(0, at)
	}
	r.comp = c

	// Dense element ids over the two children: child 0's net i is
	// element i, child 1's net j is element a.netCount+j; likewise for
	// partials. The union-finds live in the worker scratch.
	s := &x.cs
	s.resetNets(a.netCount + b.netCount)
	s.resetParts(a.partCount + b.partCount)
	netElem := func(rf ref) int32 {
		if rf.child == 0 {
			return rf.idx
		}
		return int32(a.netCount) + rf.idx
	}
	partElem := func(rf ref) int32 {
		if rf.child == 0 {
			return rf.idx
		}
		return int32(a.partCount) + rf.idx
	}
	netRef := func(elem int32) ref {
		if elem < int32(a.netCount) {
			return ref{0, elem}
		}
		return ref{1, elem - int32(a.netCount)}
	}
	partRef := func(elem int32) ref {
		if elem < int32(a.partCount) {
			return ref{0, elem}
		}
		return ref{1, elem - int32(a.partCount)}
	}

	var seamA, seamB face
	if axis == 'x' {
		seamA, seamB = faceR, faceL
	} else {
		seamA, seamB = faceT, faceB
	}

	// Step 1+2: match seam segments and establish equivalences. Both
	// sides' seam lists are sorted by lo and joined with a sweep, so
	// the cost is proportional to the seam contents plus the matches
	// ("step through the elements of the interface-segment lists").
	sa, sb := s.sa[:0], s.sb[:0]
	for _, eg := range a.edges {
		if eg.face == seamA {
			sa = append(sa, eg)
		}
	}
	for _, eg := range b.edges {
		if eg.face == seamB {
			sb = append(sb, eg)
		}
	}
	sortEdges(sa)
	sortEdges(sb)
	s.sa, s.sb = sa, sb
	start := 0
	for _, ea := range sa {
		for start < len(sb) && sb[start].hi <= ea.lo {
			start++
		}
		for j := start; j < len(sb) && sb[j].lo < ea.hi; j++ {
			eb := sb[j]
			lo := max64(ea.lo, eb.lo)
			hi := min64(ea.hi, eb.hi)
			if hi <= lo {
				continue
			}
			x.counters.SeamMatches++
			ra := ref{0, ea.ref}
			rb := ref{1, eb.ref}
			switch {
			case ea.layer == eChan && eb.layer == eChan:
				pa, pb := partElem(ra), partElem(rb)
				if s.partUF.Find(pa) != s.partUF.Find(pb) {
					s.partUF.Union(pa, pb)
					c.partEquivs = append(c.partEquivs, [2]ref{ra, rb})
				}
			case ea.layer == eChan && eb.layer == eDiff:
				c.partTerms = append(c.partTerms, partTerm{part: ra, net: rb, edge: hi - lo})
			case ea.layer == eDiff && eb.layer == eChan:
				c.partTerms = append(c.partTerms, partTerm{part: rb, net: ra, edge: hi - lo})
			case ea.layer == eb.layer: // conducting layer contact
				na, nb := netElem(ra), netElem(rb)
				if s.netUF.Find(na) != s.netUF.Find(nb) {
					s.netUF.Union(na, nb)
					c.netEquivs = append(c.netEquivs, [2]ref{ra, rb})
				}
			}
		}
	}

	// Step 3: the parent interface is the children's non-seam edges,
	// re-based into the parent frame and re-referenced through the
	// export tables.
	exportNet := func(rf ref) int32 {
		root := s.netUF.Find(netElem(rf))
		if id := s.netExport[root]; id >= 0 {
			return id
		}
		id := int32(len(c.parentNets))
		c.parentNets = append(c.parentNets, netRef(root))
		s.netExport[root] = id
		return id
	}
	exportPart := func(rf ref) int32 {
		root := s.partUF.Find(partElem(rf))
		if id := s.partExport[root]; id >= 0 {
			return id
		}
		id := int32(len(c.parentParts))
		c.parentParts = append(c.parentParts, partRef(root))
		s.partExport[root] = id
		return id
	}

	r.edges = make([]edge, 0, len(a.edges)+len(b.edges)-len(sa)-len(sb))
	copyEdges := func(child int8, src *winResult, skip face, dx, dy int64) {
		for _, eg := range src.edges {
			if eg.face == skip {
				continue
			}
			ne := eg
			switch eg.face {
			case faceB, faceT:
				ne.lo += dx
				ne.hi += dx
			case faceL, faceR:
				ne.lo += dy
				ne.hi += dy
			}
			if eg.layer == eChan {
				ne.ref = exportPart(ref{child, eg.ref})
			} else {
				ne.ref = exportNet(ref{child, eg.ref})
			}
			r.edges = append(r.edges, ne)
		}
	}
	copyEdges(0, a, seamA, 0, 0)
	copyEdges(1, b, seamB, c.at[1].X, c.at[1].Y)

	// Faces must be re-labelled: for a vertical cut the left child's R
	// face and the right child's L face were consumed; the remaining
	// edges keep their face identity, which is already correct in the
	// parent frame (a's L is the parent's L, b's R the parent's R,
	// and B/T merge). The same holds for horizontal cuts.

	r.netCount = len(c.parentNets)
	r.partCount = len(c.parentParts)
	return r
}

func sortEdges(es []edge) {
	sort.Slice(es, func(i, j int) bool { return es[i].lo < es[j].lo })
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
