package hext

import (
	"sort"

	"ace/internal/geom"
	"ace/internal/uf"
)

// compose merges two windows that came from a guillotine cut: for
// axis 'x', a is the left child and b the right child placed at x=at;
// for axis 'y', b sits at y=at. Both children span the full extent of
// the parent along the cut, so the seam is a's entire R (or T) face
// against b's entire L (or B) face.
//
// The routine implements HEXT §3's three steps: find the touching
// boundary segments, establish signal equivalences element by element,
// and compute the new window's interface by copying the surviving
// segments (cost proportional to the parent's perimeter).
func (e *env) compose(a, b *winResult, axis byte, at int64, pw, ph int64) *winResult {
	r := &winResult{id: e.nextID(), w: pw, h: ph}
	c := &compData{kids: [2]*winResult{a, b}}
	if axis == 'x' {
		c.at[1] = geom.Pt(at, 0)
	} else {
		c.at[1] = geom.Pt(0, at)
	}
	r.comp = c

	// Local union-find over (child, idx) pairs for nets and partials.
	nets := newPairUF()
	parts := newPairUF()

	var seamA, seamB face
	if axis == 'x' {
		seamA, seamB = faceR, faceL
	} else {
		seamA, seamB = faceT, faceB
	}

	// Step 1+2: match seam segments and establish equivalences. Both
	// sides' seam lists are sorted by lo and joined with a sweep, so
	// the cost is proportional to the seam contents plus the matches
	// ("step through the elements of the interface-segment lists").
	var sa, sb []edge
	for _, eg := range a.edges {
		if eg.face == seamA {
			sa = append(sa, eg)
		}
	}
	for _, eg := range b.edges {
		if eg.face == seamB {
			sb = append(sb, eg)
		}
	}
	sortEdges(sa)
	sortEdges(sb)
	start := 0
	for _, ea := range sa {
		for start < len(sb) && sb[start].hi <= ea.lo {
			start++
		}
		for j := start; j < len(sb) && sb[j].lo < ea.hi; j++ {
			eb := sb[j]
			lo := max64(ea.lo, eb.lo)
			hi := min64(ea.hi, eb.hi)
			if hi <= lo {
				continue
			}
			e.counters.SeamMatches++
			ra := ref{0, ea.ref}
			rb := ref{1, eb.ref}
			switch {
			case ea.layer == eChan && eb.layer == eChan:
				if parts.union(ra, rb) {
					c.partEquivs = append(c.partEquivs, [2]ref{ra, rb})
				}
			case ea.layer == eChan && eb.layer == eDiff:
				c.partTerms = append(c.partTerms, partTerm{part: ra, net: rb, edge: hi - lo})
			case ea.layer == eDiff && eb.layer == eChan:
				c.partTerms = append(c.partTerms, partTerm{part: rb, net: ra, edge: hi - lo})
			case ea.layer == eb.layer: // conducting layer contact
				if nets.union(ra, rb) {
					c.netEquivs = append(c.netEquivs, [2]ref{ra, rb})
				}
			}
		}
	}

	// Step 3: the parent interface is the children's non-seam edges,
	// re-based into the parent frame and re-referenced through the
	// export tables.
	netExport := map[ref]int32{}
	partExport := map[ref]int32{}
	exportNet := func(child int8, idx int32) int32 {
		root := nets.find(ref{child, idx})
		if id, ok := netExport[root]; ok {
			return id
		}
		id := int32(len(c.parentNets))
		c.parentNets = append(c.parentNets, root)
		netExport[root] = id
		return id
	}
	exportPart := func(child int8, idx int32) int32 {
		root := parts.find(ref{child, idx})
		if id, ok := partExport[root]; ok {
			return id
		}
		id := int32(len(c.parentParts))
		c.parentParts = append(c.parentParts, root)
		partExport[root] = id
		return id
	}

	copyEdges := func(child int8, src *winResult, skip face, dx, dy int64) {
		for _, eg := range src.edges {
			if eg.face == skip {
				continue
			}
			ne := eg
			switch eg.face {
			case faceB, faceT:
				ne.lo += dx
				ne.hi += dx
			case faceL, faceR:
				ne.lo += dy
				ne.hi += dy
			}
			if eg.layer == eChan {
				ne.ref = exportPart(child, eg.ref)
			} else {
				ne.ref = exportNet(child, eg.ref)
			}
			r.edges = append(r.edges, ne)
		}
	}
	copyEdges(0, a, seamA, 0, 0)
	copyEdges(1, b, seamB, c.at[1].X, c.at[1].Y)

	// Faces must be re-labelled: for a vertical cut the left child's R
	// face and the right child's L face were consumed; the remaining
	// edges keep their face identity, which is already correct in the
	// parent frame (a's L is the parent's L, b's R the parent's R,
	// and B/T merge). The same holds for horizontal cuts.

	r.netCount = len(c.parentNets)
	r.partCount = len(c.parentParts)
	return r
}

func sortEdges(es []edge) {
	sort.Slice(es, func(i, j int) bool { return es[i].lo < es[j].lo })
}

// pairUF is a small union-find over (child, idx) refs.
type pairUF struct {
	f   uf.Forest
	ids map[ref]int
	rev []ref
}

func newPairUF() *pairUF {
	return &pairUF{ids: map[ref]int{}}
}

func (p *pairUF) id(r ref) int {
	if i, ok := p.ids[r]; ok {
		return i
	}
	i := p.f.Make()
	p.ids[r] = i
	p.rev = append(p.rev, r)
	return i
}

// union joins two refs and reports whether they were previously
// distinct.
func (p *pairUF) union(a, b ref) bool {
	ia, ib := p.id(a), p.id(b)
	if p.f.Same(ia, ib) {
		return false
	}
	p.f.Union(ia, ib)
	return true
}

// find returns the canonical ref of a's class.
func (p *pairUF) find(r ref) ref {
	return p.rev[p.f.Find(p.id(r))]
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
