package hext

import (
	"sync"
	"sync/atomic"
	"time"

	"ace/internal/guard"
	"ace/internal/scan"
	"ace/internal/store"
)

// dagNode is one unit of back-end work in the planned merge DAG: a
// leaf window to sweep or a compose of two finished children. The
// front end (env.plan) builds the DAG; env.execute runs it, either in
// creation order on one goroutine or topologically across a worker
// pool. Session-memo hits become result-only nodes (res pre-set, not
// scheduled), which is what turns the window tree into a DAG.
type dagNode struct {
	id   int
	kind nodeKind

	win window // nodeLeaf: contents to sweep (released after the run)

	// nodeComp: the guillotine cut that produced the children.
	axis byte
	at   int64
	w, h int64
	kids [2]*dagNode

	res      *winResult
	warnings []string

	// Scheduling state (parallel execution only).
	parents []*dagNode
	pending int32
}

type nodeKind int8

const (
	nodeDone nodeKind = iota // res carried over from the session memo
	nodeLeaf
	nodeComp
)

// execCtx is one worker's private execution state: the shared content
// cache plus worker-local counters, phase timers and compose scratch.
// Workers never touch env directly; their deltas are merged after the
// pool drains, so the counter totals are identical for serial and
// parallel runs.
type execCtx struct {
	cache    *leafCache
	disk     *store.Store
	pool     *scan.Pool // session sweep scratch; shared, mutex-guarded
	readBuf  []byte     // store read scratch (decodeSweep copies out)
	encBuf   []byte     // encodeSweep scratch (Put copies to disk)
	counters Counters
	flat     time.Duration
	comp     time.Duration
	cs       composeScratch
}

func (x *execCtx) run(n *dagNode) {
	switch n.kind {
	case nodeLeaf:
		t0 := time.Now()
		n.res, n.warnings = x.extractLeaf(n)
		x.flat += time.Since(t0)
		n.win.items = nil // the sweep input is dead weight once extracted
	case nodeComp:
		t0 := time.Now()
		n.res = x.compose(n)
		x.comp += time.Since(t0)
	}
}

// runGuarded executes one node under panic isolation, with the
// cooperative-cancellation and fault-injection checks for its stage.
func (x *execCtx) runGuarded(e *env, n *dagNode) error {
	stage := guard.StageHextLeaf
	if n.kind == nodeComp {
		stage = guard.StageHextCompose
	}
	return guard.Run(stage, func() error {
		if err := guard.Ctx(e.ctx, stage); err != nil {
			return err
		}
		if err := guard.Inject(stage); err != nil {
			return err
		}
		x.run(n)
		return nil
	})
}

// execute runs every planned node. Serial execution walks the node
// list in creation order, which is the old recursive engine's exact
// DFS post-order; parallel execution schedules nodes topologically —
// a node becomes ready when its last unfinished child completes — so
// independent subtrees sweep and compose concurrently. Results are
// identical either way: every node is a pure function of its children
// and the (single-flight) content cache.
//
// In parallel mode the Flat/Compose timings are summed across workers,
// so — like the flat extractor's band phases — they report CPU time,
// not wall-clock time.
func (e *env) execute(workers int) error {
	nodes := e.nodeList
	if len(nodes) == 0 {
		return nil
	}
	if workers > len(nodes) {
		workers = len(nodes)
	}
	if workers <= 1 {
		x := execCtx{cache: e.cache, disk: e.disk, pool: e.pool}
		for _, n := range nodes {
			if err := x.runGuarded(e, n); err != nil {
				e.mergeExec(&x)
				return err
			}
		}
		e.mergeExec(&x)
		return nil
	}

	// Wire the DAG: each comp node waits on its not-yet-done children;
	// a child reused twice under one parent (identical halves) is
	// counted — and later decremented — twice.
	ready := make(chan *dagNode, len(nodes))
	for _, n := range nodes {
		if n.kind == nodeComp {
			for _, kid := range n.kids {
				if kid.res == nil {
					n.pending++
					kid.parents = append(kid.parents, n)
				}
			}
		}
		if n.pending == 0 {
			ready <- n
		}
	}
	remaining := int32(len(nodes))

	// On failure the pool must still unwind cleanly: the failed flag is
	// published BEFORE the parent/remaining decrements (the channel send
	// gives the happens-before edge), so every node still flows through
	// the ready channel — skipped, not run — the counters reach zero,
	// close(ready) fires and no worker blocks forever. A skipped child
	// leaves res nil; its parents are skipped too, so compose never
	// touches a missing child result.
	var failed atomic.Bool
	var firstErr atomic.Pointer[error]
	var wg sync.WaitGroup
	ctxs := make([]execCtx, workers)
	for i := range ctxs {
		ctxs[i].cache = e.cache
		ctxs[i].disk = e.disk
		ctxs[i].pool = e.pool
		wg.Add(1)
		go func(x *execCtx) {
			defer wg.Done()
			for n := range ready {
				if !failed.Load() && (n.kind != nodeComp || n.kids[0].res != nil && n.kids[1].res != nil) {
					if err := x.runGuarded(e, n); err != nil {
						ep := err
						firstErr.CompareAndSwap(nil, &ep)
						failed.Store(true)
					}
				}
				for _, p := range n.parents {
					if atomic.AddInt32(&p.pending, -1) == 0 {
						ready <- p
					}
				}
				if atomic.AddInt32(&remaining, -1) == 0 {
					close(ready)
				}
			}
		}(&ctxs[i])
	}
	wg.Wait()
	for i := range ctxs {
		e.mergeExec(&ctxs[i])
	}
	if ep := firstErr.Load(); ep != nil {
		return *ep
	}
	return nil
}

func (e *env) mergeExec(x *execCtx) {
	e.counters.LeafSweeps += x.counters.LeafSweeps
	e.counters.CacheHits += x.counters.CacheHits
	e.counters.CacheMisses += x.counters.CacheMisses
	e.counters.SeamMatches += x.counters.SeamMatches
	e.counters.DiskHits += x.counters.DiskHits
	e.counters.DiskMisses += x.counters.DiskMisses
	e.counters.DiskBytes += x.counters.DiskBytes
	e.timing.Flat += x.flat
	e.timing.Compose += x.comp
}
