package hext

import (
	"testing"

	"ace/internal/extract"
	"ace/internal/gen"
	"ace/internal/netlist"
)

// TestDenseGeometryTerminates: the Bentley–Haken–Hon statistical model
// piles up to a hundred overlapping boxes on every point, so no leaf
// cap is reachable by cutting; the no-progress guard must extract
// such windows whole instead of recursing exponentially.
func TestDenseGeometryTerminates(t *testing.T) {
	w := gen.Statistical(1500, 11)
	hres, err := Extract(w.File, Options{MaxLeafItems: 40})
	if err != nil {
		t.Fatal(err)
	}
	ares, err := extract.File(w.File, extract.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if eq, why := netlist.Equivalent(ares.Netlist, hres.Netlist); !eq {
		t.Fatalf("dense geometry: %s", why)
	}
}
