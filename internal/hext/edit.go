package hext

import (
	"context"
	"fmt"

	"ace/internal/cif"
)

// Edit is one change to the most recently extracted design: replace
// the top-level item list, or replace / add / delete one symbol
// definition. Edits are symbol-granular because that is the unit an
// interactive layout editor works in; the session's content-derived
// memo keys then confine re-extraction to the windows whose contents
// actually changed — everything else recomposes from the in-memory
// memo or the disk cache.
type Edit struct {
	// Top replaces the file's top-level items with Items; SymbolID,
	// Delete and Name are ignored.
	Top bool

	// SymbolID is the symbol definition the edit targets.
	SymbolID int

	// Delete removes the symbol definition. The symbol must not be
	// called anywhere after all edits apply.
	Delete bool

	// Items is the symbol's (or top's) new contents.
	Items []cif.Item

	// Name optionally (re)names the symbol; empty keeps the old name
	// (or none, for a new symbol).
	Name string
}

// Apply re-extracts the session's last design with the given edits
// applied. The base design is not modified — the session clones the
// file structure and shares the untouched symbol definitions, so an
// editor can keep its own copy. Returns the full extraction result
// for the edited design; the session memo then reflects it, so a
// subsequent Apply edits the edited design.
func (s *Session) Apply(edits ...Edit) (*Result, error) {
	return s.ApplyContext(nil, edits...)
}

// ApplyContext is Apply with cooperative cancellation.
func (s *Session) ApplyContext(ctx context.Context, edits ...Edit) (*Result, error) {
	if s.last == nil {
		return nil, fmt.Errorf("hext: Apply before any Extract in this session")
	}
	f, err := applyEdits(s.last, edits)
	if err != nil {
		return nil, err
	}
	return s.ExtractContext(ctx, f)
}

// Design returns the design the session last extracted (after any
// applied edits), or nil before the first Extract.
func (s *Session) Design() *cif.File { return s.last }

// applyEdits builds the edited file: a fresh symbol table sharing the
// unmodified *Symbol values with the base. Every call is then checked
// against the table — the planner expands calls unconditionally, so a
// dangling call must be rejected here, not discovered as a panic.
func applyEdits(base *cif.File, edits []Edit) (*cif.File, error) {
	f := &cif.File{
		Symbols:     make(map[int]*cif.Symbol, len(base.Symbols)+len(edits)),
		Top:         base.Top,
		Warnings:    base.Warnings,
		Diagnostics: base.Diagnostics,
	}
	for id, sym := range base.Symbols {
		f.Symbols[id] = sym
	}
	for _, ed := range edits {
		switch {
		case ed.Top:
			f.Top = ed.Items
		case ed.Delete:
			if _, ok := f.Symbols[ed.SymbolID]; !ok {
				return nil, fmt.Errorf("hext: edit deletes unknown symbol %d", ed.SymbolID)
			}
			delete(f.Symbols, ed.SymbolID)
		default:
			name := ed.Name
			if name == "" {
				if old, ok := f.Symbols[ed.SymbolID]; ok {
					name = old.Name
				}
			}
			f.Symbols[ed.SymbolID] = &cif.Symbol{ID: ed.SymbolID, Name: name, Items: ed.Items}
		}
	}
	check := func(items []cif.Item, where string) error {
		for _, it := range items {
			if it.Kind == cif.ItemCall {
				if _, ok := f.Symbols[it.SymbolID]; !ok {
					return fmt.Errorf("hext: edited design calls undefined symbol %d from %s",
						it.SymbolID, where)
				}
			}
		}
		return nil
	}
	if err := check(f.Top, "top level"); err != nil {
		return nil, err
	}
	for id, sym := range f.Symbols {
		if err := check(sym.Items, fmt.Sprintf("symbol %d", id)); err != nil {
			return nil, err
		}
	}
	return f, nil
}
