package hext

import (
	"testing"

	"ace/internal/vfs"
)

// TestHextDiskFaultMatrix is the fail-open acceptance matrix for the
// disk tier: under every injected filesystem fault the extraction must
// return the reference bytes (recomputing whatever the disk failed to
// deliver), bump the typed error counters instead of the miss
// counters, and never error or panic.
func TestHextDiskFaultMatrix(t *testing.T) {
	ref, err := Extract(editableChip(false), Options{DisableMemo: true})
	if err != nil {
		t.Fatal(err)
	}
	want := flatWirelist(t, ref)

	t.Run("read-errors-degrade-to-recompute", func(t *testing.T) {
		dir := t.TempDir()
		ffs := vfs.NewFault(vfs.OS)
		opt := Options{CacheDir: dir, CacheFS: ffs}
		cold, err := NewSession(opt).Extract(editableChip(false))
		if err != nil {
			t.Fatal(err)
		}
		if got := flatWirelist(t, cold); got != want {
			t.Fatal("cold bytes differ")
		}
		// Every disk read now fails with an I/O error (both the
		// ReadFile and the Open+Read paths). The warm run must fall
		// back to a full recompute of the same bytes.
		ffs.FailOps(vfs.OpOpen, vfs.OpReadFile)
		ffs.FailFrom(1, vfs.ErrInjected)
		warm, err := NewSession(opt).Extract(editableChip(false))
		ffs.Restore()
		if err != nil {
			t.Fatalf("warm extract under read faults: %v", err)
		}
		if got := flatWirelist(t, warm); got != want {
			t.Fatal("warm bytes differ under read faults")
		}
		if warm.Counters.DiskErrors == 0 {
			t.Fatalf("no DiskErrors counted: %+v", warm.Counters)
		}
		if warm.Counters.DiskHits != 0 {
			t.Fatalf("DiskHits under total read failure: %+v", warm.Counters)
		}
	})

	t.Run("write-errors-degrade-to-uncached", func(t *testing.T) {
		ffs := vfs.NewFault(vfs.OS)
		ffs.FailOps(vfs.OpSync)
		ffs.FailFrom(1, vfs.ErrInjected)
		res, err := NewSession(Options{CacheDir: t.TempDir(), CacheFS: ffs}).Extract(editableChip(false))
		if err != nil {
			t.Fatalf("extract under write faults: %v", err)
		}
		if got := flatWirelist(t, res); got != want {
			t.Fatal("bytes differ under write faults")
		}
		if res.Counters.DiskPutErrors == 0 {
			t.Fatalf("no DiskPutErrors counted: %+v", res.Counters)
		}
	})

	t.Run("rename-errors", func(t *testing.T) {
		ffs := vfs.NewFault(vfs.OS)
		ffs.FailOps(vfs.OpRename)
		ffs.FailFrom(1, vfs.ErrInjected)
		res, err := NewSession(Options{CacheDir: t.TempDir(), CacheFS: ffs}).Extract(editableChip(false))
		if err != nil {
			t.Fatalf("extract under rename faults: %v", err)
		}
		if got := flatWirelist(t, res); got != want {
			t.Fatal("bytes differ under rename faults")
		}
		if res.Counters.DiskPutErrors == 0 {
			t.Fatalf("no DiskPutErrors counted: %+v", res.Counters)
		}
	})

	t.Run("torn-write-then-clean-warm-start", func(t *testing.T) {
		dir := t.TempDir()
		ffs := vfs.NewFault(vfs.OS)
		opt := Options{CacheDir: dir, CacheFS: ffs}
		// One write dies mid-payload during the cold populate. The
		// atomic publish must keep the partial entry off the live
		// namespace entirely.
		ffs.FailOps(vfs.OpWrite)
		ffs.FailOnce(3, vfs.ErrInjected)
		ffs.TornWrite(5)
		cold, err := NewSession(opt).Extract(editableChip(false))
		ffs.Restore()
		if err != nil {
			t.Fatalf("cold extract with torn write: %v", err)
		}
		if got := flatWirelist(t, cold); got != want {
			t.Fatal("cold bytes differ with torn write")
		}
		if cold.Counters.DiskPutErrors == 0 {
			t.Fatalf("torn write not counted: %+v", cold.Counters)
		}
		// A fresh session over the surviving entries reads clean and
		// reproduces the bytes.
		warm, err := NewSession(Options{CacheDir: dir}).Extract(editableChip(false))
		if err != nil {
			t.Fatal(err)
		}
		if got := flatWirelist(t, warm); got != want {
			t.Fatal("warm bytes differ after torn write")
		}
		if warm.Counters.DiskErrors != 0 {
			t.Fatalf("clean warm start reported disk errors: %+v", warm.Counters)
		}
	})

	t.Run("power-cut-freezes-writes", func(t *testing.T) {
		ffs := vfs.NewFault(vfs.OS)
		opt := Options{CacheDir: t.TempDir(), CacheFS: ffs}
		s := NewSession(opt)
		ffs.PowerCut()
		res, err := s.Extract(editableChip(false))
		if err != nil {
			t.Fatalf("extract after power cut: %v", err)
		}
		if got := flatWirelist(t, res); got != want {
			t.Fatal("bytes differ after power cut")
		}
		if res.Counters.DiskPutErrors == 0 {
			t.Fatalf("frozen writes not counted: %+v", res.Counters)
		}
	})
}
