package hext

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"ace/internal/gen"
	"ace/internal/guard"
)

// hextFaultStages are the injection points the hierarchical extractor
// reaches: the window-subdivision front end, the leaf sweeps, the
// composes and the final DAG flatten.
var hextFaultStages = []string{
	guard.StageHextPlan, guard.StageHextLeaf, guard.StageHextCompose, guard.StageHextFlatten,
}

func hextCheckFault(t *testing.T, err error, stage string, kind guard.FaultKind) {
	t.Helper()
	if err == nil {
		t.Fatalf("stage %s: extraction succeeded, want a typed error", stage)
	}
	if kind == guard.FaultPanic {
		var pe *guard.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("stage %s: got %v (%T), want *guard.PanicError", stage, err, err)
		}
		if pe.Stage != stage {
			t.Fatalf("panic attributed to %q, want %q", pe.Stage, stage)
		}
		return
	}
	if !errors.Is(err, guard.ErrInjected) {
		t.Fatalf("stage %s: got %v, want ErrInjected through the wrapper", stage, err)
	}
	var se *guard.StageError
	if !errors.As(err, &se) || se.Stage != stage {
		t.Fatalf("stage %s: error %v not stage-attributed", stage, err)
	}
}

// TestHextFaultMatrix injects errors and panics into every back-end
// stage of the hierarchical extractor, serial and parallel, asserting
// stage-attributed typed errors and a fully unwound worker pool.
func TestHextFaultMatrix(t *testing.T) {
	w := gen.SquareArray(64)
	for _, workers := range []int{1, 4} {
		for _, stage := range hextFaultStages {
			for _, kind := range []guard.FaultKind{guard.FaultError, guard.FaultPanic} {
				k := "error"
				if kind == guard.FaultPanic {
					k = "panic"
				}
				name := fmt.Sprintf("w%d/%s/%s", workers, strings.ReplaceAll(stage, "/", "."), k)
				t.Run(name, func(t *testing.T) {
					fp := &guard.Failpoint{Stage: stage, Kind: kind}
					restore := guard.SetInjector(fp)
					defer restore()
					base := runtime.NumGoroutine()

					res, err := Extract(w.File, Options{Workers: workers})
					if res != nil {
						t.Fatalf("got a result alongside the failure")
					}
					hextCheckFault(t, err, stage, kind)
					if fp.Fired() == 0 {
						t.Fatalf("failpoint at %s never fired", stage)
					}
					restore()
					if n, ok := guard.WaitGoroutines(base+2, 5*time.Second); !ok {
						t.Fatalf("goroutines leaked: %d still running, base %d", n, base)
					}
				})
			}
		}
	}
}

// TestHextCancel: a cancelled context aborts both the DAG pool and the
// recursive flatten with an error satisfying errors.Is(context.Canceled).
func TestHextCancel(t *testing.T) {
	w := gen.SquareArray(64)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("w%d", workers), func(t *testing.T) {
			base := runtime.NumGoroutine()
			t0 := time.Now()
			_, err := ExtractContext(ctx, w.File, Options{Workers: workers})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("got %v, want context.Canceled", err)
			}
			if d := time.Since(t0); d > 10*time.Second {
				t.Fatalf("cancellation took %v", d)
			}
			if n, ok := guard.WaitGoroutines(base+2, 5*time.Second); !ok {
				t.Fatalf("goroutines leaked: %d still running, base %d", n, base)
			}
		})
	}
}

// TestHextFaultFreeMatchesBaseline: with a live (never-cancelled)
// context the hierarchical result is identical to the plain entry
// point's — the guard checks are no-ops on the happy path.
func TestHextFaultFreeMatchesBaseline(t *testing.T) {
	w := gen.SquareArray(16)
	want, err := Extract(w.File, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ExtractContext(context.Background(), w.File, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Netlist.Devices) != len(want.Netlist.Devices) ||
		len(got.Netlist.Nets) != len(want.Netlist.Nets) {
		t.Fatalf("guarded run differs: %d devices / %d nets, want %d / %d",
			len(got.Netlist.Devices), len(got.Netlist.Nets),
			len(want.Netlist.Devices), len(want.Netlist.Nets))
	}
}
