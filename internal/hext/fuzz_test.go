package hext

import "testing"

// FuzzParseHierarchical hammers the hierarchical wirelist reader: it
// must never panic, whatever the nesting, references or numbers.
func FuzzParseHierarchical(f *testing.F) {
	f.Add(`(DefPart Window1 (Size 10 10) (Exports N0 )
 (Part nEnh (Name D0) (Loc 1 1) (T G N0) (T S N1) (T D N2) (Channel (Length 2) (Width 4)))
 (Local N1 N2 ))
(Part Window1 (Name Top))`)
	f.Add(`(DefPart Window1 (Local N0))
(DefPart Window2 (Exports N0)
 (Part Window1 (Name P1) (LocOffset 3 4))
 (Part Window1 (Name P2) (LocOffset 5 6))
 (Net P1/N0 P2/N0) (Net N0 P1/N0) (Local ))
(Part Window2 (Name Top))`)
	f.Add(`(DefPart Window3
 (Part nDep (Name D0) (Loc 0 0) (T G N0) (T S N0) (T D N0)
  (Channel (Length 8) (Width 2)) (TPart T0 (Area 16) (Impl 16) (Edges (N0 2) )))
 (TPart T0 P1/T0))
(Part Window3 (Name Top))`)
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<15 {
			return
		}
		nl, err := ParseHierarchicalString(src)
		if err != nil {
			return
		}
		// Whatever parses must at least be internally consistent
		// enough to print.
		_ = nl.Stats()
	})
}
