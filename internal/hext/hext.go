package hext

import (
	"fmt"
	"time"

	"ace/internal/build"
	"ace/internal/cif"
	"ace/internal/geom"
	"ace/internal/netlist"
)

// Options configures a hierarchical extraction.
type Options struct {
	// Grid is the manhattanisation grid for non-manhattan geometry.
	Grid int64

	// MaxDepth bounds window recursion as a safety net; zero means the
	// default of 64.
	MaxDepth int

	// MaxLeafItems caps the size of a geometry-only window handed to
	// the flat extractor; larger ones are cut in half, which is where
	// partial transistors arise. Zero selects the default of 2000
	// (the paper's primitive windows hold "a few hundred to a few
	// thousand rectangles").
	MaxLeafItems int

	// DisableMemo turns the window memo table off, so every window is
	// analysed even when identical to a previous one. Used by the
	// ablation benchmark to quantify what the paper's "redundant
	// windows are recognised and extracted only once" is worth.
	DisableMemo bool

	// Fracture selects the guillotine-cut strategy.
	Fracture Fracture
}

// Fracture selects how windows are cut.
type Fracture int8

const (
	// FractureBalanced cuts nearest the window's centre (default):
	// logarithmic recursion, maximal window reuse on regular arrays.
	FractureBalanced Fracture = iota

	// FractureMinCut cuts where the fewest geometry boxes are split,
	// minimising seam contents — the "more intelligent fracturing"
	// HEXT §6 proposes to reduce compose cost.
	FractureMinCut
)

// Counters reports the work HEXT performed; Tables 5-1/5-2 of the
// HEXT paper read these.
type Counters struct {
	FlatCalls     int // calls to the (modified) flat extractor
	ComposeCalls  int // calls to the compose routine
	MemoHits      int // windows answered from the memo table
	UniqueWindows int // distinct windows processed
	CellsExpanded int // one-level instance expansions
	SeamMatches   int // interface-segment pairs matched
}

// Timing splits the run into the paper's phases.
type Timing struct {
	FrontEnd time.Duration // subdivision, expansion, hashing
	Flat     time.Duration // leaf extraction (modified ACE)
	Compose  time.Duration // compose operations
	Flatten  time.Duration // instantiating the window DAG

	// BackEnd is Flat + Compose, the paper's "back-end" column.
}

// BackEnd returns flat-extraction plus compose time.
func (t Timing) BackEnd() time.Duration { return t.Flat + t.Compose }

// Total returns the whole run.
func (t Timing) Total() time.Duration {
	return t.FrontEnd + t.Flat + t.Compose + t.Flatten
}

// Result of a hierarchical extraction.
type Result struct {
	Netlist  *netlist.Netlist
	Counters Counters
	Timing   Timing
	Warnings []string

	top *winResult // for hierarchical wirelist emission
}

// Extract runs HEXT over a parsed CIF design.
func Extract(f *cif.File, opt Options) (*Result, error) {
	return NewSession(opt).Extract(f)
}

// Session is an incremental extractor: the window memo table persists
// across Extract calls, so re-extracting a design after an edit only
// analyses the windows whose contents actually changed — the
// "incremental extractor" direction ACE §6 points at ("The edge-based
// algorithms are well suited for hierarchical and incremental
// extractors"). Memo keys are content-derived (symbol ids are replaced
// by structural hashes), so a session can even be reused across
// different parses of related designs.
type Session struct {
	opt  Options
	memo map[string]*winResult
	ids  int
}

// NewSession creates an incremental extraction session.
func NewSession(opt Options) *Session {
	return &Session{opt: opt, memo: map[string]*winResult{}}
}

// MemoSize reports the number of unique windows retained.
func (s *Session) MemoSize() int { return len(s.memo) }

// Extract runs HEXT over a design, reusing any windows already
// analysed in this session.
func (s *Session) Extract(f *cif.File) (*Result, error) {
	opt := s.opt
	grid := opt.Grid
	if grid <= 0 {
		grid = 10
	}
	maxDepth := opt.MaxDepth
	if maxDepth <= 0 {
		maxDepth = 64
	}
	maxLeaf := opt.MaxLeafItems
	if maxLeaf <= 0 {
		maxLeaf = 2000
	}
	e := &env{
		session:   s,
		syms:      f.Symbols,
		bboxCache: map[int]geom.Rect{},
		symHashes: map[int]uint64{},
		memo:      s.memo,
		grid:      grid,
		maxDepth:  maxDepth,
		maxLeaf:   maxLeaf,
		noMemo:    opt.DisableMemo,
		fracture:  opt.Fracture,
	}
	e.warnings = append(e.warnings, f.Warnings...)

	top, _ := f.TopSymbol()
	t0 := time.Now()
	win, origin, ok := e.newTopWindow(top)
	if !ok {
		return nil, fmt.Errorf("hext: design contains no geometry")
	}
	root, err := e.process(win, 0)
	if err != nil {
		return nil, err
	}
	frontAndBack := time.Since(t0)
	e.timing.FrontEnd = frontAndBack - e.timing.Flat - e.timing.Compose
	if e.timing.FrontEnd < 0 {
		e.timing.FrontEnd = 0
	}

	t1 := time.Now()
	b := &build.Builder{}
	e.flatten(root, origin, b)
	nl, _ := b.Finish()
	e.timing.Flatten = time.Since(t1)
	for _, lb := range e.overlay {
		if !lb.matched {
			e.warnings = append(e.warnings,
				fmt.Sprintf("label %q at %v matches no conducting geometry", lb.name, lb.at))
		}
	}

	return &Result{
		Netlist:  nl,
		Counters: e.counters,
		Timing:   e.timing,
		Warnings: append(e.warnings, b.Warnings()...),
		top:      root,
	}, nil
}

type env struct {
	session   *Session
	syms      map[int]*cif.Symbol
	bboxCache map[int]geom.Rect
	symHashes map[int]uint64
	memo      map[string]*winResult
	grid      int64
	maxDepth  int
	maxLeaf   int
	noMemo    bool
	fracture  Fracture
	overlay   []*overlayLabel

	counters Counters
	timing   Timing
	warnings []string
}

func (e *env) nextID() int {
	e.session.ids++
	return e.session.ids
}

// process extracts one window, via the memo table when possible
// ("Each time a window is considered for sub-division, the front-end
// checks a table to see if the window was previously analyzed").
func (e *env) process(win window, depth int) (*winResult, error) {
	if depth > e.maxDepth {
		return nil, fmt.Errorf("hext: window recursion exceeded depth %d", e.maxDepth)
	}
	var k string
	if !e.noMemo {
		k = e.key(win)
		if r, ok := e.memo[k]; ok {
			e.counters.MemoHits++
			return r, nil
		}
	}
	e.counters.UniqueWindows++

	var r *winResult
	var err error
	geoOnly := !win.hasCalls()
	uncuttable := win.w < 2 && win.h < 2
	if geoOnly && (len(win.items) <= e.maxLeaf || uncuttable) {
		t0 := time.Now()
		r = e.extractLeaf(win)
		e.timing.Flat += time.Since(t0)
		e.counters.FlatCalls++
	} else if axis, at, ok := e.chooseCut(win); ok {
		a, b := e.splitWindow(win, axis, at)
		// Guard against pathologically dense geometry: when a cut
		// duplicates so many straddling boxes that neither side gets
		// smaller, further cutting can never reach the leaf cap —
		// extract the window whole instead of recursing exponentially.
		if geoOnly && len(a.items) >= len(win.items) && len(b.items) >= len(win.items) {
			t0 := time.Now()
			r = e.extractLeaf(win)
			e.timing.Flat += time.Since(t0)
			e.counters.FlatCalls++
		} else {
			var ra, rb *winResult
			if ra, err = e.process(a, depth+1); err != nil {
				return nil, err
			}
			if rb, err = e.process(b, depth+1); err != nil {
				return nil, err
			}
			t0 := time.Now()
			r = e.compose(ra, rb, axis, at, win.w, win.h)
			e.timing.Compose += time.Since(t0)
			e.counters.ComposeCalls++
		}
	} else if geoOnly {
		// Oversized but uncuttable geometry: extract it whole.
		t0 := time.Now()
		r = e.extractLeaf(win)
		e.timing.Flat += time.Since(t0)
		e.counters.FlatCalls++
	} else {
		// No cut avoids the instances: expand one level and retry
		// (the disjoint transformation's recursion step).
		if r, err = e.process(e.expandOne(win), depth+1); err != nil {
			return nil, err
		}
	}
	if !e.noMemo {
		e.memo[k] = r
	}
	return r, nil
}

// flatten instantiates the window DAG into the builder: leaf windows
// contribute their nets and device accumulators; composed windows
// apply their seam equivalences. Returns the instance's local-net and
// local-partial handles.
func (e *env) flatten(r *winResult, off geom.Point, b *build.Builder) ([]int32, []int32) {
	if r.leaf != nil {
		nl := r.leaf.nl
		nets := make([]int32, len(nl.Nets))
		for i := range nl.Nets {
			nets[i] = b.NewNet(nl.Nets[i].Location.Add(off))
			for _, nm := range nl.Nets[i].Names {
				b.NameNet(nets[i], nm)
			}
		}
		// Overlay labels falling in this instance's region.
		region := geom.Rect{XMin: off.X, YMin: off.Y, XMax: off.X + r.w, YMax: off.Y + r.h}
		for _, lb := range e.overlay {
			if !lb.matched && region.Contains(lb.at) {
				if idx, ok := labelNet(nl, lb.at.Sub(off), lb); ok {
					b.NameNet(nets[idx], lb.name)
					lb.matched = true
				}
			}
		}
		partSlot := make(map[int]int, len(r.leaf.partDevs))
		for slot, di := range r.leaf.partDevs {
			partSlot[di] = slot
		}
		parts := make([]int32, len(r.leaf.partDevs))
		for i := range nl.Devices {
			d := &nl.Devices[i]
			dv := b.NewDev()
			bbox := geom.BBoxOf(d.Geometry).Translate(off)
			b.AddDeviceFacts(dv, d.Area, d.ImplArea, bbox)
			b.AddGate(dv, nets[d.Gate])
			for _, t := range d.Terminals {
				b.AddTerm(dv, nets[t.Net], t.Edge)
			}
			if slot, ok := partSlot[i]; ok {
				parts[slot] = dv
			}
		}
		return nets, parts
	}

	c := r.comp
	var kn, kp [2][]int32
	for k := 0; k < 2; k++ {
		kn[k], kp[k] = e.flatten(c.kids[k], off.Add(c.at[k]), b)
	}
	for _, eq := range c.netEquivs {
		b.UnionNets(kn[eq[0].child][eq[0].idx], kn[eq[1].child][eq[1].idx])
	}
	for _, eq := range c.partEquivs {
		b.UnionDevs(kp[eq[0].child][eq[0].idx], kp[eq[1].child][eq[1].idx])
	}
	for _, pt := range c.partTerms {
		b.AddTerm(kp[pt.part.child][pt.part.idx], kn[pt.net.child][pt.net.idx], pt.edge)
	}
	nets := make([]int32, len(c.parentNets))
	for i, rf := range c.parentNets {
		nets[i] = kn[rf.child][rf.idx]
	}
	parts := make([]int32, len(c.parentParts))
	for i, rf := range c.parentParts {
		parts[i] = kp[rf.child][rf.idx]
	}
	return nets, parts
}
