package hext

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ace/internal/build"
	"ace/internal/cif"
	"ace/internal/diag"
	"ace/internal/geom"
	"ace/internal/guard"
	"ace/internal/netlist"
	"ace/internal/scan"
	"ace/internal/store"
	"ace/internal/vfs"
)

// Options configures a hierarchical extraction.
type Options struct {
	// Grid is the manhattanisation grid for non-manhattan geometry.
	Grid int64

	// MaxDepth bounds window recursion as a safety net; zero means the
	// default of 64.
	MaxDepth int

	// MaxLeafItems caps the size of a geometry-only window handed to
	// the flat extractor; larger ones are cut in half, which is where
	// partial transistors arise. Zero selects the default of 2000
	// (the paper's primitive windows hold "a few hundred to a few
	// thousand rectangles").
	MaxLeafItems int

	// Workers sets the back-end concurrency: leaf sweeps and composes
	// are scheduled topologically over this many goroutines, and
	// flattening forks at composed windows. 0 or 1 runs serially. The
	// output is byte-identical at every worker count.
	Workers int

	// CacheSize bounds the content-addressed sweep cache, in cached
	// window sweeps: 0 selects the default (4096), negative disables
	// the cache. The cache is keyed on a translation-invariant hash of
	// window contents, so windows identical only up to translation
	// share one sweep; it persists across a Session's Extract calls.
	CacheSize int

	// DisableMemo turns the window memo table and the content cache
	// off, so every window is analysed even when identical to a
	// previous one. Used by the ablation benchmark to quantify what
	// the paper's "redundant windows are recognised and extracted only
	// once" is worth. It also disables the disk cache.
	DisableMemo bool

	// CacheDir, when non-empty, adds a persistent tier under the
	// in-memory caches: a content-addressed store (internal/store) in
	// that directory. Window results and leaf sweeps computed by any
	// process survive there, so a later run of the same (or an edited)
	// design starts warm. Entries are verified against their full key
	// on read, so the disk tier can change speed but never bytes; a
	// store that cannot be opened degrades to a per-run warning, not
	// an error.
	CacheDir string

	// CacheMaxBytes caps the disk cache directory's size: 0 selects
	// store.DefaultMaxBytes, negative disables the cap. Eviction is
	// least-recently-used.
	CacheMaxBytes int64

	// CacheFS is the filesystem the disk cache runs on; nil selects
	// vfs.OS. Fault-injection tests substitute a vfs.FaultFS to prove
	// every disk error degrades to a recompute, never wrong bytes.
	CacheFS vfs.FS

	// Fracture selects the guillotine-cut strategy.
	Fracture Fracture

	// Lenient selects the fail-soft front end for Reader/ReaderContext:
	// parse errors become located diagnostics in Result.Diagnostics and
	// the parser resynchronises instead of aborting, and an empty
	// (or fully-damaged) design yields an empty netlist plus a
	// diagnostic instead of an error. See extract.Options.Lenient.
	Lenient bool

	// Diag caps the diagnostics a lenient run retains; the zero value
	// applies diag.DefaultMaxDiagnostics.
	Diag diag.Limits

	// Limits carries the resource budgets enforced while parsing in
	// Reader/ReaderContext (budgets always abort, even under Lenient).
	Limits guard.Limits
}

// Fracture selects how windows are cut.
type Fracture int8

const (
	// FractureBalanced cuts nearest the window's centre (default):
	// logarithmic recursion, maximal window reuse on regular arrays.
	FractureBalanced Fracture = iota

	// FractureMinCut cuts where the fewest geometry boxes are split,
	// minimising seam contents — the "more intelligent fracturing"
	// HEXT §6 proposes to reduce compose cost.
	FractureMinCut
)

// Counters reports the work HEXT performed; Tables 5-1/5-2 of the
// HEXT paper read these.
type Counters struct {
	FlatCalls     int // calls to the (modified) flat extractor
	ComposeCalls  int // calls to the compose routine
	MemoHits      int // windows answered from the memo table
	UniqueWindows int // distinct windows processed
	CellsExpanded int // one-level instance expansions
	SeamMatches   int // interface-segment pairs matched

	// SessionHits counts the MemoHits answered from a previous Extract
	// in the same Session (the warm path of incremental re-extraction),
	// as opposed to windows repeated within one run.
	SessionHits int

	// Content-cache counters: a flat call whose anchored content was
	// already swept is a CacheHit and does no sweep, so LeafSweeps =
	// CacheMisses - sweep-tier DiskHits when the cache is enabled and
	// FlatCalls otherwise.
	LeafSweeps  int   // scanline sweeps actually run
	CacheHits   int   // flat calls answered by the content cache
	CacheMisses int   // flat calls that had to sweep or go to disk
	CacheBytes  int64 // approximate bytes retained by the cache (gauge)

	// Disk-tier counters (zero unless Options.CacheDir is set): window
	// trees and leaf sweeps answered by / missing from the persistent
	// store, and the traffic this run exchanged with it.
	DiskHits   int
	DiskMisses int
	DiskBytes  int64 // payload bytes read from + written to the store

	// Disk-error counters, distinct from misses: DiskErrors counts
	// reads that failed for I/O reasons (the entry may exist but could
	// not be read — served as a miss, recomputed), DiskPutErrors counts
	// writes the store abandoned. Nonzero values mean the cache is
	// silently degraded, not that any result was wrong.
	DiskErrors    int
	DiskPutErrors int
}

// Timing splits the run into the paper's phases, in the style of the
// flat extractor's Phases. With Workers > 1 the Flat and Compose
// entries are summed across workers (CPU time, not wall-clock).
type Timing struct {
	Parse    time.Duration // CIF parsing (set by Reader; zero otherwise)
	FrontEnd time.Duration // subdivision, expansion, hashing, planning
	Flat     time.Duration // leaf extraction (modified ACE)
	Compose  time.Duration // compose operations
	Flatten  time.Duration // instantiating the window DAG

	// BackEnd is Flat + Compose, the paper's "back-end" column.
}

// BackEnd returns flat-extraction plus compose time.
func (t Timing) BackEnd() time.Duration { return t.Flat + t.Compose }

// Total returns the whole run.
func (t Timing) Total() time.Duration {
	return t.Parse + t.FrontEnd + t.Flat + t.Compose + t.Flatten
}

// Result of a hierarchical extraction.
type Result struct {
	Netlist  *netlist.Netlist
	Counters Counters
	Timing   Timing
	Warnings []string

	// Diagnostics carries the unified findings of the run (see
	// extract.Result.Diagnostics), sorted by the diag ordering
	// contract.
	Diagnostics diag.Set

	top  *winResult // for hierarchical wirelist emission
	hier []byte     // undecoded window tree of a whole-result disk hit

	// hierStore/hierKey locate the window tree of a whole-result hit
	// whose entry did not embed one (the tree lives in the root's own
	// "w:" entry); WriteHierarchical reads it on demand, so warm runs
	// that never ask for hierarchical output never pay for the tree.
	hierStore *store.Store
	hierKey   string
}

// Extract runs HEXT over a parsed CIF design.
func Extract(f *cif.File, opt Options) (*Result, error) {
	return NewSession(opt).Extract(f)
}

// ExtractContext is Extract with cooperative cancellation: planning,
// the leaf/compose pool and the flattening all check ctx and unwind
// with a stage-attributed error wrapping ctx.Err(). A nil ctx never
// cancels.
func ExtractContext(ctx context.Context, f *cif.File, opt Options) (*Result, error) {
	return NewSession(opt).ExtractContext(ctx, f)
}

// Reader parses CIF text from r and extracts it hierarchically,
// recording the parse phase in the result's Timing.
func Reader(r io.Reader, opt Options) (*Result, error) {
	return ReaderContext(nil, r, opt)
}

// ReaderContext is Reader with cooperative cancellation (see
// ExtractContext).
func ReaderContext(ctx context.Context, r io.Reader, opt Options) (*Result, error) {
	t0 := time.Now()
	f, err := cif.ParseReaderOpts(r, cif.ParseOptions{Limits: opt.Limits, Lenient: opt.Lenient, Diag: opt.Diag})
	if err != nil {
		return nil, err
	}
	parse := time.Since(t0)
	res, err := ExtractContext(ctx, f, opt)
	if err != nil {
		return nil, err
	}
	res.Timing.Parse = parse
	return res, nil
}

// Session is an incremental extractor: the window memo table and the
// content-addressed sweep cache persist across Extract calls, so
// re-extracting a design after an edit only analyses the windows whose
// contents actually changed — the "incremental extractor" direction
// ACE §6 points at ("The edge-based algorithms are well suited for
// hierarchical and incremental extractors"). Memo keys are
// content-derived (symbol ids are replaced by structural hashes), so a
// session can even be reused across different parses of related
// designs.
type Session struct {
	opt   Options
	memo  map[string]*winResult
	cache *leafCache
	ids   int

	// disk is the persistent cache tier (nil without Options.CacheDir);
	// diskWarn reports a store that failed to open, once per Extract.
	disk     *store.Store
	diskWarn string

	// pool keeps sweeper and builder scratch alive across Extract
	// calls — the hierarchical engine's half of the warm loop
	// extract.Engine provides for the flat pipelines. readBuf and
	// encBuf are the serial-phase store codec buffers (window-tree
	// reads and encodes); the parallel leaf workers carry their own in
	// execCtx. Results are byte-identical with and without reuse:
	// Builder.Finish and the win-tree decoder copy everything they
	// emit out of the scratch they ran in.
	pool    *scan.Pool
	readBuf []byte
	encBuf  []byte

	// last is the most recently extracted design, the base Apply edits.
	last *cif.File
}

// NewSession creates an incremental extraction session.
func NewSession(opt Options) *Session {
	s := &Session{opt: opt, memo: map[string]*winResult{}, pool: scan.NewPool()}
	if !opt.DisableMemo && opt.CacheSize >= 0 {
		s.cache = newLeafCache(opt.CacheSize)
	}
	if opt.CacheDir != "" && !opt.DisableMemo {
		disk, err := store.Open(opt.CacheDir, store.Options{MaxBytes: opt.CacheMaxBytes, FS: opt.CacheFS})
		if err != nil {
			// Fail-soft: a broken cache directory costs speed, never
			// correctness — extraction proceeds cold with a warning.
			s.diskWarn = fmt.Sprintf("cache disabled: %v", err)
		} else {
			s.disk = disk
		}
	}
	return s
}

// MemoSize reports the number of unique windows retained.
func (s *Session) MemoSize() int { return len(s.memo) }

// diskIO snapshots the disk tier's I/O counters (zero without one).
func (s *Session) diskIO() store.IOCounters {
	if s.disk == nil {
		return store.IOCounters{}
	}
	return s.disk.IOCounters()
}

// Extract runs HEXT over a design, reusing any windows already
// analysed in this session.
func (s *Session) Extract(f *cif.File) (*Result, error) {
	return s.ExtractContext(nil, f)
}

// ExtractContext is Extract with cooperative cancellation. It is also
// panic-isolated: a panic in planning, a pool worker or the flattener
// surfaces as a *guard.PanicError naming the stage.
func (s *Session) ExtractContext(ctx context.Context, f *cif.File) (res *Result, err error) {
	defer guard.Recover(guard.StageHextPlan, &err)
	opt := s.opt
	grid := opt.Grid
	if grid <= 0 {
		grid = 10
	}
	maxDepth := opt.MaxDepth
	if maxDepth <= 0 {
		maxDepth = 64
	}
	maxLeaf := opt.MaxLeafItems
	if maxLeaf <= 0 {
		maxLeaf = 2000
	}
	workers := opt.Workers
	if workers < 1 {
		workers = 1
	}
	e := &env{
		ctx:       ctx,
		session:   s,
		syms:      f.Symbols,
		bboxCache: map[int]geom.Rect{},
		symHashes: map[int]uint64{},
		memo:      s.memo,
		nodes:     map[string]*dagNode{},
		grid:      grid,
		maxDepth:  maxDepth,
		maxLeaf:   maxLeaf,
		noMemo:    opt.DisableMemo,
		fracture:  opt.Fracture,
		cache:     s.cache,
		disk:      s.disk,
		pool:      s.pool,
	}
	e.warnings = append(e.warnings, f.Warnings...)
	if s.diskWarn != "" {
		e.warnings = append(e.warnings, s.diskWarn)
	}
	// Store-level error counters are cumulative per handle (and the
	// session persists across Extracts), so this run's DiskErrors /
	// DiskPutErrors are a delta against a snapshot taken now.
	diskIO0 := s.diskIO()
	captureDiskErrors := func() {
		io := s.diskIO()
		e.counters.DiskErrors = int(io.GetErrors - diskIO0.GetErrors)
		e.counters.DiskPutErrors = int(io.PutErrors - diskIO0.PutErrors)
	}
	// Warnings past this point describe the extraction itself (not this
	// parse or this store handle); they are what a whole-result entry
	// persists and replays.
	preWarn := len(e.warnings)

	var diags diag.Set
	diags.SetLimits(opt.Diag)
	diags.Merge(&f.Diagnostics)

	top, _ := f.TopSymbol()
	t0 := time.Now()
	win, origin, ok := e.newTopWindow(top)
	if !ok {
		if !opt.Lenient {
			return nil, fmt.Errorf("hext: %w", guard.ErrNoGeometry)
		}
		// Fail-soft: nothing was salvageable (or the design is truly
		// empty); report it and return an empty netlist so the caller
		// still gets the diagnostics alongside a well-formed result.
		diags.Add(diag.New(diag.Warning, guard.StageHextPlan,
			"no-geometry", "design contains no geometry"))
		diags.Sort()
		b := s.pool.GetBuilder()
		nl, _ := b.Finish()
		s.pool.PutBuilder(b)
		s.last = f
		return &Result{Netlist: nl, Warnings: e.warnings, Diagnostics: diags}, nil
	}
	root, err := e.plan(win, 0)
	if err != nil {
		return nil, err
	}
	e.timing.FrontEnd = time.Since(t0)

	if e.flatNL != nil {
		// Whole-result hit: the final netlist, warnings and (lazily) the
		// window tree all come from one verified store entry.
		s.last = f
		captureDiskErrors()
		diags.Sort()
		return &Result{
			Netlist:     e.flatNL,
			Counters:    e.counters,
			Timing:      e.timing,
			Warnings:    append(e.warnings, e.flatWarns...),
			Diagnostics: diags,
			hier:        e.flatHier,
			hierStore:   e.disk,
			hierKey:     e.rootKey,
		}, nil
	}

	if err := e.execute(workers); err != nil {
		return nil, err
	}

	// Publish this run's results into the session memo, and collect
	// warnings in node-creation order — the serial engine's exact
	// order, whatever order the workers ran in.
	if !e.noMemo {
		for k, n := range e.nodes {
			if n.res != nil {
				e.memo[k] = n.res
			}
		}
	}
	for _, n := range e.nodeList {
		e.warnings = append(e.warnings, n.warnings...)
	}
	e.persistResults()

	t1 := time.Now()
	b := e.pool.GetBuilder()
	var nl *netlist.Netlist
	ferr := guard.Run(guard.StageHextFlatten, func() error {
		if err := guard.Inject(guard.StageHextFlatten); err != nil {
			return err
		}
		var cands []overlayCand
		e.flatten(root.res, origin, 0, b, workers, &cands)
		if ep := e.flatErr.Load(); ep != nil {
			// A forked flatten goroutine failed; its subtree is
			// incomplete, so the whole flatten is.
			return *ep
		}
		e.resolveOverlay(b, cands)
		nl, _ = b.Finish()
		return nil
	})
	if ferr != nil {
		return nil, ferr
	}
	e.timing.Flatten = time.Since(t1)
	for _, lb := range e.overlay {
		if !lb.matched {
			e.warnings = append(e.warnings,
				fmt.Sprintf("label %q at %v matches no conducting geometry", lb.name, lb.at))
		}
	}
	if e.cache != nil {
		_, e.counters.CacheBytes = e.cache.stats()
	}
	warnings := append(e.warnings, b.Warnings()...)
	e.persistFlat(root, nl, warnings[preWarn:])
	// Finish copied everything into nl and the warnings were appended
	// above, so the builder's arenas are free for the next Extract.
	e.pool.PutBuilder(b)
	s.last = f

	captureDiskErrors()
	diags.Sort()
	return &Result{
		Netlist:     nl,
		Counters:    e.counters,
		Timing:      e.timing,
		Warnings:    warnings,
		Diagnostics: diags,
		top:         root.res,
	}, nil
}

type env struct {
	ctx       context.Context
	flatErr   atomic.Pointer[error] // first forked-flatten failure
	session   *Session
	syms      map[int]*cif.Symbol
	bboxCache map[int]geom.Rect
	symHashes map[int]uint64
	memo      map[string]*winResult
	nodes     map[string]*dagNode
	nodeList  []*dagNode
	grid      int64
	maxDepth  int
	maxLeaf   int
	noMemo    bool
	fracture  Fracture
	cache     *leafCache
	disk      *store.Store
	pool      *scan.Pool
	overlay   []*overlayLabel

	// rootKey is the top window's memo key (the content address of the
	// whole design); flatNL/flatWarns hold a whole-result disk hit, and
	// flatHier is its undecoded window-tree section for lazy hierarchical
	// emission. diskLoaded marks memo keys whose results were decoded
	// from the store this run, so persistResults never re-stats them.
	rootKey    string
	flatNL     *netlist.Netlist
	flatWarns  []string
	flatHier   []byte
	diskLoaded map[string]bool

	counters Counters
	timing   Timing
	warnings []string
}

func (e *env) nextID() int {
	e.session.ids++
	return e.session.ids
}

// plan is the front end: it subdivides windows exactly like the old
// recursive engine, but instead of extracting as it goes it records
// the work as a DAG of leaf and compose nodes for execute to run.
// Node ids and list order follow the recursion's post-order, so serial
// execution reproduces the old engine's ids, warnings and wirelist
// byte-for-byte. Memo answers — from this run (e.nodes) or a previous
// Extract in the session (e.memo) — become shared or pre-resolved
// nodes ("Each time a window is considered for sub-division, the
// front-end checks a table to see if the window was previously
// analyzed").
func (e *env) plan(win window, depth int) (*dagNode, error) {
	if depth > e.maxDepth {
		return nil, fmt.Errorf("hext: window recursion exceeded depth %d", e.maxDepth)
	}
	if err := guard.Ctx(e.ctx, guard.StageHextPlan); err != nil {
		return nil, err
	}
	if err := guard.Inject(guard.StageHextPlan); err != nil {
		return nil, err
	}
	var k string
	if !e.noMemo {
		k = e.key(win)
		if depth == 0 {
			e.rootKey = k
		}
		if n, ok := e.nodes[k]; ok {
			e.counters.MemoHits++
			return n, nil
		}
		if r, ok := e.memo[k]; ok {
			e.counters.MemoHits++
			e.counters.SessionHits++
			n := &dagNode{kind: nodeDone, res: r}
			e.nodes[k] = n
			return n, nil
		}
		// The top window first tries the whole-result tier: a hit skips
		// planning, execution and flattening outright.
		if depth == 0 && e.probeFlat(k) {
			return &dagNode{kind: nodeDone}, nil
		}
		if n, ok := e.probeDisk(k); ok {
			return n, nil
		}
	}
	e.counters.UniqueWindows++

	schedule := func(n *dagNode) *dagNode {
		n.id = e.nextID()
		e.nodeList = append(e.nodeList, n)
		return n
	}
	leaf := func() *dagNode {
		e.counters.FlatCalls++
		return schedule(&dagNode{kind: nodeLeaf, win: win})
	}

	var n *dagNode
	var err error
	geoOnly := !win.hasCalls()
	uncuttable := win.w < 2 && win.h < 2
	if geoOnly && (len(win.items) <= e.maxLeaf || uncuttable) {
		n = leaf()
	} else if axis, at, ok := e.chooseCut(win); ok {
		a, b := e.splitWindow(win, axis, at)
		// Guard against pathologically dense geometry: when a cut
		// duplicates so many straddling boxes that neither side gets
		// smaller, further cutting can never reach the leaf cap —
		// extract the window whole instead of recursing exponentially.
		if geoOnly && len(a.items) >= len(win.items) && len(b.items) >= len(win.items) {
			n = leaf()
		} else {
			var na, nb *dagNode
			if na, err = e.plan(a, depth+1); err != nil {
				return nil, err
			}
			if nb, err = e.plan(b, depth+1); err != nil {
				return nil, err
			}
			e.counters.ComposeCalls++
			n = schedule(&dagNode{
				kind: nodeComp, axis: axis, at: at, w: win.w, h: win.h,
				kids: [2]*dagNode{na, nb},
			})
		}
	} else if geoOnly {
		// Oversized but uncuttable geometry: extract it whole.
		n = leaf()
	} else {
		// No cut avoids the instances: expand one level and retry
		// (the disjoint transformation's recursion step).
		if n, err = e.plan(e.expandOne(win), depth+1); err != nil {
			return nil, err
		}
	}
	if !e.noMemo {
		e.nodes[k] = n
	}
	return n, nil
}

// winTreeMinInsts is the smallest window (in leaf instances) whose
// result tree is persisted whole; smaller windows are covered by the
// leaf-sweep tier, and their tree entries would cost more I/O than
// the compose they save.
const winTreeMinInsts = 2

// winTreeKey is the store key of a window's persisted result tree.
func winTreeKey(memoKey string) string { return "w:" + memoKey }

// sweepKey is the store key of a persisted leaf sweep.
func sweepKey(contentKey string) string { return "s:" + contentKey }

// flatKey is the store key of a design's persisted whole result: the
// flattened netlist, the run's warnings and the window tree, in one
// verified entry.
func flatKey(rootMemoKey string) string { return "f:" + rootMemoKey }

// encodeFlat frames the whole-result entry: the flat section (netlist
// + warnings) length-prefixed, followed by the window-tree section.
func encodeFlat(flat, tree []byte) []byte {
	out := binary.AppendUvarint(make([]byte, 0, 10+len(flat)+len(tree)), uint64(len(flat)))
	out = append(out, flat...)
	return append(out, tree...)
}

// decodeFlatFrame splits a whole-result entry into its two sections.
func decodeFlatFrame(payload []byte) (flat, tree []byte, err error) {
	n, w := binary.Uvarint(payload)
	if w <= 0 || n > uint64(len(payload)-w) {
		return nil, nil, errCodec
	}
	return payload[w : w+int(n)], payload[w+int(n):], nil
}

// probeFlat consults the whole-result tier for the design under root
// memo key k. On a hit the final netlist and warnings are decoded
// immediately; the window tree — embedded in the entry, or deferred to
// the root's own "w:" entry when the entry is slim — is only touched
// if the caller asks for hierarchical output.
func (e *env) probeFlat(k string) bool {
	if e.disk == nil {
		return false
	}
	// Plain Get, never GetBuf: flatHier retains the tree section —
	// a sub-slice of this payload — for lazy hierarchical emission, so
	// the bytes must not be recycled by a later read.
	payload, ok := e.disk.Get(flatKey(k))
	if !ok {
		e.counters.DiskMisses++
		return false
	}
	e.counters.DiskBytes += int64(len(payload))
	flat, tree, err := decodeFlatFrame(payload)
	if err == nil {
		// A slim entry defers its tree to the root's "w:" entry; if the
		// store has since lost that, the hit could not serve -hier, so
		// retire it and recompute (which rewrites both entries).
		if len(tree) == 0 && !e.disk.Has(winTreeKey(k)) {
			err = errCodec
		}
	}
	if err == nil {
		var nl *netlist.Netlist
		var warns []string
		nl, warns, _, err = decodeSweep(flat)
		if err == nil {
			e.counters.DiskHits++
			e.flatNL, e.flatWarns, e.flatHier = nl, warns, tree
			return true
		}
	}
	e.disk.Quarantine(flatKey(k))
	e.counters.DiskMisses++
	return false
}

// persistFlat writes the whole-result entry after a computed run, so
// the next process over the same design bytes skips extraction
// entirely.
func (e *env) persistFlat(root *dagNode, nl *netlist.Netlist, warns []string) {
	if e.disk == nil || e.noMemo || e.rootKey == "" || root.res == nil {
		return
	}
	fk := flatKey(e.rootKey)
	if e.disk.Has(fk) {
		return
	}
	// persistResults already stored the root's window tree under its
	// own "w:" entry for any non-trivial design; a slim entry defers to
	// it, keeping the warm-process read proportional to the netlist,
	// not the window tree. Tiny designs below winTreeMinInsts embed the
	// tree instead.
	var tree []byte
	if !e.disk.Has(winTreeKey(e.rootKey)) {
		rev := make(map[*winResult]string, len(e.nodes))
		for k, n := range e.nodes {
			if n.res != nil {
				rev[n.res] = k
			}
		}
		tree = encodeWinTree(nil, root.res, func(r *winResult) string { return rev[r] })
	}
	// The sweep section is encoded into the session scratch buffer;
	// encodeFlat copies it into the framed payload.
	e.session.encBuf = encodeSweep(e.session.encBuf, nl, warns, 0)
	payload := encodeFlat(e.session.encBuf, tree)
	if e.disk.Put(fk, payload) == nil {
		e.counters.DiskBytes += int64(len(payload))
	}
}

// probeDisk consults the persistent store for an already-extracted
// window tree under memo key k. A hit decodes the whole result DAG —
// grafting any subtrees the session already holds in memory — and
// enters it as a pre-resolved node, so neither planning nor the back
// end ever look inside the window again. Any failure (absent entry,
// damaged payload) is a miss; damaged entries are quarantined.
func (e *env) probeDisk(k string) (*dagNode, bool) {
	if e.disk == nil {
		return nil, false
	}
	// decodeWinTree copies everything it keeps, so the session read
	// buffer can host the payload and be reused by the next probe.
	payload, ok := e.disk.GetBuf(winTreeKey(k), &e.session.readBuf)
	if !ok {
		e.counters.DiskMisses++
		return nil, false
	}
	e.counters.DiskBytes += int64(len(payload))
	lookup := func(key string) (*winResult, bool) {
		if n, ok := e.nodes[key]; ok && n.res != nil {
			return n.res, true
		}
		r, ok := e.memo[key]
		return r, ok
	}
	adopt := func(key string, r *winResult) {
		e.markDiskLoaded(key)
		if _, ok := e.nodes[key]; !ok {
			e.nodes[key] = &dagNode{kind: nodeDone, res: r}
		}
	}
	r, err := decodeWinTree(payload, lookup, adopt, e.nextID)
	if err != nil {
		// Verified bytes that fail to decode are a schema change or a
		// deliberate corruption; either way retire the entry so it is
		// not re-read every run.
		e.disk.Quarantine(winTreeKey(k))
		e.counters.DiskMisses++
		return nil, false
	}
	e.counters.DiskHits++
	e.markDiskLoaded(k)
	n := &dagNode{kind: nodeDone, res: r}
	e.nodes[k] = n
	return n, true
}

// markDiskLoaded records that key's result came from the store this
// run, so persistResults skips it without a stat.
func (e *env) markDiskLoaded(key string) {
	if e.diskLoaded == nil {
		e.diskLoaded = map[string]bool{}
	}
	e.diskLoaded[key] = true
}

// persistResults writes this run's window trees to the persistent
// store, best-effort: cancellation stops the loop, write errors are
// ignored (the next run recomputes), and entries already on disk are
// skipped with a stat. Keys are embedded per node so future decodes
// can graft shared subtrees.
func (e *env) persistResults() {
	if e.disk == nil || e.noMemo {
		return
	}
	rev := make(map[*winResult]string, len(e.nodes))
	for k, n := range e.nodes {
		if n.res != nil {
			rev[n.res] = k
		}
	}
	keyOf := func(r *winResult) string { return rev[r] }
	for k, n := range e.nodes {
		if n.res == nil || n.res.insts < winTreeMinInsts || e.diskLoaded[k] {
			continue
		}
		if guard.Ctx(e.ctx, guard.StageHextPlan) != nil {
			return
		}
		dk := winTreeKey(k)
		if e.disk.Has(dk) {
			continue
		}
		e.session.encBuf = encodeWinTree(e.session.encBuf, n.res, keyOf)
		if e.disk.Put(dk, e.session.encBuf) == nil {
			e.counters.DiskBytes += int64(len(e.session.encBuf))
		}
	}
}

// overlayCand is one leaf instance that could resolve a top-level
// overlay label: the label's point falls inside the instance and hits
// conducting geometry there. Candidates are collected during
// flattening and resolved afterwards — the instance with the smallest
// DFS sequence number wins, which is exactly the net the serial
// first-match walk used to pick, but computable in any order.
type overlayCand struct {
	overlay int   // index into env.overlay
	seq     int64 // leaf instance's DFS sequence number
	net     int32 // builder net element carrying the label
}

// parallelFlattenMin is the smallest subtree (in leaf instances) worth
// forking a goroutine and a fresh builder for.
const parallelFlattenMin = 64

// flatten instantiates the window DAG into the builder: leaf windows
// contribute their nets and device accumulators; composed windows
// apply their seam equivalences. Returns the instance's local-net and
// local-partial handles. With workers > 1, large composed windows
// flatten their children into separate builders concurrently and
// splice them with Absorb — element allocation order matches the
// serial recursion exactly, so the final netlist is byte-identical.
func (e *env) flatten(r *winResult, off geom.Point, seq int64, b *build.Builder,
	workers int, cands *[]overlayCand) ([]int32, []int32) {
	// Cancellation unwinds the recursion as an abort-panic: the
	// StageHextFlatten guard.Run in ExtractContext converts it back to
	// the original error. Threading an error return through every frame
	// (and both fork arms) is not worth it for a cooperative check.
	if err := guard.Ctx(e.ctx, guard.StageHextFlatten); err != nil {
		guard.Abort(err)
	}
	if r.leaf != nil {
		return e.flattenLeaf(r, off, seq, b, cands)
	}

	c := r.comp
	var kn, kp [2][]int32
	if workers > 1 && r.insts >= parallelFlattenMin {
		half := workers / 2
		b1 := e.pool.GetBuilder()
		var cands1 []overlayCand
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			// The forked arm needs its own recover wrapper: a panic
			// here would otherwise crash the process, not unwind the
			// extraction. The first failure is recorded and re-raised
			// on the main goroutine after the join.
			if err := guard.Run(guard.StageHextFlatten, func() error {
				kn[1], kp[1] = e.flatten(c.kids[1], off.Add(c.at[1]), seq+c.kids[0].insts,
					b1, workers-half, &cands1)
				return nil
			}); err != nil {
				ep := err
				e.flatErr.CompareAndSwap(nil, &ep)
			}
		}()
		kn[0], kp[0] = e.flatten(c.kids[0], off.Add(c.at[0]), seq, b, half, cands)
		wg.Wait()
		if ep := e.flatErr.Load(); ep != nil {
			guard.Abort(*ep)
		}
		netOff, devOff := b.Absorb(b1)
		for i := range kn[1] {
			kn[1][i] += netOff
		}
		for i := range kp[1] {
			kp[1][i] += devOff
		}
		for i := range cands1 {
			cands1[i].net += netOff
		}
		*cands = append(*cands, cands1...)
		// Absorb copied (not aliased) every arena out of b1.
		e.pool.PutBuilder(b1)
	} else {
		kn[0], kp[0] = e.flatten(c.kids[0], off.Add(c.at[0]), seq, b, 1, cands)
		kn[1], kp[1] = e.flatten(c.kids[1], off.Add(c.at[1]), seq+c.kids[0].insts, b, 1, cands)
	}

	for _, eq := range c.netEquivs {
		b.UnionNets(kn[eq[0].child][eq[0].idx], kn[eq[1].child][eq[1].idx])
	}
	for _, eq := range c.partEquivs {
		b.UnionDevs(kp[eq[0].child][eq[0].idx], kp[eq[1].child][eq[1].idx])
	}
	for _, pt := range c.partTerms {
		b.AddTerm(kp[pt.part.child][pt.part.idx], kn[pt.net.child][pt.net.idx], pt.edge)
	}
	nets := make([]int32, len(c.parentNets))
	for i, rf := range c.parentNets {
		nets[i] = kn[rf.child][rf.idx]
	}
	parts := make([]int32, len(c.parentParts))
	for i, rf := range c.parentParts {
		parts[i] = kp[rf.child][rf.idx]
	}
	return nets, parts
}

// flattenLeaf replays one leaf instance into the builder. The cached
// netlist is in anchored coordinates; adding the anchor to the
// placement offset restores the absolute frame.
func (e *env) flattenLeaf(r *winResult, off geom.Point, seq int64, b *build.Builder,
	cands *[]overlayCand) ([]int32, []int32) {
	nl := r.leaf.nl
	eff := off.Add(r.leaf.anchor)
	b.ReserveNets(len(nl.Nets))
	nets := make([]int32, len(nl.Nets))
	for i := range nl.Nets {
		nets[i] = b.NewNet(nl.Nets[i].Location.Add(eff))
		for _, nm := range nl.Nets[i].Names {
			b.NameNet(nets[i], nm)
		}
	}
	// Overlay labels falling in this instance's region become
	// candidates; resolveOverlay picks the winner per label.
	region := geom.Rect{XMin: off.X, YMin: off.Y, XMax: off.X + r.w, YMax: off.Y + r.h}
	for oi, lb := range e.overlay {
		if region.Contains(lb.at) {
			if idx, ok := labelNet(nl, lb.at.Sub(eff), lb); ok {
				*cands = append(*cands, overlayCand{overlay: oi, seq: seq, net: nets[idx]})
			}
		}
	}
	partSlot := make(map[int]int, len(r.leaf.partDevs))
	for slot, di := range r.leaf.partDevs {
		partSlot[di] = slot
	}
	parts := make([]int32, len(r.leaf.partDevs))
	b.ReserveDevs(len(nl.Devices))
	for i := range nl.Devices {
		d := &nl.Devices[i]
		dv := b.NewDev()
		bbox := geom.BBoxOf(d.Geometry).Translate(eff)
		b.AddDeviceFacts(dv, d.Area, d.ImplArea, bbox)
		b.AddGate(dv, nets[d.Gate])
		for _, t := range d.Terminals {
			b.AddTerm(dv, nets[t.Net], t.Edge)
		}
		if slot, ok := partSlot[i]; ok {
			parts[slot] = dv
		}
	}
	return nets, parts
}

// resolveOverlay applies the collected label candidates: for each
// overlay label, the candidate with the smallest DFS sequence number
// names its net (the serial walk's first match).
func (e *env) resolveOverlay(b *build.Builder, cands []overlayCand) {
	if len(cands) == 0 {
		return
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].overlay != cands[j].overlay {
			return cands[i].overlay < cands[j].overlay
		}
		return cands[i].seq < cands[j].seq
	})
	for i := 0; i < len(cands); {
		j := i
		for j < len(cands) && cands[j].overlay == cands[i].overlay {
			j++
		}
		lb := e.overlay[cands[i].overlay]
		b.NameNet(cands[i].net, lb.name)
		lb.matched = true
		i = j
	}
}
