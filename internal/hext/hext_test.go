package hext

import (
	"testing"

	"ace/internal/cif"
	"ace/internal/extract"
	"ace/internal/gen"
	"ace/internal/netlist"
)

// hextVsACE extracts the same design with both extractors and demands
// isomorphic netlists.
func hextVsACE(t *testing.T, name string, f *cif.File, opt Options) (*Result, *extract.Result) {
	t.Helper()
	hres, err := Extract(f, opt)
	if err != nil {
		t.Fatalf("%s: hext: %v", name, err)
	}
	ares, err := extract.File(f, extract.Options{})
	if err != nil {
		t.Fatalf("%s: ace: %v", name, err)
	}
	if probs := hres.Netlist.Validate(); len(probs) > 0 {
		t.Fatalf("%s: invalid hext netlist: %v", name, probs)
	}
	eq, reason := netlist.Equivalent(ares.Netlist, hres.Netlist)
	if !eq {
		t.Fatalf("%s: hext disagrees with ACE: %s\nACE: %s\nHEXT: %s",
			name, reason, ares.Netlist.Stats(), hres.Netlist.Stats())
	}
	return hres, ares
}

func TestInverter(t *testing.T) {
	hres, _ := hextVsACE(t, "inverter", gen.Inverter(), Options{})
	nl := hres.Netlist
	// Names must survive hierarchical extraction.
	for _, nm := range []string{"VDD", "GND", "INP", "OUT"} {
		if _, ok := nl.NetByName(nm); !ok {
			t.Fatalf("net %s missing\n%s", nm, nl)
		}
	}
	// Sizes are computed by the shared builder and must match the
	// paper exactly.
	for _, want := range [][2]int64{{400, 2800}, {1400, 400}} {
		found := false
		for _, d := range nl.Devices {
			if d.Length == want[0] && d.Width == want[1] {
				found = true
			}
		}
		if !found {
			t.Fatalf("no device with L=%d W=%d\n%s", want[0], want[1], nl)
		}
	}
}

func TestFourInverters(t *testing.T) {
	hres, _ := hextVsACE(t, "fourInverters", gen.FourInverters(), Options{})
	if hres.Netlist.Stats().Devices != 8 {
		t.Fatalf("devices %d", hres.Netlist.Stats().Devices)
	}
	// The pair cell is called twice and the inverter four times; the
	// memo table must fire at least once.
	if hres.Counters.MemoHits == 0 {
		t.Fatalf("no memo hits on a maximally regular design: %+v", hres.Counters)
	}
}

func TestMemoryArrayMemoisation(t *testing.T) {
	w := gen.Memory(8, 8)
	hres, _ := hextVsACE(t, "memory", w.File, Options{})
	if got := len(hres.Netlist.Devices); got != w.WantDevices {
		t.Fatalf("devices %d, want %d", got, w.WantDevices)
	}
	if got := len(hres.Netlist.Nets); got != w.WantNets {
		t.Fatalf("nets %d, want %d", got, w.WantNets)
	}
	c := hres.Counters
	// 64 cells, but only a handful of unique windows.
	if c.FlatCalls >= 16 {
		t.Fatalf("flat calls %d — memoisation not working (%+v)", c.FlatCalls, c)
	}
	if c.MemoHits == 0 {
		t.Fatalf("no memo hits: %+v", c)
	}
}

func TestSquareArrayScaling(t *testing.T) {
	// HEXT Table 4-1's mechanism: growing the ideal array 4× must grow
	// the number of unique windows only additively (O(log N)), not
	// multiplicatively.
	w16 := gen.SquareArray(16)
	w256 := gen.SquareArray(256)
	h16, _ := hextVsACE(t, "array16", w16.File, Options{})
	h256, _ := hextVsACE(t, "array256", w256.File, Options{})
	u16, u256 := h16.Counters.UniqueWindows, h256.Counters.UniqueWindows
	if u256 > u16+40 {
		t.Fatalf("unique windows grew too fast: %d (16 cells) -> %d (256 cells)", u16, u256)
	}
	if len(h256.Netlist.Devices) != 256 {
		t.Fatalf("devices %d", len(h256.Netlist.Devices))
	}
}

func TestMeshPartialTransistors(t *testing.T) {
	// A geometry-only mesh larger than the leaf cap forces geometry
	// cuts straight through transistor channels (Mesh(5)'s odd width
	// puts the midpoint cut inside the middle diffusion column): the
	// partial-transistor machinery must reassemble them exactly.
	w := gen.Mesh(5)
	hres, _ := hextVsACE(t, "mesh", w.File, Options{MaxLeafItems: 4})
	if got := len(hres.Netlist.Devices); got != w.WantDevices {
		t.Fatalf("devices %d, want %d", got, w.WantDevices)
	}
	if got := len(hres.Netlist.Nets); got != w.WantNets {
		t.Fatalf("nets %d, want %d", got, w.WantNets)
	}
	if hres.Counters.FlatCalls < 2 {
		t.Fatalf("mesh was not split: %+v", hres.Counters)
	}
}

func TestMeshSizesSurviveSplitting(t *testing.T) {
	// Beyond isomorphism: W and L of every reassembled transistor must
	// equal the flat extractor's. (Equivalent hashes sizes, but check
	// explicitly for clarity.)
	w := gen.Mesh(4)
	hres, err := Extract(w.File, Options{MaxLeafItems: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range hres.Netlist.Devices {
		if d.Length != 2*gen.Lambda || d.Width != 2*gen.Lambda {
			t.Fatalf("device L=%d W=%d, want %d/%d", d.Length, d.Width, 2*gen.Lambda, 2*gen.Lambda)
		}
	}
}

func TestInverterSplitFine(t *testing.T) {
	// Cut the single inverter into many tiny windows: every seam rule
	// (net equivalence, partial merge, seam terminals, buried and cut
	// contacts split across windows) gets exercised.
	hres, _ := hextVsACE(t, "inverterFine", gen.Inverter(), Options{MaxLeafItems: 3})
	if hres.Counters.FlatCalls < 4 {
		t.Fatalf("expected many windows: %+v", hres.Counters)
	}
	for _, want := range [][2]int64{{400, 2800}, {1400, 400}} {
		found := false
		for _, d := range hres.Netlist.Devices {
			if d.Length == want[0] && d.Width == want[1] {
				found = true
			}
		}
		if !found {
			t.Fatalf("L=%d W=%d lost in fine split\n%s", want[0], want[1], hres.Netlist)
		}
	}
}

func TestIrregular(t *testing.T) {
	w := gen.Irregular(20, 5)
	hres, _ := hextVsACE(t, "irregular", w.File, Options{})
	if got := len(hres.Netlist.Devices); got != w.WantDevices {
		t.Fatalf("devices %d, want %d", got, w.WantDevices)
	}
}

func TestDatapath(t *testing.T) {
	w := gen.Datapath(4, 4)
	hres, _ := hextVsACE(t, "datapath", w.File, Options{})
	if got := len(hres.Netlist.Devices); got != w.WantDevices {
		t.Fatalf("devices %d, want %d", got, w.WantDevices)
	}
	// Identical stages must be recognised.
	if hres.Counters.MemoHits == 0 {
		t.Fatalf("no memo hits on a regular datapath: %+v", hres.Counters)
	}
}

func TestInverterChainFunctionalWorkload(t *testing.T) {
	w := gen.InverterChain(6)
	hres, _ := hextVsACE(t, "chain", w.File, Options{})
	for _, nm := range []string{"IN", "OUT", "VDD", "GND"} {
		if _, ok := hres.Netlist.NetByName(nm); !ok {
			t.Fatalf("net %s missing", nm)
		}
	}
}

func TestChipsSmall(t *testing.T) {
	for _, name := range []string{"cherry", "testram", "schip2"} {
		c, _ := gen.ChipByName(name)
		w := c.Build(0.01)
		hres, _ := hextVsACE(t, name, w.File, Options{})
		if got := len(hres.Netlist.Devices); got != w.WantDevices {
			t.Fatalf("%s: devices %d, want %d", name, got, w.WantDevices)
		}
	}
}

func TestEmptyDesign(t *testing.T) {
	f, err := cif.ParseString("E\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Extract(f, Options{}); err == nil {
		t.Fatal("empty design should error")
	}
}

func TestCountersAndTiming(t *testing.T) {
	w := gen.Memory(4, 4)
	hres, err := Extract(w.File, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := hres.Counters
	if c.FlatCalls == 0 || c.ComposeCalls == 0 || c.UniqueWindows == 0 {
		t.Fatalf("counters not recorded: %+v", c)
	}
	if hres.Timing.Total() <= 0 {
		t.Fatal("no timing recorded")
	}
}
