package hext

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"ace/internal/build"
	"ace/internal/geom"
	"ace/internal/netlist"
	"ace/internal/tech"
	"ace/internal/wirelist"
)

// ParseHierarchical reads a hierarchical wirelist (as produced by
// Result.WriteHierarchical) and returns the flattened netlist — "the
// hierarchical wirelist can be flattened by recursively instantiating
// all calls to subparts of the top level cell" (HEXT §4). Partial
// transistors flatten exactly: the TPart clauses carry the channel
// accumulators the writer recorded.
func ParseHierarchical(r io.Reader) (*netlist.Netlist, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return ParseHierarchicalString(string(data))
}

// ParseHierarchicalString parses hierarchical wirelist text.
func ParseHierarchicalString(src string) (*netlist.Netlist, error) {
	forms, err := wirelist.ParseSexprs(src)
	if err != nil {
		return nil, err
	}
	p := &hierParser{windows: map[string]*hierWindow{}}
	for _, form := range forms {
		if err := p.form(form); err != nil {
			return nil, err
		}
	}
	if p.top == "" {
		return nil, fmt.Errorf("wirelist: no (Part WindowN (Name Top)) statement")
	}
	b := &build.Builder{}
	if _, _, err := p.instantiate(p.top, geom.Point{}, b, 0); err != nil {
		return nil, err
	}
	nl, _ := b.Finish()
	return nl, nil
}

// hierWindow is one parsed DefPart WindowN.
type hierWindow struct {
	name string

	// Leaf contents.
	devices []hierDevice
	names   map[int][]string // net index -> user names

	// Composed contents.
	parts      []hierPart
	netEquivs  [][2]hierRef
	partEquivs [][2]hierRef
	partTerms  []hierTerm
	netExports map[int]hierRef // parent N index -> child ref
	prtExports map[int]hierRef

	netCount  int
	partCount int
}

type hierDevice struct {
	typ            tech.DeviceType
	gate, src, drn int
	length, width  int64
	loc            geom.Point
	// Partial-transistor accumulator (slot >= 0 marks a partial).
	slot     int
	area     int64
	implArea int64
	edges    []netlist.Terminal
}

type hierPart struct {
	window string
	off    geom.Point
}

// hierRef addresses a net (isPart=false) or partial in a child part.
type hierRef struct {
	part   int // index into parts
	idx    int
	isPart bool
}

type hierTerm struct {
	part hierRef
	net  hierRef
	edge int64
}

type hierParser struct {
	windows map[string]*hierWindow
	top     string
}

func (p *hierParser) form(f wirelist.Sexpr) error {
	if len(f.List) == 0 {
		return nil
	}
	switch f.List[0].Atom {
	case "DefPart":
		if len(f.List) < 2 {
			return fmt.Errorf("wirelist: malformed DefPart")
		}
		name := f.List[1].Atom
		if !strings.HasPrefix(name, "Window") {
			return nil // the nEnh/nDep/nCap primitive declarations
		}
		return p.window(name, f.List[2:])
	case "Part":
		// The top-level instantiation: (Part WindowN (Name Top)).
		if len(f.List) >= 2 && strings.HasPrefix(f.List[1].Atom, "Window") {
			p.top = f.List[1].Atom
		}
		return nil
	}
	return fmt.Errorf("wirelist: unexpected top-level form %q", f.List[0].Atom)
}

func (p *hierParser) window(name string, clauses []wirelist.Sexpr) error {
	w := &hierWindow{
		name:       name,
		names:      map[int][]string{},
		netExports: map[int]hierRef{},
		prtExports: map[int]hierRef{},
	}
	partIndex := map[string]int{} // "P1" -> parts index
	bump := func(kind byte, idx int) {
		if kind == 'N' && idx >= w.netCount {
			w.netCount = idx + 1
		}
		if kind == 'T' && idx >= w.partCount {
			w.partCount = idx + 1
		}
	}
	for _, cl := range clauses {
		if len(cl.List) == 0 {
			continue
		}
		switch cl.List[0].Atom {
		case "Size", "Local":
			// Cosmetic for flattening; Local still names nets.
			for _, a := range cl.List[1:] {
				if idx, kind, ok := localIdx(a.Atom); ok {
					bump(kind, idx)
				}
			}
		case "Exports":
			for _, a := range cl.List[1:] {
				if idx, kind, ok := localIdx(a.Atom); ok {
					bump(kind, idx)
				}
			}
		case "Part":
			if len(cl.List) < 2 {
				return fmt.Errorf("wirelist: malformed Part in %s", name)
			}
			if strings.HasPrefix(cl.List[1].Atom, "Window") {
				hp := hierPart{window: cl.List[1].Atom}
				var pname string
				for _, sub := range cl.List[2:] {
					if len(sub.List) >= 2 && sub.List[0].Atom == "Name" {
						pname = sub.List[1].Atom
					}
					if len(sub.List) >= 3 && sub.List[0].Atom == "LocOffset" {
						x, _ := strconv.ParseInt(sub.List[1].Atom, 10, 64)
						y, _ := strconv.ParseInt(sub.List[2].Atom, 10, 64)
						hp.off = geom.Pt(x, y)
					}
				}
				partIndex[pname] = len(w.parts)
				w.parts = append(w.parts, hp)
				continue
			}
			dev, err := parseHierDevice(cl, name)
			if err != nil {
				return err
			}
			bump('N', dev.gate)
			bump('N', dev.src)
			bump('N', dev.drn)
			if dev.slot >= 0 {
				bump('T', dev.slot)
			}
			for _, e := range dev.edges {
				bump('N', e.Net)
			}
			w.devices = append(w.devices, dev)
		case "Net":
			// Either a leaf name binding (Net N0 VDD ...), a seam
			// equivalence (Net P1/N3 P2/N5), or an export binding
			// (Net N0 P1/N1).
			refs, names, err := parseRefsAndNames(cl.List[1:], partIndex)
			if err != nil {
				return fmt.Errorf("%v in %s", err, name)
			}
			switch {
			case len(refs) == 2 && refs[0].part >= 0 && refs[1].part >= 0:
				w.netEquivs = append(w.netEquivs, [2]hierRef{refs[0], refs[1]})
			case len(refs) == 2 && refs[0].part < 0 && refs[1].part >= 0:
				bump('N', refs[0].idx)
				w.netExports[refs[0].idx] = refs[1]
			case len(refs) == 1 && refs[0].part < 0:
				bump('N', refs[0].idx)
				w.names[refs[0].idx] = append(w.names[refs[0].idx], names...)
			default:
				return fmt.Errorf("wirelist: unintelligible Net clause in %s", name)
			}
		case "TPartEquiv":
			refs, _, err := parseRefsAndNames(cl.List[1:], partIndex)
			if err != nil || len(refs) != 2 {
				return fmt.Errorf("wirelist: malformed TPartEquiv in %s", name)
			}
			w.partEquivs = append(w.partEquivs, [2]hierRef{refs[0], refs[1]})
		case "TPartTerm":
			if len(cl.List) != 4 {
				return fmt.Errorf("wirelist: malformed TPartTerm in %s", name)
			}
			refs, _, err := parseRefsAndNames(cl.List[1:3], partIndex)
			if err != nil || len(refs) != 2 {
				return fmt.Errorf("wirelist: malformed TPartTerm refs in %s", name)
			}
			edge, err := strconv.ParseInt(cl.List[3].Atom, 10, 64)
			if err != nil {
				return fmt.Errorf("wirelist: bad TPartTerm edge in %s", name)
			}
			w.partTerms = append(w.partTerms, hierTerm{part: refs[0], net: refs[1], edge: edge})
		case "TPart":
			// Export binding: (TPart T0 P1/T2).
			refs, _, err := parseRefsAndNames(cl.List[1:], partIndex)
			if err != nil || len(refs) != 2 || refs[0].part >= 0 || refs[1].part < 0 {
				return fmt.Errorf("wirelist: malformed TPart export in %s", name)
			}
			bump('T', refs[0].idx)
			w.prtExports[refs[0].idx] = refs[1]
		default:
			return fmt.Errorf("wirelist: unknown clause %q in %s", cl.List[0].Atom, name)
		}
	}
	if _, dup := p.windows[name]; dup {
		return fmt.Errorf("wirelist: window %s defined twice", name)
	}
	p.windows[name] = w
	return nil
}

func parseHierDevice(cl wirelist.Sexpr, winName string) (hierDevice, error) {
	d := hierDevice{slot: -1, gate: -1, src: -1, drn: -1}
	if len(cl.List) < 2 {
		return d, fmt.Errorf("wirelist: malformed Part in %s", winName)
	}
	switch cl.List[1].Atom {
	case "nEnh":
		d.typ = tech.Enhancement
	case "nDep":
		d.typ = tech.Depletion
	case "nCap":
		d.typ = tech.Capacitor
	default:
		return d, fmt.Errorf("wirelist: unknown part %q in %s", cl.List[1].Atom, winName)
	}
	for _, sub := range cl.List[2:] {
		if len(sub.List) == 0 {
			continue
		}
		switch sub.List[0].Atom {
		case "Loc":
			if len(sub.List) == 3 {
				x, _ := strconv.ParseInt(sub.List[1].Atom, 10, 64)
				y, _ := strconv.ParseInt(sub.List[2].Atom, 10, 64)
				d.loc = geom.Pt(x, y)
			}
		case "T":
			if len(sub.List) != 3 {
				return d, fmt.Errorf("wirelist: malformed T in %s", winName)
			}
			idx, kind, ok := localIdx(sub.List[2].Atom)
			if !ok || kind != 'N' {
				return d, fmt.Errorf("wirelist: bad terminal net %q in %s", sub.List[2].Atom, winName)
			}
			switch sub.List[1].Atom {
			case "G":
				d.gate = idx
			case "S":
				d.src = idx
			case "D":
				d.drn = idx
			}
		case "Channel":
			for _, ch := range sub.List[1:] {
				if len(ch.List) == 2 {
					v, _ := strconv.ParseInt(ch.List[1].Atom, 10, 64)
					switch ch.List[0].Atom {
					case "Length":
						d.length = v
					case "Width":
						d.width = v
					}
				}
			}
		case "TPart":
			// (TPart T0 (Area a) (Impl i) (Edges (N1 e) ...))
			if len(sub.List) < 2 {
				return d, fmt.Errorf("wirelist: malformed TPart in %s", winName)
			}
			idx, kind, ok := localIdx(sub.List[1].Atom)
			if !ok || kind != 'T' {
				return d, fmt.Errorf("wirelist: bad TPart slot in %s", winName)
			}
			d.slot = idx
			for _, fact := range sub.List[2:] {
				if len(fact.List) < 2 {
					continue
				}
				switch fact.List[0].Atom {
				case "Area":
					d.area, _ = strconv.ParseInt(fact.List[1].Atom, 10, 64)
				case "Impl":
					d.implArea, _ = strconv.ParseInt(fact.List[1].Atom, 10, 64)
				case "Edges":
					for _, e := range fact.List[1:] {
						if len(e.List) != 2 {
							continue
						}
						n, _, ok := localIdx(e.List[0].Atom)
						if !ok {
							continue
						}
						ev, _ := strconv.ParseInt(e.List[1].Atom, 10, 64)
						d.edges = append(d.edges, netlist.Terminal{Net: n, Edge: ev})
					}
				}
			}
		case "Name":
			// Cosmetic.
		}
	}
	if d.gate < 0 || d.src < 0 || d.drn < 0 {
		return d, fmt.Errorf("wirelist: device missing terminals in %s", winName)
	}
	return d, nil
}

// localIdx parses "N12" or "T3".
func localIdx(s string) (int, byte, bool) {
	if len(s) < 2 || (s[0] != 'N' && s[0] != 'T') {
		return 0, 0, false
	}
	v, err := strconv.Atoi(s[1:])
	if err != nil || v < 0 {
		return 0, 0, false
	}
	return v, s[0], true
}

// parseRefsAndNames splits clause operands into child refs ("P1/N3",
// part>=0), local refs ("N3", part=-1) and plain names.
func parseRefsAndNames(atoms []wirelist.Sexpr, partIndex map[string]int) ([]hierRef, []string, error) {
	var refs []hierRef
	var names []string
	for _, a := range atoms {
		s := a.Atom
		if s == "" {
			continue
		}
		if pname, rest, ok := strings.Cut(s, "/"); ok {
			pi, found := partIndex[pname]
			if !found {
				return nil, nil, fmt.Errorf("wirelist: unknown part %q", pname)
			}
			idx, kind, okIdx := localIdx(rest)
			if !okIdx {
				return nil, nil, fmt.Errorf("wirelist: bad ref %q", s)
			}
			refs = append(refs, hierRef{part: pi, idx: idx, isPart: kind == 'T'})
			continue
		}
		if idx, kind, ok := localIdx(s); ok {
			refs = append(refs, hierRef{part: -1, idx: idx, isPart: kind == 'T'})
			continue
		}
		names = append(names, s)
	}
	return refs, names, nil
}

// instantiate recursively flattens a window into the builder, exactly
// mirroring env.flatten over the in-memory DAG.
func (p *hierParser) instantiate(name string, off geom.Point, b *build.Builder, depth int) ([]int32, []int32, error) {
	if depth > 256 {
		return nil, nil, fmt.Errorf("wirelist: window nesting too deep (cycle?)")
	}
	w, ok := p.windows[name]
	if !ok {
		return nil, nil, fmt.Errorf("wirelist: undefined window %s", name)
	}

	nets := make([]int32, w.netCount)
	for i := range nets {
		nets[i] = -1
	}
	parts := make([]int32, w.partCount)
	for i := range parts {
		parts[i] = -1
	}

	if len(w.parts) == 0 {
		// Leaf window.
		for i := range nets {
			nets[i] = b.NewNet(off)
			for _, nm := range w.names[i] {
				b.NameNet(nets[i], nm)
			}
		}
		for _, d := range w.devices {
			dv := b.NewDev()
			loc := d.loc.Add(off)
			if d.slot >= 0 {
				// Partial: feed the accumulator facts verbatim.
				b.AddDeviceFacts(dv, d.area, d.implArea,
					geom.Rect{XMin: loc.X, YMin: loc.Y - 1, XMax: loc.X + 1, YMax: loc.Y})
				b.AddGate(dv, nets[d.gate])
				for _, e := range d.edges {
					b.AddTerm(dv, nets[e.Net], e.Edge)
				}
				parts[d.slot] = dv
				continue
			}
			// Complete device: area = L·W and both contact edges equal
			// to W reproduce the published size exactly through the
			// builder's mean-edge formula.
			impl := int64(0)
			if d.typ == tech.Depletion {
				impl = d.length * d.width
			}
			b.AddDeviceFacts(dv, d.length*d.width, impl,
				geom.Rect{XMin: loc.X, YMin: loc.Y - 1, XMax: loc.X + 1, YMax: loc.Y})
			b.AddGate(dv, nets[d.gate])
			if d.src == d.drn {
				b.AddTerm(dv, nets[d.src], d.width)
			} else {
				b.AddTerm(dv, nets[d.src], d.width)
				b.AddTerm(dv, nets[d.drn], d.width)
			}
		}
		return nets, parts, nil
	}

	// Composed window: instantiate children, apply seam equivalences.
	childNets := make([][]int32, len(w.parts))
	childParts := make([][]int32, len(w.parts))
	for i, hp := range w.parts {
		var err error
		childNets[i], childParts[i], err = p.instantiate(hp.window, off.Add(hp.off), b, depth+1)
		if err != nil {
			return nil, nil, err
		}
	}
	resolve := func(r hierRef) (int32, error) {
		if r.part < 0 || r.part >= len(w.parts) {
			return -1, fmt.Errorf("wirelist: bad child ref in %s", name)
		}
		list := childNets[r.part]
		if r.isPart {
			list = childParts[r.part]
		}
		if r.idx >= len(list) || list[r.idx] < 0 {
			return -1, fmt.Errorf("wirelist: ref %s/%d out of range in %s",
				w.parts[r.part].window, r.idx, name)
		}
		return list[r.idx], nil
	}
	for _, eq := range w.netEquivs {
		a, err := resolve(eq[0])
		if err != nil {
			return nil, nil, err
		}
		c, err := resolve(eq[1])
		if err != nil {
			return nil, nil, err
		}
		b.UnionNets(a, c)
	}
	for _, eq := range w.partEquivs {
		a, err := resolve(eq[0])
		if err != nil {
			return nil, nil, err
		}
		c, err := resolve(eq[1])
		if err != nil {
			return nil, nil, err
		}
		b.UnionDevs(a, c)
	}
	for _, pt := range w.partTerms {
		dv, err := resolve(pt.part)
		if err != nil {
			return nil, nil, err
		}
		nt, err := resolve(pt.net)
		if err != nil {
			return nil, nil, err
		}
		b.AddTerm(dv, nt, pt.edge)
	}
	for idx, rf := range w.netExports {
		id, err := resolve(rf)
		if err != nil {
			return nil, nil, err
		}
		nets[idx] = id
	}
	for idx, rf := range w.prtExports {
		id, err := resolve(rf)
		if err != nil {
			return nil, nil, err
		}
		parts[idx] = id
	}
	return nets, parts, nil
}
