package hext

import (
	"strings"
	"testing"

	"ace/internal/gen"
	"ace/internal/netlist"
)

func roundTripHier(t *testing.T, name string, res *Result) {
	t.Helper()
	text := res.HierarchicalString()
	back, err := ParseHierarchicalString(text)
	if err != nil {
		t.Fatalf("%s: parse: %v\n%s", name, err, truncate(text, 3000))
	}
	if eq, why := netlist.Equivalent(res.Netlist, back); !eq {
		t.Fatalf("%s: hierarchical round trip not equivalent: %s\noriginal: %s\nparsed: %s",
			name, why, res.Netlist.Stats(), back.Stats())
	}
}

func TestHierRoundTripFourInverters(t *testing.T) {
	res, err := Extract(gen.FourInverters(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	roundTripHier(t, "fourInverters", res)
	// Names must survive: they live in leaf Net clauses... top-level
	// overlay labels are applied at flatten time, not in the text, so
	// only in-window names round trip. Check the parse result is
	// structurally complete instead.
	back, _ := ParseHierarchicalString(res.HierarchicalString())
	if len(back.Devices) != 8 {
		t.Fatalf("devices %d", len(back.Devices))
	}
}

func TestHierRoundTripMemory(t *testing.T) {
	res, err := Extract(gen.Memory(4, 6).File, Options{})
	if err != nil {
		t.Fatal(err)
	}
	roundTripHier(t, "memory", res)
}

func TestHierRoundTripMeshPartials(t *testing.T) {
	// The crucial case: partial transistors split across windows must
	// flatten from TEXT to the same sizes as the in-memory DAG.
	res, err := Extract(gen.Mesh(5).File, Options{MaxLeafItems: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.HierarchicalString(), "TPart") {
		t.Fatal("workload has no partials; test is vacuous")
	}
	roundTripHier(t, "mesh", res)
	back, _ := ParseHierarchicalString(res.HierarchicalString())
	for _, d := range back.Devices {
		if d.Length != 2*gen.Lambda || d.Width != 2*gen.Lambda {
			t.Fatalf("partial reassembly from text wrong: L=%d W=%d", d.Length, d.Width)
		}
	}
}

func TestHierRoundTripChain(t *testing.T) {
	res, err := Extract(gen.InverterChain(4).File, Options{})
	if err != nil {
		t.Fatal(err)
	}
	roundTripHier(t, "chain", res)
}

func TestHierParseErrors(t *testing.T) {
	cases := map[string]string{
		"no top":        `(DefPart Window1 (Exports ) (Local ))`,
		"undefined win": `(Part Window9 (Name Top))`,
		"dup window":    `(DefPart Window1 (Local ))(DefPart Window1 (Local ))(Part Window1 (Name Top))`,
		"bad clause":    `(DefPart Window1 (Bogus ))(Part Window1 (Name Top))`,
		"bad ref": `(DefPart Window1 (Local N0))
(DefPart Window2 (Part Window1 (Name P1) (LocOffset 0 0)) (Net N0 P9/N0))
(Part Window2 (Name Top))`,
	}
	for name, src := range cases {
		if _, err := ParseHierarchicalString(src); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestHierParseMinimalLeaf(t *testing.T) {
	src := `
(DefPart nEnh (Exports G S D))
(DefPart Window1 (Size 100 100)
 (Exports N0 N1 N2 )
 (Part nEnh (Name D0) (Loc 5 5) (T G N0) (T S N1) (T D N2) (Channel (Length 200) (Width 400)))
 (Net N0 CLK)
 (Local ))
(Part Window1 (Name Top))
`
	nl, err := ParseHierarchicalString(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(nl.Devices) != 1 || nl.Devices[0].Length != 200 || nl.Devices[0].Width != 400 {
		t.Fatalf("device %+v", nl.Devices)
	}
	if _, ok := nl.NetByName("CLK"); !ok {
		t.Fatal("name lost")
	}
}
