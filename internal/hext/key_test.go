package hext

import (
	"testing"

	"ace/internal/cif"
	"ace/internal/gen"
	"ace/internal/geom"
	"ace/internal/tech"
)

func newTestEnv(f *cif.File) *env {
	s := NewSession(Options{})
	return &env{
		session:   s,
		syms:      f.Symbols,
		bboxCache: map[int]geom.Rect{},
		symHashes: map[int]uint64{},
		memo:      s.memo,
		nodes:     map[string]*dagNode{},
		grid:      10,
		maxDepth:  64,
		maxLeaf:   2000,
		cache:     s.cache,
	}
}

// translateFile returns a copy of f with every top-level item moved by
// (dx, dy) — i.e. the whole design translated.
func translateFile(t *testing.T, f *cif.File, dx, dy int64) *cif.File {
	t.Helper()
	out := &cif.File{Symbols: f.Symbols, Warnings: f.Warnings}
	d := geom.Pt(dx, dy)
	for _, it := range f.Top {
		switch it.Kind {
		case cif.ItemBox:
			it.Box = it.Box.Translate(d)
		case cif.ItemCall:
			it.Trans = it.Trans.Then(geom.Translate(dx, dy))
		case cif.ItemLabel:
			it.At = it.At.Add(d)
		default:
			t.Fatalf("translateFile: unhandled item kind %v", it.Kind)
		}
		out.Top = append(out.Top, it)
	}
	return out
}

// Translating a whole design must leave every window key unchanged:
// re-extracting the translated design in the same session answers
// every window from the memo table and every sweep from the content
// cache.
func TestKeysTranslationInvariant(t *testing.T) {
	for _, off := range [][2]int64{{123457, 0}, {0, -98765}, {31, 17}, {-100000, 100000}} {
		w := gen.Memory(6, 6)
		s := NewSession(Options{})
		res1, err := s.Extract(w.File)
		if err != nil {
			t.Fatal(err)
		}
		f2 := translateFile(t, w.File, off[0], off[1])
		res2, err := s.Extract(f2)
		if err != nil {
			t.Fatal(err)
		}
		c := res2.Counters
		if c.UniqueWindows != 0 || c.FlatCalls != 0 || c.ComposeCalls != 0 {
			t.Fatalf("offset %v: translated design re-planned windows: unique=%d flat=%d compose=%d",
				off, c.UniqueWindows, c.FlatCalls, c.ComposeCalls)
		}
		if c.CacheMisses != 0 || c.LeafSweeps != 0 {
			t.Fatalf("offset %v: translated design re-swept content: misses=%d sweeps=%d",
				off, c.CacheMisses, c.LeafSweeps)
		}
		if len(res2.Netlist.Devices) != len(res1.Netlist.Devices) ||
			len(res2.Netlist.Nets) != len(res1.Netlist.Nets) {
			t.Fatalf("offset %v: translated netlist differs: %s vs %s",
				off, res1.Netlist.Stats(), res2.Netlist.Stats())
		}
	}
}

// The content key must not change when the content is translated
// inside a (possibly different) frame: that is the sharing the sweep
// cache is built on.
func TestContentKeyTranslationInvariant(t *testing.T) {
	items := []witem{
		{kind: cif.ItemBox, layer: tech.Metal, box: geom.R(2, 3, 12, 7)},
		{kind: cif.ItemBox, layer: tech.Poly, box: geom.R(5, 0, 8, 20)},
		{kind: cif.ItemBox, layer: tech.Diff, box: geom.R(0, 5, 20, 9)},
		{kind: cif.ItemLabel, name: "A", at: geom.Pt(6, 6), layer: tech.Metal, lbL: true},
	}
	base := window{w: 30, h: 30, items: items}
	bb, lb, ab := leafContent(base)
	kb := contentKey(bb, lb, ab)

	for _, off := range [][2]int64{{7, 13}, {100, 0}, {0, 55}} {
		moved := window{w: 200, h: 150}
		d := geom.Pt(off[0], off[1])
		for _, it := range items {
			it.box = it.box.Translate(d)
			it.at = it.at.Add(d)
			moved.items = append(moved.items, it)
		}
		bm, lm, am := leafContent(moved)
		km := contentKey(bm, lm, am)
		if km != kb {
			t.Fatalf("offset %v: content key changed under translation", off)
		}
		if fnv64str(km) != fnv64str(kb) {
			t.Fatalf("offset %v: content hash changed under translation", off)
		}
	}

	// Item order must not matter either (cached sweeps are shared
	// between windows that assembled the same content differently).
	rev := window{w: 30, h: 30}
	for i := len(items) - 1; i >= 0; i-- {
		rev.items = append(rev.items, items[i])
	}
	br, lr, ar := leafContent(rev)
	if contentKey(br, lr, ar) != kb {
		t.Fatal("content key depends on item order")
	}
}

// Gen-driven collision check: windows differing by one box must hash
// differently. Leave-one-out over a statistical design gives n+1
// closely related contents; any two sharing a hash while differing in
// key would be a collision.
func TestContentKeyHashCollisionFree(t *testing.T) {
	w := gen.Statistical(500, 9)
	e := newTestEnv(w.File)
	win, _, ok := e.newTopWindow(w.File.Top)
	if !ok {
		t.Fatal("no geometry")
	}
	for win.hasCalls() {
		win = e.expandOne(win)
	}
	seen := map[uint64]string{}
	record := func(wn window) {
		bs, ls, a := leafContent(wn)
		k := contentKey(bs, ls, a)
		h := fnv64str(k)
		if prev, ok := seen[h]; ok && prev != k {
			t.Fatalf("hash collision: two distinct contents share %#x", h)
		}
		seen[h] = k
	}
	record(win)
	for i := range win.items {
		loo := window{w: win.w, h: win.h}
		loo.items = append(loo.items, win.items[:i]...)
		loo.items = append(loo.items, win.items[i+1:]...)
		record(loo)
	}
	// Perturbing a single box must change the hash (keys are exact, so
	// this asserts the hash actually sees the coordinates).
	perturbed := window{w: win.w, h: win.h, items: append([]witem(nil), win.items...)}
	perturbed.items[0].box = perturbed.items[0].box.Translate(geom.Pt(1, 0))
	pb, pl, pa := leafContent(perturbed)
	ob, ol, oa := leafContent(win)
	if contentKey(pb, pl, pa) == contentKey(ob, ol, oa) {
		t.Fatal("perturbed content has identical key")
	}
	if fnv64str(contentKey(pb, pl, pa)) == fnv64str(contentKey(ob, ol, oa)) {
		t.Fatal("perturbed content has identical hash")
	}
}
