package hext

import (
	"sort"

	"ace/internal/cif"
	"ace/internal/frontend"
	"ace/internal/geom"
	"ace/internal/netlist"
	"ace/internal/scan"
)

// extractLeaf runs the modified flat extractor over a geometry-only
// window: ACE's scanline sweep with geometry keeping enabled, followed
// by interface computation — "the modified version of ACE has extra
// code to output an interface for each window that it analyzes"
// (HEXT §3).
func (e *env) extractLeaf(win window) *winResult {
	var boxes []frontend.Box
	var labels []frontend.Label
	for _, it := range win.items {
		switch it.kind {
		case cif.ItemBox:
			if !it.box.Empty() {
				boxes = append(boxes, frontend.Box{Layer: it.layer, Rect: it.box})
			}
		case cif.ItemLabel:
			labels = append(labels, frontend.Label{
				Name: it.name, At: it.at, Layer: it.layer, HasLayer: it.lbL,
			})
		}
	}
	sort.SliceStable(boxes, func(i, j int) bool {
		return boxes[i].Rect.YMax > boxes[j].Rect.YMax
	})

	res, err := scan.Sweep(&boxSource{boxes: boxes}, scan.Options{
		KeepGeometry: true,
		Labels:       labels,
	})
	if err != nil {
		// The sweep only fails on internal invariant violations;
		// surface it as an empty window plus a warning.
		e.warnings = append(e.warnings, err.Error())
		res = &scan.Result{Netlist: &netlist.Netlist{}}
	}
	e.warnings = append(e.warnings, res.Warnings...)

	r := &winResult{
		id: e.nextID(),
		w:  win.w, h: win.h,
		leaf: &leafData{nl: res.Netlist, boxes: len(boxes)},
	}
	r.netCount = len(res.Netlist.Nets)

	frame := geom.Rect{XMin: 0, YMin: 0, XMax: win.w, YMax: win.h}

	// Net interface segments: net geometry touching the boundary.
	for i := range res.Netlist.Nets {
		for _, g := range res.Netlist.Nets[i].Geometry {
			el, ok := elayerOf(g.Layer)
			if !ok {
				continue
			}
			r.addBoundaryEdges(el, g.Rect, frame, int32(i))
		}
	}

	// Partial transistors: devices whose channel touches the boundary.
	for di := range res.Netlist.Devices {
		slot := -1
		for _, cr := range res.Netlist.Devices[di].Geometry {
			if touchesFrame(cr, frame) {
				if slot < 0 {
					slot = len(r.leaf.partDevs)
					r.leaf.partDevs = append(r.leaf.partDevs, di)
				}
				r.addBoundaryEdges(eChan, cr, frame, int32(slot))
			}
		}
	}
	r.partCount = len(r.leaf.partDevs)
	return r
}

// addBoundaryEdges appends interface edges for the parts of rect r
// lying on the window frame.
func (w *winResult) addBoundaryEdges(el elayer, r geom.Rect, frame geom.Rect, ref int32) {
	if r.XMin == frame.XMin {
		w.edges = append(w.edges, edge{layer: el, face: faceL, lo: r.YMin, hi: r.YMax, ref: ref})
	}
	if r.XMax == frame.XMax {
		w.edges = append(w.edges, edge{layer: el, face: faceR, lo: r.YMin, hi: r.YMax, ref: ref})
	}
	if r.YMin == frame.YMin {
		w.edges = append(w.edges, edge{layer: el, face: faceB, lo: r.XMin, hi: r.XMax, ref: ref})
	}
	if r.YMax == frame.YMax {
		w.edges = append(w.edges, edge{layer: el, face: faceT, lo: r.XMin, hi: r.XMax, ref: ref})
	}
}

func touchesFrame(r geom.Rect, frame geom.Rect) bool {
	return r.XMin == frame.XMin || r.XMax == frame.XMax ||
		r.YMin == frame.YMin || r.YMax == frame.YMax
}

// boxSource adapts a pre-sorted box slice to scan.Source.
type boxSource struct {
	boxes []frontend.Box
	pos   int
}

func (s *boxSource) NextTop() (int64, bool) {
	if s.pos >= len(s.boxes) {
		return 0, false
	}
	return s.boxes[s.pos].Rect.YMax, true
}

func (s *boxSource) Next() (frontend.Box, bool) {
	if s.pos >= len(s.boxes) {
		return frontend.Box{}, false
	}
	b := s.boxes[s.pos]
	s.pos++
	return b, true
}
