package hext

import (
	"sort"

	"ace/internal/cif"
	"ace/internal/frontend"
	"ace/internal/geom"
	"ace/internal/netlist"
	"ace/internal/scan"
)

// extractLeaf runs the modified flat extractor over a geometry-only
// window: ACE's scanline sweep with geometry keeping enabled, followed
// by interface computation — "the modified version of ACE has extra
// code to output an interface for each window that it analyzes"
// (HEXT §3).
//
// The sweep itself is content-addressed: the window's contents are
// rebased to their bounding-box anchor, so two windows whose contents
// differ only by translation (different margins inside their frames)
// share one sweep through the content cache. The frame-dependent part
// — boundary edges and partial-transistor slots — is recomputed per
// window from the cached netlist.
func (x *execCtx) extractLeaf(n *dagNode) (*winResult, []string) {
	boxes, labels, anchor := leafContent(n.win)

	var (
		nl     *netlist.Netlist
		warns  []string
		nboxes int
	)
	if c := x.cache; c != nil {
		ck := contentKey(boxes, labels, anchor)
		ent, owner := c.lookup(fnv64str(ck), ck)
		if owner {
			// Owner of a memory miss: try the disk tier before sweeping.
			// Single-flight is preserved across both tiers — waiters on
			// ent.ready get whichever source the owner used.
			x.counters.CacheMisses++
			snl, swarns, sboxes, ok := x.diskSweep(ck)
			if !ok {
				x.counters.LeafSweeps++
				snl, swarns = runLeafSweep(boxes, labels, anchor, x.pool)
				sboxes = len(boxes)
				x.putSweep(ck, snl, swarns, sboxes)
			}
			c.complete(ent, snl, swarns, sboxes)
		} else {
			<-ent.ready
			x.counters.CacheHits++
		}
		nl, warns, nboxes = ent.nl, ent.warnings, ent.boxes
	} else if x.disk != nil {
		ck := contentKey(boxes, labels, anchor)
		var ok bool
		if nl, warns, nboxes, ok = x.diskSweep(ck); !ok {
			x.counters.LeafSweeps++
			nl, warns = runLeafSweep(boxes, labels, anchor, x.pool)
			nboxes = len(boxes)
			x.putSweep(ck, nl, warns, nboxes)
		}
	} else {
		x.counters.LeafSweeps++
		nl, warns = runLeafSweep(boxes, labels, anchor, x.pool)
		nboxes = len(boxes)
	}
	return buildLeafResult(n.id, n.win, nl, anchor, nboxes), warns
}

// diskSweep reads a persisted leaf sweep from the disk tier. Failures
// of any kind are a miss; an entry whose verified payload fails to
// decode is quarantined.
func (x *execCtx) diskSweep(ck string) (*netlist.Netlist, []string, int, bool) {
	if x.disk == nil {
		return nil, nil, 0, false
	}
	// decodeSweep copies everything it keeps, so the worker's read
	// buffer can host the payload and be reused by the next probe.
	payload, ok := x.disk.GetBuf(sweepKey(ck), &x.readBuf)
	if !ok {
		x.counters.DiskMisses++
		return nil, nil, 0, false
	}
	nl, warns, boxes, err := decodeSweep(payload)
	if err != nil {
		x.disk.Quarantine(sweepKey(ck))
		x.counters.DiskMisses++
		return nil, nil, 0, false
	}
	x.counters.DiskHits++
	x.counters.DiskBytes += int64(len(payload))
	return nl, warns, boxes, true
}

// putSweep persists a freshly-run leaf sweep, best-effort.
func (x *execCtx) putSweep(ck string, nl *netlist.Netlist, warns []string, boxes int) {
	if x.disk == nil {
		return
	}
	x.encBuf = encodeSweep(x.encBuf, nl, warns, boxes)
	if x.disk.Put(sweepKey(ck), x.encBuf) == nil {
		x.counters.DiskBytes += int64(len(x.encBuf))
	}
}

// leafContent gathers a window's geometry and labels (in window-frame
// coordinates) plus the anchor: the lower-left corner of the content's
// bounding box. An empty window anchors at the origin.
func leafContent(win window) (boxes []frontend.Box, labels []frontend.Label, anchor geom.Point) {
	first := true
	touch := func(x, y int64) {
		if first {
			anchor = geom.Pt(x, y)
			first = false
			return
		}
		if x < anchor.X {
			anchor.X = x
		}
		if y < anchor.Y {
			anchor.Y = y
		}
	}
	for _, it := range win.items {
		switch it.kind {
		case cif.ItemBox:
			if it.box.Empty() {
				continue
			}
			boxes = append(boxes, frontend.Box{Layer: it.layer, Rect: it.box})
			touch(it.box.XMin, it.box.YMin)
		case cif.ItemLabel:
			labels = append(labels, frontend.Label{
				Name: it.name, At: it.at, Layer: it.layer, HasLayer: it.lbL,
			})
			touch(it.at.X, it.at.Y)
		}
	}
	return boxes, labels, anchor
}

// contentKey builds the canonical, translation-invariant key of a leaf
// window's content: its sorted anchored records, frame-free. Two
// windows get equal keys exactly when their contents coincide after
// rebasing each to its own anchor — the equivalence class the content
// cache shares sweeps across.
func contentKey(boxes []frontend.Box, labels []frontend.Label, anchor geom.Point) string {
	recs := make([][]byte, 0, len(boxes)+len(labels))
	for _, bx := range boxes {
		b := make([]byte, 1+1+4*8)
		b[0] = 0
		b[1] = byte(bx.Layer)
		putI64(b[2:], bx.Rect.XMin-anchor.X, bx.Rect.YMin-anchor.Y,
			bx.Rect.XMax-anchor.X, bx.Rect.YMax-anchor.Y)
		recs = append(recs, b)
	}
	for _, lb := range labels {
		b := make([]byte, 1+2*8+2, 1+2*8+2+len(lb.Name))
		b[0] = 2
		putI64(b[1:], lb.At.X-anchor.X, lb.At.Y-anchor.Y)
		b[17] = byte(lb.Layer)
		if lb.HasLayer {
			b[18] = 1
		}
		b = append(b, lb.Name...)
		recs = append(recs, b)
	}
	sort.Slice(recs, func(i, j int) bool { return string(recs[i]) < string(recs[j]) })
	size := 0
	for _, r := range recs {
		size += 2 + len(r)
	}
	out := make([]byte, 0, size)
	for _, r := range recs {
		out = append(out, byte(len(r)), byte(len(r)>>8))
		out = append(out, r...)
	}
	return string(out)
}

// runLeafSweep sweeps the content in anchored coordinates. The boxes
// are put into a total order first (scan.SortTopDown), so the sweep's
// output depends only on the content multiset — required for cached
// results to be interchangeable with fresh ones regardless of the
// order the window assembled its items in.
func runLeafSweep(boxes []frontend.Box, labels []frontend.Label, anchor geom.Point, pool *scan.Pool) (*netlist.Netlist, []string) {
	shift := geom.Pt(-anchor.X, -anchor.Y)
	ab := pool.GetBoxBuf()
	for _, bx := range boxes {
		ab = append(ab, frontend.Box{Layer: bx.Layer, Rect: bx.Rect.Translate(shift)})
	}
	scan.SortTopDown(ab)
	al := make([]frontend.Label, len(labels))
	for i, lb := range labels {
		al[i] = lb
		al[i].At = lb.At.Add(shift)
	}
	res, err := scan.Sweep(scan.NewBoxSource(ab), scan.Options{
		KeepGeometry: true,
		Labels:       al,
		Pool:         pool,
	})
	if err != nil {
		// The sweep only fails on internal invariant violations;
		// surface it as an empty window plus a warning. The failed
		// sweeper (and the box buffer it references) is dropped, not
		// repooled.
		return &netlist.Netlist{}, []string{err.Error()}
	}
	// Finish copied the geometry it kept, so the anchored input run is
	// free again.
	pool.PutBoxBuf(ab)
	return res.Netlist, res.Warnings
}

// buildLeafResult computes the frame-dependent half of a leaf window
// from an (anchored) swept netlist: interface edges for net geometry
// on the boundary and partial-transistor slots for channels touching
// it.
func buildLeafResult(id int, win window, nl *netlist.Netlist, anchor geom.Point, boxes int) *winResult {
	r := &winResult{
		id: id,
		w:  win.w, h: win.h,
		insts: 1,
		leaf:  &leafData{nl: nl, anchor: anchor, boxes: boxes},
	}
	r.netCount = len(nl.Nets)

	frame := geom.Rect{XMin: 0, YMin: 0, XMax: win.w, YMax: win.h}

	// Net interface segments: net geometry touching the boundary.
	for i := range nl.Nets {
		for _, g := range nl.Nets[i].Geometry {
			el, ok := elayerOf(g.Layer)
			if !ok {
				continue
			}
			r.addBoundaryEdges(el, g.Rect.Translate(anchor), frame, int32(i))
		}
	}

	// Partial transistors: devices whose channel touches the boundary.
	for di := range nl.Devices {
		slot := -1
		for _, cr := range nl.Devices[di].Geometry {
			cr = cr.Translate(anchor)
			if touchesFrame(cr, frame) {
				if slot < 0 {
					slot = len(r.leaf.partDevs)
					r.leaf.partDevs = append(r.leaf.partDevs, di)
				}
				r.addBoundaryEdges(eChan, cr, frame, int32(slot))
			}
		}
	}
	r.partCount = len(r.leaf.partDevs)
	return r
}

// addBoundaryEdges appends interface edges for the parts of rect r
// lying on the window frame.
func (w *winResult) addBoundaryEdges(el elayer, r geom.Rect, frame geom.Rect, ref int32) {
	if r.XMin == frame.XMin {
		w.edges = append(w.edges, edge{layer: el, face: faceL, lo: r.YMin, hi: r.YMax, ref: ref})
	}
	if r.XMax == frame.XMax {
		w.edges = append(w.edges, edge{layer: el, face: faceR, lo: r.YMin, hi: r.YMax, ref: ref})
	}
	if r.YMin == frame.YMin {
		w.edges = append(w.edges, edge{layer: el, face: faceB, lo: r.XMin, hi: r.XMax, ref: ref})
	}
	if r.YMax == frame.YMax {
		w.edges = append(w.edges, edge{layer: el, face: faceT, lo: r.XMin, hi: r.XMax, ref: ref})
	}
}

func touchesFrame(r geom.Rect, frame geom.Rect) bool {
	return r.XMin == frame.XMin || r.XMax == frame.XMax ||
		r.YMin == frame.YMin || r.YMax == frame.YMax
}
