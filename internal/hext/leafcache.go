package hext

import (
	"container/list"
	"sync"

	"ace/internal/netlist"
)

// defaultCacheWindows is the content-cache capacity (in cached sweeps)
// selected by Options.CacheSize == 0.
const defaultCacheWindows = 4096

// sweepEntry is one cached leaf sweep: the netlist of a window content
// in anchored coordinates, plus the sweep's warnings. Everything
// frame-dependent — interface edges, partial-transistor slots — is
// recomputed per window from the cached netlist, which costs O(kept
// geometry) instead of the sweep's O(n log n).
type sweepEntry struct {
	hash uint64
	key  string // full canonical content, for exact verification

	nl       *netlist.Netlist
	warnings []string
	boxes    int
	bytes    int64

	ready chan struct{} // closed once nl is valid (single-flight)
	elem  *list.Element // LRU position; nil while pending or evicted
}

// leafCache is the content-addressed window cache: leaf sweeps keyed
// by the translation-invariant hash of their canonical content, with
// LRU eviction by entry count. Lookups are single-flight — concurrent
// workers asking for the same content wait for the first sweep rather
// than repeating it — which is also what keeps the LeafSweeps counter
// equal to the number of distinct contents under parallel execution.
type leafCache struct {
	mu      sync.Mutex
	maxEnt  int
	buckets map[uint64][]*sweepEntry // hash → entries (collisions verified by key)
	lru     list.List                // completed entries, front = most recent
	bytes   int64
	count   int
}

func newLeafCache(maxEntries int) *leafCache {
	if maxEntries <= 0 {
		maxEntries = defaultCacheWindows
	}
	return &leafCache{maxEnt: maxEntries, buckets: map[uint64][]*sweepEntry{}}
}

// lookup returns the entry for the hashed content and whether the
// caller became its owner. An owner must run the sweep and call
// complete; a non-owner waits on ready before reading the entry.
// Entries are verified against the full canonical key, so a 64-bit
// hash collision degrades into a second bucket entry, never into a
// wrong netlist.
func (c *leafCache) lookup(hash uint64, key string) (e *sweepEntry, owner bool) {
	c.mu.Lock()
	for _, ent := range c.buckets[hash] {
		if ent.key == key {
			if ent.elem != nil {
				c.lru.MoveToFront(ent.elem)
			}
			c.mu.Unlock()
			return ent, false
		}
	}
	e = &sweepEntry{hash: hash, key: key, ready: make(chan struct{})}
	c.buckets[hash] = append(c.buckets[hash], e)
	c.mu.Unlock()
	return e, true
}

// complete publishes an owner's sweep into its pending entry and
// releases any waiters. The completed entry joins the LRU list; older
// entries are evicted beyond the capacity. Evicted entries stay valid
// for holders — eviction only drops the cache's own references.
func (c *leafCache) complete(e *sweepEntry, nl *netlist.Netlist, warnings []string, boxes int) {
	e.nl = nl
	e.warnings = warnings
	e.boxes = boxes
	e.bytes = approxNetlistBytes(nl) + int64(len(e.key))
	c.mu.Lock()
	e.elem = c.lru.PushFront(e)
	c.bytes += e.bytes
	c.count++
	for c.count > c.maxEnt {
		back := c.lru.Back()
		if back == nil || back == e.elem {
			break // never evict the entry being published
		}
		c.evictLocked(back.Value.(*sweepEntry))
	}
	c.mu.Unlock()
	close(e.ready)
}

func (c *leafCache) evictLocked(v *sweepEntry) {
	c.lru.Remove(v.elem)
	v.elem = nil
	bucket := c.buckets[v.hash]
	for i, ent := range bucket {
		if ent == v {
			bucket = append(bucket[:i], bucket[i+1:]...)
			break
		}
	}
	if len(bucket) == 0 {
		delete(c.buckets, v.hash)
	} else {
		c.buckets[v.hash] = bucket
	}
	c.bytes -= v.bytes
	c.count--
}

// stats reports the number of completed entries retained and their
// approximate footprint in bytes.
func (c *leafCache) stats() (count int, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.count, c.bytes
}

// approxNetlistBytes estimates the retained size of a cached netlist:
// struct headers plus the geometry, terminal and name payloads. It
// feeds the CacheBytes gauge and the eviction accounting; it does not
// need to be exact, only monotone in the real footprint.
func approxNetlistBytes(nl *netlist.Netlist) int64 {
	const (
		netHeader = 64
		devHeader = 136
		layerRect = 40
		termBytes = 24
		rectBytes = 32
	)
	b := int64(64)
	for i := range nl.Nets {
		n := &nl.Nets[i]
		b += netHeader + int64(len(n.Geometry))*layerRect
		for _, nm := range n.Names {
			b += 16 + int64(len(nm))
		}
	}
	for i := range nl.Devices {
		d := &nl.Devices[i]
		b += devHeader + int64(len(d.Terminals))*termBytes + int64(len(d.Geometry))*rectBytes
	}
	return b
}
