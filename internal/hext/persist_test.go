package hext

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"ace/internal/cif"
	"ace/internal/gen"
	"ace/internal/geom"
	"ace/internal/store"
	"ace/internal/wirelist"
)

func hierWirelist(t *testing.T, res *Result) string {
	t.Helper()
	var buf bytes.Buffer
	if err := res.WriteHierarchical(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// editableChip builds the persistence workload: a row of replicated
// gate cells (plus an array level so the window tree has real depth).
// With edit set, one cell in the middle is swapped for a different
// gate — the "one cell edit" of an interactive session.
func editableChip(edit bool) *cif.File {
	d := gen.NewDesign()
	cell := gen.GateCell(d, "cell", 1)
	odd := gen.GateCell(d, "odd", 2)
	row := d.Cell("row")
	for c := 0; c < 8; c++ {
		use := cell
		if edit && c == 3 {
			use = odd
		}
		row.CallAt(use, int64(c)*gen.GateCellWidth*gen.Lambda, 0)
	}
	arr := d.Cell("arr")
	pitch := (gen.GateCellHeight(2) + 4) * gen.Lambda
	for r := 0; r < 8; r++ {
		arr.CallAt(row, 0, int64(r)*pitch)
	}
	d.CallTop(arr, geom.Identity)
	return d.File()
}

// TestDiskCacheWarmStart: a brand-new session pointed at a directory a
// previous session populated answers the whole design from disk —
// no sweeps, no composes — with byte-identical flat and hierarchical
// output.
func TestDiskCacheWarmStart(t *testing.T) {
	dir := t.TempDir()
	f := editableChip(false)

	cold, err := NewSession(Options{CacheDir: dir}).Extract(f)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Counters.DiskHits != 0 {
		t.Fatalf("cold run hit the empty cache: %+v", cold.Counters)
	}
	if cold.Counters.DiskBytes <= 0 {
		t.Fatalf("cold run persisted nothing: %+v", cold.Counters)
	}

	warm, err := NewSession(Options{CacheDir: dir}).Extract(f)
	if err != nil {
		t.Fatal(err)
	}
	c := warm.Counters
	if c.DiskHits == 0 {
		t.Fatalf("warm process missed the cache: %+v", c)
	}
	if c.LeafSweeps != 0 || c.FlatCalls != 0 || c.ComposeCalls != 0 {
		t.Fatalf("warm process recomputed: %+v", c)
	}
	if got, want := flatWirelist(t, warm), flatWirelist(t, cold); got != want {
		t.Fatal("warm flat wirelist differs from cold")
	}
	if got, want := hierWirelist(t, warm), hierWirelist(t, cold); got != want {
		t.Fatal("warm hierarchical wirelist differs from cold")
	}

	// A third process editing one cell: the unchanged subtrees load
	// from disk, only the edited path recomputes.
	edited, err := NewSession(Options{CacheDir: dir}).Extract(editableChip(true))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Extract(editableChip(true), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if edited.Counters.DiskHits == 0 {
		t.Fatalf("edited warm run reused nothing: %+v", edited.Counters)
	}
	if edited.Counters.LeafSweeps >= ref.Counters.LeafSweeps {
		t.Fatalf("edited warm run swept as much as cold: %d vs %d",
			edited.Counters.LeafSweeps, ref.Counters.LeafSweeps)
	}
	if got, want := flatWirelist(t, edited), flatWirelist(t, ref); got != want {
		t.Fatal("edited warm flat wirelist differs from cold reference")
	}
}

// TestDiskByteIdentity is the acceptance matrix: cold / warm / edit
// paths at cache {off, mem, disk} × workers {1, 4} all produce the
// reference bytes.
func TestDiskByteIdentity(t *testing.T) {
	baseRef, err := Extract(editableChip(false), Options{DisableMemo: true})
	if err != nil {
		t.Fatal(err)
	}
	editRef, err := Extract(editableChip(true), Options{DisableMemo: true})
	if err != nil {
		t.Fatal(err)
	}
	wantBase := flatWirelist(t, baseRef)
	wantEdit := flatWirelist(t, editRef)
	if wantBase == wantEdit {
		t.Fatal("edit did not change the design")
	}

	for _, cache := range []string{"off", "mem", "disk"} {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("cache=%s/workers=%d", cache, workers), func(t *testing.T) {
				opt := Options{Workers: workers}
				switch cache {
				case "off":
					opt.DisableMemo = true
				case "disk":
					opt.CacheDir = t.TempDir()
				}
				s := NewSession(opt)
				cold, err := s.Extract(editableChip(false))
				if err != nil {
					t.Fatal(err)
				}
				if got := flatWirelist(t, cold); got != wantBase {
					t.Fatal("cold bytes differ")
				}
				// Warm: for the disk config a *fresh* session on the same
				// directory (a new process); otherwise the same session.
				ws := s
				if cache == "disk" {
					ws = NewSession(opt)
				}
				warm, err := ws.Extract(editableChip(false))
				if err != nil {
					t.Fatal(err)
				}
				if got := flatWirelist(t, warm); got != wantBase {
					t.Fatal("warm bytes differ")
				}
				edit, err := ws.Apply(editOneCell())
				if err != nil {
					t.Fatal(err)
				}
				if got := flatWirelist(t, edit); got != wantEdit {
					t.Fatal("edit bytes differ")
				}
			})
		}
	}
}

// editOneCell is the Session.Apply form of editableChip(true)'s
// change: redefine the row symbol so cell 3 calls the 2-input gate.
// It rebuilds the row's items from the edited design so the edit and
// the from-scratch parse stay in lockstep.
func editOneCell() Edit {
	edited := editableChip(true)
	// The row symbol is the one whose items call two distinct symbols.
	for id, sym := range edited.Symbols {
		calls := map[int]bool{}
		for _, it := range sym.Items {
			if it.Kind == cif.ItemCall {
				calls[it.SymbolID] = true
			}
		}
		if len(sym.Items) == 8 && len(calls) == 2 {
			return Edit{SymbolID: id, Items: sym.Items, Name: sym.Name}
		}
	}
	panic("row symbol not found in edited design")
}

// TestSessionApply covers the edit API itself: results match a fresh
// extraction of the edited design, the session reuses prior windows,
// and invalid edits are rejected.
func TestSessionApply(t *testing.T) {
	s := NewSession(Options{})
	if _, err := s.Apply(Edit{Top: true}); err == nil {
		t.Fatal("Apply before Extract accepted")
	}
	if _, err := s.Extract(editableChip(false)); err != nil {
		t.Fatal(err)
	}

	res, err := s.Apply(editOneCell())
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Extract(editableChip(true), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := flatWirelist(t, res), flatWirelist(t, fresh); got != want {
		t.Fatal("Apply bytes differ from fresh extraction of the edited design")
	}
	if res.Counters.UniqueWindows >= fresh.Counters.UniqueWindows {
		t.Fatalf("Apply re-analysed everything: %d vs fresh %d",
			res.Counters.UniqueWindows, fresh.Counters.UniqueWindows)
	}
	if res.Counters.SessionHits == 0 {
		t.Fatalf("Apply reused no prior windows: %+v", res.Counters)
	}

	// The session now tracks the edited design: applying a no-op edit
	// must be a full warm hit.
	again, err := s.Apply()
	if err != nil {
		t.Fatal(err)
	}
	if again.Counters.FlatCalls != 0 || again.Counters.ComposeCalls != 0 {
		t.Fatalf("no-op Apply did work: %+v", again.Counters)
	}

	// Invalid edits: deleting a symbol that is still called, deleting
	// an unknown symbol, and a replacement that calls an undefined
	// symbol must all fail without disturbing the session.
	for id, sym := range s.Design().Symbols {
		called := false
		for _, other := range s.Design().Symbols {
			for _, it := range other.Items {
				if it.Kind == cif.ItemCall && it.SymbolID == id {
					called = true
				}
			}
		}
		if called {
			if _, err := s.Apply(Edit{SymbolID: id, Delete: true}); err == nil {
				t.Fatalf("deleting still-called symbol %d (%s) accepted", id, sym.Name)
			}
			break
		}
	}
	if _, err := s.Apply(Edit{SymbolID: 99999, Delete: true}); err == nil {
		t.Fatal("deleting unknown symbol accepted")
	}
	if _, err := s.Apply(Edit{SymbolID: 500, Items: []cif.Item{
		{Kind: cif.ItemCall, SymbolID: 98765, Trans: geom.Identity},
	}}); err == nil {
		t.Fatal("edit introducing a dangling call accepted")
	}
	after, err := s.Apply()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := flatWirelist(t, after), flatWirelist(t, fresh); got != want {
		t.Fatal("failed edits disturbed the session state")
	}
}

// TestHextCorruptionSweep corrupts the cache directory between runs in
// every shape the robustness contract names. Each case must fall back
// to recompute with byte-identical output, quarantine the damaged
// entries, and never panic.
func TestHextCorruptionSweep(t *testing.T) {
	ref, err := Extract(editableChip(false), Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := flatWirelist(t, ref)

	cases := []struct {
		name    string
		corrupt func(t *testing.T, path string, raw []byte)
	}{
		{"zero-length", func(t *testing.T, p string, raw []byte) {
			if err := os.WriteFile(p, nil, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"truncated", func(t *testing.T, p string, raw []byte) {
			if err := os.WriteFile(p, raw[:len(raw)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"bit-flip", func(t *testing.T, p string, raw []byte) {
			raw[len(raw)/2] ^= 0x20
			if err := os.WriteFile(p, raw, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"wrong-version", func(t *testing.T, p string, raw []byte) {
			binary.LittleEndian.PutUint32(raw[4:], 0xDEAD)
			if err := os.WriteFile(p, raw, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"garbage-payload", func(t *testing.T, p string, raw []byte) {
			// A well-formed container holding an undecodable payload:
			// verification passes, the codec must reject and quarantine.
			keyLen := binary.LittleEndian.Uint32(raw[8:])
			key := string(raw[16 : 16+keyLen])
			s, err := store.Open(filepath.Dir(p), store.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Put(key, bytes.Repeat([]byte{0xFF}, 64)); err != nil {
				t.Fatal(err)
			}
		}},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			if _, err := NewSession(Options{CacheDir: dir}).Extract(editableChip(false)); err != nil {
				t.Fatal(err)
			}
			entries, err := filepath.Glob(filepath.Join(dir, "*.e"))
			if err != nil || len(entries) == 0 {
				t.Fatalf("no cache entries written: %v", err)
			}
			for _, p := range entries {
				raw, err := os.ReadFile(p)
				if err != nil {
					t.Fatal(err)
				}
				tc.corrupt(t, p, raw)
			}
			res, err := NewSession(Options{CacheDir: dir}).Extract(editableChip(false))
			if err != nil {
				t.Fatal(err)
			}
			if got := flatWirelist(t, res); got != want {
				t.Fatal("corrupt cache changed the output bytes")
			}
			if bad, _ := filepath.Glob(filepath.Join(dir, "*.bad")); len(bad) == 0 {
				t.Fatal("no entries were quarantined")
			}
			// The run recomputed and re-stored; a third session must be
			// fully warm again.
			again, err := NewSession(Options{CacheDir: dir}).Extract(editableChip(false))
			if err != nil {
				t.Fatal(err)
			}
			if again.Counters.LeafSweeps != 0 {
				t.Fatalf("cache did not recover: %+v", again.Counters)
			}
			if got := flatWirelist(t, again); got != want {
				t.Fatal("recovered cache changed the output bytes")
			}
		})
	}
}

// TestDiskConcurrentSessions: goroutine-level half of the shared-dir
// contract (the cross-process half is in the cmd smoke test). Several
// sessions race on one directory, cold and warm, under -race.
func TestDiskConcurrentSessions(t *testing.T) {
	dir := t.TempDir()
	ref, err := Extract(editableChip(false), Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := flatWirelist(t, ref)

	var wg sync.WaitGroup
	outs := make([]string, 4)
	errs := make([]error, 4)
	for i := range outs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := NewSession(Options{CacheDir: dir, Workers: 2}).Extract(editableChip(false))
			if err != nil {
				errs[i] = err
				return
			}
			var buf bytes.Buffer
			errs[i] = res.WriteHierarchical(&buf)
			_ = buf // hier output exercises res.top; flat bytes are compared below
			outs[i] = flatWirelistString(res)
		}(i)
	}
	wg.Wait()
	for i := range outs {
		if errs[i] != nil {
			t.Fatalf("session %d: %v", i, errs[i])
		}
		if outs[i] != want {
			t.Fatalf("session %d produced different bytes", i)
		}
	}
}

func flatWirelistString(res *Result) string {
	var buf bytes.Buffer
	_ = wirelist.Write(&buf, res.Netlist, wirelist.Options{})
	return buf.String()
}
