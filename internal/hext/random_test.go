package hext

import (
	"math/rand"
	"testing"

	"ace/internal/cif"
	"ace/internal/extract"
	"ace/internal/gen"
	"ace/internal/geom"
	"ace/internal/netlist"
	"ace/internal/tech"
)

// TestRandomDifferential extracts random flat layouts with HEXT under
// an aggressive leaf cap (so geometry gets cut through nets, contacts
// and channels at arbitrary positions) and demands isomorphism with
// the flat extractor. This exercises every seam rule the compose
// machinery has.
func TestRandomDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	layers := []tech.Layer{tech.Diff, tech.Poly, tech.Metal, tech.Cut, tech.Buried, tech.Implant}
	for trial := 0; trial < 50; trial++ {
		n := 4 + rng.Intn(24)
		f := &cif.File{Symbols: map[int]*cif.Symbol{}}
		for i := 0; i < n; i++ {
			l := layers[rng.Intn(len(layers))]
			x := int64(rng.Intn(900))
			y := int64(rng.Intn(900))
			f.Top = append(f.Top, cif.Item{
				Kind: cif.ItemBox, Layer: l,
				Box: geom.R(x, y, x+int64(20+rng.Intn(300)), y+int64(20+rng.Intn(300))),
			})
		}
		for _, maxLeaf := range []int{2, 5} {
			hres, err := Extract(f, Options{MaxLeafItems: maxLeaf})
			if err != nil {
				t.Fatalf("trial %d: hext: %v", trial, err)
			}
			ares, err := extract.File(f, extract.Options{})
			if err != nil {
				t.Fatalf("trial %d: ace: %v", trial, err)
			}
			eq, reason := netlist.Equivalent(ares.Netlist, hres.Netlist)
			if !eq {
				t.Fatalf("trial %d (maxLeaf=%d): %s\nboxes: %+v\nACE:\n%s\nHEXT:\n%s",
					trial, maxLeaf, reason, f.Top, ares.Netlist, hres.Netlist)
			}
		}
	}
}

// TestRandomHierarchicalDifferential does the same with hierarchy:
// random cells instantiated at random (including mirrored and rotated)
// placements.
func TestRandomHierarchicalDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	layers := []tech.Layer{tech.Diff, tech.Poly, tech.Metal, tech.Cut, tech.Buried}
	for trial := 0; trial < 25; trial++ {
		d := gen.NewDesign()
		var cells []*gen.Cell
		for ci := 0; ci < 2+rng.Intn(2); ci++ {
			c := d.Cell("c")
			for b := 0; b < 3+rng.Intn(6); b++ {
				l := layers[rng.Intn(len(layers))]
				x := int64(rng.Intn(400))
				y := int64(rng.Intn(400))
				c.Box(l, x, y, x+int64(20+rng.Intn(200)), y+int64(20+rng.Intn(200)))
			}
			cells = append(cells, c)
		}
		r90, _ := geom.Rotate(0, 1)
		xforms := []geom.Transform{geom.Identity, geom.MirrorX(), geom.MirrorY(), r90}
		for k := 0; k < 4+rng.Intn(6); k++ {
			c := cells[rng.Intn(len(cells))]
			tr := xforms[rng.Intn(len(xforms))].
				Then(geom.Translate(int64(rng.Intn(1500)), int64(rng.Intn(1500))))
			d.CallTop(c, tr)
		}
		f := d.File()

		hres, err := Extract(f, Options{MaxLeafItems: 6})
		if err != nil {
			t.Fatalf("trial %d: hext: %v", trial, err)
		}
		ares, err := extract.File(f, extract.Options{})
		if err != nil {
			t.Fatalf("trial %d: ace: %v", trial, err)
		}
		eq, reason := netlist.Equivalent(ares.Netlist, hres.Netlist)
		if !eq {
			t.Fatalf("trial %d: %s\nACE:\n%s\nHEXT:\n%s",
				trial, reason, ares.Netlist, hres.Netlist)
		}
	}
}
