package hext

import (
	"ace/internal/geom"
	"ace/internal/netlist"
	"ace/internal/tech"
)

// face identifies one side of a (rectangular) window.
type face int8

const (
	faceL face = iota
	faceR
	faceB
	faceT
	numFaces
)

// elayer is the interface-segment layer: the three conducting layers
// plus the channel pseudo-layer carrying partial transistors.
type elayer int8

const (
	eMetal elayer = iota
	ePoly
	eDiff
	eChan
)

func elayerOf(l tech.Layer) (elayer, bool) {
	switch l {
	case tech.Metal:
		return eMetal, true
	case tech.Poly:
		return ePoly, true
	case tech.Diff:
		return eDiff, true
	}
	return 0, false
}

// edge is one interface-segment list element: a rectangle edge lying
// on a window face, carrying the local net (or, for eChan, the local
// partial-transistor index) it belongs to.
type edge struct {
	layer  elayer
	face   face
	lo, hi int64 // span along the face: y for L/R, x for B/T
	ref    int32 // local net index, or partial index for eChan
}

// winResult is the extracted circuit and interface of one unique
// window. Composed results reference their children rather than
// copying them (HEXT §3), so the memo table turns the window tree into
// a DAG; flattening instantiates it.
type winResult struct {
	id   int
	w, h int64

	edges     []edge
	netCount  int
	partCount int

	// insts counts the leaf instances under this window (a leaf is 1,
	// a composed window the sum of its children). Flattening uses it
	// to give every leaf instance a deterministic DFS sequence number
	// without actually walking the subtree.
	insts int64

	leaf *leafData
	comp *compData
}

// leafData is a geometry-only window extracted by the modified flat
// extractor.
type leafData struct {
	nl *netlist.Netlist
	// anchor is the lower-left corner of the content's bounding box in
	// window-frame coordinates. The netlist is swept in anchored
	// coordinates (content rebased so the anchor is the origin), which
	// makes the sweep shareable between windows whose contents differ
	// only by translation; consumers add the anchor back to return to
	// the window frame.
	anchor geom.Point
	// partDevs lists the indices of devices whose channel touches the
	// window boundary (the window's partial transistors); partial
	// slot k corresponds to nl.Devices[partDevs[k]].
	partDevs []int
	boxes    int // geometry count, for statistics
}

// ref addresses a net or partial in one of a composed window's two
// children.
type ref struct {
	child int8
	idx   int32
}

type partTerm struct {
	part ref
	net  ref
	edge int64
}

// overlayLabel is a top-level label resolved during flattening rather
// than carried in window contents (which would defeat memoisation).
type overlayLabel struct {
	name     string
	at       geom.Point
	layer    tech.Layer
	hasLayer bool
	matched  bool
}

// labelNet finds the net owning a point in a leaf netlist, preferring
// metal, then poly, then diffusion — ACE's rule.
func labelNet(nl *netlist.Netlist, p geom.Point, lb *overlayLabel) (int, bool) {
	best := -1
	bestPref := 99
	for i := range nl.Nets {
		for _, g := range nl.Nets[i].Geometry {
			if lb.hasLayer && g.Layer != lb.layer {
				continue
			}
			if !g.Rect.Contains(p) {
				continue
			}
			pref := layerPref(g.Layer)
			if pref < bestPref {
				best, bestPref = i, pref
			}
		}
	}
	return best, best >= 0
}

func layerPref(l tech.Layer) int {
	switch l {
	case tech.Metal:
		return 0
	case tech.Poly:
		return 1
	case tech.Diff:
		return 2
	}
	return 3
}

// compData records how two child windows compose: placements, the net
// equivalences and partial-transistor merges established along the
// seam, and the parent's export tables.
type compData struct {
	kids [2]*winResult
	at   [2]geom.Point

	netEquivs  [][2]ref
	partEquivs [][2]ref
	partTerms  []partTerm

	// parentNets[i] is the child net that parent net i stands for;
	// likewise parentParts for still-open partial transistors.
	parentNets  []ref
	parentParts []ref
}
