package hext

import (
	"testing"

	"ace/internal/extract"
	"ace/internal/gen"
	"ace/internal/geom"
	"ace/internal/netlist"
)

func TestSessionIncrementalReextract(t *testing.T) {
	// Extract a memory array, then re-extract the identical design in
	// the same session: zero new flat extractions or composes.
	s := NewSession(Options{})
	w := gen.Memory(8, 8)
	first, err := s.Extract(w.File)
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.Extract(w.File)
	if err != nil {
		t.Fatal(err)
	}
	if second.Counters.FlatCalls != 0 || second.Counters.ComposeCalls != 0 {
		t.Fatalf("re-extract did work: %+v", second.Counters)
	}
	if eq, why := netlist.Equivalent(first.Netlist, second.Netlist); !eq {
		t.Fatalf("results differ: %s", why)
	}
}

func TestSessionIncrementalEdit(t *testing.T) {
	// Extract, then edit one cell of the design: only the windows on
	// the changed cell's path should be re-analysed.
	build := func(tweak bool) *gen.Workload {
		d := gen.NewDesign()
		cell := gen.GateCell(d, "ramCell", 1)
		odd := gen.GateCell(d, "oddCell", 2)
		row := d.Cell("row")
		for c := 0; c < 8; c++ {
			if tweak && c == 3 {
				row.CallAt(odd, int64(c)*gen.GateCellWidth*gen.Lambda, 0)
			} else {
				row.CallAt(cell, int64(c)*gen.GateCellWidth*gen.Lambda, 0)
			}
		}
		arr := d.Cell("arr")
		pitch := (gen.GateCellHeight(2) + 4) * gen.Lambda
		for r := 0; r < 8; r++ {
			arr.CallAt(row, 0, int64(r)*pitch)
		}
		d.CallTop(arr, geom.Identity)
		wl := gen.Workload{File: d.File()}
		return &wl
	}

	s := NewSession(Options{})
	if _, err := s.Extract(build(false).File); err != nil {
		t.Fatal(err)
	}

	// Edited design: one row cell swapped for a 2-input gate. Note the
	// row symbol repeats 8 times, so the whole row re-extracts but the
	// 7 unchanged cells inside it still hit the memo.
	res, err := s.Extract(build(true).File)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Extract(build(true).File, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if eq, why := netlist.Equivalent(res.Netlist, fresh.Netlist); !eq {
		t.Fatalf("incremental result differs from fresh: %s", why)
	}
	if res.Counters.UniqueWindows >= fresh.Counters.UniqueWindows {
		t.Fatalf("incremental run did not reuse prior windows: %d vs fresh %d",
			res.Counters.UniqueWindows, fresh.Counters.UniqueWindows)
	}
	aceRes, err := extract.File(build(true).File, extract.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if eq, why := netlist.Equivalent(res.Netlist, aceRes.Netlist); !eq {
		t.Fatalf("incremental result differs from ACE: %s", why)
	}
}

func TestSessionSharedAcrossDesigns(t *testing.T) {
	// Two different chips sharing the same library cell benefit from
	// each other's windows.
	s := NewSession(Options{})
	if _, err := s.Extract(gen.Memory(4, 4).File); err != nil {
		t.Fatal(err)
	}
	before := s.MemoSize()
	res, err := s.Extract(gen.Memory(4, 8).File)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Extract(gen.Memory(4, 8).File, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.FlatCalls >= fresh.Counters.FlatCalls {
		t.Fatalf("no cross-design reuse: %d vs fresh %d",
			res.Counters.FlatCalls, fresh.Counters.FlatCalls)
	}
	if s.MemoSize() <= before {
		t.Fatal("memo did not grow")
	}
	if eq, why := netlist.Equivalent(res.Netlist, fresh.Netlist); !eq {
		t.Fatalf("session result differs: %s", why)
	}
}

func TestFractureMinCut(t *testing.T) {
	// Both strategies must produce the same circuit; min-cut must not
	// split more geometry than balanced does on a routed design.
	w := gen.Irregular(15, 9)
	bal, err := Extract(w.File, Options{Fracture: FractureBalanced})
	if err != nil {
		t.Fatal(err)
	}
	mc, err := Extract(w.File, Options{Fracture: FractureMinCut})
	if err != nil {
		t.Fatal(err)
	}
	if eq, why := netlist.Equivalent(bal.Netlist, mc.Netlist); !eq {
		t.Fatalf("fracture strategy changed the circuit: %s", why)
	}
	if len(mc.Netlist.Devices) != w.WantDevices {
		t.Fatalf("devices %d, want %d", len(mc.Netlist.Devices), w.WantDevices)
	}
	// Also exercise min-cut on pure geometry splitting (mesh).
	m := gen.Mesh(5)
	mm, err := Extract(m.File, Options{Fracture: FractureMinCut, MaxLeafItems: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(mm.Netlist.Devices) != m.WantDevices {
		t.Fatalf("mesh devices %d, want %d", len(mm.Netlist.Devices), m.WantDevices)
	}
}

func TestDisableMemo(t *testing.T) {
	w := gen.Memory(4, 4)
	on, err := Extract(w.File, Options{})
	if err != nil {
		t.Fatal(err)
	}
	off, err := Extract(w.File, Options{DisableMemo: true})
	if err != nil {
		t.Fatal(err)
	}
	if off.Counters.MemoHits != 0 {
		t.Fatalf("memo hits with memo disabled: %d", off.Counters.MemoHits)
	}
	if off.Counters.FlatCalls <= on.Counters.FlatCalls {
		t.Fatalf("disabling the memo should increase flat calls: %d vs %d",
			off.Counters.FlatCalls, on.Counters.FlatCalls)
	}
	if eq, why := netlist.Equivalent(on.Netlist, off.Netlist); !eq {
		t.Fatalf("memo changed the circuit: %s", why)
	}
	// 16 identical cells: without the memo, at least 16 flat calls.
	if off.Counters.FlatCalls < 16 {
		t.Fatalf("flat calls %d with memo off", off.Counters.FlatCalls)
	}
}
