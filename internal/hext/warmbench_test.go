package hext

import (
	"testing"

	"ace/internal/gen"
)

// Benchmarks for the persistent-cache paths; the full scenario matrix
// (including flat-ACE baselines) lives in cmd/hext -bench-json.

func BenchmarkColdHext(b *testing.B) {
	f := gen.Replicated(64).File
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Extract(f, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWarmProcess(b *testing.B) {
	dir := b.TempDir()
	f := gen.Replicated(64).File
	if _, err := NewSession(Options{CacheDir: dir}).Extract(f); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewSession(Options{CacheDir: dir}).Extract(f); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEditApply(b *testing.B) {
	base := editableChip(false)
	edit := editOneCell()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := NewSession(Options{})
		if _, err := s.Extract(base); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := s.Apply(edit); err != nil {
			b.Fatal(err)
		}
	}
}
