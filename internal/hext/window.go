// Package hext implements HEXT, the hierarchical circuit extractor
// built on top of ACE (the second paper in the CMU report).
//
// The front end transforms the CIF hierarchy into non-overlapping
// rectangular windows; identical windows are extracted once (a memo
// table keyed by canonical window content). Geometry-only windows go
// to the modified flat extractor, which also computes an interface:
// the rectangle edges touching the window boundary, per conducting
// layer, plus partial transistors whose channels touch the boundary.
// Adjacent windows are merged by Compose, which establishes net
// equivalences along the shared seam, merges partial transistors, and
// builds the new window's interface.
//
// Deviation from the paper (recorded in DESIGN.md §6): windows are
// fractured with guillotine cuts that avoid instance bounding boxes,
// so every window — including composed ones — is a rectangle and every
// compose joins two rectangles along a full shared edge. The paper's
// L-shaped "complex windows" never arise; the measured phenomena
// (window memoisation, compose-dominated run time, O(√N) ideal
// arrays) are unchanged.
package hext

import (
	"encoding/binary"
	"sort"

	"ace/internal/cif"
	"ace/internal/geom"
	"ace/internal/tech"
)

// item is one window content element in window-relative coordinates.
type witem struct {
	kind  cif.ItemKind // ItemBox, ItemCall or ItemLabel
	layer tech.Layer
	box   geom.Rect // ItemBox

	symID int // ItemCall: original symbol id
	trans geom.Transform

	name string     // ItemLabel
	at   geom.Point // ItemLabel
	lbL  bool       // label has layer
}

// window is a rectangular region with contents relative to its origin.
type window struct {
	w, h  int64
	items []witem
}

// instBBox returns the bounding box of a call item (window-relative).
func (e *env) instBBox(it witem) geom.Rect {
	bb, _ := cif.SymbolBBox(it.symID, e.syms, e.bboxCache)
	return it.trans.ApplyRect(bb)
}

// newTopWindow builds the chip-level window from the design's top
// items. Top-level labels are diverted to the global overlay resolved
// during flattening — keeping them out of window contents preserves
// memoisation of otherwise-identical windows (labels inside symbol
// definitions stay in the contents; see expandOne).
func (e *env) newTopWindow(top []cif.Item) (window, geom.Point, bool) {
	bb, ok := cif.BBoxItems(top, e.syms, e.bboxCache)
	if !ok {
		return window{}, geom.Point{}, false
	}
	origin := geom.Pt(bb.XMin, bb.YMin)
	win := window{w: bb.W(), h: bb.H()}
	shift := geom.Translate(-origin.X, -origin.Y)
	for _, it := range top {
		switch it.Kind {
		case cif.ItemBox:
			win.items = append(win.items, witem{
				kind: cif.ItemBox, layer: it.Layer, box: it.Box.Translate(geom.Pt(-origin.X, -origin.Y)),
			})
		case cif.ItemCall:
			win.items = append(win.items, witem{
				kind: cif.ItemCall, symID: it.SymbolID, trans: it.Trans.Then(shift),
			})
		case cif.ItemLabel:
			e.overlay = append(e.overlay, &overlayLabel{
				name: it.Name, at: it.At, layer: it.Layer, hasLayer: it.HasLayer,
			})
		case cif.ItemPolygon:
			for _, r := range it.Poly.Manhattanize(e.grid) {
				win.items = append(win.items, witem{
					kind: cif.ItemBox, layer: it.Layer, box: r.Translate(geom.Pt(-origin.X, -origin.Y)),
				})
			}
		case cif.ItemWire:
			for _, r := range it.Wire.Boxes(e.grid) {
				win.items = append(win.items, witem{
					kind: cif.ItemBox, layer: it.Layer, box: r.Translate(geom.Pt(-origin.X, -origin.Y)),
				})
			}
		}
	}
	return win, origin, true
}

// expandOne replaces every call in the window with its children
// (geometry, sub-calls, labels), keeping coordinates window-relative.
func (e *env) expandOne(win window) window {
	out := window{w: win.w, h: win.h}
	for _, it := range win.items {
		if it.kind != cif.ItemCall {
			out.items = append(out.items, it)
			continue
		}
		e.counters.CellsExpanded++
		sym := e.syms[it.symID]
		for _, sub := range sym.Items {
			switch sub.Kind {
			case cif.ItemBox:
				r := it.trans.ApplyRect(sub.Box)
				out.items = append(out.items, witem{kind: cif.ItemBox, layer: sub.Layer, box: r})
			case cif.ItemPolygon:
				for _, r := range sub.Poly.Apply(it.trans).Manhattanize(e.grid) {
					out.items = append(out.items, witem{kind: cif.ItemBox, layer: sub.Layer, box: r})
				}
			case cif.ItemWire:
				w := geom.Wire{Width: sub.Wire.Width, Path: make([]geom.Point, len(sub.Wire.Path))}
				for i, p := range sub.Wire.Path {
					w.Path[i] = it.trans.Apply(p)
				}
				for _, r := range w.Boxes(e.grid) {
					out.items = append(out.items, witem{kind: cif.ItemBox, layer: sub.Layer, box: r})
				}
			case cif.ItemCall:
				out.items = append(out.items, witem{
					kind: cif.ItemCall, symID: sub.SymbolID, trans: sub.Trans.Then(it.trans),
				})
			case cif.ItemLabel:
				out.items = append(out.items, witem{
					kind: cif.ItemLabel, name: sub.Name, at: it.trans.Apply(sub.At),
					layer: sub.Layer, lbL: sub.HasLayer,
				})
			}
		}
	}
	return out
}

// hasCalls reports whether the window still contains symbol instances.
func (w window) hasCalls() bool {
	for _, it := range w.items {
		if it.kind == cif.ItemCall {
			return true
		}
	}
	return false
}

// key builds the canonical memo key of the window: its size plus its
// sorted contents, with symbol ids replaced by content hashes so that
// structurally identical symbols share windows.
func (e *env) key(win window) string {
	recs := make([][]byte, 0, len(win.items))
	for _, it := range win.items {
		var b []byte
		switch it.kind {
		case cif.ItemBox:
			b = make([]byte, 1+1+4*8)
			b[0] = 0
			b[1] = byte(it.layer)
			putI64(b[2:], it.box.XMin, it.box.YMin, it.box.XMax, it.box.YMax)
		case cif.ItemCall:
			b = make([]byte, 1+8+6*8)
			b[0] = 1
			binary.LittleEndian.PutUint64(b[1:], e.symHash(it.symID))
			t := it.trans
			putI64(b[9:], t.A, t.B, t.C, t.D, t.E, t.F)
		case cif.ItemLabel:
			b = make([]byte, 1+2*8+2)
			b[0] = 2
			putI64(b[1:], it.at.X, it.at.Y)
			b[17] = byte(it.layer)
			if it.lbL {
				b[18] = 1
			}
			b = append(b, it.name...)
		}
		recs = append(recs, b)
	}
	sort.Slice(recs, func(i, j int) bool { return string(recs[i]) < string(recs[j]) })
	out := make([]byte, 16, 16+len(recs)*24)
	putI64(out, win.w, win.h)
	for _, r := range recs {
		out = append(out, byte(len(r)), byte(len(r)>>8))
		out = append(out, r...)
	}
	return string(out)
}

func putI64(dst []byte, vs ...int64) {
	for i, v := range vs {
		binary.LittleEndian.PutUint64(dst[i*8:], uint64(v))
	}
}

// symHash returns a structural hash of a symbol's full expansion, so
// two symbols with identical contents get identical window keys.
func (e *env) symHash(id int) uint64 {
	if h, ok := e.symHashes[id]; ok {
		return h
	}
	e.symHashes[id] = 0 // cycle guard; CIF semantics forbid cycles anyway
	var buf []byte
	sym := e.syms[id]
	for _, it := range sym.Items {
		switch it.Kind {
		case cif.ItemBox:
			var b [34]byte
			b[0] = 0
			b[1] = byte(it.Layer)
			putI64(b[2:], it.Box.XMin, it.Box.YMin, it.Box.XMax, it.Box.YMax)
			buf = append(buf, b[:]...)
		case cif.ItemCall:
			var b [57]byte
			b[0] = 1
			binary.LittleEndian.PutUint64(b[1:], e.symHash(it.SymbolID))
			t := it.Trans
			putI64(b[9:], t.A, t.B, t.C, t.D, t.E, t.F)
			buf = append(buf, b[:]...)
		case cif.ItemLabel:
			buf = append(buf, 2)
			buf = append(buf, it.Name...)
			var b [16]byte
			putI64(b[:], it.At.X, it.At.Y)
			buf = append(buf, b[:]...)
		case cif.ItemPolygon:
			buf = append(buf, 3)
			for _, p := range it.Poly {
				var b [16]byte
				putI64(b[:], p.X, p.Y)
				buf = append(buf, b[:]...)
			}
		case cif.ItemWire:
			buf = append(buf, 4)
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], uint64(it.Wire.Width))
			buf = append(buf, b[:]...)
			for _, p := range it.Wire.Path {
				var c [16]byte
				putI64(c[:], p.X, p.Y)
				buf = append(buf, c[:]...)
			}
		}
	}
	h := fnv64(buf)
	e.symHashes[id] = h
	return h
}

func fnv64(b []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime
	}
	return h
}

// fnv64str is fnv64 over a string without converting it to a byte
// slice (the content cache hashes canonical keys on the hot path).
func fnv64str(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// chooseCut finds a guillotine cut that avoids every instance bounding
// box. The default (balanced) strategy prefers the cut closest to the
// window's centre along its longer axis, giving the logarithmic
// recursion depth the ideal-array analysis needs; the min-cut strategy
// (HEXT §6's "more intelligent fracturing algorithm") prefers the cut
// that splits the fewest geometry boxes, minimising the seam contents
// the compose routine must match. It returns the axis ('x' means a
// vertical cut at the returned coordinate), the coordinate, and
// whether a cut exists.
func (e *env) chooseCut(win window) (axis byte, at int64, ok bool) {
	var xs, ys []int64
	var insts []geom.Rect
	for _, it := range win.items {
		if it.kind != cif.ItemCall {
			continue
		}
		bb := e.instBBox(it)
		insts = append(insts, bb)
		xs = append(xs, bb.XMin, bb.XMax)
		ys = append(ys, bb.YMin, bb.YMax)
	}
	valid := func(axis byte, at int64) bool {
		if axis == 'x' {
			if at <= 0 || at >= win.w {
				return false
			}
			for _, bb := range insts {
				if bb.XMin < at && at < bb.XMax {
					return false
				}
			}
		} else {
			if at <= 0 || at >= win.h {
				return false
			}
			for _, bb := range insts {
				if bb.YMin < at && at < bb.YMax {
					return false
				}
			}
		}
		return true
	}
	// seamCost counts the geometry boxes a cut would split — the
	// min-cut strategy's objective.
	seamCost := func(axis byte, at int64) int64 {
		var cost int64
		for _, it := range win.items {
			if it.kind != cif.ItemBox {
				continue
			}
			if axis == 'x' {
				if it.box.XMin < at && at < it.box.XMax {
					cost++
				}
			} else {
				if it.box.YMin < at && at < it.box.YMax {
					cost++
				}
			}
		}
		return cost
	}
	best := func(axis byte, cands []int64, mid int64) (int64, bool) {
		found := false
		var bestAt, bestScore int64
		for _, c := range cands {
			if !valid(axis, c) {
				continue
			}
			d := c - mid
			if d < 0 {
				d = -d
			}
			score := d
			if e.fracture == FractureMinCut {
				// Seam cost dominates; distance to middle tie-breaks
				// (scaled down so it never outweighs one split box).
				span := win.w
				if axis == 'y' {
					span = win.h
				}
				score = seamCost(axis, c)*span + d
			}
			if !found || score < bestScore {
				found, bestAt, bestScore = true, c, score
			}
		}
		return bestAt, found
	}

	// Prefer splitting the longer dimension for balanced recursion.
	tryX := func() (byte, int64, bool) {
		if at, ok := best('x', append(xs, win.w/2), win.w/2); ok {
			return 'x', at, true
		}
		return 0, 0, false
	}
	tryY := func() (byte, int64, bool) {
		if at, ok := best('y', append(ys, win.h/2), win.h/2); ok {
			return 'y', at, true
		}
		return 0, 0, false
	}
	if win.w >= win.h {
		if a, v, ok := tryX(); ok {
			return a, v, true
		}
		return tryY()
	}
	if a, v, ok := tryY(); ok {
		return a, v, true
	}
	return tryX()
}

// splitWindow divides the window at the cut, clipping geometry and
// assigning instances and labels to the proper side. For axis 'x', a
// is the left part and b the right part (b's items are re-based to its
// origin). The cut is guaranteed by chooseCut not to straddle any
// instance bounding box.
func (e *env) splitWindow(win window, axis byte, at int64) (a, b window) {
	if axis == 'x' {
		a = window{w: at, h: win.h}
		b = window{w: win.w - at, h: win.h}
	} else {
		a = window{w: win.w, h: at}
		b = window{w: win.w, h: win.h - at}
	}
	shiftB := geom.Pt(0, 0)
	if axis == 'x' {
		shiftB = geom.Pt(-at, 0)
	} else {
		shiftB = geom.Pt(0, -at)
	}
	lineOf := func(r geom.Rect) (lo, hi int64) {
		if axis == 'x' {
			return r.XMin, r.XMax
		}
		return r.YMin, r.YMax
	}
	ptCoord := func(p geom.Point) int64 {
		if axis == 'x' {
			return p.X
		}
		return p.Y
	}
	for _, it := range win.items {
		switch it.kind {
		case cif.ItemBox:
			lo, hi := lineOf(it.box)
			if lo < at {
				clipped := it
				if hi > at {
					if axis == 'x' {
						clipped.box.XMax = at
					} else {
						clipped.box.YMax = at
					}
				}
				a.items = append(a.items, clipped)
			}
			if hi > at {
				clipped := it
				if lo < at {
					if axis == 'x' {
						clipped.box.XMin = at
					} else {
						clipped.box.YMin = at
					}
				}
				clipped.box = clipped.box.Translate(shiftB)
				b.items = append(b.items, clipped)
			}
		case cif.ItemCall:
			bb := e.instBBox(it)
			lo, hi := lineOf(bb)
			_ = hi
			if hi <= at {
				a.items = append(a.items, it)
			} else if lo >= at {
				moved := it
				moved.trans = it.trans.Then(geom.Translate(shiftB.X, shiftB.Y))
				b.items = append(b.items, moved)
			} else {
				// chooseCut guarantees this cannot happen; putting the
				// instance on the low side keeps extraction total if
				// it somehow does.
				a.items = append(a.items, it)
			}
		case cif.ItemLabel:
			// A label exactly on the cut stays with the low side,
			// whose boundary (inclusive in the leaf sweep) it sits on.
			if ptCoord(it.at) <= at {
				a.items = append(a.items, it)
			} else {
				moved := it
				moved.at = it.at.Add(shiftB)
				b.items = append(b.items, moved)
			}
		}
	}
	return a, b
}
