package hext

import (
	"fmt"
	"io"
	"strings"
)

// WriteHierarchical emits the extraction result as a hierarchical
// wirelist in the style of Figure 2-2: one DefPart per unique window,
// Part statements instantiating child windows, and Net statements
// establishing the signal equivalences across seams. Because the memo
// table shares identical windows, a window repeated a thousand times
// appears once as a DefPart and a thousand times as one-line Parts —
// the whole point of hierarchical extraction.
//
// Partial transistors use the (TPart …) extension: the original V085
// format document is lost and Figure 2-2 shows no window-crossing
// transistors, so the syntax for them is ours (DESIGN.md §6).
func (r *Result) WriteHierarchical(w io.Writer) error {
	if r.top == nil && len(r.hier) == 0 && r.hierStore != nil {
		// Slim whole-result hit: the tree lives in the root window's
		// own "w:" entry, read only now that hierarchical output is
		// actually wanted.
		payload, ok := r.hierStore.Get(winTreeKey(r.hierKey))
		if !ok {
			return fmt.Errorf("hext: window tree missing from cache")
		}
		r.hier = payload
	}
	if r.top == nil && len(r.hier) > 0 {
		// Whole-result disk hit: the window tree was carried as bytes
		// and is only decoded here, on first hierarchical emission.
		// Fresh post-order ids reproduce a cold fresh-session numbering.
		ids := 0
		top, err := decodeWinTree(r.hier, nil, nil, func() int { ids++; return ids })
		if err != nil {
			return fmt.Errorf("hext: stored window tree: %w", err)
		}
		r.top, r.hier = top, nil
	}
	ew := &hw{w: w, done: map[int]bool{}}
	ew.printf("(DefPart nEnh (Exports G S D))\n")
	ew.printf("(DefPart nDep (Exports G S D))\n")
	ew.printf("(DefPart nCap (Exports G S D))\n")
	if r.top != nil { // nil on a lenient empty design: prelude only
		ew.emit(r.top)
		ew.printf("(Part Window%d (Name Top))\n", r.top.id)
	}
	return ew.err
}

// HierarchicalString renders the hierarchical wirelist to a string.
func (r *Result) HierarchicalString() string {
	var sb strings.Builder
	_ = r.WriteHierarchical(&sb)
	return sb.String()
}

type hw struct {
	w    io.Writer
	err  error
	done map[int]bool
}

func (e *hw) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

func (e *hw) emit(r *winResult) {
	if e.done[r.id] {
		return
	}
	e.done[r.id] = true
	if r.comp != nil {
		e.emit(r.comp.kids[0])
		e.emit(r.comp.kids[1])
	}

	e.printf("(DefPart Window%d (Size %d %d)\n", r.id, r.w, r.h)

	// Exports: the nets and partial transistors visible on the
	// window's boundary.
	exportedNets := map[int32]bool{}
	exportedParts := map[int32]bool{}
	for _, eg := range r.edges {
		if eg.layer == eChan {
			exportedParts[eg.ref] = true
		} else {
			exportedNets[eg.ref] = true
		}
	}
	e.printf(" (Exports")
	for i := int32(0); int(i) < r.netCount; i++ {
		if exportedNets[i] {
			e.printf(" N%d", i)
		}
	}
	for i := int32(0); int(i) < r.partCount; i++ {
		if exportedParts[i] {
			e.printf(" T%d", i)
		}
	}
	e.printf(" )\n")

	if r.leaf != nil {
		e.emitLeaf(r)
	} else {
		e.emitComp(r)
	}

	// Local: internal nets not exported.
	e.printf(" (Local")
	for i := int32(0); int(i) < r.netCount; i++ {
		if !exportedNets[i] {
			e.printf(" N%d", i)
		}
	}
	e.printf(" ))\n")
}

func (e *hw) emitLeaf(r *winResult) {
	nl := r.leaf.nl
	// The cached netlist is anchored; adding the anchor back prints
	// locations in the window frame, as the format has always done.
	anchor := r.leaf.anchor
	partSlot := map[int]int{}
	for slot, di := range r.leaf.partDevs {
		partSlot[di] = slot
	}
	for i := range nl.Devices {
		d := &nl.Devices[i]
		loc := d.Location.Add(anchor)
		e.printf(" (Part %s (Name D%d) (Loc %d %d) (T G N%d) (T S N%d) (T D N%d)",
			d.Type, i, loc.X, loc.Y, d.Gate, d.Source, d.Drain)
		e.printf(" (Channel (Length %d) (Width %d))", d.Length, d.Width)
		if slot, ok := partSlot[i]; ok {
			// A partial transistor carries its accumulator facts so a
			// reader can complete it exactly after composition: channel
			// area, implanted area, and the contact-edge length against
			// each terminal net seen so far.
			e.printf(" (TPart T%d (Area %d) (Impl %d) (Edges", slot, d.Area, d.ImplArea)
			for _, term := range d.Terminals {
				e.printf(" (N%d %d)", term.Net, term.Edge)
			}
			e.printf(" ))")
		}
		e.printf(")\n")
	}
	for i := range nl.Nets {
		if len(nl.Nets[i].Names) == 0 {
			continue
		}
		e.printf(" (Net N%d", i)
		for _, nm := range nl.Nets[i].Names {
			e.printf(" %s", nm)
		}
		e.printf(")\n")
	}
}

func (e *hw) emitComp(r *winResult) {
	c := r.comp
	for k := 0; k < 2; k++ {
		e.printf(" (Part Window%d (Name P%d) (LocOffset %d %d))\n",
			c.kids[k].id, k+1, c.at[k].X, c.at[k].Y)
	}
	for _, eq := range c.netEquivs {
		e.printf(" (Net P%d/N%d P%d/N%d)\n",
			eq[0].child+1, eq[0].idx, eq[1].child+1, eq[1].idx)
	}
	for _, eq := range c.partEquivs {
		e.printf(" (TPartEquiv P%d/T%d P%d/T%d)\n",
			eq[0].child+1, eq[0].idx, eq[1].child+1, eq[1].idx)
	}
	for _, pt := range c.partTerms {
		e.printf(" (TPartTerm P%d/T%d P%d/N%d %d)\n",
			pt.part.child+1, pt.part.idx, pt.net.child+1, pt.net.idx, pt.edge)
	}
	// Export bindings: parent net k stands for a child net.
	for k, rf := range c.parentNets {
		e.printf(" (Net N%d P%d/N%d)\n", k, rf.child+1, rf.idx)
	}
	for k, rf := range c.parentParts {
		e.printf(" (TPart T%d P%d/T%d)\n", k, rf.child+1, rf.idx)
	}
}
