package hext

import (
	"strings"
	"testing"

	"ace/internal/gen"
)

func TestHierarchicalWirelistFourInverters(t *testing.T) {
	res, err := Extract(gen.FourInverters(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	text := res.HierarchicalString()
	for _, want := range []string{
		"(DefPart nEnh (Exports G S D))",
		"(DefPart Window",
		"(Part Window",
		"(LocOffset",
		"(Name Top)",
		"(Exports",
		"(Local",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("wirelist missing %q:\n%s", want, truncate(text, 2000))
		}
	}
	// Sharing: the inverter window must appear as ONE DefPart but
	// multiple Parts. Count DefParts vs Parts.
	defs := strings.Count(text, "(DefPart Window")
	parts := strings.Count(text, "(Part Window")
	if parts <= defs {
		t.Fatalf("no window sharing visible: %d defs, %d parts", defs, parts)
	}
	// Net equivalences across seams must appear.
	if !strings.Contains(text, "/N") {
		t.Fatal("no cross-window net references")
	}
}

func TestHierarchicalWirelistPartials(t *testing.T) {
	// Splitting the mesh cuts channels: the wirelist must carry
	// partial-transistor clauses. (Mesh(5)'s width is 22λ, so the
	// midpoint cut lands inside the middle diffusion column and slices
	// its five channels.)
	res, err := Extract(gen.Mesh(5).File, Options{MaxLeafItems: 3})
	if err != nil {
		t.Fatal(err)
	}
	text := res.HierarchicalString()
	if !strings.Contains(text, "TPart") {
		t.Fatalf("no partial transistors in wirelist:\n%s", truncate(text, 2000))
	}
}

func TestHierarchicalWirelistNames(t *testing.T) {
	res, err := Extract(gen.InverterChain(2).File, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_ = res.HierarchicalString() // names live in overlay labels (flatten-time), so
	// the hierarchical text carries windows only; ensure it renders
	// without error and the flattened netlist has the names.
	for _, nm := range []string{"IN", "OUT", "VDD", "GND"} {
		if _, ok := res.Netlist.NetByName(nm); !ok {
			t.Fatalf("net %s missing from flattened result", nm)
		}
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
