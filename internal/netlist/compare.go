package netlist

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Equivalent reports whether two netlists describe the same circuit up
// to net and device renumbering — the wirelist-comparator function the
// paper's introduction describes ("if the two are equivalent, the
// layout corresponds to the original circuit").
//
// Source and drain are treated as interchangeable (the physical layout
// does not distinguish them). Device sizes participate in matching so
// a resized transistor is reported as a difference. User net names,
// locations and geometry are ignored: two extractions of the same
// artwork by different algorithms must compare equal even though they
// number and place nets differently.
//
// The comparison runs Weisfeiler–Leman colour refinement over the
// bipartite device/net graph and then verifies an explicit bijection
// built from the colour classes, so a true answer is a certified
// isomorphism. For highly automorphic circuits the greedy matching
// could in principle fail to find a valid bijection that exists; the
// verification step then reports false rather than guessing.
func Equivalent(a, b *Netlist) (bool, string) {
	if len(a.Devices) != len(b.Devices) {
		return false, fmt.Sprintf("device count %d vs %d", len(a.Devices), len(b.Devices))
	}
	if len(a.Nets) != len(b.Nets) {
		// Unconnected nets are legitimate differences between tools
		// only when they touch no device; compare connected nets only.
		// Fall through: colouring handles it below via used-net count.
	}
	ca := refine(a)
	cb := refine(b)

	if !sameColourMultiset(ca.devColour, cb.devColour) {
		return false, "device signatures differ"
	}
	if !sameColourMultiset(usedNetColours(a, ca), usedNetColours(b, cb)) {
		return false, "net signatures differ"
	}

	// Build an explicit device matching: within each colour class,
	// match devices greedily while growing a net bijection, verifying
	// consistency as we go.
	netMap := map[int]int{} // a net -> b net
	netMapRev := map[int]int{}
	usedB := make([]bool, len(b.Devices))

	byColour := map[uint64][]int{}
	for i, c := range cb.devColour {
		byColour[c] = append(byColour[c], i)
	}

	var tryMap func(an, bn int) bool
	tryMap = func(an, bn int) bool {
		if m, ok := netMap[an]; ok {
			return m == bn
		}
		if m, ok := netMapRev[bn]; ok {
			return m == an
		}
		if ca.netColour[an] != cb.netColour[bn] {
			return false
		}
		netMap[an] = bn
		netMapRev[bn] = an
		return true
	}

	for ai := range a.Devices {
		ad := &a.Devices[ai]
		matched := false
		for _, bi := range byColour[ca.devColour[ai]] {
			if usedB[bi] {
				continue
			}
			bd := &b.Devices[bi]
			// Snapshot net maps so a failed candidate can be rolled back.
			snapshot := snapshotMaps(netMap, netMapRev)
			ok := tryMap(ad.Gate, bd.Gate)
			if ok {
				// Try both source/drain pairings.
				if tryMapPair(tryMap, snapshotMaps(netMap, netMapRev), netMap, netMapRev,
					ad.Source, ad.Drain, bd.Source, bd.Drain) {
					usedB[bi] = true
					matched = true
					break
				}
			}
			restoreMaps(netMap, netMapRev, snapshot)
		}
		if !matched {
			return false, fmt.Sprintf("no match for device %d (%s L=%d W=%d)",
				ai, ad.Type, ad.Length, ad.Width)
		}
	}

	// Final verification: replay every device through the mapping.
	for ai := range a.Devices {
		ad := &a.Devices[ai]
		if _, ok := netMap[ad.Gate]; !ok {
			return false, "gate net unmapped"
		}
	}
	return true, ""
}

func tryMapPair(tryMap func(int, int) bool, snap mapSnapshot,
	netMap, netMapRev map[int]int, as, adr, bs, bdr int) bool {
	if tryMap(as, bs) && tryMap(adr, bdr) {
		return true
	}
	restoreMaps(netMap, netMapRev, snap)
	if tryMap(as, bdr) && tryMap(adr, bs) {
		return true
	}
	restoreMaps(netMap, netMapRev, snap)
	return false
}

type mapSnapshot struct {
	fwd, rev map[int]int
}

func snapshotMaps(fwd, rev map[int]int) mapSnapshot {
	s := mapSnapshot{fwd: make(map[int]int, len(fwd)), rev: make(map[int]int, len(rev))}
	for k, v := range fwd {
		s.fwd[k] = v
	}
	for k, v := range rev {
		s.rev[k] = v
	}
	return s
}

func restoreMaps(fwd, rev map[int]int, s mapSnapshot) {
	for k := range fwd {
		if _, ok := s.fwd[k]; !ok {
			delete(fwd, k)
		}
	}
	for k := range rev {
		if _, ok := s.rev[k]; !ok {
			delete(rev, k)
		}
	}
	for k, v := range s.fwd {
		fwd[k] = v
	}
	for k, v := range s.rev {
		rev[k] = v
	}
}

type colouring struct {
	devColour []uint64
	netColour []uint64
}

// refine runs several rounds of colour refinement. Initial device
// colour = (type, L, W); initial net colour = degree signature. Each
// round hashes each node's colour with the sorted colours of its
// neighbours.
func refine(nl *Netlist) colouring {
	devC := make([]uint64, len(nl.Devices))
	netC := make([]uint64, len(nl.Nets))

	for i, d := range nl.Devices {
		devC[i] = hash64(uint64(d.Type), uint64(d.Length), uint64(d.Width))
	}
	for i := range netC {
		netC[i] = 1
	}

	rounds := 4
	for r := 0; r < rounds; r++ {
		// Nets absorb the colours of attached devices with roles.
		adj := make([][]uint64, len(nl.Nets))
		for i, d := range nl.Devices {
			g := hash64(devC[i], 'g')
			sd := hash64(devC[i], 's') // source/drain symmetric
			adj[d.Gate] = append(adj[d.Gate], g)
			adj[d.Source] = append(adj[d.Source], sd)
			adj[d.Drain] = append(adj[d.Drain], sd)
		}
		newNet := make([]uint64, len(nl.Nets))
		for i := range netC {
			sort.Slice(adj[i], func(x, y int) bool { return adj[i][x] < adj[i][y] })
			newNet[i] = hash64(append([]uint64{netC[i]}, adj[i]...)...)
		}
		// Devices absorb the colours of their nets with roles.
		newDev := make([]uint64, len(nl.Devices))
		for i, d := range nl.Devices {
			s, dr := newNet[d.Source], newNet[d.Drain]
			if s > dr {
				s, dr = dr, s // symmetric S/D
			}
			newDev[i] = hash64(devC[i], newNet[d.Gate], s, dr)
		}
		netC, devC = newNet, newDev
	}
	return colouring{devColour: devC, netColour: netC}
}

func usedNetColours(nl *Netlist, c colouring) []uint64 {
	used := make([]bool, len(nl.Nets))
	for _, d := range nl.Devices {
		used[d.Gate] = true
		used[d.Source] = true
		used[d.Drain] = true
	}
	var out []uint64
	for i, u := range used {
		if u {
			out = append(out, c.netColour[i])
		}
	}
	return out
}

func sameColourMultiset(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]uint64(nil), a...)
	bs := append([]uint64(nil), b...)
	sort.Slice(as, func(i, j int) bool { return as[i] < as[j] })
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func hash64(vs ...uint64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range vs {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}
