// Package netlist defines the extractor's output: a flat electrical
// network of NMOS devices and nets, plus the operations downstream
// tools need (statistics, isomorphism comparison — the "wirelist
// comparator" of the paper's introduction).
package netlist

import (
	"fmt"
	"sort"
	"strings"

	"ace/internal/geom"
	"ace/internal/tech"
)

// LayerRect is a rectangle on a mask layer; nets record their
// constituent geometry this way when geometry keeping is enabled.
type LayerRect struct {
	Layer tech.Layer
	Rect  geom.Rect
}

// Net is one electrical node.
type Net struct {
	// Names holds the user-defined names attached via CIF "94" labels,
	// sorted and deduplicated.
	Names []string

	// Location is a representative point on the net (the lowest-left
	// corner of its first geometry, matching ACE's reporting style).
	Location geom.Point

	// Geometry lists the rectangles that constitute the net, when the
	// extractor was asked to keep geometry (ACE's user option).
	Geometry []LayerRect
}

// Name returns the preferred display name: the first user name or
// N<index>.
func (n *Net) Name(index int) string {
	if len(n.Names) > 0 {
		return n.Names[0]
	}
	return fmt.Sprintf("N%d", index)
}

// Terminal is one diffusion net contacting a device channel, with the
// total contact-edge length along which they touch. The two largest
// terminals become source and drain; extra terminals indicate a
// malformed device.
type Terminal struct {
	Net  int
	Edge int64 // contact perimeter length in centimicrons
}

// Device is one extracted transistor or capacitor.
type Device struct {
	Type tech.DeviceType

	// Gate, Source and Drain index into Netlist.Nets. For capacitors
	// Source == Drain.
	Gate, Source, Drain int

	// Length and Width in centimicrons, per ACE §3: width is the mean
	// of the source and drain contact-edge lengths; length is channel
	// area divided by width.
	Length, Width int64

	// Area is the channel area in square centimicrons.
	Area int64

	// ImplArea is the implanted portion of the channel area; the
	// hierarchical extractor needs it to re-derive the device type
	// when partial transistors merge across window boundaries.
	ImplArea int64

	// Location is the lower-left corner of the channel bounding box.
	Location geom.Point

	// Terminals lists every diffusion net touching the channel (the
	// static checker flags devices with other than two).
	Terminals []Terminal

	// Geometry lists the channel rectangles when geometry keeping is
	// enabled.
	Geometry []geom.Rect
}

// Netlist is the extractor's flat output.
type Netlist struct {
	Name    string
	Devices []Device
	Nets    []Net
}

// Stats summarises a netlist.
type Stats struct {
	Devices     int
	Enhancement int
	Depletion   int
	Capacitors  int
	Nets        int
	NamedNets   int
}

// Stats computes summary counts.
func (nl *Netlist) Stats() Stats {
	s := Stats{Devices: len(nl.Devices), Nets: len(nl.Nets)}
	for _, d := range nl.Devices {
		switch d.Type {
		case tech.Enhancement:
			s.Enhancement++
		case tech.Depletion:
			s.Depletion++
		case tech.Capacitor:
			s.Capacitors++
		}
	}
	for _, n := range nl.Nets {
		if len(n.Names) > 0 {
			s.NamedNets++
		}
	}
	return s
}

func (s Stats) String() string {
	return fmt.Sprintf("devices=%d (enh=%d dep=%d cap=%d) nets=%d named=%d",
		s.Devices, s.Enhancement, s.Depletion, s.Capacitors, s.Nets, s.NamedNets)
}

// NetByName returns the index of the net carrying the given user name.
func (nl *Netlist) NetByName(name string) (int, bool) {
	for i := range nl.Nets {
		for _, n := range nl.Nets[i].Names {
			if n == name {
				return i, true
			}
		}
	}
	return 0, false
}

// SortCanonical orders devices and (stable-)renumbers nothing; it
// sorts devices by location then type so that two extractions of the
// same layout compare deterministically.
func (nl *Netlist) SortCanonical() {
	sort.SliceStable(nl.Devices, func(i, j int) bool {
		a, b := nl.Devices[i], nl.Devices[j]
		if a.Location.Y != b.Location.Y {
			return a.Location.Y < b.Location.Y
		}
		if a.Location.X != b.Location.X {
			return a.Location.X < b.Location.X
		}
		return a.Type < b.Type
	})
}

// Validate performs internal consistency checks and returns the list
// of problems found (empty when healthy). It is used by tests and by
// the extractors' debug modes.
func (nl *Netlist) Validate() []string {
	var probs []string
	bad := func(format string, args ...any) {
		probs = append(probs, fmt.Sprintf(format, args...))
	}
	for i, d := range nl.Devices {
		if d.Gate < 0 || d.Gate >= len(nl.Nets) {
			bad("device %d: gate net %d out of range", i, d.Gate)
		}
		if d.Source < 0 || d.Source >= len(nl.Nets) {
			bad("device %d: source net %d out of range", i, d.Source)
		}
		if d.Drain < 0 || d.Drain >= len(nl.Nets) {
			bad("device %d: drain net %d out of range", i, d.Drain)
		}
		if d.Width <= 0 || d.Length <= 0 {
			bad("device %d: non-positive size L=%d W=%d", i, d.Length, d.Width)
		}
		for _, t := range d.Terminals {
			if t.Net < 0 || t.Net >= len(nl.Nets) {
				bad("device %d: terminal net %d out of range", i, t.Net)
			}
		}
	}
	seen := map[string]int{}
	for i, n := range nl.Nets {
		for _, name := range n.Names {
			if j, dup := seen[name]; dup && j != i {
				bad("name %q on both net %d and net %d", name, j, i)
			}
			seen[name] = i
		}
	}
	return probs
}

// String renders a compact human-readable listing.
func (nl *Netlist) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "netlist %q: %s\n", nl.Name, nl.Stats())
	for i, d := range nl.Devices {
		fmt.Fprintf(&sb, "  %s D%d L=%d W=%d g=%s s=%s d=%s at %v\n",
			d.Type, i, d.Length, d.Width,
			nl.Nets[d.Gate].Name(d.Gate),
			nl.Nets[d.Source].Name(d.Source),
			nl.Nets[d.Drain].Name(d.Drain),
			d.Location)
	}
	return sb.String()
}
