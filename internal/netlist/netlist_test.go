package netlist

import (
	"strings"
	"testing"

	"ace/internal/geom"
	"ace/internal/tech"
)

// inv builds a hand-written inverter netlist: nets 0=VDD 1=GND 2=OUT
// 3=IN.
func inv() *Netlist {
	return &Netlist{
		Name: "inv",
		Nets: []Net{
			{Names: []string{"VDD"}},
			{Names: []string{"GND"}},
			{Names: []string{"OUT"}},
			{Names: []string{"IN"}},
		},
		Devices: []Device{
			{Type: tech.Depletion, Gate: 2, Source: 0, Drain: 2, Length: 1400, Width: 400,
				Terminals: []Terminal{{Net: 0, Edge: 400}, {Net: 2, Edge: 400}}},
			{Type: tech.Enhancement, Gate: 3, Source: 2, Drain: 1, Length: 400, Width: 2800,
				Terminals: []Terminal{{Net: 2, Edge: 3200}, {Net: 1, Edge: 2400}}},
		},
	}
}

func TestStats(t *testing.T) {
	s := inv().Stats()
	if s.Devices != 2 || s.Enhancement != 1 || s.Depletion != 1 || s.Nets != 4 || s.NamedNets != 4 {
		t.Fatalf("stats %+v", s)
	}
	if !strings.Contains(s.String(), "devices=2") {
		t.Fatalf("stats string %q", s.String())
	}
}

func TestNetByName(t *testing.T) {
	nl := inv()
	if i, ok := nl.NetByName("OUT"); !ok || i != 2 {
		t.Fatalf("OUT -> %d %v", i, ok)
	}
	if _, ok := nl.NetByName("NOPE"); ok {
		t.Fatal("found nonexistent net")
	}
}

func TestValidate(t *testing.T) {
	nl := inv()
	if probs := nl.Validate(); len(probs) != 0 {
		t.Fatalf("clean netlist: %v", probs)
	}
	bad := inv()
	bad.Devices[0].Gate = 99
	if probs := bad.Validate(); len(probs) == 0 {
		t.Fatal("out-of-range gate not caught")
	}
	dup := inv()
	dup.Nets[3].Names = []string{"VDD"}
	if probs := dup.Validate(); len(probs) == 0 {
		t.Fatal("duplicate name not caught")
	}
	zero := inv()
	zero.Devices[0].Width = 0
	if probs := zero.Validate(); len(probs) == 0 {
		t.Fatal("zero width not caught")
	}
}

func TestSortCanonicalDeterministic(t *testing.T) {
	nl := inv()
	nl.Devices[0].Location = geom.Pt(5, 5)
	nl.Devices[1].Location = geom.Pt(1, 1)
	nl.SortCanonical()
	if nl.Devices[0].Location != geom.Pt(1, 1) {
		t.Fatal("not sorted by location")
	}
}

func TestEquivalentIdentity(t *testing.T) {
	if eq, why := Equivalent(inv(), inv()); !eq {
		t.Fatalf("identity: %s", why)
	}
}

func TestEquivalentRenumbered(t *testing.T) {
	a := inv()
	// Same circuit with nets permuted: 0<->3, 1<->2, devices swapped.
	b := &Netlist{
		Nets: []Net{{}, {}, {}, {}},
		Devices: []Device{
			{Type: tech.Enhancement, Gate: 0, Source: 1, Drain: 2, Length: 400, Width: 2800,
				Terminals: []Terminal{{Net: 1}, {Net: 2}}},
			{Type: tech.Depletion, Gate: 1, Source: 3, Drain: 1, Length: 1400, Width: 400,
				Terminals: []Terminal{{Net: 3}, {Net: 1}}},
		},
	}
	if eq, why := Equivalent(a, b); !eq {
		t.Fatalf("renumbered: %s", why)
	}
}

func TestEquivalentSourceDrainSwap(t *testing.T) {
	a := inv()
	b := inv()
	b.Devices[1].Source, b.Devices[1].Drain = b.Devices[1].Drain, b.Devices[1].Source
	if eq, why := Equivalent(a, b); !eq {
		t.Fatalf("S/D swap must be equivalent: %s", why)
	}
}

func TestEquivalentDetectsDifferences(t *testing.T) {
	a := inv()

	resized := inv()
	resized.Devices[1].Width = 1234
	if eq, _ := Equivalent(a, resized); eq {
		t.Fatal("resize not detected")
	}

	retyped := inv()
	retyped.Devices[0].Type = tech.Enhancement
	if eq, _ := Equivalent(a, retyped); eq {
		t.Fatal("type change not detected")
	}

	rewired := inv()
	rewired.Devices[1].Gate = 0 // gate moved to VDD
	if eq, _ := Equivalent(a, rewired); eq {
		t.Fatal("rewire not detected")
	}

	fewer := inv()
	fewer.Devices = fewer.Devices[:1]
	if eq, _ := Equivalent(a, fewer); eq {
		t.Fatal("device count not detected")
	}
}

func TestEquivalentIgnoresUnusedNets(t *testing.T) {
	a := inv()
	b := inv()
	b.Nets = append(b.Nets, Net{}) // an extra dangling net
	if eq, why := Equivalent(a, b); !eq {
		t.Fatalf("dangling nets must not affect equivalence: %s", why)
	}
}

func TestEquivalentSymmetricCircuit(t *testing.T) {
	// A highly automorphic circuit: two identical disconnected
	// inverters; matching requires consistent pairing.
	double := func() *Netlist {
		nl := &Netlist{Nets: make([]Net, 8)}
		for off := 0; off < 8; off += 4 {
			nl.Devices = append(nl.Devices,
				Device{Type: tech.Depletion, Gate: off + 2, Source: off, Drain: off + 2,
					Length: 1400, Width: 400,
					Terminals: []Terminal{{Net: off}, {Net: off + 2}}},
				Device{Type: tech.Enhancement, Gate: off + 3, Source: off + 2, Drain: off + 1,
					Length: 400, Width: 2800,
					Terminals: []Terminal{{Net: off + 2}, {Net: off + 1}}})
		}
		return nl
	}
	if eq, why := Equivalent(double(), double()); !eq {
		t.Fatalf("symmetric circuit: %s", why)
	}
}

func TestNetName(t *testing.T) {
	nl := inv()
	if nl.Nets[0].Name(0) != "VDD" {
		t.Fatal("named net")
	}
	n := Net{}
	if n.Name(7) != "N7" {
		t.Fatalf("anonymous net name %q", n.Name(7))
	}
}

func TestString(t *testing.T) {
	s := inv().String()
	for _, want := range []string{"nEnh", "nDep", "VDD", "OUT"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() missing %q:\n%s", want, s)
		}
	}
}
