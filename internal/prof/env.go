package prof

import (
	"bytes"
	"math"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"time"
)

// Env records the machine and toolchain a measurement came from;
// baselines are only comparable against the same environment. Both
// bench commands embed it in their reports so the fields (and any new
// ones, like peak RSS) land once. GOMEMLIMIT is the soft memory limit
// in bytes, or -1 when none is set — allocation benchmarks behave very
// differently under a limit, so reports must carry it.
type Env struct {
	Date       string `json:"date"`
	GoVersion  string `json:"go"`
	OS         string `json:"os"`
	Arch       string `json:"arch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GOMEMLIMIT int64  `json:"gomemlimit"`
}

// CaptureEnv snapshots the current environment.
func CaptureEnv() Env {
	limit := debug.SetMemoryLimit(-1) // negative input only reads
	if limit == math.MaxInt64 {
		limit = -1
	}
	return Env{
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GOMEMLIMIT: limit,
	}
}

// GCStats is a snapshot of the collector counters a warm loop cares
// about: completed cycles, cumulative stop-the-world pause, cumulative
// bytes allocated and the heap currently in use.
type GCStats struct {
	NumGC        uint32 `json:"num_gc"`
	PauseTotalNs uint64 `json:"pause_total_ns"`
	TotalAlloc   uint64 `json:"total_alloc_bytes"`
	HeapInuse    uint64 `json:"heap_inuse_bytes"`
}

// CaptureGC snapshots the collector counters (runtime.ReadMemStats).
func CaptureGC() GCStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return GCStats{
		NumGC:        ms.NumGC,
		PauseTotalNs: ms.PauseTotalNs,
		TotalAlloc:   ms.TotalAlloc,
		HeapInuse:    ms.HeapInuse,
	}
}

// Delta reports the collector activity since an earlier snapshot. The
// cumulative counters are differenced; HeapInuse keeps the endpoint
// value (a level, not a rate).
func (g GCStats) Delta(since GCStats) GCStats {
	return GCStats{
		NumGC:        g.NumGC - since.NumGC,
		PauseTotalNs: g.PauseTotalNs - since.PauseTotalNs,
		TotalAlloc:   g.TotalAlloc - since.TotalAlloc,
		HeapInuse:    g.HeapInuse,
	}
}

// PeakRSSBytes reports the process's high-water resident set size
// (VmHWM from /proc/self/status) — the honest "how much memory did
// this run actually take" number the out-of-core benchmarks record.
// It returns 0 on platforms without procfs; callers should treat 0 as
// "unavailable", not "no memory".
func PeakRSSBytes() int64 {
	raw, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	return parseVmHWM(raw)
}

// parseVmHWM extracts the VmHWM value (reported in kB) from a
// /proc/self/status image.
func parseVmHWM(status []byte) int64 {
	for len(status) > 0 {
		line := status
		if i := bytes.IndexByte(status, '\n'); i >= 0 {
			line, status = status[:i], status[i+1:]
		} else {
			status = nil
		}
		if !bytes.HasPrefix(line, []byte("VmHWM:")) {
			continue
		}
		f := bytes.Fields(line[len("VmHWM:"):])
		if len(f) < 1 {
			return 0
		}
		kb, err := strconv.ParseInt(string(f[0]), 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}
