package prof

import (
	"runtime"
	"testing"
)

func TestParseVmHWM(t *testing.T) {
	status := []byte("Name:\tace\nVmPeak:\t  123 kB\nVmHWM:\t   2048 kB\nVmRSS:\t 1024 kB\n")
	if got := parseVmHWM(status); got != 2048<<10 {
		t.Fatalf("parseVmHWM = %d, want %d", got, 2048<<10)
	}
	if got := parseVmHWM([]byte("no such field\n")); got != 0 {
		t.Fatalf("missing field: got %d, want 0", got)
	}
	if got := parseVmHWM(nil); got != 0 {
		t.Fatalf("empty: got %d, want 0", got)
	}
}

func TestPeakRSSBytes(t *testing.T) {
	rss := PeakRSSBytes()
	if runtime.GOOS == "linux" && rss <= 0 {
		t.Fatalf("PeakRSSBytes = %d on linux, want > 0", rss)
	}
}

func TestCaptureEnv(t *testing.T) {
	e := CaptureEnv()
	if e.GoVersion == "" || e.OS == "" || e.NumCPU < 1 || e.Date == "" {
		t.Fatalf("incomplete env: %+v", e)
	}
}
