// Package prof wires Go's pprof profilers into the command-line
// tools: one call at the top of main turns -cpuprofile/-memprofile
// flags into profile files, so performance work on the extractors is
// measured rather than guessed.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins the profiles selected by the (possibly empty) paths and
// returns a stop function to run before the program exits. An empty
// path disables that profile; an error is returned if a profile file
// cannot be created or the CPU profiler is already running.
//
// Typical use:
//
//	stop, err := prof.Start(*cpuprofile, *memprofile)
//	if err != nil { ... }
//	defer stop()
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "prof:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialise the live heap before snapshotting
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "prof:", err)
			}
		}
	}, nil
}
