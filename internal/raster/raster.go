// Package raster implements the fixed-grid raster-scan extractor that
// preceded ACE at CMU (Partlist, after Baker's MIT artwork-analysis
// algorithm; ACE §2 and Table 5-2's baseline).
//
// The chip is examined in raster-scan order — left to right, top to
// bottom — through an L-shaped window of three grid squares: the
// current square, its left neighbour and its top neighbour. Net labels
// propagate through the window exactly as in connected-component
// labelling; devices are recognised square by square. The algorithm is
// simple but must visit every grid square spanned by every box, which
// is why ACE's edge-based sweep beats it: "an edge-based extractor
// skips empty space and extracts large boxes at little cost" (ACE §5).
package raster

import (
	"fmt"

	"ace/internal/build"
	"ace/internal/frontend"
	"ace/internal/geom"
	"ace/internal/netlist"
	"ace/internal/tech"
)

// Options configures the raster extractor.
type Options struct {
	// Grid is the raster pitch in centimicrons. All geometry must be
	// aligned to it — the fixed-grid algorithm's documented constraint
	// (ACE §2: "It further requires that all geometry be aligned with
	// the grid."). Zero selects the NMOS λ of 200.
	Grid int64

	// KeepGeometry records per-net geometry (one rect per grid square
	// run; coarse but faithful to the algorithm).
	KeepGeometry bool

	// Labels are the design's name labels.
	Labels []frontend.Label
}

// Counters reports raster work.
type Counters struct {
	Rows    int
	Cols    int
	Squares int64 // grid squares visited (the raster's cost driver)
	BoxesIn int
}

// Result of a raster extraction.
type Result struct {
	Netlist  *netlist.Netlist
	Counters Counters
	Warnings []string
}

// layer bit masks per grid square.
const (
	mDiff = 1 << iota
	mPoly
	mMetal
	mCut
	mBuried
	mImplant
)

var maskOf = map[tech.Layer]uint8{
	tech.Diff:    mDiff,
	tech.Poly:    mPoly,
	tech.Metal:   mMetal,
	tech.Cut:     mCut,
	tech.Buried:  mBuried,
	tech.Implant: mImplant,
}

// Extract runs the raster algorithm over all boxes from the source.
func Extract(src interface {
	Next() (frontend.Box, bool)
}, opt Options) (*Result, error) {
	grid := opt.Grid
	if grid <= 0 {
		grid = 200
	}

	var boxes []frontend.Box
	for {
		b, ok := src.Next()
		if !ok {
			break
		}
		boxes = append(boxes, b)
	}
	return ExtractBoxes(boxes, opt)
}

// ExtractBoxes runs the raster algorithm over an explicit box list.
func ExtractBoxes(boxes []frontend.Box, opt Options) (*Result, error) {
	grid := opt.Grid
	if grid <= 0 {
		grid = 200
	}
	res := &Result{}
	res.Counters.BoxesIn = len(boxes)
	if len(boxes) == 0 {
		res.Netlist = &netlist.Netlist{}
		return res, nil
	}

	bb := boxes[0].Rect
	for _, b := range boxes[1:] {
		bb = bb.Union(b.Rect)
	}
	for _, b := range boxes {
		r := b.Rect
		if r.XMin%grid != 0 || r.XMax%grid != 0 || r.YMin%grid != 0 || r.YMax%grid != 0 {
			return nil, fmt.Errorf("raster: box %v not aligned to grid %d", r, grid)
		}
	}

	cols := int((bb.XMax - bb.XMin) / grid)
	rows := int((bb.YMax - bb.YMin) / grid)
	if cols <= 0 || rows <= 0 {
		res.Netlist = &netlist.Netlist{}
		return res, nil
	}

	e := &engine{
		grid: grid, bb: bb, cols: cols, rows: rows,
		b:      &build.Builder{KeepGeometry: opt.KeepGeometry},
		labels: opt.Labels,
	}
	e.run(boxes)
	nl, _ := e.b.Finish()
	res.Netlist = nl
	res.Counters.Rows = rows
	res.Counters.Cols = cols
	res.Counters.Squares = int64(rows) * int64(cols)
	res.Warnings = append(e.warnings, e.b.Warnings()...)
	return res, nil
}

type engine struct {
	grid       int64
	bb         geom.Rect
	cols, rows int

	b      *build.Builder
	labels []frontend.Label

	warnings []string
}

// cellState is the per-square state carried between rows: net labels
// for the three conducting planes and the device label for channels.
type rowState struct {
	mask  []uint8
	metal []int32
	poly  []int32
	diff  []int32
	chan_ []int32
}

func newRowState(cols int) *rowState {
	rs := &rowState{
		mask:  make([]uint8, cols),
		metal: make([]int32, cols),
		poly:  make([]int32, cols),
		diff:  make([]int32, cols),
		chan_: make([]int32, cols),
	}
	rs.clear()
	return rs
}

func (rs *rowState) clear() {
	for i := range rs.mask {
		rs.mask[i] = 0
		rs.metal[i] = -1
		rs.poly[i] = -1
		rs.diff[i] = -1
		rs.chan_[i] = -1
	}
}

func (e *engine) run(boxes []frontend.Box) {
	// Bucket boxes by their starting row (row 0 = top of chip).
	rowOf := func(y int64) int { return int((e.bb.YMax - y) / e.grid) }
	starts := make([][]frontend.Box, e.rows+1)
	for _, b := range boxes {
		r := rowOf(b.Rect.YMax)
		starts[r] = append(starts[r], b)
	}

	// Bucket labels by the row containing their point. A label on a
	// row boundary belongs to the row below it (whose yTop it is);
	// one on the chip's bottom edge belongs to the last row.
	labelRows := make([][]frontend.Label, e.rows)
	for _, lb := range e.labels {
		if lb.At.Y > e.bb.YMax || lb.At.Y < e.bb.YMin ||
			lb.At.X > e.bb.XMax || lb.At.X < e.bb.XMin {
			e.warnings = append(e.warnings,
				fmt.Sprintf("label %q at %v outside the chip", lb.Name, lb.At))
			continue
		}
		r := rowOf(lb.At.Y)
		if lb.At.Y == e.bb.YMax {
			r = 0
		}
		if r >= e.rows {
			r = e.rows - 1
		}
		labelRows[r] = append(labelRows[r], lb)
	}

	prev := newRowState(e.cols)
	cur := newRowState(e.cols)
	var active []frontend.Box

	for row := 0; row < e.rows; row++ {
		yTop := e.bb.YMax - int64(row)*e.grid
		yBot := yTop - e.grid

		// Update the active box set and paint the row's layer masks.
		active = append(active, starts[row]...)
		w := 0
		for _, b := range active {
			if b.Rect.YMin < yTop { // still spans this row
				active[w] = b
				w++
			}
		}
		active = active[:w]
		for i := range cur.mask {
			cur.mask[i] = 0
			cur.metal[i] = -1
			cur.poly[i] = -1
			cur.diff[i] = -1
			cur.chan_[i] = -1
		}
		for _, b := range active {
			m, ok := maskOf[b.Layer]
			if !ok {
				continue
			}
			c0 := int((b.Rect.XMin - e.bb.XMin) / e.grid)
			c1 := int((b.Rect.XMax - e.bb.XMin) / e.grid)
			for c := c0; c < c1; c++ {
				cur.mask[c] |= m
			}
		}

		// The L-window pass.
		for c := 0; c < e.cols; c++ {
			e.square(cur, prev, row, c, yTop, yBot)
		}

		// Resolve this row's labels against the freshly-built planes.
		for _, lb := range labelRows[row] {
			e.attachLabel(cur, lb)
		}

		prev, cur = cur, prev
	}
}

// attachLabel binds one label to the net in its grid square, preferring
// metal, then poly, then diffusion (matching ACE's rule).
func (e *engine) attachLabel(cur *rowState, lb frontend.Label) {
	c := int((lb.At.X - e.bb.XMin) / e.grid)
	if c >= e.cols {
		c = e.cols - 1
	}
	pick := func(plane []int32) int32 {
		if plane[c] >= 0 {
			return plane[c]
		}
		// A label exactly on a cell's left boundary may belong to the
		// square on its other side.
		if c > 0 && lb.At.X == e.bb.XMin+int64(c)*e.grid && plane[c-1] >= 0 {
			return plane[c-1]
		}
		return -1
	}
	var id int32 = -1
	if lb.HasLayer {
		switch lb.Layer {
		case tech.Metal:
			id = pick(cur.metal)
		case tech.Poly:
			id = pick(cur.poly)
		case tech.Diff:
			id = pick(cur.diff)
		}
	} else {
		for _, plane := range [][]int32{cur.metal, cur.poly, cur.diff} {
			if id = pick(plane); id >= 0 {
				break
			}
		}
	}
	if id < 0 {
		e.warnings = append(e.warnings,
			fmt.Sprintf("label %q at %v matches no conducting geometry", lb.Name, lb.At))
		return
	}
	e.b.NameNet(id, lb.Name)
}

// square processes one grid square with its left and top neighbours.
func (e *engine) square(cur, prev *rowState, row, c int, yTop, yBot int64) {
	m := cur.mask[c]
	if m == 0 {
		return
	}
	isChan := m&mDiff != 0 && m&mPoly != 0 && m&mBuried == 0
	isBurCon := m&mDiff != 0 && m&mPoly != 0 && m&mBuried != 0

	x0 := e.bb.XMin + int64(c)*e.grid
	sq := geom.Rect{XMin: x0, YMin: yBot, XMax: x0 + e.grid, YMax: yTop}

	label := func(plane []int32, prevPlane []int32, here bool, layer tech.Layer) int32 {
		if !here {
			return -1
		}
		id := int32(-1)
		if c > 0 && plane[c-1] >= 0 {
			id = e.b.FindNet(plane[c-1])
		}
		if up := prevPlane[c]; up >= 0 {
			if id >= 0 {
				id = e.b.UnionNets(id, up)
			} else {
				id = e.b.FindNet(up)
			}
		}
		if id < 0 {
			id = e.b.NewNet(geom.Pt(sq.XMin, sq.YMax))
		}
		plane[c] = id
		if e.b.KeepGeometry {
			e.b.AddNetGeometry(id, layer, sq)
		}
		return id
	}

	metal := label(cur.metal, prev.metal, m&mMetal != 0, tech.Metal)
	poly := label(cur.poly, prev.poly, m&mPoly != 0, tech.Poly)
	diff := label(cur.diff, prev.diff, m&mDiff != 0 && !isChan, tech.Diff)

	// Contact cut: metal to poly and/or diffusion.
	if m&mCut != 0 && metal >= 0 {
		if poly >= 0 {
			e.b.UnionNets(metal, poly)
		}
		if diff >= 0 {
			e.b.UnionNets(metal, diff)
		}
	}
	// Buried contact: poly to diffusion.
	if isBurCon && poly >= 0 && diff >= 0 {
		e.b.UnionNets(poly, diff)
	}

	if isChan {
		dv := int32(-1)
		if c > 0 && cur.chan_[c-1] >= 0 {
			dv = e.b.FindDev(cur.chan_[c-1])
		}
		if up := prev.chan_[c]; up >= 0 {
			if dv >= 0 {
				dv = e.b.UnionDevs(dv, up)
			} else {
				dv = e.b.FindDev(up)
			}
		}
		if dv < 0 {
			dv = e.b.NewDev()
		}
		cur.chan_[c] = dv
		e.b.AddChannel(dv, sq)
		if m&mImplant != 0 {
			e.b.AddImplant(dv, sq.Area())
		}
		if poly >= 0 {
			e.b.AddGate(dv, poly)
		}
		// S/D edges against the left and top neighbours.
		if c > 0 && cur.diff[c-1] >= 0 {
			e.b.AddTerm(dv, cur.diff[c-1], e.grid)
		}
		if prev.diff[c] >= 0 {
			e.b.AddTerm(dv, prev.diff[c], e.grid)
		}
	} else if diff >= 0 {
		// Conducting diffusion adjacent to a channel on the left or
		// above contributes the other half of the edge pairs.
		if c > 0 && cur.chan_[c-1] >= 0 {
			e.b.AddTerm(cur.chan_[c-1], diff, e.grid)
		}
		if prev.chan_[c] >= 0 {
			e.b.AddTerm(prev.chan_[c], diff, e.grid)
		}
	}
}
