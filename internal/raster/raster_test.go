package raster

import (
	"math/rand"
	"testing"

	"ace/internal/extract"
	"ace/internal/frontend"
	"ace/internal/gen"
	"ace/internal/geom"
	"ace/internal/netlist"
	"ace/internal/scan"
	"ace/internal/tech"
)

func box(l tech.Layer, x0, y0, x1, y1 int64) frontend.Box {
	return frontend.Box{Layer: l, Rect: geom.R(x0, y0, x1, y1)}
}

func rasterize(t *testing.T, opt Options, boxes ...frontend.Box) *Result {
	t.Helper()
	res, err := ExtractBoxes(boxes, opt)
	if err != nil {
		t.Fatal(err)
	}
	if probs := res.Netlist.Validate(); len(probs) > 0 {
		t.Fatalf("invalid netlist: %v", probs)
	}
	return res
}

func TestSimpleNet(t *testing.T) {
	res := rasterize(t, Options{Grid: 100},
		box(tech.Metal, 0, 0, 300, 100),
		box(tech.Metal, 200, 0, 300, 400),
		box(tech.Metal, 1000, 0, 1100, 100))
	if got := len(res.Netlist.Nets); got != 2 {
		t.Fatalf("nets %d, want 2", got)
	}
	if res.Counters.Squares != 11*4 {
		t.Fatalf("squares %d", res.Counters.Squares)
	}
}

func TestTransistor(t *testing.T) {
	res := rasterize(t, Options{Grid: 100},
		box(tech.Diff, 0, 0, 100, 300),
		box(tech.Poly, -100, 100, 200, 200))
	nl := res.Netlist
	if len(nl.Devices) != 1 {
		t.Fatalf("devices %d", len(nl.Devices))
	}
	d := nl.Devices[0]
	if d.Type != tech.Enhancement || d.Length != 100 || d.Width != 100 {
		t.Fatalf("device %+v", d)
	}
	if len(nl.Nets) != 3 {
		t.Fatalf("nets %d", len(nl.Nets))
	}
}

func TestMisalignedRejected(t *testing.T) {
	_, err := ExtractBoxes([]frontend.Box{box(tech.Metal, 0, 0, 150, 100)},
		Options{Grid: 100})
	if err == nil {
		t.Fatal("misaligned geometry must be rejected (fixed-grid constraint)")
	}
}

func TestInverterMatchesACE(t *testing.T) {
	f := gen.Inverter()
	aceRes, err := extract.File(f, extract.Options{})
	if err != nil {
		t.Fatal(err)
	}
	stream, err := frontend.New(f, frontend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	boxes := stream.Drain()
	res, err := ExtractBoxes(boxes, Options{Grid: 200, Labels: stream.Labels()})
	if err != nil {
		t.Fatal(err)
	}
	eq, reason := netlist.Equivalent(aceRes.Netlist, res.Netlist)
	if !eq {
		t.Fatalf("raster disagrees with ACE on the inverter: %s\nACE:\n%s\nraster:\n%s",
			reason, aceRes.Netlist, res.Netlist)
	}
	// Sizes must agree exactly.
	for _, want := range [][2]int64{{400, 2800}, {1400, 400}} {
		found := false
		for _, d := range res.Netlist.Devices {
			if d.Length == want[0] && d.Width == want[1] {
				found = true
			}
		}
		if !found {
			t.Fatalf("no device with L=%d W=%d\n%s", want[0], want[1], res.Netlist)
		}
	}
	// Names must attach to the same structure.
	for _, nm := range []string{"VDD", "GND", "INP", "OUT"} {
		if _, ok := res.Netlist.NetByName(nm); !ok {
			t.Fatalf("net %s missing from raster result", nm)
		}
	}
}

// TestRandomDifferential cross-validates the raster baseline against
// the scanline extractor on random λ-aligned layouts: the two
// algorithms must always produce isomorphic netlists.
func TestRandomDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	layers := []tech.Layer{tech.Diff, tech.Poly, tech.Metal, tech.Cut, tech.Buried, tech.Implant}
	const grid = 100
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(25)
		boxes := make([]frontend.Box, n)
		for i := range boxes {
			l := layers[rng.Intn(len(layers))]
			x := int64(rng.Intn(12)) * grid
			y := int64(rng.Intn(12)) * grid
			w := int64(1+rng.Intn(5)) * grid
			h := int64(1+rng.Intn(5)) * grid
			boxes[i] = box(l, x, y, x+w, y+h)
		}

		rres, err := ExtractBoxes(boxes, Options{Grid: grid})
		if err != nil {
			t.Fatal(err)
		}
		sres, err := scan.Sweep(newSliceSource(boxes), scan.Options{})
		if err != nil {
			t.Fatal(err)
		}
		eq, reason := netlist.Equivalent(sres.Netlist, rres.Netlist)
		if !eq {
			t.Fatalf("trial %d: scan and raster disagree: %s\nboxes: %v\nscan:\n%s\nraster:\n%s",
				trial, reason, boxes, sres.Netlist, rres.Netlist)
		}
	}
}

// newSliceSource adapts a box slice to the scan.Source interface.
type sliceSource struct {
	boxes []frontend.Box
	pos   int
}

func newSliceSource(boxes []frontend.Box) *sliceSource {
	s := &sliceSource{boxes: append([]frontend.Box(nil), boxes...)}
	for i := 1; i < len(s.boxes); i++ {
		for j := i; j > 0 && s.boxes[j].Rect.YMax > s.boxes[j-1].Rect.YMax; j-- {
			s.boxes[j], s.boxes[j-1] = s.boxes[j-1], s.boxes[j]
		}
	}
	return s
}

func (s *sliceSource) NextTop() (int64, bool) {
	if s.pos >= len(s.boxes) {
		return 0, false
	}
	return s.boxes[s.pos].Rect.YMax, true
}

func (s *sliceSource) Next() (frontend.Box, bool) {
	if s.pos >= len(s.boxes) {
		return frontend.Box{}, false
	}
	b := s.boxes[s.pos]
	s.pos++
	return b, true
}

func TestEmpty(t *testing.T) {
	res, err := ExtractBoxes(nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Netlist.Nets) != 0 {
		t.Fatal("expected empty netlist")
	}
}

func TestLabelOutsideChipWarns(t *testing.T) {
	res := rasterize(t, Options{Grid: 100, Labels: []frontend.Label{
		{Name: "FAR", At: geom.Pt(100000, 100000)},
	}}, box(tech.Metal, 0, 0, 100, 100))
	if len(res.Warnings) == 0 {
		t.Fatal("expected warning for out-of-chip label")
	}
}
