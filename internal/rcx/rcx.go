// Package rcx estimates per-net capacitance and resistance from
// extracted net geometry. ACE deliberately computes neither — "it was
// undesirable to embed any fixed notion of a circuit model into the
// extractor code... This information is enough for a post-processing
// program to compute capacitances and resistances" (ACE §2). This is
// that post-processing program. It requires an extraction run with
// geometry keeping enabled.
package rcx

import (
	"fmt"
	"sort"

	"ace/internal/geom"
	"ace/internal/netlist"
	"ace/internal/tech"
)

// NetRC is the parasitics estimate for one net.
type NetRC struct {
	Net int

	// CapAF is the total area capacitance in attofarads.
	CapAF float64

	// ResMOhm is a crude end-to-end resistance estimate in milliohms:
	// per layer, the net's bounding-path squares times the sheet
	// resistance, paralleled across layers. Good for relative
	// comparisons (which is what a timing pre-check needs), not SPICE.
	ResMOhm float64

	// AreaByLayer is the net's area per layer in λ².
	AreaByLayer [tech.NumLayers]float64
}

// Annotate computes parasitics for every net. Nets without geometry
// (extraction ran without KeepGeometry) yield an error.
func Annotate(nl *netlist.Netlist, tc *tech.Tech) ([]NetRC, error) {
	if tc == nil {
		tc = tech.Default()
	}
	lam2 := float64(tc.Lambda) * float64(tc.Lambda)
	out := make([]NetRC, len(nl.Nets))
	sawGeometry := false
	for i := range nl.Nets {
		rc := &out[i]
		rc.Net = i

		perLayer := map[tech.Layer][]geom.Rect{}
		for _, g := range nl.Nets[i].Geometry {
			sawGeometry = true
			perLayer[g.Layer] = append(perLayer[g.Layer], g.Rect)
		}
		var conductances float64
		for l, rects := range perLayer {
			area := float64(geom.UnionArea(rects)) / lam2
			rc.AreaByLayer[l] = area
			rc.CapAF += area * tc.AreaCapPerLambda2[l]

			// Squares estimate: treat the layer's bounding box as a
			// wire of its aspect ratio carrying the net end to end.
			bb := geom.BBoxOf(rects)
			long := float64(max64(bb.W(), bb.H()))
			short := float64(min64(bb.W(), bb.H()))
			if short <= 0 {
				continue
			}
			squares := long / short
			r := squares * tc.SheetResistance[l]
			if r > 0 {
				conductances += 1 / r
			}
		}
		if conductances > 0 {
			rc.ResMOhm = 1 / conductances
		}
	}
	if len(nl.Nets) > 0 && !sawGeometry {
		return nil, fmt.Errorf("rcx: netlist has no geometry; extract with KeepGeometry")
	}
	return out, nil
}

// Worst returns the n nets with the largest capacitance, descending.
func Worst(rcs []NetRC, n int) []NetRC {
	sorted := append([]NetRC(nil), rcs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].CapAF > sorted[j].CapAF })
	if n > len(sorted) {
		n = len(sorted)
	}
	return sorted[:n]
}

// ElmoreNS returns a one-pole RC delay estimate in nanoseconds
// (R·C with unit conversion), useful for ranking critical nets.
func (rc NetRC) ElmoreNS() float64 {
	// mΩ · aF = 1e-3 Ω · 1e-18 F = 1e-21 s = 1e-12 ns.
	return rc.ResMOhm * rc.CapAF * 1e-12
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
