package rcx

import (
	"testing"

	"ace/internal/extract"
	"ace/internal/gen"
	"ace/internal/tech"
)

func TestInverterParasitics(t *testing.T) {
	res, err := extract.File(gen.Inverter(), extract.Options{KeepGeometry: true})
	if err != nil {
		t.Fatal(err)
	}
	rcs, err := Annotate(res.Netlist, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rcs) != len(res.Netlist.Nets) {
		t.Fatalf("rc count %d", len(rcs))
	}
	// Every net in the inverter has geometry and hence capacitance.
	for _, rc := range rcs {
		if rc.CapAF <= 0 {
			t.Fatalf("net %d has no capacitance", rc.Net)
		}
	}
	// The VDD rail (a full-width metal bar plus diffusion) must carry
	// more capacitance than the input (poly+metal but smaller area).
	vdd, _ := res.Netlist.NetByName("VDD")
	out, _ := res.Netlist.NetByName("OUT")
	if rcs[vdd].CapAF <= 0 || rcs[out].CapAF <= 0 {
		t.Fatal("zero cap on principal nets")
	}
	// Poly is the most resistive layer here: OUT (includes poly)
	// should have nonzero resistance.
	if rcs[out].ResMOhm <= 0 {
		t.Fatalf("OUT resistance %v", rcs[out].ResMOhm)
	}
}

func TestRequiresGeometry(t *testing.T) {
	res, err := extract.File(gen.Inverter(), extract.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Annotate(res.Netlist, nil); err == nil {
		t.Fatal("expected error without geometry")
	}
}

func TestWorstOrdering(t *testing.T) {
	res, err := extract.File(gen.InverterChain(4).File, extract.Options{KeepGeometry: true})
	if err != nil {
		t.Fatal(err)
	}
	rcs, err := Annotate(res.Netlist, tech.Default())
	if err != nil {
		t.Fatal(err)
	}
	worst := Worst(rcs, 3)
	if len(worst) != 3 {
		t.Fatalf("worst %d", len(worst))
	}
	if worst[0].CapAF < worst[1].CapAF || worst[1].CapAF < worst[2].CapAF {
		t.Fatal("not sorted descending")
	}
	// The rails span the whole chain: one of them must top the list.
	vdd, _ := res.Netlist.NetByName("VDD")
	gnd, _ := res.Netlist.NetByName("GND")
	if worst[0].Net != vdd && worst[0].Net != gnd {
		t.Fatalf("expected a rail on top, got net %d", worst[0].Net)
	}
}

func TestElmore(t *testing.T) {
	rc := NetRC{ResMOhm: 2e6, CapAF: 5e5} // 2kΩ, 0.5pF → 1ns
	if got := rc.ElmoreNS(); got < 0.99 || got > 1.01 {
		t.Fatalf("elmore %v, want 1ns", got)
	}
}
