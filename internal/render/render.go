// Package render draws CIF layouts as images — the plotting half of
// the historical cifplot, and the "other tasks" the HEXT front end was
// built to serve. Layers blend translucently in the classic
// Mead–Conway colour scheme (green diffusion, red poly, blue metal,
// black cuts, yellow implant).
package render

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"

	"ace/internal/frontend"
	"ace/internal/geom"
	"ace/internal/tech"
)

// Options controls rendering.
type Options struct {
	// MaxDim bounds the longer image dimension in pixels; the scale is
	// chosen so the layout fits. Zero selects 1024.
	MaxDim int

	// Margin is the border in pixels around the artwork (default 8).
	Margin int

	// Highlight is painted over the layout in a saturated magenta —
	// typically one net's extracted geometry, for tracing a signal
	// through the artwork.
	Highlight []geom.Rect
}

// Palette maps layers to the classic NMOS colours.
var Palette = map[tech.Layer]color.NRGBA{
	tech.Diff:    {0x22, 0xaa, 0x33, 0xff}, // green
	tech.Poly:    {0xdd, 0x22, 0x22, 0xff}, // red
	tech.Metal:   {0x33, 0x55, 0xee, 0xff}, // blue
	tech.Cut:     {0x10, 0x10, 0x10, 0xff}, // black
	tech.Buried:  {0x88, 0x55, 0x22, 0xff}, // brown
	tech.Implant: {0xdd, 0xcc, 0x22, 0xff}, // yellow
	tech.Glass:   {0x99, 0x99, 0x99, 0xff}, // grey
}

// drawOrder paints large background layers first, cuts last.
var drawOrder = []tech.Layer{
	tech.Implant, tech.Diff, tech.Poly, tech.Metal, tech.Buried, tech.Glass, tech.Cut,
}

// alpha is the per-layer blend weight (cuts are opaque).
func alpha(l tech.Layer) float64 {
	if l == tech.Cut {
		return 1.0
	}
	return 0.55
}

// Image rasterises the boxes into an RGBA image.
func Image(boxes []frontend.Box, opt Options) (*image.NRGBA, error) {
	maxDim := opt.MaxDim
	if maxDim <= 0 {
		maxDim = 1024
	}
	margin := opt.Margin
	if margin <= 0 {
		margin = 8
	}
	if len(boxes) == 0 {
		return nil, fmt.Errorf("render: no geometry")
	}

	bb := boxes[0].Rect
	for _, b := range boxes[1:] {
		bb = bb.Union(b.Rect)
	}
	long := bb.W()
	if bb.H() > long {
		long = bb.H()
	}
	if long <= 0 {
		return nil, fmt.Errorf("render: degenerate extent %v", bb)
	}
	scale := float64(maxDim-2*margin) / float64(long)

	w := int(float64(bb.W())*scale) + 2*margin
	h := int(float64(bb.H())*scale) + 2*margin
	img := image.NewNRGBA(image.Rect(0, 0, w, h))
	for i := range img.Pix {
		img.Pix[i] = 0xff // white background
	}

	// y grows upward in layout space, downward in image space.
	toPx := func(p geom.Point) (int, int) {
		x := margin + int(float64(p.X-bb.XMin)*scale)
		y := h - margin - int(float64(p.Y-bb.YMin)*scale)
		return x, y
	}

	paint := func(r geom.Rect, col color.NRGBA, a float64) {
		x0, y1 := toPx(geom.Pt(r.XMin, r.YMin))
		x1, y0 := toPx(geom.Pt(r.XMax, r.YMax))
		if x1 <= x0 {
			x1 = x0 + 1
		}
		if y1 <= y0 {
			y1 = y0 + 1
		}
		for y := y0; y < y1 && y < h; y++ {
			if y < 0 {
				continue
			}
			for x := x0; x < x1 && x < w; x++ {
				if x < 0 {
					continue
				}
				blend(img, x, y, col, a)
			}
		}
	}

	for _, layer := range drawOrder {
		col, ok := Palette[layer]
		if !ok {
			continue
		}
		a := alpha(layer)
		for _, b := range boxes {
			if b.Layer == layer {
				paint(b.Rect, col, a)
			}
		}
	}
	highlight := color.NRGBA{0xff, 0x00, 0xcc, 0xff}
	for _, r := range opt.Highlight {
		paint(r, highlight, 0.65)
	}
	return img, nil
}

func blend(img *image.NRGBA, x, y int, c color.NRGBA, a float64) {
	i := img.PixOffset(x, y)
	mix := func(old, new uint8) uint8 {
		return uint8(float64(old)*(1-a) + float64(new)*a)
	}
	img.Pix[i+0] = mix(img.Pix[i+0], c.R)
	img.Pix[i+1] = mix(img.Pix[i+1], c.G)
	img.Pix[i+2] = mix(img.Pix[i+2], c.B)
	img.Pix[i+3] = 0xff
}

// WritePNG renders the boxes and encodes the image as PNG.
func WritePNG(w io.Writer, boxes []frontend.Box, opt Options) error {
	img, err := Image(boxes, opt)
	if err != nil {
		return err
	}
	return png.Encode(w, img)
}
