package render

import (
	"bytes"
	"image/png"
	"testing"

	"ace/internal/frontend"
	"ace/internal/gen"
	"ace/internal/geom"
	"ace/internal/tech"
)

func TestImageBasics(t *testing.T) {
	boxes := []frontend.Box{
		{Layer: tech.Diff, Rect: geom.R(0, 0, 1000, 1000)},
		{Layer: tech.Metal, Rect: geom.R(2000, 0, 3000, 1000)},
	}
	img, err := Image(boxes, Options{MaxDim: 300})
	if err != nil {
		t.Fatal(err)
	}
	b := img.Bounds()
	if b.Dx() > 300 || b.Dy() > 300 || b.Dx() < 50 {
		t.Fatalf("bounds %v", b)
	}
	// Sample the middle of the diffusion box: greener than blue.
	x := 8 + b.Dx()/8
	y := b.Dy() / 2
	r, g, bl, _ := img.At(x, y).RGBA()
	if g <= bl || g <= r {
		t.Fatalf("diffusion sample not green: r=%d g=%d b=%d at (%d,%d)", r, g, bl, x, y)
	}
	// Sample the gap: white.
	gx := b.Dx() / 2
	r, g, bl, _ = img.At(gx, y).RGBA()
	if r != 0xffff || g != 0xffff || bl != 0xffff {
		t.Fatalf("gap not white: %d %d %d", r, g, bl)
	}
}

func TestOverlapBlends(t *testing.T) {
	boxes := []frontend.Box{
		{Layer: tech.Diff, Rect: geom.R(0, 0, 1000, 1000)},
		{Layer: tech.Poly, Rect: geom.R(0, 0, 1000, 1000)},
	}
	img, err := Image(boxes, Options{MaxDim: 100})
	if err != nil {
		t.Fatal(err)
	}
	b := img.Bounds()
	r, g, _, _ := img.At(b.Dx()/2, b.Dy()/2).RGBA()
	// Both red (poly) and green (diff) must contribute.
	if r < 0x4000 || g < 0x3000 {
		t.Fatalf("overlap not blended: r=%d g=%d", r, g)
	}
}

func TestWritePNG(t *testing.T) {
	f := gen.Inverter()
	stream, err := frontend.New(f, frontend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WritePNG(&buf, stream.Drain(), Options{MaxDim: 400}); err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatalf("invalid png: %v", err)
	}
	if img.Bounds().Dx() < 100 {
		t.Fatalf("image too small: %v", img.Bounds())
	}
}

func TestHighlight(t *testing.T) {
	boxes := []frontend.Box{
		{Layer: tech.Diff, Rect: geom.R(0, 0, 1000, 1000)},
	}
	img, err := Image(boxes, Options{MaxDim: 100,
		Highlight: []geom.Rect{geom.R(0, 0, 500, 1000)}})
	if err != nil {
		t.Fatal(err)
	}
	b := img.Bounds()
	// Left half: magenta dominates (high red+blue); right half: green.
	r1, g1, b1, _ := img.At(b.Dx()/4, b.Dy()/2).RGBA()
	if r1 <= g1 || b1 <= g1 {
		t.Fatalf("highlight sample not magenta: r=%d g=%d b=%d", r1, g1, b1)
	}
	r2, g2, _, _ := img.At(3*b.Dx()/4, b.Dy()/2).RGBA()
	if g2 <= r2 {
		t.Fatalf("unhighlighted sample not green: r=%d g=%d", r2, g2)
	}
}

func TestEmptyErrors(t *testing.T) {
	if _, err := Image(nil, Options{}); err == nil {
		t.Fatal("empty geometry should error")
	}
}
