package scan

import (
	"reflect"
	"sort"
	"testing"

	"ace/internal/frontend"
	"ace/internal/gen"
	"ace/internal/geom"
)

// pseudoTopBoxes builds n boxes with deterministic pseudo-random tops
// (an LCG; no math/rand setup), already in descending-top order.
func pseudoTopBoxes(n int, dup bool) []frontend.Box {
	out := make([]frontend.Box, n)
	state := uint64(0x243f6a8885a308d3)
	for i := range out {
		state = state*6364136223846793005 + 1442695040888963407
		top := int64(state >> 45)
		if dup {
			top &^= 7 // cluster tops so quantiles hit ties
		}
		out[i] = frontend.Box{Rect: geom.Rect{XMin: 0, YMin: top - 10, XMax: 10, YMax: top}}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rect.YMax > out[j].Rect.YMax })
	return out
}

// TestCutsFromTopsMatchesChooseCuts pins the lockstep chooseCuts's
// comment promises: CutsFromTops over the sorted top list must return
// exactly the cuts chooseCuts picks from the sorted box list, for any
// worker count — including degenerate inputs where every top ties.
func TestCutsFromTopsMatchesChooseCuts(t *testing.T) {
	cases := [][]frontend.Box{
		pseudoTopBoxes(1, false),
		pseudoTopBoxes(7, false),
		pseudoTopBoxes(100, false),
		pseudoTopBoxes(257, true),
		make([]frontend.Box, 50), // all tops equal (zero)
	}
	for ci, boxes := range cases {
		tops := make([]int64, len(boxes))
		for i, b := range boxes {
			tops[i] = b.Rect.YMax
		}
		for workers := 2; workers <= 9; workers++ {
			want := chooseCuts(boxes, workers)
			got := CutsFromTops(tops, workers)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("case %d workers %d: chooseCuts %v, CutsFromTops %v",
					ci, workers, want, got)
			}
		}
	}
}

func canonBand(in []frontend.Box) []frontend.Box {
	out := make([]frontend.Box, len(in))
	copy(out, in)
	SortTopDown(out)
	return out
}

// TestBandStreamsMatchPartition pins the streamed band path against the
// materialising one: for the same design, the flatten's SortedTops must
// reproduce chooseCuts' boundaries exactly, and each band stream must
// deliver the same clipped box multiset partitionBoxes produces.
func TestBandStreamsMatchPartition(t *testing.T) {
	designs := []gen.Workload{
		gen.MustBenchChip("cherry"),
		gen.Mesh(5),
		gen.Statistical(1200, 3),
	}
	for _, w := range designs {
		stream, err := frontend.New(w.File, frontend.Options{})
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		boxes := stream.Drain()
		for _, bands := range []int{2, 3, 4} {
			cuts := chooseCuts(boxes, bands)
			want := partitionBoxes(boxes, cuts, nil)
			for _, fw := range []int{1, 3} {
				fl, err := frontend.Flatten(nil, w.File, frontend.Options{})
				if err != nil {
					t.Fatalf("%s: %v", w.Name, err)
				}
				fl.Prepare(fw)
				tops, err := fl.SortedTops(fw)
				if err != nil {
					t.Fatalf("%s: %v", w.Name, err)
				}
				if len(tops) != len(boxes) {
					t.Fatalf("%s: %d tops for %d boxes", w.Name, len(tops), len(boxes))
				}
				if got := CutsFromTops(tops, bands); !reflect.DeepEqual(cuts, got) {
					t.Fatalf("%s bands=%d fw=%d: cuts %v vs %v", w.Name, bands, fw, cuts, got)
				}
				srcs := fl.BandStreams(fw, cuts)
				if len(srcs) != len(want) {
					t.Fatalf("%s: %d band streams for %d partitions", w.Name, len(srcs), len(want))
				}
				for k, src := range srcs {
					gotBand := canonBand(src.Drain())
					wantBand := canonBand(want[k])
					if len(gotBand) != len(wantBand) {
						t.Fatalf("%s bands=%d fw=%d band %d: %d boxes, want %d",
							w.Name, bands, fw, k, len(gotBand), len(wantBand))
					}
					for i := range wantBand {
						if gotBand[i] != wantBand[i] {
							t.Fatalf("%s bands=%d fw=%d band %d box %d: %+v vs %+v",
								w.Name, bands, fw, k, i, gotBand[i], wantBand[i])
						}
					}
				}
			}
		}
	}
}
