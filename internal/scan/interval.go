package scan

// ival is a half-open x interval [x0, x1) carrying an id: a net
// union-find element for material intervals, a device element for
// channel intervals. Interval lists are kept sorted by x0 and
// pairwise disjoint (abutting intervals that belong to the same
// electrical region are merged when they are built).
type ival struct {
	x0, x1 int64
	id     int32
}

// xrange is an id-less interval used while computing material algebra.
type xrange struct {
	x0, x1 int64
}

// mergeRanges collapses a sorted-by-x0 list of possibly overlapping or
// abutting ranges into a disjoint sorted list. The input must be
// sorted by x0.
func mergeRanges(in []xrange, out []xrange) []xrange {
	out = out[:0]
	for _, r := range in {
		if r.x1 <= r.x0 {
			continue
		}
		if n := len(out); n > 0 && r.x0 <= out[n-1].x1 {
			if r.x1 > out[n-1].x1 {
				out[n-1].x1 = r.x1
			}
		} else {
			out = append(out, r)
		}
	}
	return out
}

// intersectRanges computes a ∩ b into out. Inputs are disjoint sorted
// lists; the result is disjoint and sorted.
func intersectRanges(a, b, out []xrange) []xrange {
	out = out[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		lo := max64(a[i].x0, b[j].x0)
		hi := min64(a[i].x1, b[j].x1)
		if lo < hi {
			out = append(out, xrange{lo, hi})
		}
		if a[i].x1 < b[j].x1 {
			i++
		} else {
			j++
		}
	}
	return out
}

// subtractRanges computes a − b into out. Inputs are disjoint sorted
// lists.
func subtractRanges(a, b, out []xrange) []xrange {
	out = out[:0]
	j := 0
	for _, r := range a {
		lo := r.x0
		for j < len(b) && b[j].x1 <= lo {
			j++
		}
		k := j
		for k < len(b) && b[k].x0 < r.x1 {
			if b[k].x0 > lo {
				out = append(out, xrange{lo, b[k].x0})
			}
			if b[k].x1 > lo {
				lo = b[k].x1
			}
			if b[k].x1 >= r.x1 {
				break
			}
			k++
		}
		if lo < r.x1 {
			out = append(out, xrange{lo, r.x1})
		}
	}
	return out
}

// overlapLen returns the length of the overlap of [a0,a1) and [b0,b1).
func overlapLen(a0, a1, b0, b1 int64) int64 {
	lo := max64(a0, b0)
	hi := min64(a1, b1)
	if hi > lo {
		return hi - lo
	}
	return 0
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
