package scan

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"ace/internal/build"
	"ace/internal/frontend"
	"ace/internal/guard"
	"ace/internal/tech"
)

// ParallelSweep runs the scanline over the design in K horizontal
// bands concurrently and stitches the results. Bands are cut at
// scanline stop boundaries (box tops), chosen so each band receives
// roughly the same number of boxes; every band runs an ordinary
// sweeper over its clipped geometry with its own builder and scratch,
// sharing no mutable state. Adjacent bands are then joined by matching
// the interval cross-sections at their common boundary — the same
// edge-matching contract HEXT's Compose applies to window interfaces:
//
//   - same-material conducting intervals overlapping with positive
//     length are the same net;
//   - channel intervals meeting channel intervals are the same device;
//   - channel intervals meeting conducting diffusion gain the
//     source/drain contact the band split hid (edge = overlap), in
//     both directions across the seam.
//
// Splitting a strip at a band boundary is harmless everywhere else: a
// strip's cross-section is constant in y, so sub-strip areas sum and
// repeated unions are idempotent. The stitched result is therefore
// netlist-isomorphic to the serial sweep's.
//
// boxes must be sorted by descending top edge (frontend.Stream.Drain
// order); labels ride in opt.Labels as usual. Labels that sit exactly
// on a band boundary are resolved against the two adjacent faces with
// the serial sweep's preference order (strip above first, then the
// strip below; metal, then poly, then diffusion).
func ParallelSweep(boxes []frontend.Box, opt Options, workers int) (*Result, error) {
	if workers > len(boxes)/minBoxesPerBand {
		workers = len(boxes) / minBoxesPerBand
	}
	if workers < 2 {
		return Sweep(&boxSource{boxes: boxes}, opt)
	}
	if !TopsSorted(boxes) {
		scratch := sortTopsStable(boxes, opt.Pool.GetBoxBuf())
		opt.Pool.PutBoxBuf(scratch)
	}

	cuts := chooseCuts(boxes, workers)
	if len(cuts) == 0 {
		return Sweep(&boxSource{boxes: boxes}, opt)
	}

	bandBoxes := partitionBoxes(boxes, cuts, opt.Pool)
	srcs := make([]Source, len(bandBoxes))
	for k := range bandBoxes {
		srcs[k] = &boxSource{boxes: bandBoxes[k]}
	}
	res, err := sweepBands(srcs, cuts, len(boxes), opt)
	// The band-clipped copies are dead once the sweep returns (Results
	// copy what they keep), so their capacity goes back to the pool.
	for _, bb := range bandBoxes {
		opt.Pool.PutBoxBuf(bb)
	}
	return res, err
}

// ParallelSweepSources is ParallelSweep for callers that produce the
// per-band geometry themselves — the streamed ingest path routes boxes
// into bands as the flatten stamps them, so band sweepers consume
// while instantiation is still in flight. srcs must hold one source
// per band (len(cuts)+1), each delivering the band's boxes clipped to
// it exactly as partitionBoxes would (a box belongs to every band it
// intersects; a top exactly on a cut goes to the band below), in
// descending-top order. boxesIn is the design's box count before
// band duplication, reported in Counters.BoxesIn.
func ParallelSweepSources(srcs []Source, cuts []int64, boxesIn int, opt Options) (*Result, error) {
	if len(srcs) != len(cuts)+1 {
		return nil, fmt.Errorf("scan: %d band sources for %d cuts", len(srcs), len(cuts))
	}
	return sweepBands(srcs, cuts, boxesIn, opt)
}

// sweepBands runs one sweeper per band concurrently and stitches the
// results at the seams. Every band goroutine runs under panic
// isolation; the first band failure cancels its siblings so the pool
// unwinds in bounded time instead of finishing bands whose result will
// be discarded.
func sweepBands(srcs []Source, cuts []int64, boxesIn int, opt Options) (res *Result, err error) {
	defer guard.Recover(guard.StageStitch, &err)
	nBands := len(srcs)
	bandLabels, seamLabels := routeLabels(opt.Labels, cuts)

	parent := opt.Ctx
	if parent == nil {
		parent = context.Background()
	}
	bctx, cancel := context.WithCancel(parent)
	defer cancel()

	// Sweep every band concurrently.
	sweepers := make([]*sweeper, nBands)
	errs := make([]error, nBands)
	var wg sync.WaitGroup
	for k := 0; k < nBands; k++ {
		bopt := opt
		bopt.Labels = bandLabels[k]
		bopt.Ctx = bctx
		bopt.stage = guard.StageBand
		s := opt.Pool.getSweeper(srcs[k], bopt)
		if k > 0 {
			s.band.hasTop, s.band.top = true, cuts[k-1]
		}
		if k < nBands-1 {
			s.band.hasBot, s.band.bot = true, cuts[k]
		}
		sweepers[k] = s
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[k] = guard.Run(guard.StageBand, func() error {
				if err := guard.Inject(guard.StageBand); err != nil {
					return err
				}
				return s.run()
			})
			if errs[k] != nil {
				cancel()
			}
		}()
	}
	wg.Wait()
	// Prefer the root cause over secondary cancellations: a band that
	// failed for its own reason outranks bands that merely observed the
	// broadcast cancel.
	var ctxErr error
	for _, e := range errs {
		if e == nil {
			continue
		}
		if errors.Is(e, context.Canceled) && !errors.Is(parent.Err(), context.Canceled) {
			ctxErr = e
			continue
		}
		return nil, e
	}
	if ctxErr != nil {
		return nil, ctxErr
	}
	if err := guard.Inject(guard.StageStitch); err != nil {
		return nil, err
	}

	// Stitch: absorb the band builders in top-to-bottom order, then
	// union and contact across each seam.
	master := opt.Pool.GetBuilder()
	master.KeepGeometry = opt.KeepGeometry
	res = &Result{}
	type offsets struct{ net, dev int32 }
	offs := make([]offsets, nBands)
	for k, s := range sweepers {
		offs[k].net, offs[k].dev = master.Absorb(s.b)
		res.Warnings = append(res.Warnings, s.warnings...)
		res.Counters.Stops += s.counters.Stops
		res.Counters.SumActive += s.counters.SumActive
		res.Counters.LabelMisses += s.counters.LabelMisses
		if s.counters.MaxActive > res.Counters.MaxActive {
			res.Counters.MaxActive = s.counters.MaxActive
		}
		res.Timing.Insert += s.timing.Insert
		res.Timing.Devices += s.timing.Devices
	}
	// BoxesIn counts design boxes, not the band-clipped copies.
	res.Counters.BoxesIn = boxesIn

	for j := 0; j < len(cuts); j++ {
		up, lo := &sweepers[j].botFace, &sweepers[j+1].topFace
		stitchSeam(master, up, lo, offs[j].net, offs[j+1].net, offs[j].dev, offs[j+1].dev)
		for _, lb := range seamLabels[j] {
			if !bindSeamLabel(master, lb, up, offs[j].net, lo, offs[j+1].net) {
				res.Counters.LabelMisses++
				res.Warnings = append(res.Warnings, fmt.Sprintf(
					"label %q at %v matches no conducting geometry", lb.Name, lb.At))
			}
		}
	}

	t0 := time.Now()
	nl, fs := master.Finish()
	res.Timing.Output = time.Since(t0)
	res.Netlist = nl
	res.Counters.GateAnomaly = fs.GateAnomalies
	res.Counters.NetElems = master.NetElems()
	res.Counters.DevElems = master.DevElems()
	res.Warnings = append(res.Warnings, master.Warnings()...)
	// Repool only after the seam loop above: stitching reads the band
	// sweepers' faces, and Finish is done with the master's arenas.
	for _, s := range sweepers {
		opt.Pool.putSweeper(s)
	}
	opt.Pool.PutBuilder(master)
	return res, nil
}

// minBoxesPerBand keeps the per-band fixed costs (goroutine, builder,
// face capture, absorb) from dominating tiny designs.
const minBoxesPerBand = 64

// SortTopDown orders boxes into the canonical sweep order: descending
// top edge, with full-record tie-breaks (layer, then XMin, YMin,
// XMax). Unlike a stable sort keyed on YMax alone, the result is a
// total order independent of the input permutation — two windows with
// the same box multiset sweep identically, which is what lets the
// hierarchical extractor's content-addressed leaf cache share sweeps
// between windows that agree only up to translation.
func SortTopDown(boxes []frontend.Box) {
	sort.Slice(boxes, func(i, j int) bool {
		a, b := &boxes[i], &boxes[j]
		if a.Rect.YMax != b.Rect.YMax {
			return a.Rect.YMax > b.Rect.YMax
		}
		if a.Layer != b.Layer {
			return a.Layer < b.Layer
		}
		if a.Rect.XMin != b.Rect.XMin {
			return a.Rect.XMin < b.Rect.XMin
		}
		if a.Rect.YMin != b.Rect.YMin {
			return a.Rect.YMin < b.Rect.YMin
		}
		return a.Rect.XMax < b.Rect.XMax
	})
}

// NewBoxSource adapts a pre-drained, top-sorted box slice to Source.
func NewBoxSource(boxes []frontend.Box) Source { return &boxSource{boxes: boxes} }

// boxSource adapts a pre-drained, top-sorted box slice to Source.
type boxSource struct {
	boxes []frontend.Box
	i     int
}

func (s *boxSource) NextTop() (int64, bool) {
	if s.i >= len(s.boxes) {
		return 0, false
	}
	return s.boxes[s.i].Rect.YMax, true
}

func (s *boxSource) Next() (frontend.Box, bool) {
	if s.i >= len(s.boxes) {
		return frontend.Box{}, false
	}
	b := s.boxes[s.i]
	s.i++
	return b, true
}

// chooseCuts picks up to workers-1 strictly decreasing y values from
// the box tops (so every cut is a scanline stop) at box-count
// quantiles, balancing work across bands. It must stay in lockstep
// with CutsFromTops (TestCutsFromTopsMatchesChooseCuts pins this):
// both see the same descending-top sequence, so they pick identical
// cuts — which is what lets the streamed ingest path reproduce this
// pipeline's band boundaries without materialising the boxes.
func chooseCuts(boxes []frontend.Box, workers int) []int64 {
	cuts := make([]int64, 0, workers-1)
	for k := 1; k < workers; k++ {
		c := boxes[k*len(boxes)/workers].Rect.YMax
		if c >= boxes[0].Rect.YMax {
			continue // the whole prefix shares one top
		}
		if n := len(cuts); n == 0 || c < cuts[n-1] {
			cuts = append(cuts, c)
		}
	}
	return cuts
}

// CutsFromTops is chooseCuts over a descending-sorted list of box top
// edges. Because the quantile cut depends only on the sorted top
// multiset, the result equals chooseCuts on any box list with the same
// tops.
func CutsFromTops(tops []int64, workers int) []int64 {
	return CutsFromTopsFunc(len(tops), func(i int) int64 { return tops[i] }, workers)
}

// CutsFromTopsFunc is CutsFromTops for callers that can look up the
// top at a given descending rank without materialising the whole top
// list — the tiled on-disk source resolves the handful of quantile
// probes by decoding only the tile rows they land in. at(i) must
// return the i-th largest top (0-based) of an n-box design; the
// result then equals chooseCuts on any box list with the same tops.
func CutsFromTopsFunc(n int, at func(int) int64, workers int) []int64 {
	cuts := make([]int64, 0, workers-1)
	top0 := at(0)
	for k := 1; k < workers; k++ {
		c := at(k * n / workers)
		if c >= top0 {
			continue // the whole prefix shares one top
		}
		if nc := len(cuts); nc == 0 || c < cuts[nc-1] {
			cuts = append(cuts, c)
		}
	}
	return cuts
}

// EffectiveBands returns the band count ParallelSweep would actually
// use for n boxes and the requested worker count: fewer than
// minBoxesPerBand boxes per band is not worth a goroutine, and below
// two bands the serial sweep runs instead.
func EffectiveBands(n, workers int) int {
	if workers > n/minBoxesPerBand {
		workers = n / minBoxesPerBand
	}
	return workers
}

// partitionBoxes assigns each box to every band it intersects, clipped
// to the band. Band k covers the half-open interval (lo_k, hi_k] with
// hi_0 = +inf and lo_last = -inf; a box whose top sits exactly on a
// cut belongs to the band below, mirroring the serial sweep where the
// strip below a stop carries the incoming geometry.
func partitionBoxes(boxes []frontend.Box, cuts []int64, pool *Pool) [][]frontend.Box {
	nBands := len(cuts) + 1
	out := make([][]frontend.Box, nBands)
	for i := range out {
		if b := pool.GetBoxBuf(); b != nil {
			out[i] = b
			continue
		}
		// Pre-size: most boxes land in exactly one band.
		out[i] = make([]frontend.Box, 0, len(boxes)/nBands+1)
	}
	for _, b := range boxes {
		y0, y1 := b.Rect.YMin, b.Rect.YMax
		// First band whose lower boundary is below the box top.
		k := 0
		for k < len(cuts) && y1 <= cuts[k] {
			k++
		}
		for ; k < nBands; k++ {
			hiOK := k == 0 || y0 < cuts[k-1]
			if !hiOK {
				break
			}
			r := b.Rect
			if k > 0 && r.YMax > cuts[k-1] {
				r.YMax = cuts[k-1]
			}
			if k < len(cuts) && r.YMin < cuts[k] {
				r.YMin = cuts[k]
			}
			out[k] = append(out[k], frontend.Box{Layer: b.Layer, Rect: r})
			if k == len(cuts) || y0 >= cuts[k] {
				break
			}
		}
	}
	return out
}

// routeLabels sends each label to the band that strictly contains its
// y, except labels sitting exactly on a cut: the serial sweep gives
// those two chances (the strip above, then the strip below), which
// spans two bands — the stitcher resolves them against the seam faces.
func routeLabels(labels []frontend.Label, cuts []int64) (byBand [][]frontend.Label, bySeam [][]frontend.Label) {
	nBands := len(cuts) + 1
	byBand = make([][]frontend.Label, nBands)
	bySeam = make([][]frontend.Label, len(cuts))
	for _, lb := range labels {
		k, seam := 0, -1
		for j, c := range cuts {
			if lb.At.Y == c {
				seam = j
				break
			}
			if lb.At.Y > c {
				break
			}
			k = j + 1
		}
		if seam >= 0 {
			bySeam[seam] = append(bySeam[seam], lb)
		} else {
			byBand[k] = append(byBand[k], lb)
		}
	}
	return byBand, bySeam
}

// stitchSeam applies the seam contract between the bottom face of the
// upper band and the top face of the lower band.
func stitchSeam(b *build.Builder, up, lo *face, upNet, loNet, upDev, loDev int32) {
	join := func(a, c []ival, f func(ai, ci ival, ovl int64)) {
		i, j := 0, 0
		for i < len(a) && j < len(c) {
			lov := max64(a[i].x0, c[j].x0)
			hov := min64(a[i].x1, c[j].x1)
			if hov > lov {
				f(a[i], c[j], hov-lov)
			}
			if a[i].x1 < c[j].x1 {
				i++
			} else {
				j++
			}
		}
	}
	unionNets := func(ai, ci ival, _ int64) {
		b.UnionNets(ai.id+upNet, ci.id+loNet)
	}
	join(up.poly, lo.poly, unionNets)
	join(up.diff, lo.diff, unionNets)
	join(up.metal, lo.metal, unionNets)
	join(up.chans, lo.chans, func(ai, ci ival, _ int64) {
		b.UnionDevs(ai.id+upDev, ci.id+loDev)
	})
	// Source/drain contacts hidden by the split: channel on one side of
	// the seam over conducting diffusion on the other.
	join(up.chans, lo.diff, func(ai, ci ival, ovl int64) {
		b.AddTerm(ai.id+upDev, ci.id+loNet, ovl)
	})
	join(up.diff, lo.chans, func(ai, ci ival, ovl int64) {
		b.AddTerm(ci.id+loDev, ai.id+upNet, ovl)
	})
}

// bindSeamLabel resolves a label sitting exactly on a band boundary,
// replicating the serial attachLabels order: the strip above first,
// then the strip below; within a strip metal, then poly, then
// diffusion (or only the label's own layer when it names one).
func bindSeamLabel(b *build.Builder, lb frontend.Label, up *face, upNet int32, lo *face, loNet int32) bool {
	tryFace := func(f *face, off int32) bool {
		try := func(list []ival) bool {
			for _, iv := range list {
				if iv.x0 <= lb.At.X && lb.At.X <= iv.x1 {
					b.NameNet(iv.id+off, lb.Name)
					return true
				}
			}
			return false
		}
		if lb.HasLayer {
			switch lb.Layer {
			case tech.Metal:
				return try(f.metal)
			case tech.Poly:
				return try(f.poly)
			case tech.Diff:
				return try(f.diff)
			default:
				return false
			}
		}
		return try(f.metal) || try(f.poly) || try(f.diff)
	}
	return tryFace(up, upNet) || tryFace(lo, loNet)
}
