package scan

import (
	"testing"

	"ace/internal/frontend"
	"ace/internal/geom"
	"ace/internal/tech"
)

// parallelNoFallback drives ParallelSweep's banded path directly with
// forced cuts by bypassing the small-design fallback: it pads the
// design with far-away dummy metal so the box count clears
// minBoxesPerBand, then checks the interesting geometry.
func padBoxes(boxes []frontend.Box) []frontend.Box {
	// Dummy metal squares well above everything, one per needed box,
	// electrically isolated from the design under test.
	out := append([]frontend.Box(nil), boxes...)
	for i := 0; len(out) < 4*minBoxesPerBand; i++ {
		x := int64(100000 + 10*i)
		out = append(out, box(tech.Metal, x, 90000, x+4, 90004))
	}
	return out
}

func sweepBoth(t *testing.T, opt Options, boxes ...frontend.Box) (serial, par *Result) {
	t.Helper()
	padded := padBoxes(boxes)
	serial, err := Sweep(newSource(append([]frontend.Box(nil), padded...)...), opt)
	if err != nil {
		t.Fatal(err)
	}
	src := newSource(padded...) // sorts descending by top
	par, err = ParallelSweep(src.boxes, opt, 4)
	if err != nil {
		t.Fatal(err)
	}
	return serial, par
}

// TestParallelSplitTransistor: a tall transistor whose channel crosses
// band cuts must come out as one device with the right terminals, area
// and size.
func TestParallelSplitTransistor(t *testing.T) {
	// Vertical poly stripe over a tall diff stripe: channel
	// [0,100]x[0,4000], diff continuing above and below.
	boxes := []frontend.Box{
		box(tech.Diff, 0, -200, 100, 4200),
		box(tech.Poly, -50, 0, 150, 4000),
	}
	serial, par := sweepBoth(t, Options{}, boxes...)
	for _, res := range []*Result{serial, par} {
		var devs []int
		for i, d := range res.Netlist.Devices {
			if d.Area > 100*100 { // skip nothing; dummies have no devices
				devs = append(devs, i)
			}
		}
		if len(devs) != 1 {
			t.Fatalf("devices = %d, want 1", len(devs))
		}
		d := res.Netlist.Devices[devs[0]]
		if d.Area != 100*4000 {
			t.Errorf("area = %d, want %d", d.Area, 100*4000)
		}
		if d.Source == d.Drain {
			t.Error("source == drain for a pass transistor")
		}
		if d.Width != 100 || d.Length != 4000 {
			t.Errorf("W=%d L=%d, want W=100 L=4000", d.Width, d.Length)
		}
		if len(d.Terminals) != 2 {
			t.Errorf("terminals = %+v", d.Terminals)
		}
	}
	if len(par.Netlist.Devices) != len(serial.Netlist.Devices) ||
		len(par.Netlist.Nets) != len(serial.Netlist.Nets) {
		t.Errorf("parallel %d devs/%d nets vs serial %d/%d",
			len(par.Netlist.Devices), len(par.Netlist.Nets),
			len(serial.Netlist.Devices), len(serial.Netlist.Nets))
	}
}

// TestParallelSeamLabel: a label that lands exactly on a band cut must
// still bind, exactly once, to the net below/above it.
func TestParallelSeamLabel(t *testing.T) {
	// One tall metal bar; whatever cuts are chosen, the label at its
	// exact middle stop can only match this net.
	bar := box(tech.Metal, 0, 0, 100, 5000)
	// A second bar forcing a stop (and hence a possible cut) at 2500.
	probe := box(tech.Metal, 300, 1000, 400, 2500)
	opt := Options{Labels: []frontend.Label{{Name: "MID", At: geom.Pt(50, 2500)}}}
	serial, par := sweepBoth(t, opt, bar, probe)
	for which, res := range map[string]*Result{"serial": serial, "parallel": par} {
		i, ok := res.Netlist.NetByName("MID")
		if !ok {
			t.Fatalf("%s: label MID lost (warnings: %v)", which, res.Warnings)
		}
		if got := res.Netlist.Nets[i].Names; len(got) != 1 {
			t.Errorf("%s: names = %v", which, got)
		}
		if res.Counters.LabelMisses != 0 {
			t.Errorf("%s: label misses = %d", which, res.Counters.LabelMisses)
		}
	}
}

// TestChooseCuts: cuts are strictly decreasing box tops and never the
// global top.
func TestChooseCuts(t *testing.T) {
	var boxes []frontend.Box
	for i := 0; i < 100; i++ {
		y := int64(1000 - 10*i)
		boxes = append(boxes, box(tech.Metal, 0, y-5, 10, y))
	}
	cuts := chooseCuts(boxes, 4)
	if len(cuts) == 0 {
		t.Fatal("no cuts")
	}
	prev := boxes[0].Rect.YMax
	for _, c := range cuts {
		if c >= prev {
			t.Fatalf("cuts not strictly decreasing: %v", cuts)
		}
		prev = c
	}
}

// TestPartitionBoxes: every band's boxes stay inside the band, spanning
// boxes are clipped into each band they cross, and total area is
// preserved.
func TestPartitionBoxes(t *testing.T) {
	boxes := []frontend.Box{
		box(tech.Metal, 0, -100, 10, 100), // spans both cuts
		box(tech.Poly, 0, 40, 10, 90),     // above both
		box(tech.Diff, 0, -90, 10, -40),   // below both
		box(tech.Metal, 0, 0, 10, 50),     // top at cut 50 → below it
	}
	cuts := []int64{50, 0}
	bands := partitionBoxes(boxes, cuts, nil)
	if len(bands) != 3 {
		t.Fatalf("bands = %d", len(bands))
	}
	var area int64
	for k, bb := range bands {
		hi, lo := int64(1<<62), int64(-1<<62)
		if k > 0 {
			hi = cuts[k-1]
		}
		if k < len(cuts) {
			lo = cuts[k]
		}
		for _, b := range bb {
			if b.Rect.YMax > hi || b.Rect.YMin < lo {
				t.Errorf("band %d: box %v outside (%d,%d]", k, b.Rect, lo, hi)
			}
			if b.Rect.YMax <= b.Rect.YMin {
				t.Errorf("band %d: degenerate %v", k, b.Rect)
			}
			area += (b.Rect.XMax - b.Rect.XMin) * (b.Rect.YMax - b.Rect.YMin)
		}
	}
	var want int64
	for _, b := range boxes {
		want += (b.Rect.XMax - b.Rect.XMin) * (b.Rect.YMax - b.Rect.YMin)
	}
	if area != want {
		t.Errorf("clipped area %d, want %d", area, want)
	}
}

// TestRouteLabels: strict containment goes to a band, exact cut hits go
// to the seam.
func TestRouteLabels(t *testing.T) {
	cuts := []int64{100, 0}
	labels := []frontend.Label{
		{Name: "top", At: geom.Pt(0, 500)},
		{Name: "seam0", At: geom.Pt(0, 100)},
		{Name: "mid", At: geom.Pt(0, 50)},
		{Name: "seam1", At: geom.Pt(0, 0)},
		{Name: "bot", At: geom.Pt(0, -50)},
	}
	byBand, bySeam := routeLabels(labels, cuts)
	got := func(ls []frontend.Label) string {
		if len(ls) != 1 {
			return ""
		}
		return ls[0].Name
	}
	if got(byBand[0]) != "top" || got(byBand[1]) != "mid" || got(byBand[2]) != "bot" {
		t.Errorf("band routing wrong: %v", byBand)
	}
	if got(bySeam[0]) != "seam0" || got(bySeam[1]) != "seam1" {
		t.Errorf("seam routing wrong: %v", bySeam)
	}
}
