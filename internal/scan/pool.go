package scan

import (
	"sync"

	"ace/internal/build"
	"ace/internal/frontend"
)

// Pool is a free list of sweep state — whole sweepers (with their
// builders, active lists and interval scratch), bare builders, and box
// buffers — owned by one long-lived engine. Threading a Pool through
// Options.Pool makes repeated sweeps of a same-shaped workload settle
// into zero steady-state allocations.
//
// Pools are deliberately per-engine rather than a global sync.Pool:
// concurrent engines never contend or exchange memory, the pooled
// capacity is bounded by the engine's own peak concurrency, and
// dropping the engine drops the memory. All methods are safe for
// concurrent use and on a nil *Pool (which degrades to plain
// allocation), so call sites need no guards.
type Pool struct {
	mu       sync.Mutex
	sweepers []*sweeper
	builders []*build.Builder
	boxBufs  [][]frontend.Box
}

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// getSweeper returns a sweeper bound to src and opt: a reset pooled
// one when available, a fresh one otherwise.
func (p *Pool) getSweeper(src Source, opt Options) *sweeper {
	if p == nil {
		return newSweeper(src, opt)
	}
	p.mu.Lock()
	var s *sweeper
	if n := len(p.sweepers); n > 0 {
		s = p.sweepers[n-1]
		p.sweepers[n-1] = nil
		p.sweepers = p.sweepers[:n-1]
	}
	p.mu.Unlock()
	if s == nil {
		return newSweeper(src, opt)
	}
	s.reset(src, opt)
	return s
}

// putSweeper returns a sweeper to the pool. Only sweepers whose run
// completed cleanly come back: an abandoned (failed or panicked)
// sweeper is simply dropped, which keeps the reset contract trivial.
func (p *Pool) putSweeper(s *sweeper) {
	if p == nil || s == nil {
		return
	}
	s.src = nil
	s.opt = Options{}
	p.mu.Lock()
	p.sweepers = append(p.sweepers, s)
	p.mu.Unlock()
}

// GetBuilder returns a reset builder (KeepGeometry off).
func (p *Pool) GetBuilder() *build.Builder {
	if p == nil {
		return &build.Builder{}
	}
	p.mu.Lock()
	var b *build.Builder
	if n := len(p.builders); n > 0 {
		b = p.builders[n-1]
		p.builders[n-1] = nil
		p.builders = p.builders[:n-1]
	}
	p.mu.Unlock()
	if b == nil {
		b = &build.Builder{}
	}
	return b
}

// PutBuilder resets a builder and returns it to the pool. The caller
// must be done with everything the builder handed out except Finish
// results, which own their memory.
func (p *Pool) PutBuilder(b *build.Builder) {
	if p == nil || b == nil {
		return
	}
	b.Reset()
	p.mu.Lock()
	p.builders = append(p.builders, b)
	p.mu.Unlock()
}

// GetBoxBuf returns an empty box buffer with whatever capacity the
// pool has lying around (possibly none).
func (p *Pool) GetBoxBuf() []frontend.Box {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.boxBufs); n > 0 {
		b := p.boxBufs[n-1]
		p.boxBufs[n-1] = nil
		p.boxBufs = p.boxBufs[:n-1]
		return b[:0]
	}
	return nil
}

// PutBoxBuf returns a box buffer's capacity to the pool.
func (p *Pool) PutBoxBuf(b []frontend.Box) {
	if p == nil || cap(b) == 0 {
		return
	}
	p.mu.Lock()
	p.boxBufs = append(p.boxBufs, b[:0])
	p.mu.Unlock()
}

// reset rebinds a pooled sweeper to a new source and options, keeping
// the capacity of every list and scratch buffer. Warnings are dropped
// rather than truncated: the previous Result may alias their backing.
func (s *sweeper) reset(src Source, opt Options) {
	s.src = src
	s.opt = opt
	if s.b == nil {
		s.b = &build.Builder{}
	} else {
		s.b.Reset()
	}
	s.b.KeepGeometry = opt.KeepGeometry
	for l := range s.active {
		s.active[l] = s.active[l][:0]
		s.newGeom[l] = s.newGeom[l][:0]
	}
	s.merged = s.merged[:0]
	s.bottoms.v = s.bottoms.v[:0]
	s.prevPoly, s.prevDiff, s.prevMetal = s.prevPoly[:0], s.prevDiff[:0], s.prevMetal[:0]
	s.prevChan = s.prevChan[:0]
	s.rawPoly, s.rawDiff, s.rawMetal = s.rawPoly[:0], s.rawDiff[:0], s.rawMetal[:0]
	s.rawBur, s.rawImpl, s.rawCut = s.rawBur[:0], s.rawImpl[:0], s.rawCut[:0]
	s.chanR, s.diffCondR, s.burConR, s.tmpR = s.chanR[:0], s.diffCondR[:0], s.burConR[:0], s.tmpR[:0]
	s.curPoly, s.curDiff, s.curMetal = s.curPoly[:0], s.curDiff[:0], s.curMetal[:0]
	s.curChan = s.curChan[:0]
	s.labels = append(s.labels[:0], opt.Labels...)
	sortLabelsByY(s.labels)
	s.nextLb = 0
	s.band = bandLimits{}
	s.topFace = face{}
	s.botFace = face{}
	s.counters = Counters{}
	s.timing = Timing{}
	s.warnings = nil
}

// TopsSorted reports whether boxes are already in non-increasing top
// order — the precondition every sweep entry point shares. The check
// is hoisted here so the parallel sweep and the tiled path agree on
// it and neither pays a sort (or its comparator closure) when the
// front end already delivered sweep order.
func TopsSorted(boxes []frontend.Box) bool {
	for i := 1; i < len(boxes); i++ {
		if boxes[i].Rect.YMax > boxes[i-1].Rect.YMax {
			return false
		}
	}
	return true
}

// sortTopsStable stably sorts boxes by non-increasing top edge — the
// same order sort.SliceStable with a YMax comparator produces — using
// an explicit bottom-up merge over caller-provided scratch instead of
// a closure-driven in-place stable sort. The (possibly grown) scratch
// is returned for reuse.
func sortTopsStable(boxes []frontend.Box, scratch []frontend.Box) []frontend.Box {
	n := len(boxes)
	if n < 2 {
		return scratch
	}
	if cap(scratch) < n {
		scratch = make([]frontend.Box, n)
	}
	src, dst := boxes, scratch[:n]
	for width := 1; width < n; width *= 2 {
		for lo := 0; lo < n; lo += 2 * width {
			mid, hi := lo+width, lo+2*width
			if mid > n {
				mid = n
			}
			if hi > n {
				hi = n
			}
			i, j, k := lo, mid, lo
			for i < mid && j < hi {
				// Left wins ties: that is what makes the merge stable.
				if src[i].Rect.YMax >= src[j].Rect.YMax {
					dst[k] = src[i]
					i++
				} else {
					dst[k] = src[j]
					j++
				}
				k++
			}
			copy(dst[k:], src[i:mid])
			copy(dst[k+(mid-i):], src[j:hi])
		}
		src, dst = dst, src
	}
	if &src[0] != &boxes[0] {
		copy(boxes, src)
	}
	return scratch[:0]
}
