package scan

import (
	"math/rand"
	"testing"

	"ace/internal/frontend"
	"ace/internal/geom"
	"ace/internal/netlist"
	"ace/internal/tech"
)

func randomBoxes(rng *rand.Rand, n int) []frontend.Box {
	layers := []tech.Layer{tech.Diff, tech.Poly, tech.Metal, tech.Cut, tech.Buried, tech.Implant}
	boxes := make([]frontend.Box, n)
	for i := range boxes {
		l := layers[rng.Intn(len(layers))]
		x := int64(rng.Intn(600))
		y := int64(rng.Intn(600))
		boxes[i] = frontend.Box{Layer: l,
			Rect: geom.R(x, y, x+int64(10+rng.Intn(250)), y+int64(10+rng.Intn(250)))}
	}
	return boxes
}

func mustSweep(t *testing.T, boxes []frontend.Box, opt Options) *netlist.Netlist {
	t.Helper()
	res, err := Sweep(newSource(boxes...), opt)
	if err != nil {
		t.Fatal(err)
	}
	return res.Netlist
}

// TestSplitInvariance: splitting any box into two exactly-abutting
// halves must never change the extracted circuit. This is the
// invariant underlying both the front end's manhattanisation and
// HEXT's window clipping.
func TestSplitInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		boxes := randomBoxes(rng, 4+rng.Intn(16))
		base := mustSweep(t, boxes, Options{})

		split := make([]frontend.Box, 0, 2*len(boxes))
		for _, b := range boxes {
			r := b.Rect
			if rng.Intn(2) == 0 && r.W() >= 2 {
				mid := r.XMin + 1 + int64(rng.Intn(int(r.W()-1)))
				split = append(split,
					frontend.Box{Layer: b.Layer, Rect: geom.R(r.XMin, r.YMin, mid, r.YMax)},
					frontend.Box{Layer: b.Layer, Rect: geom.R(mid, r.YMin, r.XMax, r.YMax)})
			} else if r.H() >= 2 {
				mid := r.YMin + 1 + int64(rng.Intn(int(r.H()-1)))
				split = append(split,
					frontend.Box{Layer: b.Layer, Rect: geom.R(r.XMin, r.YMin, r.XMax, mid)},
					frontend.Box{Layer: b.Layer, Rect: geom.R(r.XMin, mid, r.XMax, r.YMax)})
			} else {
				split = append(split, b)
			}
		}
		after := mustSweep(t, split, Options{})
		if eq, why := netlist.Equivalent(base, after); !eq {
			t.Fatalf("trial %d: splitting changed the circuit: %s\nboxes: %v",
				trial, why, boxes)
		}
	}
}

// TestDuplicateInvariance: duplicating boxes (fully overlapping
// geometry) must not change the circuit.
func TestDuplicateInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 30; trial++ {
		boxes := randomBoxes(rng, 4+rng.Intn(12))
		base := mustSweep(t, boxes, Options{})
		dup := append(append([]frontend.Box{}, boxes...), boxes...)
		after := mustSweep(t, dup, Options{})
		if eq, why := netlist.Equivalent(base, after); !eq {
			t.Fatalf("trial %d: duplication changed the circuit: %s", trial, why)
		}
	}
}

// TestTranslationInvariance: shifting the whole design must yield an
// isomorphic circuit.
func TestTranslationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 30; trial++ {
		boxes := randomBoxes(rng, 4+rng.Intn(12))
		base := mustSweep(t, boxes, Options{})
		d := geom.Pt(int64(rng.Intn(2000)-1000), int64(rng.Intn(2000)-1000))
		moved := make([]frontend.Box, len(boxes))
		for i, b := range boxes {
			moved[i] = frontend.Box{Layer: b.Layer, Rect: b.Rect.Translate(d)}
		}
		after := mustSweep(t, moved, Options{})
		if eq, why := netlist.Equivalent(base, after); !eq {
			t.Fatalf("trial %d: translation changed the circuit: %s", trial, why)
		}
	}
}

// TestMirrorInvariance: mirroring the design in x must yield an
// isomorphic circuit (the scanline direction must not matter).
func TestMirrorInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	for trial := 0; trial < 30; trial++ {
		boxes := randomBoxes(rng, 4+rng.Intn(12))
		base := mustSweep(t, boxes, Options{})
		mx := geom.MirrorX()
		mirrored := make([]frontend.Box, len(boxes))
		for i, b := range boxes {
			mirrored[i] = frontend.Box{Layer: b.Layer, Rect: mx.ApplyRect(b.Rect)}
		}
		after := mustSweep(t, mirrored, Options{})
		if eq, why := netlist.Equivalent(base, after); !eq {
			t.Fatalf("trial %d: mirroring changed the circuit: %s", trial, why)
		}
	}
}

// TestRotationInvariance: rotating the design 90° must yield an
// isomorphic circuit — a strong test because vertical and horizontal
// S/D contact accounting use entirely different code paths.
func TestRotationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	r90, _ := geom.Rotate(0, 1)
	for trial := 0; trial < 40; trial++ {
		boxes := randomBoxes(rng, 4+rng.Intn(12))
		base := mustSweep(t, boxes, Options{})
		rot := make([]frontend.Box, len(boxes))
		for i, b := range boxes {
			rot[i] = frontend.Box{Layer: b.Layer, Rect: r90.ApplyRect(b.Rect)}
		}
		after := mustSweep(t, rot, Options{})
		if eq, why := netlist.Equivalent(base, after); !eq {
			t.Fatalf("trial %d: rotation changed the circuit: %s\nboxes: %v",
				trial, why, boxes)
		}
	}
}

// TestInsertionSortEquivalence: the ablation mode (the paper's
// original insertion sort) must produce identical results.
func TestInsertionSortEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	for trial := 0; trial < 20; trial++ {
		boxes := randomBoxes(rng, 4+rng.Intn(20))
		a := mustSweep(t, boxes, Options{})
		b := mustSweep(t, boxes, Options{InsertionSort: true})
		if eq, why := netlist.Equivalent(a, b); !eq {
			t.Fatalf("trial %d: insertion-sort mode differs: %s", trial, why)
		}
	}
}

// TestSameTopOrderInvariance: boxes sharing a top edge may arrive in
// any order; the result must not depend on it.
func TestSameTopOrderInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(12)
		boxes := randomBoxes(rng, n)
		// Force groups of boxes to share tops.
		for i := range boxes {
			r := &boxes[i].Rect
			top := (r.YMax / 100) * 100
			if top <= r.YMin {
				top = r.YMin + 100
			}
			r.YMax = top
		}
		base := mustSweep(t, boxes, Options{})
		rng.Shuffle(len(boxes), func(i, j int) { boxes[i], boxes[j] = boxes[j], boxes[i] })
		after := mustSweep(t, boxes, Options{})
		if eq, why := netlist.Equivalent(base, after); !eq {
			t.Fatalf("trial %d: same-top order changed the circuit: %s", trial, why)
		}
	}
}
