// Package scan implements ACE's back end: the edge-based scanline
// sweep that finds connectivity and devices (ACE §3).
//
// A scanline moves from the top of the chip to the bottom, pausing
// only where a box's top or bottom edge occurs. The region between
// two consecutive stops is a strip in which the cross-section of every
// layer is constant. At each stop the sweep:
//
//  1. fetches the boxes whose top coincides with the scanline and
//     inserts them into per-layer active lists (paper steps 2.a, 2.b);
//  2. computes the strip's material cross-sections by interval algebra
//     on the four interacting layers — channel = diff ∩ poly − buried —
//     plus metal, cuts and implant;
//  3. carries net identity from strip to strip through a union-find:
//     same-material intervals that share boundary of positive length
//     are the same net; contact cuts and buried contacts union nets
//     across layers; channel intervals accumulate into devices
//     (paper step 2.c);
//  4. advances to the larger of the next incoming top and the highest
//     active bottom (paper step 2.d).
//
// Nothing is output until the sweep completes, because two nets that
// look distinct can merge lower down (ACE §4, space complexity).
package scan

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"time"

	"ace/internal/build"
	"ace/internal/frontend"
	"ace/internal/geom"
	"ace/internal/guard"
	"ace/internal/netlist"
	"ace/internal/tech"
)

// Source supplies boxes sorted by descending top edge; it is
// implemented by *frontend.Stream.
type Source interface {
	NextTop() (int64, bool)
	Next() (frontend.Box, bool)
}

// Options configures a sweep.
type Options struct {
	// KeepGeometry records the constituent rectangles of every net and
	// device (the extractor's "output the geometry" user option; also
	// what HEXT's interface computation consumes).
	KeepGeometry bool

	// Labels are the design's instantiated name labels.
	Labels []frontend.Label

	// InsertionSort switches step 2.a back to the paper's original
	// per-box insertion sort instead of the batched merge (the
	// bin-sort refinement §4 describes). Only the ablation benchmark
	// uses it: with insertion sort the N^{3/2} term is measurable on
	// large chips, exactly as the analysis predicts.
	InsertionSort bool

	// Ctx, when non-nil, is checked at every scanline stop so a
	// cancelled or timed-out extraction unwinds within one stop's work.
	Ctx context.Context

	// Limits bounds the sweep: MaxBoxes caps boxes received from the
	// front end, MaxMemBytes caps the estimated active-list footprint.
	Limits guard.Limits

	// Pool, when non-nil, supplies and reclaims sweepers, builders and
	// sort scratch so repeated sweeps stop allocating. Results are
	// byte-identical with and without it.
	Pool *Pool

	// stage attributes this sweep's errors and fault-injection points;
	// the parallel sweep sets it per band. Empty means guard.StageSweep.
	stage string
}

func (o *Options) stageName() string {
	if o.stage != "" {
		return o.stage
	}
	return guard.StageSweep
}

// Counters reports the work the sweep performed; the complexity
// experiments (E6) read these.
type Counters struct {
	Stops       int   // scanline stops (expected O(√N))
	BoxesIn     int   // boxes received from the front end
	MaxActive   int   // peak total active-list length (expected O(√N))
	SumActive   int64 // sum of active-list lengths over stops
	NetElems    int   // union-find elements allocated for nets
	DevElems    int   // union-find elements allocated for devices
	GateAnomaly int   // devices that saw more than one gate net
	LabelMisses int   // labels that matched no conducting geometry
}

// Timing breaks down back-end time for the phase-distribution
// experiment (E4).
type Timing struct {
	Insert  time.Duration // building newGeometry + active lists
	Devices time.Duration // interval algebra, connectivity, devices
	Output  time.Duration // netlist finalisation
}

// Result is a completed sweep.
type Result struct {
	Netlist  *netlist.Netlist
	Counters Counters
	Timing   Timing
	Warnings []string
}

// Sweep runs the scanline over the source and returns the extracted
// netlist. It is panic-isolated: a panic anywhere in the sweep (or in
// the Source it pulls from) surfaces as a *guard.PanicError instead of
// crashing the caller.
func Sweep(src Source, opt Options) (res *Result, err error) {
	defer guard.Recover(opt.stageName(), &err)
	if err := guard.Inject(opt.stageName()); err != nil {
		return nil, err
	}
	s := opt.Pool.getSweeper(src, opt)
	if err := s.run(); err != nil {
		return nil, err
	}
	t0 := time.Now()
	nl, fs := s.b.Finish()
	s.timing.Output = time.Since(t0)
	s.counters.GateAnomaly = fs.GateAnomalies
	s.counters.NetElems = s.b.NetElems()
	s.counters.DevElems = s.b.DevElems()
	res = &Result{
		Netlist:  nl,
		Counters: s.counters,
		Timing:   s.timing,
		Warnings: append(s.warnings, s.b.Warnings()...),
	}
	opt.Pool.putSweeper(s)
	return res, nil
}

// abox is one active box: geometry currently intersecting the
// scanline.
type abox struct {
	x0, x1 int64
	bottom int64
}

type sweeper struct {
	src Source
	opt Options

	b *build.Builder

	active  [tech.NumLayers][]abox
	newGeom [tech.NumLayers][]abox // incoming boxes at the current stop
	merged  []abox                 // scratch for merging newGeom into active
	bottoms maxHeap                // bottoms of active boxes

	// Previous strip cross-sections.
	prevPoly, prevDiff, prevMetal []ival
	prevChan                      []ival

	// Scratch buffers reused every strip.
	rawPoly, rawDiff, rawMetal      []xrange
	rawBur, rawImpl, rawCut         []xrange
	chanR, diffCondR, burConR, tmpR []xrange
	curPoly, curDiff, curMetal      []ival
	curChan                         []ival

	labels []frontend.Label // sorted by descending y
	nextLb int

	// Band limits for the parallel sweep: when set, the sweeper
	// snapshots the strip cross-section touching the band's top and
	// bottom boundaries so the stitcher can match adjacent bands.
	band    bandLimits
	topFace face
	botFace face

	counters Counters
	timing   Timing
	warnings []string
	warnBuf  []byte // scratch for warnLabelMiss; retained across pooled reuse
}

// bandLimits bounds a sweeper to one horizontal band of the design.
type bandLimits struct {
	hasTop, hasBot bool
	top, bot       int64
}

// face is the cross-section of the strip that touches a band boundary:
// the conducting intervals and channel intervals, with their element
// ids in the band builder's id space. It is the band analogue of
// HEXT's window interface (the edges Compose matches).
type face struct {
	poly, diff, metal []ival
	chans             []ival
}

func newSweeper(src Source, opt Options) *sweeper {
	s := &sweeper{
		src: src,
		opt: opt,
		b:   &build.Builder{KeepGeometry: opt.KeepGeometry},
	}
	s.labels = append(s.labels, opt.Labels...)
	sortLabelsByY(s.labels)
	return s
}

// sortLabelsByY stable-sorts labels by descending Y. Shifting only on
// strictly-greater keys keeps equal-Y labels in input order, so the
// sweep binds labels — and emits miss warnings — in exactly the order
// sort.SliceStable produced, without that call's per-run closure and
// reflect-based swapper allocations.
func sortLabelsByY(lbs []frontend.Label) {
	for i := 1; i < len(lbs); i++ {
		lb := lbs[i]
		j := i - 1
		for j >= 0 && lbs[j].At.Y < lb.At.Y {
			lbs[j+1] = lbs[j]
			j--
		}
		lbs[j+1] = lb
	}
}

// warnLabelMiss records "label <quoted name> at (X,Y) <why>". The
// message is assembled with strconv appends into per-sweeper scratch
// so a warm sweep pays exactly one allocation per warning — the string
// handed to the caller — rather than the nested fmt.Sprintf calls
// (%q, %v via Point.String) the obvious formulation costs.
func (s *sweeper) warnLabelMiss(lb frontend.Label, why string) {
	b := append(s.warnBuf[:0], "label "...)
	b = strconv.AppendQuote(b, lb.Name)
	b = append(b, " at ("...)
	b = strconv.AppendInt(b, lb.At.X, 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, lb.At.Y, 10)
	b = append(b, ") "...)
	b = append(b, why...)
	s.warnBuf = b
	s.warnings = append(s.warnings, string(b))
}

func (s *sweeper) run() error {
	cur, ok := s.src.NextTop()
	if !ok {
		return nil // empty design: empty netlist
	}
	for {
		t0 := time.Now()
		// Paper step 2.a: fetch all geometry whose top coincides with
		// the scanline and sort it by x into per-layer newGeometry
		// lists.
		for {
			top, ok := s.src.NextTop()
			if !ok || top != cur {
				break
			}
			b, _ := s.src.Next()
			s.counters.BoxesIn++
			nb := abox{x0: b.Rect.XMin, x1: b.Rect.XMax, bottom: b.Rect.YMin}
			if s.opt.InsertionSort {
				s.insertOne(b.Layer, nb)
			} else {
				s.spliceNew(b.Layer, nb)
			}
			s.bottoms.push(b.Rect.YMin)
		}
		// Paper step 2.b: merge each newGeometry list into its layer's
		// active list.
		for l := range s.newGeom {
			if len(s.newGeom[l]) > 0 {
				s.mergeNew(tech.Layer(l))
			}
		}

		// Paper step 2.d: next stop.
		next, haveNext := int64(0), false
		if top, ok := s.src.NextTop(); ok {
			next, haveNext = top, true
		}
		if bot, ok := s.bottoms.max(); ok {
			if bot >= cur {
				return fmt.Errorf("scan: internal error: active bottom %d not below scanline %d", bot, cur)
			}
			if !haveNext || bot > next {
				next, haveNext = bot, true
			}
		}
		s.timing.Insert += time.Since(t0)
		if !haveNext {
			break // nothing active and nothing incoming: done
		}

		// Paper step 2.c: compute devices and connectivity for the
		// strip [next, cur].
		t1 := time.Now()
		s.strip(cur, next)
		s.timing.Devices += time.Since(t1)

		s.counters.Stops++
		act := 0
		for l := range s.active {
			act += len(s.active[l])
		}
		s.counters.SumActive += int64(act)
		if act > s.counters.MaxActive {
			s.counters.MaxActive = act
		}

		// Hardening checkpoint, once per stop: cooperative cancellation
		// bounds unwind latency to one strip's work; the box budget caps
		// front-end input; the memory budget uses the active-list
		// footprint — the sweep's dominant live allocation.
		stage := s.opt.stageName()
		if err := guard.Ctx(s.opt.Ctx, stage); err != nil {
			return err
		}
		if err := guard.Inject(stage); err != nil {
			return err
		}
		if err := s.opt.Limits.CheckBoxes(stage, int64(s.counters.BoxesIn)); err != nil {
			return err
		}
		if err := s.opt.Limits.CheckMem(stage, int64(act)*guard.BoxBytes); err != nil {
			return err
		}

		// Exit geometry whose bottom coincides with the new scanline.
		t2 := time.Now()
		s.exit(next)
		s.timing.Insert += time.Since(t2)
		cur = next
	}
	// Any labels below the last geometry can never match.
	for s.nextLb < len(s.labels) {
		s.counters.LabelMisses++
		s.warnLabelMiss(s.labels[s.nextLb], "matches no geometry")
		s.nextLb++
	}
	return nil
}

// insertOne places one box into its layer's active list with the
// paper's original insertion sort (see Options.InsertionSort).
func (s *sweeper) insertOne(l tech.Layer, nb abox) {
	list := s.active[l]
	i := sort.Search(len(list), func(k int) bool { return list[k].x0 > nb.x0 })
	list = append(list, abox{})
	copy(list[i+1:], list[i:])
	list[i] = nb
	s.active[l] = list
}

// spliceNew inserts one incoming box into its layer's newGeometry
// list at the position sort.Search finds, keeping the list sorted by
// x0 as it is built. Stop batches are small (a handful of boxes share
// any one top), so the splice beats re-sorting the batch afterwards:
// sort.Slice allocates a closure and pays interface-call overhead per
// comparison, while the splice is a binary search plus one memmove.
func (s *sweeper) spliceNew(l tech.Layer, nb abox) {
	list := s.newGeom[l]
	i := sort.Search(len(list), func(k int) bool { return list[k].x0 > nb.x0 })
	list = append(list, abox{})
	copy(list[i+1:], list[i:])
	list[i] = nb
	s.newGeom[l] = list
}

// mergeNew merges a layer's newGeometry list — kept x0-sorted by
// spliceNew as it is built — into the layer's active list (also sorted
// by x0). The paper uses an insertion sort here; merging the
// pre-sorted batch is the bin-sort refinement §4 mentions ("the term
// containing N^3/2 can be made linear by using bin-sort").
func (s *sweeper) mergeNew(l tech.Layer) {
	nw := s.newGeom[l]
	old := s.active[l]
	out := s.merged[:0]
	i, j := 0, 0
	for i < len(old) && j < len(nw) {
		if old[i].x0 <= nw[j].x0 {
			out = append(out, old[i])
			i++
		} else {
			out = append(out, nw[j])
			j++
		}
	}
	out = append(out, old[i:]...)
	out = append(out, nw[j:]...)
	// Swap buffers: active becomes the merged list, the old active
	// slice becomes next round's scratch.
	s.active[l], s.merged = out, old
	s.newGeom[l] = nw[:0]
}

// exit removes boxes whose bottom coincides with the scanline.
func (s *sweeper) exit(y int64) {
	for l := range s.active {
		list := s.active[l]
		w := 0
		for _, b := range list {
			if b.bottom != y {
				list[w] = b
				w++
			}
		}
		s.active[l] = list[:w]
	}
	s.bottoms.popEqual(y)
}

// strip processes the strip whose top is yTop and bottom is yBot.
func (s *sweeper) strip(yTop, yBot int64) {
	h := yTop - yBot

	s.rawDiff = rangesOf(s.active[tech.Diff], s.rawDiff)
	s.rawPoly = rangesOf(s.active[tech.Poly], s.rawPoly)
	s.rawMetal = rangesOf(s.active[tech.Metal], s.rawMetal)
	s.rawBur = rangesOf(s.active[tech.Buried], s.rawBur)
	s.rawImpl = rangesOf(s.active[tech.Implant], s.rawImpl)
	s.rawCut = rangesOf(s.active[tech.Cut], s.rawCut)

	// channel = diff ∩ poly − buried; conducting diffusion is the rest.
	s.tmpR = intersectRanges(s.rawDiff, s.rawPoly, s.tmpR)
	s.chanR = subtractRanges(s.tmpR, s.rawBur, s.chanR)
	s.burConR = intersectRanges(s.tmpR, s.rawBur, s.burConR)
	s.diffCondR = subtractRanges(s.rawDiff, s.chanR, s.diffCondR)

	// Net continuity per conducting material.
	s.curPoly = s.assignNets(s.rawPoly, s.prevPoly, s.curPoly, yTop)
	s.curDiff = s.assignNets(s.diffCondR, s.prevDiff, s.curDiff, yTop)
	s.curMetal = s.assignNets(s.rawMetal, s.prevMetal, s.curMetal, yTop)

	// Device-region continuity.
	s.curChan = s.assignDevs(s.chanR, s.prevChan, s.curChan)

	// Buried contacts join poly and diffusion.
	for _, bc := range s.burConR {
		s.unionAcross(bc, s.curPoly, s.curDiff)
	}
	// Contact cuts join metal to poly and/or diffusion beneath.
	for _, c := range s.rawCut {
		s.unionAcross(c, s.curMetal, s.curPoly)
		s.unionAcross(c, s.curMetal, s.curDiff)
	}

	// Device accounting.
	s.devStrip(yTop, yBot, h)

	// Labels inside this strip.
	s.attachLabels(yTop, yBot)

	// Record geometry.
	if s.opt.KeepGeometry {
		s.recordGeometry(yTop, yBot)
	}

	// Snapshot band-boundary cross-sections for the stitcher. A band's
	// geometry is clipped to its limits, so only the first strip can
	// touch the top boundary and only the last can touch the bottom;
	// if no geometry reaches a boundary the face stays empty, exactly
	// as an empty seam should.
	if s.band.hasTop && yTop == s.band.top {
		s.topFace = captureFace(s.curPoly, s.curDiff, s.curMetal, s.curChan)
	}
	if s.band.hasBot && yBot == s.band.bot {
		s.botFace = captureFace(s.curPoly, s.curDiff, s.curMetal, s.curChan)
	}

	s.prevPoly, s.curPoly = s.curPoly, s.prevPoly
	s.prevDiff, s.curDiff = s.curDiff, s.prevDiff
	s.prevMetal, s.curMetal = s.curMetal, s.prevMetal
	s.prevChan, s.curChan = s.curChan, s.prevChan
}

// captureFace copies the current strip's interval lists (the scratch
// buffers are reused every strip, so the snapshot must own its memory).
func captureFace(poly, diff, metal, chans []ival) face {
	cp := func(v []ival) []ival {
		if len(v) == 0 {
			return nil
		}
		out := make([]ival, len(v))
		copy(out, v)
		return out
	}
	return face{poly: cp(poly), diff: cp(diff), metal: cp(metal), chans: cp(chans)}
}

// rangesOf converts a sorted active list to merged disjoint ranges.
func rangesOf(list []abox, out []xrange) []xrange {
	out = out[:0]
	for _, b := range list {
		if n := len(out); n > 0 && b.x0 <= out[n-1].x1 {
			if b.x1 > out[n-1].x1 {
				out[n-1].x1 = b.x1
			}
		} else {
			out = append(out, xrange{b.x0, b.x1})
		}
	}
	return out
}

// assignNets gives each range in cur a net id: the union of all
// previous-strip intervals of the same material that share boundary of
// positive length, or a fresh net.
func (s *sweeper) assignNets(cur []xrange, prev []ival, out []ival, yTop int64) []ival {
	out = out[:0]
	j := 0
	for _, r := range cur {
		for j < len(prev) && prev[j].x1 <= r.x0 {
			j++
		}
		id := int32(-1)
		for k := j; k < len(prev) && prev[k].x0 < r.x1; k++ {
			if overlapLen(r.x0, r.x1, prev[k].x0, prev[k].x1) > 0 {
				if id < 0 {
					id = s.b.FindNet(prev[k].id)
				} else {
					id = s.b.UnionNets(id, prev[k].id)
				}
			}
		}
		if id < 0 {
			id = s.b.NewNet(geom.Pt(r.x0, yTop))
		}
		out = append(out, ival{r.x0, r.x1, id})
	}
	return out
}

// assignDevs is assignNets for channel regions over the device forest.
func (s *sweeper) assignDevs(cur []xrange, prev []ival, out []ival) []ival {
	out = out[:0]
	j := 0
	for _, r := range cur {
		for j < len(prev) && prev[j].x1 <= r.x0 {
			j++
		}
		id := int32(-1)
		for k := j; k < len(prev) && prev[k].x0 < r.x1; k++ {
			if overlapLen(r.x0, r.x1, prev[k].x0, prev[k].x1) > 0 {
				if id < 0 {
					id = s.b.FindDev(prev[k].id)
				} else {
					id = s.b.UnionDevs(id, prev[k].id)
				}
			}
		}
		if id < 0 {
			id = s.b.NewDev()
		}
		out = append(out, ival{r.x0, r.x1, id})
	}
	return out
}

// firstTouching returns the index of the first interval whose right
// end is at or past x (candidates for touching or overlapping a range
// starting at x).
func firstTouching(list []ival, x int64) int {
	return sort.Search(len(list), func(i int) bool { return list[i].x1 >= x })
}

// unionAcross unions the nets of intervals in lists a and b that
// overlap the range r with positive length.
func (s *sweeper) unionAcross(r xrange, a, b []ival) {
	for i := firstTouching(a, r.x0); i < len(a) && a[i].x0 < r.x1; i++ {
		if a[i].x1 <= r.x0 {
			continue
		}
		for j := firstTouching(b, r.x0); j < len(b) && b[j].x0 < r.x1; j++ {
			lo := max64(r.x0, max64(a[i].x0, b[j].x0))
			hi := min64(r.x1, min64(a[i].x1, b[j].x1))
			if hi > lo {
				s.b.UnionNets(a[i].id, b[j].id)
			}
		}
	}
}

// devStrip performs per-strip device accounting: channel area, gate
// nets, implant coverage and the source/drain contact edges (ACE §3's
// length/width algorithm).
func (s *sweeper) devStrip(yTop, yBot, h int64) {
	for _, ch := range s.curChan {
		s.b.AddChannel(ch.id, geom.Rect{XMin: ch.x0, YMin: yBot, XMax: ch.x1, YMax: yTop})
		// Implant coverage determines depletion vs enhancement.
		for k := sort.Search(len(s.rawImpl), func(i int) bool {
			return s.rawImpl[i].x1 > ch.x0
		}); k < len(s.rawImpl) && s.rawImpl[k].x0 < ch.x1; k++ {
			s.b.AddImplant(ch.id, overlapLen(ch.x0, ch.x1, s.rawImpl[k].x0, s.rawImpl[k].x1)*h)
		}
		// Gate: the poly interval containing the channel.
		for k := firstTouching(s.curPoly, ch.x0); k < len(s.curPoly) && s.curPoly[k].x0 <= ch.x0; k++ {
			if s.curPoly[k].x0 <= ch.x0 && s.curPoly[k].x1 >= ch.x1 {
				s.b.AddGate(ch.id, s.curPoly[k].id)
				break
			}
		}
		// Horizontal S/D contacts: conducting diffusion abutting the
		// channel's left or right edge contributes the strip height.
		for k := firstTouching(s.curDiff, ch.x0); k < len(s.curDiff) && s.curDiff[k].x0 <= ch.x1; k++ {
			if s.curDiff[k].x1 == ch.x0 || s.curDiff[k].x0 == ch.x1 {
				s.b.AddTerm(ch.id, s.curDiff[k].id, h)
			}
		}
		// Vertical S/D contacts: conducting diffusion in the previous
		// strip overlapping this channel contributes the overlap.
		for k := firstTouching(s.prevDiff, ch.x0); k < len(s.prevDiff) && s.prevDiff[k].x0 < ch.x1; k++ {
			if ovl := overlapLen(ch.x0, ch.x1, s.prevDiff[k].x0, s.prevDiff[k].x1); ovl > 0 {
				s.b.AddTerm(ch.id, s.prevDiff[k].id, ovl)
			}
		}
	}
	// Vertical contacts the other way round: this strip's conducting
	// diffusion under the previous strip's channel.
	for _, di := range s.curDiff {
		for k := firstTouching(s.prevChan, di.x0); k < len(s.prevChan) && s.prevChan[k].x0 < di.x1; k++ {
			if ovl := overlapLen(di.x0, di.x1, s.prevChan[k].x0, s.prevChan[k].x1); ovl > 0 {
				s.b.AddTerm(s.prevChan[k].id, di.id, ovl)
			}
		}
	}
}

// attachLabels binds user names to the nets under them.
func (s *sweeper) attachLabels(yTop, yBot int64) {
	for s.nextLb < len(s.labels) {
		lb := s.labels[s.nextLb]
		if lb.At.Y > yTop {
			// Above all remaining geometry: it can never match now.
			s.counters.LabelMisses++
			s.warnLabelMiss(lb, "matches no geometry")
			s.nextLb++
			continue
		}
		if lb.At.Y < yBot {
			return // belongs to a later strip
		}
		if s.tryLabel(lb) {
			s.nextLb++
			continue
		}
		if lb.At.Y == yBot {
			// Exactly on the strip boundary: geometry starting at the
			// next strip may still match.
			return
		}
		s.counters.LabelMisses++
		s.warnLabelMiss(lb, "matches no conducting geometry")
		s.nextLb++
	}
}

func (s *sweeper) tryLabel(lb frontend.Label) bool {
	try := func(list []ival) bool {
		for _, iv := range list {
			if iv.x0 <= lb.At.X && lb.At.X <= iv.x1 {
				s.b.NameNet(iv.id, lb.Name)
				return true
			}
		}
		return false
	}
	if lb.HasLayer {
		switch lb.Layer {
		case tech.Metal:
			return try(s.curMetal)
		case tech.Poly:
			return try(s.curPoly)
		case tech.Diff:
			return try(s.curDiff)
		default:
			return false
		}
	}
	return try(s.curMetal) || try(s.curPoly) || try(s.curDiff)
}

func (s *sweeper) recordGeometry(yTop, yBot int64) {
	rec := func(list []ival, layer tech.Layer) {
		for _, iv := range list {
			s.b.AddNetGeometry(iv.id, layer,
				geom.Rect{XMin: iv.x0, YMin: yBot, XMax: iv.x1, YMax: yTop})
		}
	}
	rec(s.curMetal, tech.Metal)
	rec(s.curPoly, tech.Poly)
	rec(s.curDiff, tech.Diff)
}

// maxHeap is a binary max-heap of int64 values (active box bottoms).
type maxHeap struct {
	v []int64
}

func (h *maxHeap) push(x int64) {
	h.v = append(h.v, x)
	i := len(h.v) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.v[p] >= h.v[i] {
			break
		}
		h.v[p], h.v[i] = h.v[i], h.v[p]
		i = p
	}
}

func (h *maxHeap) max() (int64, bool) {
	if len(h.v) == 0 {
		return 0, false
	}
	return h.v[0], true
}

// popEqual removes all entries equal to x from the top of the heap.
func (h *maxHeap) popEqual(x int64) {
	for len(h.v) > 0 && h.v[0] == x {
		last := len(h.v) - 1
		h.v[0] = h.v[last]
		h.v = h.v[:last]
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			m := i
			if l < len(h.v) && h.v[l] > h.v[m] {
				m = l
			}
			if r < len(h.v) && h.v[r] > h.v[m] {
				m = r
			}
			if m == i {
				break
			}
			h.v[i], h.v[m] = h.v[m], h.v[i]
			i = m
		}
	}
}
