package scan

import (
	"sort"
	"testing"

	"ace/internal/frontend"
	"ace/internal/geom"
	"ace/internal/tech"
)

// sliceSource adapts a box list to the Source interface, sorting it by
// descending top edge as the front end would.
type sliceSource struct {
	boxes []frontend.Box
	pos   int
}

func newSource(boxes ...frontend.Box) *sliceSource {
	s := &sliceSource{boxes: boxes}
	sort.SliceStable(s.boxes, func(i, j int) bool {
		return s.boxes[i].Rect.YMax > s.boxes[j].Rect.YMax
	})
	return s
}

func (s *sliceSource) NextTop() (int64, bool) {
	if s.pos >= len(s.boxes) {
		return 0, false
	}
	return s.boxes[s.pos].Rect.YMax, true
}

func (s *sliceSource) Next() (frontend.Box, bool) {
	if s.pos >= len(s.boxes) {
		return frontend.Box{}, false
	}
	b := s.boxes[s.pos]
	s.pos++
	return b, true
}

func box(l tech.Layer, x0, y0, x1, y1 int64) frontend.Box {
	return frontend.Box{Layer: l, Rect: geom.R(x0, y0, x1, y1)}
}

func sweep(t *testing.T, opt Options, boxes ...frontend.Box) *Result {
	t.Helper()
	res, err := Sweep(newSource(boxes...), opt)
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if probs := res.Netlist.Validate(); len(probs) > 0 {
		t.Fatalf("invalid netlist: %v", probs)
	}
	return res
}

func TestSingleBoxSingleNet(t *testing.T) {
	res := sweep(t, Options{}, box(tech.Metal, 0, 0, 100, 100))
	if got := len(res.Netlist.Nets); got != 1 {
		t.Fatalf("nets %d", got)
	}
	if got := len(res.Netlist.Devices); got != 0 {
		t.Fatalf("devices %d", got)
	}
	if res.Netlist.Nets[0].Location != geom.Pt(0, 100) {
		t.Fatalf("location %v", res.Netlist.Nets[0].Location)
	}
}

func TestDisjointBoxesSeparateNets(t *testing.T) {
	res := sweep(t, Options{},
		box(tech.Metal, 0, 0, 100, 100),
		box(tech.Metal, 200, 0, 300, 100),
		box(tech.Metal, 0, 200, 100, 300))
	if got := len(res.Netlist.Nets); got != 3 {
		t.Fatalf("nets %d, want 3", got)
	}
}

func TestOverlapSameLayerOneNet(t *testing.T) {
	res := sweep(t, Options{},
		box(tech.Metal, 0, 0, 100, 100),
		box(tech.Metal, 50, 50, 150, 150))
	if got := len(res.Netlist.Nets); got != 1 {
		t.Fatalf("nets %d, want 1", got)
	}
}

func TestEdgeAbutmentConnects(t *testing.T) {
	// Horizontal abutment.
	res := sweep(t, Options{},
		box(tech.Metal, 0, 0, 100, 100),
		box(tech.Metal, 100, 0, 200, 100))
	if got := len(res.Netlist.Nets); got != 1 {
		t.Fatalf("horizontal abutment: nets %d, want 1", got)
	}
	// Vertical abutment.
	res = sweep(t, Options{},
		box(tech.Metal, 0, 0, 100, 100),
		box(tech.Metal, 0, 100, 100, 200))
	if got := len(res.Netlist.Nets); got != 1 {
		t.Fatalf("vertical abutment: nets %d, want 1", got)
	}
	// Partial vertical abutment still connects.
	res = sweep(t, Options{},
		box(tech.Metal, 0, 0, 100, 100),
		box(tech.Metal, 60, 100, 160, 200))
	if got := len(res.Netlist.Nets); got != 1 {
		t.Fatalf("partial vertical abutment: nets %d, want 1", got)
	}
}

func TestCornerContactDoesNotConnect(t *testing.T) {
	res := sweep(t, Options{},
		box(tech.Metal, 0, 0, 100, 100),
		box(tech.Metal, 100, 100, 200, 200))
	if got := len(res.Netlist.Nets); got != 2 {
		t.Fatalf("corner contact: nets %d, want 2", got)
	}
}

func TestDifferentLayersDoNotConnect(t *testing.T) {
	res := sweep(t, Options{},
		box(tech.Metal, 0, 0, 100, 100),
		box(tech.Poly, 0, 0, 100, 100))
	if got := len(res.Netlist.Nets); got != 2 {
		t.Fatalf("nets %d, want 2", got)
	}
}

func TestUShapeMergesNets(t *testing.T) {
	// Two arms that look distinct until the bottom bar joins them —
	// the reason ACE cannot output nets before the sweep finishes.
	res := sweep(t, Options{},
		box(tech.Metal, 0, 0, 10, 100),
		box(tech.Metal, 20, 0, 30, 100),
		box(tech.Metal, 0, -20, 30, 0))
	if got := len(res.Netlist.Nets); got != 1 {
		t.Fatalf("U-shape: nets %d, want 1", got)
	}
}

func TestCombShape(t *testing.T) {
	// Many teeth joined by a spine.
	var boxes []frontend.Box
	for i := int64(0); i < 10; i++ {
		boxes = append(boxes, box(tech.Poly, i*30, 0, i*30+10, 200))
	}
	boxes = append(boxes, box(tech.Poly, 0, -30, 9*30+10, 0))
	res := sweep(t, Options{}, boxes...)
	if got := len(res.Netlist.Nets); got != 1 {
		t.Fatalf("comb: nets %d, want 1", got)
	}
}

func TestSimpleTransistor(t *testing.T) {
	res := sweep(t, Options{},
		box(tech.Diff, 0, 0, 100, 300),
		box(tech.Poly, -50, 100, 150, 200))
	nl := res.Netlist
	if len(nl.Devices) != 1 {
		t.Fatalf("devices %d, want 1", len(nl.Devices))
	}
	d := nl.Devices[0]
	if d.Type != tech.Enhancement {
		t.Fatalf("type %v", d.Type)
	}
	if d.Length != 100 || d.Width != 100 {
		t.Fatalf("L=%d W=%d, want 100x100", d.Length, d.Width)
	}
	if d.Area != 100*100 {
		t.Fatalf("area %d", d.Area)
	}
	// Nets: poly gate, upper diff, lower diff = 3, and the channel
	// must keep the two diff nets apart.
	if len(nl.Nets) != 3 {
		t.Fatalf("nets %d, want 3", len(nl.Nets))
	}
	if d.Source == d.Drain {
		t.Fatal("source and drain must differ")
	}
	if d.Gate == d.Source || d.Gate == d.Drain {
		t.Fatal("gate must be the poly net")
	}
	if d.Location != geom.Pt(0, 200) {
		t.Fatalf("location %v", d.Location)
	}
	if len(d.Terminals) != 2 {
		t.Fatalf("terminals %v", d.Terminals)
	}
}

func TestHorizontalTransistor(t *testing.T) {
	// Poly crosses vertically over a horizontal diffusion wire: the
	// S/D contacts are vertical edges (within-strip accounting).
	res := sweep(t, Options{},
		box(tech.Diff, 0, 0, 300, 100),
		box(tech.Poly, 100, -50, 200, 150))
	nl := res.Netlist
	if len(nl.Devices) != 1 {
		t.Fatalf("devices %d, want 1", len(nl.Devices))
	}
	d := nl.Devices[0]
	if d.Length != 100 || d.Width != 100 {
		t.Fatalf("L=%d W=%d, want 100x100", d.Length, d.Width)
	}
	if len(nl.Nets) != 3 {
		t.Fatalf("nets %d, want 3", len(nl.Nets))
	}
}

func TestWideTransistorLW(t *testing.T) {
	// 40-wide channel, 10 long: poly 10 tall crossing diff 40 wide.
	res := sweep(t, Options{},
		box(tech.Diff, 0, 0, 40, 100),
		box(tech.Poly, -10, 40, 50, 50))
	d := res.Netlist.Devices[0]
	if d.Width != 40 || d.Length != 10 {
		t.Fatalf("L=%d W=%d, want L=10 W=40", d.Length, d.Width)
	}
}

func TestDepletionViaImplant(t *testing.T) {
	res := sweep(t, Options{},
		box(tech.Diff, 0, 0, 100, 300),
		box(tech.Poly, -50, 100, 150, 200),
		box(tech.Implant, -20, 80, 120, 220))
	d := res.Netlist.Devices[0]
	if d.Type != tech.Depletion {
		t.Fatalf("type %v, want depletion", d.Type)
	}
}

func TestPartialImplantMajorityRules(t *testing.T) {
	// Implant covering less than half the channel: enhancement.
	res := sweep(t, Options{},
		box(tech.Diff, 0, 0, 100, 300),
		box(tech.Poly, -50, 100, 150, 200),
		box(tech.Implant, 0, 100, 30, 200))
	if d := res.Netlist.Devices[0]; d.Type != tech.Enhancement {
		t.Fatalf("30%% implant: type %v, want enhancement", d.Type)
	}
	// Covering more than half: depletion.
	res = sweep(t, Options{},
		box(tech.Diff, 0, 0, 100, 300),
		box(tech.Poly, -50, 100, 150, 200),
		box(tech.Implant, 0, 100, 80, 200))
	if d := res.Netlist.Devices[0]; d.Type != tech.Depletion {
		t.Fatalf("80%% implant: type %v, want depletion", d.Type)
	}
}

func TestBuriedContactNoTransistor(t *testing.T) {
	res := sweep(t, Options{},
		box(tech.Diff, 0, 0, 100, 100),
		box(tech.Poly, 0, 0, 100, 200),
		box(tech.Buried, 0, 0, 100, 100))
	nl := res.Netlist
	if len(nl.Devices) != 0 {
		t.Fatalf("devices %d, want 0 (buried contact)", len(nl.Devices))
	}
	if len(nl.Nets) != 1 {
		t.Fatalf("nets %d, want 1 (poly joined to diff)", len(nl.Nets))
	}
}

func TestPartialBuried(t *testing.T) {
	// Poly crosses diffusion; buried covers only the left half of the
	// overlap: the right half is still a transistor, and the diff is
	// connected to poly through the buried half.
	res := sweep(t, Options{},
		box(tech.Diff, 0, 0, 100, 300),
		box(tech.Poly, -50, 100, 150, 200),
		box(tech.Buried, -50, 100, 50, 200))
	nl := res.Netlist
	if len(nl.Devices) != 1 {
		t.Fatalf("devices %d, want 1", len(nl.Devices))
	}
	d := nl.Devices[0]
	if d.Area != 50*100 {
		t.Fatalf("channel area %d, want 5000", d.Area)
	}
	// Poly, upper diff and lower diff are all joined through the
	// buried contact, so every terminal of the device coincides with
	// its gate — which is exactly the MOS-capacitor pattern.
	if len(nl.Nets) != 1 {
		t.Fatalf("nets %d, want 1 (joined through buried)", len(nl.Nets))
	}
	if d.Type != tech.Capacitor || d.Gate != d.Source || d.Source != d.Drain {
		t.Fatalf("device %+v, want capacitor with coincident terminals", d)
	}
}

func TestCutConnectsMetalToPoly(t *testing.T) {
	res := sweep(t, Options{},
		box(tech.Metal, 0, 0, 100, 100),
		box(tech.Poly, 0, 0, 100, 100),
		box(tech.Cut, 30, 30, 70, 70))
	if got := len(res.Netlist.Nets); got != 1 {
		t.Fatalf("nets %d, want 1", got)
	}
}

func TestCutConnectsMetalToDiff(t *testing.T) {
	res := sweep(t, Options{},
		box(tech.Metal, 0, 0, 100, 100),
		box(tech.Diff, 0, 0, 100, 100),
		box(tech.Cut, 30, 30, 70, 70))
	if got := len(res.Netlist.Nets); got != 1 {
		t.Fatalf("nets %d, want 1", got)
	}
}

func TestButtingContact(t *testing.T) {
	// Metal over a poly/diff butt joined by one cut: all three become
	// one net.
	res := sweep(t, Options{},
		box(tech.Metal, 0, 0, 100, 100),
		box(tech.Poly, 0, 0, 50, 100),
		box(tech.Diff, 50, 0, 100, 100),
		box(tech.Cut, 20, 30, 80, 70))
	if got := len(res.Netlist.Nets); got != 1 {
		t.Fatalf("nets %d, want 1", got)
	}
}

func TestCutWithoutMetalDoesNotConnect(t *testing.T) {
	res := sweep(t, Options{},
		box(tech.Poly, 0, 0, 100, 100),
		box(tech.Diff, 0, 0, 100, 100),
		box(tech.Cut, 30, 30, 70, 70))
	// Poly over diff without buried is a transistor; the cut alone
	// must not join poly to diff.
	nl := res.Netlist
	if len(nl.Devices) != 1 {
		t.Fatalf("devices %d", len(nl.Devices))
	}
}

func TestCrossingWiresStaySeparate(t *testing.T) {
	// Metal crossing poly without a cut: two nets.
	res := sweep(t, Options{},
		box(tech.Metal, 40, 0, 60, 200),
		box(tech.Poly, 0, 90, 200, 110))
	if got := len(res.Netlist.Nets); got != 2 {
		t.Fatalf("nets %d, want 2", got)
	}
}

func TestLabelsAttach(t *testing.T) {
	res := sweep(t, Options{Labels: []frontend.Label{
		{Name: "VDD", At: geom.Pt(50, 50), Layer: tech.Metal, HasLayer: true},
		{Name: "IN", At: geom.Pt(250, 50)},
	}},
		box(tech.Metal, 0, 0, 100, 100),
		box(tech.Poly, 200, 0, 300, 100))
	nl := res.Netlist
	i, ok := nl.NetByName("VDD")
	if !ok {
		t.Fatal("VDD not found")
	}
	if nl.Nets[i].Location != geom.Pt(0, 100) {
		t.Fatalf("VDD location %v", nl.Nets[i].Location)
	}
	if _, ok := nl.NetByName("IN"); !ok {
		t.Fatal("layerless label IN not attached")
	}
	if res.Counters.LabelMisses != 0 {
		t.Fatalf("misses %d", res.Counters.LabelMisses)
	}
}

func TestLabelOnBoxTopEdge(t *testing.T) {
	res := sweep(t, Options{Labels: []frontend.Label{
		{Name: "A", At: geom.Pt(50, 100)}, // exactly on the top edge
		{Name: "B", At: geom.Pt(0, 0)},    // exactly on the bottom-left corner
	}},
		box(tech.Metal, 0, 0, 100, 100))
	nl := res.Netlist
	if _, ok := nl.NetByName("A"); !ok {
		t.Fatal("top-edge label missed")
	}
	if _, ok := nl.NetByName("B"); !ok {
		t.Fatal("bottom-corner label missed")
	}
}

func TestLabelMissWarns(t *testing.T) {
	res := sweep(t, Options{Labels: []frontend.Label{
		{Name: "GHOST", At: geom.Pt(1000, 1000)},
	}},
		box(tech.Metal, 0, 0, 100, 100))
	if res.Counters.LabelMisses != 1 || len(res.Warnings) == 0 {
		t.Fatalf("misses %d warnings %v", res.Counters.LabelMisses, res.Warnings)
	}
}

func TestTwoLabelsSameNetMerge(t *testing.T) {
	res := sweep(t, Options{Labels: []frontend.Label{
		{Name: "X", At: geom.Pt(5, 50)},
		{Name: "Y", At: geom.Pt(95, 50)},
	}},
		box(tech.Metal, 0, 0, 100, 100))
	nl := res.Netlist
	if len(nl.Nets) != 1 || len(nl.Nets[0].Names) != 2 {
		t.Fatalf("names %v", nl.Nets[0].Names)
	}
}

func TestSharedGatePoly(t *testing.T) {
	// One poly line crossing two diffusion strips: two transistors
	// sharing a gate net.
	res := sweep(t, Options{},
		box(tech.Diff, 0, 0, 100, 300),
		box(tech.Diff, 200, 0, 300, 300),
		box(tech.Poly, -50, 100, 350, 200))
	nl := res.Netlist
	if len(nl.Devices) != 2 {
		t.Fatalf("devices %d, want 2", len(nl.Devices))
	}
	if nl.Devices[0].Gate != nl.Devices[1].Gate {
		t.Fatal("devices must share the gate net")
	}
	// 2 diff nets per transistor + 1 shared poly = 5.
	if len(nl.Nets) != 5 {
		t.Fatalf("nets %d, want 5", len(nl.Nets))
	}
}

func TestSerpentineTransistorSingleDevice(t *testing.T) {
	// An L-shaped poly path over one diffusion region forms a single
	// connected channel — one transistor, not two.
	res := sweep(t, Options{},
		box(tech.Diff, 0, 0, 300, 300),
		box(tech.Poly, 100, -50, 200, 200), // vertical arm entering from below
		box(tech.Poly, 100, 100, 400, 200)) // horizontal arm exiting right
	nl := res.Netlist
	if len(nl.Devices) != 1 {
		t.Fatalf("devices %d, want 1", len(nl.Devices))
	}
	d := nl.Devices[0]
	// Vertical arm ∩ diff = [100,200]×[0,200] (20000); the horizontal
	// arm adds [200,300]×[100,200] (10000).
	wantArea := int64(30000)
	if d.Area != wantArea {
		t.Fatalf("area %d, want %d", d.Area, wantArea)
	}
}

func TestLShapedChannelPaperValues(t *testing.T) {
	// The enhancement transistor of Figure 3-3/3-4, reduced to its
	// essential geometry. Channel boxes: [-800,-2000,-400,-800] and
	// [-800,-800,800,-400]; the paper reports Length 400, Width 2800.
	res := sweep(t, Options{},
		// Diffusion: channel region plus the source arm (left), the
		// source bar (top) and the drain block (right).
		box(tech.Diff, -800, -2000, -400, -800),  // channel part 1
		box(tech.Diff, -800, -800, 800, -400),    // channel part 2
		box(tech.Diff, -1200, -2000, -800, -400), // source arm (N5)
		box(tech.Diff, -1200, -400, 800, 0),      // source top bar (N5)
		box(tech.Diff, -400, -2000, 800, -800),   // drain block (N11)
		// Poly gate covering exactly the channel region.
		box(tech.Poly, -800, -2400, -400, -800), // vertical gate arm
		box(tech.Poly, -800, -800, 1800, -400),  // horizontal gate arm
	)
	nl := res.Netlist
	if len(nl.Devices) != 1 {
		t.Fatalf("devices %d, want 1\n%s", len(nl.Devices), nl)
	}
	d := nl.Devices[0]
	if d.Area != 1120000 {
		t.Fatalf("area %d, want 1120000", d.Area)
	}
	if d.Width != 2800 || d.Length != 400 {
		t.Fatalf("L=%d W=%d, want L=400 W=2800 (paper)", d.Length, d.Width)
	}
	if d.Location != geom.Pt(-800, -400) {
		t.Fatalf("location %v, want (-800,-400) (paper)", d.Location)
	}
	// Terminals: source edge 3200 (1200 + 400 + 1600), drain 2400.
	if len(d.Terminals) != 2 || d.Terminals[0].Edge != 3200 || d.Terminals[1].Edge != 2400 {
		t.Fatalf("terminals %v", d.Terminals)
	}
}

func TestKeepGeometry(t *testing.T) {
	res := sweep(t, Options{KeepGeometry: true},
		box(tech.Diff, 0, 0, 100, 300),
		box(tech.Poly, -50, 100, 150, 200))
	nl := res.Netlist
	d := nl.Devices[0]
	if len(d.Geometry) != 1 || d.Geometry[0] != geom.R(0, 100, 100, 200) {
		t.Fatalf("device geometry %v", d.Geometry)
	}
	// The upper diffusion net's geometry: [0,200,100,300].
	found := false
	for _, n := range nl.Nets {
		for _, g := range n.Geometry {
			if g.Layer == tech.Diff && g.Rect == geom.R(0, 200, 100, 300) {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("upper diffusion geometry not recorded: %+v", nl.Nets)
	}
}

func TestGeometryOffByDefault(t *testing.T) {
	res := sweep(t, Options{}, box(tech.Metal, 0, 0, 100, 100))
	if len(res.Netlist.Nets[0].Geometry) != 0 {
		t.Fatal("geometry recorded without KeepGeometry")
	}
}

func TestCapacitor(t *testing.T) {
	// Gate tied to its single S/D net through a buried contact: a MOS
	// capacitor.
	res := sweep(t, Options{},
		box(tech.Diff, 0, 0, 100, 300),
		box(tech.Poly, -50, -50, 150, 350), // covers all of the diffusion
		box(tech.Buried, 0, 200, 100, 300)) // joins poly to upper diff
	nl := res.Netlist
	if len(nl.Devices) != 1 {
		t.Fatalf("devices %d\n%s", len(nl.Devices), nl)
	}
	d := nl.Devices[0]
	if d.Type != tech.Capacitor {
		t.Fatalf("type %v, want capacitor\n%s", d.Type, nl)
	}
	if d.Source != d.Drain || d.Source != d.Gate {
		t.Fatal("capacitor terminals must all coincide")
	}
}

func TestCountersReasonable(t *testing.T) {
	res := sweep(t, Options{},
		box(tech.Diff, 0, 0, 100, 300),
		box(tech.Poly, -50, 100, 150, 200))
	c := res.Counters
	if c.BoxesIn != 2 {
		t.Fatalf("BoxesIn %d", c.BoxesIn)
	}
	// Stops: tops 300, 200, plus bottoms 100, 0 = 4 distinct stops,
	// the last of which ends the sweep.
	if c.Stops < 3 || c.Stops > 4 {
		t.Fatalf("Stops %d", c.Stops)
	}
	if c.MaxActive < 2 {
		t.Fatalf("MaxActive %d", c.MaxActive)
	}
}

func TestEmptySource(t *testing.T) {
	res, err := Sweep(newSource(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Netlist.Nets) != 0 || len(res.Netlist.Devices) != 0 {
		t.Fatal("empty design must produce empty netlist")
	}
}

func TestMeshTransistorGrid(t *testing.T) {
	// n poly columns crossing n diff rows = n² transistors (the worst
	// case of ACE §4).
	const n = 4
	var boxes []frontend.Box
	for i := int64(0); i < n; i++ {
		boxes = append(boxes, box(tech.Diff, 0, i*100, n*100, i*100+40))
		boxes = append(boxes, box(tech.Poly, i*100, -20, i*100+40, n*100))
	}
	res := sweep(t, Options{}, boxes...)
	nl := res.Netlist
	if len(nl.Devices) != n*n {
		t.Fatalf("devices %d, want %d", len(nl.Devices), n*n)
	}
	// Each diff row is cut into n conducting segments (the first
	// channel starts at the row's left edge); poly columns stay whole.
	if got, want := len(nl.Nets), n*n+n; got != want {
		t.Fatalf("nets %d, want %d", got, want)
	}
}
