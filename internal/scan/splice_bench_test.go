package scan

import (
	"sort"
	"testing"
)

// Stop batches in real sweeps are small: only the boxes whose top
// edges coincide at one scanline stop land in a newGeometry list
// before it is merged and reset. The benchmark sizes cover the
// observed range (corpus chips average 2–6 boxes per stop per layer).
var spliceBatchSizes = []struct {
	name string
	n    int
}{
	{"batch=2", 2},
	{"batch=4", 4},
	{"batch=8", 8},
	{"batch=32", 32},
}

// pseudoBatch produces a deterministic unsorted batch of boxes; a
// small LCG keeps the benchmark free of math/rand setup cost.
func pseudoBatch(n int) []abox {
	out := make([]abox, n)
	state := uint64(0x9e3779b97f4a7c15)
	for i := range out {
		state = state*6364136223846793005 + 1442695040888963407
		x0 := int64(state>>40) % 10000
		out[i] = abox{x0: x0, x1: x0 + 50, bottom: -int64(i)}
	}
	return out
}

// BenchmarkSpliceNew measures the fetch-time insertion splice the
// sweep uses now: each box binary-searched into place as it arrives.
func BenchmarkSpliceNew(b *testing.B) {
	for _, sz := range spliceBatchSizes {
		batch := pseudoBatch(sz.n)
		b.Run(sz.name, func(b *testing.B) {
			b.ReportAllocs()
			buf := make([]abox, 0, sz.n)
			for i := 0; i < b.N; i++ {
				buf = buf[:0]
				for _, nb := range batch {
					j := sort.Search(len(buf), func(k int) bool { return buf[k].x0 > nb.x0 })
					buf = append(buf, abox{})
					copy(buf[j+1:], buf[j:])
					buf[j] = nb
				}
			}
		})
	}
}

// BenchmarkSortSliceNew measures the replaced approach: append the
// whole batch, then sort.Slice it inside mergeNew. The closure
// allocation and per-comparison interface calls show up even at
// batch=2, the common case.
func BenchmarkSortSliceNew(b *testing.B) {
	for _, sz := range spliceBatchSizes {
		batch := pseudoBatch(sz.n)
		b.Run(sz.name, func(b *testing.B) {
			b.ReportAllocs()
			buf := make([]abox, 0, sz.n)
			for i := 0; i < b.N; i++ {
				buf = append(buf[:0], batch...)
				sort.Slice(buf, func(x, y int) bool { return buf[x].x0 < buf[y].x0 })
			}
		})
	}
}
