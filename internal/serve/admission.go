package serve

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"ace/internal/guard"
)

// Admission-layer shed reasons. They are distinct sentinel errors so
// the problem renderer can tell "the queue is full, come back later"
// (retryable overload) from "the server is draining" (retry against
// another instance) from a request deadline that expired while queued.
var (
	errQueueFull = errors.New("serve: admission queue full")
	errQueueWait = errors.New("serve: admission queue wait expired")
	errDraining  = errors.New("serve: server draining")
)

// admission is the server's load front door: a guard.Gate bounding
// in-flight extractions plus a bounded wait queue in front of it.
// Work beyond MaxInFlight waits (at most queueWait, at most queueCap
// waiters); anything beyond that is shed immediately with a typed
// error — the queue can never grow without bound, so an overload melts
// into fast 429s instead of memory growth and collapse.
type admission struct {
	gate      *guard.Gate
	queueCap  int64
	queueWait time.Duration
	queued    atomic.Int64
	drain     chan struct{} // closed by beginDrain: sheds the queue
}

func newAdmission(maxInFlight, queueDepth int, queueWait time.Duration) *admission {
	return &admission{
		gate:      guard.NewGate(maxInFlight),
		queueCap:  int64(queueDepth),
		queueWait: queueWait,
		drain:     make(chan struct{}),
	}
}

// admit blocks until the request holds an in-flight token, and returns
// the matching release. Shedding paths: errDraining once a drain has
// begun (including while queued), errQueueFull when the wait queue is
// at capacity, errQueueWait when no token freed within the queue-wait
// budget, and a stage-attributed context error when the request's own
// deadline expired first.
func (a *admission) admit(ctx context.Context) (release func(), err error) {
	select {
	case <-a.drain:
		return nil, errDraining
	default:
	}
	if err := a.gate.TryAcquire(guard.StageAdmit); err == nil {
		return a.gate.Release, nil
	}
	if a.queued.Add(1) > a.queueCap {
		a.queued.Add(-1)
		return nil, errQueueFull
	}
	defer a.queued.Add(-1)

	wctx, cancel := context.WithTimeout(ctx, a.queueWait)
	defer cancel()
	// Fold the drain signal into the wait context so a drain sheds
	// queued requests immediately; the watcher exits with the wait.
	watcherDone := make(chan struct{})
	defer close(watcherDone)
	go func() {
		select {
		case <-a.drain:
			cancel()
		case <-watcherDone:
		}
	}()

	aerr := a.gate.Acquire(wctx, guard.StageAdmit)
	if aerr == nil {
		select {
		case <-a.drain:
			// Drain won the race with the released token: give it back
			// and shed, so waitIdle converges.
			a.gate.Release()
			return nil, errDraining
		default:
			return a.gate.Release, nil
		}
	}
	select {
	case <-a.drain:
		return nil, errDraining
	default:
	}
	if ctx.Err() != nil {
		return nil, &guard.StageError{Stage: guard.StageAdmit, Err: ctx.Err()}
	}
	return nil, errQueueWait
}

// beginDrain stops admission: every queued waiter is shed with
// errDraining and every future admit fails fast. Safe to call more
// than once.
func (a *admission) beginDrain() {
	select {
	case <-a.drain:
	default:
		close(a.drain)
	}
}

// draining reports whether beginDrain has been called.
func (a *admission) draining() bool {
	select {
	case <-a.drain:
		return true
	default:
		return false
	}
}

// waitIdle blocks until no request is in flight or queued, or ctx
// expires — the graceful half of shutdown: callers beginDrain first,
// then bound how long in-flight work may run on.
func (a *admission) waitIdle(ctx context.Context) error {
	for {
		if a.gate.InFlight() == 0 && a.queued.Load() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(2 * time.Millisecond):
		}
	}
}
